// Quickstart: train h/i-MADRL on the synthetic Purdue campus and evaluate.
//
//   ./build/examples/quickstart [iterations]
//
// Walks through the whole public API: build a dataset, create the
// environment, train the h/i-MADRL agent (Algorithm 1), evaluate it against
// a random baseline, and render the learned trajectories.

#include <cstdlib>
#include <iostream>

#include "algorithms/random_policy.h"
#include "core/hi_madrl.h"
#include "env/render.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace agsc;

  const int iterations = argc > 1 ? std::atoi(argv[1]) : 20;

  // 1. Dataset: synthetic campus + the 100 most-visited PoIs extracted from
  //    synthetic student mobility traces (see DESIGN.md).
  const map::Dataset dataset = map::BuildDataset(map::CampusId::kPurdue);
  std::cout << "Campus: " << dataset.campus.name << ", "
            << dataset.campus.roads.NumNodes() << " road nodes, "
            << dataset.pois.size() << " PoIs\n";

  // 2. Environment with the paper's Table II defaults (T=100 slots,
  //    2 UAVs + 2 UGVs, Z=3 subchannels, AG-NOMA uplink).
  env::EnvConfig env_config;
  env::ScEnv env(env_config, dataset, /*seed=*/1);

  // 3. Train h/i-MADRL: IPPO base + i-EOI + h-CoPO plug-ins.
  core::TrainConfig train_config;
  train_config.iterations = iterations;
  train_config.verbose = false;
  core::HiMadrlTrainer trainer(env, train_config);
  std::cout << "Training " << iterations << " iterations ("
            << trainer.TotalParameterCount() << " parameters)...\n";
  for (int i = 0; i < iterations; ++i) {
    const core::IterationStats stats = trainer.TrainIteration();
    if (i % 5 == 0 || i == iterations - 1) {
      std::cout << "  iter " << stats.iteration
                << "  efficiency=" << stats.rollout_metrics.efficiency
                << "  r_ext=" << stats.mean_reward_ext
                << "  r_int=" << stats.mean_reward_int << "\n";
    }
  }

  // 4. Evaluate against the Random baseline (deterministic policy mode).
  const core::EvalResult trained = core::Evaluate(env, trainer, 5, 1234);
  algorithms::RandomPolicy random;
  const core::EvalResult baseline = core::Evaluate(env, random, 5, 1234,
                                                   /*deterministic=*/false);
  util::Table table(
      {"policy", "psi", "sigma", "xi", "kappa", "lambda (efficiency)"});
  table.AddRow("h/i-MADRL", trained.mean.ToVector());
  table.AddRow("Random", baseline.mean.ToVector());
  table.Print();

  // 5. Learned coordination preferences (Fig. 11(d)).
  for (int k = 0; k < env.num_agents(); ++k) {
    std::cout << (env.IsUav(k) ? "UAV " : "UGV ") << k
              << "  phi=" << trainer.lcfs()[k].phi_deg
              << " deg, chi=" << trainer.lcfs()[k].chi_deg << " deg\n";
  }

  // 6. Render the final evaluation episode's trajectories.
  std::cout << "\nTrajectories (digits: UAVs, letters: UGVs, '.': PoIs "
               "with data, 'o': drained PoIs):\n"
            << env::RenderTrajectoriesAscii(env);
  return 0;
}
