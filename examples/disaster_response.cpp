// Disaster-response scenario (the paper's motivating use case: collecting
// data from CCTV/alarm sensors in areas dangerous for human workers).
//
//   ./build/examples/disaster_response [iterations]
//
// Models a post-earthquake sweep: a stringent QoS requirement (high SINR
// threshold, so unreliable links must not be used), a larger UAV fleet
// (aerial access matters when roads may be blocked), and a tight mission
// horizon. Compares h/i-MADRL with the Shortest-Path planner and Random
// dispatch.

#include <cstdlib>
#include <iostream>

#include "algorithms/random_policy.h"
#include "algorithms/shortest_path.h"
#include "core/hi_madrl.h"
#include "env/render.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace agsc;
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 25;

  // The NCSU-style campus plays the stricken district (larger, sparser
  // road network = blocked streets).
  const map::Dataset dataset = map::BuildDataset(map::CampusId::kNcsu, 60);

  env::EnvConfig config;
  config.num_pois = 60;
  config.num_timeslots = 60;       // Tight mission window.
  config.num_uavs = 3;             // Aerial-heavy fleet.
  config.num_ugvs = 2;
  config.sinr_threshold_db = 3.0;  // Stringent QoS: drop marginal links.
  config.num_subchannels = 4;

  env::ScEnv env(config, dataset, /*seed=*/7);

  core::TrainConfig train;
  train.iterations = iterations;
  train.net.hidden = {96, 48};
  core::HiMadrlTrainer trainer(env, train);
  std::cout << "Training h/i-MADRL for the disaster sweep (" << iterations
            << " iterations, " << config.num_uavs << " UAVs + "
            << config.num_ugvs << " UGVs, QoS threshold "
            << config.sinr_threshold_db << " dB)...\n";
  trainer.Train();

  util::Table table({"dispatcher", "psi", "sigma", "xi", "kappa", "lambda"});
  table.AddRow("h/i-MADRL",
               core::Evaluate(env, trainer, 5, 99).mean.ToVector());
  algorithms::ShortestPathPolicy sp;
  table.AddRow("Shortest Path", core::Evaluate(env, sp, 5, 99).mean.ToVector());
  algorithms::RandomPolicy random;
  table.AddRow("Random",
               core::Evaluate(env, random, 5, 99, false).mean.ToVector());
  table.Print();

  std::cout << "\nNote the data-loss column (sigma): under a stringent QoS "
               "threshold the planner that ignores link quality (Shortest "
               "Path) wastes subchannel slots on undecodable uploads, while "
               "h/i-MADRL's h-CoPO keeps relay pairs in range "
               "(Section VI-D4 of the paper).\n\nFinal sweep map:\n"
            << env::RenderTrajectoriesAscii(env, 64, 26);
  return 0;
}
