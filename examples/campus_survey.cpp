// Campus sensing survey: the paper's primary evaluation setting, shown as a
// library walkthrough that inspects *cooperation* artifacts rather than
// just metrics.
//
//   ./build/examples/campus_survey [iterations]
//
// Trains h/i-MADRL on the Purdue campus, then replays one deterministic
// episode and reports: which UAV-UGV relay pairs formed on each subchannel,
// how the learned local coordination factors differ between UV kinds, and
// the per-PoI coverage histogram behind the geographical-fairness metric.

#include <cstdlib>
#include <iostream>

#include "core/hi_madrl.h"
#include "env/render.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace agsc;
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 25;

  const map::Dataset dataset = map::BuildDataset(map::CampusId::kPurdue, 80);
  env::EnvConfig config;
  config.num_pois = 80;
  config.num_timeslots = 80;
  env::ScEnv env(config, dataset, /*seed=*/3);

  core::TrainConfig train;
  train.iterations = iterations;
  train.net.hidden = {96, 48};
  core::HiMadrlTrainer trainer(env, train);
  std::cout << "Training " << iterations << " iterations on "
            << dataset.campus.name << "...\n";
  trainer.Train();

  // Deterministic replay of one episode.
  core::Evaluate(env, trainer, 1, 17);
  const env::Metrics m = env.EpisodeMetrics();
  std::cout << "Episode metrics: psi=" << util::FormatDouble(m.data_collection_ratio, 3)
            << " sigma=" << util::FormatDouble(m.data_loss_ratio, 3)
            << " xi=" << util::FormatDouble(m.energy_consumption_ratio, 3)
            << " kappa=" << util::FormatDouble(m.geographical_fairness, 3)
            << " lambda=" << util::FormatDouble(m.efficiency, 3) << "\n\n";

  // Relay-pair anatomy: who decoded for whom, and with what link quality.
  long pair_counts[8][8] = {};
  double pair_sinr[8][8] = {};
  for (const auto& slot_events : env.event_log()) {
    for (const env::CollectionEvent& ev : slot_events) {
      if (ev.uav >= 0 && ev.ugv >= 0 && ev.uav < 8 && ev.ugv < 8) {
        ++pair_counts[ev.uav][ev.ugv];
        pair_sinr[ev.uav][ev.ugv] += ev.sinr_relay_db;
      }
    }
  }
  util::Table pairs({"relay pair", "events", "mean relay SINR (dB)"});
  for (int u = 0; u < env.num_agents(); ++u) {
    if (!env.IsUav(u)) continue;
    for (int g = 0; g < env.num_agents(); ++g) {
      if (env.IsUav(g) || pair_counts[u][g] == 0) continue;
      pairs.AddRow("UAV" + std::to_string(u) + " -> UGV" + std::to_string(g),
                   {static_cast<double>(pair_counts[u][g]),
                    pair_sinr[u][g] / pair_counts[u][g]});
    }
  }
  pairs.Print();

  // Learned cooperation preferences (Fig. 11(d) analogue).
  std::cout << "\nLocal coordination factors:\n";
  for (int k = 0; k < env.num_agents(); ++k) {
    std::cout << "  " << (env.IsUav(k) ? "UAV" : "UGV") << k << ": phi="
              << util::FormatDouble(trainer.lcfs()[k].phi_deg, 1)
              << " deg, chi="
              << util::FormatDouble(trainer.lcfs()[k].chi_deg, 1) << " deg\n";
  }

  // Coverage histogram behind kappa.
  int buckets[5] = {};
  for (int i = 0; i < config.num_pois; ++i) {
    const double fraction =
        1.0 - env.PoiRemainingGbit(i) / config.initial_data_gbit;
    ++buckets[std::min(4, static_cast<int>(fraction * 5.0))];
  }
  std::cout << "\nPer-PoI collected fraction histogram "
               "(0-20/20-40/40-60/60-80/80-100%): ";
  for (int b = 0; b < 5; ++b) std::cout << buckets[b] << " ";
  std::cout << "\n\n" << env::RenderTrajectoriesAscii(env, 64, 26);
  env::DumpEventsCsv(env, "campus_survey_events.csv");
  std::cout << "Event log written to campus_survey_events.csv\n";
  return 0;
}
