// Fleet sizing study: how many UVs should a task operator deploy?
//
//   ./build/examples/fleet_sizing
//
// Uses the cheap planners (Shortest-Path, Greedy, Random) to sweep the
// fleet size without any RL training — useful as a fast first cut before
// committing GPU/CPU time to h/i-MADRL (the full learned sweep is
// bench_fig3_4_num_uvs). Reproduces the rise-then-fall efficiency shape of
// Fig. 3/4: more UVs collect faster, but co-channel interference and
// saturation eventually drag efficiency down.

#include <iostream>

#include "algorithms/greedy_policy.h"
#include "algorithms/random_policy.h"
#include "algorithms/shortest_path.h"
#include "core/evaluator.h"
#include "util/table.h"

int main() {
  using namespace agsc;
  const map::Dataset dataset = map::BuildDataset(map::CampusId::kPurdue);

  const std::vector<int> fleet_sizes = {1, 2, 3, 5, 7};
  util::Table table({"UAVs+UGVs (each)", "Shortest Path lambda",
                     "Greedy lambda", "Random lambda",
                     "Shortest Path psi", "Shortest Path sigma"});
  for (int n : fleet_sizes) {
    env::EnvConfig config;
    config.num_uavs = n;
    config.num_ugvs = n;
    env::ScEnv env(config, dataset, /*seed=*/5);

    algorithms::ShortestPathPolicy sp;
    const env::Metrics m_sp = core::Evaluate(env, sp, 3, 11).mean;
    algorithms::GreedyPolicy greedy;
    const env::Metrics m_greedy = core::Evaluate(env, greedy, 3, 11).mean;
    algorithms::RandomPolicy random;
    const env::Metrics m_random =
        core::Evaluate(env, random, 3, 11, false).mean;

    table.AddRow(std::to_string(n),
                 {m_sp.efficiency, m_greedy.efficiency, m_random.efficiency,
                  m_sp.data_collection_ratio, m_sp.data_loss_ratio});
    std::cerr << "fleet size " << n << " done\n";
  }
  table.Print();
  std::cout << "\nEfficiency rises while extra UVs still find uncontested "
               "PoIs and falls once AG-NOMA co-channel interference and "
               "saturation dominate (paper Section VI-D1).\n";
  return 0;
}
