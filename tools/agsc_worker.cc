// agsc_worker: one crash-isolated rollout worker subprocess.
//
// Spawned by the trainer's ProcSampler (`agsc_train --proc-workers N`), one
// process per worker shard. The worker owns a single environment replica
// rebuilt deterministically from the kMsgInit frame and steps it under the
// trainer's direction; the trainer keeps the policy, the sampling RNG
// streams, and the rollout buffers, so a worker crash loses nothing that
// cannot be replayed. Protocol: core/worker_protocol.h over stdin/stdout
// (framed, checksummed, sequence-numbered); stderr carries diagnostics.
//
// Lifecycle contract: the worker never outlives its pipe. EOF on stdin —
// the trainer died or dropped this incarnation — is a clean exit; a
// protocol violation is a loud nonzero exit the trainer observes as EOF and
// answers with a respawn. SIGINT/SIGTERM are ignored: a terminal ^C must
// reach only the trainer, which winds the fleet down cooperatively
// (kMsgShutdown / pipe close), and SIGKILL remains the trainer's escalation
// path for a hung worker.

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "core/worker_protocol.h"
#include "env/sc_env.h"
#include "map/trace.h"
#include "nn/tensor.h"
#include "util/build_info.h"
#include "util/env_flags.h"
#include "util/exit_codes.h"
#include "util/fault_inject.h"
#include "util/ipc.h"
#include "util/logging.h"
#include "util/parse.h"

namespace {

using agsc::core::DecodeEpisodePrefix;
using agsc::core::DecodeWorkerActions;
using agsc::core::DecodeWorkerInit;
using agsc::core::EncodeWorkerHello;
using agsc::core::EncodeWorkerStepResult;
using agsc::core::EpisodePrefix;
using agsc::core::WorkerActions;
using agsc::core::WorkerHello;
using agsc::core::WorkerInit;
using agsc::core::WorkerStepResult;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: agsc_worker [--worker-id N] [--incarnation N]\n"
               "       agsc_worker --version | --build-info\n"
               "Rollout worker subprocess for `agsc_train --proc-workers N`;\n"
               "speaks the framed worker protocol on stdin/stdout and is not\n"
               "meant to be run by hand.\n");
}

/// Packages one Reset/Step outcome (plus the post-step RNG position and,
/// when the episode ended, its metrics) for the wire.
WorkerStepResult BuildResult(agsc::env::ScEnv& env,
                             const agsc::env::StepResult& step,
                             bool is_reset) {
  WorkerStepResult result;
  result.is_reset = is_reset;
  result.done = step.done;
  result.observations = step.observations;
  result.state = step.state;
  if (!is_reset) {
    result.rewards = step.rewards;
    const int num_agents = env.num_agents();
    result.he_neighbors.resize(static_cast<size_t>(num_agents));
    result.ho_neighbors.resize(static_cast<size_t>(num_agents));
    for (int k = 0; k < num_agents; ++k) {
      const std::vector<int> he = env.HeterogeneousNeighbors(k);
      const std::vector<int> ho = env.HomogeneousNeighbors(k);
      result.he_neighbors[static_cast<size_t>(k)].assign(he.begin(), he.end());
      result.ho_neighbors[static_cast<size_t>(k)].assign(ho.begin(), ho.end());
    }
    if (step.done) result.metrics = env.EpisodeMetrics();
  }
  result.rng_state = env.rng().SaveState();
  return result;
}

void ToUvActions(const WorkerActions& actions,
                 std::vector<agsc::env::UvAction>& out) {
  out.resize(actions.per_agent.size());
  for (size_t k = 0; k < actions.per_agent.size(); ++k) {
    out[k] = {actions.per_agent[k][0], actions.per_agent[k][1]};
  }
}

int WorkerMain(int worker_id, int incarnation) {
  // The protocol owns stdin/stdout; only the trainer may end this process
  // (pipe close or SIGKILL), so terminal signals are ignored and a dead
  // peer must surface as EPIPE/EOF rather than a signal death.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);

  // Worker-fault scoping: the injected crash/corrupt/stall campaigns target
  // one (worker id, incarnation 0) pair, so a respawned incarnation
  // replaying the same shard does not immediately re-trip the same fault.
  agsc::util::FaultInjector& faults = agsc::util::FaultInjector::Instance();
  const int fault_target =
      agsc::util::GetEnvOr("AGSC_FAULT_WORKER_ID", -1);
  if (incarnation != 0 ||
      (fault_target >= 0 && fault_target != worker_id)) {
    faults.DisarmWorkerFaults();
  }

  agsc::util::FrameReader reader(STDIN_FILENO);
  agsc::util::FrameWriter writer(STDOUT_FILENO);
  uint64_t out_seq = 0;

  const auto send_result = [&](const WorkerStepResult& result) {
    const agsc::util::FaultInjector::FrameFault fault =
        faults.NextFrameFault();
    if (fault.stall_ms > 0) {
      AGSC_LOG(kWarning) << "worker " << worker_id
                         << ": injected pipe stall of " << fault.stall_ms
                         << " ms";
      ::usleep(static_cast<useconds_t>(fault.stall_ms) * 1000);
    }
    if (fault.corrupt_byte >= 0) {
      AGSC_LOG(kWarning) << "worker " << worker_id
                         << ": injected frame corruption";
    }
    return writer.Write(agsc::core::kMsgStepResult, out_seq++,
                        EncodeWorkerStepResult(result), fault.corrupt_byte);
  };

  // --- Handshake: kMsgInit -> rebuild the env -> kMsgHello. ---
  agsc::util::Frame frame;
  agsc::util::IpcStatus status = reader.Read(frame, /*timeout_ms=*/0);
  if (status == agsc::util::IpcStatus::kEof) return agsc::util::kExitOk;
  if (status != agsc::util::IpcStatus::kOk ||
      frame.type != agsc::core::kMsgInit) {
    AGSC_LOG(kError) << "worker " << worker_id << ": bad init frame ("
                     << agsc::util::IpcStatusName(status) << ")";
    return agsc::util::kExitIoError;
  }
  WorkerInit init;
  if (!DecodeWorkerInit(frame.payload, init)) {
    AGSC_LOG(kError) << "worker " << worker_id
                     << ": init payload rejected (protocol/config mismatch)";
    return agsc::util::kExitConfig;
  }

  std::unique_ptr<agsc::env::ScEnv> env;
  try {
    // The ctor seed is irrelevant: every episode prefix loads the exact RNG
    // state this shard's stream is at, so the env is reconstructible from
    // (campus, config) alone.
    env = std::make_unique<agsc::env::ScEnv>(
        init.config, agsc::map::BuildDataset(init.campus, init.config.num_pois),
        /*seed=*/0);
  } catch (const std::exception& e) {
    AGSC_LOG(kError) << "worker " << worker_id
                     << ": env rebuild failed: " << e.what();
    return agsc::util::kExitConfig;
  }

  WorkerHello hello;
  hello.worker_id = worker_id;
  hello.num_agents = env->num_agents();
  hello.obs_dim = env->obs_dim();
  hello.state_dim = env->state_dim();
  if (!writer.Write(agsc::core::kMsgHello, out_seq++,
                    EncodeWorkerHello(hello))) {
    return agsc::util::kExitIoError;
  }

  // --- Steady state: episode prefixes and steps until shutdown/EOF. ---
  agsc::env::StepResult step;
  std::vector<agsc::env::UvAction> uv_actions;
  for (;;) {
    status = reader.Read(frame, /*timeout_ms=*/0);
    if (status == agsc::util::IpcStatus::kEof) return agsc::util::kExitOk;
    if (status != agsc::util::IpcStatus::kOk) {
      AGSC_LOG(kError) << "worker " << worker_id << ": pipe "
                       << agsc::util::IpcStatusName(status) << "; exiting";
      return agsc::util::kExitIoError;
    }

    switch (frame.type) {
      case agsc::core::kMsgShutdown:
        return agsc::util::kExitOk;

      case agsc::core::kMsgEpisodePrefix: {
        EpisodePrefix prefix;
        if (!DecodeEpisodePrefix(frame.payload, prefix)) {
          AGSC_LOG(kError) << "worker " << worker_id
                           << ": episode prefix rejected";
          return agsc::util::kExitConfig;
        }
        if ((prefix.flags & agsc::core::kPrefixNaiveEnv) != 0) {
          env->DisableSpatialIndex();
        }
        env->rng().LoadState(prefix.rng_state);
        env->Reset(step);
        bool replayed = false;
        for (const WorkerActions& actions : prefix.replay) {
          ToUvActions(actions, uv_actions);
          env->Step(uv_actions, step);
          replayed = true;
        }
        if (!send_result(BuildResult(*env, step, !replayed))) {
          return agsc::util::kExitIoError;
        }
        break;
      }

      case agsc::core::kMsgStep: {
        if (faults.KillWorkerNow()) {
          AGSC_LOG(kWarning) << "worker " << worker_id
                             << ": injected SIGKILL (KILL_WORKER_NTH)";
          ::raise(SIGKILL);
        }
        WorkerActions actions;
        if (!DecodeWorkerActions(frame.payload, actions) ||
            static_cast<int>(actions.per_agent.size()) !=
                env->num_agents()) {
          AGSC_LOG(kError) << "worker " << worker_id
                           << ": step actions rejected";
          return agsc::util::kExitConfig;
        }
        ToUvActions(actions, uv_actions);
        env->Step(uv_actions, step);
        if (!send_result(BuildResult(*env, step, /*is_reset=*/false))) {
          return agsc::util::kExitIoError;
        }
        break;
      }

      default:
        AGSC_LOG(kError) << "worker " << worker_id
                         << ": unexpected frame type " << frame.type;
        return agsc::util::kExitConfig;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int worker_id = 0;
  int incarnation = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--version" || arg == "--build-info") {
      std::printf("agsc_worker %s\n",
                  agsc::util::BuildInfoString(
                      std::string("gemm-isa=") + agsc::nn::ActiveGemmIsaName())
                      .c_str());
      return agsc::util::kExitOk;
    }
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return agsc::util::kExitOk;
    }
    if (arg == "--worker-id") {
      const char* v = next();
      if (v == nullptr ||
          !agsc::util::ParseIntInRange(v, 0, 1 << 20, &worker_id)) {
        PrintUsage();
        return agsc::util::kExitUsage;
      }
      continue;
    }
    if (arg == "--incarnation") {
      const char* v = next();
      if (v == nullptr ||
          !agsc::util::ParseIntInRange(v, 0, 1 << 20, &incarnation)) {
        PrintUsage();
        return agsc::util::kExitUsage;
      }
      continue;
    }
    PrintUsage();
    return agsc::util::kExitUsage;
  }
  return WorkerMain(worker_id, incarnation);
}
