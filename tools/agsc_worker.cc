// agsc_worker: one crash-isolated rollout worker process.
//
// Two transports, one protocol (core/worker_protocol over util/ipc frames):
//  * local (default): spawned by the trainer's ProcSampler
//    (`agsc_train --proc-workers N`) and driven over stdin/stdout pipes;
//    stderr carries diagnostics.
//  * remote (`--connect HOST:PORT`): launched externally (another host,
//    a supervisor script, a test harness) against a trainer listening via
//    `agsc_train --listen ... --remote-workers N`. Each fresh TCP
//    connection opens with a kMsgRegister frame claiming this worker's
//    `--worker-id` slot; a dropped connection (trainer-side escalation or
//    a real network fault) is answered by reconnecting with bounded
//    backoff and re-registering — the trainer replays the episode prefix,
//    so the rollout stays bit-identical.
//
// The worker owns a single environment replica rebuilt deterministically
// from the kMsgInit frame and steps it under the trainer's direction; the
// trainer keeps the policy, the sampling RNG streams, and the rollout
// buffers, so a worker crash loses nothing that cannot be replayed.
//
// Lifecycle contract: the worker never outlives its transport. EOF on
// stdin — the trainer died or dropped this incarnation — is a clean exit;
// EOF on a socket triggers a reconnect. A protocol violation is a loud
// nonzero exit (local) or a reconnect (remote; the trainer observes EOF
// and replays). SIGINT/SIGTERM are ignored: a terminal ^C must reach only
// the trainer, which winds the fleet down cooperatively (kMsgShutdown /
// transport close), and SIGKILL remains the trainer's escalation path for
// a hung local worker.

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "core/worker_protocol.h"
#include "env/sc_env.h"
#include "map/trace.h"
#include "nn/tensor.h"
#include "util/build_info.h"
#include "util/env_flags.h"
#include "util/exit_codes.h"
#include "util/fault_inject.h"
#include "util/ipc.h"
#include "util/logging.h"
#include "util/net.h"
#include "util/parse.h"
#include "util/retry.h"

namespace {

using agsc::core::DecodeEpisodePrefix;
using agsc::core::DecodeWorkerActions;
using agsc::core::DecodeWorkerInit;
using agsc::core::EncodeWorkerHello;
using agsc::core::EncodeWorkerRegister;
using agsc::core::EncodeWorkerStepResult;
using agsc::core::EpisodePrefix;
using agsc::core::WorkerActions;
using agsc::core::WorkerHello;
using agsc::core::WorkerInit;
using agsc::core::WorkerRegister;
using agsc::core::WorkerStepResult;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: agsc_worker [--worker-id N] [--incarnation N]\n"
      "       agsc_worker --worker-id N --connect HOST:PORT\n"
      "                   [--connect-timeout-ms MS] [--connect-retries N]\n"
      "       agsc_worker --version | --build-info\n"
      "Rollout worker for agsc_train. Without --connect it speaks the\n"
      "framed worker protocol on stdin/stdout (spawned by --proc-workers N\n"
      "and not meant to be run by hand). With --connect it registers its\n"
      "--worker-id slot with a trainer listening via --listen/\n"
      "--remote-workers N, and reconnects with bounded backoff if the\n"
      "connection drops.\n");
}

/// Packages one Reset/Step outcome (plus the post-step RNG position and,
/// when the episode ended, its metrics) for the wire.
WorkerStepResult BuildResult(agsc::env::ScEnv& env,
                             const agsc::env::StepResult& step,
                             bool is_reset) {
  WorkerStepResult result;
  result.is_reset = is_reset;
  result.done = step.done;
  result.observations = step.observations;
  result.state = step.state;
  if (!is_reset) {
    result.rewards = step.rewards;
    const int num_agents = env.num_agents();
    result.he_neighbors.resize(static_cast<size_t>(num_agents));
    result.ho_neighbors.resize(static_cast<size_t>(num_agents));
    for (int k = 0; k < num_agents; ++k) {
      const std::vector<int> he = env.HeterogeneousNeighbors(k);
      const std::vector<int> ho = env.HomogeneousNeighbors(k);
      result.he_neighbors[static_cast<size_t>(k)].assign(he.begin(), he.end());
      result.ho_neighbors[static_cast<size_t>(k)].assign(ho.begin(), ho.end());
    }
    if (step.done) result.metrics = env.EpisodeMetrics();
  }
  result.rng_state = env.rng().SaveState();
  return result;
}

void ToUvActions(const WorkerActions& actions,
                 std::vector<agsc::env::UvAction>& out) {
  out.resize(actions.per_agent.size());
  for (size_t k = 0; k < actions.per_agent.size(); ++k) {
    out[k] = {actions.per_agent[k][0], actions.per_agent[k][1]};
  }
}

/// Arms/disarms the process-global fault campaigns for one session.
/// `incarnation` is the local --incarnation flag or the remote connection
/// counter; faults target (worker id, incarnation 0) except STALL_READS,
/// which carries its own incarnation knob so a stall can be aimed at a
/// *respawned* incarnation's large replay prefix.
void ScopeWorkerFaults(int worker_id, int incarnation) {
  agsc::util::FaultInjector& faults = agsc::util::FaultInjector::Instance();
  const int fault_target = agsc::util::GetEnvOr("AGSC_FAULT_WORKER_ID", -1);
  const int stall_reads_incarnation =
      agsc::util::GetEnvOr("AGSC_FAULT_STALL_READS_INCARNATION", 0);
  if (fault_target >= 0 && fault_target != worker_id) {
    faults.DisarmWorkerFaults();
    faults.DisarmReadStallFault();
    return;
  }
  if (incarnation != 0) faults.DisarmWorkerFaults();
  if (incarnation != stall_reads_incarnation) faults.DisarmReadStallFault();
}

/// Outcome of one session (one pipe lifetime / one TCP connection).
enum class SessionEnd {
  kShutdown,   ///< kMsgShutdown or clean EOF: exit 0.
  kReconnect,  ///< Remote only: transport fault/drop; reconnect + replay.
  kFailure,    ///< Fatal: exit with the returned code.
};

/// Drives one init -> hello -> episodes conversation over an established
/// transport. `out_seq` continues the writer's sequence (remote sessions
/// already spent seq 0 on kMsgRegister). On kFailure, `*exit_code` holds
/// the exit code.
SessionEnd RunSession(agsc::util::FrameReader& reader,
                      agsc::util::FrameWriter& writer, uint64_t out_seq,
                      int worker_id, int incarnation, bool is_remote,
                      int* exit_code) {
  ScopeWorkerFaults(worker_id, incarnation);
  agsc::util::FaultInjector& faults = agsc::util::FaultInjector::Instance();
  *exit_code = agsc::util::kExitOk;

  const auto fail = [&](int code) {
    if (is_remote) return SessionEnd::kReconnect;
    *exit_code = code;
    return SessionEnd::kFailure;
  };

  const auto send_result = [&](const WorkerStepResult& result) {
    const agsc::util::FaultInjector::FrameFault fault =
        faults.NextFrameFault();
    if (fault.stall_ms > 0) {
      AGSC_LOG(kWarning) << "worker " << worker_id
                         << ": injected pipe stall of " << fault.stall_ms
                         << " ms";
      ::usleep(static_cast<useconds_t>(fault.stall_ms) * 1000);
    }
    if (fault.corrupt_byte >= 0) {
      AGSC_LOG(kWarning) << "worker " << worker_id
                         << ": injected frame corruption";
    }
    return writer.Write(agsc::core::kMsgStepResult, out_seq++,
                        EncodeWorkerStepResult(result), /*timeout_ms=*/-1,
                        fault.corrupt_byte) == agsc::util::IpcStatus::kOk;
  };

  // Injected read-side faults (STALL_READS / DROP_CONN), consulted before
  // every incoming frame. Returns false when the session must drop.
  const auto apply_read_fault = [&]() {
    const agsc::util::FaultInjector::ReadFault fault = faults.NextReadFault();
    if (fault.stall_ms > 0) {
      AGSC_LOG(kWarning) << "worker " << worker_id
                         << ": injected read stall of " << fault.stall_ms
                         << " ms (peer stops draining)";
      ::usleep(static_cast<useconds_t>(fault.stall_ms) * 1000);
    }
    if (fault.drop) {
      AGSC_LOG(kWarning) << "worker " << worker_id
                         << ": injected connection drop";
      return false;
    }
    return true;
  };

  // --- Handshake: kMsgInit -> rebuild the env -> kMsgHello. ---
  agsc::util::Frame frame;
  if (!apply_read_fault()) return fail(agsc::util::kExitIoError);
  agsc::util::IpcStatus status = reader.Read(frame, /*timeout_ms=*/-1);
  if (status == agsc::util::IpcStatus::kEof) return SessionEnd::kShutdown;
  if (status != agsc::util::IpcStatus::kOk ||
      frame.type != agsc::core::kMsgInit) {
    AGSC_LOG(kError) << "worker " << worker_id << ": bad init frame ("
                     << agsc::util::IpcStatusName(status) << ")";
    return fail(agsc::util::kExitIoError);
  }
  WorkerInit init;
  if (!DecodeWorkerInit(frame.payload, init)) {
    AGSC_LOG(kError) << "worker " << worker_id
                     << ": init payload rejected (protocol/config mismatch)";
    *exit_code = agsc::util::kExitConfig;
    return SessionEnd::kFailure;
  }

  std::unique_ptr<agsc::env::ScEnv> env;
  try {
    // The ctor seed is irrelevant: every episode prefix loads the exact RNG
    // state this shard's stream is at, so the env is reconstructible from
    // (campus, config) alone.
    env = std::make_unique<agsc::env::ScEnv>(
        init.config, agsc::map::BuildDataset(init.campus, init.config.num_pois),
        /*seed=*/0);
  } catch (const std::exception& e) {
    AGSC_LOG(kError) << "worker " << worker_id
                     << ": env rebuild failed: " << e.what();
    *exit_code = agsc::util::kExitConfig;
    return SessionEnd::kFailure;
  }

  WorkerHello hello;
  hello.worker_id = worker_id;
  hello.num_agents = env->num_agents();
  hello.obs_dim = env->obs_dim();
  hello.state_dim = env->state_dim();
  if (writer.Write(agsc::core::kMsgHello, out_seq++,
                   EncodeWorkerHello(hello)) != agsc::util::IpcStatus::kOk) {
    return fail(agsc::util::kExitIoError);
  }

  // --- Steady state: episode prefixes and steps until shutdown/EOF. ---
  agsc::env::StepResult step;
  std::vector<agsc::env::UvAction> uv_actions;
  for (;;) {
    if (!apply_read_fault()) return fail(agsc::util::kExitIoError);
    status = reader.Read(frame, /*timeout_ms=*/-1);
    if (status == agsc::util::IpcStatus::kEof) {
      return is_remote ? SessionEnd::kReconnect : SessionEnd::kShutdown;
    }
    if (status != agsc::util::IpcStatus::kOk) {
      AGSC_LOG(kError) << "worker " << worker_id << ": transport "
                       << agsc::util::IpcStatusName(status)
                       << (is_remote ? "; reconnecting" : "; exiting");
      return fail(agsc::util::kExitIoError);
    }

    switch (frame.type) {
      case agsc::core::kMsgShutdown:
        return SessionEnd::kShutdown;

      case agsc::core::kMsgEpisodePrefix: {
        EpisodePrefix prefix;
        if (!DecodeEpisodePrefix(frame.payload, prefix)) {
          AGSC_LOG(kError) << "worker " << worker_id
                           << ": episode prefix rejected";
          *exit_code = agsc::util::kExitConfig;
          return SessionEnd::kFailure;
        }
        if ((prefix.flags & agsc::core::kPrefixNaiveEnv) != 0) {
          env->DisableSpatialIndex();
        }
        if ((prefix.flags & agsc::core::kPrefixScalarChannel) != 0) {
          env->DisableChannelBatch();
        }
        env->rng().LoadState(prefix.rng_state);
        env->Reset(step);
        bool replayed = false;
        for (const WorkerActions& actions : prefix.replay) {
          ToUvActions(actions, uv_actions);
          env->Step(uv_actions, step);
          replayed = true;
        }
        if (!send_result(BuildResult(*env, step, !replayed))) {
          return fail(agsc::util::kExitIoError);
        }
        break;
      }

      case agsc::core::kMsgStep: {
        if (faults.KillWorkerNow()) {
          AGSC_LOG(kWarning) << "worker " << worker_id
                             << ": injected SIGKILL (KILL_WORKER_NTH)";
          ::raise(SIGKILL);
        }
        WorkerActions actions;
        if (!DecodeWorkerActions(frame.payload, actions) ||
            static_cast<int>(actions.per_agent.size()) !=
                env->num_agents()) {
          AGSC_LOG(kError) << "worker " << worker_id
                           << ": step actions rejected";
          *exit_code = agsc::util::kExitConfig;
          return SessionEnd::kFailure;
        }
        ToUvActions(actions, uv_actions);
        env->Step(uv_actions, step);
        if (!send_result(BuildResult(*env, step, /*is_reset=*/false))) {
          return fail(agsc::util::kExitIoError);
        }
        break;
      }

      default:
        AGSC_LOG(kError) << "worker " << worker_id
                         << ": unexpected frame type " << frame.type;
        *exit_code = agsc::util::kExitConfig;
        return SessionEnd::kFailure;
    }
  }
}

void IgnoreTerminalSignals() {
  // The protocol owns the transport; only the trainer may end this process
  // (transport close or SIGKILL), so terminal signals are ignored and a
  // dead peer must surface as EPIPE/EOF rather than a signal death.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  agsc::util::IgnoreSigpipe();
}

int PipeMain(int worker_id, int incarnation) {
  IgnoreTerminalSignals();
  agsc::util::FrameReader reader(STDIN_FILENO);
  agsc::util::FrameWriter writer(STDOUT_FILENO);
  int exit_code = agsc::util::kExitOk;
  const SessionEnd end = RunSession(reader, writer, /*out_seq=*/0, worker_id,
                                    incarnation, /*is_remote=*/false,
                                    &exit_code);
  // kReconnect cannot happen on a pipe (RunSession maps faults to
  // kFailure); kShutdown is the clean exit.
  return end == SessionEnd::kFailure ? exit_code : agsc::util::kExitOk;
}

int ConnectMain(const std::string& host, int port, int worker_id,
                long connect_timeout_ms, int connect_retries) {
  IgnoreTerminalSignals();
  agsc::util::RetryPolicy policy;
  policy.max_attempts = connect_retries;
  policy.initial_backoff_ms = 50;
  policy.backoff_multiplier = 1.5;
  policy.max_backoff_ms = 1000;
  int connect_seq = 0;
  for (;;) {
    std::string error;
    const int fd = agsc::util::TcpConnectWithRetry(
        host, port, connect_timeout_ms, policy, nullptr, &error);
    if (fd < 0) {
      AGSC_LOG(kError) << "worker " << worker_id << ": cannot reach trainer "
                       << host << ":" << port << " (" << error << "); exiting "
                       << agsc::util::ExitCodeName(agsc::util::kExitNetError);
      return agsc::util::kExitNetError;
    }
    agsc::util::FrameWriter writer(fd);
    agsc::util::FrameReader reader(fd);
    WorkerRegister reg;
    reg.worker_id = worker_id;
    reg.connect_seq = connect_seq;
    SessionEnd end = SessionEnd::kReconnect;
    int exit_code = agsc::util::kExitOk;
    if (writer.Write(agsc::core::kMsgRegister, /*seq=*/0,
                     EncodeWorkerRegister(reg), /*timeout_ms=*/10000) ==
        agsc::util::IpcStatus::kOk) {
      end = RunSession(reader, writer, /*out_seq=*/1, worker_id,
                       /*incarnation=*/connect_seq, /*is_remote=*/true,
                       &exit_code);
    }
    ::close(fd);
    if (end == SessionEnd::kShutdown) return agsc::util::kExitOk;
    if (end == SessionEnd::kFailure) return exit_code;
    ++connect_seq;
    AGSC_LOG(kWarning) << "worker " << worker_id
                       << ": connection ended; reconnecting (connect_seq="
                       << connect_seq << ")";
  }
}

}  // namespace

int main(int argc, char** argv) {
  int worker_id = 0;
  int incarnation = 0;
  std::string connect;
  int connect_timeout_ms = 10000;
  int connect_retries = 40;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--version" || arg == "--build-info") {
      std::printf("agsc_worker %s\n",
                  agsc::util::BuildInfoString(
                      std::string("gemm-isa=") + agsc::nn::ActiveGemmIsaName())
                      .c_str());
      return agsc::util::kExitOk;
    }
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return agsc::util::kExitOk;
    }
    if (arg == "--worker-id") {
      const char* v = next();
      if (v == nullptr ||
          !agsc::util::ParseIntInRange(v, 0, 1 << 20, &worker_id)) {
        PrintUsage();
        return agsc::util::kExitUsage;
      }
      continue;
    }
    if (arg == "--incarnation") {
      const char* v = next();
      if (v == nullptr ||
          !agsc::util::ParseIntInRange(v, 0, 1 << 20, &incarnation)) {
        PrintUsage();
        return agsc::util::kExitUsage;
      }
      continue;
    }
    if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) {
        PrintUsage();
        return agsc::util::kExitUsage;
      }
      connect = v;
      continue;
    }
    if (arg == "--connect-timeout-ms") {
      const char* v = next();
      if (v == nullptr || !agsc::util::ParseIntInRange(v, 1, 1 << 30,
                                                       &connect_timeout_ms)) {
        PrintUsage();
        return agsc::util::kExitUsage;
      }
      continue;
    }
    if (arg == "--connect-retries") {
      const char* v = next();
      if (v == nullptr ||
          !agsc::util::ParseIntInRange(v, 1, 1 << 20, &connect_retries)) {
        PrintUsage();
        return agsc::util::kExitUsage;
      }
      continue;
    }
    PrintUsage();
    return agsc::util::kExitUsage;
  }
  if (connect.empty()) return PipeMain(worker_id, incarnation);
  std::string host;
  int port = 0;
  std::string parse_error;
  if (!agsc::util::ParseHostPort(connect, &host, &port, &parse_error)) {
    std::fprintf(stderr, "agsc_worker: bad --connect address: %s\n",
                 parse_error.c_str());
    return agsc::util::kExitUsage;
  }
  if (port == 0) {
    std::fprintf(stderr,
                 "agsc_worker: bad --connect address '%s': port 0 is "
                 "listen-only (kernel-picked); connecting needs the "
                 "trainer's actual port\n",
                 connect.c_str());
    return agsc::util::kExitUsage;
  }
  return ConnectMain(host, port, worker_id, connect_timeout_ms,
                     connect_retries);
}
