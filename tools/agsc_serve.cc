// Low-latency policy dispatch service: the serving counterpart of
// agsc_train.
//
//   agsc_serve --snapshot FILE | --snapshot-dir DIR [--watch]
//              [--watch-poll-ms MS] [--max-batch N] [--deadline-ms MS]
//              [--max-queue N] [--per-client-inflight N] [--admission 0|1]
//              [--sessions S] [--clients C] [--requests N]
//              [--duration-sec S] [--stats-json FILE]
//              [--listen HOST:PORT] [--port-file FILE]
//              [--write-budget-ms MS] [--listen-sndbuf BYTES]
//              [--max-pipeline N]
//              [--campus purdue|ncsu] [--timeslots T] [--pois I]
//              [--uavs U] [--ugvs G] [--subchannels Z] [--height M]
//              [--threshold DB] [--medium noma|tdma|ofdma]
//              [--no-eoi] [--no-copo] [--plain-copo] [--mappo]
//              [--seed S] [--quiet] [--version]
//
// Boots a DispatchServer over `--sessions` concurrent episode sessions
// (env replicas on split RNG streams), loads the newest valid checkpoint
// as the initial policy snapshot, and drives `--clients` request threads
// that step their sessions through the batched inference path until
// `--requests` steps each (0 = unbounded), `--duration-sec` elapses, or a
// signal arrives. The env/arch flags must match the run that produced the
// checkpoints — a fingerprint mismatch is rejected like any corrupted file.
//
// Snapshot promotion: with --watch, a background watcher polls
// --snapshot-dir and promotes any new ckpt_*.agsc it finds via an atomic
// registry swap — request handling never pauses, in-flight batches finish
// on the snapshot they pinned. A corrupted/truncated/mismatched file is
// rejected loudly (counted in `publish_rejects`) and the last good
// snapshot stays live; only a missing *initial* snapshot is fatal.
//
// Network frontend: --listen HOST:PORT (port 0 = kernel-assigned,
// published via --port-file) additionally exposes Act/StepSession as
// framed request/response over TCP (core/serve_protocol — the same
// length-prefixed CRC frames the rollout workers speak). Remote requests
// run through the identical batched dispatch path as the in-process
// client fleet, with the same --deadline-ms fail-fast discipline, and
// return bit-identical actions. With --listen the local client fleet
// defaults to none and the process serves until --duration-sec or a
// signal.
//
// Overload control: --max-queue bounds the admission queue (0 =
// unbounded), --per-client-inflight caps any one client's admitted-but-
// unserved requests (0 = unlimited), and --admission 0 disables the
// deadline-aware early-reject estimator. Requests the server refuses get
// an explicit `rejected` status immediately — they never hang and never
// expire silently. Per-connection frontend budgets: --write-budget-ms is
// the slow-client quarantine threshold, --listen-sndbuf shrinks SO_SNDBUF
// on accepted sockets (testing aid), --max-pipeline bounds per-connection
// in-flight requests. The AGSC_FAULT_FLOOD_CLIENTS / FLOOD_DEPTH /
// STALL_DRAIN_MS / STALL_EVERY env knobs turn the local fleet (and any
// ServeClient) into misbehaving load generators for the soak campaign.
//
// On exit the final serving stats are flushed as JSON (atomically, with
// retry) to --stats-json. SIGINT/SIGTERM stop serving cooperatively: the
// stats still flush, and the process exits with code 8.
//
// Exit codes (util/exit_codes.h): 0 ok, 2 usage, 3 invalid config, 4 I/O
// error (stats flush failed), 8 clean signal stop, 11 serve-error (no
// loadable snapshot at startup), 12 net-error (unusable --listen
// address).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "core/dispatch_server.h"
#include "core/hi_madrl.h"
#include "core/policy_snapshot.h"
#include "core/serve_protocol.h"
#include "nn/tensor.h"
#include "util/build_info.h"
#include "util/exit_codes.h"
#include "util/fault_inject.h"
#include "util/net.h"
#include "util/parse.h"
#include "util/retry.h"
#include "util/shutdown.h"

namespace {

struct Args {
  std::string snapshot_path;
  std::string snapshot_dir;
  bool watch = false;
  int watch_poll_ms = 200;
  int max_batch = 64;
  int deadline_ms = 50;
  int max_queue = 1024;
  int per_client_inflight = 0;
  int admission = 1;
  int write_budget_ms = 5000;
  int listen_sndbuf = 0;
  int max_pipeline = 256;
  int sessions = 4;
  int clients = 0;  ///< 0 = one per session (none with --listen).
  bool clients_set = false;
  int requests = 64;
  int duration_sec = 0;
  std::string stats_json;
  std::string listen;
  std::string port_file;

  std::string campus = "purdue";
  int timeslots = 100;
  int pois = 100;
  int uavs = 2;
  int ugvs = 2;
  int subchannels = 3;
  double height = 60.0;
  double threshold_db = 0.0;
  std::string medium = "noma";
  bool env_channel_scalar = false;
  bool env_fast_math = false;
  bool use_eoi = true;
  bool use_copo = true;
  bool hetero_copo = true;
  bool mappo = false;
  uint64_t seed = 1;
  bool quiet = false;
  bool help = false;
  bool version = false;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << name << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    auto next_int = [&](const char* name, int lo, int hi, int* out) {
      const char* v = next(name);
      if (!v) return false;
      if (!agsc::util::ParseIntInRange(v, lo, hi, out)) {
        std::cerr << "invalid value for " << name << ": '" << v
                  << "' (expected integer in [" << lo << ", " << hi
                  << "])\n";
        return false;
      }
      return true;
    };
    auto next_double = [&](const char* name, double lo, double hi,
                           double* out) {
      const char* v = next(name);
      if (!v) return false;
      if (!agsc::util::ParseDoubleInRange(v, lo, hi, out)) {
        std::cerr << "invalid value for " << name << ": '" << v
                  << "' (expected number in [" << lo << ", " << hi << "])\n";
        return false;
      }
      return true;
    };
    constexpr int kMaxInt = 1000000000;
    if (flag == "--snapshot") {
      const char* v = next("--snapshot");
      if (!v) return false;
      args.snapshot_path = v;
    } else if (flag == "--snapshot-dir") {
      const char* v = next("--snapshot-dir");
      if (!v) return false;
      args.snapshot_dir = v;
    } else if (flag == "--watch") {
      args.watch = true;
    } else if (flag == "--watch-poll-ms") {
      if (!next_int("--watch-poll-ms", 1, 3600000, &args.watch_poll_ms)) {
        return false;
      }
    } else if (flag == "--max-batch") {
      if (!next_int("--max-batch", 1, 65536, &args.max_batch)) return false;
    } else if (flag == "--deadline-ms") {
      if (!next_int("--deadline-ms", 0, 3600000, &args.deadline_ms)) {
        return false;
      }
    } else if (flag == "--max-queue") {
      if (!next_int("--max-queue", 0, kMaxInt, &args.max_queue)) return false;
    } else if (flag == "--per-client-inflight") {
      if (!next_int("--per-client-inflight", 0, kMaxInt,
                    &args.per_client_inflight)) {
        return false;
      }
    } else if (flag == "--admission") {
      if (!next_int("--admission", 0, 1, &args.admission)) return false;
    } else if (flag == "--write-budget-ms") {
      if (!next_int("--write-budget-ms", 1, 3600000, &args.write_budget_ms)) {
        return false;
      }
    } else if (flag == "--listen-sndbuf") {
      if (!next_int("--listen-sndbuf", 0, kMaxInt, &args.listen_sndbuf)) {
        return false;
      }
    } else if (flag == "--max-pipeline") {
      if (!next_int("--max-pipeline", 1, 65536, &args.max_pipeline)) {
        return false;
      }
    } else if (flag == "--sessions") {
      if (!next_int("--sessions", 1, 4096, &args.sessions)) return false;
    } else if (flag == "--clients") {
      if (!next_int("--clients", 1, 4096, &args.clients)) return false;
      args.clients_set = true;
    } else if (flag == "--listen") {
      const char* v = next("--listen");
      if (!v) return false;
      args.listen = v;
    } else if (flag == "--port-file") {
      const char* v = next("--port-file");
      if (!v) return false;
      args.port_file = v;
    } else if (flag == "--requests") {
      if (!next_int("--requests", 0, kMaxInt, &args.requests)) return false;
    } else if (flag == "--duration-sec") {
      if (!next_int("--duration-sec", 0, 86400, &args.duration_sec)) {
        return false;
      }
    } else if (flag == "--stats-json") {
      const char* v = next("--stats-json");
      if (!v) return false;
      args.stats_json = v;
    } else if (flag == "--campus") {
      const char* v = next("--campus");
      if (!v) return false;
      args.campus = v;
      if (args.campus != "purdue" && args.campus != "ncsu") {
        std::cerr << "invalid value for --campus: '" << args.campus
                  << "' (expected purdue|ncsu)\n";
        return false;
      }
    } else if (flag == "--timeslots") {
      if (!next_int("--timeslots", 1, kMaxInt, &args.timeslots)) return false;
    } else if (flag == "--pois") {
      if (!next_int("--pois", 1, kMaxInt, &args.pois)) return false;
    } else if (flag == "--uavs") {
      if (!next_int("--uavs", 0, kMaxInt, &args.uavs)) return false;
    } else if (flag == "--ugvs") {
      if (!next_int("--ugvs", 0, kMaxInt, &args.ugvs)) return false;
    } else if (flag == "--subchannels") {
      if (!next_int("--subchannels", 1, kMaxInt, &args.subchannels)) {
        return false;
      }
    } else if (flag == "--height") {
      if (!next_double("--height", 1e-6, 1e6, &args.height)) return false;
    } else if (flag == "--threshold") {
      if (!next_double("--threshold", -1e6, 1e6, &args.threshold_db)) {
        return false;
      }
    } else if (flag == "--medium") {
      const char* v = next("--medium");
      if (!v) return false;
      args.medium = v;
      if (args.medium != "noma" && args.medium != "tdma" &&
          args.medium != "ofdma") {
        std::cerr << "invalid value for --medium: '" << args.medium
                  << "' (expected noma|tdma|ofdma)\n";
        return false;
      }
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      if (!agsc::util::ParseUint64(v, &args.seed)) {
        std::cerr << "invalid value for --seed: '" << v
                  << "' (expected unsigned integer)\n";
        return false;
      }
    } else if (flag == "--env-channel-scalar") {
      args.env_channel_scalar = true;
    } else if (flag == "--env-fast-math") {
      args.env_fast_math = true;
    } else if (flag == "--no-eoi") {
      args.use_eoi = false;
    } else if (flag == "--no-copo") {
      args.use_copo = false;
    } else if (flag == "--plain-copo") {
      args.hetero_copo = false;
    } else if (flag == "--mappo") {
      args.mappo = true;
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--version" || flag == "--build-info") {
      args.version = true;
      return true;
    } else if (flag == "--help" || flag == "-h") {
      args.help = true;
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  if (args.snapshot_path.empty() && args.snapshot_dir.empty()) {
    std::cerr << "one of --snapshot or --snapshot-dir is required\n";
    return false;
  }
  if (args.watch && args.snapshot_dir.empty()) {
    std::cerr << "--watch requires --snapshot-dir\n";
    return false;
  }
  if (args.requests == 0 && args.duration_sec == 0 && args.listen.empty()) {
    // A listening server is legitimately unbounded (stopped by signal);
    // a pure local client fleet is not.
    std::cerr << "unbounded run: give --requests N or --duration-sec S\n";
    return false;
  }
  if (!args.port_file.empty() && args.listen.empty()) {
    std::cerr << "--port-file requires --listen\n";
    return false;
  }
  return true;
}

void PrintUsage(std::ostream& out) {
  out << "usage: agsc_serve --snapshot FILE | --snapshot-dir DIR [--watch]\n"
         "  [--watch-poll-ms MS] [--max-batch N] [--deadline-ms MS]\n"
         "  [--max-queue N] [--per-client-inflight N] [--admission 0|1]\n"
         "  [--sessions S] [--clients C] [--requests N] [--duration-sec S]\n"
         "  [--stats-json FILE] [--listen HOST:PORT] [--port-file FILE]\n"
         "  [--write-budget-ms MS] [--listen-sndbuf BYTES] [--max-pipeline N]\n"
         "  [--campus purdue|ncsu] [--timeslots T] [--pois I] [--uavs U]\n"
         "  [--ugvs G] [--subchannels Z] [--height M] [--threshold DB]\n"
         "  [--medium noma|tdma|ofdma] [--env-channel-scalar]\n"
         "  [--env-fast-math] [--no-eoi] [--no-copo]\n"
         "  [--plain-copo] [--mappo] [--seed S] [--quiet] [--version]\n"
         "exit codes: 0 ok, 2 usage, 3 config, 4 io, 8 signal-stop,\n"
         "  11 serve-error, 12 net-error\n";
}

/// Checkpoint files in `dir`, newest first by modification time (name as a
/// deterministic tie-break). Empty when the directory is missing/empty.
std::vector<std::string> CheckpointsNewestFirst(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::pair<fs::file_time_type, std::string>> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt_", 0) == 0 && name.ends_with(".agsc")) {
      std::error_code time_ec;
      const fs::file_time_type mtime = entry.last_write_time(time_ec);
      found.emplace_back(time_ec ? fs::file_time_type::min() : mtime,
                         entry.path().string());
    }
  }
  std::sort(found.begin(), found.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [mtime, path] : found) paths.push_back(std::move(path));
  return paths;
}

/// Serializes the final serving stats as a flat JSON object.
std::string StatsJson(const Args& args, int num_clients,
                      const agsc::core::DispatchStats& s, double elapsed_sec,
                      uint64_t client_steps) {
  std::ostringstream out;
  const double reqs =
      static_cast<double>(s.requests_ok + s.requests_expired);
  out << "{\n"
      << "  \"build\": \"" << agsc::util::BuildInfoString("") << "\",\n"
      << "  \"sessions\": " << args.sessions << ",\n"
      << "  \"clients\": " << num_clients << ",\n"
      << "  \"max_batch\": " << args.max_batch << ",\n"
      << "  \"deadline_ms\": " << args.deadline_ms << ",\n"
      << "  \"max_queue\": " << args.max_queue << ",\n"
      << "  \"per_client_inflight\": " << args.per_client_inflight << ",\n"
      << "  \"admission\": " << args.admission << ",\n"
      << "  \"elapsed_sec\": " << elapsed_sec << ",\n"
      << "  \"client_steps\": " << client_steps << ",\n"
      << "  \"requests_ok\": " << s.requests_ok << ",\n"
      << "  \"requests_expired\": " << s.requests_expired << ",\n"
      << "  \"requests_rejected\": " << s.requests_rejected << ",\n"
      << "  \"rejected_queue_full\": " << s.rejected_queue_full << ",\n"
      << "  \"rejected_client_cap\": " << s.rejected_client_cap << ",\n"
      << "  \"rejected_deadline\": " << s.rejected_deadline << ",\n"
      << "  \"requests_shed\": " << s.requests_shed << ",\n"
      << "  \"overload_entries\": " << s.overload_entries << ",\n"
      << "  \"overloaded\": " << (s.overloaded ? 1 : 0) << ",\n"
      << "  \"queue_depth\": " << s.queue_depth << ",\n"
      << "  \"ewma_batch_ms\": " << s.ewma_batch_ms << ",\n"
      << "  \"clients_quarantined\": " << s.clients_quarantined << ",\n"
      << "  \"requests_shutdown\": " << s.requests_shutdown << ",\n"
      << "  \"requests_no_snapshot\": " << s.requests_no_snapshot << ",\n"
      << "  \"requests_invalid\": " << s.requests_invalid << ",\n"
      << "  \"requests_per_sec\": "
      << (elapsed_sec > 0 ? reqs / elapsed_sec : 0.0) << ",\n"
      << "  \"batches\": " << s.batches << ",\n"
      << "  \"rows\": " << s.rows << ",\n"
      << "  \"publishes\": " << s.publishes << ",\n"
      << "  \"publish_rejects\": " << s.publish_rejects << ",\n"
      << "  \"episodes_completed\": " << s.episodes_completed << ",\n"
      << "  \"env_steps\": " << s.env_steps << ",\n"
      << "  \"latency_samples\": " << s.latency_samples << ",\n"
      << "  \"latency_p50_ms\": " << s.latency_p50_ms << ",\n"
      << "  \"latency_p99_ms\": " << s.latency_p99_ms << ",\n"
      << "  \"latency_max_ms\": " << s.latency_max_ms << "\n"
      << "}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agsc;
  util::InstallShutdownHandler();
  // Arm any AGSC_FAULT_* flags up front (the soak test injects write
  // failures and batch stalls through the environment).
  util::FaultInjector::Instance();
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    PrintUsage(args.help ? std::cout : std::cerr);
    return args.help ? util::kExitOk : util::kExitUsage;
  }
  if (args.version) {
    std::cout << "agsc_serve "
              << util::BuildInfoString(std::string("gemm-isa=") +
                                       nn::ActiveGemmIsaName())
              << "\n";
    return util::kExitOk;
  }

  const map::CampusId campus = args.campus == "ncsu"
                                   ? map::CampusId::kNcsu
                                   : map::CampusId::kPurdue;
  const map::Dataset dataset = map::BuildDataset(campus, args.pois);

  env::EnvConfig env_config;
  env_config.num_timeslots = args.timeslots;
  env_config.num_pois = args.pois;
  env_config.num_uavs = args.uavs;
  env_config.num_ugvs = args.ugvs;
  env_config.num_subchannels = args.subchannels;
  env_config.uav_height = args.height;
  env_config.sinr_threshold_db = args.threshold_db;
  if (args.medium == "tdma") {
    env_config.medium_access = env::MediumAccess::kTdma;
  } else if (args.medium == "ofdma") {
    env_config.medium_access = env::MediumAccess::kOfdma;
  }
  // Serving steps the env on the request path, so the channel tier flags
  // apply here too: --env-channel-scalar pins the bit-identical scalar
  // oracle, --env-fast-math trades libm bit patterns for vectorized
  // transcendentals (deterministic, bounded error).
  env_config.use_channel_batch = !args.env_channel_scalar;
  env_config.env_fast_math = args.env_fast_math;
  const std::string config_error = env_config.Validate();
  if (!config_error.empty()) {
    std::cerr << "invalid configuration: " << config_error << "\n";
    return util::kExitConfig;
  }
  env::ScEnv env(env_config, dataset, args.seed);

  // The staging trainer only exists to materialize networks of the right
  // architecture and load checkpoints into them; it never trains.
  core::TrainConfig train;
  train.use_eoi = args.use_eoi;
  train.use_copo = args.use_copo;
  train.hetero_copo = args.hetero_copo;
  if (args.mappo) train.base = core::BaseAlgo::kMappo;
  train.seed = args.seed;
  train.verbose = false;
  core::HiMadrlTrainer staging(env, train);

  core::DispatchConfig dispatch;
  dispatch.num_sessions = args.sessions;
  dispatch.max_batch = args.max_batch;
  dispatch.deadline_ms = args.deadline_ms;
  dispatch.max_queue = args.max_queue;
  dispatch.per_client_inflight = args.per_client_inflight;
  dispatch.admission = args.admission != 0;
  dispatch.seed = args.seed;
  core::DispatchServer server(env, dispatch);

  // Initial snapshot: the named file, or the newest loadable file in the
  // snapshot dir (skipping past corrupted ones). Nothing loadable is fatal
  // — a dispatch service without a policy cannot serve.
  std::string last_promoted;
  {
    std::vector<std::string> candidates;
    if (!args.snapshot_path.empty()) {
      candidates.push_back(args.snapshot_path);
    } else {
      candidates = CheckpointsNewestFirst(args.snapshot_dir);
    }
    std::string error;
    for (const std::string& path : candidates) {
      std::shared_ptr<core::PolicySnapshot> snapshot =
          core::LoadPolicySnapshot(staging, path, &error);
      if (snapshot != nullptr) {
        const uint64_t version = server.PublishSnapshot(std::move(snapshot));
        last_promoted = path;
        if (!args.quiet) {
          // Flushed immediately: this is the readiness line supervisors
          // (and the soak tests) wait on, and a redirected stdout is fully
          // buffered otherwise.
          std::cout << "serving snapshot v" << version << " from " << path
                    << std::endl;
        }
        break;
      }
      server.CountPublishReject();
      std::cerr << "rejected " << error << "\n";
    }
    if (last_promoted.empty()) {
      std::cerr << "serve-error: no loadable policy snapshot (looked at "
                << candidates.size() << " candidate(s))\n";
      return util::kExitServeError;
    }
  }

  server.Start();

  // Network frontend: framed Act/StepSession over TCP against the same
  // dispatch server the local client fleet uses.
  std::unique_ptr<core::ServeFrontend> frontend;
  if (!args.listen.empty()) {
    core::ServeFrontend::Options fopts;
    fopts.listen_address = args.listen;
    fopts.write_timeout_ms = args.write_budget_ms;
    fopts.send_buffer_bytes = args.listen_sndbuf;
    fopts.max_pipeline = args.max_pipeline;
    try {
      frontend = std::make_unique<core::ServeFrontend>(server, fopts);
    } catch (const util::NetError& e) {
      std::cerr << "network setup failed ("
                << util::ExitCodeName(util::kExitNetError) << "): " << e.what()
                << "\n";
      return util::kExitNetError;
    }
    frontend->Start();
    if (!args.port_file.empty()) {
      // Published atomically: pollers must never read partial content.
      const std::string tmp = args.port_file + ".tmp";
      std::ofstream out(tmp, std::ios::trunc);
      out << frontend->bound_port() << "\n";
      out.close();
      std::error_code ec;
      if (!out ||
          (std::filesystem::rename(tmp, args.port_file, ec), ec)) {
        std::cerr << "failed to write --port-file " << args.port_file
                  << "\n";
        return util::kExitIoError;
      }
    }
    if (!args.quiet) {
      // Also a readiness line — flush past the redirected-stdout buffer.
      std::cout << "listening on " << args.listen << " (port "
                << frontend->bound_port() << ")" << std::endl;
    }
  }

  // Checkpoint watcher: promote new files as the (simulated or real)
  // trainer drops them. Rejections keep the last good snapshot live.
  std::atomic<bool> watcher_stop{false};
  std::thread watcher;
  if (args.watch) {
    watcher = std::thread([&] {
      while (!watcher_stop.load(std::memory_order_relaxed) &&
             !util::ShutdownRequested()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(args.watch_poll_ms));
        const std::vector<std::string> candidates =
            CheckpointsNewestFirst(args.snapshot_dir);
        if (candidates.empty() || candidates.front() == last_promoted) {
          continue;
        }
        std::string error;
        std::shared_ptr<core::PolicySnapshot> snapshot =
            core::LoadPolicySnapshot(staging, candidates.front(), &error);
        if (snapshot == nullptr) {
          server.CountPublishReject();
          std::cerr << "rejected " << error << " (keeping v"
                    << server.CurrentSnapshot()->version() << " live)\n";
          continue;
        }
        const uint64_t version = server.PublishSnapshot(std::move(snapshot));
        last_promoted = candidates.front();
        if (!args.quiet) {
          std::cout << "promoted snapshot v" << version << " from "
                    << last_promoted << "\n";
        }
      }
    });
  }

  // Client fleet: each thread steps its sessions round-robin through the
  // batched dispatch path. This is the simulated request stream; a network
  // frontend would enqueue the same StepSession/Act calls.
  const int num_clients = args.clients_set
                              ? args.clients
                              : (args.listen.empty() ? args.sessions : 0);
  const auto start_time = std::chrono::steady_clock::now();
  const auto deadline =
      args.duration_sec > 0
          ? start_time + std::chrono::seconds(args.duration_sec)
          : std::chrono::steady_clock::time_point::max();
  std::atomic<uint64_t> client_steps{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(num_clients));
  const int flood_clients = util::FaultInjector::Instance().FloodClients();
  const int flood_depth = util::FaultInjector::Instance().FloodDepth();
  for (int c = 0; c < num_clients; ++c) {
    const bool flooder = c < flood_clients;
    clients.emplace_back([&, c, flooder] {
      core::RequestOptions opts;
      opts.client = static_cast<uint64_t>(c);
      int session = c % server.num_sessions();
      if (!flooder) {
        // Well-behaved client: lock-step request/response.
        for (int n = 0; args.requests == 0 || n < args.requests; ++n) {
          if (util::ShutdownRequested()) break;
          if (std::chrono::steady_clock::now() >= deadline) break;
          const core::DispatchResult result =
              server.StepSession(session, opts);
          if (result.shutdown) break;
          client_steps.fetch_add(1, std::memory_order_relaxed);
          session = (session + num_clients) % server.num_sessions();
        }
        return;
      }
      // Flooding client (AGSC_FAULT_FLOOD_CLIENTS): keeps flood_depth
      // async requests in flight instead of pacing itself on responses —
      // the admission queue and per-client cap must contain it.
      std::deque<std::future<core::DispatchResult>> inflight;
      int sent = 0;
      bool stop = false;
      while (!stop || !inflight.empty()) {
        while (!stop &&
               inflight.size() < static_cast<size_t>(flood_depth) &&
               (args.requests == 0 || sent < args.requests)) {
          if (util::ShutdownRequested() ||
              std::chrono::steady_clock::now() >= deadline) {
            stop = true;
            break;
          }
          inflight.push_back(server.StepSessionAsync(session, opts));
          ++sent;
          session = (session + num_clients) % server.num_sessions();
        }
        if (args.requests != 0 && sent >= args.requests) stop = true;
        if (inflight.empty()) continue;
        const core::DispatchResult result = inflight.front().get();
        inflight.pop_front();
        if (result.shutdown) stop = true;
        if (result.ok) client_steps.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  if (frontend != nullptr && clients.empty()) {
    // Pure network server: serve until the duration elapses or a signal
    // lands (the local fleet otherwise bounds the run's lifetime).
    while (!util::ShutdownRequested() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (frontend != nullptr) frontend->Stop();
  watcher_stop.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();
  server.Stop();

  const double elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  const core::DispatchStats stats = server.Stats();
  if (!args.quiet) {
    const double reqs =
        static_cast<double>(stats.requests_ok + stats.requests_expired);
    std::cout << "served " << stats.requests_ok << " ok, "
              << stats.requests_expired << " expired, "
              << stats.requests_rejected << " rejected, "
              << stats.requests_shed << " shed in " << elapsed_sec << "s ("
              << (elapsed_sec > 0 ? reqs / elapsed_sec : 0.0)
              << " req/s, p50 " << stats.latency_p50_ms << " ms, p99 "
              << stats.latency_p99_ms << " ms, " << stats.publishes
              << " publishes, " << stats.publish_rejects
              << " publish-rejects, " << stats.overload_entries
              << " overload entries, " << stats.clients_quarantined
              << " quarantined)\n";
  }

  // Final stats flush — also on signal stop. A persistent write failure is
  // an I/O error; the retry layer absorbs transient ones.
  if (!args.stats_json.empty()) {
    util::RetryPolicy policy;
    if (!util::AtomicWriteFileRetry(
            args.stats_json,
            StatsJson(args, num_clients, stats, elapsed_sec,
                      client_steps.load()),
            policy)) {
      std::cerr << "failed to write stats JSON " << args.stats_json << "\n";
      return util::kExitIoError;
    }
  }
  if (util::ShutdownRequested()) {
    std::cerr << "stopped by signal " << util::ShutdownSignal()
              << " (stats flushed)\n";
    return util::kExitSignalStop;
  }
  return util::kExitOk;
}
