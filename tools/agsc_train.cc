// Command-line trainer: the library's "production" entry point for running
// a single configurable experiment end to end.
//
//   agsc_train [--campus purdue|ncsu] [--iterations N] [--timeslots T]
//              [--pois I] [--uavs U] [--ugvs G] [--subchannels Z]
//              [--height M] [--threshold DB] [--medium noma|tdma|ofdma]
//              [--no-eoi] [--no-copo] [--plain-copo] [--mappo]
//              [--seed S] [--eval N] [--num-workers W]
//              [--proc-workers W] [--worker-binary PATH]
//              [--listen HOST:PORT] [--remote-workers W]
//              [--port-file FILE]
//              [--nn-threads T] [--nn-naive] [--env-naive]
//              [--env-channel-scalar] [--env-fast-math]
//              [--save FILE] [--load FILE]
//              [--checkpoint-dir DIR] [--checkpoint-every N]
//              [--checkpoint-keep K] [--resume]
//              [--stats-csv FILE] [--watchdog-sec S]
//              [--oracle-check-every N] [--max-backoffs N]
//              [--render] [--quiet] [--version]
//
// Trains h/i-MADRL (or the selected variant), evaluates it, prints the five
// paper metrics and optionally saves/loads a checkpoint. With
// --checkpoint-dir/--checkpoint-every the trainer writes crash-safe v2
// checkpoints periodically; --resume restores the newest valid one (falling
// back past corrupted files) and trains only the remaining iterations.
// --num-workers W samples rollouts on W parallel environment replicas with
// per-worker RNG streams: results are bit-identical for a given
// (seed, W) pair, and checkpoints capture every worker stream so --resume
// stays bit-exact.
// --proc-workers W moves those replicas into W crash-isolated agsc_worker
// subprocesses (mutually exclusive with --num-workers): a worker that
// crashes, hangs, or corrupts its pipe is killed, respawned with bounded
// backoff, and its episode shard is replayed deterministically, so the
// produced rollouts — and checkpoints — stay bit-identical to
// --num-workers W for the same seed. Checkpoints resume across modes.
// --listen HOST:PORT + --remote-workers W keep the same crash-isolated
// protocol but stop fork/exec'ing: the trainer listens on TCP (port 0 =
// kernel-assigned, published via --port-file) and W externally launched
// `agsc_worker --connect HOST:PORT` processes — containers, other hosts, a
// test harness — register for the worker slots. A dropped connection is
// the remote analogue of a worker crash: the worker reconnects (or a
// replacement registers) and the episode shard replays deterministically,
// so rollouts and checkpoints stay bit-identical to --num-workers W.
// --nn-threads T parallelizes the large GEMMs of the optimize phase over T
// workers and --nn-naive falls back to the reference kernels; both are
// bit-identical to the default blocked single-threaded kernels, so they
// change throughput only, never the learned parameters.
// --env-naive disables the environment's spatial indices and cached road
// routing, falling back to the linear-scan / per-call-Dijkstra reference
// paths — also bit-identical, kept as an oracle and debugging aid.
// --env-channel-scalar disables the batched SoA channel kernels, computing
// every gain through the scalar per-link ChannelModel — bit-identical
// (the batched default tier reproduces libm bit patterns), kept as the
// channel oracle. --env-fast-math swaps the batched kernels' libm
// transcendentals for vectorized polynomial approximations: deterministic
// and statistically equivalent (bounded per-gain error, pinned by tests)
// but NOT bit-identical, so checkpoints are not byte-comparable with
// exact-tier runs.
//
// Long-run supervisor (see DESIGN.md "Robustness"):
//  * SIGINT/SIGTERM stop the run cooperatively at the next iteration or
//    sampling-timeslot boundary: the trainer flushes a final checkpoint and
//    the stats CSV, then exits with code 8. A second signal aborts
//    immediately with code 9 (no flush).
//  * --watchdog-sec S bounds every parallel rollout step batch; a worker
//    hung longer than S seconds is reported (worker id + timeslot) and the
//    process fail-fast exits with code 7 instead of deadlocking.
//  * --oracle-check-every N cross-checks the optimized env/NN paths against
//    their retained naive oracles every N iterations and permanently falls
//    back to the oracle path on mismatch (recorded in checkpoints).
//  * --max-backoffs N turns a persistently diverging run (repeated NaN
//    updates after N learning-rate backoffs) into exit code 6 with the last
//    good checkpoint on disk.
//  * --stats-csv FILE writes one row of training diagnostics per completed
//    iteration (written atomically with retry, also on abnormal exits).
//
// Exit codes are stable (see util/exit_codes.h): 0 ok, 2 usage, 3 invalid
// config, 4 I/O error, 5 resume mismatch, 6 diverged, 7 watchdog timeout,
// 8 clean signal stop, 9 second-signal abort, 10 worker failed, 12 network
// setup failed (unusable --listen address).

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/hi_madrl.h"
#include "env/render.h"
#include "nn/tensor.h"
#include "util/build_info.h"
#include "util/exit_codes.h"
#include "util/net.h"
#include "util/parse.h"
#include "util/retry.h"
#include "util/shutdown.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

struct Args {
  std::string campus = "purdue";
  int iterations = 30;
  int timeslots = 100;
  int pois = 100;
  int uavs = 2;
  int ugvs = 2;
  int subchannels = 3;
  double height = 60.0;
  double threshold_db = 0.0;
  std::string medium = "noma";
  bool use_eoi = true;
  bool use_copo = true;
  bool hetero_copo = true;
  bool mappo = false;
  uint64_t seed = 1;
  int eval_episodes = 10;
  int num_workers = 1;
  bool num_workers_set = false;
  int proc_workers = 0;
  std::string worker_binary;
  std::string listen;
  int remote_workers = 0;
  std::string port_file;
  int nn_threads = 0;
  bool nn_naive = false;
  bool env_naive = false;
  bool env_channel_scalar = false;
  bool env_fast_math = false;
  std::string save_path;
  std::string load_path;
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  int checkpoint_keep = 3;
  bool resume = false;
  std::string stats_csv;
  int watchdog_sec = 0;
  int oracle_check_every = 0;
  int max_backoffs = 0;
  bool render = false;
  bool quiet = false;
  bool help = false;
  bool version = false;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  // Strict numeric parsing: reject garbage ("--iterations abc") and
  // out-of-range values ("--uavs -3") instead of silently training a
  // nonsense configuration.
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << name << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    auto next_int = [&](const char* name, int lo, int hi, int* out) {
      const char* v = next(name);
      if (!v) return false;
      if (!agsc::util::ParseIntInRange(v, lo, hi, out)) {
        std::cerr << "invalid value for " << name << ": '" << v
                  << "' (expected integer in [" << lo << ", " << hi
                  << "])\n";
        return false;
      }
      return true;
    };
    auto next_double = [&](const char* name, double lo, double hi,
                           double* out) {
      const char* v = next(name);
      if (!v) return false;
      if (!agsc::util::ParseDoubleInRange(v, lo, hi, out)) {
        std::cerr << "invalid value for " << name << ": '" << v
                  << "' (expected number in [" << lo << ", " << hi << "])\n";
        return false;
      }
      return true;
    };
    constexpr int kMaxInt = 1000000000;
    if (flag == "--campus") {
      const char* v = next("--campus");
      if (!v) return false;
      args.campus = v;
      if (args.campus != "purdue" && args.campus != "ncsu") {
        std::cerr << "invalid value for --campus: '" << args.campus
                  << "' (expected purdue|ncsu)\n";
        return false;
      }
    } else if (flag == "--iterations") {
      if (!next_int("--iterations", 0, kMaxInt, &args.iterations)) {
        return false;
      }
    } else if (flag == "--timeslots") {
      if (!next_int("--timeslots", 1, kMaxInt, &args.timeslots)) return false;
    } else if (flag == "--pois") {
      if (!next_int("--pois", 1, kMaxInt, &args.pois)) return false;
    } else if (flag == "--uavs") {
      if (!next_int("--uavs", 0, kMaxInt, &args.uavs)) return false;
    } else if (flag == "--ugvs") {
      if (!next_int("--ugvs", 0, kMaxInt, &args.ugvs)) return false;
    } else if (flag == "--subchannels") {
      if (!next_int("--subchannels", 1, kMaxInt, &args.subchannels)) {
        return false;
      }
    } else if (flag == "--height") {
      if (!next_double("--height", 1e-6, 1e6, &args.height)) return false;
    } else if (flag == "--threshold") {
      if (!next_double("--threshold", -1e6, 1e6, &args.threshold_db)) {
        return false;
      }
    } else if (flag == "--medium") {
      const char* v = next("--medium");
      if (!v) return false;
      args.medium = v;
      if (args.medium != "noma" && args.medium != "tdma" &&
          args.medium != "ofdma") {
        std::cerr << "invalid value for --medium: '" << args.medium
                  << "' (expected noma|tdma|ofdma)\n";
        return false;
      }
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      if (!agsc::util::ParseUint64(v, &args.seed)) {
        std::cerr << "invalid value for --seed: '" << v
                  << "' (expected unsigned integer)\n";
        return false;
      }
    } else if (flag == "--eval") {
      if (!next_int("--eval", 0, kMaxInt, &args.eval_episodes)) return false;
    } else if (flag == "--num-workers") {
      if (!next_int("--num-workers", 1, 1024, &args.num_workers)) {
        return false;
      }
      args.num_workers_set = true;
    } else if (flag == "--proc-workers") {
      if (!next_int("--proc-workers", 1, 1024, &args.proc_workers)) {
        return false;
      }
    } else if (flag == "--worker-binary") {
      const char* v = next("--worker-binary");
      if (!v) return false;
      args.worker_binary = v;
    } else if (flag == "--listen") {
      const char* v = next("--listen");
      if (!v) return false;
      args.listen = v;
    } else if (flag == "--remote-workers") {
      if (!next_int("--remote-workers", 1, 1024, &args.remote_workers)) {
        return false;
      }
    } else if (flag == "--port-file") {
      const char* v = next("--port-file");
      if (!v) return false;
      args.port_file = v;
    } else if (flag == "--nn-threads") {
      if (!next_int("--nn-threads", 0, 1024, &args.nn_threads)) return false;
    } else if (flag == "--nn-naive") {
      args.nn_naive = true;
    } else if (flag == "--env-naive") {
      args.env_naive = true;
    } else if (flag == "--env-channel-scalar") {
      args.env_channel_scalar = true;
    } else if (flag == "--env-fast-math") {
      args.env_fast_math = true;
    } else if (flag == "--save") {
      const char* v = next("--save");
      if (!v) return false;
      args.save_path = v;
    } else if (flag == "--load") {
      const char* v = next("--load");
      if (!v) return false;
      args.load_path = v;
    } else if (flag == "--checkpoint-dir") {
      const char* v = next("--checkpoint-dir");
      if (!v) return false;
      args.checkpoint_dir = v;
    } else if (flag == "--checkpoint-every") {
      if (!next_int("--checkpoint-every", 1, kMaxInt,
                    &args.checkpoint_every)) {
        return false;
      }
    } else if (flag == "--checkpoint-keep") {
      if (!next_int("--checkpoint-keep", 1, kMaxInt, &args.checkpoint_keep)) {
        return false;
      }
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--stats-csv") {
      const char* v = next("--stats-csv");
      if (!v) return false;
      args.stats_csv = v;
    } else if (flag == "--watchdog-sec") {
      if (!next_int("--watchdog-sec", 0, 86400, &args.watchdog_sec)) {
        return false;
      }
    } else if (flag == "--oracle-check-every") {
      if (!next_int("--oracle-check-every", 0, kMaxInt,
                    &args.oracle_check_every)) {
        return false;
      }
    } else if (flag == "--max-backoffs") {
      if (!next_int("--max-backoffs", 0, kMaxInt, &args.max_backoffs)) {
        return false;
      }
    } else if (flag == "--no-eoi") {
      args.use_eoi = false;
    } else if (flag == "--no-copo") {
      args.use_copo = false;
    } else if (flag == "--plain-copo") {
      args.hetero_copo = false;
    } else if (flag == "--mappo") {
      args.mappo = true;
    } else if (flag == "--render") {
      args.render = true;
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--version" || flag == "--build-info") {
      args.version = true;
      return true;
    } else if (flag == "--help" || flag == "-h") {
      args.help = true;
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  if (args.resume && args.checkpoint_dir.empty()) {
    std::cerr << "--resume requires --checkpoint-dir\n";
    return false;
  }
  if (args.proc_workers > 0 && args.num_workers_set) {
    // Both select the replica count; a run is either in-process or
    // subprocess mode, never a mix.
    std::cerr << "--proc-workers and --num-workers are mutually exclusive\n";
    return false;
  }
  if (args.remote_workers > 0 &&
      (args.num_workers_set || args.proc_workers > 0)) {
    std::cerr << "--remote-workers is mutually exclusive with "
                 "--num-workers/--proc-workers\n";
    return false;
  }
  if (args.remote_workers > 0 && args.listen.empty()) {
    std::cerr << "--remote-workers requires --listen HOST:PORT\n";
    return false;
  }
  if (!args.listen.empty() && args.remote_workers == 0) {
    std::cerr << "--listen requires --remote-workers W\n";
    return false;
  }
  if (!args.port_file.empty() && args.listen.empty()) {
    std::cerr << "--port-file requires --listen\n";
    return false;
  }
  return true;
}

void PrintUsage(std::ostream& out) {
  out << "usage: agsc_train [--campus purdue|ncsu] [--iterations N]\n"
         "  [--timeslots T] [--pois I] [--uavs U] [--ugvs G]\n"
         "  [--subchannels Z] [--height M] [--threshold DB]\n"
         "  [--medium noma|tdma|ofdma] [--no-eoi] [--no-copo]\n"
         "  [--plain-copo] [--mappo] [--seed S] [--eval N]\n"
         "  [--num-workers W] [--proc-workers W] [--worker-binary PATH]\n"
         "  [--listen HOST:PORT] [--remote-workers W] [--port-file FILE]\n"
         "  [--nn-threads T] [--nn-naive]\n"
         "  [--env-naive] [--env-channel-scalar] [--env-fast-math]\n"
         "  [--save FILE] [--load FILE]\n"
         "  [--checkpoint-dir DIR] [--checkpoint-every N]\n"
         "  [--checkpoint-keep K] [--resume]\n"
         "  [--stats-csv FILE] [--watchdog-sec S]\n"
         "  [--oracle-check-every N] [--max-backoffs N]\n"
         "  [--render] [--quiet] [--version]\n"
         "exit codes: 0 ok, 2 usage, 3 config, 4 io, 5 resume-mismatch,\n"
         "  6 diverged, 7 watchdog-timeout, 8 signal-stop, 9 abort,\n"
         "  10 worker-failed, 12 net-error\n";
}

/// Serializes the trainer's full stats history and writes it atomically
/// (with retry). Called on clean completion AND on supervised abnormal
/// exits, so the CSV always covers every completed iteration.
bool WriteStatsCsv(const agsc::core::HiMadrlTrainer& trainer,
                   const std::string& path,
                   const agsc::util::RetryPolicy& policy) {
  std::ostringstream csv;
  // Provenance header: which build produced these numbers. Comment line so
  // the CSV stays loadable with `comment='#'` in pandas/R.
  csv << "# build: agsc_train "
      << agsc::util::BuildInfoString(std::string("gemm-isa=") +
                                     agsc::nn::ActiveGemmIsaName())
      << "\n";
  csv << "iteration,psi,sigma,xi,kappa,lambda,mean_reward_ext,"
         "mean_reward_int,eoi_loss,actor_grad_norm,value_loss,"
         "total_env_steps,anomalies,lr_backoff,env_oracle_fallback,"
         "nn_oracle_fallback,channel_oracle_fallback\n";
  for (const agsc::core::IterationStats& s : trainer.stats_history()) {
    csv << s.iteration;
    for (double v : s.rollout_metrics.ToVector()) csv << "," << v;
    csv << "," << s.mean_reward_ext << "," << s.mean_reward_int << ","
        << s.eoi_loss << "," << s.actor_grad_norm << "," << s.value_loss
        << "," << s.total_env_steps << "," << s.anomalies << ","
        << (s.lr_backoff ? 1 : 0) << "," << (s.env_oracle_fallback ? 1 : 0)
        << "," << (s.nn_oracle_fallback ? 1 : 0) << ","
        << (s.channel_oracle_fallback ? 1 : 0) << "\n";
  }
  if (!agsc::util::AtomicWriteFileRetry(path, csv.str(), policy)) {
    std::cerr << "failed to write stats CSV " << path << "\n";
    return false;
  }
  return true;
}

/// True if `dir` contains at least one ckpt_*.agsc file — used to tell
/// "fresh start" apart from "checkpoints exist but none loads" on --resume.
bool HasCheckpointFiles(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt_", 0) == 0 && name.ends_with(".agsc")) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agsc;
  util::InstallShutdownHandler();
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    PrintUsage(args.help ? std::cout : std::cerr);
    return args.help ? util::kExitOk : util::kExitUsage;
  }
  if (args.version) {
    std::cout << "agsc_train "
              << util::BuildInfoString(std::string("gemm-isa=") +
                                       nn::ActiveGemmIsaName())
              << "\n";
    return util::kExitOk;
  }

  const map::CampusId campus = args.campus == "ncsu"
                                   ? map::CampusId::kNcsu
                                   : map::CampusId::kPurdue;
  const map::Dataset dataset = map::BuildDataset(campus, args.pois);

  env::EnvConfig env_config;
  env_config.num_timeslots = args.timeslots;
  env_config.num_pois = args.pois;
  env_config.num_uavs = args.uavs;
  env_config.num_ugvs = args.ugvs;
  env_config.num_subchannels = args.subchannels;
  env_config.uav_height = args.height;
  env_config.sinr_threshold_db = args.threshold_db;
  if (args.medium == "tdma") {
    env_config.medium_access = env::MediumAccess::kTdma;
  } else if (args.medium == "ofdma") {
    env_config.medium_access = env::MediumAccess::kOfdma;
  }
  env_config.use_spatial_index = !args.env_naive;
  env_config.use_channel_batch = !args.env_channel_scalar;
  env_config.env_fast_math = args.env_fast_math;
  // Training consumes only each slot's last events; the full per-slot event
  // log is needed just for the trajectory/coordination renders.
  env_config.record_event_log = args.render;
  const std::string config_error = env_config.Validate();
  if (!config_error.empty()) {
    std::cerr << "invalid configuration: " << config_error << "\n";
    return util::kExitConfig;
  }
  env::ScEnv env(env_config, dataset, args.seed);

  core::TrainConfig train;
  train.iterations = args.iterations;
  train.use_eoi = args.use_eoi;
  train.use_copo = args.use_copo;
  train.hetero_copo = args.hetero_copo;
  if (args.mappo) train.base = core::BaseAlgo::kMappo;
  train.seed = args.seed;
  train.num_workers = args.num_workers;
  train.proc_workers = args.proc_workers;
  if (args.proc_workers > 0) {
    train.worker_binary = args.worker_binary;
    if (train.worker_binary.empty()) {
      // Default: the agsc_worker binary built next to this trainer.
      std::error_code ec;
      std::filesystem::path self =
          std::filesystem::canonical(argv[0], ec);
      train.worker_binary =
          ((ec ? std::filesystem::path(argv[0]) : self).parent_path() /
           "agsc_worker")
              .string();
    }
  }
  if (args.remote_workers > 0) {
    // Remote mode reuses the proc-sampler machinery; the worker binary is
    // whatever the operator launches against --listen.
    train.proc_workers = args.remote_workers;
    train.listen_address = args.listen;
  }
  train.nn_threads = args.nn_threads;
  train.nn_naive_kernels = args.nn_naive;
  train.verbose = !args.quiet;
  train.checkpoint_dir = args.checkpoint_dir;
  train.checkpoint_every = args.checkpoint_every;
  train.checkpoint_keep = args.checkpoint_keep;
  train.watchdog_ms = static_cast<long>(args.watchdog_sec) * 1000;
  train.oracle_check_every = args.oracle_check_every;
  train.max_lr_backoffs = args.max_backoffs;
  train.stop_check = [] { return util::ShutdownRequested(); };
  std::unique_ptr<core::HiMadrlTrainer> trainer_holder;
  try {
    trainer_holder = std::make_unique<core::HiMadrlTrainer>(env, train);
  } catch (const util::NetError& e) {
    std::cerr << "network setup failed ("
              << util::ExitCodeName(util::kExitNetError) << "): " << e.what()
              << "\n";
    return util::kExitNetError;
  }
  core::HiMadrlTrainer& trainer = *trainer_holder;

  if (!args.port_file.empty()) {
    // Publish the bound port (resolves --listen HOST:0) atomically: the
    // harness/operator polls for this file, so it must never read partial
    // content.
    const int port = trainer.SamplerBoundPort();
    const std::string tmp = args.port_file + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    out << port << "\n";
    out.close();
    std::error_code ec;
    if (!out || (std::filesystem::rename(tmp, args.port_file, ec), ec)) {
      std::cerr << "failed to write --port-file " << args.port_file << "\n";
      return util::kExitIoError;
    }
    if (!args.quiet) {
      std::cout << "listening on " << args.listen << " (port " << port
                << ", published to " << args.port_file << ")\n";
    }
  }

  if (args.resume) {
    if (trainer.LoadLatestCheckpoint(args.checkpoint_dir)) {
      std::cout << "resumed from " << args.checkpoint_dir << " at iteration "
                << trainer.iteration() << "\n";
    } else if (HasCheckpointFiles(args.checkpoint_dir)) {
      // Checkpoints exist but none is loadable into THIS configuration:
      // almost always a config/architecture mismatch. Refuse to silently
      // retrain from scratch next to data we can't read.
      std::cerr << "resume mismatch: " << args.checkpoint_dir
                << " contains checkpoints but none loads with this "
                << "configuration (see log above)\n";
      return util::kExitResumeMismatch;
    } else {
      std::cout << "no checkpoint in " << args.checkpoint_dir
                << "; starting fresh\n";
    }
  }
  if (!args.load_path.empty()) {
    if (!trainer.LoadCheckpoint(args.load_path)) {
      std::cerr << "failed to load checkpoint " << args.load_path << "\n";
      return util::kExitIoError;
    }
    std::cout << "loaded checkpoint " << args.load_path << "\n";
  }

  const auto flush_stats = [&]() -> bool {
    if (args.stats_csv.empty()) return true;
    return WriteStatsCsv(trainer, args.stats_csv, train.io_retry);
  };

  if (args.iterations > 0) {
    std::cout << "training " << args.iterations << " iterations on "
              << dataset.campus.name << " ("
              << trainer.TotalParameterCount() << " parameters)...\n";
    try {
      trainer.TrainTo(args.iterations);
    } catch (const util::InterruptedError& e) {
      // Cooperative signal stop: the trainer already flushed a final
      // checkpoint; persist the stats rows and report the signal.
      flush_stats();
      std::cerr << "stopped by signal "
                << util::ShutdownSignal() << ": " << e.what()
                << " (checkpoint flushed; resume with --resume)\n";
      return util::kExitSignalStop;
    } catch (const core::TrainingDiverged& e) {
      flush_stats();
      std::cerr << "training diverged: " << e.what()
                << " (last good checkpoint flushed)\n";
      return util::kExitDiverged;
    } catch (const core::ProcWorkerError& e) {
      // The worker fleet could not be kept alive (respawn budget exhausted
      // or spawn/handshake failure). The trainer flushed a final checkpoint
      // before rethrowing; persist stats and hand the supervisor a distinct
      // code so it can alert on infrastructure vs. training failures.
      flush_stats();
      std::cerr << "worker failed: " << e.what()
                << " (checkpoint flushed; resume with --resume)\n";
      return util::kExitWorkerFailed;
    } catch (const util::WatchdogTimeoutError& e) {
      // Fail fast: the hung worker may still be running, so skip all
      // destructors (a pool join would block on the stuck task) and leave
      // the previously written checkpoints as the recovery point.
      flush_stats();
      std::cerr << "watchdog timeout: " << e.what() << "\n" << std::flush;
      std::_Exit(util::kExitWatchdogTimeout);
    }
  }
  if (!args.save_path.empty()) {
    if (!trainer.SaveCheckpoint(args.save_path)) {
      std::cerr << "failed to save checkpoint " << args.save_path << "\n";
      return util::kExitIoError;
    }
    std::cout << "saved checkpoint to " << args.save_path << "\n";
  }
  if (!flush_stats()) return util::kExitIoError;

  core::EvalResult result;
  try {
    result = core::Evaluate(env, trainer, args.eval_episodes, args.seed + 99);
  } catch (const util::InterruptedError& e) {
    // Training already finished and was saved/flushed above; only the final
    // evaluation was cut short.
    std::cerr << "stopped by signal " << util::ShutdownSignal() << ": "
              << e.what() << "\n";
    return util::kExitSignalStop;
  }
  util::Table table({"metric", "value"});
  const char* names[] = {"data collection ratio (psi)",
                         "data loss ratio (sigma)",
                         "energy consumption ratio (xi)",
                         "geographical fairness (kappa)",
                         "efficiency (lambda)"};
  const std::vector<double> values = result.mean.ToVector();
  for (int i = 0; i < 5; ++i) {
    table.AddRow({names[i], util::FormatDouble(values[i], 4)});
  }
  table.Print();
  for (int k = 0; k < env.num_agents(); ++k) {
    std::cout << (env.IsUav(k) ? "UAV " : "UGV ") << k << ": phi="
              << util::FormatDouble(trainer.lcfs()[k].phi_deg, 1)
              << " chi=" << util::FormatDouble(trainer.lcfs()[k].chi_deg, 1)
              << "\n";
  }
  if (args.render) {
    std::cout << env::RenderTrajectoriesAscii(env);
  }
  return util::kExitOk;
}
