// Command-line trainer: the library's "production" entry point for running
// a single configurable experiment end to end.
//
//   agsc_train [--campus purdue|ncsu] [--iterations N] [--timeslots T]
//              [--pois I] [--uavs U] [--ugvs G] [--subchannels Z]
//              [--height M] [--threshold DB] [--medium noma|tdma|ofdma]
//              [--no-eoi] [--no-copo] [--plain-copo] [--mappo]
//              [--seed S] [--eval N] [--save FILE] [--load FILE]
//              [--render] [--quiet]
//
// Trains h/i-MADRL (or the selected variant), evaluates it, prints the five
// paper metrics and optionally saves/loads a checkpoint.

#include <cstring>
#include <iostream>
#include <string>

#include "core/hi_madrl.h"
#include "env/render.h"
#include "util/table.h"

namespace {

struct Args {
  std::string campus = "purdue";
  int iterations = 30;
  int timeslots = 100;
  int pois = 100;
  int uavs = 2;
  int ugvs = 2;
  int subchannels = 3;
  double height = 60.0;
  double threshold_db = 0.0;
  std::string medium = "noma";
  bool use_eoi = true;
  bool use_copo = true;
  bool hetero_copo = true;
  bool mappo = false;
  uint64_t seed = 1;
  int eval_episodes = 10;
  std::string save_path;
  std::string load_path;
  bool render = false;
  bool quiet = false;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << name << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--campus") {
      const char* v = next("--campus");
      if (!v) return false;
      args.campus = v;
    } else if (flag == "--iterations") {
      const char* v = next("--iterations");
      if (!v) return false;
      args.iterations = std::atoi(v);
    } else if (flag == "--timeslots") {
      const char* v = next("--timeslots");
      if (!v) return false;
      args.timeslots = std::atoi(v);
    } else if (flag == "--pois") {
      const char* v = next("--pois");
      if (!v) return false;
      args.pois = std::atoi(v);
    } else if (flag == "--uavs") {
      const char* v = next("--uavs");
      if (!v) return false;
      args.uavs = std::atoi(v);
    } else if (flag == "--ugvs") {
      const char* v = next("--ugvs");
      if (!v) return false;
      args.ugvs = std::atoi(v);
    } else if (flag == "--subchannels") {
      const char* v = next("--subchannels");
      if (!v) return false;
      args.subchannels = std::atoi(v);
    } else if (flag == "--height") {
      const char* v = next("--height");
      if (!v) return false;
      args.height = std::atof(v);
    } else if (flag == "--threshold") {
      const char* v = next("--threshold");
      if (!v) return false;
      args.threshold_db = std::atof(v);
    } else if (flag == "--medium") {
      const char* v = next("--medium");
      if (!v) return false;
      args.medium = v;
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--eval") {
      const char* v = next("--eval");
      if (!v) return false;
      args.eval_episodes = std::atoi(v);
    } else if (flag == "--save") {
      const char* v = next("--save");
      if (!v) return false;
      args.save_path = v;
    } else if (flag == "--load") {
      const char* v = next("--load");
      if (!v) return false;
      args.load_path = v;
    } else if (flag == "--no-eoi") {
      args.use_eoi = false;
    } else if (flag == "--no-copo") {
      args.use_copo = false;
    } else if (flag == "--plain-copo") {
      args.hetero_copo = false;
    } else if (flag == "--mappo") {
      args.mappo = true;
    } else if (flag == "--render") {
      args.render = true;
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agsc;
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    std::cerr
        << "usage: agsc_train [--campus purdue|ncsu] [--iterations N]\n"
           "  [--timeslots T] [--pois I] [--uavs U] [--ugvs G]\n"
           "  [--subchannels Z] [--height M] [--threshold DB]\n"
           "  [--medium noma|tdma|ofdma] [--no-eoi] [--no-copo]\n"
           "  [--plain-copo] [--mappo] [--seed S] [--eval N]\n"
           "  [--save FILE] [--load FILE] [--render] [--quiet]\n";
    return 1;
  }

  const map::CampusId campus = args.campus == "ncsu"
                                   ? map::CampusId::kNcsu
                                   : map::CampusId::kPurdue;
  const map::Dataset dataset = map::BuildDataset(campus, args.pois);

  env::EnvConfig env_config;
  env_config.num_timeslots = args.timeslots;
  env_config.num_pois = args.pois;
  env_config.num_uavs = args.uavs;
  env_config.num_ugvs = args.ugvs;
  env_config.num_subchannels = args.subchannels;
  env_config.uav_height = args.height;
  env_config.sinr_threshold_db = args.threshold_db;
  if (args.medium == "tdma") {
    env_config.medium_access = env::MediumAccess::kTdma;
  } else if (args.medium == "ofdma") {
    env_config.medium_access = env::MediumAccess::kOfdma;
  }
  env::ScEnv env(env_config, dataset, args.seed);

  core::TrainConfig train;
  train.iterations = args.iterations;
  train.use_eoi = args.use_eoi;
  train.use_copo = args.use_copo;
  train.hetero_copo = args.hetero_copo;
  if (args.mappo) train.base = core::BaseAlgo::kMappo;
  train.seed = args.seed;
  train.verbose = !args.quiet;
  core::HiMadrlTrainer trainer(env, train);

  if (!args.load_path.empty()) {
    if (!trainer.LoadCheckpoint(args.load_path)) {
      std::cerr << "failed to load checkpoint " << args.load_path << "\n";
      return 1;
    }
    std::cout << "loaded checkpoint " << args.load_path << "\n";
  }
  if (args.iterations > 0) {
    std::cout << "training " << args.iterations << " iterations on "
              << dataset.campus.name << " ("
              << trainer.TotalParameterCount() << " parameters)...\n";
    trainer.Train();
  }
  if (!args.save_path.empty()) {
    if (!trainer.SaveCheckpoint(args.save_path)) {
      std::cerr << "failed to save checkpoint " << args.save_path << "\n";
      return 1;
    }
    std::cout << "saved checkpoint to " << args.save_path << "\n";
  }

  const core::EvalResult result =
      core::Evaluate(env, trainer, args.eval_episodes, args.seed + 99);
  util::Table table({"metric", "value"});
  const char* names[] = {"data collection ratio (psi)",
                         "data loss ratio (sigma)",
                         "energy consumption ratio (xi)",
                         "geographical fairness (kappa)",
                         "efficiency (lambda)"};
  const std::vector<double> values = result.mean.ToVector();
  for (int i = 0; i < 5; ++i) {
    table.AddRow({names[i], util::FormatDouble(values[i], 4)});
  }
  table.Print();
  for (int k = 0; k < env.num_agents(); ++k) {
    std::cout << (env.IsUav(k) ? "UAV " : "UGV ") << k << ": phi="
              << util::FormatDouble(trainer.lcfs()[k].phi_deg, 1)
              << " chi=" << util::FormatDouble(trainer.lcfs()[k].chi_deg, 1)
              << "\n";
  }
  if (args.render) {
    std::cout << env::RenderTrajectoriesAscii(env);
  }
  return 0;
}
