#include <gtest/gtest.h>

#include "nn/ops.h"
#include "tests/test_util.h"

namespace agsc::nn {
namespace {

using agsc::testing::CheckGradient;

Tensor RandomTensor(int rows, int cols, uint64_t seed, float lo = -1.0f,
                    float hi = 1.0f) {
  util::Rng rng(seed);
  return Tensor::Uniform(rows, cols, rng, lo, hi);
}

TEST(AutogradTest, BackwardRequiresScalar) {
  Variable x = Variable::Parameter(Tensor(2, 2));
  EXPECT_THROW(x.Backward(), std::logic_error);
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  Variable c = Variable::Constant(Tensor::Scalar(2.0f));
  Variable p = Variable::Parameter(Tensor::Scalar(3.0f));
  Variable y = Mul(c, p);
  y.Backward();
  EXPECT_FLOAT_EQ(p.grad()[0], 2.0f);
  EXPECT_FALSE(c.requires_grad());
}

TEST(AutogradTest, GradientsAccumulateAcrossBackwards) {
  Variable p = Variable::Parameter(Tensor::Scalar(1.0f));
  Variable y1 = ScalarMul(p, 3.0f);
  Variable y2 = ScalarMul(p, 4.0f);
  y1.Backward();
  y2.Backward();
  EXPECT_FLOAT_EQ(p.grad()[0], 7.0f);
  p.ZeroGrad();
  EXPECT_FLOAT_EQ(p.grad()[0], 0.0f);
}

TEST(AutogradTest, DiamondGraphSumsPaths) {
  // y = x*x + x => dy/dx = 2x + 1.
  Variable x = Variable::Parameter(Tensor::Scalar(3.0f));
  Variable y = Add(Mul(x, x), x);
  y.Backward();
  EXPECT_FLOAT_EQ(y.value()[0], 12.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
}

TEST(AutogradTest, DetachCutsGraph) {
  Variable x = Variable::Parameter(Tensor::Scalar(2.0f));
  Variable d = Mul(x, x).Detach();
  Variable y = Mul(d, x);  // y = const(4) * x.
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
}

TEST(AutogradGradCheck, MatMulLeft) {
  Tensor b = RandomTensor(3, 2, 11);
  CheckGradient(
      [&](const Variable& x) {
        return Sum(MatMul(x, Variable::Constant(b)));
      },
      RandomTensor(2, 3, 12));
}

TEST(AutogradGradCheck, MatMulRight) {
  Tensor a = RandomTensor(2, 3, 13);
  CheckGradient(
      [&](const Variable& x) {
        return Sum(MatMul(Variable::Constant(a), x));
      },
      RandomTensor(3, 4, 14));
}

TEST(AutogradGradCheck, AddSubMul) {
  Tensor other = RandomTensor(2, 3, 15);
  CheckGradient(
      [&](const Variable& x) {
        Variable o = Variable::Constant(other);
        return Sum(Mul(Sub(Add(x, o), ScalarMul(o, 0.5f)), x));
      },
      RandomTensor(2, 3, 16));
}

TEST(AutogradGradCheck, RowBroadcasts) {
  Tensor m = RandomTensor(4, 3, 17);
  CheckGradient(
      [&](const Variable& v) {
        Variable mm = Variable::Constant(m);
        return Sum(Mul(AddRowVector(mm, v), MulRowVector(mm, v)));
      },
      RandomTensor(1, 3, 18, 0.5f, 1.5f));
}

TEST(AutogradGradCheck, RowBroadcastGradIntoMatrix) {
  Tensor v = RandomTensor(1, 3, 19);
  CheckGradient(
      [&](const Variable& m) {
        Variable vv = Variable::Constant(v);
        return Sum(Square(AddRowVector(m, vv)));
      },
      RandomTensor(4, 3, 20));
}

TEST(AutogradGradCheck, ExpLogChain) {
  CheckGradient(
      [](const Variable& x) { return Sum(Log(ScalarAdd(Exp(x), 1.0f))); },
      RandomTensor(3, 3, 21));
}

TEST(AutogradGradCheck, TanhSigmoid) {
  CheckGradient(
      [](const Variable& x) { return Sum(Mul(Tanh(x), Sigmoid(x))); },
      RandomTensor(2, 4, 22));
}

TEST(AutogradGradCheck, ReluAwayFromKink) {
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Tensor t = RandomTensor(3, 3, 23);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = t[i] >= 0.0f ? t[i] + 0.2f : t[i] - 0.2f;
  }
  CheckGradient([](const Variable& x) { return Sum(Relu(x)); }, t);
}

TEST(AutogradGradCheck, SquareAndScalarOps) {
  CheckGradient(
      [](const Variable& x) {
        return Mean(ScalarAdd(ScalarMul(Square(x), 3.0f), -1.0f));
      },
      RandomTensor(2, 5, 24));
}

TEST(AutogradGradCheck, ClampInterior) {
  // All inputs strictly inside the clamp interval -> gradient 1.
  CheckGradient(
      [](const Variable& x) { return Sum(Clamp(x, -2.0f, 2.0f)); },
      RandomTensor(2, 3, 25));
}

TEST(AutogradTest, ClampBlocksGradientOutside) {
  Variable x = Variable::Parameter(Tensor::Scalar(5.0f));
  Variable y = Sum(Clamp(x, -1.0f, 1.0f));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(AutogradGradCheck, MinimumMaximumRouting) {
  Tensor other = RandomTensor(3, 3, 26);
  // Perturb so no exact ties.
  CheckGradient(
      [&](const Variable& x) {
        Variable o = Variable::Constant(other);
        return Sum(Add(Minimum(x, o), Maximum(x, o)));
      },
      RandomTensor(3, 3, 27, 1.5f, 2.5f));
}

TEST(AutogradGradCheck, SumMeanRowSum) {
  CheckGradient(
      [](const Variable& x) {
        return Add(Mean(x), ScalarMul(Sum(Square(RowSum(x))), 0.01f));
      },
      RandomTensor(3, 4, 28));
}

TEST(AutogradGradCheck, ConcatColsBothSides) {
  Tensor right = RandomTensor(3, 2, 29);
  CheckGradient(
      [&](const Variable& x) {
        Variable cat = ConcatCols(x, Variable::Constant(right));
        return Sum(Square(cat));
      },
      RandomTensor(3, 2, 30));
  Tensor left = RandomTensor(3, 2, 31);
  CheckGradient(
      [&](const Variable& x) {
        Variable cat = ConcatCols(Variable::Constant(left), x);
        return Sum(Square(cat));
      },
      RandomTensor(3, 3, 32));
}

TEST(AutogradGradCheck, SoftmaxComposition) {
  CheckGradient(
      [](const Variable& x) { return Sum(Square(Softmax(x))); },
      RandomTensor(3, 4, 33));
}

TEST(AutogradGradCheck, LogSoftmaxComposition) {
  CheckGradient(
      [](const Variable& x) { return Mean(Square(LogSoftmax(x))); },
      RandomTensor(3, 4, 34));
}

TEST(AutogradGradCheck, PickPerRowAndCrossEntropy) {
  std::vector<int> labels = {0, 2, 1};
  CheckGradient(
      [&](const Variable& x) { return SoftmaxCrossEntropy(x, labels); },
      RandomTensor(3, 3, 35));
}

TEST(AutogradGradCheck, SoftmaxEntropy) {
  CheckGradient(
      [](const Variable& x) { return SoftmaxEntropy(x); },
      RandomTensor(4, 3, 36));
}

TEST(AutogradGradCheck, MseLoss) {
  Tensor target = RandomTensor(4, 2, 37);
  CheckGradient(
      [&](const Variable& x) { return MseLoss(x, target); },
      RandomTensor(4, 2, 38));
}

TEST(AutogradTest, SoftmaxRowsSumToOne) {
  Variable logits = Variable::Constant(RandomTensor(5, 7, 39, -3.0f, 3.0f));
  const Tensor p = Softmax(logits).value();
  for (int r = 0; r < p.rows(); ++r) {
    float sum = 0.0f;
    for (int c = 0; c < p.cols(); ++c) {
      sum += p(r, c);
      EXPECT_GT(p(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(AutogradTest, CrossEntropyOfConfidentLogitsIsSmall) {
  Tensor logits(2, 3);
  logits(0, 0) = 20.0f;
  logits(1, 2) = 20.0f;
  const float ce =
      SoftmaxCrossEntropy(Variable::Constant(logits), {0, 2}).value()[0];
  EXPECT_LT(ce, 1e-3f);
}

TEST(AutogradTest, PickPerRowBounds) {
  Variable m = Variable::Constant(Tensor(2, 2));
  EXPECT_THROW(PickPerRow(m, {0}), std::invalid_argument);
  EXPECT_THROW(PickPerRow(m, {0, 5}), std::out_of_range);
}

TEST(AutogradTest, ShapeMismatchThrows) {
  Variable a = Variable::Constant(Tensor(2, 3));
  Variable b = Variable::Constant(Tensor(3, 2));
  EXPECT_THROW(Add(a, b), std::invalid_argument);
  EXPECT_THROW(Mul(a, b), std::invalid_argument);
  EXPECT_THROW(ConcatCols(a, b), std::invalid_argument);
}

TEST(AutogradTest, DeepChainBackward) {
  // Exercise the iterative topological sort with a deep graph.
  Variable x = Variable::Parameter(Tensor::Scalar(0.01f));
  Variable y = x;
  for (int i = 0; i < 2000; ++i) y = ScalarAdd(y, 0.001f);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

}  // namespace
}  // namespace agsc::nn
