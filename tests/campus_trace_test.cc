#include <set>

#include <gtest/gtest.h>

#include "map/campus.h"
#include "map/trace.h"

namespace agsc::map {
namespace {

class CampusParamTest : public ::testing::TestWithParam<CampusId> {};

TEST_P(CampusParamTest, RoadNetworkIsConnected) {
  const Campus campus = BuildCampus(GetParam());
  EXPECT_TRUE(campus.roads.IsConnected());
  EXPECT_GT(campus.roads.NumNodes(), 30);
  EXPECT_GT(campus.roads.NumEdges(), campus.roads.NumNodes() - 1);
}

TEST_P(CampusParamTest, EverythingInsideBounds) {
  const Campus campus = BuildCampus(GetParam());
  for (int i = 0; i < campus.roads.NumNodes(); ++i) {
    EXPECT_TRUE(campus.bounds.Contains(campus.roads.node(i)));
  }
  for (const Point2& lm : campus.landmarks) {
    EXPECT_TRUE(campus.bounds.Contains(lm));
  }
  EXPECT_TRUE(campus.bounds.Contains(campus.spawn));
}

TEST_P(CampusParamTest, SpawnIsOnRoad) {
  const Campus campus = BuildCampus(GetParam());
  const RoadPosition proj = campus.roads.Project(campus.spawn);
  EXPECT_NEAR(Distance(campus.roads.PointAt(proj), campus.spawn), 0.0, 1e-6);
}

TEST_P(CampusParamTest, DeterministicGeneration) {
  const Campus a = BuildCampus(GetParam());
  const Campus b = BuildCampus(GetParam());
  ASSERT_EQ(a.roads.NumNodes(), b.roads.NumNodes());
  ASSERT_EQ(a.roads.NumEdges(), b.roads.NumEdges());
  for (int i = 0; i < a.roads.NumNodes(); ++i) {
    EXPECT_EQ(a.roads.node(i).x, b.roads.node(i).x);
    EXPECT_EQ(a.roads.node(i).y, b.roads.node(i).y);
  }
  ASSERT_EQ(a.landmarks.size(), b.landmarks.size());
}

TEST_P(CampusParamTest, TracesStayInBounds) {
  const Campus campus = BuildCampus(GetParam());
  TraceConfig config;
  config.num_steps = 300;
  const std::vector<Trace> traces = GenerateTraces(campus, config);
  EXPECT_EQ(static_cast<int>(traces.size()), campus.num_traces);
  for (const Trace& trace : traces) {
    EXPECT_EQ(static_cast<int>(trace.size()), config.num_steps);
    for (const Point2& p : trace) {
      EXPECT_TRUE(campus.bounds.Contains(p));
    }
  }
}

TEST_P(CampusParamTest, TraceStepLengthBounded) {
  const Campus campus = BuildCampus(GetParam());
  TraceConfig config;
  config.num_steps = 200;
  const std::vector<Trace> traces = GenerateTraces(campus, config);
  for (const Trace& trace : traces) {
    for (size_t t = 1; t < trace.size(); ++t) {
      EXPECT_LE(Distance(trace[t - 1], trace[t]),
                config.step_meters + 1e-6);
    }
  }
}

TEST_P(CampusParamTest, ExtractPoisReturnsRequestedCount) {
  const Dataset dataset = BuildDataset(GetParam(), 100);
  EXPECT_EQ(dataset.pois.size(), 100u);
  for (const Point2& poi : dataset.pois) {
    EXPECT_TRUE(dataset.campus.bounds.Contains(poi));
  }
}

TEST_P(CampusParamTest, PoisAreSpatiallyDistinct) {
  const Dataset dataset = BuildDataset(GetParam(), 100);
  // Cell-based extraction guarantees minimum separation for most pairs;
  // check no exact duplicates.
  for (size_t i = 0; i < dataset.pois.size(); ++i) {
    for (size_t j = i + 1; j < dataset.pois.size(); ++j) {
      EXPECT_GT(Distance(dataset.pois[i], dataset.pois[j]), 1.0);
    }
  }
}

TEST_P(CampusParamTest, PoisAreClusteredNotUniform) {
  // The landmark-biased mobility should concentrate PoIs: the mean distance
  // of a PoI to its nearest landmark must be far below the uniform-random
  // expectation (~ area_size / 4 for these landmark counts).
  const Dataset dataset = BuildDataset(GetParam(), 100);
  double mean_nearest = 0.0;
  for (const Point2& poi : dataset.pois) {
    double best = 1e18;
    for (const Point2& lm : dataset.campus.landmarks) {
      best = std::min(best, Distance(poi, lm));
    }
    mean_nearest += best;
  }
  mean_nearest /= static_cast<double>(dataset.pois.size());
  EXPECT_LT(mean_nearest, dataset.campus.bounds.Width() * 0.15);
}

INSTANTIATE_TEST_SUITE_P(BothCampuses, CampusParamTest,
                         ::testing::Values(CampusId::kPurdue,
                                           CampusId::kNcsu),
                         [](const auto& info) {
                           return CampusName(info.param);
                         });

TEST(CampusTest, NamesAndSizesDiffer) {
  const Campus purdue = BuildPurdueCampus();
  const Campus ncsu = BuildNcsuCampus();
  EXPECT_EQ(purdue.name, "Purdue");
  EXPECT_EQ(ncsu.name, "NCSU");
  EXPECT_EQ(purdue.num_traces, 59);
  EXPECT_EQ(ncsu.num_traces, 33);
  // NCSU is the "bigger campus" (Section VI-D1).
  EXPECT_GT(ncsu.bounds.Width(), purdue.bounds.Width());
}

TEST(TraceTest, DeterministicForSeed) {
  const Campus campus = BuildPurdueCampus();
  TraceConfig config;
  config.num_steps = 50;
  const std::vector<Trace> a = GenerateTraces(campus, config);
  const std::vector<Trace> b = GenerateTraces(campus, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    for (size_t t = 0; t < a[s].size(); ++t) {
      EXPECT_EQ(a[s][t].x, b[s][t].x);
      EXPECT_EQ(a[s][t].y, b[s][t].y);
    }
  }
}

TEST(TraceTest, DifferentSeedsGiveDifferentTraces) {
  const Campus campus = BuildPurdueCampus();
  TraceConfig config_a, config_b;
  config_a.num_steps = config_b.num_steps = 50;
  config_b.seed = config_a.seed + 1;
  const std::vector<Trace> a = GenerateTraces(campus, config_a);
  const std::vector<Trace> b = GenerateTraces(campus, config_b);
  bool any_diff = false;
  for (size_t t = 0; t < a[0].size() && !any_diff; ++t) {
    any_diff = a[0][t].x != b[0][t].x;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceTest, ExtractPoisOrdersByVisitCount) {
  // Construct artificial traces: cell around (10,10) visited most.
  Campus campus;
  campus.name = "toy";
  campus.bounds = {{0.0, 0.0}, {1000.0, 1000.0}};
  campus.num_traces = 1;
  std::vector<Trace> traces(1);
  for (int i = 0; i < 100; ++i) traces[0].push_back({10.0, 10.0});
  for (int i = 0; i < 10; ++i) traces[0].push_back({500.0, 500.0});
  traces[0].push_back({900.0, 900.0});
  const std::vector<Point2> pois = ExtractPois(campus, traces, 2, 50.0);
  ASSERT_EQ(pois.size(), 2u);
  EXPECT_NEAR(pois[0].x, 10.0, 1.0);
  EXPECT_NEAR(pois[1].x, 500.0, 1.0);
}

TEST(TraceTest, ExtractPoisCapsAtAvailableCells) {
  Campus campus;
  campus.bounds = {{0.0, 0.0}, {1000.0, 1000.0}};
  std::vector<Trace> traces(1);
  traces[0].push_back({10.0, 10.0});
  const std::vector<Point2> pois = ExtractPois(campus, traces, 5, 50.0);
  EXPECT_EQ(pois.size(), 1u);
}

}  // namespace
}  // namespace agsc::map
