// Focused tests of e-Divert's configuration space: LSTM vs GRU recurrent
// actors, replay-buffer behaviour at small capacities, and exploration
// noise annealing.

#include <cmath>

#include <gtest/gtest.h>

#include "algorithms/e_divert.h"
#include "core/evaluator.h"

namespace agsc::algorithms {
namespace {

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 15));
  return *dataset;
}

env::EnvConfig TinyConfig() {
  env::EnvConfig config;
  config.num_timeslots = 8;
  config.num_pois = 15;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

EDivertConfig TinyTrainConfig() {
  EDivertConfig config;
  config.iterations = 2;
  config.episodes_per_iteration = 1;
  config.updates_per_iteration = 3;
  config.minibatch = 4;
  config.hidden = 12;
  config.gru_hidden = 12;
  return config;
}

TEST(EDivertVariantsTest, LstmAndGruBothTrain) {
  for (const bool use_lstm : {true, false}) {
    env::ScEnv env(TinyConfig(), SmallDataset(), 1);
    EDivertConfig config = TinyTrainConfig();
    config.use_lstm = use_lstm;
    EDivertTrainer trainer(env, config);
    const double efficiency = trainer.TrainIteration();
    EXPECT_TRUE(std::isfinite(efficiency)) << "use_lstm=" << use_lstm;
  }
}

TEST(EDivertVariantsTest, LstmActorHasMoreParameters) {
  env::ScEnv env(TinyConfig(), SmallDataset(), 2);
  EDivertConfig lstm_config = TinyTrainConfig();
  lstm_config.use_lstm = true;
  EDivertConfig gru_config = TinyTrainConfig();
  gru_config.use_lstm = false;
  env::ScEnv env2(TinyConfig(), SmallDataset(), 2);
  EDivertTrainer lstm_trainer(env, lstm_config);
  EDivertTrainer gru_trainer(env2, gru_config);
  EXPECT_GT(lstm_trainer.ActorParameterBytes(),
            gru_trainer.ActorParameterBytes());
}

TEST(EDivertVariantsTest, TinyReplayCapacityStillTrains) {
  // Ring buffer wraps long before an episode ends; updates must not crash
  // and must keep producing finite results.
  env::ScEnv env(TinyConfig(), SmallDataset(), 3);
  EDivertConfig config = TinyTrainConfig();
  config.replay_capacity = 5;  // Much smaller than one episode (8 slots).
  config.updates_per_iteration = 6;
  EDivertTrainer trainer(env, config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(trainer.TrainIteration()));
  }
}

TEST(EDivertVariantsTest, EvaluationIsDeterministicAfterReset) {
  env::EnvConfig config = TinyConfig();
  config.rayleigh_fading = false;
  env::ScEnv env(config, SmallDataset(), 4);
  EDivertConfig train = TinyTrainConfig();
  EDivertTrainer trainer(env, train);
  trainer.TrainIteration();
  const core::EvalResult a = core::Evaluate(env, trainer, 1, 9);
  const core::EvalResult b = core::Evaluate(env, trainer, 1, 9);
  EXPECT_EQ(a.mean.efficiency, b.mean.efficiency);
}

TEST(EDivertVariantsTest, StochasticActDiffersFromDeterministic) {
  env::ScEnv env(TinyConfig(), SmallDataset(), 5);
  EDivertConfig config = TinyTrainConfig();
  config.explore_noise = 0.5f;
  EDivertTrainer trainer(env, config);
  const env::StepResult r = env.Reset();
  trainer.BeginEpisode(env);
  util::Rng rng(6);
  const env::UvAction det = trainer.Act(env, 0, r.observations[0], rng, true);
  trainer.BeginEpisode(env);
  const env::UvAction sto =
      trainer.Act(env, 0, r.observations[0], rng, false);
  // With noise 0.5 the stochastic action virtually never matches exactly.
  EXPECT_NE(det.raw_direction, sto.raw_direction);
}

}  // namespace
}  // namespace agsc::algorithms
