// Property-style sweeps over the road-network substrate on randomly
// generated connected graphs: metric properties of PathDistance, and
// consistency of Project / PointAt / MoveAlong under arbitrary inputs.

#include <cmath>

#include <gtest/gtest.h>

#include "map/road_graph.h"
#include "util/rng.h"

namespace agsc::map {
namespace {

/// Random connected graph: a random spanning tree over `n` scattered nodes
/// plus `extra` random chords.
RoadGraph RandomConnectedGraph(util::Rng& rng, int n, int extra) {
  RoadGraph g;
  for (int i = 0; i < n; ++i) {
    g.AddNode({rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }
  for (int i = 1; i < n; ++i) {
    g.AddEdge(i, static_cast<int>(rng.UniformInt(
                     static_cast<uint64_t>(i))));  // Parent in the tree.
  }
  for (int e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int b = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (a != b) g.AddEdge(a, b);
  }
  return g;
}

RoadPosition RandomPosition(util::Rng& rng, const RoadGraph& g) {
  return {static_cast<int>(
              rng.UniformInt(static_cast<uint64_t>(g.NumEdges()))),
          rng.Uniform()};
}

class MapPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{static_cast<uint64_t>(GetParam()) * 48271ULL + 11};
};

TEST_P(MapPropertyTest, GeneratedGraphIsConnected) {
  RoadGraph g = RandomConnectedGraph(rng_, 20, 8);
  EXPECT_TRUE(g.IsConnected());
}

TEST_P(MapPropertyTest, PathDistanceIsSymmetric) {
  RoadGraph g = RandomConnectedGraph(rng_, 15, 6);
  for (int trial = 0; trial < 20; ++trial) {
    const RoadPosition a = RandomPosition(rng_, g);
    const RoadPosition b = RandomPosition(rng_, g);
    EXPECT_NEAR(g.PathDistance(a, b), g.PathDistance(b, a), 1e-6);
  }
}

TEST_P(MapPropertyTest, PathDistanceNonNegativeAndZeroToSelf) {
  RoadGraph g = RandomConnectedGraph(rng_, 12, 4);
  for (int trial = 0; trial < 20; ++trial) {
    const RoadPosition a = RandomPosition(rng_, g);
    EXPECT_GE(g.PathDistance(a, RandomPosition(rng_, g)), 0.0);
    EXPECT_NEAR(g.PathDistance(a, a), 0.0, 1e-9);
  }
}

TEST_P(MapPropertyTest, PathDistanceAtLeastEuclidean) {
  // Travel along roads can never beat the straight line.
  RoadGraph g = RandomConnectedGraph(rng_, 15, 6);
  for (int trial = 0; trial < 20; ++trial) {
    const RoadPosition a = RandomPosition(rng_, g);
    const RoadPosition b = RandomPosition(rng_, g);
    EXPECT_GE(g.PathDistance(a, b) + 1e-6,
              Distance(g.PointAt(a), g.PointAt(b)));
  }
}

TEST_P(MapPropertyTest, TriangleInequality) {
  RoadGraph g = RandomConnectedGraph(rng_, 12, 5);
  for (int trial = 0; trial < 15; ++trial) {
    const RoadPosition a = RandomPosition(rng_, g);
    const RoadPosition b = RandomPosition(rng_, g);
    const RoadPosition c = RandomPosition(rng_, g);
    EXPECT_LE(g.PathDistance(a, c),
              g.PathDistance(a, b) + g.PathDistance(b, c) + 1e-6);
  }
}

TEST_P(MapPropertyTest, ProjectIsIdempotent) {
  RoadGraph g = RandomConnectedGraph(rng_, 12, 5);
  for (int trial = 0; trial < 20; ++trial) {
    const Point2 p{rng_.Uniform(-200.0, 1200.0),
                   rng_.Uniform(-200.0, 1200.0)};
    const RoadPosition proj = g.Project(p);
    const Point2 on_road = g.PointAt(proj);
    // Projecting a point already on the road returns (geometrically) the
    // same point.
    EXPECT_NEAR(Distance(g.PointAt(g.Project(on_road)), on_road), 0.0,
                1e-6);
  }
}

TEST_P(MapPropertyTest, MoveAlongProgressReducesRemainingDistance) {
  RoadGraph g = RandomConnectedGraph(rng_, 12, 5);
  for (int trial = 0; trial < 15; ++trial) {
    const RoadPosition from = RandomPosition(rng_, g);
    const RoadPosition to = RandomPosition(rng_, g);
    const double total = g.PathDistance(from, to);
    const double budget = rng_.Uniform(0.0, 600.0);
    double moved = 0.0;
    const RoadPosition mid = g.MoveAlong(from, to, budget, &moved);
    const double remaining = g.PathDistance(mid, to);
    // Distance accounting: moved + remaining == total when the route taken
    // is shortest (allow slack for alternate equal-length routes).
    EXPECT_LE(moved, budget + 1e-6);
    EXPECT_NEAR(moved + remaining, total,
                1e-6 + total * 1e-9 + (moved > 0 ? 1e-6 : 0.0));
  }
}

TEST_P(MapPropertyTest, MoveAlongFullBudgetArrives) {
  RoadGraph g = RandomConnectedGraph(rng_, 10, 4);
  for (int trial = 0; trial < 15; ++trial) {
    const RoadPosition from = RandomPosition(rng_, g);
    const RoadPosition to = RandomPosition(rng_, g);
    const double total = g.PathDistance(from, to);
    double moved = 0.0;
    const RoadPosition end = g.MoveAlong(from, to, total + 1.0, &moved);
    EXPECT_NEAR(Distance(g.PointAt(end), g.PointAt(to)), 0.0, 1e-6);
    EXPECT_NEAR(moved, total, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace agsc::map
