#ifndef AGSC_TESTS_TEST_UTIL_H_
#define AGSC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace agsc::testing {

/// Numerically checks d(scalar fn)/d(input) against the autograd gradient.
///
/// `build` maps a parameter leaf to a scalar graph output. Each input entry
/// is perturbed by +-eps and the central difference is compared against the
/// gradient produced by Backward().
inline void CheckGradient(
    const std::function<nn::Variable(const nn::Variable&)>& build,
    nn::Tensor input, float eps = 1e-3f, float tol = 2e-2f) {
  nn::Variable x = nn::Variable::Parameter(input);
  nn::Variable y = build(x);
  ASSERT_EQ(y.value().size(), 1) << "CheckGradient needs a scalar output";
  x.ZeroGrad();
  y.Backward();
  const nn::Tensor grad = x.grad();
  for (int i = 0; i < input.size(); ++i) {
    nn::Tensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const float f_plus =
        build(nn::Variable::Parameter(plus)).value()(0, 0);
    const float f_minus =
        build(nn::Variable::Parameter(minus)).value()(0, 0);
    const float numeric = (f_plus - f_minus) / (2.0f * eps);
    const float analytic = grad[i];
    const float scale = std::max({1.0f, std::fabs(numeric),
                                  std::fabs(analytic)});
    EXPECT_NEAR(analytic, numeric, tol * scale)
        << "gradient mismatch at flat index " << i;
  }
}

}  // namespace agsc::testing

#endif  // AGSC_TESTS_TEST_UTIL_H_
