// End-to-end integration tests: dataset -> environment -> training ->
// evaluation across every method, checking cross-module invariants rather
// than single-module behaviour.

#include <cmath>

#include <gtest/gtest.h>

#include "algorithms/e_divert.h"
#include "algorithms/greedy_policy.h"
#include "algorithms/random_policy.h"
#include "algorithms/shortest_path.h"
#include "core/hi_madrl.h"
#include "env/render.h"

namespace agsc {
namespace {

const map::Dataset& Dataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kNcsu, 30));
  return *dataset;
}

env::EnvConfig Config() {
  env::EnvConfig config;
  config.num_timeslots = 15;
  config.num_pois = 30;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

void ExpectValidMetrics(const env::Metrics& m, const std::string& who) {
  EXPECT_GE(m.data_collection_ratio, 0.0) << who;
  EXPECT_LE(m.data_collection_ratio, 1.0) << who;
  EXPECT_GE(m.data_loss_ratio, 0.0) << who;
  EXPECT_LE(m.data_loss_ratio, 1.0) << who;
  EXPECT_GT(m.energy_consumption_ratio, 0.0) << who;
  EXPECT_LE(m.energy_consumption_ratio, 2.0) << who;
  EXPECT_GE(m.geographical_fairness, 0.0) << who;
  EXPECT_LE(m.geographical_fairness, 1.0) << who;
  EXPECT_TRUE(std::isfinite(m.efficiency)) << who;
  EXPECT_GE(m.efficiency, 0.0) << who;
}

TEST(IntegrationTest, EveryPolicyEvaluatesWithValidMetrics) {
  env::ScEnv env(Config(), Dataset(), 1);

  algorithms::RandomPolicy random;
  ExpectValidMetrics(core::Evaluate(env, random, 2, 5, false).mean,
                     "Random");
  algorithms::GreedyPolicy greedy;
  ExpectValidMetrics(core::Evaluate(env, greedy, 2, 5).mean, "Greedy");
  algorithms::ShortestPathPolicy sp;
  ExpectValidMetrics(core::Evaluate(env, sp, 2, 5).mean, "ShortestPath");

  core::TrainConfig train;
  train.iterations = 2;
  train.episodes_per_iteration = 1;
  train.net.hidden = {32, 16};
  train.eoi.hidden = {16};
  core::HiMadrlTrainer trainer(env, train);
  trainer.Train();
  ExpectValidMetrics(core::Evaluate(env, trainer, 2, 5).mean, "HiMadrl");

  algorithms::EDivertConfig ed;
  ed.episodes_per_iteration = 1;
  ed.updates_per_iteration = 2;
  ed.minibatch = 8;
  ed.hidden = 16;
  ed.gru_hidden = 16;
  algorithms::EDivertTrainer edivert(env, ed);
  edivert.TrainIteration();
  ExpectValidMetrics(core::Evaluate(env, edivert, 2, 5).mean, "EDivert");
}

TEST(IntegrationTest, PlannersBeatRandomOnEfficiency) {
  // A planner with global knowledge must beat uniform-random actions on the
  // integrated efficiency metric (robust at any budget; the paper's Fig. 3).
  env::EnvConfig config = Config();
  config.num_timeslots = 40;
  env::ScEnv env(config, Dataset(), 2);
  algorithms::ShortestPathPolicy sp;
  const double sp_lambda = core::Evaluate(env, sp, 3, 9).mean.efficiency;
  algorithms::RandomPolicy random;
  const double random_lambda =
      core::Evaluate(env, random, 3, 9, false).mean.efficiency;
  EXPECT_GT(sp_lambda, random_lambda);
}

TEST(IntegrationTest, TrainingImprovesExtrinsicReward) {
  // The PPO objective maximizes the (compound) reward, whose extrinsic part
  // is dominated by collected data (Eqn. 17); over a short run the rollout
  // reward must trend upward. (The integrated efficiency metric lambda is
  // *not* monotone in the reward at tiny budgets, because a freshly
  // initialized tanh policy barely moves and buys a cheap low-xi lambda.)
  env::EnvConfig config = Config();
  config.num_timeslots = 30;
  env::ScEnv env(config, Dataset(), 3);
  core::TrainConfig train;
  train.iterations = 20;
  train.episodes_per_iteration = 2;
  train.net.hidden = {48, 24};
  train.eoi.hidden = {24};
  train.actor_lr = 8e-4f;
  train.critic_lr = 2e-3f;
  train.seed = 4;
  core::HiMadrlTrainer trainer(env, train);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < train.iterations; ++i) {
    const core::IterationStats stats = trainer.TrainIteration();
    if (i < 5) early += stats.mean_reward_ext / 5.0;
    if (i >= train.iterations - 5) late += stats.mean_reward_ext / 5.0;
  }
  // Generous slack: 20 iterations of on-policy RL on one seed is noisy; the
  // assertion guards against *systematic* degradation (sign errors in the
  // surrogate), not run-to-run variance.
  EXPECT_GT(late, early * 0.75);
}

TEST(IntegrationTest, RewardAccountingMatchesCollectedData) {
  // Sum of positive reward components over an episode equals the collected
  // fraction (Eqn. 17's first term sums to psi when loss/energy terms are
  // stripped), tying env accounting to the metric pipeline.
  env::EnvConfig config = Config();
  config.omega_coll = 0.0;
  config.omega_move = 0.0;
  config.rayleigh_fading = false;
  env::ScEnv env(config, Dataset(), 5);
  env::StepResult r = env.Reset();
  util::Rng rng(6);
  double reward_sum = 0.0;
  while (!r.done) {
    std::vector<env::UvAction> actions;
    for (int k = 0; k < env.num_agents(); ++k) {
      actions.push_back({rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)});
    }
    r = env.Step(actions);
    for (double reward : r.rewards) reward_sum += reward;
  }
  EXPECT_NEAR(reward_sum, env.EpisodeMetrics().data_collection_ratio, 1e-6);
}

TEST(IntegrationTest, EnergyExhaustionStopsUvs) {
  env::EnvConfig config = Config();
  config.uav_energy_kj = 10.0;  // Minuscule battery.
  config.ugv_energy_kj = 10.0;
  config.num_timeslots = 30;
  env::ScEnv env(config, Dataset(), 7);
  env.Reset();
  std::vector<env::UvAction> fast(env.num_agents(), env::UvAction{0.0, 1.0});
  env::StepResult r;
  r.done = false;
  while (!r.done) r = env.Step(fast);
  for (int k = 0; k < env.num_agents(); ++k) {
    EXPECT_FALSE(env.uv(k).active);
    EXPECT_EQ(env.uv(k).energy_j, 0.0);
  }
  // Once inactive, positions freeze.
  const auto& traj = env.trajectories()[0];
  EXPECT_EQ(traj[traj.size() - 1].x, traj[traj.size() - 2].x);
  // Energy ratio is capped around 1 per kind (cannot spend beyond E0 much).
  EXPECT_LE(env.EpisodeMetrics().energy_consumption_ratio, 2.2);
}

TEST(IntegrationTest, FullPipelineRenderAndDump) {
  env::ScEnv env(Config(), Dataset(), 8);
  core::TrainConfig train;
  train.iterations = 1;
  train.episodes_per_iteration = 1;
  train.net.hidden = {24};
  train.eoi.hidden = {16};
  core::HiMadrlTrainer trainer(env, train);
  trainer.Train();
  core::Evaluate(env, trainer, 1, 12);
  EXPECT_FALSE(env::RenderTrajectoriesAscii(env).empty());
  const std::string dir = ::testing::TempDir();
  EXPECT_TRUE(env::DumpTrajectoriesCsv(env, dir + "/int_traj.csv"));
  EXPECT_TRUE(env::DumpEventsCsv(env, dir + "/int_events.csv"));
}

TEST(IntegrationTest, SweepConfigurationsAllRun) {
  // Every figure sweep's env mutation must produce a runnable env.
  for (double height : {60.0, 150.0}) {
    for (double threshold : {-7.0, 7.0}) {
      for (int z : {1, 5}) {
        env::EnvConfig config = Config();
        config.uav_height = height;
        config.sinr_threshold_db = threshold;
        config.num_subchannels = z;
        env::ScEnv env(config, Dataset(), 9);
        algorithms::GreedyPolicy greedy;
        ExpectValidMetrics(core::Evaluate(env, greedy, 1, 3).mean,
                           "sweep config");
      }
    }
  }
}

TEST(IntegrationTest, HigherThresholdNeverReducesLoss) {
  // Data-loss ratio is monotonically non-decreasing in the QoS threshold
  // for a fixed policy and seed (Fig. 9/10 shape).
  double prev_loss = -1.0;
  for (double threshold : {-7.0, 0.0, 7.0}) {
    env::EnvConfig config = Config();
    config.sinr_threshold_db = threshold;
    config.rayleigh_fading = false;
    env::ScEnv env(config, Dataset(), 10);
    algorithms::GreedyPolicy greedy;
    const double loss =
        core::Evaluate(env, greedy, 1, 3).mean.data_loss_ratio;
    EXPECT_GE(loss, prev_loss);
    prev_loss = loss;
  }
}

}  // namespace
}  // namespace agsc
