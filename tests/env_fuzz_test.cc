// Randomized robustness tests: drive the environment with random
#include <fstream>
#include <iterator>
// configurations and random (including out-of-range) actions, asserting the
// global invariants that must hold for ANY input. This is the
// failure-injection net under the RL stack — a NaN or a negative PoI that
// slips out of the env silently corrupts training.

#include <cmath>

#include <gtest/gtest.h>

#include "env/render.h"
#include "env/sc_env.h"

namespace agsc::env {
namespace {

const map::Dataset& FuzzDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 50));
  return *dataset;
}

class EnvFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EnvFuzzTest, InvariantsHoldUnderRandomConfigAndActions) {
  util::Rng rng(GetParam() * 7919 + 3);
  EnvConfig config;
  config.num_timeslots = 5 + static_cast<int>(rng.UniformInt(uint64_t{20}));
  config.num_pois = 5 + static_cast<int>(rng.UniformInt(uint64_t{45}));
  config.num_uavs = static_cast<int>(rng.UniformInt(uint64_t{4}));
  config.num_ugvs = static_cast<int>(rng.UniformInt(uint64_t{4}));
  if (config.num_agents() == 0) config.num_ugvs = 1;
  config.num_subchannels = 1 + static_cast<int>(rng.UniformInt(uint64_t{9}));
  config.uav_height = rng.Uniform(30.0, 200.0);
  config.sinr_threshold_db = rng.Uniform(-10.0, 10.0);
  config.observe_range_fraction = rng.Uniform(0.05, 1.0);
  config.neighbor_range_fraction = rng.Uniform(0.05, 1.0);
  config.initial_data_gbit = rng.Uniform(0.5, 5.0);
  const int scheme = static_cast<int>(rng.UniformInt(uint64_t{3}));
  config.medium_access = scheme == 0   ? MediumAccess::kNoma
                         : scheme == 1 ? MediumAccess::kTdma
                                       : MediumAccess::kOfdma;
  ScEnv env(config, FuzzDataset(), GetParam());

  StepResult r = env.Reset();
  ASSERT_EQ(static_cast<int>(r.observations.size()), config.num_agents());
  double prev_total_data =
      config.num_pois * config.initial_data_gbit + 1e-9;
  while (!r.done) {
    std::vector<UvAction> actions;
    for (int k = 0; k < env.num_agents(); ++k) {
      // Deliberately out-of-range actions: the env must clamp, not crash.
      actions.push_back(
          {rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)});
    }
    r = env.Step(actions);
    double total_data = 0.0;
    for (int i = 0; i < config.num_pois; ++i) {
      const double d = env.PoiRemainingGbit(i);
      ASSERT_GE(d, 0.0);
      ASSERT_LE(d, config.initial_data_gbit + 1e-9);
      total_data += d;
    }
    ASSERT_LE(total_data, prev_total_data + 1e-9) << "data created";
    prev_total_data = total_data;
    for (int k = 0; k < env.num_agents(); ++k) {
      ASSERT_TRUE(std::isfinite(r.rewards[k]));
      const UvState& uv = env.uv(k);
      ASSERT_TRUE(FuzzDataset().campus.bounds.Contains(uv.pos));
      ASSERT_GE(uv.energy_j, 0.0);
      ASSERT_LE(uv.energy_j, uv.initial_energy_j + 1e-9);
      for (float v : r.observations[k]) ASSERT_TRUE(std::isfinite(v));
    }
    for (float v : r.state) ASSERT_TRUE(std::isfinite(v));
    for (const CollectionEvent& ev : r.events) {
      ASSERT_TRUE(std::isfinite(ev.collected_uav_gbit));
      ASSERT_TRUE(std::isfinite(ev.collected_ugv_gbit));
      ASSERT_GE(ev.subchannel, 0);
      ASSERT_LT(ev.subchannel, config.num_subchannels);
    }
  }
  const Metrics m = env.EpisodeMetrics();
  ASSERT_TRUE(std::isfinite(m.efficiency));
  ASSERT_GE(m.data_collection_ratio, 0.0);
  ASSERT_LE(m.data_collection_ratio, 1.0);
  ASSERT_GE(m.data_loss_ratio, 0.0);
  ASSERT_LE(m.data_loss_ratio, 1.0);
  ASSERT_GE(m.geographical_fairness, 0.0);
  ASSERT_LE(m.geographical_fairness, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, EnvFuzzTest,
                         ::testing::Range(1, 21));

TEST(SvgRenderTest, ProducesWellFormedSvg) {
  EnvConfig config;
  config.num_timeslots = 8;
  config.num_pois = 50;
  ScEnv env(config, FuzzDataset(), 3);
  env.Reset();
  util::Rng rng(4);
  StepResult r;
  r.done = false;
  while (!r.done) {
    std::vector<UvAction> actions;
    for (int k = 0; k < env.num_agents(); ++k) {
      actions.push_back({rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)});
    }
    r = env.Step(actions);
  }
  const std::string path = ::testing::TempDir() + "/agsc_render.svg";
  ASSERT_TRUE(RenderTrajectoriesSvg(env, path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_NE(content.find("</svg>"), std::string::npos);
  // One polyline per agent, one circle per PoI at least.
  size_t polylines = 0;
  for (size_t pos = content.find("<polyline"); pos != std::string::npos;
       pos = content.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, static_cast<size_t>(env.num_agents()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace agsc::env
