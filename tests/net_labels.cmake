# Included by ctest via TEST_INCLUDE_FILES *after* the gtest-generated
# registration scripts (tests/CMakeLists.txt appends it last), so the net
# tests already exist here. gtest_discover_tests cannot forward a
# list-valued LABELS property (see serving_labels.cmake for the long
# version), so the net label is applied in this post-pass: parse the
# generated include for the discovered test names and re-set their labels.
file(GLOB _agsc_net_includes "${CMAKE_CURRENT_LIST_DIR}/net_test*_tests.cmake")
foreach(_agsc_file IN LISTS _agsc_net_includes)
  file(STRINGS "${_agsc_file}" _agsc_adds REGEX "add_test")
  foreach(_agsc_line IN LISTS _agsc_adds)
    string(REGEX MATCH "add_test\\( *\\[=\\[([^]]+)\\]=\\]" _agsc_m "${_agsc_line}")
    if(CMAKE_MATCH_1)
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES LABELS "fast;net")
    endif()
  endforeach()
endforeach()
