#include <cmath>
#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace agsc::nn {
namespace {

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
  t(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t(2, 2, 3.5f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t[i], 3.5f);
}

TEST(TensorTest, FactoryHelpers) {
  Tensor r = Tensor::RowVector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 3);
  Tensor c = Tensor::ColVector({1, 2});
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 1);
  Tensor s = Tensor::Scalar(7.0f);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s[0], 7.0f);
  Tensor m = Tensor::FromRowMajor(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(1, 0), 3.0f);
  EXPECT_THROW(Tensor::FromRowMajor(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, TransposedSwapsIndices) {
  Tensor m = Tensor::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), t(c, r));
  }
}

TEST(TensorTest, RowExtraction) {
  Tensor m = Tensor::FromRowMajor(2, 2, {1, 2, 3, 4});
  Tensor row = m.Row(1);
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row(0, 0), 3.0f);
  EXPECT_EQ(row(0, 1), 4.0f);
}

TEST(TensorTest, AddInPlaceAndScale) {
  Tensor a = Tensor::FromRowMajor(1, 3, {1, 2, 3});
  Tensor b = Tensor::FromRowMajor(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  a.Scale(0.5f);
  EXPECT_EQ(a(0, 0), 5.5f);
  EXPECT_EQ(a(0, 2), 16.5f);
  Tensor wrong(2, 2);
  EXPECT_THROW(a.AddInPlace(wrong), std::invalid_argument);
}

TEST(TensorTest, Reductions) {
  Tensor m = Tensor::FromRowMajor(2, 2, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(m.Sum(), -2.0f);
  EXPECT_FLOAT_EQ(m.Mean(), -0.5f);
  EXPECT_FLOAT_EQ(m.AbsMax(), 4.0f);
  EXPECT_NEAR(m.Norm(), std::sqrt(30.0f), 1e-6);
}

TEST(TensorTest, SameAs) {
  Tensor a = Tensor::FromRowMajor(1, 2, {1, 2});
  Tensor b = Tensor::FromRowMajor(1, 2, {1, 2});
  Tensor c = Tensor::FromRowMajor(2, 1, {1, 2});
  EXPECT_TRUE(a.SameAs(b));
  EXPECT_FALSE(a.SameAs(c));
}

TEST(TensorTest, MatMulMatchesManual) {
  Tensor a = Tensor::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromRowMajor(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(TensorTest, MatMulShapeCheck) {
  Tensor a(2, 3), b(2, 3);
  EXPECT_THROW(MatMul(a, b), std::invalid_argument);
}

TEST(TensorTest, MatMulTransposedVariantsAgree) {
  util::Rng rng(5);
  Tensor a = Tensor::Randn(4, 6, rng);
  Tensor b = Tensor::Randn(5, 6, rng);
  Tensor direct = MatMul(a, b.Transposed());
  Tensor fused = MatMulTransposedB(a, b);
  for (int i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], fused[i], 1e-4);
  }
  Tensor c = Tensor::Randn(6, 4, rng);
  Tensor d = Tensor::Randn(6, 5, rng);
  Tensor direct2 = MatMul(c.Transposed(), d);
  Tensor fused2 = MatMulTransposedA(c, d);
  for (int i = 0; i < direct2.size(); ++i) {
    EXPECT_NEAR(direct2[i], fused2[i], 1e-4);
  }
}

TEST(TensorTest, RandnStatistics) {
  util::Rng rng(9);
  Tensor t = Tensor::Randn(100, 100, rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / t.size();
  const double std = std::sqrt(sq / t.size() - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(std, 2.0, 0.05);
}

TEST(TensorTest, UniformBounds) {
  util::Rng rng(9);
  Tensor t = Tensor::Uniform(10, 10, rng, -2.0f, -1.0f);
  for (int i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], -1.0f);
  }
}

// ---------------------------------------------------------------------------
// Regressions for latent construction/access bugs.
// ---------------------------------------------------------------------------

TEST(TensorTest, NegativeDimsThrowBeforeAnyAllocation) {
  // The ctor used to compute rows*cols before validating, so a negative dim
  // became a ~SIZE_MAX allocation request (std::bad_alloc or worse) instead
  // of a clean argument error.
  EXPECT_THROW(Tensor(-1, 4), std::invalid_argument);
  EXPECT_THROW(Tensor(4, -1), std::invalid_argument);
  EXPECT_THROW(Tensor(-3, -3), std::invalid_argument);
  EXPECT_THROW(Tensor(-1, 4, 2.0f), std::invalid_argument);
  EXPECT_THROW(Tensor::FromRowMajor(-2, 2, {}), std::invalid_argument);
}

TEST(TensorTest, RowOutOfRangeThrows) {
  // Row() used to memcpy from an unchecked offset — out-of-range indices
  // read past the buffer instead of throwing.
  Tensor m = Tensor::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_THROW(m.Row(-1), std::out_of_range);
  EXPECT_THROW(m.Row(2), std::out_of_range);
  EXPECT_NO_THROW(m.Row(1));
}

TEST(TensorTest, EmptyFactoriesAreSafe) {
  // RowVector/ColVector/FromRowMajor used to memcpy from values.data() even
  // when `values` was empty (null source pointer is UB for memcpy).
  Tensor r = Tensor::RowVector({});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 0);
  Tensor c = Tensor::ColVector({});
  EXPECT_EQ(c.rows(), 0);
  EXPECT_EQ(c.cols(), 1);
  Tensor m = Tensor::FromRowMajor(0, 5, {});
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_TRUE(m.empty());
  Tensor row0 = Tensor::FromRowMajor(0, 0, {});
  EXPECT_TRUE(row0.empty());
}

TEST(TensorTest, CopyAndMoveSemantics) {
  // The pooled-storage rewrite hand-rolls the rule of five; pin the exact
  // value semantics the rest of the library assumes.
  Tensor a = Tensor::FromRowMajor(2, 2, {1, 2, 3, 4});
  Tensor copy = a;
  copy(0, 0) = 99.0f;
  EXPECT_EQ(a(0, 0), 1.0f);  // Deep copy.
  EXPECT_EQ(copy(0, 0), 99.0f);

  Tensor moved = std::move(copy);
  EXPECT_EQ(moved(0, 0), 99.0f);
  EXPECT_EQ(copy.size(), 0);  // NOLINT(bugprone-use-after-move): pinned empty.

  Tensor assigned(3, 3, 7.0f);
  assigned = a;
  EXPECT_TRUE(assigned.SameAs(a));
  assigned = std::move(moved);
  EXPECT_EQ(assigned(0, 0), 99.0f);

  Tensor self = Tensor::FromRowMajor(1, 2, {5, 6});
  self = self;  // Self-assignment must be a no-op.
  EXPECT_EQ(self(0, 1), 6.0f);
}

}  // namespace
}  // namespace agsc::nn
