// Tests of the benchmark-harness infrastructure (bench/bench_common.*):
// scale resolution from the environment, method naming, and config scaling.
// The harness is part of the deliverable (it regenerates the paper's tables
// and figures), so its plumbing is tested like library code.

#include <cstdlib>

#include <gtest/gtest.h>

#include "bench/bench_common.h"

namespace agsc::bench {
namespace {

class EnvVarGuard {
 public:
  explicit EnvVarGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~EnvVarGuard() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(BenchSettingsTest, SmokeDefaults) {
  EnvVarGuard g1("AGSC_BENCH_SCALE"), g2("AGSC_BENCH_ITERS");
  unsetenv("AGSC_BENCH_SCALE");
  unsetenv("AGSC_BENCH_ITERS");
  const Settings s = Settings::FromEnv();
  EXPECT_FALSE(s.paper);
  EXPECT_EQ(s.timeslots, 40);
  EXPECT_EQ(s.num_pois, 40);
  EXPECT_EQ(s.num_seeds, 1);
}

TEST(BenchSettingsTest, PaperScaleMatchesTableII) {
  EnvVarGuard g1("AGSC_BENCH_SCALE");
  setenv("AGSC_BENCH_SCALE", "paper", 1);
  const Settings s = Settings::FromEnv();
  EXPECT_TRUE(s.paper);
  EXPECT_EQ(s.timeslots, 100);   // T (Table II).
  EXPECT_EQ(s.num_pois, 100);    // I (Table II).
  EXPECT_EQ(s.eval_episodes, 50);  // "test each model 50 times".
  EXPECT_EQ(s.num_seeds, 3);
}

TEST(BenchSettingsTest, IterationOverride) {
  EnvVarGuard g1("AGSC_BENCH_SCALE"), g2("AGSC_BENCH_ITERS");
  unsetenv("AGSC_BENCH_SCALE");
  setenv("AGSC_BENCH_ITERS", "7", 1);
  EXPECT_EQ(Settings::FromEnv().train_iterations, 7);
}

TEST(BenchSettingsTest, SweepPicksByScale) {
  Settings s;
  s.paper = false;
  EXPECT_EQ(s.Sweep<double>({1, 2}, {1, 2, 3, 4}).size(), 2u);
  s.paper = true;
  EXPECT_EQ(s.Sweep<double>({1, 2}, {1, 2, 3, 4}).size(), 4u);
}

TEST(BenchCommonTest, MethodNamesMatchPaper) {
  EXPECT_EQ(MethodName(Method::kHiMadrl), "h/i-MADRL");
  EXPECT_EQ(MethodName(Method::kHiMadrlCopo), "h/i-MADRL(CoPO)");
  EXPECT_EQ(MethodName(Method::kMappo), "MAPPO");
  EXPECT_EQ(MethodName(Method::kEDivert), "e-Divert");
  EXPECT_EQ(MethodName(Method::kShortestPath), "Shortest Path");
  EXPECT_EQ(MethodName(Method::kRandom), "Random");
  EXPECT_EQ(AllMethods().size(), 6u);  // The paper's comparison set.
}

TEST(BenchCommonTest, BaseConfigsScale) {
  Settings s;
  s.timeslots = 17;
  s.num_pois = 23;
  s.net_hidden = {32, 16};
  const env::EnvConfig env_config = BaseEnvConfig(s);
  EXPECT_EQ(env_config.num_timeslots, 17);
  EXPECT_EQ(env_config.num_pois, 23);
  const core::TrainConfig train = BaseTrainConfig(s, 5);
  EXPECT_EQ(train.net.hidden, (std::vector<int>{32, 16}));
  EXPECT_EQ(train.seed, 5u);
}

TEST(BenchCommonTest, DatasetCacheReturnsSameInstance) {
  const map::Dataset& a = GetDataset(map::CampusId::kPurdue, 25);
  const map::Dataset& b = GetDataset(map::CampusId::kPurdue, 25);
  EXPECT_EQ(&a, &b);
  const map::Dataset& c = GetDataset(map::CampusId::kPurdue, 30);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(static_cast<int>(c.pois.size()), 30);
}

}  // namespace
}  // namespace agsc::bench
