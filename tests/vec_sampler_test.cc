// Determinism tests for the vectorized rollout sampler: bit-identical
// collection for a fixed (seed, num_workers) pair, exact equivalence of
// the single-worker vectorized path with the legacy sequential sampler,
// stable worker-order merging, and bit-exact checkpoint resume with
// worker RNG streams (the "vrng" checkpoint section).

#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "core/rollout.h"
#include "core/vec_sampler.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "util/rng.h"

namespace agsc {
namespace {

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 10));
  return *dataset;
}

constexpr int kTimeslots = 6;

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = kTimeslots;
  config.num_pois = 10;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

core::TrainConfig SmallTrainConfig(int num_workers, int episodes = 3) {
  core::TrainConfig train;
  train.iterations = 2;
  train.episodes_per_iteration = episodes;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.num_workers = num_workers;
  train.seed = 11;
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  // pid-scoped: gtest's TempDir is shared across concurrently running test
  // processes (ctest -j), and fixed names collide.
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Bitwise equality of two buffers across every stream (EXPECT_EQ on
/// floats is exact — the determinism contract is bit-identity, not
/// approximate agreement).
void ExpectBuffersBitEqual(const core::MultiAgentBuffer& a,
                           const core::MultiAgentBuffer& b) {
  ASSERT_EQ(a.agents.size(), b.agents.size());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.next_states, b.next_states);
  EXPECT_EQ(a.reward_all, b.reward_all);
  EXPECT_EQ(a.done, b.done);
  for (size_t k = 0; k < a.agents.size(); ++k) {
    const core::AgentRollout& x = a.agents[k];
    const core::AgentRollout& y = b.agents[k];
    ASSERT_EQ(x.size(), y.size()) << "agent " << k;
    EXPECT_EQ(x.obs, y.obs) << "agent " << k;
    EXPECT_EQ(x.next_obs, y.next_obs) << "agent " << k;
    EXPECT_EQ(x.action_dir, y.action_dir) << "agent " << k;
    EXPECT_EQ(x.action_speed, y.action_speed) << "agent " << k;
    EXPECT_EQ(x.logp_old, y.logp_old) << "agent " << k;
    EXPECT_EQ(x.reward_ext, y.reward_ext) << "agent " << k;
    EXPECT_EQ(x.he_neighbors, y.he_neighbors) << "agent " << k;
    EXPECT_EQ(x.ho_neighbors, y.ho_neighbors) << "agent " << k;
    EXPECT_EQ(x.done, y.done) << "agent " << k;
  }
}

// ---------------------------------------------------------------------------
// Rng::Split.
// ---------------------------------------------------------------------------

TEST(RngSplitTest, DoesNotAdvanceParent) {
  util::Rng rng(42);
  const auto before = rng.SaveState();
  (void)rng.Split(0);
  (void)rng.Split(7);
  EXPECT_EQ(rng.SaveState(), before);
}

TEST(RngSplitTest, SameIdSameStreamDistinctIdsDiverge) {
  const util::Rng base(42);
  util::Rng a = base.Split(3);
  util::Rng b = base.Split(3);
  util::Rng c = base.Split(4);
  EXPECT_EQ(a.SaveState(), b.SaveState());
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    const uint64_t av = a.NextU64();
    if (av != c.NextU64()) diverged = true;
    EXPECT_EQ(av, b.NextU64());
  }
  EXPECT_TRUE(diverged);
}

TEST(RngSplitTest, ChildDiffersFromParentStream) {
  util::Rng parent(42);
  util::Rng child = parent.Split(0);
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    if (parent.NextU64() != child.NextU64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------------------
// Direct VecSampler collection with a deterministic dummy actor.
// ---------------------------------------------------------------------------

/// A policy-free BatchActFn: each row's action is a pure function of that
/// row's private stream (one Gaussian per action dim, drawn in row order,
/// exactly like the real sampler).
void DummyAct(int /*k*/, const std::vector<const std::vector<float>*>& rows,
              const std::vector<util::Rng*>& rngs,
              std::vector<std::array<float, 2>>& actions_out,
              std::vector<float>& logps_out) {
  ASSERT_EQ(rows.size(), rngs.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    actions_out[i] = {static_cast<float>(rngs[i]->Gaussian()),
                      static_cast<float>(rngs[i]->Gaussian())};
    logps_out[i] = static_cast<float>(i);
  }
}

TEST(VecSamplerTest, RejectsNonPositiveWorkerCount) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  EXPECT_THROW(core::VecSampler(env, rng, 0, 11), std::invalid_argument);
}

TEST(VecSamplerTest, MergedBufferHasEpisodeShapeAndStableOrder) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  core::VecSampler sampler(env, rng, 2, 11);

  core::MultiAgentBuffer buffer(env.num_agents());
  std::vector<env::Metrics> metrics;
  constexpr int kEpisodes = 3;
  sampler.Collect(kEpisodes, DummyAct, buffer, metrics);

  // Fixed-length episodes: every episode contributes exactly kTimeslots
  // steps, and the merge is episode-contiguous, so done flags sit exactly
  // at the episode boundaries.
  ASSERT_EQ(buffer.size(), static_cast<size_t>(kEpisodes * kTimeslots));
  EXPECT_EQ(metrics.size(), static_cast<size_t>(kEpisodes));
  for (int e = 0; e < kEpisodes; ++e) {
    for (int t = 0; t < kTimeslots; ++t) {
      const size_t i = static_cast<size_t>(e * kTimeslots + t);
      EXPECT_EQ(buffer.done[i], t == kTimeslots - 1 ? 1 : 0) << "row " << i;
    }
  }
  for (const core::AgentRollout& agent : buffer.agents) {
    EXPECT_EQ(agent.size(), buffer.size());
  }
}

TEST(VecSamplerTest, CollectionIsBitIdenticalAcrossRuns) {
  auto collect = [](int num_workers, int episodes) {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    util::Rng rng(11);
    core::VecSampler sampler(env, rng, num_workers, 11);
    core::MultiAgentBuffer buffer(env.num_agents());
    std::vector<env::Metrics> metrics;
    sampler.Collect(episodes, DummyAct, buffer, metrics);
    return buffer;
  };
  for (const int workers : {1, 2, 4}) {
    const core::MultiAgentBuffer a = collect(workers, 5);
    const core::MultiAgentBuffer b = collect(workers, 5);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectBuffersBitEqual(a, b);
  }
}

TEST(VecSamplerTest, MoreWorkersThanEpisodesStillDeterministic) {
  auto collect = [] {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    util::Rng rng(11);
    core::VecSampler sampler(env, rng, 8, 11);
    core::MultiAgentBuffer buffer(env.num_agents());
    std::vector<env::Metrics> metrics;
    sampler.Collect(3, DummyAct, buffer, metrics);
    EXPECT_EQ(metrics.size(), 3u);
    return buffer;
  };
  const core::MultiAgentBuffer a = collect();
  const core::MultiAgentBuffer b = collect();
  ASSERT_EQ(a.size(), static_cast<size_t>(3 * kTimeslots));
  ExpectBuffersBitEqual(a, b);
}

// ---------------------------------------------------------------------------
// Trainer-level equivalence and determinism.
// ---------------------------------------------------------------------------

TEST(VecSamplerTrainerTest, SingleWorkerMatchesLegacySamplerBitExactly) {
  // num_workers == 0 runs the legacy sequential sampling loop (kept as the
  // reference implementation); num_workers == 1 routes through the
  // vectorized sampler with batch size 1. The two must agree bit-for-bit:
  // same RNG draw order, same row math.
  env::ScEnv env_legacy(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer legacy(env_legacy, SmallTrainConfig(0));
  env::ScEnv env_vec(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer vec(env_vec, SmallTrainConfig(1));

  legacy.CollectRollouts();
  vec.CollectRollouts();
  ExpectBuffersBitEqual(legacy.buffer(), vec.buffer());

  // And full training stays in lock-step: after two iterations the entire
  // persisted state (params, optimizers, RNGs, counters) is byte-equal.
  // Neither side writes a vrng section, so the files can be compared raw.
  legacy.TrainTo(2);
  vec.TrainTo(2);
  const std::string legacy_path = TempPath("legacy.agsc");
  const std::string vec_path = TempPath("vec1.agsc");
  ASSERT_TRUE(legacy.SaveCheckpoint(legacy_path));
  ASSERT_TRUE(vec.SaveCheckpoint(vec_path));
  EXPECT_EQ(ReadFileBytes(legacy_path), ReadFileBytes(vec_path));
  std::remove(legacy_path.c_str());
  std::remove(vec_path.c_str());
}

TEST(VecSamplerTrainerTest, SameSeedSameWorkersIsBitIdentical) {
  auto run = [](const std::string& name) {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, SmallTrainConfig(3, 5));
    trainer.TrainTo(2);
    const std::string path = TempPath(name);
    EXPECT_TRUE(trainer.SaveCheckpoint(path));
    std::string bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    return bytes;
  };
  EXPECT_EQ(run("det_a.agsc"), run("det_b.agsc"));
}

TEST(VecSamplerTrainerTest, WorkerRolloutsDifferButBufferShapeMatches) {
  // Different worker counts legitimately produce different samples (the
  // replica streams reorder the randomness) but identical buffer shape.
  env::ScEnv env1(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer t1(env1, SmallTrainConfig(1, 4));
  env::ScEnv env2(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer t2(env2, SmallTrainConfig(2, 4));
  t1.CollectRollouts();
  t2.CollectRollouts();
  EXPECT_EQ(t1.buffer().size(), t2.buffer().size());
  EXPECT_EQ(t1.buffer().size(), static_cast<size_t>(4 * kTimeslots));
}

TEST(VecSamplerTrainerTest, ResumeWithWorkersIsBitExact) {
  // Train 4 iterations with 2 workers straight through...
  env::ScEnv env_full(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer full(env_full, SmallTrainConfig(2));
  full.TrainTo(4);
  const std::string full_path = TempPath("vec_full.agsc");
  ASSERT_TRUE(full.SaveCheckpoint(full_path));

  // ...and as 2 iterations, a checkpoint round-trip through a FRESH
  // trainer (which restores every worker RNG stream from the vrng
  // section), then 2 more.
  const std::string mid_path = TempPath("vec_mid.agsc");
  {
    env::ScEnv env_a(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer first_half(env_a, SmallTrainConfig(2));
    first_half.TrainTo(2);
    ASSERT_TRUE(first_half.SaveCheckpoint(mid_path));
  }
  env::ScEnv env_b(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer second_half(env_b, SmallTrainConfig(2));
  ASSERT_TRUE(second_half.LoadCheckpoint(mid_path));
  EXPECT_EQ(second_half.iteration(), 2);
  second_half.TrainTo(4);
  const std::string resumed_path = TempPath("vec_resumed.agsc");
  ASSERT_TRUE(second_half.SaveCheckpoint(resumed_path));

  EXPECT_EQ(ReadFileBytes(full_path), ReadFileBytes(resumed_path));
  std::remove(full_path.c_str());
  std::remove(mid_path.c_str());
  std::remove(resumed_path.c_str());
}

TEST(VecSamplerTrainerTest, WorkerCountMismatchOnLoadIsRejected) {
  const std::string w3_path = TempPath("w3.agsc");
  const std::string w1_path = TempPath("w1.agsc");
  {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, SmallTrainConfig(3));
    trainer.TrainIteration();
    ASSERT_TRUE(trainer.SaveCheckpoint(w3_path));
  }
  {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, SmallTrainConfig(1));
    trainer.TrainIteration();
    ASSERT_TRUE(trainer.SaveCheckpoint(w1_path));
  }

  // W=3 file into W=2, W=1 and legacy (W=0) trainers: all rejected.
  for (const int workers : {2, 1, 0}) {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, SmallTrainConfig(workers));
    EXPECT_FALSE(trainer.LoadCheckpoint(w3_path)) << "workers=" << workers;
  }
  // W=1 file (no vrng section) into a W=3 trainer: also rejected — the
  // file cannot seed 3 worker streams.
  {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, SmallTrainConfig(3));
    EXPECT_FALSE(trainer.LoadCheckpoint(w1_path));
  }
  // Sanity: the same file loads fine with a matching worker count.
  {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, SmallTrainConfig(3));
    EXPECT_TRUE(trainer.LoadCheckpoint(w3_path));
  }
  std::remove(w3_path.c_str());
  std::remove(w1_path.c_str());
}

}  // namespace
}  // namespace agsc
