#include <cmath>

#include <gtest/gtest.h>

#include "nn/distributions.h"
#include "tests/test_util.h"
#include "util/stats.h"

namespace agsc::nn {
namespace {

constexpr float kLogTwoPi = 1.8378770664093453f;

TEST(DiagGaussianTest, LogProbMatchesClosedForm) {
  Tensor mean = Tensor::FromRowMajor(2, 2, {0.0f, 1.0f, -1.0f, 2.0f});
  Tensor log_std = Tensor::FromRowMajor(1, 2, {0.0f, std::log(2.0f)});
  DiagGaussian dist(Variable::Constant(mean), Variable::Constant(log_std));
  Tensor actions = Tensor::FromRowMajor(2, 2, {0.5f, 1.0f, -1.0f, 4.0f});
  const Tensor logp = dist.LogProb(actions).value();
  auto expect_logp = [&](int r) {
    float total = 0.0f;
    for (int c = 0; c < 2; ++c) {
      const float sigma = std::exp(log_std(0, c));
      const float z = (actions(r, c) - mean(r, c)) / sigma;
      total += -0.5f * z * z - log_std(0, c) - 0.5f * kLogTwoPi;
    }
    return total;
  };
  EXPECT_NEAR(logp(0, 0), expect_logp(0), 1e-5);
  EXPECT_NEAR(logp(1, 0), expect_logp(1), 1e-5);
}

TEST(DiagGaussianTest, EntropyClosedForm) {
  Tensor log_std = Tensor::FromRowMajor(1, 3, {0.1f, -0.2f, 0.3f});
  DiagGaussian dist(Variable::Constant(Tensor(1, 3)),
                    Variable::Constant(log_std));
  const float expect =
      (0.1f - 0.2f + 0.3f) + 0.5f * 3.0f * (1.0f + kLogTwoPi);
  EXPECT_NEAR(dist.Entropy().value()[0], expect, 1e-5);
}

TEST(DiagGaussianTest, SampleStatistics) {
  Tensor mean(1, 2);
  mean(0, 0) = 2.0f;
  mean(0, 1) = -1.0f;
  Tensor log_std = Tensor::FromRowMajor(1, 2, {std::log(0.5f),
                                               std::log(1.5f)});
  DiagGaussian dist(Variable::Constant(mean), Variable::Constant(log_std));
  util::Rng rng(77);
  util::RunningStats s0, s1;
  for (int i = 0; i < 20000; ++i) {
    const Tensor a = dist.Sample(rng);
    s0.Add(a(0, 0));
    s1.Add(a(0, 1));
  }
  EXPECT_NEAR(s0.Mean(), 2.0, 0.02);
  EXPECT_NEAR(s0.StdDev(), 0.5, 0.02);
  EXPECT_NEAR(s1.Mean(), -1.0, 0.05);
  EXPECT_NEAR(s1.StdDev(), 1.5, 0.05);
}

TEST(DiagGaussianTest, ModeIsMean) {
  Tensor mean = Tensor::FromRowMajor(1, 2, {0.3f, -0.7f});
  DiagGaussian dist(Variable::Constant(mean),
                    Variable::Constant(Tensor(1, 2)));
  EXPECT_TRUE(dist.Mode().SameAs(mean));
}

TEST(DiagGaussianTest, LogProbGradientWrtMean) {
  Tensor actions = Tensor::FromRowMajor(2, 2, {0.5f, -0.5f, 1.0f, 0.0f});
  Tensor log_std = Tensor::FromRowMajor(1, 2, {-0.3f, 0.2f});
  agsc::testing::CheckGradient(
      [&](const Variable& mean) {
        DiagGaussian dist(mean, Variable::Constant(log_std));
        return Sum(dist.LogProb(actions));
      },
      Tensor::FromRowMajor(2, 2, {0.1f, 0.2f, -0.2f, 0.4f}));
}

TEST(DiagGaussianTest, LogProbGradientWrtLogStd) {
  Tensor actions = Tensor::FromRowMajor(2, 2, {0.5f, -0.5f, 1.0f, 0.0f});
  Tensor mean = Tensor::FromRowMajor(2, 2, {0.1f, 0.2f, -0.2f, 0.4f});
  agsc::testing::CheckGradient(
      [&](const Variable& log_std) {
        DiagGaussian dist(Variable::Constant(mean), log_std);
        return Sum(dist.LogProb(actions));
      },
      Tensor::FromRowMajor(1, 2, {-0.3f, 0.2f}));
}

TEST(DiagGaussianTest, HigherDensityNearMean) {
  Tensor mean(1, 2);
  DiagGaussian dist(Variable::Constant(mean),
                    Variable::Constant(Tensor(1, 2)));
  Tensor at_mean(1, 2);
  Tensor far = Tensor::FromRowMajor(1, 2, {3.0f, 3.0f});
  EXPECT_GT(dist.LogProb(at_mean).value()[0],
            dist.LogProb(far).value()[0]);
}

TEST(DiagGaussianTest, RejectsBadLogStdShape) {
  EXPECT_THROW(DiagGaussian(Variable::Constant(Tensor(2, 3)),
                            Variable::Constant(Tensor(1, 2))),
               std::invalid_argument);
}

TEST(CategoricalTest, ProbabilitiesSumToOne) {
  util::Rng rng(5);
  CategoricalDist dist(
      Variable::Constant(Tensor::Uniform(4, 5, rng, -2.0f, 2.0f)));
  const Tensor p = dist.Probabilities();
  for (int r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 5; ++c) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(CategoricalTest, SampleFrequencyMatchesProbabilities) {
  Tensor logits = Tensor::FromRowMajor(1, 3, {0.0f, 1.0f, 2.0f});
  CategoricalDist dist(Variable::Constant(logits));
  const Tensor p = dist.Probabilities();
  util::Rng rng(6);
  std::vector<int> counts(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(rng)[0]];
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(counts[c] / static_cast<double>(n), p(0, c), 0.01);
  }
}

TEST(CategoricalTest, ModePicksArgmax) {
  Tensor logits = Tensor::FromRowMajor(2, 3, {0.0f, 5.0f, 1.0f,
                                              2.0f, -1.0f, 0.0f});
  CategoricalDist dist(Variable::Constant(logits));
  const std::vector<int> mode = dist.Mode();
  EXPECT_EQ(mode[0], 1);
  EXPECT_EQ(mode[1], 0);
}

TEST(CategoricalTest, UniformLogitsHaveMaxEntropy) {
  CategoricalDist uniform(Variable::Constant(Tensor(1, 4)));
  Tensor peaked_logits(1, 4);
  peaked_logits(0, 0) = 10.0f;
  CategoricalDist peaked(Variable::Constant(peaked_logits));
  EXPECT_NEAR(uniform.Entropy().value()[0], std::log(4.0f), 1e-4);
  EXPECT_LT(peaked.Entropy().value()[0], 0.1f);
}

TEST(CategoricalTest, LogProbMatchesProbabilities) {
  util::Rng rng(7);
  Tensor logits = Tensor::Uniform(3, 4, rng, -1.0f, 1.0f);
  CategoricalDist dist(Variable::Constant(logits));
  const Tensor p = dist.Probabilities();
  const Tensor logp = dist.LogProb({1, 3, 0}).value();
  EXPECT_NEAR(logp(0, 0), std::log(p(0, 1)), 1e-5);
  EXPECT_NEAR(logp(1, 0), std::log(p(1, 3)), 1e-5);
  EXPECT_NEAR(logp(2, 0), std::log(p(2, 0)), 1e-5);
}

}  // namespace
}  // namespace agsc::nn
