// Randomized-graph gradient checking: builds random DAGs of supported ops
// over a parameter leaf and verifies the full reverse-mode gradient against
// central finite differences. This catches interaction bugs (shared
// subexpressions, accumulation across paths) that single-op tests miss.

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace agsc::nn {
namespace {

/// Applies a randomly chosen smooth unary op (avoiding non-differentiable
/// kinks like ReLU/clamp boundaries).
Variable RandomUnary(util::Rng& rng, const Variable& x) {
  switch (rng.UniformInt(uint64_t{6})) {
    case 0: return Tanh(x);
    case 1: return Sigmoid(x);
    case 2: return Square(x);
    case 3: return ScalarMul(x, static_cast<float>(rng.Uniform(-2.0, 2.0)));
    case 4: return ScalarAdd(x, static_cast<float>(rng.Uniform(-1.0, 1.0)));
    default: return Exp(ScalarMul(x, 0.3f));  // Bounded exp.
  }
}

/// Applies a randomly chosen binary op to two same-shaped variables.
Variable RandomBinary(util::Rng& rng, const Variable& a, const Variable& b) {
  switch (rng.UniformInt(uint64_t{3})) {
    case 0: return Add(a, b);
    case 1: return Sub(a, b);
    default: return Mul(a, b);
  }
}

class AutogradFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradFuzzTest, RandomDagGradientMatchesFiniteDifference) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 1000003ULL + 7);
  const int rows = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  const int cols = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  const int depth = 3 + static_cast<int>(rng.UniformInt(uint64_t{5}));
  // Record the construction choices so the graph can be rebuilt identically
  // for each finite-difference probe.
  const uint64_t graph_seed = rng.NextU64();
  auto build = [&](const Variable& x) {
    util::Rng graph_rng(graph_seed);
    std::vector<Variable> pool = {x};
    for (int d = 0; d < depth; ++d) {
      const Variable& a =
          pool[graph_rng.UniformInt(static_cast<uint64_t>(pool.size()))];
      if (graph_rng.Bernoulli(0.5) && pool.size() >= 2) {
        const Variable& b =
            pool[graph_rng.UniformInt(static_cast<uint64_t>(pool.size()))];
        pool.push_back(RandomBinary(graph_rng, a, b));
      } else {
        pool.push_back(RandomUnary(graph_rng, a));
      }
    }
    // Reduce everything to a scalar (sum of all pool outputs' means) so
    // every path contributes to the gradient.
    Variable total = Mean(pool.back());
    for (size_t i = 0; i + 1 < pool.size(); ++i) {
      total = Add(total, ScalarMul(Mean(pool[i]), 0.5f));
    }
    return total;
  };
  agsc::testing::CheckGradient(
      build, Tensor::Uniform(rows, cols, rng, -0.9f, 0.9f),
      /*eps=*/1e-3f, /*tol=*/4e-2f);
}

TEST_P(AutogradFuzzTest, MatMulChainGradientMatches) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 97ULL + 5);
  const int d0 = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  const int d1 = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  const int d2 = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  Tensor w1 = Tensor::Uniform(d1, d2, rng, -0.7f, 0.7f);
  Tensor w2 = Tensor::Uniform(d2, d1, rng, -0.7f, 0.7f);
  agsc::testing::CheckGradient(
      [&](const Variable& x) {
        Variable h = Tanh(MatMul(x, Variable::Constant(w1)));
        Variable back = MatMul(h, Variable::Constant(w2));
        // Reuse x in a second path (diamond) to stress accumulation.
        return Mean(Square(Add(back, ScalarMul(x, 0.5f))));
      },
      Tensor::Uniform(d0, d1, rng, -0.8f, 0.8f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace agsc::nn
