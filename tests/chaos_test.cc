// Chaos campaign: end-to-end trainings of the real agsc_train binary under
// injected faults — signals mid-checkpoint, external SIGINT (single and
// double), transient and persistent write failures, stalled rollout
// workers, corrupted checkpoint files, and persistent NaN losses. Every
// scenario asserts the documented exit-code contract and, where the
// contract promises it, that the run left a loadable checkpoint behind
// (proved by resuming from it fault-free).
//
// The binary path is injected at build time via AGSC_TRAIN_BINARY (see
// tests/CMakeLists.txt); fault flags reach the child through AGSC_FAULT_*
// environment variables so the parent test process stays fault-free.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/exit_codes.h"

#ifndef AGSC_WORKER_BINARY
#error "AGSC_WORKER_BINARY must point at the built agsc_worker binary"
#endif

namespace agsc {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  // pid-scoped: gtest's TempDir is shared across concurrently running test
  // processes (ctest -j), and fixed names collide.
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

/// The fixed tiny-run arguments every scenario shares: a small Purdue
/// problem so each end-to-end training finishes in well under a second.
std::vector<std::string> TinyArgs() {
  return {"--pois", "12", "--uavs", "1", "--ugvs", "1",
          "--timeslots", "8", "--eval", "0", "--quiet"};
}

/// Forks and execs `binary` with exactly `full_args` and `env_kv`
/// ("KEY=VALUE") exported in the child only; stdout+stderr go to
/// `log_path`. Returns the child pid.
pid_t SpawnBinary(const char* binary, const std::vector<std::string>& full_args,
                  const std::vector<std::string>& env_kv,
                  const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child. Only async-signal-unsafe calls before a fresh exec: fine here.
  FILE* log = std::freopen(log_path.c_str(), "w", stdout);
  if (log == nullptr) ::_exit(126);
  ::dup2(::fileno(stdout), 2);
  for (const std::string& kv : env_kv) {
    const size_t eq = kv.find('=');
    ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
  }
  std::vector<std::string> args = {binary};
  for (const std::string& a : full_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(binary, argv.data());
  ::_exit(127);  // exec failed.
}

/// Trainer-specific wrapper: `extra_args` appended to the shared TinyArgs().
pid_t SpawnTrain(const std::vector<std::string>& extra_args,
                 const std::vector<std::string>& env_kv,
                 const std::string& log_path) {
  std::vector<std::string> args = TinyArgs();
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  return SpawnBinary(AGSC_TRAIN_BINARY, args, env_kv, log_path);
}

/// Blocks until `pid` exits; returns its exit code (or 128+signal if it was
/// killed, mirroring the shell convention).
int WaitExit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int RunTrain(const std::vector<std::string>& extra_args,
             const std::vector<std::string>& env_kv,
             const std::string& log_path) {
  return WaitExit(SpawnTrain(extra_args, env_kv, log_path));
}

std::string LogContents(const std::string& log_path) {
  std::ifstream in(log_path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Scenario-scoped workspace: a fresh checkpoint directory plus a log file,
/// removed on destruction.
struct Workspace {
  std::string dir;
  std::string log;

  explicit Workspace(const std::string& name)
      : dir(TempPath(name + "_ckpt")), log(TempPath(name + ".log")) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~Workspace() {
    fs::remove_all(dir);
    std::remove(log.c_str());
  }

  std::vector<std::string> CheckpointArgs() const {
    return {"--checkpoint-dir", dir, "--checkpoint-every", "1"};
  }
  /// Fault-free resume proving the directory holds a loadable checkpoint.
  int Resume(int iterations) const {
    std::vector<std::string> args = CheckpointArgs();
    args.push_back("--iterations");
    args.push_back(std::to_string(iterations));
    args.push_back("--resume");
    return RunTrain(args, {}, log);
  }
};

void CorruptFile(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "garbage";
}

// ---------------------------------------------------------------------------
// Scenarios.
// ---------------------------------------------------------------------------

TEST(ChaosTest, BaselineCompletesAndResumes) {
  Workspace ws("baseline");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(), {"--iterations", "2"});
  EXPECT_EQ(RunTrain(args, {}, ws.log), util::kExitOk) << LogContents(ws.log);
  EXPECT_TRUE(fs::exists(ws.dir + "/ckpt_000002.agsc"));
  EXPECT_EQ(ws.Resume(3), util::kExitOk) << LogContents(ws.log);
}

TEST(ChaosTest, UsageAndConfigErrorsUseTheirCodes) {
  const std::string log = TempPath("usage.log");
  EXPECT_EQ(RunTrain({"--no-such-flag"}, {}, log), util::kExitUsage);
  EXPECT_EQ(RunTrain({"--uavs", "0", "--ugvs", "0"}, {}, log),
            util::kExitConfig);
  std::remove(log.c_str());
}

TEST(ChaosTest, SignalDuringCheckpointWriteStopsCleanly) {
  Workspace ws("sig_write");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(), {"--iterations", "50"});
  // SIGINT is raised by the injector immediately before the second
  // checkpoint write — a deterministic "signal arrives mid-checkpoint".
  EXPECT_EQ(RunTrain(args, {"AGSC_FAULT_SIGNAL_WRITE=2"}, ws.log),
            util::kExitSignalStop)
      << LogContents(ws.log);
  // The cooperative stop flushed a loadable checkpoint at the boundary.
  EXPECT_EQ(ws.Resume(3), util::kExitOk) << LogContents(ws.log);
}

TEST(ChaosTest, ExternalSigintStopsCleanly) {
  Workspace ws("ext_sigint");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(), {"--iterations", "100000"});
  const pid_t pid = SpawnTrain(args, {}, ws.log);
  ASSERT_GT(pid, 0);
  // The handler is installed before anything else in main, so the signal is
  // caught no matter how far the child has gotten.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(::kill(pid, SIGINT), 0);
  EXPECT_EQ(WaitExit(pid), util::kExitSignalStop) << LogContents(ws.log);
}

TEST(ChaosTest, SecondSignalAbortsImmediately) {
  Workspace ws("double_sigint");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(),
              {"--iterations", "100000", "--num-workers", "2"});
  // A 30 s worker stall pins the child mid-collection, where the stop flag
  // is unreachable: the first SIGINT can only set the flag, so the second
  // one deterministically hits the abort path in the handler.
  const pid_t pid = SpawnTrain(
      args, {"AGSC_FAULT_STALL_TASK=1", "AGSC_FAULT_STALL_MS=30000"}, ws.log);
  ASSERT_GT(pid, 0);
  // Generous margin for the child to finish construction and enter the
  // stalled step even on a loaded machine.
  std::this_thread::sleep_for(std::chrono::milliseconds(3000));
  ASSERT_EQ(::kill(pid, SIGINT), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(::kill(pid, SIGINT), 0);
  EXPECT_EQ(WaitExit(pid), util::kExitInterruptedAbort) << LogContents(ws.log);
}

TEST(ChaosTest, TransientWriteFaultIsAbsorbedByRetry) {
  Workspace ws("transient_write");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(), {"--iterations", "2"});
  // Exactly one failed write: the retry layer absorbs it and the run is
  // indistinguishable from a healthy one (bar a warning in the log).
  EXPECT_EQ(RunTrain(args, {"AGSC_FAULT_FAIL_WRITE=1"}, ws.log), util::kExitOk)
      << LogContents(ws.log);
  EXPECT_TRUE(fs::exists(ws.dir + "/ckpt_000002.agsc"));
  EXPECT_EQ(ws.Resume(3), util::kExitOk) << LogContents(ws.log);
}

TEST(ChaosTest, PersistentWriteFaultExitsIoError) {
  Workspace ws("persistent_write");
  // Every write fails, outlasting the retry budget: the explicit --save
  // cannot succeed and the run must report the I/O failure.
  EXPECT_EQ(RunTrain({"--iterations", "1", "--save", ws.dir + "/final.agsc"},
                     {"AGSC_FAULT_FAIL_WRITE=1",
                      "AGSC_FAULT_FAIL_WRITE_COUNT=99"},
                     ws.log),
            util::kExitIoError)
      << LogContents(ws.log);
  EXPECT_FALSE(fs::exists(ws.dir + "/final.agsc"));
}

TEST(ChaosTest, StalledWorkerTripsTheWatchdog) {
  Workspace ws("watchdog");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(), {"--iterations", "3", "--num-workers", "2",
                           "--watchdog-sec", "1"});
  // The first worker step hangs far past the 1 s deadline; the watchdog
  // names the stuck worker and the process fail-fasts with its own code.
  EXPECT_EQ(RunTrain(args,
                     {"AGSC_FAULT_STALL_TASK=1", "AGSC_FAULT_STALL_MS=20000"},
                     ws.log),
            util::kExitWatchdogTimeout)
      << LogContents(ws.log);
  EXPECT_NE(LogContents(ws.log).find("watchdog"), std::string::npos);
}

TEST(ChaosTest, CorruptedNewestCheckpointFallsBackOnResume) {
  Workspace ws("fallback");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(), {"--iterations", "2"});
  ASSERT_EQ(RunTrain(args, {}, ws.log), util::kExitOk) << LogContents(ws.log);
  CorruptFile(ws.dir + "/ckpt_000002.agsc");
  // Resume skips the corrupted newest file and restores the older one.
  EXPECT_EQ(ws.Resume(3), util::kExitOk) << LogContents(ws.log);
  EXPECT_NE(LogContents(ws.log).find("ckpt_000001"), std::string::npos)
      << LogContents(ws.log);
}

TEST(ChaosTest, AllCheckpointsCorruptedExitsResumeMismatch) {
  Workspace ws("all_corrupt");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(), {"--iterations", "2"});
  ASSERT_EQ(RunTrain(args, {}, ws.log), util::kExitOk) << LogContents(ws.log);
  for (const fs::directory_entry& entry : fs::directory_iterator(ws.dir)) {
    CorruptFile(entry.path().string());
  }
  // Checkpoints exist but none loads: refusing to silently retrain from
  // scratch is the whole point of the resume-mismatch code.
  EXPECT_EQ(ws.Resume(3), util::kExitResumeMismatch) << LogContents(ws.log);
}

TEST(ChaosTest, PersistentNanLossExitsDiverged) {
  Workspace ws("diverged");
  std::vector<std::string> args = ws.CheckpointArgs();
  args.insert(args.end(), {"--iterations", "20", "--max-backoffs", "1"});
  // Every guarded loss is NaN: the divergence guard rolls back, backs off
  // the learning rates once, then gives up — flushing a last checkpoint.
  EXPECT_EQ(RunTrain(args, {"AGSC_FAULT_NAN_LOSS_EVERY=1"}, ws.log),
            util::kExitDiverged)
      << LogContents(ws.log);
  EXPECT_EQ(ws.Resume(6), util::kExitOk) << LogContents(ws.log);
}

// ---------------------------------------------------------------------------
// Subprocess rollout workers (--proc-workers): byte-identity with the
// in-process sampler, respawn-and-replay under injected worker faults, and
// the worker-failed exit code when the fleet cannot be kept alive.
// ---------------------------------------------------------------------------

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Trains 2 iterations with `mode_args` + `env_kv` and returns the bytes of
/// the saved final checkpoint.
std::string TrainAndSave(const Workspace& ws, const std::string& name,
                         const std::vector<std::string>& mode_args,
                         const std::vector<std::string>& env_kv) {
  const std::string ckpt = ws.dir + "/" + name;
  std::vector<std::string> args = {"--iterations", "2", "--save", ckpt};
  args.insert(args.end(), mode_args.begin(), mode_args.end());
  EXPECT_EQ(RunTrain(args, env_kv, ws.log), util::kExitOk)
      << LogContents(ws.log);
  return FileBytes(ckpt);
}

TEST(ChaosTest, ProcWorkersMatchInProcessWorkersByteExactly) {
  Workspace ws("proc_parity");
  const std::string vec =
      TrainAndSave(ws, "vec.agsc", {"--num-workers", "2"}, {});
  const std::string proc =
      TrainAndSave(ws, "proc.agsc", {"--proc-workers", "2"}, {});
  ASSERT_FALSE(vec.empty());
  EXPECT_EQ(vec, proc);
}

TEST(ChaosTest, KilledProcWorkerIsReplayedByteExactly) {
  Workspace ws("proc_kill");
  const std::string clean =
      TrainAndSave(ws, "clean.agsc", {"--num-workers", "2"}, {});
  // Worker 1 SIGKILLs itself on its 4th step frame, mid-round; the trainer
  // must respawn and replay it, landing on the identical checkpoint.
  const std::string faulty =
      TrainAndSave(ws, "faulty.agsc", {"--proc-workers", "2"},
                   {"AGSC_FAULT_KILL_WORKER_NTH=4",
                    "AGSC_FAULT_WORKER_ID=1"});
  ASSERT_FALSE(clean.empty());
  EXPECT_EQ(clean, faulty);
  EXPECT_NE(LogContents(ws.log).find("respawn"), std::string::npos)
      << LogContents(ws.log);
}

TEST(ChaosTest, CorruptFrameFromProcWorkerIsReplayedByteExactly) {
  Workspace ws("proc_corrupt");
  const std::string clean =
      TrainAndSave(ws, "clean.agsc", {"--num-workers", "2"}, {});
  // Worker 0's 3rd outgoing frame has a payload byte flipped after its CRC:
  // the trainer must reject the frame, never consume garbage, and replay.
  const std::string faulty =
      TrainAndSave(ws, "faulty.agsc", {"--proc-workers", "2"},
                   {"AGSC_FAULT_CORRUPT_FRAME=3", "AGSC_FAULT_WORKER_ID=0"});
  ASSERT_FALSE(clean.empty());
  EXPECT_EQ(clean, faulty);
}

TEST(ChaosTest, StalledProcWorkerIsRespawnedNotFatal) {
  Workspace ws("proc_stall");
  const std::string clean =
      TrainAndSave(ws, "clean.agsc", {"--num-workers", "2"}, {});
  // A 30 s pipe stall against a 1 s step deadline. Unlike the in-process
  // watchdog (fail-fast exit 7), a subprocess straggler is recoverable:
  // kill, respawn, replay, finish with exit 0 and identical bytes.
  const std::string faulty = TrainAndSave(
      ws, "faulty.agsc",
      {"--proc-workers", "2", "--watchdog-sec", "1"},
      {"AGSC_FAULT_STALL_PIPE=3", "AGSC_FAULT_STALL_MS=30000",
       "AGSC_FAULT_WORKER_ID=1"});
  ASSERT_FALSE(clean.empty());
  EXPECT_EQ(clean, faulty);
}

TEST(ChaosTest, MissingWorkerBinaryExitsWorkerFailed) {
  Workspace ws("proc_missing");
  EXPECT_EQ(RunTrain({"--iterations", "2", "--proc-workers", "1",
                      "--worker-binary", ws.dir + "/no_such_worker"},
                     {}, ws.log),
            util::kExitWorkerFailed)
      << LogContents(ws.log);
  EXPECT_NE(LogContents(ws.log).find("worker failed"), std::string::npos)
      << LogContents(ws.log);
}

TEST(ChaosTest, ProcAndNumWorkersAreMutuallyExclusive) {
  const std::string log = TempPath("proc_usage.log");
  EXPECT_EQ(RunTrain({"--proc-workers", "2", "--num-workers", "2"}, {}, log),
            util::kExitUsage);
  std::remove(log.c_str());
}

// ---------------------------------------------------------------------------
// Networked rollout workers (--remote-workers + --listen): byte-identity
// over loopback TCP, harness-killed workers replaced mid-run, and the
// network-setup / flag-combination exit-code contract.
// ---------------------------------------------------------------------------

/// Polls `path` (written atomically by --port-file) for a positive port
/// number. Returns 0 on deadline.
int PollPortFile(const std::string& path, long deadline_ms = 30000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

pid_t SpawnRemoteWorker(int port, int worker_id, const std::string& log_path) {
  return SpawnBinary(AGSC_WORKER_BINARY,
                     {"--connect", "127.0.0.1:" + std::to_string(port),
                      "--worker-id", std::to_string(worker_id)},
                     {}, log_path);
}

TEST(ChaosTest, RemoteWorkersMatchInProcessWorkersByteExactly) {
  Workspace ws("remote_parity");
  const std::string clean =
      TrainAndSave(ws, "clean.agsc", {"--num-workers", "2"}, {});
  ASSERT_FALSE(clean.empty());

  const std::string ckpt = ws.dir + "/remote.agsc";
  const std::string port_file = ws.dir + "/port.txt";
  std::vector<std::string> args = {
      "--iterations", "2",        "--save",      ckpt,     "--remote-workers",
      "2",            "--listen", "127.0.0.1:0", "--port-file", port_file};
  const pid_t trainer = SpawnTrain(args, {}, ws.log);
  ASSERT_GT(trainer, 0);
  const int port = PollPortFile(port_file);
  ASSERT_GT(port, 0) << LogContents(ws.log);
  const pid_t w0 = SpawnRemoteWorker(port, 0, ws.dir + "/w0.log");
  const pid_t w1 = SpawnRemoteWorker(port, 1, ws.dir + "/w1.log");
  EXPECT_EQ(WaitExit(trainer), util::kExitOk) << LogContents(ws.log);
  // The trainer's shutdown frame ends both workers cleanly.
  EXPECT_EQ(WaitExit(w0), 0) << LogContents(ws.dir + "/w0.log");
  EXPECT_EQ(WaitExit(w1), 0) << LogContents(ws.dir + "/w1.log");
  EXPECT_EQ(clean, FileBytes(ckpt));
}

TEST(ChaosTest, KilledRemoteWorkerIsReplacedAndByteIdentical) {
  Workspace ws("remote_kill");
  // Longer episodes than the other scenarios so the SIGKILL below lands
  // mid-run rather than after the training already finished.
  const std::string clean = TrainAndSave(
      ws, "clean.agsc", {"--num-workers", "2", "--timeslots", "60"}, {});
  ASSERT_FALSE(clean.empty());

  const std::string ckpt = ws.dir + "/remote.agsc";
  const std::string port_file = ws.dir + "/port.txt";
  std::vector<std::string> args = {
      "--iterations", "2",        "--save",      ckpt,     "--remote-workers",
      "2",            "--listen", "127.0.0.1:0", "--port-file", port_file,
      "--timeslots",  "60"};
  const pid_t trainer = SpawnTrain(args, {}, ws.log);
  ASSERT_GT(trainer, 0);
  const int port = PollPortFile(port_file);
  ASSERT_GT(port, 0) << LogContents(ws.log);
  const pid_t w0 = SpawnRemoteWorker(port, 0, ws.dir + "/w0.log");
  const pid_t w1 = SpawnRemoteWorker(port, 1, ws.dir + "/w1.log");

  // SIGKILL worker 1 over TCP mid-episode, then hand the trainer a
  // replacement: the slot must be re-attached and its shard replayed.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ::kill(w1, SIGKILL);
  WaitExit(w1);
  const pid_t w1b = SpawnRemoteWorker(port, 1, ws.dir + "/w1b.log");

  EXPECT_EQ(WaitExit(trainer), util::kExitOk) << LogContents(ws.log);
  EXPECT_EQ(WaitExit(w0), 0) << LogContents(ws.dir + "/w0.log");
  // The replacement either served the rest of the run (exit 0 on shutdown)
  // or arrived after the trainer finished and exhausted its reconnect
  // budget (net-error) — the checkpoint contract below is what matters.
  const int w1b_exit = WaitExit(w1b);
  EXPECT_TRUE(w1b_exit == 0 || w1b_exit == util::kExitNetError) << w1b_exit;
  EXPECT_EQ(clean, FileBytes(ckpt));
}

TEST(ChaosTest, RemoteWorkerFlagCombinationsAreValidated) {
  const std::string log = TempPath("remote_usage.log");
  // --remote-workers excludes the in-process/local-subprocess modes.
  EXPECT_EQ(RunTrain({"--remote-workers", "2", "--listen", "127.0.0.1:0",
                      "--num-workers", "2"},
                     {}, log),
            util::kExitUsage);
  EXPECT_EQ(RunTrain({"--remote-workers", "2", "--listen", "127.0.0.1:0",
                      "--proc-workers", "2"},
                     {}, log),
            util::kExitUsage);
  // --remote-workers needs --listen; --listen/--port-file need the rest.
  EXPECT_EQ(RunTrain({"--remote-workers", "2"}, {}, log), util::kExitUsage);
  EXPECT_EQ(RunTrain({"--listen", "127.0.0.1:0"}, {}, log), util::kExitUsage);
  EXPECT_EQ(RunTrain({"--port-file", TempPath("unused_port.txt")}, {}, log),
            util::kExitUsage);
  std::remove(log.c_str());
}

TEST(ChaosTest, UnusableListenAddressExitsNetError) {
  const std::string log = TempPath("net_error.log");
  EXPECT_EQ(RunTrain({"--iterations", "1", "--remote-workers", "2",
                      "--listen", "not-a-sockaddr"},
                     {}, log),
            util::kExitNetError)
      << LogContents(log);
  EXPECT_NE(LogContents(log).find("net-error"), std::string::npos)
      << LogContents(log);
  std::remove(log.c_str());
}

TEST(ChaosTest, WorkerConnectRefusedExitsNetError) {
  const std::string log = TempPath("worker_refused.log");
  // Nothing listens on the reserved port; a tight retry budget makes the
  // worker give up fast with the network-setup code.
  const int code = WaitExit(SpawnBinary(
      AGSC_WORKER_BINARY,
      {"--connect", "127.0.0.1:1", "--connect-retries", "2",
       "--connect-timeout-ms", "500"},
      {}, log));
  EXPECT_EQ(code, util::kExitNetError) << LogContents(log);
  std::remove(log.c_str());
}

TEST(ChaosTest, VersionFlagPrintsBuildProvenance) {
  const std::string log = TempPath("version.log");
  EXPECT_EQ(RunTrain({"--version"}, {}, log), util::kExitOk);
  const std::string out = LogContents(log);
  EXPECT_NE(out.find("agsc_train compiler="), std::string::npos) << out;
  EXPECT_NE(out.find("gemm-isa="), std::string::npos) << out;
  std::remove(log.c_str());
}

TEST(ChaosTest, StatsCsvCarriesBuildHeader) {
  Workspace ws("stats_header");
  const std::string csv = ws.dir + "/stats.csv";
  ASSERT_EQ(RunTrain({"--iterations", "1", "--stats-csv", csv}, {}, ws.log),
            util::kExitOk)
      << LogContents(ws.log);
  const std::string contents = FileBytes(csv);
  EXPECT_EQ(contents.rfind("# build: agsc_train compiler=", 0), 0u)
      << contents.substr(0, 200);
}

}  // namespace
}  // namespace agsc
