// Golden-value regression tests pinning the numerical outputs of the
// advantage estimators (Eqn. 24 / GAE), the h-CoPO advantage mixing
// (Eqn. 27) and neighbor-mean rewards (Eqn. 23), and the i-EOI intrinsic
// reward (Eqn. 19) to frozen constants. A failure here means the math
// CHANGED, not that it is wrong — if a change is intentional, regenerate
// the constants (instructions at each fixture) and update them in the
// same commit that changes the math.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/copo.h"
#include "core/eoi.h"
#include "core/hi_madrl.h"
#include "core/ppo.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "util/rng.h"

namespace agsc {
namespace {

// ---------------------------------------------------------------------------
// Advantage estimators. All inputs are small dyadic rationals, so every
// intermediate float is exact and the expectations hold bit-for-bit.
// ---------------------------------------------------------------------------

TEST(AdvantageGoldenTest, OneStepHandComputed) {
  // A_t = r_t + gamma * V(o_{t+1}) * (1 - done_t) - V(o_t).
  const std::vector<float> rewards = {1.0f, 2.0f, 3.0f};
  const std::vector<float> values = {0.5f, 1.0f, 1.5f};
  const std::vector<float> next_values = {1.0f, 1.5f, 2.0f};
  const std::vector<uint8_t> dones = {0, 0, 1};
  const core::AdvantageResult res =
      core::OneStepAdvantages(rewards, values, next_values, dones, 0.5f);
  ASSERT_EQ(res.advantages.size(), 3u);
  EXPECT_FLOAT_EQ(res.advantages[0], 1.0f);
  EXPECT_FLOAT_EQ(res.advantages[1], 1.75f);
  EXPECT_FLOAT_EQ(res.advantages[2], 1.5f);
  EXPECT_FLOAT_EQ(res.returns[0], 1.5f);
  EXPECT_FLOAT_EQ(res.returns[1], 2.75f);
  EXPECT_FLOAT_EQ(res.returns[2], 3.0f);
}

TEST(AdvantageGoldenTest, GaeHandComputedZeroValues) {
  // With V == 0 everywhere: delta_t = r_t and
  // gae_t = delta_t + gamma * lambda * gae_{t+1}.
  const std::vector<float> rewards = {1.0f, 1.0f, 1.0f};
  const std::vector<float> zeros = {0.0f, 0.0f, 0.0f};
  const std::vector<uint8_t> dones = {0, 0, 1};
  const core::AdvantageResult res =
      core::GaeAdvantages(rewards, zeros, zeros, dones, 0.5f, 0.5f);
  ASSERT_EQ(res.advantages.size(), 3u);
  EXPECT_FLOAT_EQ(res.advantages[0], 1.3125f);  // 1 + 0.25 * 1.25.
  EXPECT_FLOAT_EQ(res.advantages[1], 1.25f);    // 1 + 0.25 * 1.
  EXPECT_FLOAT_EQ(res.advantages[2], 1.0f);
  // returns = advantages + values = advantages here.
  EXPECT_FLOAT_EQ(res.returns[0], 1.3125f);
  EXPECT_FLOAT_EQ(res.returns[1], 1.25f);
  EXPECT_FLOAT_EQ(res.returns[2], 1.0f);
}

TEST(AdvantageGoldenTest, GaeHandComputedNonZeroValues) {
  const std::vector<float> rewards = {1.0f, 2.0f, 3.0f};
  const std::vector<float> values = {0.5f, 1.0f, 1.5f};
  const std::vector<float> next_values = {1.0f, 1.5f, 2.0f};
  const std::vector<uint8_t> dones = {0, 0, 1};
  const core::AdvantageResult res =
      core::GaeAdvantages(rewards, values, next_values, dones, 0.5f, 0.5f);
  ASSERT_EQ(res.advantages.size(), 3u);
  // deltas: {1, 1.75, 1.5}; gae backwards: 1.5, 1.75 + .25*1.5 = 2.125,
  // 1 + .25*2.125 = 1.53125.
  EXPECT_FLOAT_EQ(res.advantages[0], 1.53125f);
  EXPECT_FLOAT_EQ(res.advantages[1], 2.125f);
  EXPECT_FLOAT_EQ(res.advantages[2], 1.5f);
  EXPECT_FLOAT_EQ(res.returns[0], 2.03125f);
  EXPECT_FLOAT_EQ(res.returns[1], 3.125f);
  EXPECT_FLOAT_EQ(res.returns[2], 3.0f);
}

TEST(AdvantageGoldenTest, GaeResetsAtEpisodeBoundaries) {
  // Two concatenated 2-step episodes must bootstrap independently.
  const std::vector<float> rewards = {1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<float> zeros = {0.0f, 0.0f, 0.0f, 0.0f};
  const std::vector<uint8_t> dones = {0, 1, 0, 1};
  const core::AdvantageResult res =
      core::GaeAdvantages(rewards, zeros, zeros, dones, 0.5f, 0.5f);
  ASSERT_EQ(res.advantages.size(), 4u);
  EXPECT_FLOAT_EQ(res.advantages[0], 1.25f);
  EXPECT_FLOAT_EQ(res.advantages[1], 1.0f);
  EXPECT_FLOAT_EQ(res.advantages[2], 1.25f);
  EXPECT_FLOAT_EQ(res.advantages[3], 1.0f);
}

TEST(AdvantageGoldenTest, GaeLambdaZeroReducesToOneStep) {
  const std::vector<float> rewards = {0.5f, -1.0f, 2.0f, 0.25f};
  const std::vector<float> values = {0.25f, 0.5f, -0.5f, 1.0f};
  const std::vector<float> next_values = {0.5f, -0.5f, 1.0f, 0.0f};
  const std::vector<uint8_t> dones = {0, 0, 0, 1};
  const core::AdvantageResult gae =
      core::GaeAdvantages(rewards, values, next_values, dones, 0.75f, 0.0f);
  const core::AdvantageResult one_step =
      core::OneStepAdvantages(rewards, values, next_values, dones, 0.75f);
  ASSERT_EQ(gae.advantages.size(), one_step.advantages.size());
  for (size_t t = 0; t < gae.advantages.size(); ++t) {
    EXPECT_FLOAT_EQ(gae.advantages[t], one_step.advantages[t]) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// h-CoPO advantage mixing (Eqn. 27) and neighbor means (Eqn. 23).
// Golden constants are exact trigonometric values written to double
// precision: cos(30deg) = sqrt(3)/2 = 0.8660254037844386...
// ---------------------------------------------------------------------------

TEST(CopoGoldenTest, CoopAdvantageMixing) {
  core::Lcf lcf;
  lcf.phi_deg = 30.0;
  lcf.chi_deg = 60.0;
  const double a = 1.0, a_he = 2.0, a_ho = 3.0;
  // A cos(phi) + (A_HE cos(chi) + A_HO sin(chi)) sin(phi)
  //   = sqrt(3)/2 + (1 + 1.5 sqrt(3)) / 2.
  EXPECT_NEAR(core::CoopAdvantage(a, a_he, a_ho, lcf), 2.6650635094610966,
              1e-12);
  // dA/dphi = -A sin(phi) + (A_HE cos(chi) + A_HO sin(chi)) cos(phi).
  EXPECT_NEAR(core::CoopAdvantageDPhi(a, a_he, a_ho, lcf),
              2.6160254037844387, 1e-12);
  // dA/dchi = (-A_HE sin(chi) + A_HO cos(chi)) sin(phi).
  EXPECT_NEAR(core::CoopAdvantageDChi(a, a_he, a_ho, lcf),
              -0.11602540378443865, 1e-12);
}

TEST(CopoGoldenTest, CoopAdvantageSelfishAndSelflessLimits) {
  core::Lcf selfish;  // phi = 0: pure individual advantage.
  selfish.phi_deg = 0.0;
  selfish.chi_deg = 45.0;
  EXPECT_NEAR(core::CoopAdvantage(7.0, -3.0, 11.0, selfish), 7.0, 1e-12);
  core::Lcf selfless;  // phi = 90, chi = 0: pure HE-neighbor advantage.
  selfless.phi_deg = 90.0;
  selfless.chi_deg = 0.0;
  EXPECT_NEAR(core::CoopAdvantage(7.0, -3.0, 11.0, selfless), -3.0, 1e-12);
}

TEST(CopoGoldenTest, PlainCopoVariant) {
  core::Lcf lcf;
  lcf.phi_deg = 30.0;
  // A cos(phi) + A_N sin(phi) = sqrt(3)/2 + 1.
  EXPECT_NEAR(core::CoopAdvantagePlain(1.0, 2.0, lcf), 1.8660254037844386,
              1e-12);
  // -A sin(phi) + A_N cos(phi) = -0.5 + sqrt(3).
  EXPECT_NEAR(core::CoopAdvantagePlainDPhi(1.0, 2.0, lcf),
              1.2320508075688772, 1e-12);
}

TEST(CopoGoldenTest, NeighborMeanReward) {
  const std::vector<double> rewards = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(core::NeighborMeanReward({0, 2}, rewards), 2.0);
  EXPECT_DOUBLE_EQ(core::NeighborMeanReward({1}, rewards), 2.0);
  EXPECT_DOUBLE_EQ(core::NeighborMeanReward({}, rewards), 0.0);
}

TEST(CopoGoldenTest, LcfClampToRange) {
  core::Lcf lcf;
  lcf.phi_deg = -5.0;
  lcf.chi_deg = 100.0;
  lcf.ClampToRange();
  EXPECT_DOUBLE_EQ(lcf.phi_deg, 0.0);
  EXPECT_DOUBLE_EQ(lcf.chi_deg, 90.0);
}

// ---------------------------------------------------------------------------
// i-EOI intrinsic reward (Eqn. 19), pinned against a freshly initialized
// classifier. Regenerate the constants by printing
//   EoiClassifier(4, 3, {.hidden = {8}}, util::Rng(123))
//       .IntrinsicReward(k, obs)
// for k in 0..2 and the two observation rows below.
// ---------------------------------------------------------------------------

TEST(EoiGoldenTest, IntrinsicRewardFrozenInitialization) {
  core::EoiConfig config;
  config.hidden = {8};
  util::Rng rng(123);
  core::EoiClassifier eoi(/*obs_dim=*/4, /*num_agents=*/3, config, rng);

  const std::vector<float> obs_a = {0.1f, -0.2f, 0.3f, 0.7f};
  const std::vector<float> obs_b = {-0.5f, 0.25f, 0.0f, 1.0f};
  const float golden[3][2] = {{0.423698932f, 0.328232557f},
                              {0.295728832f, 0.242813438f},
                              {0.280572206f, 0.428954005f}};
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(eoi.IntrinsicReward(k, obs_a), golden[k][0], 1e-6)
        << "k=" << k;
    EXPECT_NEAR(eoi.IntrinsicReward(k, obs_b), golden[k][1], 1e-6)
        << "k=" << k;
  }

  // Internal consistency: probabilities are a distribution and the batch
  // path reproduces the single-row path bitwise.
  for (const auto& obs : {obs_a, obs_b}) {
    const std::vector<float> probs = eoi.Probabilities(obs);
    ASSERT_EQ(probs.size(), 3u);
    float sum = 0.0f;
    for (int k = 0; k < 3; ++k) {
      sum += probs[k];
      EXPECT_EQ(probs[k], eoi.IntrinsicReward(k, obs));
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  const std::vector<float> batch = eoi.IntrinsicRewards(1, {obs_a, obs_b});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], eoi.IntrinsicReward(1, obs_a));
  EXPECT_EQ(batch[1], eoi.IntrinsicReward(1, obs_b));
}

// ---------------------------------------------------------------------------
// End-to-end sampling regression: the first training iteration of a tiny
// fixed configuration. These constants pin the whole sampling chain
// (environment dynamics, actor init, RNG draw order, Eqn. 19 compound
// rewards, Eqn. 21 classifier loss). Regenerate by printing the
// IterationStats fields of the exact configuration below.
// ---------------------------------------------------------------------------

TEST(TrainerGoldenTest, FirstIterationStats) {
  const map::Dataset dataset = map::BuildDataset(map::CampusId::kPurdue, 8);
  env::EnvConfig env_config;
  env_config.num_timeslots = 10;
  env_config.num_pois = 8;
  env_config.num_uavs = 1;
  env_config.num_ugvs = 1;
  env::ScEnv env(env_config, dataset, /*seed=*/7);

  core::TrainConfig train;
  train.iterations = 1;
  train.episodes_per_iteration = 2;
  train.net.hidden = {16, 8};
  train.eoi.hidden = {16};
  train.seed = 7;
  train.verbose = false;
  core::HiMadrlTrainer trainer(env, train);

  const core::IterationStats stats = trainer.TrainIteration();
  EXPECT_NEAR(stats.mean_reward_ext, 0.0111469878f, 2e-6f);
  EXPECT_NEAR(stats.mean_reward_int, 0.500629961f, 2e-6f);
  EXPECT_NEAR(stats.eoi_loss, 1.01740682f, 1e-5f);
  EXPECT_EQ(stats.total_env_steps,
            2L * env_config.num_timeslots * env.num_agents());
}

}  // namespace
}  // namespace agsc
