# Included by ctest via TEST_INCLUDE_FILES after the gtest-generated
# registration scripts AND after serving_labels.cmake / net_labels.cmake
# (tests/CMakeLists.txt appends it last), so the base labels are already
# set. Adds the "overload" label to the saturation/fairness scenarios in
# the dispatch and soak suites — `ctest -L overload` runs exactly the
# admission-control / brownout / quarantine campaign (see README).
#
# ctest's testfile interpreter does not support set_property(TEST ... APPEND),
# only set_tests_properties — so this pass re-states the full label list.
# Running last makes that deterministic: dispatch_server_test tests carry
# "fast" (gtest_discover_tests), serving_soak_test tests carry
# "slow;serving" (serving_labels.cmake).
set(_agsc_labels_dispatch_server_test "fast;overload")
set(_agsc_labels_serving_soak_test "slow;serving;overload")
foreach(_agsc_suite dispatch_server_test serving_soak_test)
  set(_agsc_labels "${_agsc_labels_${_agsc_suite}}")
  file(GLOB _agsc_ovl_includes
       "${CMAKE_CURRENT_LIST_DIR}/${_agsc_suite}*_tests.cmake")
  foreach(_agsc_file IN LISTS _agsc_ovl_includes)
    file(STRINGS "${_agsc_file}" _agsc_adds REGEX "add_test")
    foreach(_agsc_line IN LISTS _agsc_adds)
      string(REGEX MATCH "add_test\\( *\\[=\\[([^]]+)\\]=\\]" _agsc_m "${_agsc_line}")
      # Copy the capture out before the next MATCHES clobbers CMAKE_MATCH_1.
      set(_agsc_name "${CMAKE_MATCH_1}")
      if(_agsc_name MATCHES "Overload|Fairness|Admission|Quarantine|Flood|Shed|Brownout|Health|PublishRejectAccounting|CancelClient")
        set_tests_properties("${_agsc_name}" PROPERTIES LABELS "${_agsc_labels}")
      endif()
    endforeach()
  endforeach()
endforeach()
