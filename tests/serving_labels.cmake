# Included by ctest via TEST_INCLUDE_FILES *after* the gtest-generated
# registration scripts (tests/CMakeLists.txt appends it last), so the soak
# tests already exist here. gtest_discover_tests cannot forward a
# list-valued LABELS property ("slow;serving" flattens into two arguments
# on the way through its argument serialization), so the serving label is
# applied in this post-pass instead: parse the generated include for the
# discovered test names and re-set their labels with proper quoting.
file(GLOB _agsc_soak_includes "${CMAKE_CURRENT_LIST_DIR}/serving_soak_test*_tests.cmake")
foreach(_agsc_file IN LISTS _agsc_soak_includes)
  file(STRINGS "${_agsc_file}" _agsc_adds REGEX "add_test")
  foreach(_agsc_line IN LISTS _agsc_adds)
    string(REGEX MATCH "add_test\\( *\\[=\\[([^]]+)\\]=\\]" _agsc_m "${_agsc_line}")
    if(CMAKE_MATCH_1)
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES LABELS "slow;serving")
    endif()
  endforeach()
endforeach()
