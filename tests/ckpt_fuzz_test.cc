// Corruption fuzz sweep over the v2 ("AGSCNN02") checkpoint format: a real
// trainer checkpoint is truncated and bit-flipped at deterministic
// pseudo-random offsets, and every corrupted variant must be rejected as a
// clean, recoverable failure — DecodeCheckpoint/LoadCheckpointFile never
// crash, and a trainer asked to load the corrupted file is left untouched
// (same iteration, bit-identical parameters).

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace agsc {
namespace {

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 10));
  return *dataset;
}

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 6;
  config.num_pois = 10;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

core::TrainConfig SmallTrainConfig() {
  core::TrainConfig train;
  train.iterations = 1;
  train.episodes_per_iteration = 1;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 11;
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  // pid-scoped: gtest's TempDir is shared across concurrently running test
  // processes (ctest -j), and fixed names collide.
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One trained-for-an-iteration trainer plus its encoded checkpoint bytes,
/// shared by every fuzz case (training once is the expensive part).
struct FuzzFixture {
  env::ScEnv env{SmallEnvConfig(), SmallDataset(), 11};
  core::HiMadrlTrainer trainer{env, SmallTrainConfig()};
  std::string bytes;

  FuzzFixture() {
    trainer.Train();
    const std::string path = TempPath("fuzz_source.agsc");
    EXPECT_TRUE(trainer.SaveCheckpoint(path));
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    EXPECT_GT(bytes.size(), 64u);
  }
};

FuzzFixture& Fixture() {
  static FuzzFixture* fixture = new FuzzFixture();
  return *fixture;
}

/// Snapshot of the actor parameters through the public checkpoint surface.
std::vector<nn::Tensor> ParamSnapshot(core::HiMadrlTrainer& trainer) {
  const std::string path = TempPath("fuzz_probe.agsc");
  EXPECT_TRUE(trainer.SaveCheckpoint(path));
  nn::Checkpoint ckpt;
  EXPECT_EQ(nn::LoadCheckpointFile(path, ckpt), nn::CheckpointError::kOk);
  std::remove(path.c_str());
  const nn::CheckpointSection* params = ckpt.Find("params");
  EXPECT_NE(params, nullptr);
  if (params == nullptr) return {};
  return params->tensors;
}

void ExpectTensorsBitEqual(const std::vector<nn::Tensor>& a,
                           const std::vector<nn::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].SameAs(b[i])) << "tensor " << i;
  }
}

/// The core fuzz assertion: `corrupted` must be rejected without crashing,
/// and loading it into a live trainer must leave that trainer untouched.
void ExpectCleanRejection(const std::string& corrupted,
                          const std::string& label) {
  FuzzFixture& fx = Fixture();
  // Decode layer: a clean error, never kOk (every payload byte is covered
  // by the CRC, the CRC itself by the comparison, and the header by the
  // magic/length checks).
  nn::Checkpoint out;
  EXPECT_NE(nn::DecodeCheckpoint(corrupted, out), nn::CheckpointError::kOk)
      << label;

  // File layer + trainer layer: LoadCheckpoint returns false and rolls
  // nothing into the live trainer.
  const std::string path = TempPath("fuzz_case.agsc");
  WriteFileBytes(path, corrupted);
  const int iteration_before = fx.trainer.iteration();
  const std::vector<nn::Tensor> params_before = ParamSnapshot(fx.trainer);
  EXPECT_FALSE(fx.trainer.LoadCheckpoint(path)) << label;
  EXPECT_EQ(fx.trainer.iteration(), iteration_before) << label;
  ExpectTensorsBitEqual(params_before, ParamSnapshot(fx.trainer));
  std::remove(path.c_str());
}

TEST(CheckpointFuzzTest, TruncationSweep) {
  const std::string& bytes = Fixture().bytes;
  // Deterministic sweep: boundary lengths plus pseudo-random interior ones.
  std::vector<size_t> lengths = {0, 1, 7, 8, bytes.size() / 2,
                                 bytes.size() - 1};
  util::Rng rng(0xF022CAFEULL);
  for (int i = 0; i < 24; ++i) {
    lengths.push_back(
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(bytes.size()))));
  }
  for (size_t len : lengths) {
    if (len >= bytes.size()) continue;  // Full length is not a corruption.
    ExpectCleanRejection(bytes.substr(0, len),
                         "truncate to " + std::to_string(len) + " bytes");
  }
}

TEST(CheckpointFuzzTest, BitFlipSweep) {
  const std::string& bytes = Fixture().bytes;
  // Flip a single bit at boundary offsets (magic, header, trailer) and at
  // pseudo-random interior offsets; every variant must be detected.
  std::vector<size_t> offsets = {0, 1, 7, 8, bytes.size() / 2,
                                 bytes.size() - 4, bytes.size() - 1};
  util::Rng rng(0xB17F11BULL);
  for (int i = 0; i < 32; ++i) {
    offsets.push_back(
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(bytes.size()))));
  }
  for (size_t offset : offsets) {
    std::string corrupted = bytes;
    const int bit = static_cast<int>(rng.UniformInt(8));
    corrupted[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupted[offset]) ^ (1u << bit));
    ExpectCleanRejection(corrupted, "flip bit " + std::to_string(bit) +
                                        " at offset " + std::to_string(offset));
  }
}

TEST(CheckpointFuzzTest, GarbageAndEmptyFiles) {
  ExpectCleanRejection("", "empty file");
  ExpectCleanRejection("AGSCNN02", "bare magic, no payload");
  ExpectCleanRejection(std::string(4096, '\xA5'), "4 KiB of garbage");
  util::Rng rng(0x6A2BA6EULL);
  std::string random_bytes(Fixture().bytes.size(), '\0');
  for (char& c : random_bytes) {
    c = static_cast<char>(rng.UniformInt(256));
  }
  ExpectCleanRejection(random_bytes, "random bytes, checkpoint-sized");
}

// ---------------------------------------------------------------------------
// Multi-worker checkpoints: the "vrng" worker-stream section and the
// supervisor word in "counters" sit at the file tail; sweep that region
// specifically, and pin the semantic (uncorrupted) rejection paths.
// ---------------------------------------------------------------------------

/// Like FuzzFixture but trained with two rollout workers, so the encoded
/// bytes contain a vrng section (worker RNG streams) and the counters
/// section carries the supervisor word.
struct VrngFuzzFixture {
  env::ScEnv env{SmallEnvConfig(), SmallDataset(), 11};
  core::HiMadrlTrainer trainer{env, [] {
                                 core::TrainConfig train = SmallTrainConfig();
                                 train.num_workers = 2;
                                 return train;
                               }()};
  std::string bytes;

  VrngFuzzFixture() {
    trainer.Train();
    const std::string path = TempPath("fuzz_vrng_source.agsc");
    EXPECT_TRUE(trainer.SaveCheckpoint(path));
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    EXPECT_GT(bytes.size(), 64u);
  }
};

VrngFuzzFixture& VrngFixture() {
  static VrngFuzzFixture* fixture = new VrngFuzzFixture();
  return *fixture;
}

/// Clean-rejection assertion against the TWO-worker trainer, so the
/// trainer-layer check exercises the vrng restore path rather than
/// stopping at the worker-count gate.
void ExpectCleanRejectionWithWorkers(const std::string& corrupted,
                                     const std::string& label) {
  VrngFuzzFixture& fx = VrngFixture();
  nn::Checkpoint out;
  EXPECT_NE(nn::DecodeCheckpoint(corrupted, out), nn::CheckpointError::kOk)
      << label;
  const std::string path = TempPath("fuzz_vrng_case.agsc");
  WriteFileBytes(path, corrupted);
  const int iteration_before = fx.trainer.iteration();
  EXPECT_FALSE(fx.trainer.LoadCheckpoint(path)) << label;
  EXPECT_EQ(fx.trainer.iteration(), iteration_before) << label;
  std::remove(path.c_str());
}

TEST(CheckpointFuzzTest, VrngAndSupervisorWordArePresentWithWorkers) {
  nn::Checkpoint ckpt;
  ASSERT_EQ(nn::DecodeCheckpoint(VrngFixture().bytes, ckpt),
            nn::CheckpointError::kOk);
  // vrng layout: word 0 = worker count, then {sampling, env} states for
  // workers 1..W-1, util::Rng::kStateWords words each.
  const nn::CheckpointSection* vrng = ckpt.Find("vrng");
  ASSERT_NE(vrng, nullptr);
  ASSERT_EQ(vrng->words.size(), 1u + 2u * util::Rng::kStateWords);
  EXPECT_EQ(vrng->words[0], 2u);
  // counters = 5 base words + the supervisor word.
  const nn::CheckpointSection* counters = ckpt.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->words.size(), 6u);
}

TEST(CheckpointFuzzTest, TailRegionSweepCoversWorkerStreams) {
  const std::string& bytes = VrngFixture().bytes;
  // The vrng and counters sections are encoded last; sweep truncations and
  // bit flips concentrated in the final stretch of the file so the worker
  // streams and supervisor word themselves take the damage.
  const size_t tail_start = bytes.size() > 256 ? bytes.size() - 256 : 0;
  util::Rng rng(0x7A11CAFEULL);
  for (int i = 0; i < 12; ++i) {
    const size_t len =
        tail_start + static_cast<size_t>(
                         rng.UniformInt(bytes.size() - tail_start));
    ExpectCleanRejectionWithWorkers(
        bytes.substr(0, len),
        "tail truncate to " + std::to_string(len) + " bytes");
  }
  for (int i = 0; i < 16; ++i) {
    const size_t offset =
        tail_start + static_cast<size_t>(
                         rng.UniformInt(bytes.size() - tail_start));
    const int bit = static_cast<int>(rng.UniformInt(8));
    std::string corrupted = bytes;
    corrupted[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupted[offset]) ^ (1u << bit));
    ExpectCleanRejectionWithWorkers(
        corrupted, "tail flip bit " + std::to_string(bit) + " at offset " +
                       std::to_string(offset));
  }
}

TEST(CheckpointFuzzTest, WorkerCountMismatchIsSemanticRejection) {
  // The pristine two-worker file decodes fine but must be refused by the
  // single-worker trainer (and leave it untouched): a worker-count
  // mismatch is a semantic error, not a corruption.
  FuzzFixture& fx = Fixture();
  nn::Checkpoint out;
  EXPECT_EQ(nn::DecodeCheckpoint(VrngFixture().bytes, out),
            nn::CheckpointError::kOk);
  const std::string path = TempPath("fuzz_vrng_mismatch.agsc");
  WriteFileBytes(path, VrngFixture().bytes);
  const int iteration_before = fx.trainer.iteration();
  const std::vector<nn::Tensor> params_before = ParamSnapshot(fx.trainer);
  EXPECT_FALSE(fx.trainer.LoadCheckpoint(path));
  EXPECT_EQ(fx.trainer.iteration(), iteration_before);
  ExpectTensorsBitEqual(params_before, ParamSnapshot(fx.trainer));
  std::remove(path.c_str());
}

TEST(CheckpointFuzzTest, UncorruptedWorkerBaselineStillLoads) {
  VrngFuzzFixture& fx = VrngFixture();
  const std::string path = TempPath("fuzz_vrng_baseline.agsc");
  WriteFileBytes(path, fx.bytes);
  EXPECT_TRUE(fx.trainer.LoadCheckpoint(path));
  std::remove(path.c_str());
}

TEST(CheckpointFuzzTest, UncorruptedBaselineStillLoads) {
  // Sanity anchor for the sweep: the same bytes, unmodified, round-trip.
  FuzzFixture& fx = Fixture();
  nn::Checkpoint out;
  EXPECT_EQ(nn::DecodeCheckpoint(fx.bytes, out), nn::CheckpointError::kOk);
  const std::string path = TempPath("fuzz_baseline.agsc");
  WriteFileBytes(path, fx.bytes);
  EXPECT_TRUE(fx.trainer.LoadCheckpoint(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace agsc
