#include <unistd.h>

#include <cmath>
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/env_flags.h"
#include "util/ipc.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace agsc::util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{5}));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{3});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(uint64_t{0}), std::invalid_argument);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Gaussian());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.02);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.Mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RngTest, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.Categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(37);
  Rng child = a.Fork();
  // Child does not replay the parent stream.
  EXPECT_NE(child.NextU64(), a.NextU64());
}

TEST(StatsTest, WelfordMatchesDirect) {
  RunningStats s;
  std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  s.AddAll(xs);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.Mean(), 6.2);
  double var = 0.0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  var /= 4.0;
  EXPECT_NEAR(s.Variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 16.0);
  EXPECT_NEAR(s.Sum(), 31.0, 1e-12);
}

TEST(StatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.Min()));
}

TEST(StatsTest, MergeEqualsCombined) {
  RunningStats a, b, all;
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_EQ(a.Min(), all.Min());
  EXPECT_EQ(a.Max(), all.Max());
}

TEST(StatsTest, MergePropertyRandomPartitions) {
  // Property: for ANY partition of a sample into shards, merging the
  // per-shard accumulators (in any association order) must agree with
  // sequential accumulation of the whole sample. This is the contract the
  // parallel rollout workers rely on when they fold per-worker statistics.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{400}));
    const int shards = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    std::vector<double> xs(static_cast<size_t>(n));
    for (auto& x : xs) x = rng.Gaussian(rng.Uniform(-5.0, 5.0), 3.0);

    RunningStats sequential;
    sequential.AddAll(xs);

    // Random shard assignment (some shards may stay empty).
    std::vector<RunningStats> parts(static_cast<size_t>(shards));
    for (double x : xs) parts[rng.UniformInt(static_cast<uint64_t>(shards))]
        .Add(x);

    // Linear (left fold) merge.
    RunningStats linear;
    for (const auto& p : parts) linear.Merge(p);
    // Pairwise (tree) merge, a different association order.
    std::vector<RunningStats> tree = parts;
    while (tree.size() > 1) {
      std::vector<RunningStats> next;
      for (size_t i = 0; i < tree.size(); i += 2) {
        RunningStats m = tree[i];
        if (i + 1 < tree.size()) m.Merge(tree[i + 1]);
        next.push_back(m);
      }
      tree.swap(next);
    }

    for (const RunningStats* merged : {&linear, &tree[0]}) {
      EXPECT_EQ(merged->count(), sequential.count());
      EXPECT_DOUBLE_EQ(merged->Min(), sequential.Min());
      EXPECT_DOUBLE_EQ(merged->Max(), sequential.Max());
      EXPECT_NEAR(merged->Mean(), sequential.Mean(), 1e-10);
      EXPECT_NEAR(merged->Variance(), sequential.Variance(), 1e-8);
      EXPECT_NEAR(merged->Sum(), sequential.Sum(), 1e-8);
    }
  }
}

TEST(StatsTest, MergeWithEmptyIsIdentityBothWays) {
  RunningStats a;
  a.AddAll({1.0, 2.0, 3.0});
  RunningStats empty;
  RunningStats left = a;
  left.Merge(empty);
  EXPECT_EQ(left.count(), 3u);
  EXPECT_DOUBLE_EQ(left.Mean(), a.Mean());
  EXPECT_DOUBLE_EQ(left.Variance(), a.Variance());
  EXPECT_DOUBLE_EQ(left.Min(), 1.0);
  EXPECT_DOUBLE_EQ(left.Max(), 3.0);
  RunningStats right;
  right.Merge(a);
  EXPECT_EQ(right.count(), 3u);
  EXPECT_DOUBLE_EQ(right.Mean(), a.Mean());
  EXPECT_DOUBLE_EQ(right.Variance(), a.Variance());
  EXPECT_DOUBLE_EQ(right.Min(), 1.0);
  EXPECT_DOUBLE_EQ(right.Max(), 3.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "2.5"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 2.5   |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, DoubleRowFormatting) {
  Table t({"m", "a", "b"});
  t.AddRow("r", {1.23456, 2.0}, 3);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("1.235"), std::string::npos);
  EXPECT_NE(s.find("2.000"), std::string::npos);
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(7.8724, 3), "7.872");
  EXPECT_EQ(FormatDouble(-1.0, 1), "-1.0");
  EXPECT_EQ(FormatDouble(0.0, 0), "0");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/agsc_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.WriteRow({"1", "x,y"});
    csv.WriteRow("row", {0.5}, 2);
    csv.Flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::getline(in, line);
  EXPECT_EQ(line, "row,0.50");
  std::remove(path.c_str());
}

TEST(EnvFlagsTest, FallbacksWhenUnset) {
  EXPECT_EQ(GetEnvOr("AGSC_DOES_NOT_EXIST", std::string("dflt")), "dflt");
  EXPECT_EQ(GetEnvOr("AGSC_DOES_NOT_EXIST", 42), 42);
  EXPECT_DOUBLE_EQ(GetEnvOr("AGSC_DOES_NOT_EXIST", 2.5), 2.5);
}

TEST(EnvFlagsTest, ParsesSetValues) {
  setenv("AGSC_TEST_FLAG_INT", "17", 1);
  setenv("AGSC_TEST_FLAG_BAD", "zzz", 1);
  EXPECT_EQ(GetEnvOr("AGSC_TEST_FLAG_INT", 0), 17);
  EXPECT_EQ(GetEnvOr("AGSC_TEST_FLAG_BAD", 5), 5);
  unsetenv("AGSC_TEST_FLAG_INT");
  unsetenv("AGSC_TEST_FLAG_BAD");
}

TEST(EnvFlagsTest, BenchScaleDefaultsToSmoke) {
  unsetenv("AGSC_BENCH_SCALE");
  EXPECT_EQ(GetBenchScale(), BenchScale::kSmoke);
  setenv("AGSC_BENCH_SCALE", "paper", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kPaper);
  unsetenv("AGSC_BENCH_SCALE");
}

// ---------------------------------------------------------------------------
// FrameReader poll-deadline edge cases. The happy paths and the corruption
// matrix are exercised end-to-end by the proc-sampler and chaos suites;
// these pin down the boundary behaviors of the deadline logic itself.
// ---------------------------------------------------------------------------

/// A pipe pair closed on destruction (either end may be closed early).
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    CloseRead();
    CloseWrite();
  }
  void CloseRead() {
    if (fds[0] >= 0) ::close(fds[0]);
    fds[0] = -1;
  }
  void CloseWrite() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(FrameReaderEdgeTest, BufferedFrameBeatsATightDeadline) {
  Pipe p;
  FrameWriter writer(p.fds[1]);
  ASSERT_EQ(writer.Write(/*type=*/7, /*seq=*/0, "hello"), util::IpcStatus::kOk);
  // The frame is already sitting in the pipe: a 1 ms deadline must not
  // matter — readiness is checked before the deadline can expire.
  FrameReader reader(p.fds[0]);
  Frame frame;
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/1), IpcStatus::kOk);
  EXPECT_EQ(frame.type, 7u);
  EXPECT_EQ(frame.payload, "hello");
  // Nothing else buffered: now the same deadline expires as a timeout, not
  // an error or a phantom frame.
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/1), IpcStatus::kTimeout);
}

TEST(FrameReaderEdgeTest, PartialFrameReportsTimeoutNotCorrupt) {
  Pipe p;
  // Only half a header arrives before the deadline: that is a straggling
  // writer, not a damaged stream — kTimeout, never kCorrupt.
  const uint32_t magic = kFrameMagic;
  ASSERT_EQ(::write(p.fds[1], &magic, sizeof(magic)),
            static_cast<ssize_t>(sizeof(magic)));
  FrameReader reader(p.fds[0]);
  Frame frame;
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/30), IpcStatus::kTimeout);
}

TEST(FrameReaderEdgeTest, ZeroLengthPayloadRoundTrips) {
  Pipe p;
  FrameWriter writer(p.fds[1]);
  ASSERT_EQ(writer.Write(/*type=*/1, /*seq=*/0, ""), util::IpcStatus::kOk);
  ASSERT_EQ(writer.Write(/*type=*/2, /*seq=*/1, ""), util::IpcStatus::kOk);
  FrameReader reader(p.fds[0]);
  Frame frame;
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/1000), IpcStatus::kOk);
  EXPECT_EQ(frame.type, 1u);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/1000), IpcStatus::kOk);
  EXPECT_EQ(frame.seq, 1u);
  EXPECT_EQ(reader.next_seq(), 2u);
}

TEST(FrameReaderEdgeTest, MaxSizePayloadAtTheCapRoundTrips) {
  Pipe p;
  // A payload exactly at kMaxFramePayload (64 MiB) is legal and must cross
  // the pipe intact. Far larger than the pipe buffer, so the writer streams
  // from its own thread while the reader drains.
  std::string payload(kMaxFramePayload, '\0');
  for (size_t i = 0; i < payload.size(); i += 4096) {
    payload[i] = static_cast<char>(i * 2654435761u >> 24);
  }
  std::thread writer_thread([&] {
    FrameWriter writer(p.fds[1]);
    EXPECT_EQ(writer.Write(/*type=*/9, /*seq=*/0, payload), util::IpcStatus::kOk);
    p.CloseWrite();
  });
  FrameReader reader(p.fds[0]);
  Frame frame;
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/60000), IpcStatus::kOk);
  writer_thread.join();
  EXPECT_EQ(frame.type, 9u);
  EXPECT_EQ(frame.payload, payload);  // CRC already proved it; belt+braces.
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/1000), IpcStatus::kEof);
}

TEST(FrameReaderEdgeTest, LengthPastTheCapIsCorruptBeforeAllocating) {
  Pipe p;
  // A header declaring kMaxFramePayload + 1: rejected on the length check
  // alone — no attempt to allocate or read the impossible payload (the CRC
  // never enters into it).
  std::string header;
  const auto put_u32 = [&header](uint32_t v) {
    header.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put_u64 = [&header](uint64_t v) {
    header.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(kFrameMagic);
  put_u32(/*type=*/1);
  put_u64(/*seq=*/0);
  put_u32(kMaxFramePayload + 1);
  put_u32(/*crc=*/0);
  ASSERT_EQ(header.size(), static_cast<size_t>(kFrameHeaderBytes));
  ASSERT_EQ(::write(p.fds[1], header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  FrameReader reader(p.fds[0]);
  Frame frame;
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/1000), IpcStatus::kCorrupt);
}

}  // namespace
}  // namespace agsc::util
