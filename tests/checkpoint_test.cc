// Tests for the fault-tolerant checkpoint + recovery layer: the v2
// ("AGSCNN02") checkpoint format, atomic writes and fault injection,
// all-or-nothing v1 parameter loading, exact training resume, auto-
// checkpoint retention/fallback, the divergence guard, and the strict
// CLI-number / EnvConfig validation satellites.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/fault_inject.h"
#include "util/parse.h"
#include "util/rng.h"

namespace agsc {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 12));
  return *dataset;
}

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 8;
  config.num_pois = 12;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

core::TrainConfig SmallTrainConfig() {
  core::TrainConfig train;
  train.iterations = 4;
  train.episodes_per_iteration = 1;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  // gtest's TempDir is shared by every concurrently running test process
  // (ctest -j spawns one per test case); fixed names collide across
  // processes, so scope each path to this pid.
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

/// Clears injected faults on scope entry and exit so tests never leak
/// injector state into each other.
struct FaultInjectorGuard {
  FaultInjectorGuard() { util::FaultInjector::Instance().Reset(); }
  ~FaultInjectorGuard() { util::FaultInjector::Instance().Reset(); }
};

/// Snapshot of a trainer's actor parameters for bitwise comparison.
std::vector<nn::Tensor> ActorSnapshot(core::HiMadrlTrainer& trainer,
                                      env::ScEnv& env) {
  // Deterministic actions fully characterize the actor; instead compare the
  // raw parameter tensors gathered through a save/decode round (the
  // public surface).
  (void)env;
  const std::string path = TempPath("actor_probe.agsc");
  EXPECT_TRUE(trainer.SaveCheckpoint(path));
  nn::Checkpoint ckpt;
  EXPECT_EQ(nn::LoadCheckpointFile(path, ckpt), nn::CheckpointError::kOk);
  std::remove(path.c_str());
  const nn::CheckpointSection* params = ckpt.Find("params");
  EXPECT_NE(params, nullptr);
  if (params == nullptr) return {};  // EXPECT_NE is non-fatal; don't deref.
  return params->tensors;
}

// ---------------------------------------------------------------------------
// CRC32 and the raw v2 encode/decode layer.
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  const char* text = "123456789";
  EXPECT_EQ(nn::Crc32(text, 9), 0xCBF43926u);
  EXPECT_EQ(nn::Crc32(text, 0), 0u);
}

TEST(Crc32Test, ChunkedMatchesWhole) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = nn::Crc32(data.data(), data.size());
  const uint32_t first = nn::Crc32(data.data(), 10);
  const uint32_t chunked = nn::Crc32(data.data() + 10, data.size() - 10, first);
  EXPECT_EQ(whole, chunked);
}

nn::Checkpoint SampleCheckpoint() {
  nn::Checkpoint ckpt;
  ckpt.fingerprint = 0xDEADBEEFCAFEF00DULL;
  nn::CheckpointSection& a = ckpt.AddSection("alpha");
  a.words = {1, 2, 3};
  util::Rng rng(7);
  a.tensors.push_back(nn::Tensor::Randn(3, 4, rng));
  a.tensors.push_back(nn::Tensor::Randn(1, 5, rng));
  nn::CheckpointSection& b = ckpt.AddSection("beta");
  b.words = {0xFFFFFFFFFFFFFFFFULL};
  return ckpt;
}

TEST(CheckpointV2FormatTest, EncodeDecodeRoundTrip) {
  const nn::Checkpoint ckpt = SampleCheckpoint();
  const std::string bytes = nn::EncodeCheckpoint(ckpt);
  nn::Checkpoint decoded;
  ASSERT_EQ(nn::DecodeCheckpoint(bytes, decoded), nn::CheckpointError::kOk);
  EXPECT_EQ(decoded.fingerprint, ckpt.fingerprint);
  ASSERT_EQ(decoded.sections.size(), 2u);
  EXPECT_EQ(decoded.sections[0].name, "alpha");
  EXPECT_EQ(decoded.sections[0].words, ckpt.sections[0].words);
  ASSERT_EQ(decoded.sections[0].tensors.size(), 2u);
  EXPECT_TRUE(
      decoded.sections[0].tensors[0].SameAs(ckpt.sections[0].tensors[0]));
  EXPECT_TRUE(
      decoded.sections[0].tensors[1].SameAs(ckpt.sections[0].tensors[1]));
  EXPECT_EQ(decoded.sections[1].words, ckpt.sections[1].words);
  EXPECT_NE(ckpt.Find("beta"), nullptr);
  EXPECT_EQ(ckpt.Find("gamma"), nullptr);
}

TEST(CheckpointV2FormatTest, TruncationIsDetected) {
  const std::string bytes = nn::EncodeCheckpoint(SampleCheckpoint());
  nn::Checkpoint out;
  // Every truncation point must be rejected (checksum or magic).
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{9}}) {
    const nn::CheckpointError err =
        nn::DecodeCheckpoint(bytes.substr(0, cut), out);
    EXPECT_NE(err, nn::CheckpointError::kOk) << "cut at " << cut;
  }
}

TEST(CheckpointV2FormatTest, EveryBitFlipIsDetected) {
  const std::string bytes = nn::EncodeCheckpoint(SampleCheckpoint());
  nn::Checkpoint out;
  // Flip one byte at a sampling of offsets across the file.
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    EXPECT_NE(nn::DecodeCheckpoint(corrupt, out), nn::CheckpointError::kOk)
        << "flip at " << pos;
  }
}

TEST(CheckpointV2FormatTest, WrongMagicRejected) {
  nn::Checkpoint out;
  EXPECT_EQ(nn::DecodeCheckpoint("AGSCNN01xxxxxxxxxxxx", out),
            nn::CheckpointError::kBadMagic);
  EXPECT_EQ(nn::DecodeCheckpoint("", out), nn::CheckpointError::kBadMagic);
}

// ---------------------------------------------------------------------------
// Atomic writes + fault injection.
// ---------------------------------------------------------------------------

TEST(AtomicWriteTest, WritesAndReplaces) {
  FaultInjectorGuard guard;
  const std::string path = TempPath("atomic_write.bin");
  ASSERT_TRUE(util::AtomicWriteFile(path, "first"));
  ASSERT_TRUE(util::AtomicWriteFile(path, "second"));
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, InjectedFailureLeavesOldFileIntact) {
  FaultInjectorGuard guard;
  const std::string path = TempPath("atomic_fail.bin");
  ASSERT_TRUE(util::AtomicWriteFile(path, "precious"));

  util::FaultInjector::Config config;
  config.fail_write = 1;
  util::FaultInjector::Instance().set_config(config);
  EXPECT_FALSE(util::AtomicWriteFile(path, "clobber"));

  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "precious");
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, InjectedTruncationAndBitFlip) {
  FaultInjectorGuard guard;
  const std::string path = TempPath("atomic_mutate.bin");

  util::FaultInjector::Config config;
  config.mutate_write = 1;
  config.truncate_at = 4;
  config.flip_byte = 2;
  util::FaultInjector::Instance().set_config(config);
  ASSERT_TRUE(util::AtomicWriteFile(path, "0123456789"));

  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  ASSERT_EQ(content.size(), 4u);
  EXPECT_EQ(content[2], static_cast<char>('2' ^ 0xFF));

  // The second write is untouched (counter moved past the target).
  ASSERT_TRUE(util::AtomicWriteFile(path, "clean"));
  std::ifstream in2(path, std::ios::binary);
  std::string content2((std::istreambuf_iterator<char>(in2)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(content2, "clean");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// v1 LoadParameters: all-or-nothing (partial-mutation regression).
// ---------------------------------------------------------------------------

TEST(LoadParametersTest, MidFileShapeMismatchLeavesParamsUntouched) {
  util::Rng rng(3);
  std::vector<nn::Variable> src = {
      nn::Variable::Parameter(nn::Tensor::Randn(4, 4, rng)),
      nn::Variable::Parameter(nn::Tensor::Randn(2, 3, rng))};
  const std::string path = TempPath("v1_mismatch.bin");
  ASSERT_TRUE(nn::SaveParameters(path, src));

  // First shape matches, second does not: the load must fail WITHOUT
  // having overwritten the first tensor (the old reader mutated in place).
  std::vector<nn::Variable> dst = {
      nn::Variable::Parameter(nn::Tensor(4, 4, 7.0f)),
      nn::Variable::Parameter(nn::Tensor(3, 2, 7.0f))};
  EXPECT_FALSE(nn::LoadParameters(path, dst));
  EXPECT_TRUE(dst[0].value().SameAs(nn::Tensor(4, 4, 7.0f)));
  EXPECT_TRUE(dst[1].value().SameAs(nn::Tensor(3, 2, 7.0f)));
  std::remove(path.c_str());
}

TEST(LoadParametersTest, ShortReadLeavesParamsUntouched) {
  util::Rng rng(4);
  std::vector<nn::Variable> src = {
      nn::Variable::Parameter(nn::Tensor::Randn(4, 4, rng)),
      nn::Variable::Parameter(nn::Tensor::Randn(4, 4, rng))};
  const std::string path = TempPath("v1_short.bin");
  ASSERT_TRUE(nn::SaveParameters(path, src));
  // Cut the file mid-way through the second tensor.
  fs::resize_file(path, fs::file_size(path) - 20);

  std::vector<nn::Variable> dst = {
      nn::Variable::Parameter(nn::Tensor(4, 4, 9.0f)),
      nn::Variable::Parameter(nn::Tensor(4, 4, 9.0f))};
  EXPECT_FALSE(nn::LoadParameters(path, dst));
  EXPECT_TRUE(dst[0].value().SameAs(nn::Tensor(4, 4, 9.0f)));
  EXPECT_TRUE(dst[1].value().SameAs(nn::Tensor(4, 4, 9.0f)));
  std::remove(path.c_str());
}

TEST(LoadParametersTest, MatchingFileStillLoads) {
  util::Rng rng(5);
  std::vector<nn::Variable> src = {
      nn::Variable::Parameter(nn::Tensor::Randn(3, 3, rng))};
  const std::string path = TempPath("v1_ok.bin");
  ASSERT_TRUE(nn::SaveParameters(path, src));
  std::vector<nn::Variable> dst = {
      nn::Variable::Parameter(nn::Tensor(3, 3))};
  EXPECT_TRUE(nn::LoadParameters(path, dst));
  EXPECT_TRUE(dst[0].value().SameAs(src[0].value()));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Rng and Adam state round-trips.
// ---------------------------------------------------------------------------

TEST(RngStateTest, SaveLoadReproducesStreamIncludingGaussianCache) {
  util::Rng rng(42);
  rng.Gaussian();  // Leaves a cached Box-Muller value behind.
  const auto state = rng.SaveState();
  std::vector<double> expected;
  for (int i = 0; i < 8; ++i) expected.push_back(rng.Gaussian());
  for (int i = 0; i < 8; ++i) expected.push_back(rng.Uniform());

  util::Rng restored(1);  // Different seed; state fully overwritten.
  restored.LoadState(state);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(restored.Gaussian(), expected[i]);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(restored.Uniform(), expected[8 + i]);
  }
}

TEST(AdamStateTest, ExportImportContinuesBitExactly) {
  util::Rng rng(6);
  const nn::Tensor init = nn::Tensor::Randn(3, 3, rng);
  const nn::Tensor grad = nn::Tensor::Randn(3, 3, rng);

  nn::Variable a = nn::Variable::Parameter(init);
  nn::Adam opt_a({a}, 0.01f);
  a.grad() = grad;
  opt_a.Step();
  nn::Adam::State state = opt_a.ExportState();
  a.grad() = grad;
  opt_a.Step();

  // A fresh optimizer resumed from the exported state takes the exact same
  // second step (same moments + bias-correction step count).
  nn::Variable b = nn::Variable::Parameter(init);
  nn::Adam opt_b({b}, 0.5f);  // Different lr: must be overwritten by import.
  ASSERT_TRUE(opt_b.ImportState(state));
  EXPECT_EQ(opt_b.step_count(), 1);
  EXPECT_EQ(opt_b.lr(), 0.01f);
  // Reproduce the post-step-1 parameter value, then step with same grad.
  nn::Variable a2 = nn::Variable::Parameter(init);
  nn::Adam opt_a2({a2}, 0.01f);
  a2.grad() = grad;
  opt_a2.Step();
  b.mutable_value() = a2.value();
  b.grad() = grad;
  opt_b.Step();
  EXPECT_TRUE(b.value().SameAs(a.value()));
}

TEST(AdamStateTest, ImportRejectsShapeMismatch) {
  nn::Variable p = nn::Variable::Parameter(nn::Tensor(2, 2));
  nn::Adam opt({p}, 0.01f);
  nn::Adam::State bad;
  bad.step_count = 1;
  bad.lr = 0.01f;
  bad.m = {nn::Tensor(3, 3)};
  bad.v = {nn::Tensor(3, 3)};
  EXPECT_FALSE(opt.ImportState(bad));
  EXPECT_EQ(opt.step_count(), 0);
}

// ---------------------------------------------------------------------------
// Trainer checkpoint v2: full state round-trip and exact resume.
// ---------------------------------------------------------------------------

TEST(TrainerCheckpointV2Test, ResumeIsBitExactWithUninterruptedRun) {
  FaultInjectorGuard guard;
  const env::EnvConfig env_config = SmallEnvConfig();
  const core::TrainConfig train = SmallTrainConfig();

  // Uninterrupted: 4 iterations straight.
  env::ScEnv env_a(env_config, SmallDataset(), 17);
  core::HiMadrlTrainer a(env_a, train);
  const std::vector<core::IterationStats> stats_a = a.Train(4);

  // Interrupted: 2 iterations, checkpoint, fresh trainer, 2 more.
  const std::string path = TempPath("resume.agsc");
  env::ScEnv env_b(env_config, SmallDataset(), 17);
  core::HiMadrlTrainer b(env_b, train);
  b.Train(2);
  ASSERT_TRUE(b.SaveCheckpoint(path));

  env::ScEnv env_c(env_config, SmallDataset(), 999);  // seed overwritten
  core::HiMadrlTrainer c(env_c, train);
  ASSERT_TRUE(c.LoadCheckpoint(path));
  EXPECT_EQ(c.iteration(), 2);
  EXPECT_EQ(c.total_env_steps(), b.total_env_steps());
  const std::vector<core::IterationStats> stats_c = c.Train(2);

  // The resumed run's diagnostics match iterations 3-4 of the straight run
  // exactly (same rollouts, same gradients, same Adam updates).
  ASSERT_EQ(stats_c.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(stats_c[i].iteration, stats_a[2 + i].iteration);
    EXPECT_EQ(stats_c[i].mean_reward_ext, stats_a[2 + i].mean_reward_ext);
    EXPECT_EQ(stats_c[i].actor_grad_norm, stats_a[2 + i].actor_grad_norm);
    EXPECT_EQ(stats_c[i].value_loss, stats_a[2 + i].value_loss);
    EXPECT_EQ(stats_c[i].total_env_steps, stats_a[2 + i].total_env_steps);
  }
  for (size_t k = 0; k < a.lcfs().size(); ++k) {
    EXPECT_EQ(a.lcfs()[k].phi_deg, c.lcfs()[k].phi_deg);
    EXPECT_EQ(a.lcfs()[k].chi_deg, c.lcfs()[k].chi_deg);
  }

  // Every network parameter is bit-identical.
  const std::vector<nn::Tensor> params_a = ActorSnapshot(a, env_a);
  const std::vector<nn::Tensor> params_c = ActorSnapshot(c, env_c);
  ASSERT_EQ(params_a.size(), params_c.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_TRUE(params_a[i].SameAs(params_c[i])) << "tensor " << i;
  }
  std::remove(path.c_str());
}

TEST(TrainerCheckpointV2Test, FingerprintMismatchRejectedLoudly) {
  FaultInjectorGuard guard;
  const env::EnvConfig env_config = SmallEnvConfig();
  core::TrainConfig train = SmallTrainConfig();
  env::ScEnv env_a(env_config, SmallDataset(), 1);
  core::HiMadrlTrainer a(env_a, train);
  const std::string path = TempPath("fingerprint.agsc");
  ASSERT_TRUE(a.SaveCheckpoint(path));

  // Different hidden width -> different architecture -> rejected.
  core::TrainConfig other = train;
  other.net.hidden = {24};
  env::ScEnv env_b(env_config, SmallDataset(), 1);
  core::HiMadrlTrainer b(env_b, other);
  EXPECT_NE(a.ArchitectureFingerprint(), b.ArchitectureFingerprint());
  EXPECT_FALSE(b.LoadCheckpoint(path));

  // Different plug-in set -> rejected too.
  core::TrainConfig no_copo = train;
  no_copo.use_copo = false;
  env::ScEnv env_c(env_config, SmallDataset(), 1);
  core::HiMadrlTrainer c(env_c, no_copo);
  EXPECT_FALSE(c.LoadCheckpoint(path));
  std::remove(path.c_str());
}

TEST(TrainerCheckpointV2Test, CorruptedFileRejectedAndTrainerUntouched) {
  FaultInjectorGuard guard;
  const env::EnvConfig env_config = SmallEnvConfig();
  const core::TrainConfig train = SmallTrainConfig();
  env::ScEnv env_a(env_config, SmallDataset(), 21);
  core::HiMadrlTrainer a(env_a, train);
  a.Train(1);

  // Save a corrupted checkpoint via the fault-injection hook: the payload
  // has one byte flipped on its way to disk.
  const std::string path = TempPath("corrupt.agsc");
  util::FaultInjector::Config config;
  config.mutate_write = 1;
  config.flip_byte = 200;
  util::FaultInjector::Instance().set_config(config);
  ASSERT_TRUE(a.SaveCheckpoint(path));
  util::FaultInjector::Instance().Reset();

  env::ScEnv env_b(env_config, SmallDataset(), 21);
  core::HiMadrlTrainer b(env_b, train);
  const std::vector<nn::Tensor> before = ActorSnapshot(b, env_b);
  EXPECT_FALSE(b.LoadCheckpoint(path));
  const std::vector<nn::Tensor> after = ActorSnapshot(b, env_b);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(before[i].SameAs(after[i])) << "tensor " << i;
  }
  std::remove(path.c_str());
}

TEST(TrainerCheckpointV2Test, LegacyV1FilesStillLoad) {
  FaultInjectorGuard guard;
  // Emulate an old v1 checkpoint (params + LCF tensor) and load it through
  // the new LoadCheckpoint dispatch.
  const env::EnvConfig env_config = SmallEnvConfig();
  const core::TrainConfig train = SmallTrainConfig();
  env::ScEnv env_a(env_config, SmallDataset(), 31);
  core::HiMadrlTrainer a(env_a, train);
  a.Train(1);

  // Produce a v1 file from a's current state via the public v2 data: save
  // v2, decode, re-encode as v1 (params section + LCF tensor appended).
  const std::string v2_path = TempPath("legacy_src.agsc");
  ASSERT_TRUE(a.SaveCheckpoint(v2_path));
  nn::Checkpoint ckpt;
  ASSERT_EQ(nn::LoadCheckpointFile(v2_path, ckpt), nn::CheckpointError::kOk);
  const nn::CheckpointSection* params = ckpt.Find("params");
  ASSERT_NE(params, nullptr);
  std::vector<nn::Variable> v1_vars;
  for (const nn::Tensor& t : params->tensors) {
    v1_vars.push_back(nn::Variable::Parameter(t));
  }
  nn::Tensor lcf_tensor(static_cast<int>(a.lcfs().size()), 2);
  for (size_t k = 0; k < a.lcfs().size(); ++k) {
    lcf_tensor(static_cast<int>(k), 0) =
        static_cast<float>(a.lcfs()[k].phi_deg);
    lcf_tensor(static_cast<int>(k), 1) =
        static_cast<float>(a.lcfs()[k].chi_deg);
  }
  v1_vars.push_back(nn::Variable::Parameter(lcf_tensor));
  const std::string v1_path = TempPath("legacy.bin");
  ASSERT_TRUE(nn::SaveParameters(v1_path, v1_vars));

  env::ScEnv env_b(env_config, SmallDataset(), 32);
  core::HiMadrlTrainer b(env_b, train);
  ASSERT_TRUE(b.LoadCheckpoint(v1_path));
  // Policies match exactly after the v1 load.
  const env::StepResult r = env_a.Reset();
  util::Rng act_rng(1);
  for (int k = 0; k < env_a.num_agents(); ++k) {
    const env::UvAction ua = a.Act(env_a, k, r.observations[k], act_rng, true);
    const env::UvAction ub = b.Act(env_a, k, r.observations[k], act_rng, true);
    EXPECT_EQ(ua.raw_direction, ub.raw_direction);
    EXPECT_EQ(ua.raw_speed, ub.raw_speed);
  }
  std::remove(v2_path.c_str());
  std::remove(v1_path.c_str());
}

// ---------------------------------------------------------------------------
// Auto-checkpointing: retention, latest pointer, corruption fallback.
// ---------------------------------------------------------------------------

TEST(AutoCheckpointTest, RetentionAndLatestPointer) {
  FaultInjectorGuard guard;
  const std::string dir = TempPath("auto_ckpt_retention");
  fs::remove_all(dir);
  const env::EnvConfig env_config = SmallEnvConfig();
  core::TrainConfig train = SmallTrainConfig();
  train.checkpoint_dir = dir;
  train.checkpoint_every = 1;
  train.checkpoint_keep = 2;
  env::ScEnv env(env_config, SmallDataset(), 51);
  core::HiMadrlTrainer trainer(env, train);
  trainer.Train(3);

  // Only the newest two checkpoints are retained.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "ckpt_000001.agsc"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "ckpt_000002.agsc"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "ckpt_000003.agsc"));
  std::ifstream latest(fs::path(dir) / "latest");
  std::string latest_name;
  ASSERT_TRUE(static_cast<bool>(std::getline(latest, latest_name)));
  EXPECT_EQ(latest_name, "ckpt_000003.agsc");
  fs::remove_all(dir);
}

TEST(AutoCheckpointTest, FallsBackPastCorruptedNewestCheckpoint) {
  FaultInjectorGuard guard;
  const std::string dir = TempPath("auto_ckpt_fallback");
  fs::remove_all(dir);
  const env::EnvConfig env_config = SmallEnvConfig();
  core::TrainConfig train = SmallTrainConfig();
  train.checkpoint_dir = dir;
  train.checkpoint_every = 1;
  train.checkpoint_keep = 3;
  env::ScEnv env(env_config, SmallDataset(), 52);
  core::HiMadrlTrainer trainer(env, train);
  trainer.Train(3);

  // Corrupt the newest checkpoint on disk (simulating a torn/bit-rotted
  // file that somehow bypassed the atomic write, e.g. disk corruption).
  const std::string newest = (fs::path(dir) / "ckpt_000003.agsc").string();
  {
    std::fstream f(newest,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(f));
    f.seekp(static_cast<std::streamoff>(fs::file_size(newest) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0xFF);
    f.write(&byte, 1);
  }

  env::ScEnv env_b(env_config, SmallDataset(), 52);
  core::HiMadrlTrainer resumed(env_b, train);
  ASSERT_TRUE(resumed.LoadLatestCheckpoint(dir));
  // The corrupted iteration-3 file was rejected; iteration 2 loaded.
  EXPECT_EQ(resumed.iteration(), 2);
  fs::remove_all(dir);
}

TEST(AutoCheckpointTest, LoadLatestFailsOnEmptyDir) {
  FaultInjectorGuard guard;
  const std::string dir = TempPath("auto_ckpt_empty");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const env::EnvConfig env_config = SmallEnvConfig();
  env::ScEnv env(env_config, SmallDataset(), 53);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig());
  EXPECT_FALSE(trainer.LoadLatestCheckpoint(dir));
  EXPECT_FALSE(trainer.LoadLatestCheckpoint(dir + "_nonexistent"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Divergence guard.
// ---------------------------------------------------------------------------

TEST(DivergenceGuardTest, InjectedNanLossIsCaughtAndRolledBack) {
  FaultInjectorGuard guard;
  const env::EnvConfig env_config = SmallEnvConfig();
  core::TrainConfig train = SmallTrainConfig();
  train.anomaly_backoff_after = 100;  // No backoff in this test.
  env::ScEnv env(env_config, SmallDataset(), 61);
  core::HiMadrlTrainer trainer(env, train);

  util::FaultInjector::Config config;
  config.nan_loss = 1;  // Poison the first guarded actor loss.
  util::FaultInjector::Instance().set_config(config);
  const core::IterationStats stats = trainer.TrainIteration();
  util::FaultInjector::Instance().Reset();

  EXPECT_GE(stats.anomalies, 1);
  EXPECT_FALSE(stats.lr_backoff);
  // No NaN propagated into the diagnostics or the policy.
  EXPECT_TRUE(std::isfinite(stats.mean_reward_ext));
  EXPECT_TRUE(std::isfinite(stats.actor_grad_norm));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
  const env::StepResult r = env.Reset();
  util::Rng act_rng(2);
  for (int k = 0; k < env.num_agents(); ++k) {
    const env::UvAction action =
        trainer.Act(env, k, r.observations[k], act_rng, true);
    EXPECT_TRUE(std::isfinite(action.raw_direction));
    EXPECT_TRUE(std::isfinite(action.raw_speed));
  }
}

TEST(DivergenceGuardTest, RepeatedAnomaliesTriggerLrBackoff) {
  FaultInjectorGuard guard;
  const env::EnvConfig env_config = SmallEnvConfig();
  core::TrainConfig train = SmallTrainConfig();
  train.anomaly_backoff_after = 2;
  env::ScEnv env(env_config, SmallDataset(), 62);
  core::HiMadrlTrainer trainer(env, train);
  const float lr0 = trainer.config().actor_lr;

  // Poison one loss in each of two consecutive iterations.
  util::FaultInjector::Config config;
  config.nan_loss = 1;
  util::FaultInjector::Instance().set_config(config);
  const core::IterationStats s1 = trainer.TrainIteration();
  util::FaultInjector::Instance().set_config(config);
  const core::IterationStats s2 = trainer.TrainIteration();
  util::FaultInjector::Instance().Reset();

  EXPECT_GE(s1.anomalies, 1);
  EXPECT_FALSE(s1.lr_backoff);
  EXPECT_GE(s2.anomalies, 1);
  EXPECT_TRUE(s2.lr_backoff);
  EXPECT_EQ(trainer.config().actor_lr, lr0 * train.lr_backoff_factor);

  // A clean iteration afterwards reports no anomalies and no backoff.
  const core::IterationStats s3 = trainer.TrainIteration();
  EXPECT_EQ(s3.anomalies, 0);
  EXPECT_FALSE(s3.lr_backoff);
}

TEST(DivergenceGuardTest, GuardCanBeDisabled) {
  FaultInjectorGuard guard;
  const env::EnvConfig env_config = SmallEnvConfig();
  core::TrainConfig train = SmallTrainConfig();
  train.divergence_guard = false;
  env::ScEnv env(env_config, SmallDataset(), 63);
  core::HiMadrlTrainer trainer(env, train);

  // Without the guard the poisoned-loss hook is still called but no
  // anomaly is recorded (the injected NaN only affects the guard check).
  util::FaultInjector::Config config;
  config.nan_loss = 1;
  util::FaultInjector::Instance().set_config(config);
  const core::IterationStats stats = trainer.TrainIteration();
  util::FaultInjector::Instance().Reset();
  EXPECT_EQ(stats.anomalies, 0);
}

// ---------------------------------------------------------------------------
// Satellites: strict numeric parsing + EnvConfig validation.
// ---------------------------------------------------------------------------

TEST(ParseTest, IntAcceptsValidRejectsGarbage) {
  int v = -1;
  EXPECT_TRUE(util::ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(util::ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
  v = 123;
  EXPECT_FALSE(util::ParseInt("abc", &v));
  EXPECT_FALSE(util::ParseInt("12abc", &v));
  EXPECT_FALSE(util::ParseInt("", &v));
  EXPECT_FALSE(util::ParseInt("4.5", &v));
  EXPECT_FALSE(util::ParseInt("99999999999999999999", &v));  // Overflow.
  EXPECT_EQ(v, 123);  // Untouched on failure.
}

TEST(ParseTest, IntInRange) {
  int v = 0;
  EXPECT_TRUE(util::ParseIntInRange("5", 1, 10, &v));
  EXPECT_EQ(v, 5);
  EXPECT_FALSE(util::ParseIntInRange("-3", 0, 10, &v));
  EXPECT_FALSE(util::ParseIntInRange("11", 0, 10, &v));
}

TEST(ParseTest, Uint64RejectsNegative) {
  uint64_t v = 0;
  EXPECT_TRUE(util::ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, 18446744073709551615ULL);
  EXPECT_FALSE(util::ParseUint64("-1", &v));
  EXPECT_FALSE(util::ParseUint64("1e3", &v));
}

TEST(ParseTest, DoubleAcceptsValidRejectsGarbage) {
  double v = 0.0;
  EXPECT_TRUE(util::ParseDouble("60.5", &v));
  EXPECT_DOUBLE_EQ(v, 60.5);
  EXPECT_TRUE(util::ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(util::ParseDouble("sixty", &v));
  EXPECT_FALSE(util::ParseDouble("1.5x", &v));
  EXPECT_FALSE(util::ParseDouble("", &v));
  double r = 0.0;
  EXPECT_TRUE(util::ParseDoubleInRange("0.5", 0.0, 1.0, &r));
  EXPECT_FALSE(util::ParseDoubleInRange("1.5", 0.0, 1.0, &r));
  EXPECT_FALSE(util::ParseDoubleInRange("nan", 0.0, 1.0, &r));
}

TEST(EnvConfigValidateTest, DefaultConfigIsValid) {
  EXPECT_EQ(env::EnvConfig{}.Validate(), "");
}

TEST(EnvConfigValidateTest, RejectsDegenerateConfigs) {
  env::EnvConfig c;
  c.num_timeslots = 0;
  EXPECT_NE(c.Validate(), "");
  c = env::EnvConfig{};
  c.num_pois = 0;
  EXPECT_NE(c.Validate(), "");
  c = env::EnvConfig{};
  c.num_uavs = 0;
  c.num_ugvs = 0;
  EXPECT_NE(c.Validate(), "");
  c = env::EnvConfig{};
  c.num_uavs = -3;
  EXPECT_NE(c.Validate(), "");
  c = env::EnvConfig{};
  c.num_subchannels = 0;
  EXPECT_NE(c.Validate(), "");
  c = env::EnvConfig{};
  c.uav_height = 0.0;
  EXPECT_NE(c.Validate(), "");
  c = env::EnvConfig{};
  c.bandwidth_hz = -1.0;
  EXPECT_NE(c.Validate(), "");
}

TEST(EnvConfigValidateTest, ScEnvConstructorSurfacesValidationError) {
  env::EnvConfig c = SmallEnvConfig();
  c.num_uavs = 0;
  c.num_ugvs = 0;
  EXPECT_THROW(env::ScEnv(c, SmallDataset(), 1), std::invalid_argument);
  c = SmallEnvConfig();
  c.uav_height = -5.0;
  EXPECT_THROW(env::ScEnv(c, SmallDataset(), 1), std::invalid_argument);
}

}  // namespace
}  // namespace agsc
