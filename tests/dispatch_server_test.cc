// Serving correctness suite for core/policy_snapshot + core/dispatch_server:
//  * served actions are bit-identical to the Evaluator's deterministic
//    forward (HiMadrlTrainer::Act) on the same checkpoint, batched or not;
//  * LoadCheckpointForInference accepts checkpoints from any worker count
//    (params + LCFs only), while the full resume loader keeps rejecting
//    worker-count mismatches;
//  * snapshot publication is torn-read-free under concurrent swap-and-serve
//    load: every reply matches exactly one published parameter set AND the
//    version it claims (run under -DAGSC_SANITIZE=thread in the TSan suite);
//  * corrupted/truncated/mismatched promotion attempts are rejected with the
//    previous snapshot still live and bit-exact;
//  * the deadline-aware queue fails stalled requests fast instead of
//    serving stale actions;
//  * overload control: the per-client in-flight cap bounds a flooding
//    client, weighted round-robin batch assembly keeps a lock-step client
//    from starving behind a flood (with every admitted action still
//    bit-exact), the admission estimator rejects deadline-infeasible
//    requests up front (explicit `rejected`, never a late silent expiry),
//    the bounded queue sheds lowest-priority work first when full,
//    CancelClient sheds a disconnected client's queued work, and Health()
//    reports it all;
//  * publish/publish-reject accounting is exact under concurrent load
//    (the SnapshotRegistry satellite; run under -DAGSC_SANITIZE=thread).

#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch_server.h"
#include "core/hi_madrl.h"
#include "core/policy_snapshot.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "nn/serialize.h"
#include "util/fault_inject.h"
#include "util/rng.h"

namespace agsc {
namespace {

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 10));
  return *dataset;
}

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 6;
  config.num_pois = 10;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

core::TrainConfig SmallTrainConfig(uint64_t seed) {
  core::TrainConfig train;
  train.iterations = 1;
  train.episodes_per_iteration = 1;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = seed;
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

std::vector<std::vector<float>> ProbeObservations(env::ScEnv& env) {
  env::StepResult result = env.Reset();
  return result.observations;
}

/// Deterministic Evaluator action through the public Policy interface.
std::array<float, 2> EvaluatorAction(core::HiMadrlTrainer& trainer,
                                     env::ScEnv& env, int k,
                                     const std::vector<float>& obs) {
  util::Rng rng(99);  // Unused on the deterministic path.
  const env::UvAction action =
      trainer.Act(env, k, obs, rng, /*deterministic=*/true);
  return {static_cast<float>(action.raw_direction),
          static_cast<float>(action.raw_speed)};
}

/// Overwrites every actor parameter of `trainer` with zeros, making its
/// deterministic action exactly (0, 0): tanh(0*h + 0) == 0.0f.
void ZeroActorParameters(core::HiMadrlTrainer& trainer, int num_agents) {
  for (int k = 0; k < num_agents; ++k) {
    std::vector<nn::Variable> params = trainer.actor(k).Parameters();
    std::vector<nn::Tensor> zeros;
    zeros.reserve(params.size());
    for (const nn::Variable& p : params) {
      zeros.emplace_back(p.value().rows(), p.value().cols());
    }
    nn::RestoreParameters(zeros, params);
  }
}

TEST(PolicySnapshotTest, BitExactVsEvaluatorOnSameCheckpoint) {
  env::ScEnv source_env(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer source(source_env, SmallTrainConfig(11));
  const std::string path = TempPath("snap_bitexact.agsc");
  ASSERT_TRUE(source.SaveCheckpoint(path));

  // Staging trainer with different init (seed) — the load must make it
  // byte-identical to the source.
  env::ScEnv serve_env(SmallEnvConfig(), SmallDataset(), 12);
  core::HiMadrlTrainer staging(serve_env, SmallTrainConfig(12));
  std::string error;
  std::shared_ptr<core::PolicySnapshot> snapshot =
      core::LoadPolicySnapshot(staging, path, &error);
  ASSERT_NE(snapshot, nullptr) << error;
  std::remove(path.c_str());

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 13);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);
  ASSERT_EQ(static_cast<int>(observations.size()), probe_env.num_agents());
  for (int k = 0; k < probe_env.num_agents(); ++k) {
    const std::array<float, 2> want =
        EvaluatorAction(source, probe_env, k, observations[k]);
    const std::array<float, 2> got = snapshot->Act(k, observations[k]);
    EXPECT_EQ(got[0], want[0]) << "agent " << k;  // Bit-exact, not Near.
    EXPECT_EQ(got[1], want[1]) << "agent " << k;
    // The staging trainer itself must also now act identically.
    const std::array<float, 2> staged =
        EvaluatorAction(staging, probe_env, k, observations[k]);
    EXPECT_EQ(staged[0], want[0]) << "agent " << k;
    EXPECT_EQ(staged[1], want[1]) << "agent " << k;
  }
}

TEST(PolicySnapshotTest, BatchedRowsBitEqualSingleRows) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 21);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(21));
  std::shared_ptr<core::PolicySnapshot> snapshot =
      core::PolicySnapshot::FromTrainer(trainer, "<live>");

  // Many distinct observations per agent: step the env with varying actions.
  env::StepResult state = env.Reset();
  std::vector<core::PolicySnapshot::Row> rows;
  std::vector<std::vector<float>> storage;
  storage.reserve(64);
  for (int t = 0; t < 5; ++t) {
    for (int k = 0; k < env.num_agents(); ++k) {
      storage.push_back(state.observations[static_cast<size_t>(k)]);
    }
    std::vector<env::UvAction> actions(
        static_cast<size_t>(env.num_agents()),
        env::UvAction{0.1 * (t + 1), 0.5});
    state = env.Step(actions);
  }
  rows.reserve(storage.size());
  for (size_t i = 0; i < storage.size(); ++i) {
    rows.push_back({static_cast<int>(i) % env.num_agents(), &storage[i]});
  }

  std::vector<std::array<float, 2>> batched;
  snapshot->ActBatch(rows, batched);
  ASSERT_EQ(batched.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const std::array<float, 2> single =
        snapshot->Act(rows[i].agent, *rows[i].obs);
    EXPECT_EQ(batched[i][0], single[0]) << "row " << i;
    EXPECT_EQ(batched[i][1], single[1]) << "row " << i;
  }
}

TEST(PolicySnapshotTest, InferenceLoadAcceptsMultiWorkerCheckpoints) {
  env::ScEnv source_env(SmallEnvConfig(), SmallDataset(), 31);
  core::TrainConfig multi = SmallTrainConfig(31);
  multi.num_workers = 3;
  core::HiMadrlTrainer source(source_env, multi);
  const std::string path = TempPath("snap_multiworker.agsc");
  ASSERT_TRUE(source.SaveCheckpoint(path));

  env::ScEnv serve_env(SmallEnvConfig(), SmallDataset(), 32);
  core::HiMadrlTrainer staging(serve_env, SmallTrainConfig(32));
  // Full resume load keys on the vrng worker count and must reject...
  EXPECT_FALSE(staging.LoadCheckpoint(path));
  // ...while the inference load ignores worker streams and succeeds.
  EXPECT_TRUE(staging.LoadCheckpointForInference(path));
  std::remove(path.c_str());

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 33);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);
  for (int k = 0; k < probe_env.num_agents(); ++k) {
    const std::array<float, 2> want =
        EvaluatorAction(source, probe_env, k, observations[k]);
    const std::array<float, 2> got =
        EvaluatorAction(staging, probe_env, k, observations[k]);
    EXPECT_EQ(got[0], want[0]) << "agent " << k;
    EXPECT_EQ(got[1], want[1]) << "agent " << k;
  }
}

TEST(PolicySnapshotTest, SharedParamsOneHotMatchesEvaluator) {
  core::TrainConfig sp = SmallTrainConfig(41);
  sp.share_params = true;
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 41);
  core::HiMadrlTrainer trainer(env, sp);
  std::shared_ptr<core::PolicySnapshot> snapshot =
      core::PolicySnapshot::FromTrainer(trainer, "<live>");
  ASSERT_TRUE(snapshot->share_params());

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 42);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);
  for (int k = 0; k < probe_env.num_agents(); ++k) {
    const std::array<float, 2> want =
        EvaluatorAction(trainer, probe_env, k, observations[k]);
    const std::array<float, 2> got = snapshot->Act(k, observations[k]);
    EXPECT_EQ(got[0], want[0]) << "agent " << k;
    EXPECT_EQ(got[1], want[1]) << "agent " << k;
  }
  // Distinct agents through the shared net must (generically) differ —
  // proves the one-hot id actually reached the input.
  const std::array<float, 2> a0 = snapshot->Act(0, observations[0]);
  const std::array<float, 2> a1 = snapshot->Act(1, observations[0]);
  EXPECT_TRUE(a0[0] != a1[0] || a0[1] != a1[1]);
}

TEST(DispatchServerTest, ServesBitExactActionsThroughBatcher) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 51);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(51));
  std::shared_ptr<core::PolicySnapshot> snapshot =
      core::PolicySnapshot::FromTrainer(trainer, "<live>");

  core::DispatchConfig config;
  config.num_sessions = 2;
  config.max_batch = 8;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);
  EXPECT_EQ(server.PublishSnapshot(snapshot), 1u);
  server.Start();

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 52);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);
  for (int k = 0; k < probe_env.num_agents(); ++k) {
    const core::DispatchResult result = server.Act(k, observations[k]);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.snapshot_version, 1u);
    const std::array<float, 2> want =
        EvaluatorAction(trainer, probe_env, k, observations[k]);
    EXPECT_EQ(result.action[0], want[0]) << "agent " << k;
    EXPECT_EQ(result.action[1], want[1]) << "agent " << k;
  }
  server.Stop();
  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.requests_ok,
            static_cast<uint64_t>(probe_env.num_agents()));
  EXPECT_EQ(stats.requests_expired, 0u);
}

TEST(DispatchServerTest, SessionSteppingAdvancesAndResetsEpisodes) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 61);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(61));

  core::DispatchConfig config;
  config.num_sessions = 2;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  // 6-slot episodes: 14 steps on one session must complete >= 2 episodes.
  int done_seen = 0;
  for (int t = 0; t < 14; ++t) {
    const core::DispatchResult result = server.StepSession(0);
    ASSERT_TRUE(result.ok);
    if (result.episode_done) ++done_seen;
  }
  server.Stop();
  EXPECT_GE(done_seen, 2);
  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.env_steps, 14u);
  EXPECT_EQ(stats.episodes_completed, static_cast<uint64_t>(done_seen));
  // An out-of-range session is rejected without touching the queue.
  const core::DispatchResult bad = server.StepSession(7);
  EXPECT_FALSE(bad.ok);
}

TEST(DispatchServerTest, NoSnapshotFailsRequestsCleanly) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 71);
  core::DispatchConfig config;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);
  server.Start();
  const std::vector<float> obs(static_cast<size_t>(env.obs_dim()), 0.0f);
  const core::DispatchResult result = server.Act(0, obs);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.expired);
  server.Stop();
  EXPECT_EQ(server.Stats().requests_no_snapshot, 1u);
}

// The headline TSan scenario: clients hammer the dispatch path while a
// publisher swaps between two distinguishable parameter sets. Every reply
// must bit-match exactly one of the two snapshots' predictions AND agree
// with the snapshot version it reports — a torn read, a stale-version
// reply, or a data race would all fail.
TEST(DispatchServerTest, SnapshotSwapUnderLoadIsTornFreeAndVersioned) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 81);
  core::HiMadrlTrainer live(env, SmallTrainConfig(81));

  env::ScEnv zero_env(SmallEnvConfig(), SmallDataset(), 82);
  core::HiMadrlTrainer zeroed(zero_env, SmallTrainConfig(82));
  ZeroActorParameters(zeroed, zero_env.num_agents());

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 83);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);
  const int num_agents = probe_env.num_agents();

  // Expected replies under each parameter set. The zeroed net's mode is
  // exactly (0, 0); the live net's must differ or the test is vacuous.
  std::vector<std::array<float, 2>> expect_live(
      static_cast<size_t>(num_agents));
  std::shared_ptr<core::PolicySnapshot> probe =
      core::PolicySnapshot::FromTrainer(live, "<live>");
  for (int k = 0; k < num_agents; ++k) {
    expect_live[static_cast<size_t>(k)] = probe->Act(k, observations[k]);
    ASSERT_TRUE(expect_live[k][0] != 0.0f || expect_live[k][1] != 0.0f);
    const std::array<float, 2> zero_action =
        core::PolicySnapshot::FromTrainer(zeroed, "<zero>")
            ->Act(k, observations[k]);
    ASSERT_EQ(zero_action[0], 0.0f);
    ASSERT_EQ(zero_action[1], 0.0f);
  }

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.max_batch = 16;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);
  // v1 = live; the publisher below alternates zeroed (even versions) and
  // live (odd versions), so version parity identifies the parameter set.
  ASSERT_EQ(server.PublishSnapshot(core::PolicySnapshot::FromTrainer(
                live, "<live>")),
            1u);
  server.Start();

  std::atomic<bool> clients_done{false};
  std::thread publisher([&] {
    uint64_t next = 2;
    while (!clients_done.load(std::memory_order_relaxed)) {
      core::HiMadrlTrainer& source = (next % 2 == 0) ? zeroed : live;
      const uint64_t version = server.PublishSnapshot(
          core::PolicySnapshot::FromTrainer(source, "<swap>"));
      ASSERT_EQ(version, next);
      ++next;
      std::this_thread::yield();
    }
  });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 250;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int n = 0; n < kRequestsPerClient; ++n) {
        const int k = (c + n) % num_agents;
        const core::DispatchResult result =
            server.Act(k, observations[static_cast<size_t>(k)]);
        if (!result.ok) {
          failures.fetch_add(1);
          continue;
        }
        const bool is_zero =
            result.action[0] == 0.0f && result.action[1] == 0.0f;
        const bool is_live =
            result.action[0] == expect_live[static_cast<size_t>(k)][0] &&
            result.action[1] == expect_live[static_cast<size_t>(k)][1];
        // Exactly one published parameter set, never a mix.
        if (!(is_zero || is_live)) failures.fetch_add(1);
        // And the one the reported version says.
        const bool version_says_zero = result.snapshot_version % 2 == 0;
        if (is_zero != version_says_zero) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  clients_done.store(true, std::memory_order_relaxed);
  publisher.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.requests_ok,
            static_cast<uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_GE(stats.publishes, 2u);
}

TEST(DispatchServerTest, CorruptedPromotionKeepsOldSnapshotLive) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 91);
  core::HiMadrlTrainer source(env, SmallTrainConfig(91));
  const std::string good_path = TempPath("snap_good.agsc");
  ASSERT_TRUE(source.SaveCheckpoint(good_path));
  std::string bytes;
  {
    std::ifstream in(good_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  env::ScEnv serve_env(SmallEnvConfig(), SmallDataset(), 92);
  core::HiMadrlTrainer staging(serve_env, SmallTrainConfig(92));
  std::string error;
  std::shared_ptr<core::PolicySnapshot> good =
      core::LoadPolicySnapshot(staging, good_path, &error);
  ASSERT_NE(good, nullptr) << error;

  core::DispatchConfig config;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(good);
  server.Start();

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 93);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);
  const std::array<float, 2> want =
      EvaluatorAction(source, probe_env, 0, observations[0]);

  // Three promotion attempts that must all be rejected: truncation,
  // bit-flip, and an architecture-fingerprint mismatch.
  const std::string bad_path = TempPath("snap_bad.agsc");
  const auto write_bad = [&](const std::string& payload) {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  };
  write_bad(bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(core::LoadPolicySnapshot(staging, bad_path, &error), nullptr);
  server.CountPublishReject();

  std::string flipped = bytes;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0xFF);
  write_bad(flipped);
  EXPECT_EQ(core::LoadPolicySnapshot(staging, bad_path, &error), nullptr);
  server.CountPublishReject();

  core::TrainConfig other_arch = SmallTrainConfig(94);
  other_arch.net.hidden = {24};
  env::ScEnv other_env(SmallEnvConfig(), SmallDataset(), 94);
  core::HiMadrlTrainer other(other_env, other_arch);
  ASSERT_TRUE(other.SaveCheckpoint(bad_path));
  EXPECT_EQ(core::LoadPolicySnapshot(staging, bad_path, &error), nullptr);
  server.CountPublishReject();

  // The original snapshot is still the one serving, still bit-exact.
  ASSERT_NE(server.CurrentSnapshot(), nullptr);
  EXPECT_EQ(server.CurrentSnapshot()->version(), 1u);
  const core::DispatchResult result = server.Act(0, observations[0]);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.action[0], want[0]);
  EXPECT_EQ(result.action[1], want[1]);
  EXPECT_EQ(result.snapshot_version, 1u);
  server.Stop();
  EXPECT_EQ(server.Stats().publish_rejects, 3u);

  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

TEST(DispatchServerTest, StalledBatchExpiresDeadlinedRequests) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 101);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(101));

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.deadline_ms = 20;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  // First batch stalls well past the deadline; its request must come back
  // expired (fail-fast, no stale action), later ones are served normally.
  util::FaultInjector::Config fault;
  fault.stall_task = 1;
  fault.stall_ms = 120;
  util::FaultInjector::Instance().set_config(fault);
  const core::DispatchResult stalled = server.StepSession(0);
  util::FaultInjector::Instance().Reset();
  EXPECT_FALSE(stalled.ok);
  EXPECT_TRUE(stalled.expired);
  EXPECT_GE(stalled.latency_ms, 100.0);

  const core::DispatchResult after = server.StepSession(0);
  EXPECT_TRUE(after.ok);
  server.Stop();
  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.requests_expired, 1u);
  EXPECT_EQ(stats.requests_ok, 1u);
}

// --- Overload control -------------------------------------------------------

/// A flooding client is bounded by its in-flight cap: with the batcher held
/// in a stall, requests beyond queue+inflight == cap come back `rejected`
/// (client-cap) immediately, and every future completes — nothing hangs.
TEST(DispatchServerTest, PerClientInflightCapBoundsFlooder) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 111);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(111));

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.deadline_ms = 0;
  config.per_client_inflight = 4;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 112);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);

  // Hold the batcher in a long stall so the flood below queues up instead
  // of draining.
  util::FaultInjector::Config fault;
  fault.stall_task = 1;
  fault.stall_ms = 500;
  util::FaultInjector::Instance().set_config(fault);

  core::RequestOptions flooder;
  flooder.client = 7;
  std::vector<std::future<core::DispatchResult>> futures;
  futures.push_back(server.ActAsync(0, observations[0], flooder));
  // Let the batcher pick request 1 up (inflight=1), then flood 32 more:
  // 3 fill the cap (queue 3 + inflight 1 == 4), 29 are refused.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int n = 0; n < 32; ++n) {
    futures.push_back(server.ActAsync(0, observations[0], flooder));
  }

  uint64_t ok = 0, rejected_cap = 0;
  for (std::future<core::DispatchResult>& f : futures) {
    const core::DispatchResult result = f.get();  // Completes — never hangs.
    if (result.ok) ++ok;
    if (result.rejected) {
      EXPECT_EQ(result.reject_reason, core::RejectReason::kClientCap);
      EXPECT_LT(result.latency_ms, 100.0);  // Refused at admission, not late.
      ++rejected_cap;
    }
  }
  util::FaultInjector::Instance().Reset();
  server.Stop();
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(rejected_cap, 29u);
  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.requests_ok, 4u);
  EXPECT_EQ(stats.requests_rejected, 29u);
  EXPECT_EQ(stats.rejected_client_cap, 29u);
}

/// Weighted round-robin batch assembly: a lock-step client makes steady
/// progress while a flooder keeps hundreds of requests queued — under a
/// FIFO queue its requests would sit behind the whole flood. Every admitted
/// action stays bit-exact vs. the Evaluator forward under overload.
TEST(DispatchServerTest, FairnessLockStepClientNotStarvedByFlood) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 121);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(121));

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.max_batch = 4;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 122);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);
  const std::array<float, 2> want =
      EvaluatorAction(trainer, probe_env, 0, observations[0]);

  // Every batch is slowed a little so the flood builds a real backlog.
  util::FaultInjector::Config fault;
  fault.stall_every = 1;
  fault.stall_ms = 10;
  util::FaultInjector::Instance().set_config(fault);

  constexpr int kFlood = 400;
  constexpr int kLockStep = 16;
  core::RequestOptions flood_opts;
  flood_opts.client = 1;
  std::vector<std::future<core::DispatchResult>> flood;
  flood.reserve(kFlood);
  for (int n = 0; n < kFlood; ++n) {
    flood.push_back(server.ActAsync(0, observations[0], flood_opts));
  }

  core::RequestOptions steady_opts;
  steady_opts.client = 2;
  for (int n = 0; n < kLockStep; ++n) {
    const core::DispatchResult result =
        server.Act(0, observations[0], steady_opts);
    ASSERT_TRUE(result.ok) << "lock-step request " << n;
    EXPECT_EQ(result.action[0], want[0]);  // Bit-exact under overload.
    EXPECT_EQ(result.action[1], want[1]);
  }

  // Fairness: the lock-step client finished while the flooder still had
  // queued work — with a single FIFO queue each lock-step request would
  // have waited behind the entire remaining flood.
  size_t flood_pending = 0;
  for (std::future<core::DispatchResult>& f : flood) {
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++flood_pending;
    }
  }
  EXPECT_GT(flood_pending, 0u);

  // Drain the flood (un-stalled) and check it too was served bit-exactly.
  util::FaultInjector::Instance().Reset();
  uint64_t flood_ok = 0;
  for (std::future<core::DispatchResult>& f : flood) {
    const core::DispatchResult result = f.get();
    if (result.ok) {
      EXPECT_EQ(result.action[0], want[0]);
      EXPECT_EQ(result.action[1], want[1]);
      ++flood_ok;
    }
  }
  server.Stop();
  EXPECT_EQ(flood_ok, static_cast<uint64_t>(kFlood));
  EXPECT_EQ(server.Stats().requests_ok,
            static_cast<uint64_t>(kFlood + kLockStep));
}

/// Deadline-aware admission: once the batch-service EWMA shows a queued
/// request cannot meet its deadline, it is refused immediately with
/// `rejected` (deadline) — an early explicit no beats a late silent expiry.
/// An EMPTY queue always admits, however slow the last batch was.
TEST(DispatchServerTest, AdmissionRejectsDeadlineInfeasibleRequests) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 131);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(131));

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.max_batch = 1;
  config.deadline_ms = 100;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 132);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);

  // Every batch stalls 300 ms — 3x the deadline.
  util::FaultInjector::Config fault;
  fault.stall_every = 1;
  fault.stall_ms = 300;
  util::FaultInjector::Instance().set_config(fault);

  core::RequestOptions opts;
  opts.client = 1;
  // Seed the estimator: the first request expires (300 ms stall > 100 ms
  // deadline) and teaches the EWMA that a batch takes ~300 ms. It was
  // ADMITTED (empty queue, no estimate yet) — only ever failed as expired.
  const core::DispatchResult seed = server.Act(0, observations[0], opts);
  EXPECT_TRUE(seed.expired);

  // A: drains into the (stalling) batch. B: queued behind it. C: with one
  // queued request ahead and ewma ~300 ms > the 100 ms deadline, admission
  // must refuse it instantly.
  std::future<core::DispatchResult> a =
      server.ActAsync(0, observations[0], opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::future<core::DispatchResult> b =
      server.ActAsync(0, observations[0], opts);
  const core::DispatchResult c = server.Act(0, observations[0], opts);
  EXPECT_TRUE(c.rejected);
  EXPECT_FALSE(c.expired);
  EXPECT_EQ(c.reject_reason, core::RejectReason::kDeadline);
  EXPECT_LT(c.latency_ms, 50.0);  // Refused at admission, not after queuing.

  const core::DispatchResult a_result = a.get();
  const core::DispatchResult b_result = b.get();
  EXPECT_TRUE(a_result.expired);
  EXPECT_TRUE(b_result.expired);
  util::FaultInjector::Instance().Reset();

  // Empty queue: admitted again despite the terrible EWMA (floor() of the
  // batches-strictly-ahead estimate — never reject an idle server).
  const core::DispatchResult after = server.Act(0, observations[0], opts);
  EXPECT_TRUE(after.ok);
  server.Stop();
  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.requests_expired, 3u);
  EXPECT_GT(stats.ewma_batch_ms, 100.0);
}

/// Brownout: when the bounded queue fills, a higher-priority arrival
/// displaces the youngest lowest-priority queued request (shed as
/// `rejected`/shed); an equal-priority arrival is refused as queue-full.
/// The overload gauge engages on the way.
TEST(DispatchServerTest, QueueFullShedsLowestPriorityFirst) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 141);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(141));

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.deadline_ms = 0;
  config.max_queue = 3;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 142);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);

  util::FaultInjector::Config fault;
  fault.stall_task = 1;
  fault.stall_ms = 500;
  util::FaultInjector::Instance().set_config(fault);

  core::RequestOptions low;
  low.client = 1;
  low.priority = 0;
  core::RequestOptions high;
  high.client = 2;
  high.priority = 1;

  // head drains into the stalled batch; q1..q3 fill the queue.
  std::future<core::DispatchResult> head =
      server.ActAsync(0, observations[0], low);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::future<core::DispatchResult> q1 =
      server.ActAsync(0, observations[0], low);
  std::future<core::DispatchResult> q2 =
      server.ActAsync(0, observations[0], low);
  std::future<core::DispatchResult> q3 =
      server.ActAsync(0, observations[0], low);

  // Equal priority + full queue: refused, with the overload gauge set
  // (3 queued >= the 3/4 high-water mark of max_queue 3).
  const core::DispatchResult overflow =
      server.Act(0, observations[0], low);
  EXPECT_TRUE(overflow.rejected);
  EXPECT_EQ(overflow.reject_reason, core::RejectReason::kQueueFull);
  EXPECT_TRUE(overflow.overloaded);

  // Higher priority: the youngest priority-0 queued request (q3) is shed
  // to make room.
  std::future<core::DispatchResult> vip =
      server.ActAsync(0, observations[0], high);
  const core::DispatchResult q3_result = q3.get();  // Ready immediately.
  EXPECT_TRUE(q3_result.rejected);
  EXPECT_EQ(q3_result.reject_reason, core::RejectReason::kShed);

  util::FaultInjector::Instance().Reset();
  EXPECT_TRUE(head.get().ok);
  EXPECT_TRUE(q1.get().ok);
  EXPECT_TRUE(q2.get().ok);
  EXPECT_TRUE(vip.get().ok);
  server.Stop();
  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.requests_ok, 4u);
  EXPECT_EQ(stats.requests_shed, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_GE(stats.overload_entries, 1u);
  EXPECT_FALSE(stats.overloaded);  // Drained by now (hysteresis exit).
}

/// CancelClient (the quarantine backend): a disconnected client's queued
/// requests complete as rejected/disconnect and are counted as shed;
/// other clients' work is untouched.
TEST(DispatchServerTest, CancelClientShedsOnlyThatClientsQueuedWork) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 151);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(151));

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 152);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);

  util::FaultInjector::Config fault;
  fault.stall_task = 1;
  fault.stall_ms = 400;
  util::FaultInjector::Instance().set_config(fault);

  core::RequestOptions doomed;
  doomed.client = 9;
  core::RequestOptions innocent;
  innocent.client = 3;

  std::future<core::DispatchResult> head =
      server.ActAsync(0, observations[0], innocent);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::future<core::DispatchResult>> queued;
  for (int n = 0; n < 5; ++n) {
    queued.push_back(server.ActAsync(0, observations[0], doomed));
  }
  std::future<core::DispatchResult> bystander =
      server.ActAsync(0, observations[0], innocent);

  server.CancelClient(9);
  for (std::future<core::DispatchResult>& f : queued) {
    const core::DispatchResult result = f.get();  // Ready immediately.
    EXPECT_TRUE(result.rejected);
    EXPECT_EQ(result.reject_reason, core::RejectReason::kDisconnect);
  }
  util::FaultInjector::Instance().Reset();
  EXPECT_TRUE(head.get().ok);
  EXPECT_TRUE(bystander.get().ok);  // The innocent client's work survived.
  server.Stop();
  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.requests_shed, 5u);
  EXPECT_EQ(stats.requests_ok, 2u);
}

/// Health() is coherent with served traffic and cheap to call (no
/// admission-queue locks).
TEST(DispatchServerTest, HealthReportsVersionCountersAndEstimator) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 161);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(161));

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);

  const core::DispatchHealth empty = server.Health();
  EXPECT_EQ(empty.snapshot_version, 0u);  // Nothing published yet.
  EXPECT_EQ(empty.queue_depth, 0u);

  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();
  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 162);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);
  ASSERT_TRUE(server.Act(0, observations[0]).ok);
  ASSERT_TRUE(server.Act(0, observations[0]).ok);
  server.CountQuarantine();

  const core::DispatchHealth health = server.Health();
  EXPECT_EQ(health.snapshot_version, 1u);
  EXPECT_EQ(health.requests_ok, 2u);
  EXPECT_EQ(health.requests_rejected, 0u);
  EXPECT_EQ(health.requests_shed, 0u);
  EXPECT_EQ(health.clients_quarantined, 1u);
  EXPECT_EQ(health.queue_depth, 0u);
  EXPECT_FALSE(health.overloaded);
  EXPECT_GT(health.ewma_batch_ms, 0.0);  // Two batches taught the EWMA.
  server.Stop();
}

/// SnapshotRegistry accounting satellite: publishes and publish-rejects
/// race live Act batches; both counters must be exact — no lost
/// increments. Run under -DAGSC_SANITIZE=thread in the TSan suite.
TEST(DispatchServerTest, PublishRejectAccountingExactUnderConcurrentLoad) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 171);
  core::HiMadrlTrainer trainer(env, SmallTrainConfig(171));

  core::DispatchConfig config;
  config.num_sessions = 1;
  config.deadline_ms = 0;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  env::ScEnv probe_env(SmallEnvConfig(), SmallDataset(), 172);
  const std::vector<std::vector<float>> observations =
      ProbeObservations(probe_env);

  constexpr int kRejectThreads = 4;
  constexpr int kRejectsPerThread = 250;
  constexpr int kPublishes = 50;
  constexpr int kClients = 2;
  constexpr int kRequestsPerClient = 100;

  std::vector<std::thread> threads;
  // Corrupt promotions: each failed load increments the reject counter.
  for (int t = 0; t < kRejectThreads; ++t) {
    threads.emplace_back([&] {
      for (int n = 0; n < kRejectsPerThread; ++n) {
        server.CountPublishReject();
      }
    });
  }
  // Good promotions swap the live snapshot while clients serve.
  threads.emplace_back([&] {
    for (int n = 0; n < kPublishes; ++n) {
      server.PublishSnapshot(
          core::PolicySnapshot::FromTrainer(trainer, "<swap>"));
    }
  });
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      core::RequestOptions opts;
      opts.client = static_cast<uint64_t>(c);
      for (int n = 0; n < kRequestsPerClient; ++n) {
        const core::DispatchResult result =
            server.Act(0, observations[0], opts);
        ASSERT_TRUE(result.ok);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();

  const core::DispatchStats stats = server.Stats();
  EXPECT_EQ(stats.publish_rejects,
            static_cast<uint64_t>(kRejectThreads) * kRejectsPerThread);
  EXPECT_EQ(stats.publishes, 1u + kPublishes);
  EXPECT_EQ(stats.requests_ok,
            static_cast<uint64_t>(kClients) * kRequestsPerClient);
}

}  // namespace
}  // namespace agsc
