// Bit-exactness and allocation-behavior tests for the environment hot path:
//  - RoadGraph::Project / MoveToward throw std::logic_error on an edgeless
//    graph (regression: they used to return a bogus RoadPosition);
//  - grid-accelerated Project and the cached NodeDistance / PathDistance /
//    MoveAlong are bit-identical to the retained naive oracles on randomized
//    graphs, including lattice graphs engineered to produce distance ties,
//    duplicate (parallel) edges, and zero-length edges between coincident
//    nodes;
//  - AddNode/AddEdge invalidate the routing caches (queries after a mutation
//    still match the naive oracles);
//  - PointGrid::Nearest / ForEachInDiskBBox match an ascending linear scan
//    with a strict `<` argmin, bit for bit, for in-bounds and out-of-bounds
//    query points;
//  - a naive-path env (use_spatial_index = false) and an indexed env produce
//    identical StepResults and HomogeneousNeighbors over full episodes;
//  - record_event_log = false suppresses the per-slot event log without
//    changing anything else;
//  - a fixed-seed training run writes byte-identical checkpoints under the
//    indexed env, the naive env, and the indexed env with event logging off;
//  - steady-state out-param Step performs no heap allocation after warm-up.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "map/geometry.h"
#include "map/road_graph.h"
#include "map/spatial_index.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-allocation test. Sanitizer builds
// keep the instrumented allocator in the loop (mirrors the buffer-pool gate
// in nn/tensor.cc), so the override is compiled out and the test skips.
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kAllocCounterCompiledIn = false;
long long HeapAllocCount() { return 0; }
#else
constexpr bool kAllocCounterCompiledIn = true;
namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

long long HeapAllocCount() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// noinline keeps GCC from inlining the free() into callers and then warning
// about a new/free mismatch it can no longer pair with the new override.
#define AGSC_ALLOC_NOINLINE __attribute__((noinline))

AGSC_ALLOC_NOINLINE void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
AGSC_ALLOC_NOINLINE void* operator new[](std::size_t size) {
  return ::operator new(size);
}
AGSC_ALLOC_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
AGSC_ALLOC_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
AGSC_ALLOC_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
AGSC_ALLOC_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}
#endif

namespace agsc {
namespace {

// ---------------------------------------------------------------------------
// Randomized road graphs. `lattice` snaps nodes to a coarse grid so that
// coincident nodes (=> zero-length edges), parallel duplicate edges, and
// exact distance ties all occur with high probability.
// ---------------------------------------------------------------------------

map::RoadGraph RandomGraph(util::Rng& rng, int num_nodes, bool lattice) {
  map::RoadGraph g;
  for (int i = 0; i < num_nodes; ++i) {
    if (lattice) {
      g.AddNode({static_cast<double>(rng.UniformInt(int64_t{0}, int64_t{3})) *
                     300.0,
                 static_cast<double>(rng.UniformInt(int64_t{0}, int64_t{3})) *
                     300.0});
    } else {
      g.AddNode({rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)});
    }
  }
  // Random spanning chain keeps the graph connected; extra edges add
  // alternate routes and (on lattices) duplicates of existing edges.
  for (int i = 1; i < num_nodes; ++i) {
    g.AddEdge(static_cast<int>(rng.UniformInt(static_cast<uint64_t>(i))), i);
  }
  for (int e = 0; e < num_nodes; ++e) {
    const int a =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
    const int b =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
    if (a != b) g.AddEdge(a, b);
  }
  return g;
}

map::Point2 RandomPoint(util::Rng& rng, bool lattice) {
  if (lattice && rng.Bernoulli(0.5)) {
    // Exactly on a lattice vertex: equidistant from several edges.
    return {static_cast<double>(rng.UniformInt(int64_t{0}, int64_t{3})) * 300.0,
            static_cast<double>(rng.UniformInt(int64_t{0}, int64_t{3})) *
                300.0};
  }
  return {rng.Uniform(-200.0, 2200.0), rng.Uniform(-200.0, 2200.0)};
}

map::RoadPosition RandomRoadPos(const map::RoadGraph& g, util::Rng& rng) {
  map::RoadPosition pos;
  pos.edge = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(
      g.NumEdges())));
  pos.t = rng.Uniform();
  return pos;
}

// ---------------------------------------------------------------------------
// Empty-graph regression: Project / MoveToward used to return edge -1.
// ---------------------------------------------------------------------------

TEST(RoadGraphEmptyTest, ProjectAndMoveTowardThrowWithoutEdges) {
  map::RoadGraph no_nodes;
  EXPECT_THROW(no_nodes.Project({0.0, 0.0}), std::logic_error);
  EXPECT_THROW(no_nodes.ProjectNaive({0.0, 0.0}), std::logic_error);

  map::RoadGraph no_edges;  // Nodes but nothing to project onto.
  no_edges.AddNode({0.0, 0.0});
  no_edges.AddNode({10.0, 0.0});
  EXPECT_THROW(no_edges.Project({5.0, 1.0}), std::logic_error);
  EXPECT_THROW(no_edges.ProjectNaive({5.0, 1.0}), std::logic_error);
  EXPECT_THROW(no_edges.MoveToward({}, {5.0, 1.0}, 3.0), std::logic_error);
  EXPECT_THROW(no_edges.MoveTowardNaive({}, {5.0, 1.0}, 3.0),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Cached / grid-accelerated road queries vs the naive oracles.
// ---------------------------------------------------------------------------

TEST(RoadGraphCacheTest, ProjectMatchesNaiveOnRandomGraphs) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 16; ++trial) {
    const bool lattice = trial % 2 == 0;
    const map::RoadGraph g = RandomGraph(rng, 4 + trial, lattice);
    for (int q = 0; q < 60; ++q) {
      const map::Point2 p = RandomPoint(rng, lattice);
      const map::RoadPosition fast = g.Project(p);
      const map::RoadPosition naive = g.ProjectNaive(p);
      ASSERT_EQ(fast.edge, naive.edge)
          << "trial " << trial << " point (" << p.x << ", " << p.y << ")";
      ASSERT_EQ(fast.t, naive.t)
          << "trial " << trial << " point (" << p.x << ", " << p.y << ")";
    }
  }
}

TEST(RoadGraphCacheTest, DistancesMatchNaiveOnRandomGraphs) {
  util::Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const bool lattice = trial % 2 == 0;
    const map::RoadGraph g = RandomGraph(rng, 5 + trial, lattice);
    for (int a = 0; a < g.NumNodes(); ++a) {
      for (int b = 0; b < g.NumNodes(); ++b) {
        ASSERT_EQ(g.NodeDistance(a, b), g.NodeDistanceNaive(a, b))
            << "trial " << trial << " nodes " << a << " -> " << b;
      }
    }
    for (int q = 0; q < 60; ++q) {
      const map::RoadPosition from = RandomRoadPos(g, rng);
      const map::RoadPosition to = RandomRoadPos(g, rng);
      ASSERT_EQ(g.PathDistance(from, to), g.PathDistanceNaive(from, to))
          << "trial " << trial << " edges " << from.edge << " -> " << to.edge;
    }
  }
}

TEST(RoadGraphCacheTest, MoveAlongMatchesNaiveOnRandomGraphs) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 12; ++trial) {
    const bool lattice = trial % 2 == 0;
    const map::RoadGraph g = RandomGraph(rng, 5 + trial, lattice);
    for (int q = 0; q < 60; ++q) {
      const map::RoadPosition from = RandomRoadPos(g, rng);
      const map::RoadPosition to = RandomRoadPos(g, rng);
      const double budget = rng.Uniform(0.0, 900.0);
      double moved_fast = -1.0, moved_naive = -1.0;
      const map::RoadPosition fast = g.MoveAlong(from, to, budget,
                                                 &moved_fast);
      const map::RoadPosition naive = g.MoveAlongNaive(from, to, budget,
                                                       &moved_naive);
      const std::string tag = "trial " + std::to_string(trial) + " query " +
                              std::to_string(q);
      ASSERT_EQ(fast.edge, naive.edge) << tag;
      ASSERT_EQ(fast.t, naive.t) << tag;
      ASSERT_EQ(moved_fast, moved_naive) << tag;
    }
  }
}

TEST(RoadGraphCacheTest, MutationInvalidatesCaches) {
  util::Rng rng(9);
  map::RoadGraph g = RandomGraph(rng, 6, /*lattice=*/false);
  g.EnsureCaches();
  // Warm query, then grow the graph; cached answers must track the naive
  // ones computed on the new topology.
  (void)g.Project({100.0, 100.0});
  const int n = g.AddNode({50.0, 1500.0});
  g.AddEdge(0, n);
  for (int q = 0; q < 40; ++q) {
    const map::Point2 p = RandomPoint(rng, /*lattice=*/false);
    const map::RoadPosition fast = g.Project(p);
    const map::RoadPosition naive = g.ProjectNaive(p);
    ASSERT_EQ(fast.edge, naive.edge) << "query " << q;
    ASSERT_EQ(fast.t, naive.t) << "query " << q;
  }
  for (int a = 0; a < g.NumNodes(); ++a) {
    for (int b = 0; b < g.NumNodes(); ++b) {
      ASSERT_EQ(g.NodeDistance(a, b), g.NodeDistanceNaive(a, b))
          << a << " -> " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// PointGrid vs an ascending strict-< linear scan.
// ---------------------------------------------------------------------------

TEST(PointGridTest, NearestMatchesLinearScanIncludingTies) {
  util::Rng rng(321);
  const map::Rect bounds{{0.0, 0.0}, {1000.0, 800.0}};
  for (int trial = 0; trial < 10; ++trial) {
    const bool lattice = trial % 2 == 0;
    std::vector<map::Point2> points;
    const int count = 1 + static_cast<int>(rng.UniformInt(uint64_t{120}));
    for (int i = 0; i < count; ++i) {
      if (lattice) {
        // Many coincident points => heavy tie-breaking pressure.
        points.push_back(
            {static_cast<double>(rng.UniformInt(int64_t{0}, int64_t{4})) *
                 250.0,
             static_cast<double>(rng.UniformInt(int64_t{0}, int64_t{4})) *
                 200.0});
      } else {
        points.push_back(
            {rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 800.0)});
      }
    }
    map::PointGrid grid;
    grid.Build(bounds, points, 8);
    ASSERT_TRUE(grid.built());
    ASSERT_EQ(grid.size(), count);

    auto pred = [](int id) { return id % 3 != 0; };
    for (int q = 0; q < 80; ++q) {
      // Queries both inside and far outside the indexed bounds.
      const map::Point2 p = {rng.Uniform(-500.0, 1500.0),
                             rng.Uniform(-500.0, 1300.0)};
      int want = -1;
      double want_dist = std::numeric_limits<double>::infinity();
      for (int i = 0; i < count; ++i) {
        if (!pred(i)) continue;
        const double d = map::Distance(p, points[i]);
        if (d < want_dist) {
          want = i;
          want_dist = d;
        }
      }
      double got_dist = std::numeric_limits<double>::infinity();
      const int got = grid.Nearest(p, pred, &got_dist);
      ASSERT_EQ(got, want) << "trial " << trial << " query " << q;
      if (want >= 0) {
        ASSERT_EQ(got_dist, want_dist) << "trial " << trial << " query " << q;
      }
    }
  }
}

TEST(PointGridTest, DiskBBoxVisitsEveryPointInRadiusExactlyOnce) {
  util::Rng rng(654);
  const map::Rect bounds{{0.0, 0.0}, {1000.0, 1000.0}};
  std::vector<map::Point2> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }
  map::PointGrid grid;
  grid.Build(bounds, points, 10);
  for (int q = 0; q < 50; ++q) {
    const map::Point2 center = {rng.Uniform(-100.0, 1100.0),
                                rng.Uniform(-100.0, 1100.0)};
    const double radius = rng.Uniform(0.0, 400.0);
    std::vector<int> visits(points.size(), 0);
    grid.ForEachInDiskBBox(center, radius, [&](int id) { ++visits[id]; });
    for (size_t i = 0; i < points.size(); ++i) {
      ASSERT_LE(visits[i], 1) << "duplicate visit, query " << q;
      if (map::Distance(center, points[i]) <= radius) {
        ASSERT_EQ(visits[i], 1) << "missed in-radius point " << i
                                << ", query " << q;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Env equivalence: indexed vs naive paths over full episodes.
// ---------------------------------------------------------------------------

const map::Dataset& TestDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 24));
  return *dataset;
}

env::EnvConfig TestEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 25;
  config.num_pois = 24;
  config.num_uavs = 2;
  config.num_ugvs = 2;
  return config;
}

void ExpectStepResultsEqual(const env::StepResult& a, const env::StepResult& b,
                            const std::string& tag) {
  ASSERT_EQ(a.done, b.done) << tag;
  ASSERT_EQ(a.observations, b.observations) << tag;
  ASSERT_EQ(a.state, b.state) << tag;
  ASSERT_EQ(a.rewards, b.rewards) << tag;
  ASSERT_EQ(a.events.size(), b.events.size()) << tag;
  for (size_t i = 0; i < a.events.size(); ++i) {
    const env::CollectionEvent& x = a.events[i];
    const env::CollectionEvent& y = b.events[i];
    const std::string etag = tag + " event " + std::to_string(i);
    ASSERT_EQ(x.subchannel, y.subchannel) << etag;
    ASSERT_EQ(x.uav, y.uav) << etag;
    ASSERT_EQ(x.ugv, y.ugv) << etag;
    ASSERT_EQ(x.poi_uav, y.poi_uav) << etag;
    ASSERT_EQ(x.poi_ugv, y.poi_ugv) << etag;
    ASSERT_EQ(x.collected_uav_gbit, y.collected_uav_gbit) << etag;
    ASSERT_EQ(x.collected_ugv_gbit, y.collected_ugv_gbit) << etag;
    ASSERT_EQ(x.loss_uav, y.loss_uav) << etag;
    ASSERT_EQ(x.loss_ugv, y.loss_ugv) << etag;
    ASSERT_EQ(x.sinr_uplink_uav_db, y.sinr_uplink_uav_db) << etag;
    ASSERT_EQ(x.sinr_relay_db, y.sinr_relay_db) << etag;
    ASSERT_EQ(x.sinr_uplink_ugv_db, y.sinr_uplink_ugv_db) << etag;
  }
}

TEST(EnvHotPathTest, IndexedEnvBitIdenticalToNaiveEnv) {
  for (uint64_t seed : {11u, 23u}) {
    env::EnvConfig indexed_cfg = TestEnvConfig();
    env::EnvConfig naive_cfg = TestEnvConfig();
    naive_cfg.use_spatial_index = false;
    env::ScEnv indexed(indexed_cfg, TestDataset(), seed);
    env::ScEnv naive(naive_cfg, TestDataset(), seed);

    util::Rng rng(seed * 1000 + 1);
    std::vector<env::UvAction> actions(indexed.num_agents());
    env::StepResult ri, rn;
    for (int episode = 0; episode < 2; ++episode) {
      indexed.Reset(ri);
      naive.Reset(rn);
      ExpectStepResultsEqual(ri, rn, "reset seed " + std::to_string(seed));
      int t = 0;
      while (!ri.done) {
        for (auto& a : actions) {
          a.raw_direction = rng.Uniform(-1.5, 1.5);
          a.raw_speed = rng.Uniform(-1.5, 1.5);
        }
        indexed.Step(actions, ri);
        naive.Step(actions, rn);
        const std::string tag = "seed " + std::to_string(seed) + " ep " +
                                std::to_string(episode) + " slot " +
                                std::to_string(t++);
        ExpectStepResultsEqual(ri, rn, tag);
        for (int k = 0; k < indexed.num_agents(); ++k) {
          ASSERT_EQ(indexed.HomogeneousNeighbors(k),
                    naive.HomogeneousNeighbors(k))
              << tag << " agent " << k;
        }
      }
      ASSERT_EQ(indexed.EpisodeMetrics().data_collection_ratio,
                naive.EpisodeMetrics().data_collection_ratio)
          << "seed " << seed << " episode " << episode;
    }
  }
}

TEST(EnvHotPathTest, EventLogOptOutChangesOnlyTheLog) {
  const uint64_t seed = 31;
  env::EnvConfig log_cfg = TestEnvConfig();
  env::EnvConfig no_log_cfg = TestEnvConfig();
  no_log_cfg.record_event_log = false;
  env::ScEnv with_log(log_cfg, TestDataset(), seed);
  env::ScEnv without_log(no_log_cfg, TestDataset(), seed);

  util::Rng rng(99);
  std::vector<env::UvAction> actions(with_log.num_agents());
  env::StepResult ra, rb;
  with_log.Reset(ra);
  without_log.Reset(rb);
  int slots = 0;
  while (!ra.done) {
    for (auto& a : actions) {
      a.raw_direction = rng.Uniform(-1.0, 1.0);
      a.raw_speed = rng.Uniform(-1.0, 1.0);
    }
    with_log.Step(actions, ra);
    without_log.Step(actions, rb);
    ExpectStepResultsEqual(ra, rb, "slot " + std::to_string(slots));
    ++slots;
  }
  EXPECT_EQ(static_cast<int>(with_log.event_log().size()), slots);
  EXPECT_TRUE(without_log.event_log().empty());
}

// ---------------------------------------------------------------------------
// End-to-end: the env fast path never changes training results.
// ---------------------------------------------------------------------------

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 6;
  config.num_pois = 10;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

core::TrainConfig SmallTrainConfig() {
  core::TrainConfig train;
  train.iterations = 2;
  train.episodes_per_iteration = 2;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 11;
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  // pid-scoped: gtest's TempDir is shared across concurrent test processes.
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(EnvInvarianceTest, TrainingCheckpointBytesIdenticalAcrossEnvPaths) {
  const map::Dataset dataset = map::BuildDataset(map::CampusId::kPurdue, 10);
  struct Case {
    bool spatial_index;
    bool event_log;
    const char* name;
  };
  const Case cases[] = {
      {true, true, "indexed"},
      {false, true, "naive"},
      {true, false, "indexed_nolog"},
  };
  std::vector<std::string> bytes;
  for (const Case& c : cases) {
    env::EnvConfig config = SmallEnvConfig();
    config.use_spatial_index = c.spatial_index;
    config.record_event_log = c.event_log;
    env::ScEnv env(config, dataset, 11);
    core::HiMadrlTrainer trainer(env, SmallTrainConfig());
    for (int i = 0; i < 2; ++i) trainer.TrainIteration();
    const std::string path = TempPath(std::string("einv_") + c.name + ".agsc");
    ASSERT_TRUE(trainer.SaveCheckpoint(path));
    bytes.push_back(ReadFileBytes(path));
    std::remove(path.c_str());
  }
  for (size_t i = 1; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[0], bytes[i])
        << "checkpoint bytes diverge between " << cases[0].name << " and "
        << cases[i].name;
  }
}

// ---------------------------------------------------------------------------
// Zero-allocation stepping.
// ---------------------------------------------------------------------------

TEST(EnvHotPathTest, SteadyStateStepIsAllocationFree) {
  if (!kAllocCounterCompiledIn) {
    GTEST_SKIP() << "allocation counter compiled out (sanitizer build)";
  }
  env::EnvConfig config = TestEnvConfig();
  config.record_event_log = false;  // The log is the one intentional grower.
  env::ScEnv env(config, TestDataset(), 17);

  util::Rng rng(5);
  std::vector<env::UvAction> actions(env.num_agents());
  env::StepResult step;

  auto run_episode = [&] {
    env.Reset(step);
    while (!step.done) {
      for (auto& a : actions) {
        a.raw_direction = rng.Uniform(-1.0, 1.0);
        a.raw_speed = rng.Uniform(-1.0, 1.0);
      }
      env.Step(actions, step);
    }
  };

  run_episode();  // Warm every scratch buffer and the routing caches.
  env.Reset(step);

  const long long before = HeapAllocCount();
  while (!step.done) {
    for (auto& a : actions) {
      a.raw_direction = rng.Uniform(-1.0, 1.0);
      a.raw_speed = rng.Uniform(-1.0, 1.0);
    }
    env.Step(actions, step);
  }
  const long long after = HeapAllocCount();
  EXPECT_EQ(after, before)
      << "steady-state Step allocated " << (after - before)
      << " times; scratch buffers should absorb the whole episode";
}

}  // namespace
}  // namespace agsc
