// Tests for the batched SoA channel kernels (env/channel_batch.{h,cc}):
//  - ISA-equivalence sweep: every dispatch variant (generic/AVX2/AVX-512,
//    clamped to the host) produces gains/SINRs/capacities bit-identical to
//    the scalar ChannelModel oracle, including coincident and near-zero
//    link distances;
//  - the batched env path is lock-step bit-identical to the scalar channel
//    path over whole episodes, and fixed-seed training runs write
//    byte-identical checkpoints across channel paths and ISA variants;
//  - the --env-fast-math tier carries a bounded per-gain relative error, is
//    bit-identical across ISA variants (deterministic), and its
//    action-distribution divergence against the exact tier stays below
//    threshold over a fixed-seed episode sweep;
//  - EnvConfig::Validate rejects non-finite / non-positive channel
//    parameters and fast-math without the batched path;
//  - core/oracle_guard's ChannelSelfCheck passes on the default path and
//    trivially passes on the scalar / fast-math paths.

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "core/oracle_guard.h"
#include "env/channel.h"
#include "env/channel_batch.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "map/geometry.h"
#include "util/rng.h"

namespace agsc {
namespace {

using env::AirGainsBatch;
using env::AirGainsFast;
using env::AirGainSingle;
using env::CapacityBatch;
using env::CapacityBatchFast;
using env::ChannelBatchParams;
using env::ChannelIsa;
using env::ChannelModel;
using env::GroundGainsBatch;
using env::GroundGainsFast;
using env::GroundGainSingle;
using env::InterferencePower;
using env::PoiSoa;
using env::UplinkSinrBatch;
using env::VisibleMask;

/// Restores the process-wide channel ISA selection on scope exit so a
/// failing test cannot leak a forced variant into later tests.
struct ChannelIsaGuard {
  ChannelIsaGuard() : saved(env::ActiveChannelIsa()) {}
  ~ChannelIsaGuard() { env::SetChannelIsa(saved); }
  ChannelIsa saved;
};

/// The ISA levels this host can actually run (requests above the detected
/// capability are clamped by SetChannelIsa, so sweeping the full enum would
/// silently re-test the same variant).
std::vector<ChannelIsa> HostIsaLevels() {
  std::vector<ChannelIsa> levels = {ChannelIsa::kGeneric};
  if (env::DetectedChannelIsa() >= ChannelIsa::kAvx2) {
    levels.push_back(ChannelIsa::kAvx2);
  }
  if (env::DetectedChannelIsa() >= ChannelIsa::kAvx512) {
    levels.push_back(ChannelIsa::kAvx512);
  }
  return levels;
}

/// PoI layout mixing random positions with the adversarial cases: a PoI
/// exactly under the receiver, sub-meter offsets (inside the d >= 1 clamp),
/// points near the visibility-range boundary, and far corners.
std::vector<map::Point2> AdversarialLayout(const map::Point2& rx, int n,
                                           uint64_t seed) {
  util::Rng rng(seed);
  std::vector<map::Point2> pts(static_cast<size_t>(n));
  for (map::Point2& p : pts) {
    p = {rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)};
  }
  pts[0] = rx;                          // Coincident.
  pts[1] = {rx.x + 1e-12, rx.y};        // Denormal-scale offset.
  pts[2] = {rx.x + 0.25, rx.y - 0.25};  // Inside the 1 m clamp.
  pts[3] = {rx.x + 1.0, rx.y};          // Exactly on the clamp boundary.
  pts[4] = {0.0, 0.0};
  pts[5] = {2000.0, 2000.0};
  return pts;
}

double BitCastDiff(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0 ? 0.0 : std::abs(a - b);
}

// ---------------------------------------------------------------------------
// Kernel-level bit-exactness across the ISA sweep.
// ---------------------------------------------------------------------------

TEST(ChannelBatchTest, IsaSweepGainsBitIdenticalToScalarOracle) {
  ChannelIsaGuard guard;
  env::EnvConfig config;
  const ChannelModel model(config);
  const ChannelBatchParams params = ChannelBatchParams::FromConfig(config);
  const map::Point2 rx{777.5, 901.25};
  const int n = 1031;  // Odd, so every vector width has a scalar tail.
  const std::vector<map::Point2> pts = AdversarialLayout(rx, n, 0xC4A77EL);
  PoiSoa soa;
  soa.Build(pts, n);
  std::vector<double> air(n), ground(n);
  const double fading = 1.37;
  for (ChannelIsa isa : HostIsaLevels()) {
    ASSERT_EQ(env::SetChannelIsa(isa), isa);
    AirGainsBatch(params, soa, nullptr, n, rx, config.uav_height, air.data());
    GroundGainsBatch(params, soa, nullptr, n, rx, fading, ground.data());
    for (int i = 0; i < n; ++i) {
      const double air_ref = model.AirLinkGain(pts[i], rx, config.uav_height);
      const double ground_ref = model.GroundLinkGain(pts[i], rx, fading);
      ASSERT_EQ(BitCastDiff(air[i], air_ref), 0.0)
          << env::ChannelIsaName(isa) << " air gain " << i;
      ASSERT_EQ(BitCastDiff(ground[i], ground_ref), 0.0)
          << env::ChannelIsaName(isa) << " ground gain " << i;
    }
    // Indexed (gather) form and the single-link conveniences.
    const std::vector<int> idx = {0, 5, 1, 1030, 2, 512, 3};
    std::vector<double> gathered(idx.size());
    AirGainsBatch(params, soa, idx.data(), static_cast<int>(idx.size()), rx,
                  config.uav_height, gathered.data());
    for (size_t j = 0; j < idx.size(); ++j) {
      ASSERT_EQ(gathered[j], air[idx[j]]) << "indexed air gain " << j;
    }
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(AirGainSingle(params, pts[i], rx, config.uav_height, false),
                air[i]);
      ASSERT_EQ(GroundGainSingle(params, pts[i], rx, fading, false),
                ground[i]);
    }
  }
}

TEST(ChannelBatchTest, IsaSweepSinrCapacityInterferenceBitIdentical) {
  ChannelIsaGuard guard;
  env::EnvConfig config;
  const ChannelModel model(config);
  const ChannelBatchParams params = ChannelBatchParams::FromConfig(config);
  const map::Point2 rx{321.0, 1234.5};
  const int n = 257;
  const std::vector<map::Point2> pts = AdversarialLayout(rx, n, 0x51AEL);
  PoiSoa soa;
  soa.Build(pts, n);
  std::vector<double> gains(n), sinr(n), cap(n);
  std::vector<int> pois(n);
  for (int i = 0; i < n; ++i) pois[i] = i;
  for (ChannelIsa isa : HostIsaLevels()) {
    env::SetChannelIsa(isa);
    AirGainsBatch(params, soa, nullptr, n, rx, config.uav_height,
                  gains.data());
    // Interference: exact scalar accumulation order with the skip slots.
    const double intf = InterferencePower(gains.data(), pois.data(), n,
                                          config.rho_poi_w, 3, 100);
    double ref_intf = 0.0;
    for (int i = 0; i < n; ++i) {
      if (i == 3 || i == 100) continue;
      ref_intf +=
          model.AirLinkGain(pts[i], rx, config.uav_height) * config.rho_poi_w;
    }
    ASSERT_EQ(BitCastDiff(intf, ref_intf), 0.0) << env::ChannelIsaName(isa);

    const double noise = model.NoisePower();
    UplinkSinrBatch(gains.data(), n, config.rho_poi_w, noise, intf,
                    sinr.data());
    CapacityBatch(config.bandwidth_hz, sinr.data(), n, cap.data());
    for (int i = 0; i < n; ++i) {
      const double ref_sinr = gains[i] * config.rho_poi_w / (noise + intf);
      ASSERT_EQ(BitCastDiff(sinr[i], ref_sinr), 0.0) << "sinr " << i;
      ASSERT_EQ(BitCastDiff(cap[i], model.Capacity(sinr[i])), 0.0)
          << "capacity " << i;
    }
  }
}

TEST(ChannelBatchTest, VisibleMaskMatchesScalarPredicate) {
  ChannelIsaGuard guard;
  const map::Point2 pos{1000.0, 1000.0};
  const double range = 700.0;
  const int n = 2048;
  util::Rng rng(0x5150ULL);
  std::vector<map::Point2> pts(static_cast<size_t>(n));
  for (map::Point2& p : pts) {
    // Cluster radii tightly around the range so the guard band is
    // genuinely exercised, not just the cheap compare.
    const double r = range + rng.Uniform(-2.0, 2.0);
    const double a = rng.Uniform(0.0, 2.0 * M_PI);
    p = {pos.x + r * std::cos(a), pos.y + r * std::sin(a)};
  }
  pts[0] = pos;
  pts[1] = {pos.x + range, pos.y};  // Exactly on the boundary.
  PoiSoa soa;
  soa.Build(pts, n);
  std::vector<double> dist(n);
  std::vector<uint8_t> vis(n);
  for (ChannelIsa isa : HostIsaLevels()) {
    env::SetChannelIsa(isa);
    VisibleMask(soa, pos, range, dist.data(), vis.data());
    for (int i = 0; i < n; ++i) {
      const bool ref = map::Distance(pos, pts[i]) <= range;
      ASSERT_EQ(vis[i] != 0, ref)
          << env::ChannelIsaName(isa) << " visibility " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Coincident-position regression (the d -> 0 clamp, scalar AND batched).
// ---------------------------------------------------------------------------

TEST(ChannelBatchTest, CoincidentPositionsProduceFiniteClampedGains) {
  ChannelIsaGuard guard;
  env::EnvConfig config;
  const ChannelModel model(config);
  const ChannelBatchParams params = ChannelBatchParams::FromConfig(config);
  const map::Point2 p{500.0, 500.0};
  // Scalar oracle: a UV exactly on a PoI must clamp the link distance to
  // 1 m, not drive pow(d, -alpha) to infinity.
  const double air = model.AirLinkGain(p, p, config.uav_height);
  const double ground = model.GroundLinkGain(p, p, 1.0);
  EXPECT_TRUE(std::isfinite(air));
  EXPECT_TRUE(std::isfinite(ground));
  EXPECT_LE(ground, 1.0);  // fading * max(d,1)^-alpha2 <= fading.
  // Ground link at d = 0 clamps to exactly d = 1 => gain == fading.
  EXPECT_EQ(model.GroundLinkGain(p, p, 0.75), 0.75);
  // Batched kernels mirror the clamp bit-for-bit on every variant, and a
  // zero-height air link (slant 0) hits the 90-degree elevation branch.
  PoiSoa soa;
  soa.Build({p, {p.x + 0.5, p.y}}, 2);
  std::vector<double> out(2);
  for (ChannelIsa isa : HostIsaLevels()) {
    env::SetChannelIsa(isa);
    AirGainsBatch(params, soa, nullptr, 2, p, 0.0, out.data());
    EXPECT_EQ(out[0], model.AirLinkGain(p, p, 0.0));
    EXPECT_TRUE(std::isfinite(out[0]));
    EXPECT_TRUE(std::isfinite(out[1]));
    GroundGainsBatch(params, soa, nullptr, 2, p, 2.5, out.data());
    EXPECT_EQ(out[0], 2.5);
    EXPECT_TRUE(std::isfinite(out[1]));
    AirGainsFast(params, soa, nullptr, 2, p, 0.0, out.data());
    EXPECT_TRUE(std::isfinite(out[0]));
    GroundGainsFast(params, soa, nullptr, 2, p, 2.5, out.data());
    EXPECT_TRUE(std::isfinite(out[0]));
  }
}

// ---------------------------------------------------------------------------
// Fast-math tier: bounded error + cross-ISA determinism.
// ---------------------------------------------------------------------------

TEST(ChannelBatchTest, FastTierRelativeErrorBounded) {
  ChannelIsaGuard guard;
  env::EnvConfig config;
  const ChannelModel model(config);
  const ChannelBatchParams params = ChannelBatchParams::FromConfig(config);
  const map::Point2 rx{777.5, 901.25};
  const int n = 4099;
  const std::vector<map::Point2> pts = AdversarialLayout(rx, n, 0xFA57L);
  PoiSoa soa;
  soa.Build(pts, n);
  std::vector<double> air(n), ground(n), sinr(n), cap(n);
  constexpr double kBound = 1e-11;  // Kernels deliver ~1e-14; margin for
                                    // future coefficient tweaks.
  for (ChannelIsa isa : HostIsaLevels()) {
    env::SetChannelIsa(isa);
    AirGainsFast(params, soa, nullptr, n, rx, config.uav_height, air.data());
    GroundGainsFast(params, soa, nullptr, n, rx, 1.37, ground.data());
    for (int i = 0; i < n; ++i) {
      const double air_ref = model.AirLinkGain(pts[i], rx, config.uav_height);
      const double ground_ref = model.GroundLinkGain(pts[i], rx, 1.37);
      ASSERT_LT(std::abs(air[i] - air_ref), kBound * air_ref)
          << env::ChannelIsaName(isa) << " air " << i;
      ASSERT_LT(std::abs(ground[i] - ground_ref), kBound * ground_ref)
          << env::ChannelIsaName(isa) << " ground " << i;
    }
    util::Rng rng(7);
    for (int i = 0; i < n; ++i) sinr[i] = rng.Uniform(-0.5, 60.0);
    CapacityBatchFast(config.bandwidth_hz, sinr.data(), n, cap.data());
    for (int i = 0; i < n; ++i) {
      const double ref = model.Capacity(sinr[i]);
      if (ref > 0.0) {
        ASSERT_LT(std::abs(cap[i] - ref), kBound * ref) << "capacity " << i;
      } else {
        ASSERT_EQ(cap[i], 0.0) << "capacity " << i;
      }
    }
  }
}

TEST(ChannelBatchTest, FastTierBitIdenticalAcrossIsaVariants) {
  ChannelIsaGuard guard;
  env::EnvConfig config;
  const ChannelBatchParams params = ChannelBatchParams::FromConfig(config);
  const map::Point2 rx{50.0, 1950.0};
  const int n = 513;
  const std::vector<map::Point2> pts = AdversarialLayout(rx, n, 0xD37L);
  PoiSoa soa;
  soa.Build(pts, n);
  const std::vector<ChannelIsa> levels = HostIsaLevels();
  std::vector<std::vector<double>> air(levels.size(),
                                       std::vector<double>(n));
  std::vector<std::vector<double>> ground(levels.size(),
                                          std::vector<double>(n));
  for (size_t v = 0; v < levels.size(); ++v) {
    env::SetChannelIsa(levels[v]);
    AirGainsFast(params, soa, nullptr, n, rx, config.uav_height,
                 air[v].data());
    GroundGainsFast(params, soa, nullptr, n, rx, 0.8, ground[v].data());
  }
  for (size_t v = 1; v < levels.size(); ++v) {
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(BitCastDiff(air[0][i], air[v][i]), 0.0)
          << "fast air diverges between " << env::ChannelIsaName(levels[0])
          << " and " << env::ChannelIsaName(levels[v]) << " at " << i;
      ASSERT_EQ(BitCastDiff(ground[0][i], ground[v][i]), 0.0)
          << "fast ground diverges at " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Env-level equivalence and the oracle guard.
// ---------------------------------------------------------------------------

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 8;
  config.num_pois = 12;
  config.num_uavs = 2;
  config.num_ugvs = 2;
  return config;
}

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 12));
  return *dataset;
}

TEST(ChannelBatchEnvTest, BatchedEpisodesBitIdenticalToScalarChannel) {
  ChannelIsaGuard guard;
  for (ChannelIsa isa : HostIsaLevels()) {
    env::SetChannelIsa(isa);
    env::ScEnv probe(SmallEnvConfig(), SmallDataset(), 42);
    const core::OracleCheckResult check = core::ChannelSelfCheck(probe, 8);
    EXPECT_TRUE(check.ok) << env::ChannelIsaName(isa) << ": " << check.detail;
  }
}

TEST(ChannelBatchEnvTest, SelfCheckTriviallyPassesOffTheBitExactTier) {
  // Already-scalar env: nothing to compare.
  env::EnvConfig scalar = SmallEnvConfig();
  scalar.use_channel_batch = false;
  env::ScEnv scalar_env(scalar, SmallDataset(), 7);
  EXPECT_TRUE(core::ChannelSelfCheck(scalar_env, 4).ok);
  // Fast-math env: intentionally not bit-comparable, must not be flagged.
  env::EnvConfig fast = SmallEnvConfig();
  fast.env_fast_math = true;
  env::ScEnv fast_env(fast, SmallDataset(), 7);
  EXPECT_TRUE(core::ChannelSelfCheck(fast_env, 4).ok);
}

TEST(ChannelBatchEnvTest, DisableChannelBatchClearsFastMath) {
  env::EnvConfig config = SmallEnvConfig();
  config.env_fast_math = true;
  env::ScEnv e(config, SmallDataset(), 3);
  EXPECT_TRUE(e.config().use_channel_batch);
  EXPECT_TRUE(e.config().env_fast_math);
  e.DisableChannelBatch();
  EXPECT_FALSE(e.config().use_channel_batch);
  EXPECT_FALSE(e.config().env_fast_math);
}

core::TrainConfig SmallTrainConfig() {
  core::TrainConfig train;
  train.iterations = 2;
  train.episodes_per_iteration = 2;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 11;
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" +
         name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(ChannelBatchEnvTest, CheckpointBytesIdenticalAcrossChannelPathsAndIsas) {
  ChannelIsaGuard guard;
  struct Case {
    bool batch;
    ChannelIsa isa;
    std::string name;
  };
  std::vector<Case> cases = {{false, ChannelIsa::kGeneric, "scalar"}};
  for (ChannelIsa isa : HostIsaLevels()) {
    cases.push_back(
        {true, isa, std::string("batched_") + env::ChannelIsaName(isa)});
  }
  std::vector<std::string> bytes;
  for (const Case& c : cases) {
    env::SetChannelIsa(c.isa);
    env::EnvConfig config = SmallEnvConfig();
    config.use_channel_batch = c.batch;
    env::ScEnv e(config, SmallDataset(), 11);
    core::HiMadrlTrainer trainer(e, SmallTrainConfig());
    for (int i = 0; i < 2; ++i) trainer.TrainIteration();
    const std::string path = TempPath("chinv_" + c.name + ".agsc");
    ASSERT_TRUE(trainer.SaveCheckpoint(path));
    bytes.push_back(ReadFileBytes(path));
    std::remove(path.c_str());
  }
  for (size_t i = 1; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[0], bytes[i])
        << "checkpoint bytes diverge between " << cases[0].name << " and "
        << cases[i].name;
  }
}

TEST(ChannelBatchEnvTest, FastMathActionDivergenceBelowThreshold) {
  // Statistical acceptance for the fast tier: train briefly on the exact
  // tier, then run fixed-seed greedy episodes on exact and fast envs and
  // compare the action streams. The per-gain error is ~1e-14, so actions
  // should track closely; the loose bound guards against systematic
  // divergence, not ulp noise.
  env::EnvConfig exact_cfg = SmallEnvConfig();
  exact_cfg.num_timeslots = 20;
  env::EnvConfig fast_cfg = exact_cfg;
  fast_cfg.env_fast_math = true;

  env::ScEnv train_env(exact_cfg, SmallDataset(), 11);
  core::HiMadrlTrainer trainer(train_env, SmallTrainConfig());
  for (int i = 0; i < 2; ++i) trainer.TrainIteration();

  env::ScEnv exact_env(exact_cfg, SmallDataset(), 99);
  env::ScEnv fast_env(fast_cfg, SmallDataset(), 99);
  env::StepResult re = exact_env.Reset();
  env::StepResult rf = fast_env.Reset();
  util::Rng act_rng_e(5), act_rng_f(5);
  double abs_diff_sum = 0.0;
  long samples = 0;
  const int agents = exact_env.num_agents();
  std::vector<env::UvAction> ae(static_cast<size_t>(agents));
  std::vector<env::UvAction> af(static_cast<size_t>(agents));
  while (!re.done) {
    for (int k = 0; k < agents; ++k) {
      ae[k] = trainer.Act(exact_env, k, re.observations[k], act_rng_e, true);
      af[k] = trainer.Act(fast_env, k, rf.observations[k], act_rng_f, true);
      abs_diff_sum += std::abs(ae[k].raw_direction - af[k].raw_direction) +
                      std::abs(ae[k].raw_speed - af[k].raw_speed);
      samples += 2;
    }
    re = exact_env.Step(ae);
    rf = fast_env.Step(af);
  }
  ASSERT_GT(samples, 0);
  const double mean_abs_divergence = abs_diff_sum / samples;
  // Actions live in [-1, 1]; demand the mean divergence stays well under
  // 1% of that scale across the sweep.
  EXPECT_LT(mean_abs_divergence, 0.02) << "fast-math tier shifted the "
                                          "action distribution";
  // The episode outcomes must agree to the same tolerance.
  EXPECT_NEAR(exact_env.EpisodeMetrics().data_collection_ratio,
              fast_env.EpisodeMetrics().data_collection_ratio, 0.02);
}

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

TEST(ChannelBatchConfigTest, ValidateRejectsBadChannelParams) {
  const double kBad[] = {0.0, -1.0, std::nan(""),
                         std::numeric_limits<double>::infinity()};
  auto expect_rejected = [](env::EnvConfig c, const char* what) {
    EXPECT_FALSE(c.Validate().empty()) << what;
  };
  for (double bad : kBad) {
    env::EnvConfig c;
    c.bandwidth_hz = bad;
    expect_rejected(c, "bandwidth_hz");
    c = env::EnvConfig{};
    c.noise_psd = bad;
    expect_rejected(c, "noise_psd");
    c = env::EnvConfig{};
    c.alpha1 = bad;
    expect_rejected(c, "alpha1");
    c = env::EnvConfig{};
    c.alpha2 = bad;
    expect_rejected(c, "alpha2");
    c = env::EnvConfig{};
    c.omega_los = bad;
    expect_rejected(c, "omega_los");
    c = env::EnvConfig{};
    c.beta_los = bad;
    expect_rejected(c, "beta_los");
    c = env::EnvConfig{};
    c.rho_uav_w = bad;
    expect_rejected(c, "rho_uav_w");
    c = env::EnvConfig{};
    c.rho_poi_w = bad;
    expect_rejected(c, "rho_poi_w");
  }
  env::EnvConfig c;
  c.eta_los_db = std::nan("");
  EXPECT_FALSE(c.Validate().empty()) << "eta_los_db";
  c = env::EnvConfig{};
  c.eta_nlos_db = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(c.Validate().empty()) << "eta_nlos_db";
  c = env::EnvConfig{};
  c.use_channel_batch = false;
  c.env_fast_math = true;
  EXPECT_FALSE(c.Validate().empty()) << "fast math without batch";
  c = env::EnvConfig{};
  EXPECT_TRUE(c.Validate().empty()) << "defaults must stay valid";
}

TEST(ChannelBatchConfigTest, IsaNamesAndClampingAreStable) {
  ChannelIsaGuard guard;
  EXPECT_STREQ(env::ChannelIsaName(ChannelIsa::kGeneric), "generic");
  EXPECT_STREQ(env::ChannelIsaName(ChannelIsa::kAvx2), "avx2");
  EXPECT_STREQ(env::ChannelIsaName(ChannelIsa::kAvx512), "avx512");
  // Requests above the host capability clamp to the detected level.
  const ChannelIsa active = env::SetChannelIsa(ChannelIsa::kAvx512);
  EXPECT_LE(static_cast<int>(active),
            static_cast<int>(env::DetectedChannelIsa()));
  EXPECT_EQ(env::SetChannelIsa(ChannelIsa::kGeneric), ChannelIsa::kGeneric);
}

}  // namespace
}  // namespace agsc
