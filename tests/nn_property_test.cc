// Property-style sweeps over the neural substrate: algebraic identities and
// convergence properties that must hold for random shapes, seeds and data
// (parameterized via TEST_P), complementing the example-based tests in
// autograd_test.cc / layers_test.cc.

#include <cmath>

#include <gtest/gtest.h>

#include "core/ppo.h"
#include "nn/distributions.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tests/test_util.h"

namespace agsc::nn {
namespace {

class NnPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{static_cast<uint64_t>(GetParam()) * 2654435761ULL + 1};
};

TEST_P(NnPropertyTest, LogSoftmaxEqualsLogOfSoftmax) {
  const int rows = 1 + static_cast<int>(rng_.UniformInt(uint64_t{6}));
  const int cols = 2 + static_cast<int>(rng_.UniformInt(uint64_t{8}));
  Tensor logits = Tensor::Uniform(rows, cols, rng_, -5.0f, 5.0f);
  const Tensor p = Softmax(Variable::Constant(logits)).value();
  const Tensor logp = LogSoftmax(Variable::Constant(logits)).value();
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(std::log(p[i]), logp[i], 1e-4);
  }
}

TEST_P(NnPropertyTest, SoftmaxInvariantToRowShift) {
  const int cols = 3 + static_cast<int>(rng_.UniformInt(uint64_t{5}));
  Tensor logits = Tensor::Uniform(2, cols, rng_, -2.0f, 2.0f);
  Tensor shifted = logits;
  const float shift = static_cast<float>(rng_.Uniform(-10.0, 10.0));
  for (int c = 0; c < cols; ++c) shifted(0, c) += shift;
  const Tensor p0 = Softmax(Variable::Constant(logits)).value();
  const Tensor p1 = Softmax(Variable::Constant(shifted)).value();
  for (int c = 0; c < cols; ++c) {
    EXPECT_NEAR(p0(0, c), p1(0, c), 1e-5);
  }
}

TEST_P(NnPropertyTest, CrossEntropyBounds) {
  const int classes = 2 + static_cast<int>(rng_.UniformInt(uint64_t{6}));
  const int rows = 4;
  Tensor logits = Tensor::Uniform(rows, classes, rng_, -3.0f, 3.0f);
  std::vector<int> labels(rows);
  for (int& l : labels) {
    l = static_cast<int>(rng_.UniformInt(static_cast<uint64_t>(classes)));
  }
  const float ce =
      SoftmaxCrossEntropy(Variable::Constant(logits), labels).value()[0];
  EXPECT_GE(ce, 0.0f);
  // CE is unbounded above in general but with logits in [-3,3] it is at
  // most log K + 6.
  EXPECT_LE(ce, std::log(static_cast<float>(classes)) + 6.0f);
}

TEST_P(NnPropertyTest, EntropyMaximizedByUniformLogits) {
  const int classes = 2 + static_cast<int>(rng_.UniformInt(uint64_t{6}));
  Tensor random_logits = Tensor::Uniform(1, classes, rng_, -4.0f, 4.0f);
  const float random_entropy =
      SoftmaxEntropy(Variable::Constant(random_logits)).value()[0];
  const float uniform_entropy =
      SoftmaxEntropy(Variable::Constant(Tensor(1, classes))).value()[0];
  EXPECT_LE(random_entropy, uniform_entropy + 1e-5);
  EXPECT_NEAR(uniform_entropy, std::log(static_cast<float>(classes)), 1e-4);
}

TEST_P(NnPropertyTest, MatMulGradientIsLinearInSeed) {
  // Backward with seed 2*G must produce exactly 2x the gradient of seed G.
  Tensor a = Tensor::Uniform(3, 4, rng_, -1.0f, 1.0f);
  Tensor b = Tensor::Uniform(4, 2, rng_, -1.0f, 1.0f);
  Tensor seed = Tensor::Uniform(3, 2, rng_, -1.0f, 1.0f);
  auto grad_with_seed = [&](float scale) {
    Variable va = Variable::Parameter(a);
    Variable prod = MatMul(va, Variable::Constant(b));
    Tensor s = seed;
    s.Scale(scale);
    prod.Backward(s);
    return va.grad();
  };
  const Tensor g1 = grad_with_seed(1.0f);
  const Tensor g2 = grad_with_seed(2.0f);
  for (int i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g2[i], 2.0f * g1[i], 1e-4);
  }
}

TEST_P(NnPropertyTest, RandomMlpPassesGradientCheck) {
  const int in = 2 + static_cast<int>(rng_.UniformInt(uint64_t{3}));
  const int hidden = 3 + static_cast<int>(rng_.UniformInt(uint64_t{4}));
  Mlp mlp({in, hidden, 1}, rng_);
  agsc::testing::CheckGradient(
      [&](const Variable& x) { return Mean(Square(mlp.Forward(x))); },
      Tensor::Uniform(3, in, rng_, -1.0f, 1.0f));
}

TEST_P(NnPropertyTest, AdamSolvesRandomLeastSquares) {
  const int dim = 2 + static_cast<int>(rng_.UniformInt(uint64_t{4}));
  Tensor target = Tensor::Uniform(1, dim, rng_, -2.0f, 2.0f);
  Variable x = Variable::Parameter(Tensor(1, dim));
  Adam opt({x}, 0.05f);
  for (int i = 0; i < 800; ++i) {
    opt.ZeroGrad();
    MseLoss(x, target).Backward();
    opt.Step();
  }
  for (int c = 0; c < dim; ++c) {
    EXPECT_NEAR(x.value()(0, c), target(0, c), 5e-2);
  }
}

TEST_P(NnPropertyTest, GaussianLogProbIntegratesToDensityRatio) {
  // For two actions a1, a2: logp(a1) - logp(a2) must equal the closed-form
  // quadratic difference. Randomized mean/std.
  const int dims = 1 + static_cast<int>(rng_.UniformInt(uint64_t{3}));
  Tensor mean = Tensor::Uniform(1, dims, rng_, -1.0f, 1.0f);
  Tensor log_std = Tensor::Uniform(1, dims, rng_, -1.0f, 0.5f);
  DiagGaussian dist(Variable::Constant(mean), Variable::Constant(log_std));
  Tensor a1 = Tensor::Uniform(1, dims, rng_, -2.0f, 2.0f);
  Tensor a2 = Tensor::Uniform(1, dims, rng_, -2.0f, 2.0f);
  const float diff =
      dist.LogProb(a1).value()[0] - dist.LogProb(a2).value()[0];
  float expected = 0.0f;
  for (int c = 0; c < dims; ++c) {
    const float inv_var = std::exp(-2.0f * log_std(0, c));
    const float z1 = a1(0, c) - mean(0, c);
    const float z2 = a2(0, c) - mean(0, c);
    expected += -0.5f * inv_var * (z1 * z1 - z2 * z2);
  }
  EXPECT_NEAR(diff, expected, 1e-3);
}

TEST_P(NnPropertyTest, PpoSurrogateIdentityAtEqualPolicies) {
  const int n = 4 + static_cast<int>(rng_.UniformInt(uint64_t{12}));
  Tensor logp(n, 1);
  std::vector<float> logp_old(n);
  std::vector<float> adv(n);
  double adv_mean = 0.0;
  for (int i = 0; i < n; ++i) {
    logp(i, 0) = static_cast<float>(rng_.Uniform(-3.0, 0.0));
    logp_old[i] = logp(i, 0);
    adv[i] = static_cast<float>(rng_.Gaussian());
    adv_mean += adv[i];
  }
  const core::AdvantageResult unused{};
  (void)unused;
  const float j = core::PpoSurrogate(Variable::Constant(logp), logp_old,
                                     adv, 0.2f)
                      .value()[0];
  EXPECT_NEAR(j, static_cast<float>(adv_mean / n), 1e-4);
}

TEST_P(NnPropertyTest, ClipGradNormIsIdempotent) {
  Mlp mlp({4, 8, 2}, rng_);
  Mean(Square(mlp.Forward(Tensor::Uniform(8, 4, rng_, -2.0f, 2.0f))))
      .Backward();
  std::vector<Variable> params = mlp.Parameters();
  ClipGradNorm(params, 0.1f);
  const float norm_after = ClipGradNorm(params, 0.1f);
  EXPECT_LE(norm_after, 0.1f + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace agsc::nn
