#include <cmath>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"

namespace agsc::core {
namespace {

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 20));
  return *dataset;
}

env::EnvConfig TinyEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 10;
  config.num_pois = 20;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

TrainConfig TinyTrainConfig() {
  TrainConfig config;
  config.iterations = 2;
  config.episodes_per_iteration = 1;
  config.policy_epochs = 2;
  config.lcf_epochs = 1;
  config.minibatch = 16;
  config.net.hidden = {32, 16};
  config.eoi.hidden = {16};
  config.eoi.epochs = 1;
  config.seed = 11;
  return config;
}

TEST(HiMadrlTest, ConstructionDefaults) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 1);
  HiMadrlTrainer trainer(env, TinyTrainConfig());
  ASSERT_EQ(trainer.lcfs().size(), 2u);
  // Algorithm 1 Line 3: phi = 0, chi = 45.
  EXPECT_DOUBLE_EQ(trainer.lcfs()[0].phi_deg, 0.0);
  EXPECT_DOUBLE_EQ(trainer.lcfs()[0].chi_deg, 45.0);
  EXPECT_GT(trainer.TotalParameterCount(), 1000);
  EXPECT_GT(trainer.ActorParameterBytes(), 0);
}

TEST(HiMadrlTest, TrainIterationProducesFiniteStats) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 2);
  HiMadrlTrainer trainer(env, TinyTrainConfig());
  const IterationStats stats = trainer.TrainIteration();
  EXPECT_EQ(stats.iteration, 0);
  EXPECT_TRUE(std::isfinite(stats.mean_reward_ext));
  EXPECT_TRUE(std::isfinite(stats.mean_reward_int));
  EXPECT_TRUE(std::isfinite(stats.eoi_loss));
  EXPECT_TRUE(std::isfinite(stats.actor_grad_norm));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
  EXPECT_GT(stats.actor_grad_norm, 0.0f);
  EXPECT_GT(stats.total_env_steps, 0);
  // Intrinsic reward is a probability mass -> within [0, 1].
  EXPECT_GE(stats.mean_reward_int, 0.0f);
  EXPECT_LE(stats.mean_reward_int, 1.0f);
}

TEST(HiMadrlTest, LcfsStayInValidRangeAfterTraining) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 3);
  HiMadrlTrainer trainer(env, TinyTrainConfig());
  trainer.Train(3);
  for (const Lcf& lcf : trainer.lcfs()) {
    EXPECT_GE(lcf.phi_deg, 0.0);
    EXPECT_LE(lcf.phi_deg, 90.0);
    EXPECT_GE(lcf.chi_deg, 0.0);
    EXPECT_LE(lcf.chi_deg, 90.0);
  }
  EXPECT_EQ(trainer.total_env_steps(), 3L * 1 * 10 * 2);
}

TEST(HiMadrlTest, ActIsDeterministicInEvalMode) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 4);
  HiMadrlTrainer trainer(env, TinyTrainConfig());
  const env::StepResult r = env.Reset();
  util::Rng rng_a(1), rng_b(99);
  const env::UvAction a =
      trainer.Act(env, 0, r.observations[0], rng_a, true);
  const env::UvAction b =
      trainer.Act(env, 0, r.observations[0], rng_b, true);
  EXPECT_EQ(a.raw_direction, b.raw_direction);
  EXPECT_EQ(a.raw_speed, b.raw_speed);
  // Stochastic mode varies.
  const env::UvAction c =
      trainer.Act(env, 0, r.observations[0], rng_a, false);
  const env::UvAction d =
      trainer.Act(env, 0, r.observations[0], rng_a, false);
  EXPECT_NE(c.raw_direction, d.raw_direction);
}

TEST(HiMadrlTest, ActionsWithinTanhBounds) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 5);
  HiMadrlTrainer trainer(env, TinyTrainConfig());
  const env::StepResult r = env.Reset();
  util::Rng rng(1);
  const env::UvAction a =
      trainer.Act(env, 0, r.observations[0], rng, true);
  EXPECT_GE(a.raw_direction, -1.0);
  EXPECT_LE(a.raw_direction, 1.0);
  EXPECT_GE(a.raw_speed, -1.0);
  EXPECT_LE(a.raw_speed, 1.0);
}

TEST(HiMadrlTest, AblationVariantsTrain) {
  // Every Table VI configuration must run without error.
  for (const auto& [use_eoi, use_copo] :
       std::vector<std::pair<bool, bool>>{
           {true, true}, {false, true}, {true, false}, {false, false}}) {
    env::ScEnv env(TinyEnvConfig(), SmallDataset(), 6);
    TrainConfig config = TinyTrainConfig();
    config.use_eoi = use_eoi;
    config.use_copo = use_copo;
    HiMadrlTrainer trainer(env, config);
    const IterationStats stats = trainer.TrainIteration();
    EXPECT_TRUE(std::isfinite(stats.actor_grad_norm));
    if (!use_eoi) {
      EXPECT_EQ(stats.mean_reward_int, 0.0f);
    }
  }
}

TEST(HiMadrlTest, PlainCopoVariantTrains) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 7);
  TrainConfig config = TinyTrainConfig();
  config.hetero_copo = false;  // h/i-MADRL(CoPO) baseline.
  HiMadrlTrainer trainer(env, config);
  trainer.TrainIteration();
  // Plain CoPO never touches chi.
  EXPECT_DOUBLE_EQ(trainer.lcfs()[0].chi_deg, 45.0);
}

TEST(HiMadrlTest, SharedParametersVariantTrains) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 8);
  TrainConfig config = TinyTrainConfig();
  config.share_params = true;
  HiMadrlTrainer trainer(env, config);
  const int shared_params = trainer.TotalParameterCount();
  trainer.TrainIteration();
  // Compared with unshared nets, SP should have fewer parameters overall.
  env::ScEnv env2(TinyEnvConfig(), SmallDataset(), 8);
  TrainConfig unshared = TinyTrainConfig();
  HiMadrlTrainer trainer2(env2, unshared);
  EXPECT_LT(shared_params, trainer2.TotalParameterCount());
}

TEST(HiMadrlTest, CentralizedCriticAndMappoVariantsTrain) {
  for (const bool cc : {true, false}) {
    env::ScEnv env(TinyEnvConfig(), SmallDataset(), 9);
    TrainConfig config = TinyTrainConfig();
    config.base = BaseAlgo::kMappo;
    config.centralized_critic = cc;
    HiMadrlTrainer trainer(env, config);
    const IterationStats stats = trainer.TrainIteration();
    EXPECT_TRUE(std::isfinite(stats.value_loss));
  }
}

TEST(HiMadrlTest, OmegaInAnnealing) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 10);
  TrainConfig config = TinyTrainConfig();
  config.iterations = 5;
  config.omega_in = 0.01f;
  config.omega_in_final = 0.001f;
  HiMadrlTrainer trainer(env, config);
  EXPECT_NEAR(trainer.CurrentOmegaIn(), 0.01f, 1e-6);
  trainer.Train(4);
  EXPECT_LT(trainer.CurrentOmegaIn(), 0.01f);
  trainer.TrainIteration();
  EXPECT_NEAR(trainer.CurrentOmegaIn(), 0.001f, 1e-6);
}

TEST(HiMadrlTest, GaeVariantTrains) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 12);
  TrainConfig config = TinyTrainConfig();
  config.gae_lambda = 0.95f;
  HiMadrlTrainer trainer(env, config);
  const IterationStats stats = trainer.TrainIteration();
  EXPECT_TRUE(std::isfinite(stats.actor_grad_norm));
}

TEST(HiMadrlTest, DeterministicTrainingGivenSeed) {
  env::ScEnv env_a(TinyEnvConfig(), SmallDataset(), 13);
  env::ScEnv env_b(TinyEnvConfig(), SmallDataset(), 13);
  HiMadrlTrainer a(env_a, TinyTrainConfig());
  HiMadrlTrainer b(env_b, TinyTrainConfig());
  const IterationStats sa = a.TrainIteration();
  const IterationStats sb = b.TrainIteration();
  EXPECT_EQ(sa.mean_reward_ext, sb.mean_reward_ext);
  EXPECT_EQ(sa.actor_grad_norm, sb.actor_grad_norm);
  EXPECT_EQ(a.lcfs()[0].phi_deg, b.lcfs()[0].phi_deg);
}

}  // namespace
}  // namespace agsc::core
