// Tests for the long-run training supervisor layer: the cooperative
// shutdown flag, the exit-code taxonomy, bounded retry with exponential
// backoff (including the retrying atomic file write), the thread-safe
// fault injector, the ParallelFor watchdog, the VecSampler stop/deadline
// hooks, the oracle self-checks, and the trainer-level stop/divergence
// supervision.

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "core/oracle_guard.h"
#include "core/rollout.h"
#include "core/vec_sampler.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "util/exit_codes.h"
#include "util/fault_inject.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/shutdown.h"
#include "util/thread_pool.h"

namespace agsc {
namespace {

namespace fs = std::filesystem;

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 10));
  return *dataset;
}

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 6;
  config.num_pois = 10;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

core::TrainConfig SmallTrainConfig() {
  core::TrainConfig train;
  train.iterations = 2;
  train.episodes_per_iteration = 1;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 11;
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  // pid-scoped: gtest's TempDir is shared across concurrently running test
  // processes (ctest -j), and fixed names collide.
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Clears injected faults on scope entry and exit so tests never leak
/// injector state into each other.
struct FaultInjectorGuard {
  FaultInjectorGuard() { util::FaultInjector::Instance().Reset(); }
  ~FaultInjectorGuard() { util::FaultInjector::Instance().Reset(); }
};

/// Clears the cooperative-shutdown flag on scope entry and exit.
struct ShutdownGuard {
  ShutdownGuard() { util::ResetShutdownForTest(); }
  ~ShutdownGuard() { util::ResetShutdownForTest(); }
};

/// A policy-free BatchActFn (same shape as the sampler tests): each row's
/// action is a pure function of that row's private stream.
void DummyAct(int /*k*/, const std::vector<const std::vector<float>*>& rows,
              const std::vector<util::Rng*>& rngs,
              std::vector<std::array<float, 2>>& actions_out,
              std::vector<float>& logps_out) {
  ASSERT_EQ(rows.size(), rngs.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    actions_out[i] = {static_cast<float>(rngs[i]->Gaussian()),
                      static_cast<float>(rngs[i]->Gaussian())};
    logps_out[i] = 0.0f;
  }
}

// ---------------------------------------------------------------------------
// Exit-code taxonomy.
// ---------------------------------------------------------------------------

TEST(ExitCodeTest, StableValues) {
  // The taxonomy is a CLI contract; renumbering breaks supervisors.
  EXPECT_EQ(util::kExitOk, 0);
  EXPECT_EQ(util::kExitUsage, 2);
  EXPECT_EQ(util::kExitConfig, 3);
  EXPECT_EQ(util::kExitIoError, 4);
  EXPECT_EQ(util::kExitResumeMismatch, 5);
  EXPECT_EQ(util::kExitDiverged, 6);
  EXPECT_EQ(util::kExitWatchdogTimeout, 7);
  EXPECT_EQ(util::kExitSignalStop, 8);
  EXPECT_EQ(util::kExitInterruptedAbort, 9);
}

TEST(ExitCodeTest, Names) {
  EXPECT_STREQ(util::ExitCodeName(util::kExitOk), "ok");
  EXPECT_STREQ(util::ExitCodeName(util::kExitUsage), "usage-error");
  EXPECT_STREQ(util::ExitCodeName(util::kExitConfig), "config-error");
  EXPECT_STREQ(util::ExitCodeName(util::kExitIoError), "io-error");
  EXPECT_STREQ(util::ExitCodeName(util::kExitResumeMismatch),
               "resume-mismatch");
  EXPECT_STREQ(util::ExitCodeName(util::kExitDiverged), "diverged");
  EXPECT_STREQ(util::ExitCodeName(util::kExitWatchdogTimeout),
               "watchdog-timeout");
  EXPECT_STREQ(util::ExitCodeName(util::kExitSignalStop), "signal-stop");
  EXPECT_STREQ(util::ExitCodeName(util::kExitInterruptedAbort),
               "interrupted-abort");
  EXPECT_STREQ(util::ExitCodeName(42), "unknown");
  EXPECT_STREQ(util::ExitCodeName(-1), "unknown");
}

// ---------------------------------------------------------------------------
// Cooperative shutdown flag.
// ---------------------------------------------------------------------------

TEST(ShutdownTest, FlagLifecycle) {
  ShutdownGuard guard;
  EXPECT_FALSE(util::ShutdownRequested());
  EXPECT_EQ(util::ShutdownSignal(), 0);
  util::RequestShutdown();
  EXPECT_TRUE(util::ShutdownRequested());
  EXPECT_NE(util::ShutdownSignal(), 0);
  util::ResetShutdownForTest();
  EXPECT_FALSE(util::ShutdownRequested());
  EXPECT_EQ(util::ShutdownSignal(), 0);
}

// ---------------------------------------------------------------------------
// Retry with exponential backoff.
// ---------------------------------------------------------------------------

TEST(RetryTest, BackoffSequenceIsExponentialAndCapped) {
  util::RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 4;
  policy.max_backoff_ms = 100;
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1), 0.0);  // First attempt never sleeps.
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3), 40.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(4), 100.0);  // 160 capped to 100.
  EXPECT_DOUBLE_EQ(policy.BackoffMs(5), 100.0);
}

TEST(RetryTest, FirstAttemptSuccessDoesNotSleep) {
  util::RetryPolicy policy;
  std::vector<double> sleeps;
  int attempts = 0;
  const bool ok = util::RetryWithBackoff(
      policy, [] { return true; },
      [&](double ms) { sleeps.push_back(ms); }, &attempts);
  EXPECT_TRUE(ok);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryTest, TransientFailureRecoversWithBackoff) {
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 5;
  policy.backoff_multiplier = 2;
  std::vector<double> sleeps;
  int attempts = 0;
  int calls = 0;
  const bool ok = util::RetryWithBackoff(
      policy, [&] { return ++calls >= 3; },
      [&](double ms) { sleeps.push_back(ms); }, &attempts);
  EXPECT_TRUE(ok);
  EXPECT_EQ(attempts, 3);
  ASSERT_EQ(sleeps.size(), 2u);  // Before attempts 2 and 3.
  EXPECT_DOUBLE_EQ(sleeps[0], 5.0);
  EXPECT_DOUBLE_EQ(sleeps[1], 10.0);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  int attempts = 0;
  int calls = 0;
  const bool ok = util::RetryWithBackoff(
      policy,
      [&] {
        ++calls;
        return false;
      },
      [](double) {}, &attempts);
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, AtomicWriteRetryAbsorbsTransientFault) {
  FaultInjectorGuard guard;
  const std::string path = TempPath("retry_transient.bin");
  util::FaultInjector::Config config;
  config.fail_write = 1;  // Only the first write attempt fails.
  config.fail_write_count = 1;
  util::FaultInjector::Instance().set_config(config);

  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 0;  // Keep the test instant.
  EXPECT_TRUE(util::AtomicWriteFileRetry(path, "payload", policy));
  EXPECT_EQ(ReadFileBytes(path), "payload");
  std::remove(path.c_str());
}

TEST(RetryTest, AtomicWriteRetryGivesUpOnPersistentFault) {
  FaultInjectorGuard guard;
  const std::string path = TempPath("retry_persistent.bin");
  ASSERT_TRUE(util::AtomicWriteFile(path, "old"));

  util::FaultInjector::Config config;
  config.fail_write = 1;  // set_config resets counters: every write fails.
  config.fail_write_count = 100;  // Outlasts any sane retry budget.
  util::FaultInjector::Instance().set_config(config);

  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 0;
  EXPECT_FALSE(util::AtomicWriteFileRetry(path, "new", policy));
  util::FaultInjector::Instance().Reset();
  // The destination is untouched by the failed attempts.
  EXPECT_EQ(ReadFileBytes(path), "old");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Thread-safe fault injector.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, ConcurrentEntryPointsCountExactly) {
  FaultInjectorGuard guard;
  util::FaultInjector::Config config;
  config.fail_write = 5;  // Exactly one of the concurrent writes fails.
  config.fail_write_count = 1;
  config.nan_loss = 7;  // Exactly one of the concurrent losses is poisoned.
  config.stall_task = 3;  // Exactly one task is told to stall.
  config.stall_ms = 1;
  util::FaultInjector::Instance().set_config(config);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 4;
  std::atomic<int> failed_writes{0};
  std::atomic<int> poisoned{0};
  std::atomic<long> stall_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        std::string bytes = "x";
        if (!util::FaultInjector::Instance().OnWrite(bytes)) {
          failed_writes.fetch_add(1);
        }
        if (util::FaultInjector::Instance().PoisonLossNow()) {
          poisoned.fetch_add(1);
        }
        stall_total.fetch_add(util::FaultInjector::Instance().NextStallMs());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Each counter advanced exactly kThreads * kCallsPerThread times and each
  // armed fault fired exactly once — no lost or duplicated updates.
  EXPECT_EQ(util::FaultInjector::Instance().write_count(),
            kThreads * kCallsPerThread);
  EXPECT_EQ(failed_writes.load(), 1);
  EXPECT_EQ(poisoned.load(), 1);
  EXPECT_EQ(stall_total.load(), 1);
}

// ---------------------------------------------------------------------------
// ParallelFor watchdog.
// ---------------------------------------------------------------------------

TEST(WatchdogTest, FastBatchMeetsDeadline) {
  std::atomic<int> ran{0};
  util::ThreadPool pool(2);
  pool.ParallelFor(
      8, [&](int) { ran.fetch_add(1); }, /*deadline_ms=*/5000);
  EXPECT_EQ(ran.load(), 8);
}

TEST(WatchdogTest, ZeroDeadlineMeansNoWatchdog) {
  std::atomic<int> ran{0};
  util::ThreadPool pool(2);
  pool.ParallelFor(
      4,
      [&](int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ran.fetch_add(1);
      },
      /*deadline_ms=*/0);
  EXPECT_EQ(ran.load(), 4);
}

TEST(WatchdogTest, HungTaskThrowsStructuredTimeout) {
  // Declared before the pool so they outlive the pool-destructor join that
  // waits for the still-sleeping task (the documented safety contract).
  std::atomic<int> ran{0};
  util::ThreadPool pool(2);
  try {
    pool.ParallelFor(
        2,
        [&](int i) {
          if (i == 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(400));
          }
          ran.fetch_add(1);
        },
        /*deadline_ms=*/50);
    FAIL() << "expected WatchdogTimeoutError";
  } catch (const util::WatchdogTimeoutError& e) {
    EXPECT_EQ(e.task_index(), 1);
    EXPECT_EQ(e.deadline_ms(), 50);
    if (e.task_started()) {
      EXPECT_GE(e.elapsed_ms(), 0);
    }
    EXPECT_NE(std::string(e.what()).find("task 1"), std::string::npos);
  }
}

TEST(WatchdogTest, TaskExceptionStillPropagatesUnderDeadline) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(
          4,
          [&](int i) {
            if (i == 2) throw std::runtime_error("task boom");
          },
          /*deadline_ms=*/5000),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// VecSampler stop check and step deadline.
// ---------------------------------------------------------------------------

TEST(SamplerSupervisionTest, StopCheckInterruptsCollect) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  core::VecSampler sampler(env, rng, 2, 11);
  // Let the first timeslot run, then request a stop: Collect must throw at
  // the next boundary and discard the partial experience.
  int polls = 0;
  sampler.set_stop_check([&] { return ++polls > 1; });
  core::MultiAgentBuffer buffer(env.num_agents());
  std::vector<env::Metrics> metrics;
  EXPECT_THROW(sampler.Collect(2, DummyAct, buffer, metrics),
               util::InterruptedError);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(metrics.empty());
}

TEST(SamplerSupervisionTest, StalledWorkerTripsStepDeadline) {
  FaultInjectorGuard guard;
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  core::VecSampler sampler(env, rng, 2, 11);
  sampler.set_step_deadline_ms(100);
  util::FaultInjector::Config config;
  config.stall_task = 1;  // First guarded worker step hangs...
  config.stall_ms = 1500;  // ...well past the 100 ms deadline.
  util::FaultInjector::Instance().set_config(config);

  core::MultiAgentBuffer buffer(env.num_agents());
  std::vector<env::Metrics> metrics;
  try {
    sampler.Collect(2, DummyAct, buffer, metrics);
    FAIL() << "expected WatchdogTimeoutError";
  } catch (const util::WatchdogTimeoutError& e) {
    // The sampler annotates the pool's error with rollout context.
    const std::string what = e.what();
    EXPECT_NE(what.find("worker"), std::string::npos) << what;
    EXPECT_EQ(e.deadline_ms(), 100);
  }
  // Destruction is safe: the pool (declared last in VecSampler) joins the
  // straggler before the worker environments are destroyed.
}

// ---------------------------------------------------------------------------
// Oracle self-checks.
// ---------------------------------------------------------------------------

TEST(OracleGuardTest, NnKernelSelfCheckPassesOnHealthyKernels) {
  const core::OracleCheckResult result = core::NnKernelSelfCheck();
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(OracleGuardTest, EnvSelfCheckPassesOnHealthyIndex) {
  env::EnvConfig config = SmallEnvConfig();
  config.use_spatial_index = true;
  env::ScEnv env(config, SmallDataset(), 11);
  const core::OracleCheckResult result = core::EnvSelfCheck(env, 6);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(OracleGuardTest, EnvSelfCheckTriviallyPassesOnNaivePath) {
  env::EnvConfig config = SmallEnvConfig();
  config.use_spatial_index = false;
  env::ScEnv env(config, SmallDataset(), 11);
  EXPECT_TRUE(core::EnvSelfCheck(env, 6).ok);
}

TEST(OracleGuardTest, EnvSelfCheckDoesNotMutateTheEnv) {
  env::EnvConfig config = SmallEnvConfig();
  config.use_spatial_index = true;
  env::ScEnv env(config, SmallDataset(), 11);
  env::StepResult before, after;
  {
    env::ScEnv probe(env);
    probe.Reset(before);
  }
  ASSERT_TRUE(core::EnvSelfCheck(env, 4).ok);
  {
    env::ScEnv probe(env);
    probe.Reset(after);
  }
  // The check ran on copies; env's own RNG state never advanced.
  EXPECT_EQ(before.state, after.state);
  EXPECT_EQ(before.observations, after.observations);
}

// ---------------------------------------------------------------------------
// Trainer-level supervision.
// ---------------------------------------------------------------------------

TEST(TrainerSupervisionTest, StopCheckFlushesFinalCheckpointAndThrows) {
  ShutdownGuard shutdown_guard;
  const std::string dir = TempPath("stop_flush_ckpt");
  fs::remove_all(dir);
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  core::TrainConfig train = SmallTrainConfig();
  train.iterations = 8;
  train.checkpoint_dir = dir;
  train.checkpoint_every = 100;  // Periodic checkpoints never fire on their own.
  // The stop check is polled at iteration boundaries and at every sampling
  // timeslot; 20 polls lands mid-training (past iteration 0, well before
  // iteration 8 finishes).
  int polls = 0;
  train.stop_check = [&] { return ++polls > 20; };
  core::HiMadrlTrainer trainer(env, train);
  EXPECT_THROW(trainer.Train(), util::InterruptedError);
  EXPECT_GE(trainer.iteration(), 1);
  EXPECT_FALSE(trainer.stats_history().empty());

  // The final flush left a loadable checkpoint at the stop boundary.
  env::ScEnv env2(SmallEnvConfig(), SmallDataset(), 11);
  core::TrainConfig train2 = SmallTrainConfig();
  core::HiMadrlTrainer resumed(env2, train2);
  EXPECT_TRUE(resumed.LoadLatestCheckpoint(dir));
  EXPECT_EQ(resumed.iteration(), trainer.iteration());
  fs::remove_all(dir);
}

TEST(TrainerSupervisionTest, PersistentNanLossExhaustsBackoffBudget) {
  FaultInjectorGuard guard;
  const std::string dir = TempPath("diverged_ckpt");
  fs::remove_all(dir);
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  core::TrainConfig train = SmallTrainConfig();
  train.iterations = 32;  // Upper bound; divergence aborts far earlier.
  train.anomaly_backoff_after = 2;
  train.max_lr_backoffs = 1;
  train.checkpoint_dir = dir;
  train.checkpoint_every = 100;
  core::HiMadrlTrainer trainer(env, train);

  util::FaultInjector::Config config;
  config.nan_loss_every = 1;  // Every guarded loss is NaN: unrecoverable.
  util::FaultInjector::Instance().set_config(config);
  EXPECT_THROW(trainer.Train(), core::TrainingDiverged);
  util::FaultInjector::Instance().Reset();
  EXPECT_EQ(trainer.lr_backoff_count(), 1);

  // The give-up path still flushed an inspectable/resumable checkpoint.
  env::ScEnv env2(SmallEnvConfig(), SmallDataset(), 11);
  core::TrainConfig train2 = SmallTrainConfig();
  core::HiMadrlTrainer resumed(env2, train2);
  EXPECT_TRUE(resumed.LoadLatestCheckpoint(dir));
  EXPECT_EQ(resumed.lr_backoff_count(), 1);
  fs::remove_all(dir);
}

TEST(TrainerSupervisionTest, OracleChecksRunCleanAndLeaveFastPathsOn) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  core::TrainConfig train = SmallTrainConfig();
  train.iterations = 2;
  train.oracle_check_every = 1;
  train.oracle_check_steps = 4;
  core::HiMadrlTrainer trainer(env, train);
  const std::vector<core::IterationStats> stats = trainer.Train();
  ASSERT_EQ(stats.size(), 2u);
  for (const core::IterationStats& s : stats) {
    // Healthy kernels and a healthy index: no downgrade recorded.
    EXPECT_FALSE(s.env_oracle_fallback);
    EXPECT_FALSE(s.nn_oracle_fallback);
  }
  EXPECT_FALSE(trainer.env_oracle_fallback());
  EXPECT_FALSE(trainer.nn_oracle_fallback());
}

}  // namespace
}  // namespace agsc
