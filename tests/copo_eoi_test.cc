#include <cmath>

#include <gtest/gtest.h>

#include "core/copo.h"
#include "core/eoi.h"
#include "util/rng.h"

namespace agsc::core {
namespace {

TEST(LcfTest, DefaultsMatchAlgorithmOne) {
  Lcf lcf;
  EXPECT_DOUBLE_EQ(lcf.phi_deg, 0.0);
  EXPECT_DOUBLE_EQ(lcf.chi_deg, 45.0);
}

TEST(LcfTest, ClampToRange) {
  Lcf lcf;
  lcf.phi_deg = -10.0;
  lcf.chi_deg = 120.0;
  lcf.ClampToRange();
  EXPECT_DOUBLE_EQ(lcf.phi_deg, 0.0);
  EXPECT_DOUBLE_EQ(lcf.chi_deg, 90.0);
}

TEST(CoopAdvantageTest, SelfishLimitRecoversOwnAdvantage) {
  Lcf lcf;
  lcf.phi_deg = 0.0;  // cos(0) = 1, sin(0) = 0.
  EXPECT_NEAR(CoopAdvantage(2.5, -100.0, 100.0, lcf), 2.5, 1e-12);
}

TEST(CoopAdvantageTest, FullyCooperativeHeterogeneousLimit) {
  Lcf lcf;
  lcf.phi_deg = 90.0;
  lcf.chi_deg = 0.0;  // All attention on HE neighbors.
  EXPECT_NEAR(CoopAdvantage(5.0, 3.0, -7.0, lcf), 3.0, 1e-12);
  lcf.chi_deg = 90.0;  // All attention on HO neighbors.
  EXPECT_NEAR(CoopAdvantage(5.0, 3.0, -7.0, lcf), -7.0, 1e-12);
}

TEST(CoopAdvantageTest, MatchesEquation27) {
  Lcf lcf;
  lcf.phi_deg = 30.0;
  lcf.chi_deg = 60.0;
  const double a = 1.0, he = 2.0, ho = 3.0;
  const double expected =
      a * std::cos(M_PI / 6.0) +
      (he * std::cos(M_PI / 3.0) + ho * std::sin(M_PI / 3.0)) *
          std::sin(M_PI / 6.0);
  EXPECT_NEAR(CoopAdvantage(a, he, ho, lcf), expected, 1e-12);
}

TEST(CoopAdvantageTest, DerivativesMatchFiniteDifference) {
  Lcf lcf;
  lcf.phi_deg = 37.0;
  lcf.chi_deg = 22.0;
  const double a = 1.3, he = -0.7, ho = 2.1;
  const double eps_deg = 1e-4;
  Lcf plus = lcf, minus = lcf;
  plus.phi_deg += eps_deg;
  minus.phi_deg -= eps_deg;
  const double dphi_numeric =
      (CoopAdvantage(a, he, ho, plus) - CoopAdvantage(a, he, ho, minus)) /
      (2.0 * eps_deg * M_PI / 180.0);
  EXPECT_NEAR(CoopAdvantageDPhi(a, he, ho, lcf), dphi_numeric, 1e-6);
  plus = minus = lcf;
  plus.chi_deg += eps_deg;
  minus.chi_deg -= eps_deg;
  const double dchi_numeric =
      (CoopAdvantage(a, he, ho, plus) - CoopAdvantage(a, he, ho, minus)) /
      (2.0 * eps_deg * M_PI / 180.0);
  EXPECT_NEAR(CoopAdvantageDChi(a, he, ho, lcf), dchi_numeric, 1e-6);
}

TEST(CoopAdvantageTest, PlainVariantAndDerivative) {
  Lcf lcf;
  lcf.phi_deg = 45.0;
  const double expected =
      2.0 * std::cos(M_PI / 4.0) + 3.0 * std::sin(M_PI / 4.0);
  EXPECT_NEAR(CoopAdvantagePlain(2.0, 3.0, lcf), expected, 1e-12);
  const double eps_deg = 1e-4;
  Lcf plus = lcf, minus = lcf;
  plus.phi_deg += eps_deg;
  minus.phi_deg -= eps_deg;
  const double numeric =
      (CoopAdvantagePlain(2.0, 3.0, plus) -
       CoopAdvantagePlain(2.0, 3.0, minus)) /
      (2.0 * eps_deg * M_PI / 180.0);
  EXPECT_NEAR(CoopAdvantagePlainDPhi(2.0, 3.0, lcf), numeric, 1e-6);
}

TEST(NeighborMeanRewardTest, MeanAndEmptyConvention) {
  const std::vector<double> rewards = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(NeighborMeanReward({1, 3}, rewards), 3.0);
  EXPECT_DOUBLE_EQ(NeighborMeanReward({}, rewards), 0.0);
  EXPECT_DOUBLE_EQ(NeighborMeanReward({0}, rewards), 1.0);
}

class CoopAdvantagePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoopAdvantagePropertyTest, BoundedByComponentMagnitudes) {
  // |A_CO| <= |A| + |A_HE| + |A_HO| for any LCF in range.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Lcf lcf;
    lcf.phi_deg = rng.Uniform(0.0, 90.0);
    lcf.chi_deg = rng.Uniform(0.0, 90.0);
    const double a = rng.Gaussian(), he = rng.Gaussian(),
                 ho = rng.Gaussian();
    const double co = CoopAdvantage(a, he, ho, lcf);
    EXPECT_LE(std::fabs(co),
              std::fabs(a) + std::fabs(he) + std::fabs(ho) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoopAdvantagePropertyTest,
                         ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// i-EOI classifier.
// ---------------------------------------------------------------------------

TEST(EoiTest, ProbabilitiesSumToOne) {
  util::Rng rng(5);
  EoiConfig config;
  config.hidden = {16};
  EoiClassifier eoi(4, 3, config, rng);
  const std::vector<float> p = eoi.Probabilities({0.1f, 0.2f, 0.3f, 0.4f});
  ASSERT_EQ(p.size(), 3u);
  float sum = 0.0f;
  for (float v : p) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(EoiTest, LearnsSeparableIdentities) {
  // Two agents living in disjoint observation regions: after training the
  // classifier must assign high intrinsic reward to each agent's own obs.
  util::Rng rng(6);
  EoiConfig config;
  config.hidden = {32};
  config.lr = 1e-2f;
  config.epochs = 60;
  config.minibatch = 32;
  EoiClassifier eoi(2, 2, config, rng);
  std::vector<std::vector<float>> obs0, obs1;
  for (int i = 0; i < 64; ++i) {
    obs0.push_back({static_cast<float>(rng.Uniform(0.0, 0.3)),
                    static_cast<float>(rng.Uniform(0.0, 0.3))});
    obs1.push_back({static_cast<float>(rng.Uniform(0.7, 1.0)),
                    static_cast<float>(rng.Uniform(0.7, 1.0))});
  }
  eoi.Update({&obs0, &obs1}, rng);
  EXPECT_GT(eoi.IntrinsicReward(0, {0.15f, 0.15f}), 0.85f);
  EXPECT_GT(eoi.IntrinsicReward(1, {0.85f, 0.85f}), 0.85f);
  EXPECT_LT(eoi.IntrinsicReward(0, {0.85f, 0.85f}), 0.15f);
}

TEST(EoiTest, IndistinguishableObsGiveLowConfidence) {
  // Identical observation distributions: p(k|o) stays near uniform, i.e.
  // low intrinsic reward for everyone (no individuality emerged).
  util::Rng rng(7);
  EoiConfig config;
  config.hidden = {16};
  config.epochs = 10;
  EoiClassifier eoi(2, 2, config, rng);
  std::vector<std::vector<float>> obs(64, {0.5f, 0.5f});
  eoi.Update({&obs, &obs}, rng);
  const float p = eoi.IntrinsicReward(0, {0.5f, 0.5f});
  EXPECT_NEAR(p, 0.5f, 0.1f);
}

TEST(EoiTest, IntrinsicRewardsBatchMatchesSingle) {
  util::Rng rng(8);
  EoiConfig config;
  config.hidden = {8};
  EoiClassifier eoi(3, 2, config, rng);
  std::vector<std::vector<float>> rows = {{0.1f, 0.2f, 0.3f},
                                          {0.9f, 0.8f, 0.7f}};
  const std::vector<float> batch = eoi.IntrinsicRewards(1, rows);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_NEAR(batch[0], eoi.IntrinsicReward(1, rows[0]), 1e-5);
  EXPECT_NEAR(batch[1], eoi.IntrinsicReward(1, rows[1]), 1e-5);
}

TEST(EoiTest, UpdateHandlesEmptyBuffers) {
  util::Rng rng(9);
  EoiConfig config;
  EoiClassifier eoi(2, 2, config, rng);
  std::vector<std::vector<float>> empty;
  std::vector<std::vector<float>> some = {{0.0f, 0.0f}};
  EXPECT_EQ(eoi.Update({&empty, &some}, rng), 0.0f);
  EXPECT_THROW(eoi.Update({&some}, rng), std::invalid_argument);
}

TEST(EoiTest, EntropyRegularizerSharpensPredictions) {
  // With a large epsilon the loss actively minimizes prediction entropy;
  // training on separable data should produce confident outputs.
  util::Rng rng(10);
  EoiConfig config;
  config.hidden = {16};
  config.lr = 1e-2f;
  config.epochs = 40;
  config.epsilon = 0.5f;
  EoiClassifier eoi(1, 2, config, rng);
  std::vector<std::vector<float>> obs0(32, {-1.0f}), obs1(32, {1.0f});
  eoi.Update({&obs0, &obs1}, rng);
  EXPECT_GT(eoi.IntrinsicReward(0, {-1.0f}), 0.9f);
  EXPECT_GT(eoi.IntrinsicReward(1, {1.0f}), 0.9f);
}

}  // namespace
}  // namespace agsc::core
