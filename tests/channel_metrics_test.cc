#include <cmath>

#include <gtest/gtest.h>

#include "env/channel.h"
#include "env/metrics.h"
#include "util/rng.h"

namespace agsc::env {
namespace {

EnvConfig DefaultConfig() { return EnvConfig{}; }

TEST(ChannelTest, DbConversionsRoundtrip) {
  EXPECT_NEAR(DbToLinear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(DbToLinear(10.0), 10.0, 1e-9);
  EXPECT_NEAR(DbToLinear(-20.0), 0.01, 1e-12);
  EXPECT_NEAR(LinearToDb(100.0), 20.0, 1e-9);
  for (double db : {-7.0, -2.2, 0.0, 3.0, 7.0}) {
    EXPECT_NEAR(LinearToDb(DbToLinear(db)), db, 1e-9);
  }
}

TEST(ChannelTest, LosProbabilityIncreasesWithAngle) {
  ChannelModel ch(DefaultConfig());
  double prev = 0.0;
  for (double angle = 0.0; angle <= 90.0; angle += 10.0) {
    const double p = ch.LosProbability(angle);
    EXPECT_GT(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  // Table II constants: at 90 degrees LoS is near certain.
  EXPECT_GT(ch.LosProbability(90.0), 0.99);
}

TEST(ChannelTest, AirLinkGainDecreasesWithDistance) {
  ChannelModel ch(DefaultConfig());
  const map::Point2 air{0.0, 0.0};
  double prev = 1e18;
  for (double d : {10.0, 50.0, 100.0, 300.0, 800.0}) {
    const double gain = ch.AirLinkGain({d, 0.0}, air, 60.0);
    EXPECT_LT(gain, prev);
    EXPECT_GT(gain, 0.0);
    prev = gain;
  }
}

TEST(ChannelTest, AirLinkGainHigherAltitudeWeaker) {
  // At a fixed large ground offset, more height = longer slant path; the
  // LoS improvement cannot beat alpha1=2 path loss at these scales.
  ChannelModel ch(DefaultConfig());
  const map::Point2 ground{500.0, 0.0};
  const double g60 = ch.AirLinkGain(ground, {0.0, 0.0}, 60.0);
  const double g150 = ch.AirLinkGain(ground, {0.0, 0.0}, 150.0);
  EXPECT_GT(g60, 0.0);
  EXPECT_GT(g150, 0.0);
  // The overhead case must always beat the far case at the same height.
  EXPECT_GT(ch.AirLinkGain({0.0, 0.0}, {0.0, 0.0}, 60.0), g60);
}

TEST(ChannelTest, GroundLinkGainPathLossExponent) {
  ChannelModel ch(DefaultConfig());
  const double g100 = ch.GroundLinkGain({0, 0}, {100.0, 0.0}, 1.0);
  const double g200 = ch.GroundLinkGain({0, 0}, {200.0, 0.0}, 1.0);
  // alpha2 = 4 -> doubling distance costs 16x.
  EXPECT_NEAR(g100 / g200, 16.0, 1e-6);
}

TEST(ChannelTest, GroundLinkFadingScalesLinearly) {
  ChannelModel ch(DefaultConfig());
  const double g1 = ch.GroundLinkGain({0, 0}, {100.0, 0.0}, 1.0);
  const double g3 = ch.GroundLinkGain({0, 0}, {100.0, 0.0}, 3.0);
  EXPECT_NEAR(g3 / g1, 3.0, 1e-9);
}

TEST(ChannelTest, MinimumDistanceClamped) {
  ChannelModel ch(DefaultConfig());
  // Zero distance must not blow up.
  EXPECT_TRUE(std::isfinite(ch.GroundLinkGain({0, 0}, {0, 0}, 1.0)));
}

TEST(ChannelTest, CapacityShannonForm) {
  EnvConfig config = DefaultConfig();
  ChannelModel ch(config);
  EXPECT_DOUBLE_EQ(ch.Capacity(0.0), 0.0);
  EXPECT_NEAR(ch.Capacity(1.0), config.bandwidth_hz, 1e-3);
  EXPECT_NEAR(ch.Capacity(3.0), 2.0 * config.bandwidth_hz, 1e-3);
}

TEST(ChannelTest, NoisePowerMatchesTableII) {
  EnvConfig config = DefaultConfig();
  ChannelModel ch(config);
  EXPECT_NEAR(ch.NoisePower(), 5e-20 * 20e6, 1e-18);
}

TEST(ChannelTest, UplinkUavSinrInterferenceReduces) {
  ChannelModel ch(DefaultConfig());
  const double clean = ch.UplinkUavSinr(1e-6, 0.0);
  const double interfered = ch.UplinkUavSinr(1e-6, 1e-6);
  EXPECT_GT(clean, interfered);
  // With equal gains and negligible noise, SINR approaches 1 (0 dB).
  EXPECT_NEAR(interfered, 1.0, 0.02);
}

TEST(ChannelTest, UplinkUgvSinrNoInterference) {
  EnvConfig config = DefaultConfig();
  ChannelModel ch(config);
  const double gain = 1e-9;
  EXPECT_NEAR(ch.UplinkUgvSinr(gain),
              gain * config.rho_poi_w / ch.NoisePower(), 1e-9);
}

TEST(ChannelTest, RelaySinrCombinesRelayAndDirectCopy) {
  EnvConfig config = DefaultConfig();
  ChannelModel ch(config);
  const double with_copy = ch.RelaySinr(1e-9, 1e-9, 0.0);
  const double without_copy = ch.RelaySinr(1e-9, 0.0, 0.0);
  EXPECT_GT(with_copy, without_copy);  // Eqn. 9 numerator adds the copy.
  const double interfered = ch.RelaySinr(1e-9, 1e-9, 1e-9);
  EXPECT_LT(interfered, with_copy);
}

TEST(ChannelTest, ThresholdLinearMatchesDb) {
  EnvConfig config = DefaultConfig();
  config.sinr_threshold_db = 3.0;
  ChannelModel ch(config);
  EXPECT_NEAR(ch.SinrThresholdLinear(), DbToLinear(3.0), 1e-12);
}

TEST(MetricsTest, JainFairnessBounds) {
  // All-equal -> 1.
  EXPECT_NEAR(JainFairness({0.5, 0.5, 0.5}), 1.0, 1e-12);
  // One active of n -> 1/n.
  EXPECT_NEAR(JainFairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  // Nothing collected -> 0 by convention.
  EXPECT_DOUBLE_EQ(JainFairness({0.0, 0.0}), 0.0);
}

TEST(MetricsTest, JainFairnessScaleInvariant) {
  const double a = JainFairness({0.1, 0.2, 0.3});
  const double b = JainFairness({0.2, 0.4, 0.6});
  EXPECT_NEAR(a, b, 1e-12);
}

class JainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JainPropertyTest, AlwaysWithinUnitInterval) {
  util::Rng rng(GetParam());
  std::vector<double> fractions(20);
  for (double& f : fractions) f = rng.Uniform();
  const double kappa = JainFairness(fractions);
  EXPECT_GE(kappa, 1.0 / 20.0 - 1e-12);
  EXPECT_LE(kappa, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JainPropertyTest,
                         ::testing::Range(1, 11));

TEST(MetricsTest, EfficiencyFormula) {
  EXPECT_NEAR(Efficiency(0.834, 0.007, 0.874, 0.092), 7.868, 0.01);
  EXPECT_DOUBLE_EQ(Efficiency(0.5, 0.1, 0.8, 0.0), 0.0);  // xi=0 guard.
}

TEST(MetricsTest, AverageComponentwise) {
  Metrics a, b;
  a.data_collection_ratio = 0.8;
  b.data_collection_ratio = 0.6;
  a.efficiency = 7.0;
  b.efficiency = 5.0;
  const Metrics avg = Metrics::Average({a, b});
  EXPECT_NEAR(avg.data_collection_ratio, 0.7, 1e-12);
  EXPECT_NEAR(avg.efficiency, 6.0, 1e-12);
  EXPECT_EQ(Metrics::Average({}).efficiency, 0.0);
}

TEST(MetricsTest, ToVectorOrder) {
  Metrics m;
  m.data_collection_ratio = 1;
  m.data_loss_ratio = 2;
  m.energy_consumption_ratio = 3;
  m.geographical_fairness = 4;
  m.efficiency = 5;
  EXPECT_EQ(m.ToVector(), (std::vector<double>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace agsc::env
