#include <cstdio>

#include <gtest/gtest.h>

#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tests/test_util.h"

namespace agsc::nn {
namespace {

TEST(OrthogonalInitTest, ColumnsOrthonormalForTallMatrix) {
  util::Rng rng(1);
  Tensor w(8, 4);
  OrthogonalInit(w, rng, 1.0f);
  // W^T W should be ~identity for a tall matrix with gain 1.
  Tensor gram = MatMulTransposedA(w, w);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(gram(r, c), r == c ? 1.0f : 0.0f, 1e-4);
    }
  }
}

TEST(OrthogonalInitTest, GainScalesRows) {
  util::Rng rng(2);
  Tensor w(4, 8);
  OrthogonalInit(w, rng, 2.0f);
  Tensor gram = MatMulTransposedB(w, w);  // W W^T for wide matrix.
  for (int r = 0; r < 4; ++r) EXPECT_NEAR(gram(r, r), 4.0f, 1e-3);
}

TEST(LinearTest, ForwardMatchesManual) {
  util::Rng rng(3);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::FromRowMajor(2, 3, {1, 2, 3, -1, 0, 1});
  const Tensor y = layer.Forward(Variable::Constant(x)).value();
  const Tensor& w = layer.weight().value();
  const Tensor& b = layer.bias().value();
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      float expect = b(0, c);
      for (int k = 0; k < 3; ++k) expect += x(r, k) * w(k, c);
      EXPECT_NEAR(y(r, c), expect, 1e-5);
    }
  }
}

TEST(LinearTest, RejectsWrongInputWidth) {
  util::Rng rng(4);
  Linear layer(3, 2, rng);
  EXPECT_THROW(layer.Forward(Variable::Constant(Tensor(1, 4))),
               std::invalid_argument);
  EXPECT_THROW(Linear(0, 2, rng), std::invalid_argument);
}

TEST(LinearTest, ParameterCount) {
  util::Rng rng(5);
  Linear layer(3, 2, rng);
  EXPECT_EQ(layer.ParameterCount(), 3 * 2 + 2);
}

TEST(MlpTest, ShapesAndParameters) {
  util::Rng rng(6);
  Mlp mlp({10, 16, 8, 2}, rng);
  EXPECT_EQ(mlp.in_features(), 10);
  EXPECT_EQ(mlp.out_features(), 2);
  EXPECT_EQ(mlp.ParameterCount(), 10 * 16 + 16 + 16 * 8 + 8 + 8 * 2 + 2);
  const Tensor y = mlp.Forward(Tensor(5, 10)).value();
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
}

TEST(MlpTest, OutputActivationBounds) {
  util::Rng rng(7);
  Mlp mlp({4, 8, 3}, rng, Activation::kTanh, Activation::kTanh);
  Tensor x = Tensor::Uniform(20, 4, rng, -5.0f, 5.0f);
  const Tensor y = mlp.Forward(x).value();
  for (int i = 0; i < y.size(); ++i) {
    EXPECT_GE(y[i], -1.0f);
    EXPECT_LE(y[i], 1.0f);
  }
}

TEST(MlpTest, RequiresTwoSizes) {
  util::Rng rng(8);
  EXPECT_THROW(Mlp({5}, rng), std::invalid_argument);
}

TEST(MlpTest, GradientFlowsToAllParameters) {
  util::Rng rng(9);
  Mlp mlp({3, 4, 1}, rng);
  Variable loss = Mean(Square(mlp.Forward(Tensor::FromRowMajor(
      2, 3, {1, 2, 3, 4, 5, 6}))));
  loss.Backward();
  for (Variable& p : mlp.Parameters()) {
    EXPECT_GT(p.grad().Norm(), 0.0f) << "dead parameter";
  }
}

TEST(GruTest, StepShapesAndRange) {
  util::Rng rng(10);
  GruCell gru(5, 7, rng);
  Tensor h0 = gru.InitialState(3);
  EXPECT_EQ(h0.rows(), 3);
  EXPECT_EQ(h0.cols(), 7);
  Variable h = gru.Step(Variable::Constant(Tensor(3, 5, 0.5f)),
                        Variable::Constant(h0));
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 7);
  for (int i = 0; i < h.value().size(); ++i) {
    EXPECT_GE(h.value()[i], -1.0f);
    EXPECT_LE(h.value()[i], 1.0f);
  }
}

TEST(GruTest, StatePersistsInformation) {
  util::Rng rng(11);
  GruCell gru(2, 4, rng);
  Tensor zero_x(1, 2);
  Tensor one_x(1, 2, 1.0f);
  Variable h_a = gru.Step(Variable::Constant(one_x),
                          Variable::Constant(gru.InitialState(1)));
  Variable h_b = gru.Step(Variable::Constant(zero_x),
                          Variable::Constant(gru.InitialState(1)));
  // Different inputs must produce different states.
  EXPECT_FALSE(h_a.value().SameAs(h_b.value()));
}

TEST(GruTest, BackpropThroughTwoSteps) {
  util::Rng rng(12);
  GruCell gru(2, 3, rng);
  Variable x = Variable::Parameter(Tensor(1, 2, 0.3f));
  Variable h = Variable::Constant(gru.InitialState(1));
  h = gru.Step(x, h);
  h = gru.Step(x, h);
  Sum(h).Backward();
  EXPECT_GT(x.grad().Norm(), 0.0f);
  for (Variable& p : gru.Parameters()) {
    EXPECT_GT(p.grad().Norm(), 0.0f);
  }
}

TEST(OptimizerTest, SgdMinimizesQuadratic) {
  Variable x = Variable::Parameter(Tensor::Scalar(5.0f));
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Mean(Square(x)).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value()[0], 0.0f, 1e-3);
}

TEST(OptimizerTest, AdamMinimizesShiftedQuadratic) {
  Variable x = Variable::Parameter(Tensor::FromRowMajor(1, 2, {4.0f, -3.0f}));
  Tensor target = Tensor::FromRowMajor(1, 2, {1.0f, 2.0f});
  Adam opt({x}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    MseLoss(x, target).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value()[0], 1.0f, 1e-2);
  EXPECT_NEAR(x.value()[1], 2.0f, 1e-2);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Variable a = Variable::Parameter(Tensor::Scalar(0.0f));
  Variable b = Variable::Parameter(Tensor::Scalar(0.0f));
  a.grad()[0] = 3.0f;
  b.grad()[0] = 4.0f;
  std::vector<Variable> params = {a, b};
  const float norm = ClipGradNorm(params, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(a.grad()[0], 0.6f, 1e-6);
  EXPECT_NEAR(b.grad()[0], 0.8f, 1e-6);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradients) {
  Variable a = Variable::Parameter(Tensor::Scalar(0.0f));
  a.grad()[0] = 0.5f;
  std::vector<Variable> params = {a};
  ClipGradNorm(params, 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[0], 0.5f);
}

TEST(SerializeTest, SaveLoadRoundtrip) {
  util::Rng rng(13);
  Mlp src({4, 6, 2}, rng);
  Mlp dst({4, 6, 2}, rng);
  const std::string path = ::testing::TempDir() + "/agsc_params.bin";
  std::vector<Variable> src_params = src.Parameters();
  std::vector<Variable> dst_params = dst.Parameters();
  ASSERT_TRUE(SaveParameters(path, src_params));
  ASSERT_TRUE(LoadParameters(path, dst_params));
  Tensor x = Tensor::Uniform(3, 4, rng, -1.0f, 1.0f);
  EXPECT_TRUE(src.Forward(x).value().SameAs(dst.Forward(x).value()));
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsShapeMismatch) {
  util::Rng rng(14);
  Mlp src({4, 6, 2}, rng);
  Mlp other({4, 5, 2}, rng);
  const std::string path = ::testing::TempDir() + "/agsc_params2.bin";
  std::vector<Variable> src_params = src.Parameters();
  std::vector<Variable> other_params = other.Parameters();
  ASSERT_TRUE(SaveParameters(path, src_params));
  EXPECT_FALSE(LoadParameters(path, other_params));
  std::remove(path.c_str());
}

TEST(SerializeTest, SnapshotRestore) {
  util::Rng rng(15);
  Mlp net({3, 4, 1}, rng);
  std::vector<Variable> params = net.Parameters();
  const std::vector<Tensor> snap = SnapshotParameters(params);
  params[0].mutable_value().Fill(9.0f);
  RestoreParameters(snap, params);
  EXPECT_TRUE(params[0].value().SameAs(snap[0]));
}

TEST(SerializeTest, CopyParameters) {
  util::Rng rng(16);
  Mlp a({3, 4, 1}, rng), b({3, 4, 1}, rng);
  std::vector<Variable> pa = a.Parameters(), pb = b.Parameters();
  CopyParameters(pa, pb);
  Tensor x = Tensor::Uniform(2, 3, rng, -1.0f, 1.0f);
  EXPECT_TRUE(a.Forward(x).value().SameAs(b.Forward(x).value()));
}

}  // namespace
}  // namespace agsc::nn
