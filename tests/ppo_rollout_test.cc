#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/ppo.h"
#include "core/rollout.h"
#include "util/rng.h"

namespace agsc::core {
namespace {

TEST(AdvantageTest, OneStepMatchesHandComputation) {
  // A_t = r + gamma * V(next) - V (Eqn. 24).
  const std::vector<float> rewards = {1.0f, 2.0f, 3.0f};
  const std::vector<float> values = {0.5f, 1.0f, 1.5f};
  const std::vector<float> next_values = {1.0f, 1.5f, 2.0f};
  const std::vector<uint8_t> dones = {0, 0, 1};
  const AdvantageResult adv =
      OneStepAdvantages(rewards, values, next_values, dones, 0.9f);
  EXPECT_NEAR(adv.advantages[0], 1.0f + 0.9f * 1.0f - 0.5f, 1e-6);
  EXPECT_NEAR(adv.advantages[1], 2.0f + 0.9f * 1.5f - 1.0f, 1e-6);
  // Terminal: no bootstrap.
  EXPECT_NEAR(adv.advantages[2], 3.0f - 1.5f, 1e-6);
  EXPECT_NEAR(adv.returns[2], 3.0f, 1e-6);
}

TEST(AdvantageTest, LengthMismatchThrows) {
  EXPECT_THROW(OneStepAdvantages({1.0f}, {1.0f, 2.0f}, {1.0f}, {0}, 0.9f),
               std::invalid_argument);
  EXPECT_THROW(GaeAdvantages({1.0f}, {1.0f, 2.0f}, {1.0f}, {0}, 0.9f, 0.5f),
               std::invalid_argument);
}

TEST(AdvantageTest, GaeLambdaZeroEqualsOneStep) {
  util::Rng rng(3);
  std::vector<float> rewards(10), values(10), next_values(10);
  std::vector<uint8_t> dones(10, 0);
  dones[4] = dones[9] = 1;
  for (int i = 0; i < 10; ++i) {
    rewards[i] = static_cast<float>(rng.Gaussian());
    values[i] = static_cast<float>(rng.Gaussian());
    next_values[i] = static_cast<float>(rng.Gaussian());
  }
  const AdvantageResult one =
      OneStepAdvantages(rewards, values, next_values, dones, 0.95f);
  const AdvantageResult gae =
      GaeAdvantages(rewards, values, next_values, dones, 0.95f, 0.0f);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(one.advantages[i], gae.advantages[i], 1e-5);
  }
}

TEST(AdvantageTest, GaeLambdaOneIsMonteCarloResidual) {
  // With lambda = 1 and consistent V(next), GAE telescopes to the
  // discounted return minus V.
  const std::vector<float> rewards = {1.0f, 1.0f, 1.0f};
  const std::vector<float> values = {0.0f, 0.0f, 0.0f};
  const std::vector<float> next_values = {0.0f, 0.0f, 0.0f};
  const std::vector<uint8_t> dones = {0, 0, 1};
  const AdvantageResult gae =
      GaeAdvantages(rewards, values, next_values, dones, 0.5f, 1.0f);
  EXPECT_NEAR(gae.advantages[0], 1.0f + 0.5f + 0.25f, 1e-6);
  EXPECT_NEAR(gae.advantages[2], 1.0f, 1e-6);
}

TEST(AdvantageTest, GaeResetsAtEpisodeBoundary) {
  const std::vector<float> rewards = {1.0f, 5.0f};
  const std::vector<float> values = {0.0f, 0.0f};
  const std::vector<float> next_values = {0.0f, 0.0f};
  const std::vector<uint8_t> dones = {1, 1};
  const AdvantageResult gae =
      GaeAdvantages(rewards, values, next_values, dones, 0.9f, 0.9f);
  // Episode 2's reward must not leak into episode 1.
  EXPECT_NEAR(gae.advantages[0], 1.0f, 1e-6);
}

TEST(NormalizeTest, ZeroMeanUnitStd) {
  std::vector<float> xs = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  NormalizeInPlace(xs);
  float mean = 0.0f, sq = 0.0f;
  for (float x : xs) mean += x;
  mean /= 5.0f;
  for (float x : xs) sq += (x - mean) * (x - mean);
  EXPECT_NEAR(mean, 0.0f, 1e-5);
  EXPECT_NEAR(std::sqrt(sq / 5.0f), 1.0f, 1e-4);
}

TEST(NormalizeTest, ConstantVectorUnchanged) {
  std::vector<float> xs = {2.0f, 2.0f, 2.0f};
  NormalizeInPlace(xs);
  EXPECT_EQ(xs[0], 2.0f);
  std::vector<float> single = {5.0f};
  NormalizeInPlace(single);
  EXPECT_EQ(single[0], 5.0f);
}

TEST(PpoSurrogateTest, EqualPoliciesGiveMeanAdvantage) {
  // ratio = 1 everywhere -> J = mean(A).
  nn::Tensor logp(3, 1);
  logp(0, 0) = -1.0f;
  logp(1, 0) = -2.0f;
  logp(2, 0) = -0.5f;
  nn::Variable logp_new = nn::Variable::Constant(logp);
  const std::vector<float> logp_old = {-1.0f, -2.0f, -0.5f};
  const std::vector<float> adv = {1.0f, -2.0f, 4.0f};
  const nn::Variable j = PpoSurrogate(logp_new, logp_old, adv, 0.2f);
  EXPECT_NEAR(j.value()[0], 1.0f, 1e-5);
}

TEST(PpoSurrogateTest, ClipLimitsPositiveAdvantageGain) {
  // New policy much more likely + positive advantage: clipped at 1+eps.
  nn::Variable logp_new =
      nn::Variable::Constant(nn::Tensor::Scalar(0.0f));
  const nn::Variable j =
      PpoSurrogate(logp_new, {-2.0f}, {1.0f}, 0.2f);
  EXPECT_NEAR(j.value()[0], 1.2f, 1e-5);
}

TEST(PpoSurrogateTest, NegativeAdvantageTakesPessimisticBranch) {
  // ratio = e^2 with A < 0: min picks the *unclipped* (more negative) term.
  nn::Variable logp_new =
      nn::Variable::Constant(nn::Tensor::Scalar(0.0f));
  const nn::Variable j =
      PpoSurrogate(logp_new, {-2.0f}, {-1.0f}, 0.2f);
  EXPECT_NEAR(j.value()[0], -std::exp(2.0f), 1e-3);
}

TEST(PpoSurrogateTest, GradientPushesTowardPositiveAdvantageActions) {
  // Maximizing J should increase logp of positive-advantage samples.
  nn::Variable logp_new = nn::Variable::Parameter(nn::Tensor(2, 1));
  const nn::Variable j =
      PpoSurrogate(logp_new, {0.0f, 0.0f}, {1.0f, -1.0f}, 0.2f);
  j.Backward();
  EXPECT_GT(logp_new.grad()(0, 0), 0.0f);
  EXPECT_LT(logp_new.grad()(1, 0), 0.0f);
}

TEST(PpoSurrogateTest, ShapeValidation) {
  nn::Variable bad = nn::Variable::Constant(nn::Tensor(2, 2));
  EXPECT_THROW(PpoSurrogate(bad, {0.0f, 0.0f}, {1.0f, 1.0f}, 0.2f),
               std::invalid_argument);
  nn::Variable ok = nn::Variable::Constant(nn::Tensor(2, 1));
  EXPECT_THROW(PpoSurrogate(ok, {0.0f}, {1.0f, 1.0f}, 0.2f),
               std::invalid_argument);
}

TEST(RolloutTest, ClearResetsEverything) {
  AgentRollout r;
  r.obs.push_back({1.0f});
  r.reward_ext.push_back(1.0f);
  r.he_neighbors.push_back({1});
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.reward_ext.empty());
  EXPECT_TRUE(r.he_neighbors.empty());
}

TEST(RolloutTest, PackBatchSelectsRows) {
  std::vector<std::vector<float>> rows = {{1, 2}, {3, 4}, {5, 6}};
  const nn::Tensor batch = PackBatch(rows, {2, 0});
  EXPECT_EQ(batch.rows(), 2);
  EXPECT_EQ(batch.cols(), 2);
  EXPECT_EQ(batch(0, 0), 5.0f);
  EXPECT_EQ(batch(1, 1), 2.0f);
  EXPECT_THROW(PackBatch(rows, {}), std::invalid_argument);
}

TEST(RolloutTest, ActionBatch) {
  AgentRollout r;
  r.action_dir = {0.1f, 0.2f, 0.3f};
  r.action_speed = {-0.1f, -0.2f, -0.3f};
  const nn::Tensor batch = r.ActionBatch({1, 2});
  EXPECT_EQ(batch(0, 0), 0.2f);
  EXPECT_EQ(batch(1, 1), -0.3f);
}

TEST(RolloutTest, MinibatchesPartitionAllIndices) {
  util::Rng rng(9);
  const auto batches = MakeMinibatches(10, 3, rng);
  EXPECT_EQ(batches.size(), 4u);  // 3+3+3+1.
  std::set<int> seen;
  for (const auto& b : batches) {
    EXPECT_FALSE(b.empty());
    for (int i : b) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(RolloutTest, MultiAgentBufferStateBatches) {
  MultiAgentBuffer buffer(2);
  buffer.states = {{1, 2}, {3, 4}};
  buffer.next_states = {{5, 6}, {7, 8}};
  const nn::Tensor s = buffer.StateBatch({1});
  EXPECT_EQ(s(0, 0), 3.0f);
  const nn::Tensor sn = buffer.NextStateBatch({0});
  EXPECT_EQ(sn(0, 1), 6.0f);
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
}

}  // namespace
}  // namespace agsc::core
