#include <cmath>

#include <gtest/gtest.h>

#include "map/geometry.h"
#include "map/road_graph.h"
#include "util/rng.h"

namespace agsc::map {
namespace {

TEST(GeometryTest, BasicVectorOps) {
  Point2 a{1.0, 2.0}, b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Norm(b - a), 5.0);
  Point2 mid = Lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 2.5);
  EXPECT_DOUBLE_EQ(mid.y, 4.0);
  Point2 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.x, 2.0);
}

TEST(GeometryTest, ClosestPointOnSegment) {
  Point2 a{0.0, 0.0}, b{10.0, 0.0};
  EXPECT_DOUBLE_EQ(ClosestPointParamOnSegment(a, b, {5.0, 3.0}), 0.5);
  EXPECT_DOUBLE_EQ(ClosestPointParamOnSegment(a, b, {-5.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(ClosestPointParamOnSegment(a, b, {20.0, 1.0}), 1.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(ClosestPointParamOnSegment(a, a, {3.0, 3.0}), 0.0);
}

TEST(GeometryTest, RectOperations) {
  Rect r{{0.0, 0.0}, {10.0, 20.0}};
  EXPECT_DOUBLE_EQ(r.Width(), 10.0);
  EXPECT_DOUBLE_EQ(r.Height(), 20.0);
  EXPECT_NEAR(r.Diagonal(), std::sqrt(500.0), 1e-9);
  EXPECT_TRUE(r.Contains({5.0, 5.0}));
  EXPECT_FALSE(r.Contains({-1.0, 5.0}));
  Point2 clamped = r.Clamp({-3.0, 25.0});
  EXPECT_DOUBLE_EQ(clamped.x, 0.0);
  EXPECT_DOUBLE_EQ(clamped.y, 20.0);
}

TEST(GeometryTest, SlantDistanceAndElevation) {
  Point2 ground{0.0, 0.0}, below_air{30.0, 40.0};
  // 2D distance 50, height 120 -> slant 130.
  EXPECT_DOUBLE_EQ(SlantDistance(ground, below_air, 120.0), 130.0);
  EXPECT_NEAR(ElevationAngleDeg(ground, below_air, 120.0),
              std::asin(120.0 / 130.0) * 180.0 / M_PI, 1e-9);
  // Directly overhead -> 90 degrees.
  EXPECT_DOUBLE_EQ(ElevationAngleDeg(ground, ground, 60.0), 90.0);
}

/// 4-node square with one diagonal:
///   0 --- 1
///   |   / |
///   2 --- 3       (edge 0-1, 0-2, 1-2 diag, 1-3, 2-3)
RoadGraph MakeSquareGraph() {
  RoadGraph g;
  g.AddNode({0.0, 100.0});    // 0
  g.AddNode({100.0, 100.0});  // 1
  g.AddNode({0.0, 0.0});      // 2
  g.AddNode({100.0, 0.0});    // 3
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(RoadGraphTest, BasicConstruction) {
  RoadGraph g = MakeSquareGraph();
  EXPECT_EQ(g.NumNodes(), 4);
  EXPECT_EQ(g.NumEdges(), 5);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_DOUBLE_EQ(g.edge(0).length, 100.0);
  EXPECT_NEAR(g.edge(2).length, std::sqrt(20000.0), 1e-9);
  EXPECT_NEAR(g.TotalLength(), 400.0 + std::sqrt(20000.0), 1e-9);
}

TEST(RoadGraphTest, AddEdgeValidation) {
  RoadGraph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  EXPECT_THROW(g.AddEdge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.AddEdge(0, 5), std::invalid_argument);
}

TEST(RoadGraphTest, DisconnectedGraphDetected) {
  RoadGraph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.AddNode({5, 5});
  g.AddEdge(0, 1);
  EXPECT_FALSE(g.IsConnected());
  EXPECT_TRUE(std::isinf(g.NodeDistance(0, 2)));
}

TEST(RoadGraphTest, NodeDistanceTakesShortestRoute) {
  RoadGraph g = MakeSquareGraph();
  // 0 -> 3: direct via 0-1-3 or 0-2-3 both = 200; diagonal path
  // 0-1(100) + 1-2(141) + 2-3(100) is longer.
  EXPECT_DOUBLE_EQ(g.NodeDistance(0, 3), 200.0);
  EXPECT_DOUBLE_EQ(g.NodeDistance(0, 0), 0.0);
  EXPECT_NEAR(g.NodeDistance(1, 2), std::sqrt(20000.0), 1e-9);
}

TEST(RoadGraphTest, ProjectFindsNearestEdge) {
  RoadGraph g = MakeSquareGraph();
  // A point near the middle of the bottom edge (2-3).
  RoadPosition pos = g.Project({50.0, -10.0});
  EXPECT_EQ(pos.edge, 4);
  EXPECT_NEAR(pos.t, 0.5, 1e-9);
  const Point2 p = g.PointAt(pos);
  EXPECT_NEAR(p.x, 50.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(RoadGraphTest, PathDistanceSameEdge) {
  RoadGraph g = MakeSquareGraph();
  RoadPosition a{0, 0.2};
  RoadPosition b{0, 0.7};
  EXPECT_NEAR(g.PathDistance(a, b), 50.0, 1e-9);
  EXPECT_NEAR(g.PathDistance(b, a), 50.0, 1e-9);
}

TEST(RoadGraphTest, PathDistanceAcrossEdges) {
  RoadGraph g = MakeSquareGraph();
  // Middle of top edge (0-1) to middle of bottom edge (2-3):
  // 50 to a corner + 100 down + 50 along = 200... but the diagonal helps:
  // via node 1 + diagonal 1-2 (141.42) + 50 = 50 + 141.42 + 50 = 241 worse.
  RoadPosition top{0, 0.5};
  RoadPosition bottom{4, 0.5};
  EXPECT_NEAR(g.PathDistance(top, bottom), 200.0, 1e-6);
}

TEST(RoadGraphTest, MoveAlongRespectsBudget) {
  RoadGraph g = MakeSquareGraph();
  RoadPosition start{0, 0.0};  // Node 0 corner.
  RoadPosition goal{4, 1.0};   // Node 3 corner (shortest 200 via 2 routes).
  double moved = 0.0;
  RoadPosition mid = g.MoveAlong(start, goal, 120.0, &moved);
  EXPECT_NEAR(moved, 120.0, 1e-9);
  // Remaining distance should be 80.
  EXPECT_NEAR(g.PathDistance(mid, goal), 80.0, 1e-6);
}

TEST(RoadGraphTest, MoveAlongReachesGoalWithSurplus) {
  RoadGraph g = MakeSquareGraph();
  RoadPosition start{0, 0.5};
  RoadPosition goal{0, 0.8};
  double moved = 0.0;
  RoadPosition end = g.MoveAlong(start, goal, 500.0, &moved);
  EXPECT_NEAR(moved, 30.0, 1e-9);
  EXPECT_NEAR(Distance(g.PointAt(end), g.PointAt(goal)), 0.0, 1e-9);
}

TEST(RoadGraphTest, MoveAlongZeroBudgetStays) {
  RoadGraph g = MakeSquareGraph();
  RoadPosition start{1, 0.3};
  double moved = 1.0;
  RoadPosition end = g.MoveAlong(start, {4, 0.9}, 0.0, &moved);
  EXPECT_EQ(end.edge, start.edge);
  EXPECT_DOUBLE_EQ(end.t, start.t);
  EXPECT_DOUBLE_EQ(moved, 0.0);
}

TEST(RoadGraphTest, MoveTowardProjectsOffRoadTarget) {
  RoadGraph g = MakeSquareGraph();
  RoadPosition start{4, 0.0};  // Node 2 corner (0,0).
  // Target far off-road to the right; projection lands on bottom or right.
  double moved = 0.0;
  RoadPosition end = g.MoveToward(start, {500.0, -500.0}, 60.0, &moved);
  EXPECT_NEAR(moved, 60.0, 1e-9);
  const Point2 p = g.PointAt(end);
  // Walked along the bottom edge toward (100, 0).
  EXPECT_NEAR(p.y, 0.0, 1e-9);
  EXPECT_NEAR(p.x, 60.0, 1e-9);
}

TEST(RoadGraphTest, MoveStaysOnRoadProperty) {
  RoadGraph g = MakeSquareGraph();
  agsc::util::Rng rng(99);
  RoadPosition pos = g.Project({10.0, 10.0});
  for (int step = 0; step < 200; ++step) {
    const Point2 target{rng.Uniform(-50.0, 150.0), rng.Uniform(-50.0, 150.0)};
    double moved = 0.0;
    pos = g.MoveToward(pos, target, rng.Uniform(0.0, 80.0), &moved);
    ASSERT_GE(pos.edge, 0);
    ASSERT_LT(pos.edge, g.NumEdges());
    ASSERT_GE(pos.t, 0.0);
    ASSERT_LE(pos.t, 1.0);
    // The reached point is exactly on the segment.
    const auto& e = g.edge(pos.edge);
    const Point2 p = g.PointAt(pos);
    const double t =
        ClosestPointParamOnSegment(g.node(e.a), g.node(e.b), p);
    EXPECT_NEAR(Distance(Lerp(g.node(e.a), g.node(e.b), t), p), 0.0, 1e-6);
  }
}

TEST(RoadGraphTest, MoveAlongNeverExceedsBudgetProperty) {
  RoadGraph g = MakeSquareGraph();
  agsc::util::Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    RoadPosition from{static_cast<int>(rng.UniformInt(uint64_t{5})),
                      rng.Uniform()};
    RoadPosition to{static_cast<int>(rng.UniformInt(uint64_t{5})),
                    rng.Uniform()};
    const double budget = rng.Uniform(0.0, 300.0);
    double moved = 0.0;
    g.MoveAlong(from, to, budget, &moved);
    EXPECT_LE(moved, budget + 1e-6);
  }
}

}  // namespace
}  // namespace agsc::map
