#include <cmath>

#include <gtest/gtest.h>

#include "algorithms/e_divert.h"
#include "algorithms/greedy_policy.h"
#include "algorithms/random_policy.h"
#include "algorithms/shortest_path.h"
#include "core/evaluator.h"

namespace agsc::algorithms {
namespace {

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 20));
  return *dataset;
}

env::EnvConfig TinyEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 10;
  config.num_pois = 20;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

TEST(RandomPolicyTest, ActionsWithinBounds) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 1);
  const env::StepResult r = env.Reset();
  RandomPolicy policy;
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const env::UvAction a = policy.Act(env, 0, r.observations[0], rng, false);
    EXPECT_GE(a.raw_direction, -1.0);
    EXPECT_LT(a.raw_direction, 1.0);
    EXPECT_GE(a.raw_speed, -1.0);
    EXPECT_LT(a.raw_speed, 1.0);
  }
}

TEST(HeadingToActionTest, RoundTripThroughEnvConvention) {
  // angle pi (west) -> raw 0; env maps raw 0 back to angle pi.
  const env::UvAction west = HeadingToAction(M_PI, 1.0);
  EXPECT_NEAR(west.raw_direction, 0.0, 1e-12);
  EXPECT_NEAR(west.raw_speed, 1.0, 1e-12);
  const env::UvAction east = HeadingToAction(0.0, 0.5);
  EXPECT_NEAR(east.raw_direction, -1.0, 1e-12);
  EXPECT_NEAR(east.raw_speed, 0.0, 1e-12);
  // Negative angles wrap.
  const env::UvAction wrapped = HeadingToAction(-M_PI / 2.0, 1.0);
  EXPECT_NEAR(wrapped.raw_direction, 0.5, 1e-12);
}

TEST(GreedyPolicyTest, HeadsTowardNearestPoi) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 2);
  env.Reset();
  GreedyPolicy policy;
  util::Rng rng(1);
  const map::Point2 before = env.uv(0).pos;
  double nearest_before = 1e18;
  for (int i = 0; i < 20; ++i) {
    nearest_before = std::min(
        nearest_before, map::Distance(before, SmallDataset().pois[i]));
  }
  std::vector<env::UvAction> actions(env.num_agents());
  const env::StepResult r0 = env.Reset();
  for (int k = 0; k < env.num_agents(); ++k) {
    actions[k] = policy.Act(env, k, r0.observations[k], rng, true);
  }
  env.Step(actions);
  double nearest_after = 1e18;
  for (int i = 0; i < 20; ++i) {
    nearest_after = std::min(
        nearest_after, map::Distance(env.uv(0).pos, SmallDataset().pois[i]));
  }
  EXPECT_LE(nearest_after, nearest_before + 1e-9);
}

TEST(GreedyPolicyTest, StopsWhenAllDataCollected) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 3);
  env.Reset();
  GreedyPolicy policy;
  util::Rng rng(1);
  // Pretend all PoIs are drained by checking the no-target branch via a
  // fresh env whose config has 0 initial data.
  env::EnvConfig config = TinyEnvConfig();
  config.initial_data_gbit = 0.0;
  env::ScEnv empty(config, SmallDataset(), 3);
  const env::StepResult r = empty.Reset();
  const env::UvAction a = policy.Act(empty, 0, r.observations[0], rng, true);
  EXPECT_EQ(a.raw_speed, -1.0);  // Park.
}

TEST(GaTourTest, FindsShortOrderOnLine) {
  // Points on a line: optimal tour visits them monotonically.
  std::vector<double> xs = {50.0, 10.0, 40.0, 20.0, 30.0};
  std::vector<int> points = {0, 1, 2, 3, 4};
  auto dist = [&](int a, int b) { return std::fabs(xs[a] - xs[b]); };
  auto from_start = [&](int a) { return xs[a]; };  // Start at x=0.
  GaConfig config;
  config.generations = 200;
  util::Rng rng(7);
  const std::vector<int> tour = GaTour(points, dist, from_start, config, rng);
  double length = from_start(tour[0]);
  for (size_t i = 0; i + 1 < tour.size(); ++i) {
    length += dist(tour[i], tour[i + 1]);
  }
  // Optimal: 10-20-30-40-50 = 50 total.
  EXPECT_NEAR(length, 50.0, 1e-9);
}

TEST(GaTourTest, HandlesDegenerateSizes) {
  auto dist = [](int, int) { return 1.0; };
  auto from_start = [](int) { return 1.0; };
  GaConfig config;
  util::Rng rng(1);
  EXPECT_TRUE(GaTour({}, dist, from_start, config, rng).empty());
  EXPECT_EQ(GaTour({5}, dist, from_start, config, rng),
            (std::vector<int>{5}));
  EXPECT_EQ(GaTour({5, 7}, dist, from_start, config, rng).size(), 2u);
}

TEST(GaTourTest, TourIsPermutation) {
  util::Rng coord_rng(11);
  std::vector<map::Point2> pts(12);
  for (auto& p : pts) {
    p = {coord_rng.Uniform(0.0, 100.0), coord_rng.Uniform(0.0, 100.0)};
  }
  std::vector<int> points(12);
  for (int i = 0; i < 12; ++i) points[i] = i;
  auto dist = [&](int a, int b) { return map::Distance(pts[a], pts[b]); };
  auto from_start = [&](int a) { return map::Norm(pts[a]); };
  GaConfig config;
  config.generations = 50;
  util::Rng rng(3);
  std::vector<int> tour = GaTour(points, dist, from_start, config, rng);
  std::sort(tour.begin(), tour.end());
  EXPECT_EQ(tour, points);
}

TEST(GaTourTest, BeatsRandomOrderOnAverage) {
  util::Rng coord_rng(13);
  std::vector<map::Point2> pts(15);
  for (auto& p : pts) {
    p = {coord_rng.Uniform(0.0, 1000.0), coord_rng.Uniform(0.0, 1000.0)};
  }
  std::vector<int> points(15);
  for (int i = 0; i < 15; ++i) points[i] = i;
  auto dist = [&](int a, int b) { return map::Distance(pts[a], pts[b]); };
  auto from_start = [&](int a) { return map::Norm(pts[a]); };
  auto length_of = [&](const std::vector<int>& order) {
    double total = from_start(order[0]);
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      total += dist(order[i], order[i + 1]);
    }
    return total;
  };
  GaConfig config;
  util::Rng rng(5);
  const double ga_length =
      length_of(GaTour(points, dist, from_start, config, rng));
  double random_total = 0.0;
  std::vector<int> shuffled = points;
  for (int trial = 0; trial < 20; ++trial) {
    rng.Shuffle(shuffled);
    random_total += length_of(shuffled);
  }
  EXPECT_LT(ga_length, random_total / 20.0);
}

TEST(ShortestPathPolicyTest, PlansToursCoveringAllPois) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 4);
  env.Reset();
  ShortestPathPolicy policy;
  policy.BeginEpisode(env);
  std::vector<bool> covered(20, false);
  for (int k = 0; k < env.num_agents(); ++k) {
    for (int poi : policy.TourOf(k)) {
      ASSERT_GE(poi, 0);
      ASSERT_LT(poi, 20);
      EXPECT_FALSE(covered[poi]) << "PoI assigned twice";
      covered[poi] = true;
    }
  }
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(covered[i]);
}

TEST(ShortestPathPolicyTest, CollectsDataOverEpisode) {
  env::EnvConfig config = TinyEnvConfig();
  config.num_timeslots = 40;
  env::ScEnv env(config, SmallDataset(), 5);
  ShortestPathPolicy policy;
  const core::EvalResult result = core::Evaluate(env, policy, 1, 42);
  EXPECT_GT(result.mean.data_collection_ratio, 0.05);
}

TEST(EDivertTest, TrainIterationRunsAndActsInBounds) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 6);
  EDivertConfig config;
  config.episodes_per_iteration = 1;
  config.updates_per_iteration = 4;
  config.minibatch = 8;
  config.hidden = 16;
  config.gru_hidden = 16;
  EDivertTrainer trainer(env, config);
  const double efficiency = trainer.TrainIteration();
  EXPECT_TRUE(std::isfinite(efficiency));
  EXPECT_GT(trainer.TotalParameterCount(), 100);
  EXPECT_GT(trainer.ActorParameterBytes(), 0);

  const env::StepResult r = env.Reset();
  trainer.BeginEpisode(env);
  util::Rng rng(1);
  for (int k = 0; k < env.num_agents(); ++k) {
    const env::UvAction a =
        trainer.Act(env, k, r.observations[k], rng, true);
    EXPECT_GE(a.raw_direction, -1.0);
    EXPECT_LE(a.raw_direction, 1.0);
    EXPECT_GE(a.raw_speed, -1.0);
    EXPECT_LE(a.raw_speed, 1.0);
  }
}

TEST(EDivertTest, RecurrentStateChangesAcrossSteps) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 7);
  EDivertConfig config;
  config.hidden = 16;
  config.gru_hidden = 16;
  EDivertTrainer trainer(env, config);
  env::StepResult r = env.Reset();
  trainer.BeginEpisode(env);
  util::Rng rng(1);
  const env::UvAction first = trainer.Act(env, 0, r.observations[0], rng,
                                          true);
  // Same observation, but hidden state advanced: action may differ.
  const env::UvAction second = trainer.Act(env, 0, r.observations[0], rng,
                                           true);
  // (GRU carries memory; outputs are not forced equal.)
  (void)first;
  (void)second;
  // Resetting the episode restores the initial hidden state exactly.
  trainer.BeginEpisode(env);
  const env::UvAction replay = trainer.Act(env, 0, r.observations[0], rng,
                                           true);
  EXPECT_EQ(first.raw_direction, replay.raw_direction);
  EXPECT_EQ(first.raw_speed, replay.raw_speed);
}

TEST(EvaluatorTest, RunsRequestedEpisodes) {
  env::ScEnv env(TinyEnvConfig(), SmallDataset(), 8);
  RandomPolicy policy;
  const core::EvalResult result = core::Evaluate(env, policy, 3, 7, false);
  EXPECT_EQ(result.episodes.size(), 3u);
  EXPECT_GE(result.mean.efficiency, 0.0);
}

TEST(EvaluatorTest, DeterministicPolicyGivesIdenticalEpisodes) {
  env::EnvConfig config = TinyEnvConfig();
  config.rayleigh_fading = false;  // Remove env stochasticity.
  env::ScEnv env(config, SmallDataset(), 9);
  GreedyPolicy policy;
  const core::EvalResult result = core::Evaluate(env, policy, 2, 7, true);
  EXPECT_EQ(result.episodes[0].efficiency, result.episodes[1].efficiency);
}

}  // namespace
}  // namespace agsc::algorithms
