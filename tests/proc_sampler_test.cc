// Crash-isolated subprocess sampler tests: bit-identity of --proc-workers
// style collection with the in-process VecSampler, trainer-level checkpoint
// byte-equality and cross-mode resume, and deterministic respawn-and-replay
// under injected worker crashes, corrupted frames, and pipe stalls.
//
// Every fault test pins the SAME invariant: the merged buffer (and
// therefore any downstream checkpoint) is bit-identical to the fault-free
// in-process run — a respawned worker replays its shard exactly.

#include <cstdlib>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "core/proc_sampler.h"
#include "core/rollout.h"
#include "core/vec_sampler.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "util/rng.h"
#include "util/subprocess.h"

#ifndef AGSC_WORKER_BINARY
#error "AGSC_WORKER_BINARY must point at the built agsc_worker binary"
#endif

namespace agsc {
namespace {

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 10));
  return *dataset;
}

constexpr int kTimeslots = 6;

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = kTimeslots;
  config.num_pois = 10;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

core::ProcSampler::Options WorkerOptions() {
  core::ProcSampler::Options options;
  options.worker_binary = AGSC_WORKER_BINARY;
  return options;
}

core::TrainConfig SmallTrainConfig(int episodes = 3) {
  core::TrainConfig train;
  train.iterations = 2;
  train.episodes_per_iteration = episodes;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 11;
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  // pid-scoped: gtest's TempDir is shared across concurrently running test
  // processes (ctest -j), and fixed names collide.
  return ::testing::TempDir() + "/pp" + std::to_string(::getpid()) + "_" +
         name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void ExpectBuffersBitEqual(const core::MultiAgentBuffer& a,
                           const core::MultiAgentBuffer& b) {
  ASSERT_EQ(a.agents.size(), b.agents.size());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.next_states, b.next_states);
  EXPECT_EQ(a.reward_all, b.reward_all);
  EXPECT_EQ(a.done, b.done);
  for (size_t k = 0; k < a.agents.size(); ++k) {
    const core::AgentRollout& x = a.agents[k];
    const core::AgentRollout& y = b.agents[k];
    ASSERT_EQ(x.size(), y.size()) << "agent " << k;
    EXPECT_EQ(x.obs, y.obs) << "agent " << k;
    EXPECT_EQ(x.next_obs, y.next_obs) << "agent " << k;
    EXPECT_EQ(x.action_dir, y.action_dir) << "agent " << k;
    EXPECT_EQ(x.action_speed, y.action_speed) << "agent " << k;
    EXPECT_EQ(x.logp_old, y.logp_old) << "agent " << k;
    EXPECT_EQ(x.reward_ext, y.reward_ext) << "agent " << k;
    EXPECT_EQ(x.he_neighbors, y.he_neighbors) << "agent " << k;
    EXPECT_EQ(x.ho_neighbors, y.ho_neighbors) << "agent " << k;
    EXPECT_EQ(x.done, y.done) << "agent " << k;
  }
}

/// Same policy-free BatchActFn as vec_sampler_test: row i's action is a
/// pure function of its private stream, drawn in row order.
void DummyAct(int /*k*/, const std::vector<const std::vector<float>*>& rows,
              const std::vector<util::Rng*>& rngs,
              std::vector<std::array<float, 2>>& actions_out,
              std::vector<float>& logps_out) {
  ASSERT_EQ(rows.size(), rngs.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    actions_out[i] = {static_cast<float>(rngs[i]->Gaussian()),
                      static_cast<float>(rngs[i]->Gaussian())};
    logps_out[i] = static_cast<float>(i);
  }
}

/// Collects with the in-process VecSampler — the reference result.
core::MultiAgentBuffer VecCollect(int workers, int episodes,
                                  std::vector<env::Metrics>* metrics_out) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  core::VecSampler sampler(env, rng, workers, 11);
  core::MultiAgentBuffer buffer(env.num_agents());
  std::vector<env::Metrics> metrics;
  sampler.Collect(episodes, DummyAct, buffer, metrics);
  if (metrics_out) *metrics_out = std::move(metrics);
  return buffer;
}

/// Collects through real agsc_worker subprocesses.
core::MultiAgentBuffer ProcCollect(int workers, int episodes,
                                   std::vector<env::Metrics>* metrics_out,
                                   int* respawns_out = nullptr) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  core::ProcSampler sampler(env, rng, workers, 11, WorkerOptions());
  core::MultiAgentBuffer buffer(env.num_agents());
  std::vector<env::Metrics> metrics;
  sampler.Collect(episodes, DummyAct, buffer, metrics);
  if (metrics_out) *metrics_out = std::move(metrics);
  if (respawns_out) *respawns_out = sampler.respawn_count();
  return buffer;
}

void ExpectMetricsBitEqual(const std::vector<env::Metrics>& a,
                           const std::vector<env::Metrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToVector(), b[i].ToVector()) << "episode " << i;
  }
}

/// Scoped AGSC_FAULT_* environment: sets the given variables for the
/// workers spawned inside the scope, and clears ALL worker-fault variables
/// on destruction so later tests (and the test process itself) start clean.
class ScopedWorkerFaultEnv {
 public:
  explicit ScopedWorkerFaultEnv(
      const std::vector<std::pair<std::string, std::string>>& vars) {
    for (const auto& [key, value] : vars) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
  }
  ~ScopedWorkerFaultEnv() {
    for (const char* key :
         {"AGSC_FAULT_KILL_WORKER_NTH", "AGSC_FAULT_CORRUPT_FRAME",
          "AGSC_FAULT_STALL_PIPE", "AGSC_FAULT_STALL_MS",
          "AGSC_FAULT_STALL_READS", "AGSC_FAULT_STALL_READS_INCARNATION",
          "AGSC_FAULT_DROP_CONN", "AGSC_FAULT_WORKER_ID"}) {
      ::unsetenv(key);
    }
  }
};

// ---------------------------------------------------------------------------
// Construction and unrecoverable failures.
// ---------------------------------------------------------------------------

TEST(ProcSamplerTest, RejectsBadConstruction) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  EXPECT_THROW(core::ProcSampler(env, rng, 0, 11, WorkerOptions()),
               std::invalid_argument);
  core::ProcSampler::Options no_binary;
  EXPECT_THROW(core::ProcSampler(env, rng, 1, 11, no_binary),
               std::invalid_argument);
}

TEST(ProcSamplerTest, MissingWorkerBinaryThrowsProcWorkerError) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  core::ProcSampler::Options options = WorkerOptions();
  options.worker_binary = TempPath("no_such_worker_binary");
  // Tight budget/backoff: the spawn retry loop must exhaust quickly.
  options.respawn_backoff.max_attempts = 2;
  options.respawn_backoff.initial_backoff_ms = 1;
  options.respawn_backoff.max_backoff_ms = 2;
  core::ProcSampler sampler(env, rng, 1, 11, std::move(options));
  core::MultiAgentBuffer buffer(env.num_agents());
  std::vector<env::Metrics> metrics;
  EXPECT_THROW(sampler.Collect(1, DummyAct, buffer, metrics),
               core::ProcWorkerError);
}

TEST(ProcSamplerTest, NotAWorkerProtocolBinaryThrowsProcWorkerError) {
  // /bin/true exists and exits immediately: the handshake read hits EOF.
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  core::ProcSampler::Options options = WorkerOptions();
  options.worker_binary = "/bin/true";
  options.respawn_backoff.max_attempts = 2;
  options.respawn_backoff.initial_backoff_ms = 1;
  options.respawn_backoff.max_backoff_ms = 2;
  options.max_respawns = 1;
  core::ProcSampler sampler(env, rng, 1, 11, std::move(options));
  core::MultiAgentBuffer buffer(env.num_agents());
  std::vector<env::Metrics> metrics;
  EXPECT_THROW(sampler.Collect(1, DummyAct, buffer, metrics),
               core::ProcWorkerError);
}

// ---------------------------------------------------------------------------
// Bit-identity with the in-process sampler.
// ---------------------------------------------------------------------------

TEST(ProcSamplerTest, SingleWorkerMatchesVecSamplerBitExactly) {
  std::vector<env::Metrics> vec_metrics, proc_metrics;
  const core::MultiAgentBuffer vec = VecCollect(1, 3, &vec_metrics);
  const core::MultiAgentBuffer proc = ProcCollect(1, 3, &proc_metrics);
  ExpectBuffersBitEqual(vec, proc);
  ExpectMetricsBitEqual(vec_metrics, proc_metrics);
}

TEST(ProcSamplerTest, MultiWorkerMatchesVecSamplerBitExactly) {
  for (const int workers : {2, 3}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    std::vector<env::Metrics> vec_metrics, proc_metrics;
    const core::MultiAgentBuffer vec = VecCollect(workers, 5, &vec_metrics);
    const core::MultiAgentBuffer proc =
        ProcCollect(workers, 5, &proc_metrics);
    ExpectBuffersBitEqual(vec, proc);
    ExpectMetricsBitEqual(vec_metrics, proc_metrics);
  }
}

TEST(ProcSamplerTest, MoreWorkersThanEpisodesStillMatches) {
  std::vector<env::Metrics> vec_metrics, proc_metrics;
  const core::MultiAgentBuffer vec = VecCollect(4, 2, &vec_metrics);
  const core::MultiAgentBuffer proc = ProcCollect(4, 2, &proc_metrics);
  ExpectBuffersBitEqual(vec, proc);
  ExpectMetricsBitEqual(vec_metrics, proc_metrics);
}

TEST(ProcSamplerTest, PrimaryRngStreamsAdvanceIdentically) {
  // After collection the primary env/sampling streams (worker 0 aliases
  // them in both samplers) must sit at the same state — this is what makes
  // checkpoints and oracle checks mode-independent.
  env::ScEnv vec_env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng vec_rng(11);
  {
    core::VecSampler sampler(vec_env, vec_rng, 2, 11);
    core::MultiAgentBuffer buffer(vec_env.num_agents());
    std::vector<env::Metrics> metrics;
    sampler.Collect(4, DummyAct, buffer, metrics);
  }
  env::ScEnv proc_env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng proc_rng(11);
  {
    core::ProcSampler sampler(proc_env, proc_rng, 2, 11, WorkerOptions());
    core::MultiAgentBuffer buffer(proc_env.num_agents());
    std::vector<env::Metrics> metrics;
    sampler.Collect(4, DummyAct, buffer, metrics);
    // The split streams (checkpoint "vrng" payload) must also agree.
    env::ScEnv ref_env(SmallEnvConfig(), SmallDataset(), 11);
    util::Rng ref_rng(11);
    core::VecSampler ref(ref_env, ref_rng, 2, 11);
    core::MultiAgentBuffer ref_buffer(ref_env.num_agents());
    std::vector<env::Metrics> ref_metrics;
    ref.Collect(4, DummyAct, ref_buffer, ref_metrics);
    const std::vector<util::Rng*> proc_streams = sampler.SplitRngs();
    const std::vector<util::Rng*> ref_streams = ref.SplitRngs();
    ASSERT_EQ(proc_streams.size(), ref_streams.size());
    for (size_t i = 0; i < proc_streams.size(); ++i) {
      EXPECT_EQ(proc_streams[i]->SaveState(), ref_streams[i]->SaveState())
          << "stream " << i;
    }
  }
  EXPECT_EQ(vec_rng.SaveState(), proc_rng.SaveState());
  EXPECT_EQ(vec_env.rng().SaveState(), proc_env.rng().SaveState());
}

// ---------------------------------------------------------------------------
// Fault injection: every fault is absorbed by respawn-and-replay and the
// result stays bit-identical to the fault-free reference.
// ---------------------------------------------------------------------------

TEST(ProcSamplerFaultTest, WorkerKilledMidEpisodeIsReplayedBitExactly) {
  const core::MultiAgentBuffer reference = VecCollect(2, 4, nullptr);
  int respawns = 0;
  core::MultiAgentBuffer faulty(2);  // 1 UAV + 1 UGV.
  {
    // Worker 1 SIGKILLs itself on its 3rd step frame of incarnation 0.
    ScopedWorkerFaultEnv env_guard({{"AGSC_FAULT_KILL_WORKER_NTH", "3"},
                                    {"AGSC_FAULT_WORKER_ID", "1"}});
    faulty = ProcCollect(2, 4, nullptr, &respawns);
  }
  EXPECT_GE(respawns, 1);
  ExpectBuffersBitEqual(reference, faulty);
}

TEST(ProcSamplerFaultTest, CorruptFrameIsDetectedAndReplayedBitExactly) {
  const core::MultiAgentBuffer reference = VecCollect(2, 4, nullptr);
  int respawns = 0;
  core::MultiAgentBuffer faulty(2);  // 1 UAV + 1 UGV.
  {
    // Worker 0's 2nd outgoing result frame has a payload byte flipped after
    // its CRC was computed — the trainer must detect the mismatch, never
    // consume the frame, and replay the shard.
    ScopedWorkerFaultEnv env_guard({{"AGSC_FAULT_CORRUPT_FRAME", "2"},
                                    {"AGSC_FAULT_WORKER_ID", "0"}});
    faulty = ProcCollect(2, 4, nullptr, &respawns);
  }
  EXPECT_GE(respawns, 1);
  ExpectBuffersBitEqual(reference, faulty);
}

TEST(ProcSamplerFaultTest, StalledPipeIsKilledAndReplayedBitExactly) {
  const core::MultiAgentBuffer reference = VecCollect(2, 3, nullptr);
  int respawns = 0;
  core::MultiAgentBuffer faulty(2);  // 1 UAV + 1 UGV.
  {
    // Worker 1 sleeps 30s before its 2nd result — far past the 1s step
    // deadline, so the trainer must kill and replay it.
    ScopedWorkerFaultEnv env_guard({{"AGSC_FAULT_STALL_PIPE", "2"},
                                    {"AGSC_FAULT_STALL_MS", "30000"},
                                    {"AGSC_FAULT_WORKER_ID", "1"}});
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    util::Rng rng(11);
    core::ProcSampler::Options options = WorkerOptions();
    options.step_deadline_ms = 1000;
    core::ProcSampler sampler(env, rng, 2, 11, std::move(options));
    faulty = core::MultiAgentBuffer(env.num_agents());
    std::vector<env::Metrics> metrics;
    sampler.Collect(3, DummyAct, faulty, metrics);
    respawns = sampler.respawn_count();
  }
  EXPECT_GE(respawns, 1);
  ExpectBuffersBitEqual(reference, faulty);
}

TEST(ProcSamplerFaultTest, StalledWriteSidePeerIsDetectedWithinDeadline) {
  // The write-path-stall fix, end to end: worker 1 crashes late in a long
  // episode, so the replay prefix (~230 actions) outgrows the one-page pipe
  // the trainer writes into — and the respawned incarnation 1 stalls 30 s
  // before reading it. Without the poll(POLLOUT)-bounded FrameWriter::Write
  // the trainer would block in write(2) forever; with it, the stalled
  // write-side peer yields kTimeout within the 1 s step deadline, is failed
  // like any other fault, and incarnation 2 replays the shard bit-exactly.
  env::EnvConfig config = SmallEnvConfig();
  config.num_timeslots = 240;  // ~230 x 24 B of replay > the 4 KiB pipe.

  env::ScEnv vec_env(config, SmallDataset(), 11);
  util::Rng vec_rng(11);
  core::VecSampler vec(vec_env, vec_rng, 2, 11);
  core::MultiAgentBuffer reference(vec_env.num_agents());
  std::vector<env::Metrics> vec_metrics;
  vec.Collect(2, DummyAct, reference, vec_metrics);

  int respawns = 0;
  core::MultiAgentBuffer faulty(2);  // 1 UAV + 1 UGV.
  const auto faulty_start = std::chrono::steady_clock::now();
  {
    ScopedWorkerFaultEnv env_guard(
        {{"AGSC_FAULT_KILL_WORKER_NTH", "232"},
         {"AGSC_FAULT_STALL_READS", "2"},  // Read 1 = init, 2 = the prefix.
         {"AGSC_FAULT_STALL_READS_INCARNATION", "1"},
         {"AGSC_FAULT_STALL_MS", "30000"},
         {"AGSC_FAULT_WORKER_ID", "1"}});
    env::ScEnv env(config, SmallDataset(), 11);
    util::Rng rng(11);
    core::ProcSampler::Options options = WorkerOptions();
    options.step_deadline_ms = 1000;
    options.send_buffer_bytes = 4096;
    core::ProcSampler sampler(env, rng, 2, 11, std::move(options));
    faulty = core::MultiAgentBuffer(env.num_agents());
    std::vector<env::Metrics> metrics;
    sampler.Collect(2, DummyAct, faulty, metrics);
    respawns = sampler.respawn_count();
  }
  const long faulty_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - faulty_start)
          .count();
  // At least two respawns: the SIGKILL, then the wedged prefix write.
  EXPECT_GE(respawns, 2);
  // "Within deadline" means the trainer escalated off the bounded write —
  // it must not have waited out the 30 s stall (nor the scaled
  // prefix-read budget, ~249 s here) for the peer to wake up and drain.
  EXPECT_LT(faulty_ms, 30000) << "stalled write-side peer was not detected "
                                 "within the step deadline";
  ExpectBuffersBitEqual(reference, faulty);
}

// ---------------------------------------------------------------------------
// Remote mode (--remote-workers analogue): agsc_worker --connect processes
// over loopback TCP, same bit-exactness contract, and disconnect-reconnect-
// and-replay instead of SIGKILL-respawn-and-replay.
// ---------------------------------------------------------------------------

core::ProcSampler::Options RemoteOptions() {
  core::ProcSampler::Options options;
  options.listen_address = "127.0.0.1:0";  // Kernel-assigned port.
  return options;
}

/// Launches `count` agsc_worker --connect processes against the sampler's
/// bound port. The returned handles SIGKILL their children on destruction,
/// so a failing test never leaks workers.
std::vector<std::unique_ptr<util::Subprocess>> LaunchRemoteWorkers(int port,
                                                                   int count) {
  std::vector<std::unique_ptr<util::Subprocess>> fleet;
  for (int w = 0; w < count; ++w) {
    auto proc = std::make_unique<util::Subprocess>();
    EXPECT_TRUE(proc->Start({AGSC_WORKER_BINARY, "--connect",
                             "127.0.0.1:" + std::to_string(port),
                             "--worker-id", std::to_string(w)}));
    fleet.push_back(std::move(proc));
  }
  return fleet;
}

/// Collects through remote workers over loopback; asserts they shut down
/// cleanly (exit 0 on the trainer's kMsgShutdown) after the sampler dies.
core::MultiAgentBuffer RemoteCollect(int workers, int episodes,
                                     std::vector<env::Metrics>* metrics_out,
                                     int* respawns_out = nullptr,
                                     long step_deadline_ms = 0) {
  env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng rng(11);
  core::MultiAgentBuffer buffer(env.num_agents());
  std::vector<std::unique_ptr<util::Subprocess>> fleet;
  {
    core::ProcSampler::Options options = RemoteOptions();
    options.step_deadline_ms = step_deadline_ms;
    core::ProcSampler sampler(env, rng, workers, 11, std::move(options));
    EXPECT_GT(sampler.bound_port(), 0);
    EXPECT_TRUE(sampler.remote());
    fleet = LaunchRemoteWorkers(sampler.bound_port(), workers);
    std::vector<env::Metrics> metrics;
    sampler.Collect(episodes, DummyAct, buffer, metrics);
    if (metrics_out) *metrics_out = std::move(metrics);
    if (respawns_out) *respawns_out = sampler.respawn_count();
  }  // Sampler destructor sends kMsgShutdown over every live socket.
  for (size_t w = 0; w < fleet.size(); ++w) {
    int exit_code = -1;
    EXPECT_TRUE(fleet[w]->Wait(&exit_code, 10000)) << "worker " << w;
    EXPECT_EQ(exit_code, 0) << "worker " << w;
  }
  return buffer;
}

TEST(RemoteSamplerTest, RemoteWorkersMatchVecSamplerBitExactly) {
  std::vector<env::Metrics> vec_metrics, remote_metrics;
  const core::MultiAgentBuffer vec = VecCollect(2, 4, &vec_metrics);
  const core::MultiAgentBuffer remote = RemoteCollect(2, 4, &remote_metrics);
  ExpectBuffersBitEqual(vec, remote);
  ExpectMetricsBitEqual(vec_metrics, remote_metrics);
}

TEST(RemoteSamplerTest, DroppedConnectionIsReconnectedAndReplayedBitExactly) {
  const core::MultiAgentBuffer reference = VecCollect(2, 4, nullptr);
  int respawns = 0;
  core::MultiAgentBuffer faulty(2);  // 1 UAV + 1 UGV.
  {
    // Worker 1 severs its TCP connection instead of reading its 4th frame
    // (mid-episode), then reconnects: the injected network partition. The
    // sampler must treat the EOF exactly like a crash — fail the slot,
    // re-attach the reconnecting worker, replay the episode prefix.
    ScopedWorkerFaultEnv env_guard({{"AGSC_FAULT_DROP_CONN", "4"},
                                    {"AGSC_FAULT_WORKER_ID", "1"}});
    faulty = RemoteCollect(2, 4, nullptr, &respawns);
  }
  EXPECT_GE(respawns, 1);
  ExpectBuffersBitEqual(reference, faulty);
}

TEST(RemoteSamplerTest, RemoteTimeoutReattachesTheReconnectingWorker) {
  // The socket flavor of the stalled-pipe fault: worker 1 sleeps 5 s
  // before writing its 2nd result, past the 1 s step deadline. The sampler
  // drops the connection; unlike the pipe case it cannot SIGKILL a remote
  // peer, so the worker itself must notice the dead socket when it wakes
  // (write fails), reconnect, and replay — bit-identical either way.
  const core::MultiAgentBuffer reference = VecCollect(2, 3, nullptr);
  int respawns = 0;
  core::MultiAgentBuffer faulty(2);  // 1 UAV + 1 UGV.
  {
    ScopedWorkerFaultEnv env_guard({{"AGSC_FAULT_STALL_PIPE", "2"},
                                    {"AGSC_FAULT_STALL_MS", "5000"},
                                    {"AGSC_FAULT_WORKER_ID", "1"}});
    faulty = RemoteCollect(2, 3, nullptr, &respawns,
                           /*step_deadline_ms=*/1000);
  }
  EXPECT_GE(respawns, 1);
  ExpectBuffersBitEqual(reference, faulty);
}

// ---------------------------------------------------------------------------
// Trainer-level: checkpoints and cross-mode resume.
// ---------------------------------------------------------------------------

core::TrainConfig ProcTrainConfig(int workers, int episodes = 3) {
  core::TrainConfig train = SmallTrainConfig(episodes);
  train.proc_workers = workers;
  train.worker_binary = AGSC_WORKER_BINARY;
  return train;
}

core::TrainConfig VecTrainConfig(int workers, int episodes = 3) {
  core::TrainConfig train = SmallTrainConfig(episodes);
  train.num_workers = workers;
  return train;
}

TEST(ProcTrainerTest, CheckpointBytesMatchInProcessTrainer) {
  auto run = [](const core::TrainConfig& train, const std::string& name) {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, train);
    trainer.TrainTo(2);
    const std::string path = TempPath(name);
    EXPECT_TRUE(trainer.SaveCheckpoint(path));
    std::string bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    return bytes;
  };
  for (const int workers : {1, 2}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const std::string vec_bytes =
        run(VecTrainConfig(workers), "xvec.agsc");
    const std::string proc_bytes =
        run(ProcTrainConfig(workers), "xproc.agsc");
    ASSERT_FALSE(vec_bytes.empty());
    EXPECT_EQ(vec_bytes, proc_bytes);
  }
}

TEST(ProcTrainerTest, CrossModeResumeIsBitExact) {
  // Full fault-free in-process run as reference.
  env::ScEnv env_full(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer full(env_full, VecTrainConfig(2));
  full.TrainTo(4);
  const std::string full_path = TempPath("xfull.agsc");
  ASSERT_TRUE(full.SaveCheckpoint(full_path));

  // First half in subprocess mode, second half resumed in-process.
  const std::string mid_path = TempPath("xmid.agsc");
  {
    env::ScEnv env_a(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer first_half(env_a, ProcTrainConfig(2));
    first_half.TrainTo(2);
    ASSERT_TRUE(first_half.SaveCheckpoint(mid_path));
  }
  env::ScEnv env_b(SmallEnvConfig(), SmallDataset(), 11);
  core::HiMadrlTrainer second_half(env_b, VecTrainConfig(2));
  ASSERT_TRUE(second_half.LoadCheckpoint(mid_path));
  EXPECT_EQ(second_half.iteration(), 2);
  second_half.TrainTo(4);
  const std::string resumed_path = TempPath("xresumed.agsc");
  ASSERT_TRUE(second_half.SaveCheckpoint(resumed_path));

  EXPECT_EQ(ReadFileBytes(full_path), ReadFileBytes(resumed_path));
  std::remove(full_path.c_str());
  std::remove(mid_path.c_str());
  std::remove(resumed_path.c_str());
}

TEST(ProcTrainerTest, WorkerCountMismatchOnLoadIsRejected) {
  const std::string w2_path = TempPath("xw2.agsc");
  {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, ProcTrainConfig(2));
    trainer.TrainIteration();
    ASSERT_TRUE(trainer.SaveCheckpoint(w2_path));
  }
  // Subprocess-mode W=2 file into in-process W=1 and W=3 trainers: the vrng
  // worker count guards the load in both modes.
  for (const int workers : {1, 3}) {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, VecTrainConfig(workers));
    EXPECT_FALSE(trainer.LoadCheckpoint(w2_path)) << "workers=" << workers;
  }
  // Matching count loads in either mode. The proc trainer spawns lazily, so
  // the load needs no worker processes at all.
  {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, ProcTrainConfig(2));
    EXPECT_TRUE(trainer.LoadCheckpoint(w2_path));
  }
  {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::HiMadrlTrainer trainer(env, VecTrainConfig(2));
    EXPECT_TRUE(trainer.LoadCheckpoint(w2_path));
  }
  std::remove(w2_path.c_str());
}

TEST(ProcTrainerTest, OracleFallbackPropagatesToWorkers) {
  // DisableSpatialIndex on the sampler is sticky and bit-identical by the
  // env-naive oracle contract: collection after the downgrade must match an
  // in-process sampler downgraded the same way.
  env::ScEnv vec_env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng vec_rng(11);
  core::VecSampler vec(vec_env, vec_rng, 2, 11);
  vec_env.DisableSpatialIndex();
  vec.worker_env(1).DisableSpatialIndex();
  core::MultiAgentBuffer vec_buffer(vec_env.num_agents());
  std::vector<env::Metrics> vec_metrics;
  vec.Collect(4, DummyAct, vec_buffer, vec_metrics);

  env::ScEnv proc_env(SmallEnvConfig(), SmallDataset(), 11);
  util::Rng proc_rng(11);
  core::ProcSampler proc(proc_env, proc_rng, 2, 11, WorkerOptions());
  proc_env.DisableSpatialIndex();
  proc.DisableSpatialIndex();
  core::MultiAgentBuffer proc_buffer(proc_env.num_agents());
  std::vector<env::Metrics> proc_metrics;
  proc.Collect(4, DummyAct, proc_buffer, proc_metrics);

  ExpectBuffersBitEqual(vec_buffer, proc_buffer);
}

}  // namespace
}  // namespace agsc
