#include <cmath>

#include <gtest/gtest.h>

#include "env/render.h"
#include "env/sc_env.h"

namespace agsc::env {
namespace {

const map::Dataset& PurdueDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue));
  return *dataset;
}

EnvConfig SmallConfig() {
  EnvConfig config;
  config.num_timeslots = 20;
  return config;
}

TEST(ScEnvTest, ConstructionValidation) {
  EnvConfig config = SmallConfig();
  config.num_pois = 1000;  // More than the dataset provides.
  EXPECT_THROW(ScEnv(config, PurdueDataset(), 1), std::invalid_argument);
  EnvConfig none = SmallConfig();
  none.num_uavs = 0;
  none.num_ugvs = 0;
  EXPECT_THROW(ScEnv(none, PurdueDataset(), 1), std::invalid_argument);
}

TEST(ScEnvTest, ResetShapes) {
  ScEnv env(SmallConfig(), PurdueDataset(), 1);
  const StepResult r = env.Reset();
  EXPECT_EQ(env.num_agents(), 4);
  EXPECT_EQ(static_cast<int>(r.observations.size()), 4);
  EXPECT_EQ(static_cast<int>(r.observations[0].size()), env.obs_dim());
  EXPECT_EQ(static_cast<int>(r.state.size()), env.state_dim());
  EXPECT_EQ(env.obs_dim(), 3 * (4 + 100));
  EXPECT_FALSE(r.done);
  EXPECT_EQ(env.timeslot(), 0);
}

TEST(ScEnvTest, AllUvsStartAtSpawnWithFullEnergy) {
  ScEnv env(SmallConfig(), PurdueDataset(), 1);
  env.Reset();
  for (int k = 0; k < env.num_agents(); ++k) {
    const UvState& uv = env.uv(k);
    EXPECT_TRUE(uv.active);
    EXPECT_NEAR(uv.energy_j, uv.initial_energy_j, 1e-9);
    if (env.IsUav(k)) {
      EXPECT_EQ(uv.kind, UvKind::kUav);
      EXPECT_NEAR(uv.pos.x, PurdueDataset().campus.spawn.x, 1e-9);
    } else {
      EXPECT_EQ(uv.kind, UvKind::kUgv);
      // UGVs are projected onto the road (spawn is already on-road).
      EXPECT_NEAR(map::Distance(uv.pos, PurdueDataset().campus.spawn), 0.0,
                  1.0);
    }
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(env.PoiRemainingGbit(i), 3.0);
  }
}

TEST(ScEnvTest, UavMovesExpectedDistance) {
  ScEnv env(SmallConfig(), PurdueDataset(), 1);
  env.Reset();
  const map::Point2 before = env.uv(0).pos;
  // Full speed (raw_speed=1 -> vmax), direction raw 0 -> angle pi (west).
  std::vector<UvAction> actions(env.num_agents(), UvAction{0.0, -1.0});
  actions[0] = {0.0, 1.0};
  env.Step(actions);
  const map::Point2 after = env.uv(0).pos;
  const double expected = 18.0 * 10.0;  // vmax * tau_move.
  EXPECT_NEAR(map::Distance(before, after), expected, 1e-6);
  EXPECT_NEAR(after.x - before.x, -expected, 1e-6);  // Heading pi = -x.
}

TEST(ScEnvTest, UavClampedAtBounds) {
  ScEnv env(SmallConfig(), PurdueDataset(), 1);
  env.Reset();
  // Drive west at full speed until the boundary must clamp.
  std::vector<UvAction> actions(env.num_agents(), UvAction{0.0, -1.0});
  actions[0] = {0.0, 1.0};
  for (int t = 0; t < 10; ++t) env.Step(actions);
  EXPECT_GE(env.uv(0).pos.x, 0.0);
  EXPECT_TRUE(
      PurdueDataset().campus.bounds.Contains(env.uv(0).pos));
}

TEST(ScEnvTest, UgvStaysOnRoad) {
  ScEnv env(SmallConfig(), PurdueDataset(), 2);
  env.Reset();
  util::Rng rng(5);
  const int g = env.num_uavs();  // First UGV.
  for (int t = 0; t < 15; ++t) {
    std::vector<UvAction> actions;
    for (int k = 0; k < env.num_agents(); ++k) {
      actions.push_back({rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)});
    }
    env.Step(actions);
    const UvState& uv = env.uv(g);
    const map::RoadGraph& roads = PurdueDataset().campus.roads;
    EXPECT_NEAR(
        map::Distance(roads.PointAt(roads.Project(uv.pos)), uv.pos), 0.0,
        1e-6);
  }
}

TEST(ScEnvTest, UgvSlowerThanUav) {
  ScEnv env(SmallConfig(), PurdueDataset(), 3);
  env.Reset();
  // Everyone tries to go at max speed in a fixed direction.
  std::vector<UvAction> actions(env.num_agents(), UvAction{0.5, 1.0});
  env.Step(actions);
  // Realized UGV speed can never exceed its vmax.
  for (int k = env.num_uavs(); k < env.num_agents(); ++k) {
    EXPECT_LE(env.uv(k).last_speed, 10.0 + 1e-9);
  }
  EXPECT_NEAR(env.uv(0).last_speed, 18.0, 1e-9);
}

TEST(ScEnvTest, EnergyDecreasesWithMovement) {
  ScEnv env(SmallConfig(), PurdueDataset(), 4);
  env.Reset();
  std::vector<UvAction> fast(env.num_agents(), UvAction{0.0, 1.0});
  std::vector<UvAction> idle(env.num_agents(), UvAction{0.0, -1.0});
  env.Step(fast);
  const double after_fast = env.uv(0).energy_j;
  const double fast_cost = env.uv(0).initial_energy_j - after_fast;
  env.Step(idle);
  const double idle_cost = after_fast - env.uv(0).energy_j;
  EXPECT_GT(fast_cost, idle_cost);
  EXPECT_GT(idle_cost, 0.0);  // Idle/hover power floor.
  const EnvConfig& c = env.config();
  EXPECT_NEAR(fast_cost, c.UavMoveEnergy(c.uav_vmax), 1e-6);
  EXPECT_NEAR(idle_cost, c.UavMoveEnergy(0.0), 1e-6);
}

TEST(ScEnvTest, EpisodeTerminatesAtHorizon) {
  EnvConfig config = SmallConfig();
  ScEnv env(config, PurdueDataset(), 5);
  StepResult r = env.Reset();
  int steps = 0;
  std::vector<UvAction> actions(env.num_agents(), UvAction{0.2, 0.3});
  while (!r.done) {
    r = env.Step(actions);
    ++steps;
  }
  EXPECT_EQ(steps, config.num_timeslots);
  EXPECT_THROW(env.Step(actions), std::logic_error);
  // Reset starts a fresh episode.
  r = env.Reset();
  EXPECT_FALSE(r.done);
}

TEST(ScEnvTest, ObservationSelfFirstAndNormalized) {
  ScEnv env(SmallConfig(), PurdueDataset(), 6);
  const StepResult r = env.Reset();
  for (int k = 0; k < env.num_agents(); ++k) {
    const auto& obs = r.observations[k];
    const map::Rect& b = PurdueDataset().campus.bounds;
    EXPECT_NEAR(obs[0], (env.uv(k).pos.x - b.min.x) / b.Width(), 1e-5);
    EXPECT_NEAR(obs[1], (env.uv(k).pos.y - b.min.y) / b.Height(), 1e-5);
    EXPECT_NEAR(obs[2], 1.0f, 1e-6);  // Full energy.
    for (float v : obs) {
      EXPECT_GE(v, -1e-6f);
      EXPECT_LE(v, 1.0f + 1e-6f);
    }
  }
}

TEST(ScEnvTest, ObservationBlindsFarPois) {
  EnvConfig config = SmallConfig();
  config.observe_range_fraction = 0.05;  // Very short sight.
  ScEnv env(config, PurdueDataset(), 7);
  const StepResult r = env.Reset();
  const auto& obs = r.observations[0];
  const double range =
      config.observe_range_fraction * PurdueDataset().campus.bounds.Diagonal();
  int visible = 0;
  for (int i = 0; i < config.num_pois; ++i) {
    const int base = 3 * env.num_agents() + 3 * i;
    const bool in_range =
        map::Distance(env.uv(0).pos, PurdueDataset().pois[i]) <= range;
    const bool nonzero =
        obs[base] != 0.0f || obs[base + 1] != 0.0f || obs[base + 2] != 0.0f;
    EXPECT_EQ(in_range, nonzero) << "poi " << i;
    visible += nonzero;
  }
  EXPECT_LT(visible, config.num_pois);  // Partial observability is real.
}

TEST(ScEnvTest, StateContainsAllPois) {
  ScEnv env(SmallConfig(), PurdueDataset(), 8);
  const StepResult r = env.Reset();
  // State has no blinding: every PoI entry carries data fraction 1.
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(r.state[3 * env.num_agents() + 3 * i + 2], 1.0f, 1e-6);
  }
}

TEST(ScEnvTest, DataCollectionHappensNearPois) {
  EnvConfig config = SmallConfig();
  config.rayleigh_fading = false;  // Deterministic channel for the test.
  ScEnv env(config, PurdueDataset(), 9);
  env.Reset();
  // Park everyone; the spawn area is near busy PoIs so collection occurs.
  std::vector<UvAction> idle(env.num_agents(), UvAction{0.0, -1.0});
  double collected = 0.0;
  for (int t = 0; t < 10; ++t) {
    const StepResult r = env.Step(idle);
    for (const CollectionEvent& ev : r.events) {
      collected += ev.collected_uav_gbit + ev.collected_ugv_gbit;
    }
  }
  EXPECT_GT(collected, 0.0);
  const Metrics m = env.EpisodeMetrics();
  EXPECT_GT(m.data_collection_ratio, 0.0);
}

TEST(ScEnvTest, EventsReferenceValidAgentsAndPois) {
  ScEnv env(SmallConfig(), PurdueDataset(), 10);
  env.Reset();
  util::Rng rng(11);
  for (int t = 0; t < 20; ++t) {
    std::vector<UvAction> actions;
    for (int k = 0; k < env.num_agents(); ++k) {
      actions.push_back({rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)});
    }
    const StepResult r = env.Step(actions);
    for (const CollectionEvent& ev : r.events) {
      EXPECT_GE(ev.subchannel, 0);
      EXPECT_LT(ev.subchannel, env.config().num_subchannels);
      if (ev.uav >= 0) {
        EXPECT_TRUE(env.IsUav(ev.uav));
      }
      if (ev.ugv >= 0) {
        EXPECT_FALSE(env.IsUav(ev.ugv));
      }
      if (ev.poi_uav >= 0) {
        EXPECT_LT(ev.poi_uav, 100);
      }
      if (ev.poi_ugv >= 0) {
        EXPECT_LT(ev.poi_ugv, 100);
        EXPECT_NE(ev.poi_ugv, ev.poi_uav);  // i' != i (Section III-B).
      }
      EXPECT_GE(ev.collected_uav_gbit, 0.0);
      EXPECT_GE(ev.collected_ugv_gbit, 0.0);
      if (ev.loss_uav) {
        EXPECT_EQ(ev.collected_uav_gbit, 0.0);
      }
      if (ev.loss_ugv) {
        EXPECT_EQ(ev.collected_ugv_gbit, 0.0);
      }
    }
    if (r.done) break;
  }
}

TEST(ScEnvTest, PoiDataNeverNegativeAndMonotone) {
  ScEnv env(SmallConfig(), PurdueDataset(), 12);
  env.Reset();
  std::vector<double> prev(100, 3.0);
  std::vector<UvAction> idle(env.num_agents(), UvAction{0.0, -1.0});
  for (int t = 0; t < 20; ++t) {
    env.Step(idle);
    for (int i = 0; i < 100; ++i) {
      const double d = env.PoiRemainingGbit(i);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, prev[i] + 1e-12);
      prev[i] = d;
    }
  }
}

TEST(ScEnvTest, DeterministicGivenSeed) {
  EnvConfig config = SmallConfig();
  ScEnv a(config, PurdueDataset(), 77);
  ScEnv b(config, PurdueDataset(), 77);
  a.Reset();
  b.Reset();
  util::Rng rng_a(1), rng_b(1);
  for (int t = 0; t < 10; ++t) {
    std::vector<UvAction> actions;
    for (int k = 0; k < a.num_agents(); ++k) {
      actions.push_back({rng_a.Uniform(-1.0, 1.0), rng_a.Uniform(-1.0, 1.0)});
    }
    const StepResult ra = a.Step(actions);
    const StepResult rb = b.Step(actions);
    for (int k = 0; k < a.num_agents(); ++k) {
      EXPECT_EQ(ra.rewards[k], rb.rewards[k]);
    }
    (void)rng_b;
  }
  EXPECT_EQ(a.EpisodeMetrics().efficiency, b.EpisodeMetrics().efficiency);
}

TEST(ScEnvTest, MetricsWithinValidRanges) {
  ScEnv env(SmallConfig(), PurdueDataset(), 13);
  env.Reset();
  util::Rng rng(14);
  StepResult r;
  r.done = false;
  while (!r.done) {
    std::vector<UvAction> actions;
    for (int k = 0; k < env.num_agents(); ++k) {
      actions.push_back({rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)});
    }
    r = env.Step(actions);
  }
  const Metrics m = env.EpisodeMetrics();
  EXPECT_GE(m.data_collection_ratio, 0.0);
  EXPECT_LE(m.data_collection_ratio, 1.0);
  EXPECT_GE(m.data_loss_ratio, 0.0);
  EXPECT_LE(m.data_loss_ratio, 1.0);
  EXPECT_GT(m.energy_consumption_ratio, 0.0);
  EXPECT_GE(m.geographical_fairness, 0.0);
  EXPECT_LE(m.geographical_fairness, 1.0);
  EXPECT_GE(m.efficiency, 0.0);
}

TEST(ScEnvTest, HeterogeneousNeighborsAreRelayPairs) {
  ScEnv env(SmallConfig(), PurdueDataset(), 15);
  env.Reset();
  std::vector<UvAction> idle(env.num_agents(), UvAction{0.0, -1.0});
  const StepResult r = env.Step(idle);
  for (const CollectionEvent& ev : r.events) {
    if (ev.uav >= 0 && ev.ugv >= 0) {
      const auto uav_neighbors = env.HeterogeneousNeighbors(ev.uav);
      EXPECT_NE(std::find(uav_neighbors.begin(), uav_neighbors.end(),
                          ev.ugv),
                uav_neighbors.end());
      const auto ugv_neighbors = env.HeterogeneousNeighbors(ev.ugv);
      EXPECT_NE(std::find(ugv_neighbors.begin(), ugv_neighbors.end(),
                          ev.uav),
                ugv_neighbors.end());
    }
  }
}

TEST(ScEnvTest, HomogeneousNeighborsSameKindOnly) {
  ScEnv env(SmallConfig(), PurdueDataset(), 16);
  env.Reset();
  // At spawn everyone is collocated: the other UAV is agent 0's neighbor.
  const auto n0 = env.HomogeneousNeighbors(0);
  ASSERT_EQ(n0.size(), 1u);
  EXPECT_EQ(n0[0], 1);
  const auto n2 = env.HomogeneousNeighbors(2);
  ASSERT_EQ(n2.size(), 1u);
  EXPECT_EQ(n2[0], 3);
}

TEST(ScEnvTest, HomogeneousNeighborsRespectRange) {
  EnvConfig config = SmallConfig();
  config.neighbor_range_fraction = 1e-9;  // Effectively zero radius.
  ScEnv env(config, PurdueDataset(), 17);
  env.Reset();
  std::vector<UvAction> spread = {{0.0, 1.0}, {1.0, 1.0},
                                  {0.5, 1.0}, {-0.5, 1.0}};
  for (int t = 0; t < 3; ++t) env.Step(spread);
  EXPECT_TRUE(env.HomogeneousNeighbors(0).empty());
}

TEST(ScEnvTest, TrajectoriesRecorded) {
  EnvConfig config = SmallConfig();
  ScEnv env(config, PurdueDataset(), 18);
  env.Reset();
  std::vector<UvAction> actions(env.num_agents(), UvAction{0.3, 0.5});
  for (int t = 0; t < 5; ++t) env.Step(actions);
  for (int k = 0; k < env.num_agents(); ++k) {
    EXPECT_EQ(env.trajectories()[k].size(), 6u);  // Initial + 5 steps.
  }
  EXPECT_EQ(env.event_log().size(), 5u);
}

TEST(ScEnvTest, RewardPenalizesEnergyUse) {
  EnvConfig config = SmallConfig();
  config.omega_move = 10.0;  // Exaggerate the energy term.
  config.rayleigh_fading = false;
  ScEnv env(config, PurdueDataset(), 19);
  env.Reset();
  // Move at full speed away from everything: rewards should be negative.
  std::vector<UvAction> fast(env.num_agents(), UvAction{0.0, 1.0});
  const StepResult r = env.Step(fast);
  // The energy penalty alone is omega_move * eta / E0 > 0.
  const double eta = config.UavMoveEnergy(config.uav_vmax);
  EXPECT_LT(r.rewards[0],
            1.0 /* any collection gain is < total fraction */);
  EXPECT_LT(r.rewards[0] - 1.0, -10.0 * eta / config.uav_energy_j() + 1.0);
}

TEST(ScEnvTest, RenderProducesMap) {
  ScEnv env(SmallConfig(), PurdueDataset(), 20);
  env.Reset();
  std::vector<UvAction> actions(env.num_agents(), UvAction{0.3, 1.0});
  for (int t = 0; t < 5; ++t) env.Step(actions);
  const std::string art = RenderTrajectoriesAscii(env, 40, 20);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 20);
  EXPECT_NE(art.find('.'), std::string::npos);   // PoIs plotted.
  // Same-kind agents share identical actions here, so the last-drawn agent
  // of each kind owns the overlapping track cells.
  EXPECT_NE(art.find('1'), std::string::npos);   // UAV track.
  EXPECT_NE(art.find('b'), std::string::npos);   // UGV track.
}

TEST(ScEnvTest, CsvDumpsSucceed) {
  ScEnv env(SmallConfig(), PurdueDataset(), 21);
  env.Reset();
  std::vector<UvAction> actions(env.num_agents(), UvAction{0.0, 0.5});
  for (int t = 0; t < 3; ++t) env.Step(actions);
  const std::string dir = ::testing::TempDir();
  EXPECT_TRUE(DumpTrajectoriesCsv(env, dir + "/traj.csv"));
  EXPECT_TRUE(DumpEventsCsv(env, dir + "/events.csv"));
}

TEST(ScEnvTest, SubchannelCountControlsEvents) {
  EnvConfig config = SmallConfig();
  config.num_subchannels = 7;
  ScEnv env(config, PurdueDataset(), 22);
  env.Reset();
  std::vector<UvAction> idle(env.num_agents(), UvAction{0.0, -1.0});
  const StepResult r = env.Step(idle);
  EXPECT_LE(r.events.size(), 7u);
  EXPECT_GT(r.events.size(), 0u);
}

TEST(ScEnvTest, HighThresholdCausesLoss) {
  EnvConfig config = SmallConfig();
  config.sinr_threshold_db = 60.0;  // Practically unattainable.
  config.rayleigh_fading = false;
  ScEnv env(config, PurdueDataset(), 23);
  env.Reset();
  std::vector<UvAction> idle(env.num_agents(), UvAction{0.0, -1.0});
  StepResult r;
  r.done = false;
  while (!r.done) r = env.Step(idle);
  const Metrics m = env.EpisodeMetrics();
  EXPECT_GT(m.data_loss_ratio, 0.0);
  EXPECT_EQ(m.data_collection_ratio, 0.0);
}

}  // namespace
}  // namespace agsc::env
