// Loopback socket edge-case suite for util/net + the framed transport
// (util/ipc) running over it: address parsing, listener/acceptor timeout
// sentinels, nonblocking connect with a deadline, the reconnect backoff
// sequence (asserted exactly via the injectable sleep), frames split across
// TCP segments, EINTR storms against a blocked read, a peer that RSTs
// mid-frame, bounded writes against a full pipe/socket buffer, and the
// SIGPIPE discipline (install-once SIG_IGN + MSG_NOSIGNAL on sockets).
//
// Everything runs on loopback or local pipes — no external network, no
// fixed port numbers (every listener binds port 0 and reads bound_port()).

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/ipc.h"
#include "util/net.h"
#include "util/retry.h"

namespace agsc {
namespace {

using util::Frame;
using util::FrameReader;
using util::FrameWriter;
using util::IpcStatus;
using util::TcpListener;

long ElapsedMs(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// A connected loopback pair: listener + client fd + accepted server fd.
struct Loopback {
  TcpListener listener;
  int client = -1;
  int server = -1;

  Loopback() {
    std::string error;
    EXPECT_TRUE(listener.Listen("127.0.0.1", 0, &error)) << error;
    client = util::TcpConnect("127.0.0.1", listener.bound_port(),
                              /*timeout_ms=*/2000, &error);
    EXPECT_GE(client, 0) << error;
    server = listener.Accept(/*timeout_ms=*/2000);
    EXPECT_GE(server, 0);
  }
  ~Loopback() {
    if (client >= 0) ::close(client);
    if (server >= 0) ::close(server);
  }
};

/// Hand-assembled frame bytes matching the documented layout, so tests can
/// dribble them onto a socket in arbitrary chunk sizes.
std::string RawFrame(uint32_t type, uint64_t seq, const std::string& payload) {
  std::string header(util::kFrameHeaderBytes, '\0');
  const uint32_t magic = util::kFrameMagic;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(&header[0], &magic, 4);
  std::memcpy(&header[4], &type, 4);
  std::memcpy(&header[8], &seq, 8);
  std::memcpy(&header[16], &len, 4);
  uint32_t crc = util::Crc32(header.data() + 4, 16);
  crc = util::Crc32(payload.data(), payload.size(), crc);
  std::memcpy(&header[20], &crc, 4);
  return header + payload;
}

void SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    ASSERT_GT(r, 0) << "send failed: " << std::strerror(errno);
    sent += static_cast<size_t>(r);
  }
}

/// Reserves a currently-free port by binding port 0 and closing again.
/// Nothing listens on the returned port afterwards (modulo an unlikely
/// reuse race, which would only make a "refused" assertion fail loudly).
int FreePort() {
  TcpListener listener;
  std::string error;
  EXPECT_TRUE(listener.Listen("127.0.0.1", 0, &error)) << error;
  const int port = listener.bound_port();
  listener.Close();
  return port;
}

// ---------------------------------------------------------------------------
// Address parsing.
// ---------------------------------------------------------------------------

TEST(NetTest, ParseHostPortAcceptsNumericLocalhostAndBarePort) {
  std::string host;
  int port = -1;
  EXPECT_TRUE(util::ParseHostPort("127.0.0.1:8080", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_TRUE(util::ParseHostPort("localhost:65535", &host, &port));
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 65535);
  // ":PORT" defaults the host to loopback; port 0 = kernel-assigned.
  EXPECT_TRUE(util::ParseHostPort(":0", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 0);
}

TEST(NetTest, ParseHostPortRejectsGarbageWithoutTouchingOutputs) {
  for (const char* bad :
       {"", "nocolon", "127.0.0.1:", ":", "127.0.0.1:notaport",
        "127.0.0.1:70000", "127.0.0.1:-1", "evil.example.com:80",
        "300.1.1.1:5", "127.0.0.1:80:90"}) {
    SCOPED_TRACE(bad);
    std::string host = "sentinel";
    int port = -7;
    EXPECT_FALSE(util::ParseHostPort(bad, &host, &port));
    EXPECT_EQ(host, "sentinel");
    EXPECT_EQ(port, -7);
  }
}

/// The parse error names the offending token AND the accepted forms, so a
/// typo'd --listen/--connect flag is diagnosable from the message alone.
TEST(NetTest, ParseHostPortErrorNamesOffendingTokenAndAcceptedForms) {
  std::string host, error;
  int port = 0;

  ASSERT_FALSE(util::ParseHostPort("nocolon", &host, &port, &error));
  EXPECT_NE(error.find("'nocolon'"), std::string::npos) << error;
  EXPECT_NE(error.find("HOST:PORT"), std::string::npos) << error;

  ASSERT_FALSE(util::ParseHostPort("127.0.0.1:70000", &host, &port, &error));
  EXPECT_NE(error.find("'70000'"), std::string::npos) << error;
  EXPECT_NE(error.find("0..65535"), std::string::npos) << error;

  ASSERT_FALSE(util::ParseHostPort("127.0.0.1:notaport", &host, &port,
                                   &error));
  EXPECT_NE(error.find("'notaport'"), std::string::npos) << error;

  // The host diagnostic must say numeric-only resolution is by design.
  ASSERT_FALSE(util::ParseHostPort("evil.example.com:80", &host, &port,
                                   &error));
  EXPECT_NE(error.find("'evil.example.com'"), std::string::npos) << error;
  EXPECT_NE(error.find("not resolved"), std::string::npos) << error;

  // Success leaves a previously set error untouched (callers check the
  // return value, not the string).
  error = "stale";
  ASSERT_TRUE(util::ParseHostPort("localhost:80", &host, &port, &error));
  EXPECT_EQ(error, "stale");
}

// ---------------------------------------------------------------------------
// Listener / acceptor.
// ---------------------------------------------------------------------------

TEST(NetTest, ListenerReportsEphemeralPortAndAcceptHonorsSentinel) {
  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0, &error)) << error;
  EXPECT_GT(listener.bound_port(), 0);
  EXPECT_TRUE(listener.listening());

  // 0 = probe: returns immediately when no connection is pending.
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(listener.Accept(/*timeout_ms=*/0), -1);
  EXPECT_LT(ElapsedMs(start), 250);

  // Positive = deadline.
  start = std::chrono::steady_clock::now();
  EXPECT_EQ(listener.Accept(/*timeout_ms=*/50), -1);
  const long waited = ElapsedMs(start);
  EXPECT_GE(waited, 40);
  EXPECT_LT(waited, 5000);
}

TEST(NetTest, ListenOnBusyPortFailsWithError) {
  TcpListener first;
  std::string error;
  ASSERT_TRUE(first.Listen("127.0.0.1", 0, &error)) << error;
  TcpListener second;
  EXPECT_FALSE(second.Listen("127.0.0.1", first.bound_port(), &error));
  EXPECT_FALSE(error.empty());
}

TEST(NetTest, CloseFromAnotherThreadUnblocksPendingAccept) {
  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0, &error)) << error;
  int result = 0;
  std::thread acceptor([&] { result = listener.Accept(/*timeout_ms=*/-1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  listener.Close();
  acceptor.join();
  EXPECT_EQ(result, -2);
}

// ---------------------------------------------------------------------------
// Connect.
// ---------------------------------------------------------------------------

TEST(NetTest, ConnectAcceptRoundTripCarriesFramesBothWays) {
  Loopback conn;
  FrameWriter client_writer(conn.client);
  FrameReader server_reader(conn.server);
  FrameWriter server_writer(conn.server);
  FrameReader client_reader(conn.client);

  Frame frame;
  for (uint64_t seq = 0; seq < 3; ++seq) {
    const std::string payload(64 * (seq + 1), static_cast<char>('a' + seq));
    ASSERT_EQ(client_writer.Write(7, seq, payload, /*timeout_ms=*/2000),
              IpcStatus::kOk);
    ASSERT_EQ(server_reader.Read(frame, /*timeout_ms=*/2000), IpcStatus::kOk);
    EXPECT_EQ(frame.type, 7u);
    EXPECT_EQ(frame.seq, seq);
    EXPECT_EQ(frame.payload, payload);
    // And a reply on the same socket in the other direction.
    ASSERT_EQ(server_writer.Write(8, seq, "ack", /*timeout_ms=*/2000),
              IpcStatus::kOk);
    ASSERT_EQ(client_reader.Read(frame, /*timeout_ms=*/2000), IpcStatus::kOk);
    EXPECT_EQ(frame.type, 8u);
    EXPECT_EQ(frame.payload, "ack");
  }
}

TEST(NetTest, ConnectToDeadPortFailsFastWithError) {
  const int port = FreePort();
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(util::TcpConnect("127.0.0.1", port, /*timeout_ms=*/2000, &error),
            -1);
  EXPECT_FALSE(error.empty());
  // Loopback refusal is immediate — nowhere near the deadline.
  EXPECT_LT(ElapsedMs(start), 1900);
}

TEST(NetTest, ConnectWithRetryReportsExactBackoffSequence) {
  const int port = FreePort();
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 4;
  policy.max_backoff_ms = 100;  // Caps the 3rd sleep: 10, 40, 100 (not 160).
  std::vector<double> sleeps;
  std::string error;
  int attempts = 0;
  const int fd = util::TcpConnectWithRetry(
      "127.0.0.1", port, /*timeout_ms=*/500, policy,
      [&](double ms) { sleeps.push_back(ms); }, &error, &attempts);
  EXPECT_EQ(fd, -1);
  EXPECT_EQ(attempts, 4);
  EXPECT_FALSE(error.empty());
  ASSERT_EQ(sleeps.size(), 3u);  // No sleep before the 1st attempt.
  EXPECT_DOUBLE_EQ(sleeps[0], 10.0);
  EXPECT_DOUBLE_EQ(sleeps[1], 40.0);
  EXPECT_DOUBLE_EQ(sleeps[2], 100.0);
}

TEST(NetTest, ConnectWithRetrySucceedsOnceListenerAppears) {
  // The "worker starts before the trainer listens" race, deterministically:
  // the listener comes up inside the first backoff sleep.
  const int port = FreePort();
  TcpListener late_listener;
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 1;
  std::string error;
  int attempts = 0;
  const int fd = util::TcpConnectWithRetry(
      "127.0.0.1", port, /*timeout_ms=*/2000, policy,
      [&](double /*ms*/) {
        if (!late_listener.listening()) {
          std::string listen_error;
          ASSERT_TRUE(late_listener.Listen("127.0.0.1", port, &listen_error))
              << listen_error;
        }
      },
      &error, &attempts);
  EXPECT_GE(fd, 0) << error;
  EXPECT_GE(attempts, 2);
  if (fd >= 0) ::close(fd);
}

// ---------------------------------------------------------------------------
// Framed transport over TCP: segmentation, EINTR, peer resets.
// ---------------------------------------------------------------------------

TEST(NetTest, FramesSplitAcrossTcpSegmentsReassemble) {
  Loopback conn;
  const std::string p1(300, 'x');
  const std::string p2(17, 'y');
  const std::string bytes = RawFrame(3, 0, p1) + RawFrame(4, 1, p2);

  // Dribble both frames 3 bytes per segment (TCP_NODELAY is set by
  // TcpConnect/Accept, so each send really leaves as its own segment), with
  // the reader concurrently mid-Read. Boundaries land everywhere: inside
  // the magic, inside the length, inside payloads, across the frame seam.
  std::thread dribbler([&] {
    for (size_t at = 0; at < bytes.size(); at += 3) {
      const size_t n = std::min<size_t>(3, bytes.size() - at);
      SendAll(conn.client, bytes.data() + at, n);
      if (at % 60 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  FrameReader reader(conn.server);
  Frame frame;
  ASSERT_EQ(reader.Read(frame, /*timeout_ms=*/10000), IpcStatus::kOk);
  EXPECT_EQ(frame.type, 3u);
  EXPECT_EQ(frame.payload, p1);
  ASSERT_EQ(reader.Read(frame, /*timeout_ms=*/10000), IpcStatus::kOk);
  EXPECT_EQ(frame.type, 4u);
  EXPECT_EQ(frame.payload, p2);
  dribbler.join();

  // The inverse case — two whole frames coalescing into one segment — must
  // come back out as two frames too.
  const std::string coalesced = RawFrame(5, 2, "ab") + RawFrame(6, 3, "cd");
  SendAll(conn.client, coalesced.data(), coalesced.size());
  ASSERT_EQ(reader.Read(frame, /*timeout_ms=*/2000), IpcStatus::kOk);
  EXPECT_EQ(frame.payload, "ab");
  ASSERT_EQ(reader.Read(frame, /*timeout_ms=*/2000), IpcStatus::kOk);
  EXPECT_EQ(frame.payload, "cd");
}

void SigUsr1Noop(int) {}

TEST(NetTest, EintrStormDoesNotCorruptABlockedRead) {
  // A handler installed WITHOUT SA_RESTART: every SIGUSR1 makes the blocked
  // poll/read return EINTR, which the transport must absorb silently.
  struct sigaction action {};
  struct sigaction old_action {};
  action.sa_handler = SigUsr1Noop;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &old_action), 0);

  Loopback conn;
  IpcStatus status = IpcStatus::kError;
  Frame frame;
  std::thread reader_thread([&] {
    FrameReader reader(conn.server);
    status = reader.Read(frame, /*timeout_ms=*/10000);
  });
  // Pummel the blocked reader with signals, then deliver the frame while
  // the storm is still running.
  const pthread_t target = reader_thread.native_handle();
  std::thread writer_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    FrameWriter writer(conn.client);
    EXPECT_EQ(writer.Write(9, 0, std::string(2048, 'z'), /*timeout_ms=*/5000),
              IpcStatus::kOk);
  });
  for (int i = 0; i < 200; ++i) {
    ::pthread_kill(target, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  writer_thread.join();
  reader_thread.join();
  EXPECT_EQ(status, IpcStatus::kOk);
  EXPECT_EQ(frame.payload, std::string(2048, 'z'));
  ::sigaction(SIGUSR1, &old_action, nullptr);
}

TEST(NetTest, PeerResetMidFrameSurfacesAsCorruptOrErrorNeverHangs) {
  Loopback conn;
  // Half a header, then an abortive close (SO_LINGER 0 => RST, no FIN).
  const std::string bytes = RawFrame(2, 0, std::string(100, 'q'));
  SendAll(conn.client, bytes.data(), 10);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  struct linger hard_close {};
  hard_close.l_onoff = 1;
  hard_close.l_linger = 0;
  ASSERT_EQ(::setsockopt(conn.client, SOL_SOCKET, SO_LINGER, &hard_close,
                         sizeof(hard_close)),
            0);
  ::close(conn.client);
  conn.client = -1;

  FrameReader reader(conn.server);
  Frame frame;
  const auto start = std::chrono::steady_clock::now();
  const IpcStatus status = reader.Read(frame, /*timeout_ms=*/5000);
  // Depending on whether the kernel hands over the torn bytes before the
  // reset, this is a torn frame (kCorrupt) or ECONNRESET (kError) — never a
  // valid frame, never a hang until the deadline.
  EXPECT_TRUE(status == IpcStatus::kCorrupt || status == IpcStatus::kError)
      << util::IpcStatusName(status);
  EXPECT_LT(ElapsedMs(start), 4000);
}

// ---------------------------------------------------------------------------
// Bounded writes: a peer that stops draining must yield kTimeout, not wedge
// the writer (the IPC write-path stall fix).
// ---------------------------------------------------------------------------

TEST(NetTest, BoundedWriteAgainstFullPipeReturnsTimeout) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Shrink the pipe to one page so a handful of frames fills it.
  ASSERT_GT(::fcntl(fds[1], F_SETPIPE_SZ, 4096), 0);
  util::IgnoreSigpipe();

  FrameWriter writer(fds[1]);
  const std::string payload(2000, 'f');
  IpcStatus status = IpcStatus::kOk;
  uint64_t seq = 0;
  const auto start = std::chrono::steady_clock::now();
  while (status == IpcStatus::kOk && seq < 64) {
    status = writer.Write(1, seq++, payload, /*timeout_ms=*/100);
  }
  EXPECT_EQ(status, IpcStatus::kTimeout);
  EXPECT_LT(seq, 64u);  // One page cannot hold 64 x 2KB frames.
  EXPECT_LT(ElapsedMs(start), 5000);

  // 0 = probe: a full buffer reports kTimeout without waiting at all.
  const auto probe_start = std::chrono::steady_clock::now();
  EXPECT_EQ(writer.Write(1, seq, payload, /*timeout_ms=*/0),
            IpcStatus::kTimeout);
  EXPECT_LT(ElapsedMs(probe_start), 100);

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetTest, BoundedWriteAgainstFullSocketBufferReturnsTimeout) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink the send buffer; the kernel clamps to its minimum (a few KiB),
  // still far below what the loop below writes.
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(fds[1], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny)),
            0);
  util::IgnoreSigpipe();

  FrameWriter writer(fds[1]);
  const std::string payload(16000, 's');
  IpcStatus status = IpcStatus::kOk;
  uint64_t seq = 0;
  const auto start = std::chrono::steady_clock::now();
  while (status == IpcStatus::kOk && seq < 64) {
    status = writer.Write(1, seq++, payload, /*timeout_ms=*/100);
  }
  EXPECT_EQ(status, IpcStatus::kTimeout);
  EXPECT_LT(ElapsedMs(start), 10000);

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetTest, WriteToClosedPeerReturnsErrorNotSigpipe) {
  util::IgnoreSigpipe();
  // Socket: MSG_NOSIGNAL turns the dead peer into EPIPE -> kError.
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[0]);
    FrameWriter writer(fds[1]);
    EXPECT_EQ(writer.Write(1, 0, "payload", /*timeout_ms=*/1000),
              IpcStatus::kError);
    ::close(fds[1]);
  }
  // Pipe: no MSG_NOSIGNAL exists; the install-once SIG_IGN does the job.
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ::close(fds[0]);
    FrameWriter writer(fds[1]);
    EXPECT_EQ(writer.Write(1, 0, "payload", /*timeout_ms=*/1000),
              IpcStatus::kError);
    ::close(fds[1]);
  }
  // Reaching this line at all proves no SIGPIPE killed the process.
}

// ---------------------------------------------------------------------------
// Read sentinel semantics.
// ---------------------------------------------------------------------------

TEST(NetTest, ZeroTimeoutReadServesOnlyAlreadyBufferedData) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  FrameReader reader(fds[0]);
  Frame frame;

  // Empty pipe: the probe refuses to wait.
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(reader.Read(frame, /*timeout_ms=*/0), IpcStatus::kTimeout);
  EXPECT_LT(ElapsedMs(start), 100);

  // A buffered whole frame is served by the same zero-cost probe.
  const std::string bytes = RawFrame(11, 0, "buffered");
  ASSERT_EQ(::write(fds[1], bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  start = std::chrono::steady_clock::now();
  ASSERT_EQ(reader.Read(frame, /*timeout_ms=*/0), IpcStatus::kOk);
  EXPECT_LT(ElapsedMs(start), 100);
  EXPECT_EQ(frame.type, 11u);
  EXPECT_EQ(frame.payload, "buffered");

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetTest, NegativeTimeoutBlocksUntilTheFrameArrives) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  IpcStatus status = IpcStatus::kError;
  Frame frame;
  std::thread reader_thread([&] {
    FrameReader reader(fds[0]);
    status = reader.Read(frame, /*timeout_ms=*/-1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  FrameWriter writer(fds[1]);
  ASSERT_EQ(writer.Write(12, 0, "late", /*timeout_ms=*/1000), IpcStatus::kOk);
  reader_thread.join();
  EXPECT_EQ(status, IpcStatus::kOk);
  EXPECT_EQ(frame.payload, "late");
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace agsc
