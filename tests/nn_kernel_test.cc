// Bit-exactness and allocation-behavior tests for the tensor compute
// kernels:
//  - blocked GEMMs are bit-identical to the retained naive references over a
//    shape sweep that straddles every tile boundary (including empty, 1xN,
//    Nx1, and non-square shapes);
//  - the row-partitioned parallel path produces the same bits for any
//    nn_threads value (the determinism contract of KernelConfig);
//  - the fused graph ops (LinearActivate / AddScaled / SquareScale) match
//    their unfused op chains bit-for-bit in both values and gradients;
//  - the thread-local buffer pool makes a steady-state train step O(1) heap
//    allocations after warm-up;
//  - a fixed-seed training run writes byte-identical checkpoints under
//    naive kernels, blocked kernels, and blocked kernels with worker
//    threads.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace agsc {
namespace {

using nn::Activation;
using nn::GemmKernel;
using nn::KernelConfig;
using nn::Tensor;
using nn::Variable;

/// Restores the process-wide kernel configuration on scope exit so a failing
/// test cannot leak a nonstandard config into later tests.
struct KernelConfigGuard {
  KernelConfigGuard() : saved(nn::GetKernelConfig()) {}
  ~KernelConfigGuard() { nn::SetKernelConfig(saved); }
  KernelConfig saved;
};

Tensor RandomTensor(int rows, int cols, util::Rng& rng) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(-2.0, 2.0));
  }
  return t;
}

/// Exact elementwise equality with shape (fails loudly with indices).
void ExpectBitEqual(const Tensor& a, const Tensor& b, const std::string& tag) {
  ASSERT_EQ(a.rows(), b.rows()) << tag;
  ASSERT_EQ(a.cols(), b.cols()) << tag;
  for (int i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << tag << " flat index " << i;
  }
}

// Shape sweep: every (m, k, n) below exercises at least one of — empty
// operands, single row/column, dims below one tile, dims exactly on a tile
// boundary (8 rows / 32 columns / 8 TB-columns), and dims that straddle a
// boundary by one.
struct GemmShape {
  int m, k, n;
};

const std::vector<GemmShape>& SweepShapes() {
  static const std::vector<GemmShape> shapes = {
      {0, 0, 0},  {0, 5, 3},   {4, 0, 3},   {4, 5, 0},   {1, 1, 1},
      {1, 7, 33}, {33, 7, 1},  {7, 9, 31},  {8, 16, 32}, {9, 17, 33},
      {16, 3, 8}, {31, 31, 7}, {32, 8, 64}, {65, 2, 9},  {13, 40, 29},
  };
  return shapes;
}

TEST(GemmKernelTest, BlockedMatchesNaiveAcrossShapeSweep) {
  KernelConfigGuard guard;
  util::Rng rng(1234);
  for (const GemmShape& s : SweepShapes()) {
    const Tensor a = RandomTensor(s.m, s.k, rng);
    const Tensor b = RandomTensor(s.k, s.n, rng);
    const Tensor at = RandomTensor(s.k, s.m, rng);  // A^T for TransposedA.
    const Tensor bt = RandomTensor(s.n, s.k, rng);  // B^T for TransposedB.

    KernelConfig config;
    config.gemm = GemmKernel::kBlocked;
    config.nn_threads = 0;
    nn::SetKernelConfig(config);
    const std::string tag = "shape " + std::to_string(s.m) + "x" +
                            std::to_string(s.k) + "x" + std::to_string(s.n);
    ExpectBitEqual(nn::MatMul(a, b), nn::internal::NaiveMatMul(a, b),
                   "MatMul " + tag);
    ExpectBitEqual(nn::MatMulTransposedB(a, bt),
                   nn::internal::NaiveMatMulTransposedB(a, bt),
                   "MatMulTransposedB " + tag);
    ExpectBitEqual(nn::MatMulTransposedA(at, b),
                   nn::internal::NaiveMatMulTransposedA(at, b),
                   "MatMulTransposedA " + tag);
  }
}

TEST(GemmKernelTest, ParallelPathBitIdenticalForAnyThreadCount) {
  KernelConfigGuard guard;
  util::Rng rng(99);
  // parallel_min_flops = 0 forces even tiny products through the pool
  // dispatch, so this also makes the TSan build exercise the parallel path.
  for (const GemmShape& s : SweepShapes()) {
    const Tensor a = RandomTensor(s.m, s.k, rng);
    const Tensor b = RandomTensor(s.k, s.n, rng);
    const Tensor at = RandomTensor(s.k, s.m, rng);
    const Tensor bt = RandomTensor(s.n, s.k, rng);

    std::vector<Tensor> mm, tb, ta;
    for (int threads : {0, 1, 4}) {
      KernelConfig config;
      config.gemm = GemmKernel::kBlocked;
      config.nn_threads = threads;
      config.parallel_min_flops = 0;
      nn::SetKernelConfig(config);
      mm.push_back(nn::MatMul(a, b));
      tb.push_back(nn::MatMulTransposedB(a, bt));
      ta.push_back(nn::MatMulTransposedA(at, b));
    }
    const std::string tag = "shape " + std::to_string(s.m) + "x" +
                            std::to_string(s.k) + "x" + std::to_string(s.n);
    for (size_t i = 1; i < mm.size(); ++i) {
      ExpectBitEqual(mm[0], mm[i], "MatMul threads " + tag);
      ExpectBitEqual(tb[0], tb[i], "MatMulTransposedB threads " + tag);
      ExpectBitEqual(ta[0], ta[i], "MatMulTransposedA threads " + tag);
    }
  }
}

TEST(GemmKernelTest, NaNPropagatesThroughZeroActivation) {
  // Regression for the old `if (av == 0.0f) continue;` zero-skip: a NaN
  // weight multiplied by a zero activation must produce NaN output, not be
  // silently skipped — the divergence guard depends on NaN staying visible.
  KernelConfigGuard guard;
  const float kNan = std::numeric_limits<float>::quiet_NaN();
  Tensor act = Tensor::FromRowMajor(1, 2, {0.0f, 0.0f});  // all-zero row.
  Tensor w = Tensor::FromRowMajor(2, 2, {kNan, 1.0f, 2.0f, 3.0f});
  for (GemmKernel kernel : {GemmKernel::kNaive, GemmKernel::kBlocked}) {
    KernelConfig config;
    config.gemm = kernel;
    nn::SetKernelConfig(config);
    Tensor out = nn::MatMul(act, w);
    EXPECT_TRUE(std::isnan(out(0, 0)))
        << "kernel " << static_cast<int>(kernel);
    Tensor out_ta = nn::MatMulTransposedA(act.Transposed(), w);
    EXPECT_TRUE(std::isnan(out_ta(0, 0)))
        << "TransposedA kernel " << static_cast<int>(kernel);
  }
}

// ---------------------------------------------------------------------------
// Fused graph ops: bit-equivalence of values and gradients.
// ---------------------------------------------------------------------------

TEST(FusedOpsTest, LinearActivateMatchesUnfusedChain) {
  KernelConfigGuard guard;
  util::Rng rng(7);
  for (Activation act : {Activation::kNone, Activation::kRelu,
                         Activation::kTanh, Activation::kSigmoid}) {
    Variable x_f = Variable::Parameter(RandomTensor(5, 3, rng));
    Variable w_f = Variable::Parameter(RandomTensor(3, 4, rng));
    Variable b_f = Variable::Parameter(RandomTensor(1, 4, rng));
    Variable x_u = Variable::Parameter(x_f.value());
    Variable w_u = Variable::Parameter(w_f.value());
    Variable b_u = Variable::Parameter(b_f.value());

    Variable fused = nn::LinearActivate(x_f, w_f, b_f, act);
    Variable unfused =
        nn::Activate(nn::AddRowVector(nn::MatMul(x_u, w_u), b_u), act);
    const std::string tag = "act " + std::to_string(static_cast<int>(act));
    ExpectBitEqual(fused.value(), unfused.value(), "value " + tag);

    // Backpropagate a non-trivial seed through both graphs.
    Tensor seed = RandomTensor(5, 4, rng);
    fused.Backward(seed);
    unfused.Backward(seed);
    ExpectBitEqual(x_f.grad(), x_u.grad(), "dX " + tag);
    ExpectBitEqual(w_f.grad(), w_u.grad(), "dW " + tag);
    ExpectBitEqual(b_f.grad(), b_u.grad(), "db " + tag);
  }
}

TEST(FusedOpsTest, AddScaledMatchesAddOfScalarMul) {
  util::Rng rng(8);
  const float s = -0.37f;
  Variable a_f = Variable::Parameter(RandomTensor(4, 6, rng));
  Variable b_f = Variable::Parameter(RandomTensor(4, 6, rng));
  Variable a_u = Variable::Parameter(a_f.value());
  Variable b_u = Variable::Parameter(b_f.value());

  Variable fused = nn::AddScaled(a_f, b_f, s);
  Variable unfused = nn::Add(a_u, nn::ScalarMul(b_u, s));
  ExpectBitEqual(fused.value(), unfused.value(), "AddScaled value");

  util::Rng seed_rng(81);
  Tensor seed = RandomTensor(4, 6, seed_rng);
  fused.Backward(seed);
  unfused.Backward(seed);
  ExpectBitEqual(a_f.grad(), a_u.grad(), "AddScaled dA");
  ExpectBitEqual(b_f.grad(), b_u.grad(), "AddScaled dB");
}

TEST(FusedOpsTest, SquareScaleMatchesScalarMulOfSquare) {
  util::Rng rng(9);
  const float s = -0.5f;
  Variable a_f = Variable::Parameter(RandomTensor(3, 5, rng));
  Variable a_u = Variable::Parameter(a_f.value());

  Variable fused = nn::SquareScale(a_f, s);
  Variable unfused = nn::ScalarMul(nn::Square(a_u), s);
  ExpectBitEqual(fused.value(), unfused.value(), "SquareScale value");

  util::Rng seed_rng(91);
  Tensor seed = RandomTensor(3, 5, seed_rng);
  fused.Backward(seed);
  unfused.Backward(seed);
  ExpectBitEqual(a_f.grad(), a_u.grad(), "SquareScale dA");
}

// ---------------------------------------------------------------------------
// Buffer pool: steady-state training allocates nothing new.
// ---------------------------------------------------------------------------

TEST(BufferPoolTest, TrainStepIsAllocationFreeAfterWarmup) {
  if (!nn::internal::BufferPoolEnabled()) {
    GTEST_SKIP() << "buffer pool compiled out (sanitizer build)";
  }
  KernelConfigGuard guard;
  KernelConfig config;  // Blocked kernels, no threads: single-thread pool.
  nn::SetKernelConfig(config);

  util::Rng rng(42);
  nn::Mlp mlp({12, 32, 32, 4}, rng);
  nn::Adam adam(mlp.Parameters(), 1e-3f);
  const Tensor x = RandomTensor(16, 12, rng);
  const Tensor target = RandomTensor(16, 4, rng);

  auto step = [&] {
    adam.ZeroGrad();
    Variable loss = nn::MseLoss(mlp.Forward(x), target);
    loss.Backward();
    adam.Step();
  };

  for (int i = 0; i < 8; ++i) step();  // Warm the pool and Adam state.

  const auto before = nn::internal::GetBufferPoolStats();
  for (int i = 0; i < 16; ++i) step();
  const auto after = nn::internal::GetBufferPoolStats();

  EXPECT_GT(after.acquires, before.acquires);  // Work definitely happened...
  EXPECT_EQ(after.heap_allocs, before.heap_allocs)  // ...with no new heap.
      << "steady-state train steps should be served entirely from the pool";
}

// ---------------------------------------------------------------------------
// End-to-end: kernel choice and thread count never change training results.
// ---------------------------------------------------------------------------

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 10));
  return *dataset;
}

env::EnvConfig SmallEnvConfig() {
  env::EnvConfig config;
  config.num_timeslots = 6;
  config.num_pois = 10;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  return config;
}

core::TrainConfig SmallTrainConfig() {
  core::TrainConfig train;
  train.iterations = 2;
  train.episodes_per_iteration = 2;
  train.policy_epochs = 1;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 11;
  train.verbose = false;
  return train;
}

std::string TempPath(const std::string& name) {
  // pid-scoped: gtest's TempDir is shared across concurrent test processes.
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(KernelInvarianceTest, TrainingCheckpointBytesIdenticalAcrossKernels) {
  KernelConfigGuard guard;
  struct Case {
    bool naive;
    int threads;
    const char* name;
  };
  const Case cases[] = {
      {true, 0, "naive"},
      {false, 0, "blocked"},
      {false, 1, "blocked_t1"},
      {false, 4, "blocked_t4"},
  };
  std::vector<std::string> bytes;
  for (const Case& c : cases) {
    env::ScEnv env(SmallEnvConfig(), SmallDataset(), 11);
    core::TrainConfig train = SmallTrainConfig();
    train.nn_threads = c.threads;
    train.nn_naive_kernels = c.naive;
    core::HiMadrlTrainer trainer(env, train);
    // Force even the tiny test-sized GEMMs through the parallel dispatch so
    // the threaded cases genuinely run on the pool.
    KernelConfig kc = nn::GetKernelConfig();
    kc.parallel_min_flops = 0;
    nn::SetKernelConfig(kc);
    for (int i = 0; i < train.iterations; ++i) trainer.TrainIteration();
    const std::string path = TempPath(std::string("kinv_") + c.name + ".agsc");
    ASSERT_TRUE(trainer.SaveCheckpoint(path));
    bytes.push_back(ReadFileBytes(path));
    std::remove(path.c_str());
  }
  for (size_t i = 1; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[0], bytes[i])
        << "checkpoint bytes diverge between " << cases[0].name << " and "
        << cases[i].name;
  }
}

}  // namespace
}  // namespace agsc
