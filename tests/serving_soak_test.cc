// Serving soak campaign: end-to-end runs of the real agsc_serve binary
// under injected faults — stalled inference batches against a request
// deadline, transient and persistent stats-write failures, corrupted
// snapshot promotions, SIGTERM mid-stream — plus the startup and usage
// error contract. Every scenario asserts the documented exit code and,
// where promised, that the final stats JSON was flushed and is consistent.
//
// Binary paths are injected at build time via AGSC_SERVE_BINARY and
// AGSC_TRAIN_BINARY (see tests/CMakeLists.txt); fault flags reach the child
// through AGSC_FAULT_* environment variables so the parent stays clean.
// The checkpoint every scenario serves is produced once per suite by a real
// agsc_train run on the same tiny Purdue problem.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch_server.h"
#include "core/hi_madrl.h"
#include "core/policy_snapshot.h"
#include "core/serve_protocol.h"
#include "env/config.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "util/exit_codes.h"
#include "util/fault_inject.h"
#include "util/net.h"

namespace agsc {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  // pid-scoped: gtest's TempDir is shared across concurrently running test
  // processes (ctest -j), and fixed names collide.
  return ::testing::TempDir() + "/p" + std::to_string(::getpid()) + "_" + name;
}

/// The env-shape arguments shared by the trainer producing the checkpoint
/// and every serve run consuming it (the snapshot fingerprint ties the two).
std::vector<std::string> TinyEnvArgs() {
  return {"--pois", "12", "--uavs", "1", "--ugvs", "1", "--timeslots", "8"};
}

/// Forks and execs `binary` with TinyEnvArgs() + `extra_args` and `env_kv`
/// ("KEY=VALUE") exported in the child only; stdout+stderr to `log_path`.
/// Runs --quiet by default; pass quiet=false when a test needs the
/// human-readable startup banner as a readiness signal.
pid_t Spawn(const char* binary, const std::vector<std::string>& extra_args,
            const std::vector<std::string>& env_kv,
            const std::string& log_path, bool quiet = true) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  FILE* log = std::freopen(log_path.c_str(), "w", stdout);
  if (log == nullptr) ::_exit(126);
  ::dup2(::fileno(stdout), 2);
  for (const std::string& kv : env_kv) {
    const size_t eq = kv.find('=');
    ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
  }
  std::vector<std::string> args = {binary};
  for (const std::string& a : TinyEnvArgs()) args.push_back(a);
  if (quiet) args.push_back("--quiet");
  for (const std::string& a : extra_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(binary, argv.data());
  ::_exit(127);
}

int WaitExit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int RunServe(const std::vector<std::string>& extra_args,
             const std::vector<std::string>& env_kv,
             const std::string& log_path) {
  return WaitExit(Spawn(AGSC_SERVE_BINARY, extra_args, env_kv, log_path));
}

std::string FileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Polls `path` until `needle` appears (20 ms ticks). Readiness gate for
/// signalling a freshly spawned server: a fixed sleep races against slow
/// sanitizer/parallel-CI startup, the banner does not.
bool PollLogFor(const std::string& path, const std::string& needle,
                long deadline_ms = 20000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (FileContents(path).find(needle) != std::string::npos) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// Pulls an integer counter out of the flushed stats JSON, e.g.
/// ExtractCounter(json, "requests_ok"). Returns -1 when absent.
long ExtractCounter(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::atol(json.c_str() + at + needle.size());
}

/// Suite-wide fixture: trains the checkpoint every serve scenario consumes
/// (once — a real agsc_train run on the same tiny problem).
class ServingSoakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    checkpoint_ = new std::string(TempPath("soak_policy.agsc"));
    const std::string log = TempPath("soak_train.log");
    const int code = WaitExit(Spawn(
        AGSC_TRAIN_BINARY,
        {"--eval", "0", "--iterations", "1", "--save", *checkpoint_}, {},
        log));
    ASSERT_EQ(code, util::kExitOk) << FileContents(log);
    std::remove(log.c_str());
  }
  static void TearDownTestSuite() {
    std::remove(checkpoint_->c_str());
    delete checkpoint_;
    checkpoint_ = nullptr;
  }

  static const std::string& Checkpoint() { return *checkpoint_; }

  /// Scenario-scoped stats/log paths, removed on destruction.
  struct Workspace {
    std::string stats;
    std::string log;
    explicit Workspace(const std::string& name)
        : stats(TempPath(name + "_stats.json")),
          log(TempPath(name + ".log")) {}
    ~Workspace() {
      std::remove(stats.c_str());
      std::remove(log.c_str());
    }
  };

 private:
  static std::string* checkpoint_;
};

std::string* ServingSoakTest::checkpoint_ = nullptr;

// ---------------------------------------------------------------------------
// Scenarios.
// ---------------------------------------------------------------------------

TEST_F(ServingSoakTest, BaselineServesAndFlushesConsistentStats) {
  Workspace ws("baseline");
  ASSERT_EQ(RunServe({"--snapshot", Checkpoint(), "--sessions", "2",
                      "--clients", "2", "--requests", "32", "--stats-json",
                      ws.stats},
                     {}, ws.log),
            util::kExitOk)
      << FileContents(ws.log);
  const std::string json = FileContents(ws.stats);
  ASSERT_FALSE(json.empty());
  // 2 clients x 32 session steps, every one served, none dropped.
  EXPECT_EQ(ExtractCounter(json, "client_steps"), 64);
  EXPECT_EQ(ExtractCounter(json, "requests_ok"), 64);
  EXPECT_EQ(ExtractCounter(json, "requests_expired"), 0);
  EXPECT_EQ(ExtractCounter(json, "publishes"), 1);
  EXPECT_GE(ExtractCounter(json, "batches"), 1);
  // 8-slot episodes, 32 steps per session: 4 completed episodes each.
  EXPECT_EQ(ExtractCounter(json, "episodes_completed"), 8);
  EXPECT_GE(ExtractCounter(json, "latency_samples"), 1);
}

TEST_F(ServingSoakTest, WatchPromotesNewCheckpointWithoutRestart) {
  Workspace ws("promote");
  const std::string dir = TempPath("promote_dir");
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::copy_file(Checkpoint(), dir + "/ckpt_000001.agsc");

  const pid_t pid = Spawn(
      AGSC_SERVE_BINARY,
      {"--snapshot-dir", dir, "--watch", "--watch-poll-ms", "50",
       "--requests", "0", "--duration-sec", "3", "--stats-json", ws.stats},
      {}, ws.log);
  ASSERT_GT(pid, 0);
  // Drop a newer checkpoint while requests are streaming; the watcher must
  // promote it in-place.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  fs::copy_file(Checkpoint(), dir + "/ckpt_000002.agsc");
  EXPECT_EQ(WaitExit(pid), util::kExitOk) << FileContents(ws.log);

  // Exactly one promotion on top of the initial publish ("--quiet"
  // suppresses the human-readable promotion line; the stats are the
  // contract).
  const std::string json = FileContents(ws.stats);
  EXPECT_EQ(ExtractCounter(json, "publishes"), 2) << FileContents(ws.log);
  EXPECT_EQ(ExtractCounter(json, "publish_rejects"), 0);
  EXPECT_GE(ExtractCounter(json, "requests_ok"), 1);
  fs::remove_all(dir);
}

TEST_F(ServingSoakTest, CorruptedPromotionKeepsOldSnapshotServing) {
  Workspace ws("corrupt_promote");
  const std::string dir = TempPath("corrupt_dir");
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::copy_file(Checkpoint(), dir + "/ckpt_000001.agsc");

  const pid_t pid = Spawn(
      AGSC_SERVE_BINARY,
      {"--snapshot-dir", dir, "--watch", "--watch-poll-ms", "50",
       "--requests", "0", "--duration-sec", "2", "--stats-json", ws.stats},
      {}, ws.log);
  ASSERT_GT(pid, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  {
    std::ofstream out(dir + "/ckpt_000002.agsc",
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  // The rejected promotion must not take the service down or stop serving.
  EXPECT_EQ(WaitExit(pid), util::kExitOk) << FileContents(ws.log);
  const std::string json = FileContents(ws.stats);
  EXPECT_GE(ExtractCounter(json, "publish_rejects"), 1)
      << FileContents(ws.log);
  EXPECT_EQ(ExtractCounter(json, "publishes"), 1);
  EXPECT_GE(ExtractCounter(json, "requests_ok"), 1);
  EXPECT_NE(FileContents(ws.log).find("keeping v1 live"), std::string::npos)
      << FileContents(ws.log);
  fs::remove_all(dir);
}

TEST_F(ServingSoakTest, StalledBatchExpiresRequestsButRunSucceeds) {
  Workspace ws("stall");
  // The first inference batch stalls 150 ms against a 10 ms deadline: its
  // requests expire (fail-fast, no stale actions), later batches serve
  // normally and the run still exits clean with stats flushed.
  ASSERT_EQ(RunServe({"--snapshot", Checkpoint(), "--sessions", "2",
                      "--clients", "2", "--requests", "32", "--deadline-ms",
                      "10", "--stats-json", ws.stats},
                     {"AGSC_FAULT_STALL_TASK=1", "AGSC_FAULT_STALL_MS=150"},
                     ws.log),
            util::kExitOk)
      << FileContents(ws.log);
  const std::string json = FileContents(ws.stats);
  EXPECT_GE(ExtractCounter(json, "requests_expired"), 1);
  EXPECT_GE(ExtractCounter(json, "requests_ok"), 1);
}

TEST_F(ServingSoakTest, TransientStatsWriteFaultIsAbsorbedByRetry) {
  Workspace ws("transient_write");
  // Exactly one failed write: the retry layer absorbs it and the flush
  // succeeds anyway.
  ASSERT_EQ(RunServe({"--snapshot", Checkpoint(), "--requests", "8",
                      "--stats-json", ws.stats},
                     {"AGSC_FAULT_FAIL_WRITE=1"}, ws.log),
            util::kExitOk)
      << FileContents(ws.log);
  EXPECT_GE(ExtractCounter(FileContents(ws.stats), "requests_ok"), 1);
}

TEST_F(ServingSoakTest, PersistentStatsWriteFaultExitsIoError) {
  Workspace ws("persistent_write");
  // Every write fails, outlasting the retry budget: the final stats flush
  // cannot land and the run must report the I/O failure.
  EXPECT_EQ(RunServe({"--snapshot", Checkpoint(), "--requests", "8",
                      "--stats-json", ws.stats},
                     {"AGSC_FAULT_FAIL_WRITE=1",
                      "AGSC_FAULT_FAIL_WRITE_COUNT=99"},
                     ws.log),
            util::kExitIoError)
      << FileContents(ws.log);
  EXPECT_FALSE(fs::exists(ws.stats));
}

TEST_F(ServingSoakTest, SigtermMidStreamStopsCleanlyWithStatsFlushed) {
  Workspace ws("sigterm");
  const pid_t pid = Spawn(
      AGSC_SERVE_BINARY,
      {"--snapshot", Checkpoint(), "--requests", "0", "--duration-sec", "30",
       "--stats-json", ws.stats},
      {}, ws.log, /*quiet=*/false);
  ASSERT_GT(pid, 0);
  // Signal only once the server is past its heavy setup (checkpoint load,
  // session build) and actually streaming — the banner is printed before
  // the client fleet starts, so the grace period buys real requests.
  ASSERT_TRUE(PollLogFor(ws.log, "serving snapshot")) << FileContents(ws.log);
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(WaitExit(pid), util::kExitSignalStop) << FileContents(ws.log);
  // The cooperative stop still flushed the final stats.
  const std::string json = FileContents(ws.stats);
  ASSERT_FALSE(json.empty()) << FileContents(ws.log);
  EXPECT_GE(ExtractCounter(json, "requests_ok"), 1);
  EXPECT_NE(FileContents(ws.log).find("stats flushed"), std::string::npos)
      << FileContents(ws.log);
}

TEST_F(ServingSoakTest, NoLoadableSnapshotExitsServeError) {
  Workspace ws("no_snapshot");
  const std::string dir = TempPath("empty_dir");
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(dir + "/ckpt_000001.agsc",
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  // The only candidate is corrupted: a dispatch service with no policy
  // cannot serve, and says so with its own exit code.
  EXPECT_EQ(RunServe({"--snapshot-dir", dir, "--requests", "8"}, {}, ws.log),
            util::kExitServeError)
      << FileContents(ws.log);
  EXPECT_NE(FileContents(ws.log).find("serve-error"), std::string::npos)
      << FileContents(ws.log);
  fs::remove_all(dir);
}

TEST_F(ServingSoakTest, UsageErrorsUseTheirCode) {
  const std::string log = TempPath("usage.log");
  EXPECT_EQ(RunServe({"--no-such-flag"}, {}, log), util::kExitUsage);
  // A snapshot source is mandatory.
  EXPECT_EQ(RunServe({"--requests", "8"}, {}, log), util::kExitUsage);
  // --watch only makes sense against a directory.
  EXPECT_EQ(RunServe({"--snapshot", Checkpoint(), "--watch", "--requests",
                      "8"},
                     {}, log),
            util::kExitUsage);
  std::remove(log.c_str());
}

// ---------------------------------------------------------------------------
// Network frontend (--listen / core::ServeFrontend): bit-identity with the
// in-process dispatch path, the framed client against the real binary, and
// the flag/exit-code contract.
// ---------------------------------------------------------------------------

TEST_F(ServingSoakTest, TcpFrontendServesBitIdenticalToInProcessDispatch) {
  // Two DispatchServers built from the same env and snapshot: one stepped
  // directly (the oracle), one only reachable through ServeFrontend +
  // ServeClient over loopback. Every session action must match bit for bit
  // — the frames carry floats as raw bit patterns and the frontend adds no
  // computation of its own.
  env::EnvConfig config;
  config.num_timeslots = 8;
  config.num_pois = 12;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  env::ScEnv env(config, map::BuildDataset(map::CampusId::kPurdue, 12), 1);
  core::TrainConfig train;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 7;
  train.verbose = false;
  core::HiMadrlTrainer trainer(env, train);
  const std::shared_ptr<core::PolicySnapshot> snapshot =
      core::PolicySnapshot::FromTrainer(trainer, "<soak>");

  core::DispatchConfig dconfig;
  dconfig.num_sessions = 2;
  dconfig.max_batch = 8;
  dconfig.deadline_ms = 0;
  core::DispatchServer oracle(env, dconfig);
  core::DispatchServer served(env, dconfig);
  oracle.PublishSnapshot(snapshot);
  served.PublishSnapshot(snapshot);
  oracle.Start();
  served.Start();

  core::ServeFrontend::Options fopts;
  fopts.listen_address = "127.0.0.1:0";
  core::ServeFrontend frontend(served, fopts);
  frontend.Start();
  core::ServeClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.bound_port(),
                             /*timeout_ms=*/5000, &error))
      << error;

  // Interleave sessions so batching order differs from request order; the
  // session streams stay deterministic regardless.
  for (int step = 0; step < 20; ++step) {
    for (int session = 0; session < dconfig.num_sessions; ++session) {
      SCOPED_TRACE("step " + std::to_string(step) + " session " +
                   std::to_string(session));
      core::DispatchResult via_tcp;
      ASSERT_TRUE(client.StepSession(session, /*timeout_ms=*/10000, via_tcp));
      const core::DispatchResult direct = oracle.StepSession(session);
      ASSERT_TRUE(via_tcp.ok);
      ASSERT_TRUE(direct.ok);
      EXPECT_EQ(via_tcp.action[0], direct.action[0]);
      EXPECT_EQ(via_tcp.action[1], direct.action[1]);
      EXPECT_EQ(via_tcp.episode_done, direct.episode_done);
      EXPECT_EQ(via_tcp.snapshot_version, direct.snapshot_version);
    }
  }

  // The stateless Act path over the same connection: identical bits too.
  const env::StepResult initial = env::ScEnv(
      config, map::BuildDataset(map::CampusId::kPurdue, 12), 1).Reset();
  core::DispatchResult via_tcp;
  ASSERT_TRUE(
      client.Act(0, initial.observations[0], /*timeout_ms=*/10000, via_tcp));
  const core::DispatchResult direct = oracle.Act(0, initial.observations[0]);
  ASSERT_TRUE(via_tcp.ok);
  EXPECT_EQ(via_tcp.action[0], direct.action[0]);
  EXPECT_EQ(via_tcp.action[1], direct.action[1]);

  client.Close();
  frontend.Stop();
  served.Stop();
  oracle.Stop();
}

/// Polls `path` (written atomically by --port-file) for a positive port.
int PollPortFile(const std::string& path, long deadline_ms = 30000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

TEST_F(ServingSoakTest, ListenFlagServesFramedClientsAndStopsOnSigterm) {
  Workspace ws("listen");
  const std::string port_file = TempPath("listen_port.txt");
  const pid_t pid = Spawn(
      AGSC_SERVE_BINARY,
      {"--snapshot", Checkpoint(), "--requests", "0", "--duration-sec", "30",
       "--listen", "127.0.0.1:0", "--port-file", port_file, "--stats-json",
       ws.stats},
      {}, ws.log);
  ASSERT_GT(pid, 0);
  const int port = PollPortFile(port_file);
  ASSERT_GT(port, 0) << FileContents(ws.log);

  core::ServeClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", port, /*timeout_ms=*/5000, &error))
      << error;
  for (int i = 0; i < 8; ++i) {
    core::DispatchResult result;
    ASSERT_TRUE(client.StepSession(i % 2, /*timeout_ms=*/10000, result))
        << "request " << i;
    EXPECT_TRUE(result.ok) << "request " << i;
    EXPECT_GE(result.snapshot_version, 1u);
  }
  client.Close();

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(WaitExit(pid), util::kExitSignalStop) << FileContents(ws.log);
  const std::string json = FileContents(ws.stats);
  ASSERT_FALSE(json.empty()) << FileContents(ws.log);
  EXPECT_GE(ExtractCounter(json, "requests_ok"), 8);
  std::remove(port_file.c_str());
}

TEST_F(ServingSoakTest, ListenFlagValidationAndNetSetupErrors) {
  const std::string log = TempPath("listen_usage.log");
  // --port-file only makes sense with --listen.
  EXPECT_EQ(RunServe({"--snapshot", Checkpoint(), "--requests", "8",
                      "--port-file", TempPath("unused_port.txt")},
                     {}, log),
            util::kExitUsage);
  // An unusable listen address is a network-setup failure, not usage.
  EXPECT_EQ(RunServe({"--snapshot", Checkpoint(), "--requests", "8",
                      "--listen", "not-a-sockaddr"},
                     {}, log),
            util::kExitNetError)
      << FileContents(log);
  std::remove(log.c_str());
}

// ---------------------------------------------------------------------------
// Overload campaign (`ctest -L overload`): the frontend + dispatch stack
// driven past saturation with misbehaving clients. The headline scenario is
// in-process (full control over fault timing and an oracle DispatchServer
// for bit-exactness); the binary scenario checks the --max-queue /
// --per-client-inflight flags and the flood-fleet fault knobs end to end.
// ---------------------------------------------------------------------------

/// The acceptance scenario from the overload issue: the server at ~2x
/// saturation (every batch stalled) with one FLOODING client (32 requests
/// pipelined against a per-client cap of 8), one STALLED-DRAIN client
/// (pipelines hundreds of requests into a deliberately tiny receive buffer
/// and never reads a byte back), and one WELL-BEHAVED lock-step client.
/// Must hold simultaneously:
///  * the well-behaved client's every request is served within the
///    deadline, bit-identical to an oracle DispatchServer;
///  * the flooder is bounded by its cap — and every one of its requests
///    gets an explicit ok/expired/rejected answer (none hang);
///  * the staller trips the connection write budget and is quarantined;
///  * a health probe on a dedicated connection sees it all.
TEST_F(ServingSoakTest, OverloadTwiceSaturationFairnessQuarantineAndHealth) {
  env::EnvConfig config;
  config.num_timeslots = 8;
  config.num_pois = 12;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  env::ScEnv env(config, map::BuildDataset(map::CampusId::kPurdue, 12), 1);
  core::TrainConfig train;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 7;
  train.verbose = false;
  core::HiMadrlTrainer trainer(env, train);
  const std::shared_ptr<core::PolicySnapshot> snapshot =
      core::PolicySnapshot::FromTrainer(trainer, "<overload>");

  core::DispatchConfig dconfig;
  dconfig.num_sessions = 2;
  dconfig.max_batch = 4;
  dconfig.deadline_ms = 250;
  dconfig.per_client_inflight = 8;
  dconfig.max_queue = 64;
  core::DispatchServer served(env, dconfig);
  served.PublishSnapshot(snapshot);
  served.Start();

  // The oracle is only stepped AFTER the fault injector is reset (the
  // stall hook is process-global); deadline 0 = never expires.
  core::DispatchConfig oconfig = dconfig;
  oconfig.deadline_ms = 0;
  oconfig.per_client_inflight = 0;
  core::DispatchServer oracle(env, oconfig);
  oracle.PublishSnapshot(snapshot);
  oracle.Start();

  core::ServeFrontend::Options fopts;
  fopts.listen_address = "127.0.0.1:0";
  fopts.write_timeout_ms = 300;  // The write budget under test.
  fopts.send_buffer_bytes = 4096;
  fopts.max_pipeline = 512;
  core::ServeFrontend frontend(served, fopts);
  frontend.Start();
  const int port = frontend.bound_port();
  ASSERT_GT(port, 0);

  // Saturate: every inference batch stalls 20 ms, so the flood below
  // offers well over 2x what the batcher can drain.
  util::FaultInjector::Config fault;
  fault.stall_every = 1;
  fault.stall_ms = 20;
  util::FaultInjector::Instance().set_config(fault);

  // Stalled-drain client: a raw socket whose receive buffer is shrunk
  // BEFORE connect (so the advertised TCP window stays tiny), pipelining
  // 600 step requests and never reading a response. Responses back up
  // through its rcvbuf and the frontend's shrunken sndbuf until the
  // bounded write trips the budget.
  util::IgnoreSigpipe();
  const int staller = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(staller, 0);
  int rcvbuf = 2048;
  ASSERT_EQ(::setsockopt(staller, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf)),
            0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(staller, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  {
    util::FrameWriter staller_writer(staller);
    core::ServeStepRequest step;
    step.session = 1;  // Session 0 belongs to the well-behaved client.
    const std::string payload = core::EncodeServeStepRequest(step);
    for (uint64_t seq = 0; seq < 600; ++seq) {
      ASSERT_EQ(staller_writer.Write(core::kSrvMsgStepRequest, seq, payload,
                                     /*timeout_ms=*/10000),
                util::IpcStatus::kOk)
          << "staller request " << seq;
    }
  }

  const env::StepResult initial =
      env::ScEnv(config, map::BuildDataset(map::CampusId::kPurdue, 12), 1)
          .Reset();
  const std::vector<float>& obs = initial.observations[0];

  core::ServeClient flooder;
  core::ServeClient steady;
  std::string error;
  ASSERT_TRUE(flooder.Connect("127.0.0.1", port, 5000, &error)) << error;
  ASSERT_TRUE(steady.Connect("127.0.0.1", port, 5000, &error)) << error;

  int flood_ok = 0, flood_rejected = 0, flood_expired = 0;
  std::vector<std::array<float, 2>> flood_actions;
  std::vector<std::array<float, 2>> steady_actions;
  for (int round = 0; round < 8; ++round) {
    // 32 pipelined stateless Acts vs a per-client cap of 8.
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(flooder.SendAct(0, obs, 5000)) << "round " << round;
    }
    // The well-behaved client keeps lock-stepping its own session while
    // the flood is in flight; fairness means it never waits behind the
    // flood, so the server-measured latency stays within the deadline.
    for (int i = 0; i < 2; ++i) {
      core::DispatchResult result;
      ASSERT_TRUE(steady.StepSession(0, /*timeout_ms=*/20000, result));
      ASSERT_TRUE(result.ok)
          << "round " << round << ": well-behaved request failed (reason "
          << core::RejectReasonName(result.reject_reason) << ")";
      EXPECT_LE(result.latency_ms, static_cast<double>(dconfig.deadline_ms));
      steady_actions.push_back({result.action[0], result.action[1]});
    }
    for (int i = 0; i < 32; ++i) {
      core::DispatchResult result;
      ASSERT_TRUE(flooder.ReadResponse(/*timeout_ms=*/20000, result))
          << "round " << round << " response " << i;
      if (result.ok) {
        ++flood_ok;
        flood_actions.push_back({result.action[0], result.action[1]});
      } else if (result.rejected) {
        EXPECT_EQ(result.reject_reason, core::RejectReason::kClientCap);
        ++flood_rejected;
      } else if (result.expired) {
        ++flood_expired;
      } else {
        FAIL() << "flood response without an explicit status";
      }
    }
  }
  // Every flood request was answered explicitly — served, expired, or
  // rejected. None hang, none vanish.
  EXPECT_EQ(flood_ok + flood_rejected + flood_expired, 8 * 32);
  EXPECT_GE(flood_ok, 1);        // The cap admits, not blackholes.
  EXPECT_GE(flood_rejected, 1);  // 32 in flight vs cap 8 must reject.

  // Health probe on a DEDICATED connection (so it does not queue behind
  // pipelined inference responses).
  core::ServeClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", port, 5000, &error)) << error;
  core::DispatchHealth health;
  ASSERT_TRUE(probe.Health(/*timeout_ms=*/10000, health));
  EXPECT_EQ(health.snapshot_version, 1u);
  EXPECT_GE(health.requests_ok, static_cast<uint64_t>(steady_actions.size()));
  EXPECT_GE(health.requests_rejected, static_cast<uint64_t>(flood_rejected));
  EXPECT_GT(health.ewma_batch_ms, 0.0);

  // The stalled-drain client tripped its write budget: quarantined, its
  // connection torn down. (The budget is 300 ms; the generous poll below
  // only absorbs sanitizer scheduling noise.)
  const auto quarantine_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < quarantine_deadline &&
         frontend.clients_quarantined() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(frontend.clients_quarantined(), 1u);

  // ...and from the staller's side: draining the socket hits EOF (or a
  // reset) — the server really disconnected it, not just stopped talking.
  ASSERT_TRUE(util::SetNonBlocking(staller, true));
  bool torn_down = false;
  char drain[4096];
  const auto eof_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < eof_deadline) {
    const ssize_t n = ::recv(staller, drain, sizeof(drain), 0);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      torn_down = true;
      break;
    }
    if (n < 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(torn_down);
  ::close(staller);

  util::FaultInjector::Instance().Reset();
  flooder.Close();
  steady.Close();
  probe.Close();
  frontend.Stop();

  // Bit-exactness under overload: the well-behaved client's session-0
  // stream and the flooder's admitted stateless Acts must match the
  // oracle bit for bit.
  for (size_t i = 0; i < steady_actions.size(); ++i) {
    SCOPED_TRACE("steady step " + std::to_string(i));
    const core::DispatchResult direct = oracle.StepSession(0);
    ASSERT_TRUE(direct.ok);
    EXPECT_EQ(steady_actions[i][0], direct.action[0]);
    EXPECT_EQ(steady_actions[i][1], direct.action[1]);
  }
  const core::DispatchResult direct_act = oracle.Act(0, obs);
  ASSERT_TRUE(direct_act.ok);
  for (size_t i = 0; i < flood_actions.size(); ++i) {
    SCOPED_TRACE("flood act " + std::to_string(i));
    EXPECT_EQ(flood_actions[i][0], direct_act.action[0]);
    EXPECT_EQ(flood_actions[i][1], direct_act.action[1]);
  }

  served.Stop();
  oracle.Stop();
  const core::DispatchStats stats = served.Stats();
  EXPECT_EQ(stats.clients_quarantined, 1u);
  EXPECT_GE(stats.requests_rejected, static_cast<uint64_t>(flood_rejected));
}

/// The AGSC_FAULT_STALL_DRAIN_MS knob: every ServeClient response read
/// sleeps first, simulating a peer that drains its socket slowly. (The
/// headline scenario's staller never drains at all; this knob is the
/// throttled variant used by external soak drivers.)
TEST_F(ServingSoakTest, OverloadStallDrainFaultThrottlesResponseReads) {
  env::EnvConfig config;
  config.num_timeslots = 8;
  config.num_pois = 12;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  env::ScEnv env(config, map::BuildDataset(map::CampusId::kPurdue, 12), 1);
  core::TrainConfig train;
  train.net.hidden = {16};
  train.eoi.hidden = {12};
  train.seed = 7;
  train.verbose = false;
  core::HiMadrlTrainer trainer(env, train);

  core::DispatchConfig dconfig;
  dconfig.num_sessions = 1;
  dconfig.deadline_ms = 0;
  core::DispatchServer server(env, dconfig);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<d>"));
  server.Start();
  core::ServeFrontend::Options fopts;
  fopts.listen_address = "127.0.0.1:0";
  core::ServeFrontend frontend(server, fopts);
  frontend.Start();

  util::FaultInjector::Config fault;
  fault.stall_drain_ms = 60;
  util::FaultInjector::Instance().set_config(fault);

  core::ServeClient client;
  std::string error;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", frontend.bound_port(), 5000, &error))
      << error;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    core::DispatchResult result;
    ASSERT_TRUE(client.StepSession(0, /*timeout_ms=*/10000, result));
    EXPECT_TRUE(result.ok);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 3 * 60);  // Each read slept before draining.

  util::FaultInjector::Instance().Reset();
  client.Close();
  frontend.Stop();
  server.Stop();
}

/// End-to-end through the real binary: AGSC_FAULT_FLOOD_CLIENTS turns the
/// first local fleet client into a flooder (depth 32 vs --per-client-inflight
/// 4); the run must stay healthy, bound the flooder via the cap, keep the
/// well-behaved client whole, and account for every request in the flushed
/// stats JSON.
TEST_F(ServingSoakTest, OverloadLocalFloodFleetBoundedByCapAndAccounted) {
  Workspace ws("flood");
  ASSERT_EQ(RunServe({"--snapshot", Checkpoint(), "--sessions", "2",
                      "--clients", "2", "--requests", "64", "--deadline-ms",
                      "300", "--max-queue", "32", "--per-client-inflight",
                      "4", "--stats-json", ws.stats},
                     {"AGSC_FAULT_FLOOD_CLIENTS=1",
                      "AGSC_FAULT_FLOOD_DEPTH=32",
                      "AGSC_FAULT_STALL_EVERY=2", "AGSC_FAULT_STALL_MS=10"},
                     ws.log),
            util::kExitOk)
      << FileContents(ws.log);
  const std::string json = FileContents(ws.stats);
  ASSERT_FALSE(json.empty());
  // The overload knobs are echoed into the stats (provenance for sweeps).
  EXPECT_EQ(ExtractCounter(json, "max_queue"), 32);
  EXPECT_EQ(ExtractCounter(json, "per_client_inflight"), 4);
  EXPECT_EQ(ExtractCounter(json, "admission"), 1);
  // The flooder keeps 32 in flight against a cap of 4: rejections are
  // structural, and specifically client-cap rejections.
  EXPECT_GE(ExtractCounter(json, "rejected_client_cap"), 1);
  // The well-behaved client's 64 lock-step requests all land (it never
  // holds more than one in flight, so no cap or queue limit touches it).
  EXPECT_GE(ExtractCounter(json, "requests_ok"), 64);
  // Every request is accounted: served, expired, rejected, or shed.
  EXPECT_EQ(ExtractCounter(json, "requests_ok") +
                ExtractCounter(json, "requests_expired") +
                ExtractCounter(json, "requests_rejected") +
                ExtractCounter(json, "requests_shed"),
            128);
  // Clean landing: queue drained, brownout exited, nobody quarantined.
  EXPECT_EQ(ExtractCounter(json, "queue_depth"), 0);
  EXPECT_EQ(ExtractCounter(json, "overloaded"), 0);
  EXPECT_EQ(ExtractCounter(json, "clients_quarantined"), 0);
}

TEST_F(ServingSoakTest, VersionFlagPrintsBuildProvenance) {
  const std::string log = TempPath("version.log");
  EXPECT_EQ(RunServe({"--version"}, {}, log), util::kExitOk);
  const std::string out = FileContents(log);
  EXPECT_NE(out.find("agsc_serve compiler="), std::string::npos) << out;
  EXPECT_NE(out.find("gemm-isa="), std::string::npos) << out;
  std::remove(log.c_str());
}

}  // namespace
}  // namespace agsc
