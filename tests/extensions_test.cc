// Tests for the extension features: the SliceCols op, the LSTM cell,
// TDMA/OFDMA medium-access alternatives, and trainer checkpointing.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/hi_madrl.h"
#include "nn/gru.h"
#include "nn/lstm.h"
#include "tests/test_util.h"

namespace agsc {
namespace {

TEST(SliceColsTest, ForwardSelectsRange) {
  nn::Tensor m = nn::Tensor::FromRowMajor(2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  const nn::Tensor s =
      nn::SliceCols(nn::Variable::Constant(m), 1, 2).value();
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_EQ(s(0, 0), 2.0f);
  EXPECT_EQ(s(1, 1), 7.0f);
}

TEST(SliceColsTest, RangeValidation) {
  nn::Variable m = nn::Variable::Constant(nn::Tensor(2, 4));
  EXPECT_THROW(nn::SliceCols(m, -1, 2), std::invalid_argument);
  EXPECT_THROW(nn::SliceCols(m, 3, 2), std::invalid_argument);
  EXPECT_THROW(nn::SliceCols(m, 0, 0), std::invalid_argument);
}

TEST(SliceColsTest, GradientScattersIntoSlice) {
  util::Rng rng(1);
  agsc::testing::CheckGradient(
      [](const nn::Variable& x) {
        return nn::Sum(nn::Square(nn::SliceCols(x, 1, 2)));
      },
      nn::Tensor::Uniform(3, 4, rng, -1.0f, 1.0f));
  // Gradient outside the slice is exactly zero.
  nn::Variable x = nn::Variable::Parameter(nn::Tensor(2, 4, 1.0f));
  nn::Sum(nn::SliceCols(x, 0, 2)).Backward();
  EXPECT_EQ(x.grad()(0, 3), 0.0f);
  EXPECT_EQ(x.grad()(0, 0), 1.0f);
}

TEST(LstmTest, PackedStateShapes) {
  util::Rng rng(2);
  nn::LstmCell lstm(3, 5, rng);
  EXPECT_EQ(lstm.state_size(), 10);
  nn::Tensor s0 = lstm.InitialState(4);
  EXPECT_EQ(s0.rows(), 4);
  EXPECT_EQ(s0.cols(), 10);
  nn::Variable next = lstm.Step(nn::Variable::Constant(nn::Tensor(4, 3, 0.5f)),
                                nn::Variable::Constant(s0));
  EXPECT_EQ(next.rows(), 4);
  EXPECT_EQ(next.cols(), 10);
  nn::Variable out = lstm.Output(next);
  EXPECT_EQ(out.cols(), 5);
}

TEST(LstmTest, HiddenOutputBounded) {
  util::Rng rng(3);
  nn::LstmCell lstm(2, 4, rng);
  nn::Variable state = nn::Variable::Constant(lstm.InitialState(1));
  for (int t = 0; t < 10; ++t) {
    state = lstm.Step(
        nn::Variable::Constant(nn::Tensor(1, 2, 5.0f)), state);
  }
  const nn::Tensor h = lstm.Output(state).value();
  for (int i = 0; i < h.size(); ++i) {
    EXPECT_GE(h[i], -1.0f);
    EXPECT_LE(h[i], 1.0f);
  }
}

TEST(LstmTest, CellStateCarriesMemory) {
  util::Rng rng(4);
  nn::LstmCell lstm(1, 4, rng);
  // Feed a spike then zeros; the state must remain different from the
  // all-zeros trajectory (memory).
  nn::Variable spiked = nn::Variable::Constant(lstm.InitialState(1));
  nn::Variable silent = nn::Variable::Constant(lstm.InitialState(1));
  spiked = lstm.Step(nn::Variable::Constant(nn::Tensor(1, 1, 3.0f)), spiked);
  silent = lstm.Step(nn::Variable::Constant(nn::Tensor(1, 1)), silent);
  for (int t = 0; t < 5; ++t) {
    spiked = lstm.Step(nn::Variable::Constant(nn::Tensor(1, 1)), spiked);
    silent = lstm.Step(nn::Variable::Constant(nn::Tensor(1, 1)), silent);
  }
  EXPECT_FALSE(spiked.value().SameAs(silent.value()));
}

TEST(LstmTest, BackpropThroughTime) {
  util::Rng rng(5);
  nn::LstmCell lstm(2, 3, rng);
  nn::Variable x = nn::Variable::Parameter(nn::Tensor(1, 2, 0.4f));
  nn::Variable state = nn::Variable::Constant(lstm.InitialState(1));
  for (int t = 0; t < 3; ++t) state = lstm.Step(x, state);
  nn::Sum(lstm.Output(state)).Backward();
  EXPECT_GT(x.grad().Norm(), 0.0f);
  for (nn::Variable& p : lstm.Parameters()) {
    EXPECT_GT(p.grad().Norm(), 0.0f) << "dead LSTM parameter";
  }
}

TEST(LstmTest, ParameterCountLargerThanGru) {
  util::Rng rng(6);
  nn::LstmCell lstm(8, 8, rng);
  nn::GruCell gru(8, 8, rng);
  EXPECT_GT(lstm.ParameterCount(), gru.ParameterCount());
}

// ---------------------------------------------------------------------------
// Medium access.
// ---------------------------------------------------------------------------

const map::Dataset& SmallDataset() {
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 20));
  return *dataset;
}

env::EnvConfig MaConfig(env::MediumAccess ma) {
  env::EnvConfig config;
  config.num_timeslots = 12;
  config.num_pois = 20;
  config.num_uavs = 1;
  config.num_ugvs = 1;
  config.rayleigh_fading = false;
  config.medium_access = ma;
  return config;
}

double RunIdleEpisode(env::MediumAccess ma, env::Metrics* metrics) {
  env::ScEnv env(MaConfig(ma), SmallDataset(), 5);
  env.Reset();
  std::vector<env::UvAction> idle(env.num_agents(), env::UvAction{0.0, -1.0});
  env::StepResult r;
  r.done = false;
  double collected = 0.0;
  while (!r.done) {
    r = env.Step(idle);
    for (const env::CollectionEvent& ev : r.events) {
      collected += ev.collected_uav_gbit + ev.collected_ugv_gbit;
    }
  }
  if (metrics != nullptr) *metrics = env.EpisodeMetrics();
  return collected;
}

TEST(MediumAccessTest, AllSchemesCollectData) {
  for (const auto ma : {env::MediumAccess::kNoma, env::MediumAccess::kTdma,
                        env::MediumAccess::kOfdma}) {
    EXPECT_GT(RunIdleEpisode(ma, nullptr), 0.0);
  }
}

TEST(MediumAccessTest, OfdmaOutperformsTdmaPerEvent) {
  // (B/2) log2(1 + 2s) >= (1/2) B log2(1 + s) by concavity of log, with
  // equality only at s = 0 — OFDMA should collect at least as much as TDMA
  // under identical (deterministic) conditions.
  const double ofdma = RunIdleEpisode(env::MediumAccess::kOfdma, nullptr);
  const double tdma = RunIdleEpisode(env::MediumAccess::kTdma, nullptr);
  EXPECT_GE(ofdma, tdma - 1e-9);
}

TEST(MediumAccessTest, OrthogonalSchemesRemoveInterference) {
  // With a very strict threshold, NOMA's interfered UAV chain loses data
  // while the orthogonal schemes (boosted / clean SINR) lose no more.
  env::EnvConfig noma = MaConfig(env::MediumAccess::kNoma);
  noma.sinr_threshold_db = 10.0;
  env::EnvConfig tdma = MaConfig(env::MediumAccess::kTdma);
  tdma.sinr_threshold_db = 10.0;
  env::ScEnv env_noma(noma, SmallDataset(), 6);
  env::ScEnv env_tdma(tdma, SmallDataset(), 6);
  for (env::ScEnv* env : {&env_noma, &env_tdma}) {
    env->Reset();
    std::vector<env::UvAction> idle(env->num_agents(),
                                    env::UvAction{0.0, -1.0});
    env::StepResult r;
    r.done = false;
    while (!r.done) r = env->Step(idle);
  }
  EXPECT_GE(env_noma.EpisodeMetrics().data_loss_ratio,
            env_tdma.EpisodeMetrics().data_loss_ratio);
}

// ---------------------------------------------------------------------------
// Checkpointing.
// ---------------------------------------------------------------------------

TEST(CheckpointTest, SaveLoadRestoresPolicyAndLcfs) {
  env::EnvConfig config = MaConfig(env::MediumAccess::kNoma);
  env::ScEnv env(config, SmallDataset(), 7);
  core::TrainConfig train;
  train.iterations = 2;
  train.episodes_per_iteration = 1;
  train.net.hidden = {24};
  train.eoi.hidden = {16};
  core::HiMadrlTrainer a(env, train);
  a.Train();
  const std::string path = ::testing::TempDir() + "/agsc_ckpt.bin";
  ASSERT_TRUE(a.SaveCheckpoint(path));

  env::ScEnv env_b(config, SmallDataset(), 8);
  core::HiMadrlTrainer b(env_b, train);
  ASSERT_TRUE(b.LoadCheckpoint(path));
  // Identical deterministic actions on the same observation.
  const env::StepResult r = env.Reset();
  util::Rng rng(1);
  for (int k = 0; k < env.num_agents(); ++k) {
    const env::UvAction ua = a.Act(env, k, r.observations[k], rng, true);
    const env::UvAction ub = b.Act(env, k, r.observations[k], rng, true);
    EXPECT_EQ(ua.raw_direction, ub.raw_direction);
    EXPECT_EQ(ua.raw_speed, ub.raw_speed);
    // LCFs roundtrip through float32 serialization.
    EXPECT_NEAR(a.lcfs()[k].phi_deg, b.lcfs()[k].phi_deg, 1e-4);
    EXPECT_NEAR(a.lcfs()[k].chi_deg, b.lcfs()[k].chi_deg, 1e-4);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsWrongArchitecture) {
  env::EnvConfig config = MaConfig(env::MediumAccess::kNoma);
  env::ScEnv env(config, SmallDataset(), 9);
  core::TrainConfig train;
  train.iterations = 1;
  train.episodes_per_iteration = 1;
  train.net.hidden = {24};
  train.eoi.hidden = {16};
  core::HiMadrlTrainer a(env, train);
  const std::string path = ::testing::TempDir() + "/agsc_ckpt2.bin";
  ASSERT_TRUE(a.SaveCheckpoint(path));
  core::TrainConfig other = train;
  other.net.hidden = {32};
  env::ScEnv env_b(config, SmallDataset(), 10);
  core::HiMadrlTrainer b(env_b, other);
  EXPECT_FALSE(b.LoadCheckpoint(path));
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  env::EnvConfig config = MaConfig(env::MediumAccess::kNoma);
  env::ScEnv env(config, SmallDataset(), 11);
  core::TrainConfig train;
  train.net.hidden = {24};
  train.eoi.hidden = {16};
  core::HiMadrlTrainer trainer(env, train);
  EXPECT_FALSE(trainer.LoadCheckpoint("/nonexistent/agsc.bin"));
}

}  // namespace
}  // namespace agsc
