// Tests for the fixed-size thread pool behind the vectorized rollout
// sampler: inline (0-thread) mode, future semantics, exception
// propagation, ParallelFor's deterministic lowest-index rethrow, and
// contended submit/drain stress. The stress cases are the primary
// ThreadSanitizer targets (build with -DAGSC_SANITIZE="thread").

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace agsc {
namespace {

TEST(ThreadPoolTest, SubmitRunsTaskAndFutureBecomesReady) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::future<void> fut = pool.Submit([&] { ran.fetch_add(1); });
  fut.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, InlineModeRunsOnCallingThread) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed;
  std::future<void> fut =
      pool.Submit([&] { observed = std::this_thread::get_id(); });
  // Inline execution: the task already ran, on our thread.
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  fut.get();
  EXPECT_EQ(observed, caller);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  util::ThreadPool pool(1);
  std::future<void> fut =
      pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(
      {
        try {
          fut.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task boom");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, InlineSubmitPropagatesException) {
  util::ThreadPool pool(0);
  std::future<void> fut =
      pool.Submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsNoOp) {
  util::ThreadPool pool(2);
  pool.ParallelFor(0, [](int) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestFailingIndex) {
  util::ThreadPool pool(4);
  // Several indices throw; the contract is that the exception of the
  // LOWEST failing index is rethrown, independent of scheduling, and
  // every non-throwing body still runs.
  std::vector<std::atomic<int>> hits(64);
  auto body = [&](int i) {
    hits[i].fetch_add(1);
    if (i == 7 || i == 31 || i == 50) {
      throw std::runtime_error("fail " + std::to_string(i));
    }
  };
  for (int repeat = 0; repeat < 20; ++repeat) {
    for (auto& h : hits) h.store(0);
    try {
      pool.ParallelFor(64, body);
      FAIL() << "expected ParallelFor to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail 7");
    }
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingQueue) {
  std::atomic<int> done{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
    // Destructor must finish every queued task before joining.
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolStressTest, ContendedSubmitAndDrain) {
  // Many producer threads hammer Submit while pool workers drain; the sum
  // of all task effects must be exact. Run under TSan to check the
  // queue/cv synchronization.
  util::ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  std::atomic<long> sum{0};
  std::vector<std::vector<std::future<void>>> futures(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kTasksPerProducer);
      for (int t = 0; t < kTasksPerProducer; ++t) {
        const long v = static_cast<long>(p) * kTasksPerProducer + t;
        futures[p].push_back(pool.Submit([&sum, v] { sum.fetch_add(v); }));
      }
    });
  }
  for (auto& thread : producers) thread.join();
  for (auto& per_producer : futures) {
    for (auto& fut : per_producer) fut.get();
  }
  constexpr long kTotal =
      static_cast<long>(kProducers) * kTasksPerProducer;
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

TEST(ThreadPoolStressTest, RepeatedParallelForReusesPool) {
  util::ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(37, [&](int i) { total.fetch_add(i + 1); });
  }
  EXPECT_EQ(total.load(), 50L * (37L * 38L / 2L));
}

// ---------------------------------------------------------------------------
// RunningStats::Merge under real pool parallelism (satellite: parallel
// merge must equal sequential accumulation). The pure single-threaded
// property tests live in util_test.cc; this one exercises the combine
// across threads over disjoint ranges.
// ---------------------------------------------------------------------------

TEST(ThreadPoolStressTest, RunningStatsParallelMergeMatchesSequential) {
  util::Rng rng(2024);
  constexpr int kN = 10000;
  std::vector<double> xs(kN);
  for (auto& x : xs) x = rng.Uniform() * 20.0 - 10.0;

  util::RunningStats sequential;
  sequential.AddAll(xs);

  constexpr int kShards = 8;
  std::vector<util::RunningStats> shards(kShards);
  util::ThreadPool pool(4);
  pool.ParallelFor(kShards, [&](int s) {
    // Disjoint contiguous ranges: shard s owns [s*kN/kShards, ...).
    const int lo = s * kN / kShards;
    const int hi = (s + 1) * kN / kShards;
    for (int i = lo; i < hi; ++i) shards[s].Add(xs[i]);
  });
  util::RunningStats merged;
  for (const auto& shard : shards) merged.Merge(shard);

  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_DOUBLE_EQ(merged.Min(), sequential.Min());
  EXPECT_DOUBLE_EQ(merged.Max(), sequential.Max());
  EXPECT_NEAR(merged.Mean(), sequential.Mean(), 1e-12);
  EXPECT_NEAR(merged.Variance(), sequential.Variance(), 1e-9);
}

}  // namespace
}  // namespace agsc
