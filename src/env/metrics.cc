#include "env/metrics.h"

namespace agsc::env {

std::vector<double> Metrics::ToVector() const {
  return {data_collection_ratio, data_loss_ratio, energy_consumption_ratio,
          geographical_fairness, efficiency};
}

Metrics Metrics::Average(const std::vector<Metrics>& all) {
  Metrics avg;
  if (all.empty()) return avg;
  for (const Metrics& m : all) {
    avg.data_collection_ratio += m.data_collection_ratio;
    avg.data_loss_ratio += m.data_loss_ratio;
    avg.energy_consumption_ratio += m.energy_consumption_ratio;
    avg.geographical_fairness += m.geographical_fairness;
    avg.efficiency += m.efficiency;
  }
  const double inv = 1.0 / static_cast<double>(all.size());
  avg.data_collection_ratio *= inv;
  avg.data_loss_ratio *= inv;
  avg.energy_consumption_ratio *= inv;
  avg.geographical_fairness *= inv;
  avg.efficiency *= inv;
  return avg;
}

double JainFairness(const std::vector<double>& collected_fraction) {
  double sum = 0.0, sum_sq = 0.0;
  for (double f : collected_fraction) {
    sum += f;
    sum_sq += f * f;
  }
  if (sum_sq <= 0.0) return 0.0;
  const double n = static_cast<double>(collected_fraction.size());
  return (sum * sum) / (n * sum_sq);
}

double Efficiency(double psi, double sigma, double kappa, double xi) {
  if (xi <= 0.0) return 0.0;
  return psi * (1.0 - sigma) * kappa / xi;
}

}  // namespace agsc::env
