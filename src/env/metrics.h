#ifndef AGSC_ENV_METRICS_H_
#define AGSC_ENV_METRICS_H_

#include <vector>

namespace agsc::env {

/// The paper's five evaluation metrics (Section IV-A, Eqns. 12-16).
struct Metrics {
  double data_collection_ratio = 0.0;  ///< psi, Eqn. 12.
  double data_loss_ratio = 0.0;        ///< sigma, Eqn. 13.
  double energy_consumption_ratio = 0.0;  ///< xi, Eqn. 14.
  double geographical_fairness = 0.0;  ///< kappa (Jain index), Eqn. 15.
  double efficiency = 0.0;             ///< lambda, Eqn. 16.

  /// Returns {psi, sigma, xi, kappa, lambda} for table printing.
  std::vector<double> ToVector() const;

  /// Averages a set of per-episode metrics component-wise.
  static Metrics Average(const std::vector<Metrics>& all);
};

/// Jain's fairness index over per-PoI collection fractions (Eqn. 15).
/// `collected_fraction[i]` = (D_0^i - D_T^i) / D_0^i. Returns 0 when
/// nothing was collected.
double JainFairness(const std::vector<double>& collected_fraction);

/// lambda = psi * (1 - sigma) * kappa / xi (Eqn. 16); 0 when xi == 0.
double Efficiency(double psi, double sigma, double kappa, double xi);

}  // namespace agsc::env

#endif  // AGSC_ENV_METRICS_H_
