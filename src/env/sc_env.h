#ifndef AGSC_ENV_SC_ENV_H_
#define AGSC_ENV_SC_ENV_H_

#include <cstdint>
#include <vector>

#include "env/channel.h"
#include "env/channel_batch.h"
#include "env/config.h"
#include "env/metrics.h"
#include "map/spatial_index.h"
#include "map/trace.h"
#include "util/rng.h"

namespace agsc::env {

/// Unmanned-vehicle kind (the two heterogeneous agent types).
enum class UvKind { kUav, kUgv };

/// Dynamic state of one UV.
struct UvState {
  UvKind kind = UvKind::kUav;
  map::Point2 pos;
  map::RoadPosition road_pos;  ///< Valid for UGVs only.
  double energy_j = 0.0;       ///< Remaining energy E_t^k.
  double initial_energy_j = 0.0;
  bool active = true;          ///< False once the battery is exhausted.
  double last_speed = 0.0;     ///< Realized speed in the last slot (m/s).
};

/// Raw policy action: two reals, squashed/clamped to [-1, 1] by the env.
/// Mapping (Section IV-B2): direction = (a0+1)*pi in [0, 2pi); speed =
/// (a1+1)/2 * v_max. For UGVs the same desired displacement is projected
/// onto the road network (A_g subset of A_u).
struct UvAction {
  double raw_direction = 0.0;
  double raw_speed = 0.0;
};

/// One AG-NOMA data-collection event (u, g, i, i')_z of Section III-B.
struct CollectionEvent {
  int subchannel = -1;
  int uav = -1;      ///< Global agent index of the relay-source UAV; -1 none.
  int ugv = -1;      ///< Global agent index of the decoding UGV; -1 none.
  int poi_uav = -1;  ///< PoI i accessed by the UAV; -1 none.
  int poi_ugv = -1;  ///< PoI i' accessed directly by the UGV; -1 none.
  double collected_uav_gbit = 0.0;  ///< Delta D_{z,t}^{i,u} (Def. 1).
  double collected_ugv_gbit = 0.0;  ///< Delta D_{z,t}^{i',g} (Def. 2).
  bool loss_uav = false;  ///< SINR below threshold on the UAV chain.
  bool loss_ugv = false;  ///< SINR below threshold on the UGV uplink.
  double sinr_uplink_uav_db = 0.0;  ///< gamma^{i,u} (Eqn. 4).
  double sinr_relay_db = 0.0;       ///< gamma^{u,g} (Eqn. 9).
  double sinr_uplink_ugv_db = 0.0;  ///< gamma^{i',g} (Eqn. 6).
};

/// Output of Reset/Step.
struct StepResult {
  std::vector<std::vector<float>> observations;  ///< o_t^k per agent.
  std::vector<float> state;                      ///< Global s_t.
  std::vector<double> rewards;  ///< Extrinsic r_{t,ext}^k (Eqn. 17).
  bool done = false;
  std::vector<CollectionEvent> events;  ///< This slot's collection events.
};

struct ScEnvHotPathPeer;

/// The air-ground spatial-crowdsourcing Dec-POMDP (Sections III & IV).
///
/// Agent indexing: 0..U-1 are UAVs, U..U+G-1 are UGVs. Each timeslot first
/// moves every UV (UAVs freely, UGVs along the road graph), charges movement
/// energy (Eqn. 1), then runs AG-NOMA data collection over Z subchannels
/// (Defs. 1-2) and returns per-agent extrinsic rewards (Eqn. 17).
///
/// Hot path: with `EnvConfig::use_spatial_index` (default) the env uses
/// grid-accelerated nearest queries and the road graph's cached routing; the
/// naive linear-scan path (`use_spatial_index = false`) is bit-identical and
/// kept as a test oracle. The out-param `Reset`/`Step` overloads reuse the
/// caller's `StepResult` storage, so a steady-state step allocates nothing
/// once buffers are warm (with `record_event_log` off).
class ScEnv {
 public:
  static constexpr int kActionDim = 2;

  /// `dataset` supplies the campus (roads, bounds, spawn) and PoI layout.
  ScEnv(const EnvConfig& config, map::Dataset dataset, uint64_t seed);

  int num_agents() const { return config_.num_agents(); }
  int num_uavs() const { return config_.num_uavs; }
  int num_ugvs() const { return config_.num_ugvs; }
  bool IsUav(int k) const { return k < config_.num_uavs; }

  /// Length of each local observation o^k: 3*(K + I) normalized features,
  /// self entry first, out-of-range entries blinded to zero.
  int obs_dim() const;

  /// Length of the global state s (same layout, no blinding, canonical UV
  /// order).
  int state_dim() const;

  /// Starts a new episode; returns initial observations (rewards zero).
  StepResult Reset();

  /// Advances one timeslot. `actions` must have num_agents() entries.
  StepResult Step(const std::vector<UvAction>& actions);

  /// Out-param variants of Reset/Step: identical results, but they reuse
  /// `result`'s storage so the steady-state hot path does not allocate.
  void Reset(StepResult& result);
  void Step(const std::vector<UvAction>& actions, StepResult& result);

  /// Metrics of the episode so far (final once done).
  Metrics EpisodeMetrics() const;

  int timeslot() const { return timeslot_; }
  const UvState& uv(int k) const { return uvs_[k]; }
  double PoiRemainingGbit(int i) const { return poi_data_[i]; }
  const map::Dataset& dataset() const { return dataset_; }
  const EnvConfig& config() const { return config_; }
  const ChannelModel& channel() const { return channel_; }

  /// Permanently switches this env onto the naive linear-scan path (the
  /// retained test oracle). Only the indexed -> naive direction exists: the
  /// spatial grids are built at construction time, so an env downgraded by
  /// the oracle-fallback guard stays naive for its lifetime. Bit-identical
  /// results, just slower.
  void DisableSpatialIndex() { config_.use_spatial_index = false; }

  /// Permanently switches this env onto the scalar per-link ChannelModel
  /// path (the retained channel oracle), clearing `env_fast_math` too since
  /// the fast tier only exists inside the batched kernels. Like
  /// DisableSpatialIndex, only the batched -> scalar direction exists; the
  /// default batched tier is bit-identical, just slower when disabled.
  void DisableChannelBatch() {
    config_.use_channel_batch = false;
    config_.env_fast_math = false;
  }

  /// The environment's private RNG stream. Exposed mutably so checkpoints
  /// can capture/restore it for bit-exact training resume.
  util::Rng& rng() { return rng_; }
  const util::Rng& rng() const { return rng_; }

  /// Heterogeneous relaying neighbors of agent `k` from the *last* slot's
  /// events: the UGV(s) decoding a UAV's data or vice versa (Section V-B).
  std::vector<int> HeterogeneousNeighbors(int k) const;

  /// Homogeneous nearby neighbors: same-kind UVs within
  /// `neighbor_range_fraction * area diagonal`, ascending agent index.
  std::vector<int> HomogeneousNeighbors(int k) const;

  /// Local observation of agent `k` / global state, written into `out`
  /// (cleared first; capacity reused).
  void BuildObservation(int k, std::vector<float>* out) const;
  void BuildState(std::vector<float>* out) const;

  /// Positions of every UV at every slot of the current episode
  /// (trajectories[k][t]); used for Fig. 2 / Fig. 11 renders.
  const std::vector<std::vector<map::Point2>>& trajectories() const {
    return trajectories_;
  }

  /// All events of the current episode in slot order (Fig. 11 analysis).
  /// Empty when `EnvConfig::record_event_log` is off.
  const std::vector<std::vector<CollectionEvent>>& event_log() const {
    return event_log_;
  }

 private:
  friend struct ScEnvHotPathPeer;

  void MoveAgents(const std::vector<UvAction>& actions,
                  std::vector<double>& energy_used);
  void CollectData(std::vector<double>& rewards,
                   std::vector<CollectionEvent>& events);
  double SampleFadingGain();
  void RebuildAgentGrid();

  EnvConfig config_;
  map::Dataset dataset_;
  ChannelModel channel_;
  util::Rng rng_;

  int timeslot_ = 0;
  bool done_ = true;
  std::vector<UvState> uvs_;
  std::vector<double> poi_data_;  ///< Remaining D_t^i (Gbit).
  std::vector<CollectionEvent> last_events_;

  // Spatial indices (use_spatial_index): poi_grid_ is static per dataset;
  // agent_grid_ is rebuilt (allocation-free) after every move.
  map::PointGrid poi_grid_;
  map::PointGrid agent_grid_;

  // Batched channel state (use_channel_batch): the SoA PoI mirror and the
  // precomputed params/normalized coordinates are episode-static, built at
  // construction. gain_cache_ holds one gain vector per (agent, subchannel)
  // slot, recomputed lazily per CollectData call (epoch/stamp invalidation)
  // and shared across the uplink/relay/interference terms of that slot.
  ChannelBatchParams batch_params_;
  PoiSoa poi_soa_;
  std::vector<float> poi_xn_, poi_yn_;  ///< (p - bounds.min) * inv_{w,h}.
  std::vector<std::vector<double>> gain_cache_;
  std::vector<uint32_t> gain_cache_stamp_;
  uint32_t gain_cache_epoch_ = 0;
  mutable std::vector<double> dist_scratch_;  ///< VisibleMask distances.

  // Reusable scratch so steady-state stepping performs no heap allocation.
  struct RelayPair {
    int subchannel;
    int uav;
    int ugv;      // Decoder (nearest UGV), -1 if none.
    int poi_uav;  // i.
  };
  struct DirectUplink {
    int subchannel;
    int ugv;
    int poi_ugv;  // i'.
  };
  std::vector<map::Point2> agent_pos_scratch_;
  std::vector<double> energy_scratch_;
  std::vector<int> uavs_scratch_, ugvs_scratch_;
  std::vector<uint8_t> claimed_scratch_;
  std::vector<RelayPair> pairs_scratch_;
  std::vector<DirectUplink> directs_scratch_;
  std::vector<int> ugv_channel_scratch_;
  std::vector<std::vector<int>> channel_pois_scratch_;
  mutable std::vector<uint8_t> vis_scratch_;   ///< BuildObservation PoIs.
  mutable std::vector<int> neighbor_scratch_;  ///< HomogeneousNeighbors.

  // Episode accumulators.
  long loss_events_ = 0;
  double energy_ratio_sum_uav_ = 0.0;  ///< Sum over t,u of eta/E0.
  double energy_ratio_sum_ugv_ = 0.0;
  std::vector<std::vector<map::Point2>> trajectories_;
  std::vector<std::vector<CollectionEvent>> event_log_;
};

/// Test/bench backdoor into the private per-phase helpers, so the micro
/// benches and hot-path tests can time MoveAgents / CollectData separately.
/// Both helpers mutate env state (positions, PoI claims, the RNG stream).
struct ScEnvHotPathPeer {
  static void MoveAgents(ScEnv& env, const std::vector<UvAction>& actions,
                         std::vector<double>& energy_used) {
    env.MoveAgents(actions, energy_used);
  }
  static void CollectData(ScEnv& env, std::vector<double>& rewards,
                          std::vector<CollectionEvent>& events) {
    env.CollectData(rewards, events);
  }
};

}  // namespace agsc::env

#endif  // AGSC_ENV_SC_ENV_H_
