#include "env/render.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "util/csv.h"
#include "util/table.h"

namespace agsc::env {

std::string RenderTrajectoriesAscii(const ScEnv& env, int width, int height) {
  const map::Rect& bounds = env.dataset().campus.bounds;
  std::vector<std::string> grid(height, std::string(width, ' '));
  auto plot = [&](const map::Point2& p, char c, bool overwrite) {
    int cx = static_cast<int>((p.x - bounds.min.x) / bounds.Width() *
                              (width - 1));
    int cy = static_cast<int>((p.y - bounds.min.y) / bounds.Height() *
                              (height - 1));
    cx = std::clamp(cx, 0, width - 1);
    cy = std::clamp(cy, 0, height - 1);
    char& cell = grid[height - 1 - cy][cx];  // y grows upward.
    if (overwrite || cell == ' ') cell = c;
  };
  const map::RoadGraph& roads = env.dataset().campus.roads;
  for (int e = 0; e < roads.NumEdges(); ++e) {
    const auto& edge = roads.edge(e);
    const map::Point2 a = roads.node(edge.a), b = roads.node(edge.b);
    const int steps = std::max(2, static_cast<int>(edge.length / 40.0));
    for (int s = 0; s <= steps; ++s) {
      plot(map::Lerp(a, b, static_cast<double>(s) / steps), '-', false);
    }
  }
  for (int i = 0; i < env.config().num_pois; ++i) {
    plot(env.dataset().pois[i],
         env.PoiRemainingGbit(i) > 0.0 ? '.' : 'o', true);
  }
  const auto& trajectories = env.trajectories();
  for (int k = 0; k < env.num_agents(); ++k) {
    const char symbol =
        env.IsUav(k)
            ? static_cast<char>('0' + (k % 10))
            : static_cast<char>('a' + ((k - env.num_uavs()) % 26));
    for (const map::Point2& p : trajectories[k]) plot(p, symbol, true);
  }
  plot(env.dataset().campus.spawn, 'S', true);
  std::string out;
  out.reserve(static_cast<size_t>(height) * (width + 1));
  for (const std::string& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

bool DumpTrajectoriesCsv(const ScEnv& env, const std::string& path) {
  try {
    util::CsvWriter csv(path, {"agent", "kind", "t", "x", "y"});
    const auto& trajectories = env.trajectories();
    for (int k = 0; k < env.num_agents(); ++k) {
      for (size_t t = 0; t < trajectories[k].size(); ++t) {
        csv.WriteRow({std::to_string(k), env.IsUav(k) ? "UAV" : "UGV",
                      std::to_string(t),
                      util::FormatDouble(trajectories[k][t].x, 2),
                      util::FormatDouble(trajectories[k][t].y, 2)});
      }
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool DumpEventsCsv(const ScEnv& env, const std::string& path) {
  try {
    util::CsvWriter csv(path, {"t", "subchannel", "uav", "ugv", "poi_uav",
                               "poi_ugv", "collected_uav_gbit",
                               "collected_ugv_gbit", "loss_uav", "loss_ugv",
                               "sinr_uplink_uav_db", "sinr_relay_db",
                               "sinr_uplink_ugv_db"});
    const auto& log = env.event_log();
    for (size_t t = 0; t < log.size(); ++t) {
      for (const CollectionEvent& ev : log[t]) {
        csv.WriteRow({std::to_string(t), std::to_string(ev.subchannel),
                      std::to_string(ev.uav), std::to_string(ev.ugv),
                      std::to_string(ev.poi_uav), std::to_string(ev.poi_ugv),
                      util::FormatDouble(ev.collected_uav_gbit, 4),
                      util::FormatDouble(ev.collected_ugv_gbit, 4),
                      ev.loss_uav ? "1" : "0", ev.loss_ugv ? "1" : "0",
                      util::FormatDouble(ev.sinr_uplink_uav_db, 2),
                      util::FormatDouble(ev.sinr_relay_db, 2),
                      util::FormatDouble(ev.sinr_uplink_ugv_db, 2)});
      }
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool RenderTrajectoriesSvg(const ScEnv& env, const std::string& path,
                           int width_px) {
  const map::Rect& bounds = env.dataset().campus.bounds;
  const double scale = width_px / bounds.Width();
  const int height_px =
      static_cast<int>(bounds.Height() * scale);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  auto px = [&](const map::Point2& p) {
    return std::pair<double, double>{(p.x - bounds.min.x) * scale,
                                     // SVG y grows downward.
                                     (bounds.max.y - p.y) * scale};
  };
  out << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width_px
      << "' height='" << height_px << "' viewBox='0 0 " << width_px << " "
      << height_px << "'>\n"
      << "<rect width='100%' height='100%' fill='#fcfcf8'/>\n";
  // Roads.
  const map::RoadGraph& roads = env.dataset().campus.roads;
  out << "<g stroke='#c8c8c0' stroke-width='2'>\n";
  for (int e = 0; e < roads.NumEdges(); ++e) {
    const auto& edge = roads.edge(e);
    const auto [x1, y1] = px(roads.node(edge.a));
    const auto [x2, y2] = px(roads.node(edge.b));
    out << "<line x1='" << x1 << "' y1='" << y1 << "' x2='" << x2
        << "' y2='" << y2 << "'/>\n";
  }
  out << "</g>\n";
  // PoIs shaded by remaining data (black = full, light = drained).
  for (int i = 0; i < env.config().num_pois; ++i) {
    const double fraction =
        env.PoiRemainingGbit(i) / env.config().initial_data_gbit;
    const int shade = static_cast<int>(40 + 180 * (1.0 - fraction));
    const auto [x, y] = px(env.dataset().pois[i]);
    out << "<circle cx='" << x << "' cy='" << y << "' r='3' fill='rgb("
        << shade << "," << shade << "," << shade << ")'/>\n";
  }
  // Trajectories: warm palette for UAVs, cool palette for UGVs.
  const char* uav_colors[] = {"#d03030", "#e07828", "#b03878", "#905020"};
  const char* ugv_colors[] = {"#2858c8", "#28a0a8", "#6048c0", "#207858"};
  const auto& trajectories = env.trajectories();
  for (int k = 0; k < env.num_agents(); ++k) {
    const char* color = env.IsUav(k)
                            ? uav_colors[k % 4]
                            : ugv_colors[(k - env.num_uavs()) % 4];
    out << "<polyline fill='none' stroke='" << color
        << "' stroke-width='1.5' opacity='0.85' points='";
    for (const map::Point2& p : trajectories[k]) {
      const auto [x, y] = px(p);
      out << x << "," << y << " ";
    }
    out << "'/>\n";
    if (!trajectories[k].empty()) {
      const auto [x, y] = px(trajectories[k].back());
      out << "<circle cx='" << x << "' cy='" << y << "' r='4' fill='"
          << color << "'/>\n";
    }
  }
  const auto [sx, sy] = px(env.dataset().campus.spawn);
  out << "<rect x='" << sx - 4 << "' y='" << sy - 4
      << "' width='8' height='8' fill='#101010'/>\n</svg>\n";
  return static_cast<bool>(out);
}

}  // namespace agsc::env
