#include "env/channel.h"

#include <algorithm>
#include <cmath>

namespace agsc::env {

double DbToLinear(double db) { return std::pow(10.0, db / 10.0); }

double LinearToDb(double linear) { return 10.0 * std::log10(linear); }

ChannelModel::ChannelModel(const EnvConfig& config)
    : config_(config),
      eta_los_linear_(DbToLinear(config.eta_los_db)),
      eta_nlos_linear_(DbToLinear(config.eta_nlos_db)),
      noise_power_(config.noise_psd * config.bandwidth_hz),
      sinr_threshold_linear_(DbToLinear(config.sinr_threshold_db)) {}

double ChannelModel::LosProbability(double angle_deg) const {
  // Eqn. (2): 1 / (1 + omega * exp(-beta * angle)).
  return 1.0 /
         (1.0 + config_.omega_los * std::exp(-config_.beta_los * angle_deg));
}

double ChannelModel::AirLinkGain(const map::Point2& ground,
                                 const map::Point2& air,
                                 double height) const {
  const double d = std::max(map::SlantDistance(ground, air, height), 1.0);
  const double angle = map::ElevationAngleDeg(ground, air, height);
  const double p_los = LosProbability(angle);
  const double path = std::pow(d, -config_.alpha1);
  // Eqn. (3): mixture of LoS and NLoS attenuation over the same path loss.
  return (p_los * eta_los_linear_ + (1.0 - p_los) * eta_nlos_linear_) * path;
}

double ChannelModel::GroundLinkGain(const map::Point2& a,
                                    const map::Point2& b,
                                    double fading_gain) const {
  const double d = std::max(map::Distance(a, b), 1.0);
  return fading_gain * std::pow(d, -config_.alpha2);
}

double ChannelModel::Capacity(double sinr_linear) const {
  return config_.bandwidth_hz * std::log2(1.0 + std::max(sinr_linear, 0.0));
}

double ChannelModel::UplinkUavSinr(double gain_iu, double gain_i2u) const {
  return gain_iu * config_.rho_poi_w /
         (noise_power_ + gain_i2u * config_.rho_poi_w);
}

double ChannelModel::UplinkUgvSinr(double gain_i2g) const {
  return gain_i2g * config_.rho_poi_w / noise_power_;
}

double ChannelModel::RelaySinr(double gain_ug, double gain_ig,
                               double gain_i2g) const {
  return (gain_ug * config_.rho_uav_w + gain_ig * config_.rho_poi_w) /
         (noise_power_ + gain_i2g * config_.rho_poi_w);
}

}  // namespace agsc::env
