#include "env/channel_batch.h"

// This translation unit must be compiled with floating-point contraction
// disabled (-ffp-contract=off, set in src/env/CMakeLists.txt): both tiers
// are deterministic only if the compiler never fuses their mul+add chains
// into FMAs. The avx512 variants additionally pin fp-contract=off at
// function level because their target attribute enables FMA hardware (the
// same convention as the GEMM tiles in nn/tensor.cc).

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>

#include "env/channel.h"
#include "util/env_flags.h"

namespace agsc::env {

ChannelBatchParams ChannelBatchParams::FromConfig(const EnvConfig& config) {
  // Exactly the derivations ChannelModel's constructor performs, so the
  // bit-exact kernels reproduce its gains bit-for-bit.
  ChannelBatchParams p;
  p.alpha1 = config.alpha1;
  p.alpha2 = config.alpha2;
  p.omega_los = config.omega_los;
  p.beta_los = config.beta_los;
  p.eta_los_linear = DbToLinear(config.eta_los_db);
  p.eta_nlos_linear = DbToLinear(config.eta_nlos_db);
  p.bandwidth_hz = config.bandwidth_hz;
  p.noise_power = config.noise_psd * config.bandwidth_hz;
  return p;
}

// --- Runtime ISA dispatch (the nn/tensor GEMM pattern) ---------------------

namespace {

ChannelIsa DetectIsa() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return ChannelIsa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return ChannelIsa::kAvx2;
#endif
  return ChannelIsa::kGeneric;
}

ChannelIsa ClampToDetected(ChannelIsa isa) {
  return static_cast<int>(isa) <= static_cast<int>(DetectedChannelIsa())
             ? isa
             : DetectedChannelIsa();
}

// Initial level: detected capability, optionally lowered by the
// AGSC_CHANNEL_ISA environment variable (read once at first use).
ChannelIsa InitialIsa() {
  const std::string name = util::GetEnvOr("AGSC_CHANNEL_ISA", std::string());
  if (name == "generic") return ChannelIsa::kGeneric;
  if (name == "avx2") return ClampToDetected(ChannelIsa::kAvx2);
  if (name == "avx512") return ClampToDetected(ChannelIsa::kAvx512);
  return DetectedChannelIsa();
}

std::atomic<int>& IsaSlot() {
  static std::atomic<int> slot{static_cast<int>(InitialIsa())};
  return slot;
}

ChannelIsa Isa() {
  return static_cast<ChannelIsa>(IsaSlot().load(std::memory_order_relaxed));
}

}  // namespace

ChannelIsa DetectedChannelIsa() {
  static const ChannelIsa level = DetectIsa();
  return level;
}

ChannelIsa ActiveChannelIsa() { return Isa(); }

const char* ChannelIsaName(ChannelIsa isa) {
  switch (isa) {
    case ChannelIsa::kAvx512: return "avx512";
    case ChannelIsa::kAvx2: return "avx2";
    case ChannelIsa::kGeneric: return "generic";
  }
  return "generic";
}

ChannelIsa SetChannelIsa(ChannelIsa isa) {
  const ChannelIsa clamped = ClampToDetected(isa);
  IsaSlot().store(static_cast<int>(clamped), std::memory_order_relaxed);
  return clamped;
}

// --- Fast-math polynomial transcendentals ----------------------------------
//
// Every coefficient is derived in-source (constexpr rational recurrences or
// <cmath> platform constants) rather than pasted from a minimax table, so
// the error bounds below follow directly from the series remainders:
//
//   FastExp : Cody-Waite range reduction against a hi/lo split of M_LN2,
//             then a 13-term Taylor polynomial on |r| <= ln(2)/2 = 0.347
//             (remainder r^14/14! < 5e-18); total relative error is
//             dominated by the double-precision width of ln 2 itself,
//             |n| * eps(ln2) ~ 1e-14 over the gains' argument range.
//   FastLog : mantissa reduced to [sqrt(1/2), sqrt(2)), atanh series
//             2z(1 + z^2/3 + ... + z^18/19) on |z| <= 0.172 (remainder
//             z^21/21 < 5e-18), exponent recombined against the same
//             ln 2 split.
//   FastAsin: argument folded onto t <= 1/2 via
//             asin(u) = pi/2 - 2 asin(sqrt((1-u)/2)) for u > 1/2, then the
//             Maclaurin series with the exact coefficient recurrence
//             c_n = c_{n-1} * (2n-1)^2 / ((2n)(2n+1)) (remainder < 2e-15).
//
// All helpers are branch-free (ternaries compile to blends), use no libm
// calls, and perform the identical per-lane operation sequence in every ISA
// variant, so the fast tier is bit-identical across generic/AVX2/AVX-512 —
// deterministic, just not libm-equal (relative error <~1e-12 per gain,
// asserted in tests/channel_batch_test.cc).
//
// Domain: arguments the channel model produces — FastExp on [-745, 0],
// FastLog on [1, 1e300), FastAsin on [0, 1]. No denormal/overflow handling.

namespace {

constexpr double kMagic = 6755399441055744.0;  // 1.5 * 2^52.
constexpr double kLn2Hi =
    std::bit_cast<double>(std::bit_cast<uint64_t>(M_LN2) &
                          ~((uint64_t{1} << 27) - 1));
constexpr double kLn2Lo = M_LN2 - kLn2Hi;  // Exact (hi has 27 trailing zeros).

constexpr int kExpTerms = 14;
constexpr std::array<double, kExpTerms> MakeExpCoeffs() {
  std::array<double, kExpTerms> c{};
  double factorial = 1.0;
  for (int k = 0; k < kExpTerms; ++k) {
    if (k > 0) factorial *= static_cast<double>(k);
    c[k] = 1.0 / factorial;
  }
  return c;
}
constexpr std::array<double, kExpTerms> kExpCoeff = MakeExpCoeffs();

constexpr int kLogTerms = 10;
constexpr std::array<double, kLogTerms> MakeLogCoeffs() {
  std::array<double, kLogTerms> c{};
  for (int k = 0; k < kLogTerms; ++k) {
    c[k] = 1.0 / static_cast<double>(2 * k + 1);
  }
  return c;
}
constexpr std::array<double, kLogTerms> kLogCoeff = MakeLogCoeffs();

constexpr int kAsinTerms = 24;
constexpr std::array<double, kAsinTerms> MakeAsinCoeffs() {
  std::array<double, kAsinTerms> c{};
  c[0] = 1.0;
  for (int n = 1; n < kAsinTerms; ++n) {
    const double k = 2.0 * static_cast<double>(n);
    c[n] = c[n - 1] * ((k - 1.0) / k) * ((k - 1.0) / (k + 1.0));
  }
  return c;
}
constexpr std::array<double, kAsinTerms> kAsinCoeff = MakeAsinCoeffs();

// Round-to-nearest-even double -> integer via the 1.5*2^52 trick, plus the
// matching exponent-bit constructions; these avoid int64<->double cvt
// instructions (absent below AVX-512DQ) so every variant vectorizes.
// Horner evaluation unrolled at compile time (an index_sequence fold) so the
// polynomial bodies contain no control flow — a runtime coefficient loop is
// "control flow in loop" to the auto-vectorizer, and the asin series' 23
// iterations exceed GCC's complete-peel limit anyway.
template <std::size_t N, std::size_t... I>
__attribute__((always_inline)) inline double HornerImpl(
    const std::array<double, N>& c, double x, std::index_sequence<I...>) {
  double p = c[N - 1];
  ((p = p * x + c[N - 2 - I]), ...);
  return p;
}

template <std::size_t N>
__attribute__((always_inline)) inline double Horner(
    const std::array<double, N>& c, double x) {
  return HornerImpl(c, x, std::make_index_sequence<N - 1>{});
}

__attribute__((always_inline)) inline double FastExp(double x) {
  const double t = x * M_LOG2E + kMagic;
  const int64_t n = std::bit_cast<int64_t>(t) - std::bit_cast<int64_t>(kMagic);
  const double nd = t - kMagic;  // = round(x * log2(e)).
  double r = x - nd * kLn2Hi;
  r -= nd * kLn2Lo;
  const double p = Horner(kExpCoeff, r);
  const double scale = std::bit_cast<double>((n + 1023) << 52);
  return p * scale;
}

__attribute__((always_inline)) inline double FastLog(double x) {
  const uint64_t bits = std::bit_cast<uint64_t>(x);
  int64_t ei = static_cast<int64_t>(bits >> 52) - 1023;
  double m = std::bit_cast<double>((bits & ((uint64_t{1} << 52) - 1)) |
                                   (uint64_t{1023} << 52));
  const bool fold = m > M_SQRT2;  // Shift m into [sqrt(1/2), sqrt(2)).
  m = fold ? m * 0.5 : m;
  ei += fold ? 1 : 0;
  const double ed =
      std::bit_cast<double>(ei + std::bit_cast<int64_t>(kMagic)) - kMagic;
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  const double s = Horner(kLogCoeff, z2);
  return ed * kLn2Hi + (2.0 * z * s + ed * kLn2Lo);
}

__attribute__((always_inline)) inline double FastAsin(double u) {
  const bool fold = u > 0.5;
  const double s = std::sqrt((1.0 - u) * 0.5);
  const double t = fold ? s : u;  // t <= 1/2 on both branches.
  const double t2 = t * t;
  const double p = t * Horner(kAsinCoeff, t2);
  return fold ? (M_PI / 2.0) - 2.0 * p : p;
}

// --- Kernel bodies ---------------------------------------------------------
//
// Each body is an always_inline helper instantiated once per ISA target
// below (the nn/tensor shared-body convention): the helper compiles with the
// caller's target, so the fast/mask loops auto-vectorize per ISA while every
// variant keeps the identical per-element operation sequence.

// Bit-exact air gain: the exact ChannelModel::AirLinkGain expression chain —
// map::SlantDistance / map::ElevationAngleDeg / LosProbability inlined with
// the same libm calls and operation order, the slant distance computed once
// instead of twice.
__attribute__((always_inline)) inline double AirExactElem(
    double pxi, double pyi, double rxx, double rxy, double height, double h2,
    double omega, double beta, double eta_l, double eta_n, double alpha1) {
  const double d2d = std::hypot(pxi - rxx, pyi - rxy);
  const double slant = std::sqrt(d2d * d2d + h2);
  const double d = std::max(slant, 1.0);
  double angle = 90.0;
  if (slant > 0.0) {
    const double ratio = std::clamp(height / slant, -1.0, 1.0);
    angle = std::asin(ratio) * 180.0 / M_PI;
  }
  const double p_los = 1.0 / (1.0 + omega * std::exp(-beta * angle));
  const double path = std::pow(d, -alpha1);
  return (p_los * eta_l + (1.0 - p_los) * eta_n) * path;
}

__attribute__((always_inline)) inline void AirGainsExactBody(
    const ChannelBatchParams& p, const double* px, const double* py,
    const int* idx, int n, double rxx, double rxy, double height,
    double* out) {
  const double h2 = height * height;
  if (idx) {
    for (int j = 0; j < n; ++j) {
      const int i = idx[j];
      out[j] = AirExactElem(px[i], py[i], rxx, rxy, height, h2, p.omega_los,
                            p.beta_los, p.eta_los_linear, p.eta_nlos_linear,
                            p.alpha1);
    }
  } else {
    for (int j = 0; j < n; ++j) {
      out[j] = AirExactElem(px[j], py[j], rxx, rxy, height, h2, p.omega_los,
                            p.beta_los, p.eta_los_linear, p.eta_nlos_linear,
                            p.alpha1);
    }
  }
}

// Bit-exact ground gain: the exact ChannelModel::GroundLinkGain chain.
__attribute__((always_inline)) inline void GroundGainsExactBody(
    const ChannelBatchParams& p, const double* px, const double* py,
    const int* idx, int n, double rxx, double rxy, double fading_gain,
    double* out) {
  if (idx) {
    for (int j = 0; j < n; ++j) {
      const int i = idx[j];
      const double d = std::max(std::hypot(px[i] - rxx, py[i] - rxy), 1.0);
      out[j] = fading_gain * std::pow(d, -p.alpha2);
    }
  } else {
    for (int j = 0; j < n; ++j) {
      const double d = std::max(std::hypot(px[j] - rxx, py[j] - rxy), 1.0);
      out[j] = fading_gain * std::pow(d, -p.alpha2);
    }
  }
}

// Fast air gain: one sqrt for the slant, the elevation-angle/LoS mixture
// through FastAsin/FastExp, the path loss as exp(-alpha * log d).
__attribute__((always_inline)) inline double AirFastElem(
    double pxi, double pyi, double rxx, double rxy, double height, double h2,
    double neg_beta_deg, double omega, double eta_l, double eta_n,
    double alpha1) {
  const double dx = pxi - rxx;
  const double dy = pyi - rxy;
  const double slant = std::sqrt(dx * dx + dy * dy + h2);
  // slant == 0 (coincident PoI at height 0) is the 90-degree elevation
  // branch of the exact path; blend instead of branch so the loop stays
  // vectorizable and 0/0 never leaks a NaN into the LoS mixture.
  const double ratio = slant > 0.0 ? std::min(height / slant, 1.0) : 1.0;
  const double p_los =
      1.0 / (1.0 + omega * FastExp(neg_beta_deg * FastAsin(ratio)));
  const double d = std::max(slant, 1.0);
  const double path = FastExp(-alpha1 * FastLog(d));
  return (p_los * eta_l + (1.0 - p_los) * eta_n) * path;
}

__attribute__((always_inline)) inline void AirGainsFastBody(
    const ChannelBatchParams& p, const double* px, const double* py,
    const int* idx, int n, double rxx, double rxy, double height,
    double* out) {
  const double h2 = height * height;
  const double neg_beta_deg = -(p.beta_los * (180.0 / M_PI));
  if (idx) {
    for (int j = 0; j < n; ++j) {
      const int i = idx[j];
      out[j] = AirFastElem(px[i], py[i], rxx, rxy, height, h2, neg_beta_deg,
                           p.omega_los, p.eta_los_linear, p.eta_nlos_linear,
                           p.alpha1);
    }
  } else {
    for (int j = 0; j < n; ++j) {
      out[j] = AirFastElem(px[j], py[j], rxx, rxy, height, h2, neg_beta_deg,
                           p.omega_los, p.eta_los_linear, p.eta_nlos_linear,
                           p.alpha1);
    }
  }
}

__attribute__((always_inline)) inline double GroundFastElem(double pxi,
                                                            double pyi,
                                                            double rxx,
                                                            double rxy,
                                                            double fading,
                                                            double alpha2) {
  const double dx = pxi - rxx;
  const double dy = pyi - rxy;
  const double d = std::max(std::sqrt(dx * dx + dy * dy), 1.0);
  return fading * FastExp(-alpha2 * FastLog(d));
}

__attribute__((always_inline)) inline void GroundGainsFastBody(
    const ChannelBatchParams& p, const double* px, const double* py,
    const int* idx, int n, double rxx, double rxy, double fading_gain,
    double* out) {
  if (idx) {
    for (int j = 0; j < n; ++j) {
      const int i = idx[j];
      out[j] = GroundFastElem(px[i], py[i], rxx, rxy, fading_gain, p.alpha2);
    }
  } else {
    for (int j = 0; j < n; ++j) {
      out[j] = GroundFastElem(px[j], py[j], rxx, rxy, fading_gain, p.alpha2);
    }
  }
}

__attribute__((always_inline)) inline void CapacityFastBody(
    double bandwidth_hz, const double* sinr, int n, double* out) {
  for (int j = 0; j < n; ++j) {
    const double s = std::max(sinr[j], 0.0);
    out[j] = bandwidth_hz * (FastLog(1.0 + s) * M_LOG2E);
  }
}

// Visibility pre-pass: dist[i] = sqrt(dx^2 + dy^2) (three roundings; a
// +/- 4e-15 relative guard band around the range covers its divergence from
// the correctly-rounded libm hypot, see VisibleMask below).
__attribute__((always_inline)) inline void VisibleDistBody(
    const double* px, const double* py, int n, double rxx, double rxy,
    double* dist) {
  for (int i = 0; i < n; ++i) {
    const double dx = px[i] - rxx;
    const double dy = py[i] - rxy;
    dist[i] = std::sqrt(dx * dx + dy * dy);
  }
}

// Per-ISA instantiations. target("avx2") does not enable FMA generation, so
// only the avx512 variants (whose target implies FMA hardware) need the
// function-level fp-contract pin on top of this file's -ffp-contract=off.
#define AGSC_CHANNEL_VARIANTS(NAME, BODY, EXTRA)                             \
  void NAME##Generic(const ChannelBatchParams& p, const double* px,          \
                     const double* py, const int* idx, int n, double rxx,    \
                     double rxy, double EXTRA, double* out) {                \
    BODY(p, px, py, idx, n, rxx, rxy, EXTRA, out);                           \
  }                                                                          \
  AGSC_CHANNEL_X86(NAME, BODY, EXTRA)

#if defined(__x86_64__) || defined(__i386__)
#define AGSC_CHANNEL_X86(NAME, BODY, EXTRA)                                  \
  __attribute__((target("avx2"))) void NAME##Avx2(                           \
      const ChannelBatchParams& p, const double* px, const double* py,       \
      const int* idx, int n, double rxx, double rxy, double EXTRA,           \
      double* out) {                                                         \
    BODY(p, px, py, idx, n, rxx, rxy, EXTRA, out);                           \
  }                                                                          \
  __attribute__((target("avx512f"), optimize("fp-contract=off"))) void       \
      NAME##Avx512(const ChannelBatchParams& p, const double* px,            \
                   const double* py, const int* idx, int n, double rxx,      \
                   double rxy, double EXTRA, double* out) {                  \
    BODY(p, px, py, idx, n, rxx, rxy, EXTRA, out);                           \
  }
#else
#define AGSC_CHANNEL_X86(NAME, BODY, EXTRA)
#endif

AGSC_CHANNEL_VARIANTS(AirExact, AirGainsExactBody, height)
AGSC_CHANNEL_VARIANTS(GroundExact, GroundGainsExactBody, fading_gain)
AGSC_CHANNEL_VARIANTS(AirFast, AirGainsFastBody, height)
AGSC_CHANNEL_VARIANTS(GroundFast, GroundGainsFastBody, fading_gain)

#undef AGSC_CHANNEL_VARIANTS
#undef AGSC_CHANNEL_X86

void CapacityFastGeneric(double bw, const double* sinr, int n, double* out) {
  CapacityFastBody(bw, sinr, n, out);
}
void VisibleDistGeneric(const double* px, const double* py, int n, double rxx,
                        double rxy, double* dist) {
  VisibleDistBody(px, py, n, rxx, rxy, dist);
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void CapacityFastAvx2(double bw,
                                                      const double* sinr,
                                                      int n, double* out) {
  CapacityFastBody(bw, sinr, n, out);
}
__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
CapacityFastAvx512(double bw, const double* sinr, int n, double* out) {
  CapacityFastBody(bw, sinr, n, out);
}
__attribute__((target("avx2"))) void VisibleDistAvx2(const double* px,
                                                     const double* py, int n,
                                                     double rxx, double rxy,
                                                     double* dist) {
  VisibleDistBody(px, py, n, rxx, rxy, dist);
}
__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
VisibleDistAvx512(const double* px, const double* py, int n, double rxx,
                  double rxy, double* dist) {
  VisibleDistBody(px, py, n, rxx, rxy, dist);
}
#endif  // x86

#if defined(__x86_64__) || defined(__i386__)
using GainFn = void (*)(const ChannelBatchParams&, const double*,
                        const double*, const int*, int, double, double,
                        double, double*);

GainFn SelectGain(GainFn generic, GainFn avx2, GainFn avx512) {
  if (Isa() == ChannelIsa::kAvx512) return avx512;
  if (Isa() == ChannelIsa::kAvx2) return avx2;
  return generic;
}
#endif  // x86

}  // namespace

void AirGainsBatch(const ChannelBatchParams& p, const PoiSoa& pois,
                   const int* idx, int n, const map::Point2& rx,
                   double height, double* out) {
#if defined(__x86_64__) || defined(__i386__)
  SelectGain(AirExactGeneric, AirExactAvx2, AirExactAvx512)(
      p, pois.x.data(), pois.y.data(), idx, n, rx.x, rx.y, height, out);
#else
  AirExactGeneric(p, pois.x.data(), pois.y.data(), idx, n, rx.x, rx.y, height,
                  out);
#endif
}

void GroundGainsBatch(const ChannelBatchParams& p, const PoiSoa& pois,
                      const int* idx, int n, const map::Point2& rx,
                      double fading_gain, double* out) {
#if defined(__x86_64__) || defined(__i386__)
  SelectGain(GroundExactGeneric, GroundExactAvx2, GroundExactAvx512)(
      p, pois.x.data(), pois.y.data(), idx, n, rx.x, rx.y, fading_gain, out);
#else
  GroundExactGeneric(p, pois.x.data(), pois.y.data(), idx, n, rx.x, rx.y,
                     fading_gain, out);
#endif
}

void AirGainsFast(const ChannelBatchParams& p, const PoiSoa& pois,
                  const int* idx, int n, const map::Point2& rx, double height,
                  double* out) {
#if defined(__x86_64__) || defined(__i386__)
  SelectGain(AirFastGeneric, AirFastAvx2, AirFastAvx512)(
      p, pois.x.data(), pois.y.data(), idx, n, rx.x, rx.y, height, out);
#else
  AirFastGeneric(p, pois.x.data(), pois.y.data(), idx, n, rx.x, rx.y, height,
                 out);
#endif
}

void GroundGainsFast(const ChannelBatchParams& p, const PoiSoa& pois,
                     const int* idx, int n, const map::Point2& rx,
                     double fading_gain, double* out) {
#if defined(__x86_64__) || defined(__i386__)
  SelectGain(GroundFastGeneric, GroundFastAvx2, GroundFastAvx512)(
      p, pois.x.data(), pois.y.data(), idx, n, rx.x, rx.y, fading_gain, out);
#else
  GroundFastGeneric(p, pois.x.data(), pois.y.data(), idx, n, rx.x, rx.y,
                    fading_gain, out);
#endif
}

double AirGainSingle(const ChannelBatchParams& p, const map::Point2& ground,
                     const map::Point2& air, double height, bool fast_math) {
  const double px = ground.x;
  const double py = ground.y;
  double out = 0.0;
  if (fast_math) {
    AirGainsFastBody(p, &px, &py, nullptr, 1, air.x, air.y, height, &out);
  } else {
    AirGainsExactBody(p, &px, &py, nullptr, 1, air.x, air.y, height, &out);
  }
  return out;
}

double GroundGainSingle(const ChannelBatchParams& p, const map::Point2& a,
                        const map::Point2& b, double fading_gain,
                        bool fast_math) {
  const double px = a.x;
  const double py = a.y;
  double out = 0.0;
  if (fast_math) {
    GroundGainsFastBody(p, &px, &py, nullptr, 1, b.x, b.y, fading_gain, &out);
  } else {
    GroundGainsExactBody(p, &px, &py, nullptr, 1, b.x, b.y, fading_gain,
                         &out);
  }
  return out;
}

double InterferencePower(const double* gains, const int* pois, int n,
                         double rho_poi_w, int skip_a, int skip_b) {
  // Scalar, list order: bit-identical to the per-pair interference loops in
  // ScEnv::CollectData (SIMD reductions would reassociate the sum).
  double power = 0.0;
  for (int j = 0; j < n; ++j) {
    if (pois[j] == skip_a || pois[j] == skip_b) continue;
    power += gains[j] * rho_poi_w;
  }
  return power;
}

void UplinkSinrBatch(const double* gains, int n, double tx_power_w,
                     double noise_w, double interference_w, double* out) {
  const double denom = noise_w + interference_w;
  for (int j = 0; j < n; ++j) out[j] = gains[j] * tx_power_w / denom;
}

void CapacityBatch(double bandwidth_hz, const double* sinr, int n,
                   double* out) {
  for (int j = 0; j < n; ++j) {
    out[j] = bandwidth_hz * std::log2(1.0 + std::max(sinr[j], 0.0));
  }
}

void CapacityBatchFast(double bandwidth_hz, const double* sinr, int n,
                       double* out) {
#if defined(__x86_64__) || defined(__i386__)
  if (Isa() == ChannelIsa::kAvx512) {
    CapacityFastAvx512(bandwidth_hz, sinr, n, out);
    return;
  }
  if (Isa() == ChannelIsa::kAvx2) {
    CapacityFastAvx2(bandwidth_hz, sinr, n, out);
    return;
  }
#endif
  CapacityFastGeneric(bandwidth_hz, sinr, n, out);
}

void VisibleMask(const PoiSoa& pois, const map::Point2& pos, double range,
                 double* dist_scratch, uint8_t* vis) {
  const int n = pois.count();
#if defined(__x86_64__) || defined(__i386__)
  if (Isa() == ChannelIsa::kAvx512) {
    VisibleDistAvx512(pois.x.data(), pois.y.data(), n, pos.x, pos.y,
                      dist_scratch);
  } else if (Isa() == ChannelIsa::kAvx2) {
    VisibleDistAvx2(pois.x.data(), pois.y.data(), n, pos.x, pos.y,
                    dist_scratch);
  } else {
    VisibleDistGeneric(pois.x.data(), pois.y.data(), n, pos.x, pos.y,
                       dist_scratch);
  }
#else
  VisibleDistGeneric(pois.x.data(), pois.y.data(), n, pos.x, pos.y,
                     dist_scratch);
#endif
  // sqrt(dx^2 + dy^2) carries at most ~2.5 ulp of relative error and the
  // libm hypot the scalar predicate uses at most ~1 ulp, so outside a
  // +/- 4e-15 relative band around `range` the cheap distance decides the
  // predicate; only band elements (measure ~0) pay the exact hypot call.
  const double lo = range * (1.0 - 4e-15);
  const double hi = range * (1.0 + 4e-15);
  for (int i = 0; i < n; ++i) {
    const double d = dist_scratch[i];
    if (d <= lo) {
      vis[i] = 1;
    } else if (d > hi) {
      vis[i] = 0;
    } else {
      vis[i] = std::hypot(pois.x[i] - pos.x, pois.y[i] - pos.y) <= range;
    }
  }
}

}  // namespace agsc::env
