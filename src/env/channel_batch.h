#ifndef AGSC_ENV_CHANNEL_BATCH_H_
#define AGSC_ENV_CHANNEL_BATCH_H_

#include <cstdint>
#include <vector>

#include "env/config.h"
#include "map/geometry.h"

namespace agsc::env {

/// Batched (structure-of-arrays) AG-NOMA channel math.
///
/// The scalar `ChannelModel` computes one gain per call; at fleet/city scale
/// `ScEnv::CollectData` evaluates O(agents^2 / Z) of them per slot inside the
/// interference sums, one libm-heavy call at a time. The kernels here compute
/// gain vectors for whole PoI ranges per receiver in one call, in two tiers:
///
///  * **Bit-exact tier** (`AirGainsBatch` / `GroundGainsBatch`): evaluates
///    exactly the scalar `ChannelModel` expression per element — same libm
///    transcendentals (`hypot`, `asin`, `exp`, `pow`), same operation order —
///    so every gain is bit-identical to `ChannelModel::AirLinkGain` /
///    `GroundLinkGain`. The win is algorithmic (the slant distance is
///    computed once instead of twice per gain, constants are hoisted, and
///    callers reuse the vectors across the uplink/relay/interference terms
///    instead of recomputing per pair); the dispatch exists so the
///    IEEE-exact stages (subtract/multiply/divide/sqrt/min/max) may be
///    vectorized — those operations are correctly rounded, so SIMD lanes
///    match scalar bit-for-bit.
///
///  * **Fast-math tier** (`AirGainsFast` / `GroundGainsFast`): replaces the
///    libm transcendentals with branchless polynomial evaluations (Taylor /
///    atanh-series with constexpr-derived coefficients, range reduction via
///    exponent-bit arithmetic) that the compiler auto-vectorizes under the
///    per-ISA `target` attributes. Results carry a relative error bounded by
///    ~1e-12 per gain (asserted in tests) and are therefore NOT
///    checkpoint-compatible with the default tier — but they are still
///    deterministic: every ISA variant executes the same per-lane operation
///    sequence with fp-contract pinned off, so fast-tier results are
///    bit-identical across generic/AVX2/AVX-512 too.
///
/// Runtime ISA dispatch mirrors the `nn/tensor` GEMM pattern: a shared
/// macro body instantiated per target, `__builtin_cpu_supports` detection,
/// and fp-contract pinned off wherever the target enables FMA hardware.
/// `AGSC_CHANNEL_ISA=generic|avx2|avx512` overrides detection (clamped to
/// what the CPU supports); `SetChannelIsa` does the same in-process for the
/// equivalence-sweep tests.

/// ISA level used by the batched channel kernels.
enum class ChannelIsa { kGeneric, kAvx2, kAvx512 };

/// Highest level the CPU supports (no override applied).
ChannelIsa DetectedChannelIsa();

/// Level the kernels currently dispatch to: the detected level, clamped by
/// the AGSC_CHANNEL_ISA environment variable (read once) and by any later
/// SetChannelIsa call.
ChannelIsa ActiveChannelIsa();

/// "generic" / "avx2" / "avx512".
const char* ChannelIsaName(ChannelIsa isa);

/// Forces the dispatch level for this process (test hook for the
/// ISA-equivalence sweep). Requests above the detected capability are
/// clamped; returns the level actually now active.
ChannelIsa SetChannelIsa(ChannelIsa isa);

/// Structure-of-arrays mirror of a PoI layout. Built once per env (PoIs are
/// static within an episode); the kernels index it by PoI id.
struct PoiSoa {
  std::vector<double> x;
  std::vector<double> y;

  void Build(const std::vector<map::Point2>& pois, int count) {
    x.resize(count);
    y.resize(count);
    for (int i = 0; i < count; ++i) {
      x[i] = pois[i].x;
      y[i] = pois[i].y;
    }
  }
  int count() const { return static_cast<int>(x.size()); }
  bool empty() const { return x.empty(); }
};

/// Channel constants precomputed from an EnvConfig with exactly the
/// derivations `ChannelModel`'s constructor uses (so the bit-exact tier
/// reproduces its gains bit-for-bit).
struct ChannelBatchParams {
  double alpha1 = 2.0;
  double alpha2 = 4.0;
  double omega_los = 9.6;
  double beta_los = 0.16;
  double eta_los_linear = 1.0;
  double eta_nlos_linear = 0.01;
  double bandwidth_hz = 20e6;
  double noise_power = 1e-12;

  static ChannelBatchParams FromConfig(const EnvConfig& config);
};

/// Air link gains (Eqns. 2-3 / 8) from each PoI `idx[0..n)` to an aerial
/// receiver at `rx` hovering at `height`. Bit-exact tier: out[j] is
/// bit-identical to ChannelModel::AirLinkGain(pois[idx[j]], rx, height).
void AirGainsBatch(const ChannelBatchParams& p, const PoiSoa& pois,
                   const int* idx, int n, const map::Point2& rx,
                   double height, double* out);

/// Ground link gains (Eqn. 5) from each PoI `idx[0..n)` to a ground receiver
/// at `rx` with sampled fading |h|^2. Bit-exact vs GroundLinkGain.
void GroundGainsBatch(const ChannelBatchParams& p, const PoiSoa& pois,
                      const int* idx, int n, const map::Point2& rx,
                      double fading_gain, double* out);

/// Fast-math variants of the two gain kernels (see the tier contract above).
void AirGainsFast(const ChannelBatchParams& p, const PoiSoa& pois,
                  const int* idx, int n, const map::Point2& rx,
                  double height, double* out);
void GroundGainsFast(const ChannelBatchParams& p, const PoiSoa& pois,
                     const int* idx, int n, const map::Point2& rx,
                     double fading_gain, double* out);

/// Single-link conveniences routed through the same tier bodies (n = 1):
/// with `fast_math` false the result is bit-identical to
/// ChannelModel::AirLinkGain / GroundLinkGain.
double AirGainSingle(const ChannelBatchParams& p, const map::Point2& ground,
                     const map::Point2& air, double height, bool fast_math);
double GroundGainSingle(const ChannelBatchParams& p, const map::Point2& a,
                        const map::Point2& b, double fading_gain,
                        bool fast_math);

/// Bit-exact batched visibility mask over all PoIs: vis[i] = 1 iff
/// map::Distance(pos, poi_i) <= range, with Distance's libm hypot semantics.
/// A vectorized sqrt(dx^2+dy^2) pass decides every element outside a few-ulp
/// guard band around `range`; band elements fall back to the exact hypot
/// test, so the mask matches the scalar predicate bit-for-bit.
/// `dist_scratch` and `vis` must hold pois.count() elements.
void VisibleMask(const PoiSoa& pois, const map::Point2& pos, double range,
                 double* dist_scratch, uint8_t* vis);

/// Co-channel interference power at one receiver: sum of
/// gains[j] * rho_poi_w over j in list order, skipping entries whose PoI id
/// (pois[j]) equals skip_a or skip_b. The accumulation order matches the
/// scalar loop in ScEnv::CollectData, so reusing a precomputed gain vector
/// yields bit-identical interference sums.
double InterferencePower(const double* gains, const int* pois, int n,
                         double rho_poi_w, int skip_a, int skip_b);

/// Batched uplink SINRs for a gain vector: out[j] =
/// gains[j] * tx_power_w / (noise_w + interference_w). Division is IEEE
/// correctly rounded, so this is bit-identical to the scalar expression.
void UplinkSinrBatch(const double* gains, int n, double tx_power_w,
                     double noise_w, double interference_w, double* out);

/// Batched Shannon capacities (Eqn. 4): out[j] =
/// bandwidth_hz * log2(1 + max(sinr[j], 0)). Bit-exact tier (libm log2).
void CapacityBatch(double bandwidth_hz, const double* sinr, int n,
                   double* out);

/// Fast-math capacities (polynomial log; same error contract as the fast
/// gain kernels).
void CapacityBatchFast(double bandwidth_hz, const double* sinr, int n,
                       double* out);

}  // namespace agsc::env

#endif  // AGSC_ENV_CHANNEL_BATCH_H_
