#ifndef AGSC_ENV_CHANNEL_H_
#define AGSC_ENV_CHANNEL_H_

#include "env/config.h"
#include "map/geometry.h"

namespace agsc::env {

/// Converts decibels to a linear power ratio.
double DbToLinear(double db);

/// Converts a linear power ratio to decibels.
double LinearToDb(double linear);

/// AG-NOMA channel calculator implementing Section III-B.
///
/// Three link types are modeled:
///  * PoI -> UAV uplink (ground-to-air, probabilistic LoS, Eqns. 2-4),
///  * PoI -> UGV uplink (ground-to-ground, Rayleigh + path loss, Eqns. 5-6),
///  * UAV -> UGV relay (air-to-ground, same LoS model, Eqns. 7-9).
class ChannelModel {
 public:
  explicit ChannelModel(const EnvConfig& config);

  /// LoS probability of a ground<->air link with elevation `angle_deg`
  /// (Eqn. 2 / Eqn. 7).
  double LosProbability(double angle_deg) const;

  /// Expected air link gain between a ground point and an aerial point at
  /// the configured UAV height (Eqns. 3 / 8): LoS/NLoS mixture over
  /// d^-alpha1 with extra attenuation factors.
  double AirLinkGain(const map::Point2& ground, const map::Point2& air,
                     double height) const;

  /// Ground link gain (Eqn. 5): |h|^2 d^-alpha2. `fading_gain` is the
  /// sampled |h_z|^2 (pass config.rayleigh_mean_gain for the mean).
  double GroundLinkGain(const map::Point2& a, const map::Point2& b,
                        double fading_gain) const;

  /// Shannon capacity of one subchannel (bits/s) at linear SINR (Eqn. 4).
  double Capacity(double sinr_linear) const;

  /// SINR of the PoI i -> UAV u uplink with co-channel interferer i'
  /// (Eqn. 4). `gain_iu` / `gain_i2u` are AirLinkGain values.
  double UplinkUavSinr(double gain_iu, double gain_i2u) const;

  /// SINR of the PoI i' -> UGV g direct uplink after SIC (Eqn. 6).
  double UplinkUgvSinr(double gain_i2g) const;

  /// SINR of the UAV u -> UGV g relay link carrying PoI i's data with
  /// interference from PoI i' (Eqn. 9). Gains: relay u->g, direct i->g copy,
  /// interferer i'->g.
  double RelaySinr(double gain_ug, double gain_ig, double gain_i2g) const;

  /// Noise power over one subchannel: N0 * B.
  double NoisePower() const { return noise_power_; }

  /// Linear SINR threshold from the configured dB threshold.
  double SinrThresholdLinear() const { return sinr_threshold_linear_; }

 private:
  EnvConfig config_;
  double eta_los_linear_;
  double eta_nlos_linear_;
  double noise_power_;
  double sinr_threshold_linear_;
};

}  // namespace agsc::env

#endif  // AGSC_ENV_CHANNEL_H_
