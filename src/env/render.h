#ifndef AGSC_ENV_RENDER_H_
#define AGSC_ENV_RENDER_H_

#include <string>
#include <vector>

#include "env/sc_env.h"

namespace agsc::env {

/// Renders an episode's trajectories as an ASCII map (the paper's Fig. 2 /
/// Fig. 11 as terminal art): '.' PoIs with remaining data, 'o' drained PoIs,
/// digits = UAV tracks (agent index), letters a.. = UGV tracks, '#' road
/// nodes, 'S' the spawn point.
std::string RenderTrajectoriesAscii(const ScEnv& env, int width = 72,
                                    int height = 36);

/// Writes one CSV row per (agent, timeslot) with columns
/// agent,kind,t,x,y — the raw data behind the trajectory figures.
/// Returns false on I/O failure.
bool DumpTrajectoriesCsv(const ScEnv& env, const std::string& path);

/// Writes one CSV row per collection event with SINR/collected columns
/// (Fig. 11 coordination analysis). Returns false on I/O failure.
bool DumpEventsCsv(const ScEnv& env, const std::string& path);

/// Renders the episode as a standalone SVG (the publication-quality
/// counterpart of the paper's Fig. 2 panels): roads in grey, PoIs as dots
/// shaded by remaining data, UAV trajectories in warm colors, UGV
/// trajectories in cool colors, spawn marked. Returns false on I/O failure.
bool RenderTrajectoriesSvg(const ScEnv& env, const std::string& path,
                           int width_px = 640);

}  // namespace agsc::env

#endif  // AGSC_ENV_RENDER_H_
