#ifndef AGSC_ENV_CONFIG_H_
#define AGSC_ENV_CONFIG_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace agsc::env {

/// Uplink medium-access scheme. The paper's system model is NOMA, but it
/// notes (end of Section III) that the solution applies to TDMA/OFDMA "by
/// simply re-defining the data collection and relay models"; these
/// alternatives exercise that claim:
///  * kNoma  — power-domain superposition: direct and relay links share the
///    full subchannel simultaneously and interfere (Eqns. 4, 9);
///  * kTdma  — time-shared: no co-channel interference, but each
///    transmission only gets half of the collection window;
///  * kOfdma — frequency-split: no interference, half the bandwidth each,
///    and the per-Hz noise drop doubles the subband SINR.
enum class MediumAccess { kNoma, kTdma, kOfdma };

/// Simulation settings. Defaults reproduce the paper's Table II; sweep
/// benches override individual fields.
struct EnvConfig {
  // --- Task structure (Table II) ---
  int num_timeslots = 100;        ///< T.
  double tau_move = 10.0;         ///< Movement time per slot (s).
  double tau_coll = 10.0;         ///< Data-collection time per slot (s).
  int num_pois = 100;             ///< I.
  double initial_data_gbit = 3.0; ///< D_0^i per PoI (Gbit).
  int num_uavs = 2;               ///< U.
  int num_ugvs = 2;               ///< G.

  // --- Mobility / energy (Table II + Eqn. 1) ---
  double uav_vmax = 18.0;         ///< m/s (DJI Matrice 600 class).
  double ugv_vmax = 10.0;         ///< m/s.
  double uav_height = 60.0;       ///< H_u hover altitude (m).
  double uav_energy_kj = 1500.0;  ///< E_0^u (kJ).
  double ugv_energy_kj = 2000.0;  ///< E_0^g (kJ).
  /// Energy model eta = (idle_power + move_power * v / vmax) * slot seconds.
  /// The move term realizes Eqn. (1)'s proportionality to speed; the idle
  /// term models hover/electronics so that the energy ratio xi has a floor
  /// and the efficiency metric lambda = psi(1-sigma)kappa/xi stays bounded.
  double uav_idle_power_w = 40.0;
  double uav_move_power_w = 400.0;
  double ugv_idle_power_w = 25.0;
  double ugv_move_power_w = 250.0;

  // --- AG-NOMA channel (Table II, Section III-B) ---
  int num_subchannels = 3;        ///< Z.
  double bandwidth_hz = 20e6;     ///< B per subchannel.
  double noise_psd = 5e-20;       ///< N_0 (W/Hz).
  double alpha1 = 2.0;            ///< G2A/A2G path-loss exponent.
  double alpha2 = 4.0;            ///< G2G path-loss exponent.
  double eta_los_db = 0.0;        ///< Extra LoS attenuation (dB).
  double eta_nlos_db = -20.0;     ///< Extra NLoS attenuation (dB).
  double omega_los = 9.6;         ///< LoS probability constant (omega).
  double beta_los = 0.16;         ///< LoS probability constant (beta).
  double rho_uav_w = 3.0;         ///< UAV relay transmit power (W).
  double rho_poi_w = 0.1;         ///< PoI transmit power (W).
  double sinr_threshold_db = 0.0; ///< QoS threshold (Def. 1/2).
  /// Fraction of the Shannon capacity actually realized per collection
  /// event (MAC/protocol overhead, decode-and-forward turnaround, imperfect
  /// scheduling). Keeps the task from saturating: with raw Shannon rates a
  /// random walker drains every PoI, leaving no headroom for the metrics
  /// the paper differentiates on.
  double throughput_factor = 0.25;
  /// Uplink multiple-access scheme (paper default: AG-NOMA).
  MediumAccess medium_access = MediumAccess::kNoma;
  /// Mean-square Rayleigh amplitude gain |h_z|^2 reference for G2G links.
  double rayleigh_mean_gain = 1.0;
  /// If true, |h_z|^2 is sampled per event from Exp(1); if false the mean is
  /// used (deterministic, useful for tests).
  bool rayleigh_fading = true;

  // --- Reward shaping (Eqn. 17) ---
  double omega_coll = 0.005;      ///< Penalty per data-loss event.
  double omega_move = 0.02;       ///< Penalty weight on energy fraction.

  // --- Observability (Section IV-B1) ---
  /// UVs/PoIs farther than this fraction of the area diagonal are blinded
  /// ((0,0,0) entries in the local observation).
  double observe_range_fraction = 0.35;

  // --- h-CoPO neighborhood (Section V-B, Table V) ---
  /// Homogeneous "nearby" neighbor radius as a fraction of the area
  /// diagonal; the paper's best value is 25% of the task-area size.
  double neighbor_range_fraction = 0.25;

  // --- Performance knobs (no effect on results) ---
  /// If true, every slot's CollectionEvents are appended to
  /// ScEnv::event_log() (needed by evaluator/render analysis). Training
  /// only consumes the last slot's events, so long runs can turn this off
  /// to avoid per-slot allocation and unbounded memory growth.
  bool record_event_log = true;
  /// If true (default), ScEnv uses the grid-accelerated nearest-neighbor
  /// queries and the cached road routing; if false it uses the naive
  /// linear-scan / per-call-Dijkstra reference paths. Both produce
  /// bit-identical results (pinned by tests); the naive path exists as an
  /// oracle and debugging aid.
  bool use_spatial_index = true;
  /// If true (default), ScEnv computes per-slot channel gains, interference
  /// sums, SINRs and observation distance masks through the batched
  /// structure-of-arrays kernels in env/channel_batch.{h,cc} (runtime
  /// generic/AVX2/AVX-512 dispatch); if false it calls the scalar
  /// ChannelModel per link. The batched default tier is bit-exact against
  /// the scalar path (pinned by tests and core/oracle_guard), so flipping
  /// this never changes results — the scalar path exists as the oracle.
  bool use_channel_batch = true;
  /// If true, the batched channel path swaps its libm transcendentals for
  /// the vectorized polynomial approximations (AirGainsFast & friends,
  /// relative error <= ~1e-12 per gain). This DOES change bit patterns —
  /// checkpoints are no longer byte-comparable against the exact tiers —
  /// but results stay deterministic (bit-identical across ISA variants) and
  /// statistically indistinguishable (bounded per-gain error +
  /// action-distribution divergence acceptance, pinned by tests). Requires
  /// use_channel_batch.
  bool env_fast_math = false;

  int num_agents() const { return num_uavs + num_ugvs; }

  /// Checks the structural invariants every consumer of this config relies
  /// on (positive task sizes, at least one UV, a positive hover altitude,
  /// positive slot durations/bandwidth). Returns an empty string when the
  /// config is valid, otherwise a descriptive error message; ScEnv and the
  /// trainer CLI surface that message instead of hitting downstream UB.
  std::string Validate() const {
    if (num_timeslots < 1) return "num_timeslots must be >= 1";
    if (num_pois < 1) return "num_pois must be >= 1";
    if (num_uavs < 0) return "num_uavs must be >= 0";
    if (num_ugvs < 0) return "num_ugvs must be >= 0";
    if (num_agents() < 1) return "need at least one UV (num_uavs + num_ugvs >= 1)";
    if (num_subchannels < 1) return "num_subchannels must be >= 1";
    if (uav_height <= 0.0) return "uav_height must be > 0";
    if (tau_move <= 0.0 || tau_coll <= 0.0) {
      return "slot durations tau_move/tau_coll must be > 0";
    }
    if (initial_data_gbit < 0.0) return "initial_data_gbit must be >= 0";
    if (uav_vmax <= 0.0 || ugv_vmax <= 0.0) {
      return "uav_vmax/ugv_vmax must be > 0";
    }
    if (uav_energy_kj <= 0.0 || ugv_energy_kj <= 0.0) {
      return "uav_energy_kj/ugv_energy_kj must be > 0";
    }
    // Channel parameters feed std::pow/std::exp chains: a non-finite or
    // non-positive value here surfaces as NaN gains mid-run, so reject at
    // startup instead.
    if (!std::isfinite(bandwidth_hz) || bandwidth_hz <= 0.0) {
      return "bandwidth_hz must be finite and > 0";
    }
    if (!std::isfinite(noise_psd) || noise_psd <= 0.0) {
      return "noise_psd must be finite and > 0";
    }
    if (!std::isfinite(alpha1) || alpha1 <= 0.0 || !std::isfinite(alpha2) ||
        alpha2 <= 0.0) {
      return "path-loss exponents alpha1/alpha2 must be finite and > 0";
    }
    if (!std::isfinite(omega_los) || omega_los <= 0.0 ||
        !std::isfinite(beta_los) || beta_los <= 0.0) {
      return "LoS constants omega_los/beta_los must be finite and > 0";
    }
    if (!std::isfinite(rho_uav_w) || rho_uav_w <= 0.0 ||
        !std::isfinite(rho_poi_w) || rho_poi_w <= 0.0) {
      return "transmit powers rho_uav_w/rho_poi_w must be finite and > 0";
    }
    if (!std::isfinite(eta_los_db) || !std::isfinite(eta_nlos_db)) {
      return "eta_los_db/eta_nlos_db must be finite";
    }
    if (env_fast_math && !use_channel_batch) {
      return "env_fast_math requires use_channel_batch";
    }
    return {};
  }

  double uav_energy_j() const { return uav_energy_kj * 1000.0; }
  double ugv_energy_j() const { return ugv_energy_kj * 1000.0; }

  /// Per-slot movement energy (J) for a UAV moving at `speed` m/s.
  double UavMoveEnergy(double speed) const {
    return (uav_idle_power_w + uav_move_power_w * speed / uav_vmax) *
           (tau_move + tau_coll);
  }
  /// Per-slot movement energy (J) for a UGV moving at `speed` m/s.
  double UgvMoveEnergy(double speed) const {
    return (ugv_idle_power_w + ugv_move_power_w * speed / ugv_vmax) *
           (tau_move + tau_coll);
  }
};

}  // namespace agsc::env

#endif  // AGSC_ENV_CONFIG_H_
