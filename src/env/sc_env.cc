#include "env/sc_env.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agsc::env {

ScEnv::ScEnv(const EnvConfig& config, map::Dataset dataset, uint64_t seed)
    : config_(config),
      dataset_(std::move(dataset)),
      channel_(config),
      rng_(seed) {
  const std::string error = config_.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("ScEnv: invalid EnvConfig: " + error);
  }
  if (static_cast<int>(dataset_.pois.size()) < config_.num_pois) {
    throw std::invalid_argument("ScEnv: dataset has fewer PoIs than config");
  }
  if (config_.use_spatial_index) {
    // Warm the road routing caches now so the const queries issued while
    // stepping are read-only and allocation-free.
    dataset_.campus.roads.EnsureCaches();
    const std::vector<map::Point2> pois(
        dataset_.pois.begin(), dataset_.pois.begin() + config_.num_pois);
    const int cells = std::clamp(
        static_cast<int>(std::lround(std::sqrt(
            static_cast<double>(config_.num_pois)))),
        1, 64);
    poi_grid_.Build(dataset_.campus.bounds, pois, cells);
  }
  // Batched-channel inputs: the SoA mirror of the PoI layout and the
  // normalized observation coordinates are static per dataset, so build
  // them once here (always — DisableChannelBatch can never need them, but
  // the cost is negligible and keeps the flag flip-free of invariants).
  batch_params_ = ChannelBatchParams::FromConfig(config_);
  poi_soa_.Build(dataset_.pois, config_.num_pois);
  const map::Rect& bounds = dataset_.campus.bounds;
  const double inv_w = 1.0 / bounds.Width();
  const double inv_h = 1.0 / bounds.Height();
  poi_xn_.resize(config_.num_pois);
  poi_yn_.resize(config_.num_pois);
  for (int i = 0; i < config_.num_pois; ++i) {
    // Exactly the scalar BuildObservation expressions, so the batched
    // observation path is bit-identical.
    poi_xn_[i] = static_cast<float>((dataset_.pois[i].x - bounds.min.x) * inv_w);
    poi_yn_[i] = static_cast<float>((dataset_.pois[i].y - bounds.min.y) * inv_h);
  }
}

int ScEnv::obs_dim() const {
  return 3 * (config_.num_agents() + config_.num_pois);
}

int ScEnv::state_dim() const { return obs_dim(); }

void ScEnv::RebuildAgentGrid() {
  if (!config_.use_spatial_index) return;
  const int n = config_.num_agents();
  agent_pos_scratch_.resize(n);
  for (int k = 0; k < n; ++k) agent_pos_scratch_[k] = uvs_[k].pos;
  const int cells = std::clamp(
      static_cast<int>(std::lround(std::sqrt(static_cast<double>(n)))), 1,
      16);
  agent_grid_.Build(dataset_.campus.bounds, agent_pos_scratch_, cells);
}

StepResult ScEnv::Reset() {
  StepResult result;
  Reset(result);
  return result;
}

void ScEnv::Reset(StepResult& result) {
  timeslot_ = 0;
  done_ = false;
  loss_events_ = 0;
  energy_ratio_sum_uav_ = 0.0;
  energy_ratio_sum_ugv_ = 0.0;
  last_events_.clear();
  event_log_.clear();

  uvs_.assign(config_.num_agents(), UvState{});
  const map::Campus& campus = dataset_.campus;
  for (int k = 0; k < config_.num_agents(); ++k) {
    UvState& uv = uvs_[k];
    uv.kind = IsUav(k) ? UvKind::kUav : UvKind::kUgv;
    uv.pos = campus.spawn;
    uv.energy_j = uv.initial_energy_j =
        IsUav(k) ? config_.uav_energy_j() : config_.ugv_energy_j();
    uv.active = true;
    uv.last_speed = 0.0;
    if (uv.kind == UvKind::kUgv) {
      uv.road_pos = config_.use_spatial_index
                        ? campus.roads.Project(campus.spawn)
                        : campus.roads.ProjectNaive(campus.spawn);
      uv.pos = campus.roads.PointAt(uv.road_pos);
    }
  }
  poi_data_.assign(config_.num_pois, config_.initial_data_gbit);
  // Clear trajectories without freeing the per-agent storage, so episode
  // 2+ appends into already-warm capacity.
  trajectories_.resize(config_.num_agents());
  for (std::vector<map::Point2>& traj : trajectories_) traj.clear();
  for (int k = 0; k < config_.num_agents(); ++k) {
    trajectories_[k].push_back(uvs_[k].pos);
  }
  RebuildAgentGrid();

  result.rewards.assign(config_.num_agents(), 0.0);
  result.done = false;
  result.events.clear();
  result.observations.resize(config_.num_agents());
  for (int k = 0; k < config_.num_agents(); ++k) {
    BuildObservation(k, &result.observations[k]);
  }
  BuildState(&result.state);
}

void ScEnv::MoveAgents(const std::vector<UvAction>& actions,
                       std::vector<double>& energy_used) {
  const map::Campus& campus = dataset_.campus;
  const double slot_seconds = config_.tau_move;
  for (int k = 0; k < config_.num_agents(); ++k) {
    UvState& uv = uvs_[k];
    energy_used[k] = 0.0;
    uv.last_speed = 0.0;
    if (!uv.active) continue;
    const double a0 = std::clamp(actions[k].raw_direction, -1.0, 1.0);
    const double a1 = std::clamp(actions[k].raw_speed, -1.0, 1.0);
    const double direction = (a0 + 1.0) * M_PI;  // [0, 2pi).
    const double vmax =
        uv.kind == UvKind::kUav ? config_.uav_vmax : config_.ugv_vmax;
    const double speed = (a1 + 1.0) * 0.5 * vmax;
    const double budget = slot_seconds * speed;
    double moved = 0.0;
    if (uv.kind == UvKind::kUav) {
      const map::Point2 desired =
          uv.pos + map::Point2{std::cos(direction), std::sin(direction)} *
                       budget;
      const map::Point2 clamped = campus.bounds.Clamp(desired);
      moved = map::Distance(uv.pos, clamped);
      uv.pos = clamped;
    } else {
      const map::Point2 target =
          uv.pos + map::Point2{std::cos(direction), std::sin(direction)} *
                       budget;
      uv.road_pos =
          config_.use_spatial_index
              ? campus.roads.MoveToward(uv.road_pos, target, budget, &moved)
              : campus.roads.MoveTowardNaive(uv.road_pos, target, budget,
                                             &moved);
      uv.pos = campus.roads.PointAt(uv.road_pos);
    }
    const double realized_speed =
        slot_seconds > 0.0 ? moved / slot_seconds : 0.0;
    uv.last_speed = realized_speed;
    const double eta = uv.kind == UvKind::kUav
                           ? config_.UavMoveEnergy(realized_speed)
                           : config_.UgvMoveEnergy(realized_speed);
    // A UV cannot spend more than its remaining reserve; the slot that
    // drains the battery only counts the energy that actually existed.
    const double spent = std::min(eta, uv.energy_j);
    energy_used[k] = spent;
    uv.energy_j -= spent;
    if (uv.energy_j <= 1e-9) {
      uv.energy_j = 0.0;
      uv.active = false;
    }
    (uv.kind == UvKind::kUav ? energy_ratio_sum_uav_
                             : energy_ratio_sum_ugv_) +=
        spent / uv.initial_energy_j;
  }
  RebuildAgentGrid();
}

double ScEnv::SampleFadingGain() {
  if (!config_.rayleigh_fading) return config_.rayleigh_mean_gain;
  // |h|^2 of a Rayleigh amplitude is exponential with the configured mean.
  double u = rng_.Uniform();
  while (u <= 1e-300) u = rng_.Uniform();
  return -config_.rayleigh_mean_gain * std::log(u);
}

void ScEnv::CollectData(std::vector<double>& rewards,
                        std::vector<CollectionEvent>& events) {
  // Subchannel assignment: every active UAV transmits each slot on
  // subchannel (uav rank) % Z, relaying to its nearest UGV; the decoding
  // UGV's own direct uplink (PoI i') shares that channel, forming the
  // paper's (u, g, i, i')_z tuple. When the fleet outgrows Z, several
  // relay pairs share a channel and interfere — this is what makes the
  // efficiency fall again for large fleets (Section VI-D1). UGVs that
  // decode for nobody direct-collect on (ugv rank) % Z.
  events.clear();
  const bool indexed = config_.use_spatial_index;
  std::vector<int>& uavs = uavs_scratch_;
  std::vector<int>& ugvs = ugvs_scratch_;
  uavs.clear();
  ugvs.clear();
  for (int k = 0; k < config_.num_agents(); ++k) {
    if (!uvs_[k].active) continue;
    (IsUav(k) ? uavs : ugvs).push_back(k);
  }
  if (uavs.empty() && ugvs.empty()) return;
  const double total_initial =
      static_cast<double>(config_.num_pois) * config_.initial_data_gbit;
  const double threshold = channel_.SinrThresholdLinear();
  const int Z = config_.num_subchannels;
  const double height = config_.uav_height;

  std::vector<uint8_t>& claimed = claimed_scratch_;
  claimed.assign(config_.num_pois, 0);
  auto nearest_poi = [&](const map::Point2& pos) {
    int best;
    if (indexed) {
      best = poi_grid_.Nearest(
          pos, [&](int i) { return !claimed[i] && poi_data_[i] > 0.0; },
          nullptr);
    } else {
      best = -1;
      double best_dist = 0.0;
      for (int i = 0; i < config_.num_pois; ++i) {
        if (claimed[i] || poi_data_[i] <= 0.0) continue;
        const double d = map::Distance(pos, dataset_.pois[i]);
        if (best < 0 || d < best_dist) {
          best = i;
          best_dist = d;
        }
      }
    }
    if (best >= 0) claimed[best] = 1;
    return best;
  };

  // --- Build this slot's link plan. ---
  std::vector<RelayPair>& pairs = pairs_scratch_;
  pairs.clear();
  std::vector<int>& ugv_channel = ugv_channel_scratch_;
  ugv_channel.assign(config_.num_agents(), -1);
  for (size_t j = 0; j < uavs.size(); ++j) {
    RelayPair pair;
    pair.subchannel = static_cast<int>(j) % Z;
    pair.uav = uavs[j];
    if (indexed) {
      pair.ugv = agent_grid_.Nearest(
          uvs_[pair.uav].pos,
          [&](int cand) { return !IsUav(cand) && uvs_[cand].active; },
          nullptr);
    } else {
      pair.ugv = -1;
      double best = 0.0;
      for (int cand : ugvs) {
        const double d = map::Distance(uvs_[pair.uav].pos, uvs_[cand].pos);
        if (pair.ugv < 0 || d < best) {
          pair.ugv = cand;
          best = d;
        }
      }
    }
    pair.poi_uav = nearest_poi(uvs_[pair.uav].pos);
    if (pair.ugv >= 0 && ugv_channel[pair.ugv] < 0) {
      ugv_channel[pair.ugv] = pair.subchannel;
    }
    pairs.push_back(pair);
  }
  std::vector<DirectUplink>& directs = directs_scratch_;
  directs.clear();
  for (size_t j = 0; j < ugvs.size(); ++j) {
    DirectUplink direct;
    direct.ugv = ugvs[j];
    direct.subchannel = ugv_channel[direct.ugv] >= 0
                            ? ugv_channel[direct.ugv]
                            : static_cast<int>(j) % Z;
    direct.poi_ugv = nearest_poi(uvs_[direct.ugv].pos);
    directs.push_back(direct);
  }

  // Per-subchannel ground transmitters (PoIs) for interference sums.
  std::vector<std::vector<int>>& channel_pois = channel_pois_scratch_;
  channel_pois.resize(Z);
  for (std::vector<int>& pois : channel_pois) pois.clear();
  for (const RelayPair& pair : pairs) {
    if (pair.poi_uav >= 0) {
      channel_pois[pair.subchannel].push_back(pair.poi_uav);
    }
  }
  for (const DirectUplink& direct : directs) {
    if (direct.poi_ugv >= 0) {
      channel_pois[direct.subchannel].push_back(direct.poi_ugv);
    }
  }

  // Medium-access scaling: NOMA keeps the full subchannel but suffers
  // co-channel interference; TDMA halves the collection window; OFDMA
  // halves the bandwidth, which also halves subband noise (SINR x2).
  const bool noma = config_.medium_access == MediumAccess::kNoma;
  double time_share = 1.0, bw_share = 1.0, sinr_boost = 1.0;
  if (config_.medium_access == MediumAccess::kTdma) {
    time_share = 0.5;
  } else if (config_.medium_access == MediumAccess::kOfdma) {
    bw_share = 0.5;
    sinr_boost = 2.0;
  }
  const bool batch = config_.use_channel_batch;
  const bool fast = config_.env_fast_math;
  auto link_rate = [&](double sinr) {
    if (fast) {
      const double boosted = sinr * sinr_boost;
      double cap;
      CapacityBatchFast(config_.bandwidth_hz, &boosted, 1, &cap);
      return bw_share * cap;
    }
    return bw_share * channel_.Capacity(sinr * sinr_boost);
  };
  const double h_gain = SampleFadingGain();
  // Interference power from co-channel PoI transmitters at an aerial
  // receiver (excluding up to two own-pair PoIs).
  auto air_interference = [&](int z, const map::Point2& rx, int skip_a,
                              int skip_b) {
    if (!noma) return 0.0;
    double power = 0.0;
    for (int poi : channel_pois[z]) {
      if (poi == skip_a || poi == skip_b) continue;
      power += channel_.AirLinkGain(dataset_.pois[poi], rx, height) *
               config_.rho_poi_w;
    }
    return power;
  };
  auto ground_interference = [&](int z, const map::Point2& rx, int skip_a,
                                 int skip_b) {
    if (!noma) return 0.0;
    double power = 0.0;
    for (int poi : channel_pois[z]) {
      if (poi == skip_a || poi == skip_b) continue;
      power += channel_.GroundLinkGain(dataset_.pois[poi], rx, h_gain) *
               config_.rho_poi_w;
    }
    return power;
  };
  const double noise = channel_.NoisePower();

  // Batched path: one gain vector per (receiver agent, subchannel) over
  // that subchannel's transmitting PoIs — an air vector for UAV receivers,
  // a ground vector for UGV receivers — computed lazily on first use this
  // slot and then shared by every term that needs a gain to that receiver
  // (the scalar path recomputes each gain per term: the decoding UGV's
  // ground gains are evaluated once for the relay chain and again for its
  // own direct uplink, plus once per interference-sum entry).
  if (batch) {
    const size_t slots = static_cast<size_t>(config_.num_agents()) * Z;
    if (gain_cache_.size() != slots) {
      gain_cache_.resize(slots);
      gain_cache_stamp_.assign(slots, 0);
    }
    ++gain_cache_epoch_;
  }
  auto gains_for = [&](int k, int z) -> const std::vector<double>& {
    const size_t slot = static_cast<size_t>(k) * Z + z;
    std::vector<double>& gains = gain_cache_[slot];
    if (gain_cache_stamp_[slot] != gain_cache_epoch_) {
      const std::vector<int>& list = channel_pois[z];
      const int n = static_cast<int>(list.size());
      gains.resize(list.size());
      if (IsUav(k)) {
        (fast ? AirGainsFast : AirGainsBatch)(batch_params_, poi_soa_,
                                              list.data(), n, uvs_[k].pos,
                                              height, gains.data());
      } else {
        (fast ? GroundGainsFast : GroundGainsBatch)(batch_params_, poi_soa_,
                                                    list.data(), n,
                                                    uvs_[k].pos, h_gain,
                                                    gains.data());
      }
      gain_cache_stamp_[slot] = gain_cache_epoch_;
    }
    return gains;
  };
  auto index_of = [](const std::vector<int>& list, int poi) {
    for (size_t j = 0; j < list.size(); ++j) {
      if (list[j] == poi) return static_cast<int>(j);
    }
    return -1;
  };

  // --- UAV relay chains: PoI i -> UAV u -> UGV g (Def. 1). ---
  for (const RelayPair& pair : pairs) {
    CollectionEvent ev;
    ev.subchannel = pair.subchannel;
    ev.uav = pair.uav;
    ev.ugv = pair.ugv;
    ev.poi_uav = pair.poi_uav;
    if (pair.poi_uav < 0) continue;  // No data left anywhere.
    if (pair.ugv < 0) {
      // No mobile BS alive: the relay chain cannot complete (Def. 1).
      ev.loss_uav = true;
      ++loss_events_;
      rewards[pair.uav] -= config_.omega_coll;
      events.push_back(ev);
      continue;
    }
    const int i = pair.poi_uav;
    const int u = pair.uav, g = pair.ugv;
    double gain_iu, intf_air, gain_ug, gain_ig, intf_ground;
    if (batch) {
      const std::vector<int>& list = channel_pois[pair.subchannel];
      const int n = static_cast<int>(list.size());
      const std::vector<double>& air = gains_for(u, pair.subchannel);
      gain_iu = air[index_of(list, i)];
      intf_air = noma ? InterferencePower(air.data(), list.data(), n,
                                          config_.rho_poi_w, i, -1)
                      : 0.0;
      gain_ug = AirGainSingle(batch_params_, uvs_[g].pos, uvs_[u].pos, height,
                              fast);
      const std::vector<double>& ground = gains_for(g, pair.subchannel);
      gain_ig = ground[index_of(list, i)];
      intf_ground = noma ? InterferencePower(ground.data(), list.data(), n,
                                             config_.rho_poi_w, i, -1)
                         : 0.0;
    } else {
      gain_iu = channel_.AirLinkGain(dataset_.pois[i], uvs_[u].pos, height);
      intf_air = air_interference(pair.subchannel, uvs_[u].pos, i, -1);
      gain_ug = channel_.AirLinkGain(uvs_[g].pos, uvs_[u].pos, height);
      gain_ig = channel_.GroundLinkGain(dataset_.pois[i], uvs_[g].pos, h_gain);
      intf_ground = ground_interference(pair.subchannel, uvs_[g].pos, i, -1);
    }
    const double sinr_iu = gain_iu * config_.rho_poi_w / (noise + intf_air);
    // Eqn. (9): the relay and the direct copy combine; co-channel ground
    // transmitters other than i interfere at the UGV.
    const double sinr_ug =
        (gain_ug * config_.rho_uav_w + gain_ig * config_.rho_poi_w) /
        (noise + intf_ground);
    ev.sinr_uplink_uav_db = LinearToDb(std::max(sinr_iu * sinr_boost, 1e-30));
    ev.sinr_relay_db = LinearToDb(std::max(sinr_ug * sinr_boost, 1e-30));
    if (std::min(sinr_iu, sinr_ug) * sinr_boost < threshold) {
      ev.loss_uav = true;
      ++loss_events_;
      rewards[u] -= config_.omega_coll;
    } else {
      const double cap = std::min(link_rate(sinr_iu), link_rate(sinr_ug));
      const double gbit = std::min(config_.throughput_factor * time_share *
                                       config_.tau_coll * cap / 1e9,
                                   poi_data_[i]);
      poi_data_[i] -= gbit;
      ev.collected_uav_gbit = gbit;
      rewards[u] += gbit / total_initial;
    }
    events.push_back(ev);
  }

  // --- UGV direct uplinks: PoI i' -> UGV g (Def. 2). ---
  for (const DirectUplink& direct : directs) {
    if (direct.poi_ugv < 0) continue;
    CollectionEvent ev;
    ev.subchannel = direct.subchannel;
    ev.ugv = direct.ugv;
    ev.poi_ugv = direct.poi_ugv;
    const int i2 = direct.poi_ugv;
    const int g = direct.ugv;
    // Eqn. (6): the own pair's relayed PoI is SIC-canceled; other
    // co-channel pairs' transmitters still interfere.
    int own_pair_poi = -1;
    for (const RelayPair& pair : pairs) {
      if (pair.ugv == g && pair.subchannel == direct.subchannel) {
        own_pair_poi = pair.poi_uav;
        break;
      }
    }
    double gain_i2g, intf_ground;
    if (batch) {
      // Reuses the (g, z) ground vector the relay loop already computed
      // when g decodes for a pair on this subchannel.
      const std::vector<int>& list = channel_pois[direct.subchannel];
      const int n = static_cast<int>(list.size());
      const std::vector<double>& ground = gains_for(g, direct.subchannel);
      gain_i2g = ground[index_of(list, i2)];
      intf_ground = noma ? InterferencePower(ground.data(), list.data(), n,
                                             config_.rho_poi_w, i2,
                                             own_pair_poi)
                         : 0.0;
    } else {
      gain_i2g =
          channel_.GroundLinkGain(dataset_.pois[i2], uvs_[g].pos, h_gain);
      intf_ground = ground_interference(direct.subchannel, uvs_[g].pos, i2,
                                        own_pair_poi);
    }
    const double sinr_i2g =
        gain_i2g * config_.rho_poi_w / (noise + intf_ground);
    ev.sinr_uplink_ugv_db =
        LinearToDb(std::max(sinr_i2g * sinr_boost, 1e-30));
    if (sinr_i2g * sinr_boost < threshold) {
      ev.loss_ugv = true;
      ++loss_events_;
      rewards[g] -= config_.omega_coll;
    } else {
      const double cap = link_rate(sinr_i2g);
      const double gbit = std::min(config_.throughput_factor * time_share *
                                       config_.tau_coll * cap / 1e9,
                                   poi_data_[i2]);
      poi_data_[i2] -= gbit;
      ev.collected_ugv_gbit = gbit;
      rewards[g] += gbit / total_initial;
    }
    events.push_back(ev);
  }
}

StepResult ScEnv::Step(const std::vector<UvAction>& actions) {
  StepResult result;
  Step(actions, result);
  return result;
}

void ScEnv::Step(const std::vector<UvAction>& actions, StepResult& result) {
  if (done_) throw std::logic_error("ScEnv::Step after episode end");
  if (static_cast<int>(actions.size()) != config_.num_agents()) {
    throw std::invalid_argument("ScEnv::Step: wrong action count");
  }
  result.rewards.assign(config_.num_agents(), 0.0);

  energy_scratch_.assign(config_.num_agents(), 0.0);
  MoveAgents(actions, energy_scratch_);
  CollectData(result.rewards, result.events);
  last_events_ = result.events;
  if (config_.record_event_log) event_log_.push_back(result.events);

  // Movement-energy penalty term of Eqn. (17).
  for (int k = 0; k < config_.num_agents(); ++k) {
    result.rewards[k] -=
        config_.omega_move * energy_scratch_[k] / uvs_[k].initial_energy_j;
    trajectories_[k].push_back(uvs_[k].pos);
  }

  ++timeslot_;
  done_ = timeslot_ >= config_.num_timeslots;
  result.done = done_;
  result.observations.resize(config_.num_agents());
  for (int k = 0; k < config_.num_agents(); ++k) {
    BuildObservation(k, &result.observations[k]);
  }
  BuildState(&result.state);
}

void ScEnv::BuildObservation(int k, std::vector<float>* out) const {
  const map::Rect& bounds = dataset_.campus.bounds;
  const double inv_w = 1.0 / bounds.Width();
  const double inv_h = 1.0 / bounds.Height();
  const double range = config_.observe_range_fraction * bounds.Diagonal();
  std::vector<float>& obs = *out;
  obs.clear();
  obs.reserve(obs_dim());
  auto push_uv = [&](const UvState& uv, bool visible) {
    if (visible) {
      obs.push_back(static_cast<float>((uv.pos.x - bounds.min.x) * inv_w));
      obs.push_back(static_cast<float>((uv.pos.y - bounds.min.y) * inv_h));
      obs.push_back(static_cast<float>(uv.energy_j / uv.initial_energy_j));
    } else {
      obs.insert(obs.end(), {0.0f, 0.0f, 0.0f});
    }
  };
  // Self first (always visible), then the other UVs in index order.
  push_uv(uvs_[k], true);
  for (int j = 0; j < config_.num_agents(); ++j) {
    if (j == k) continue;
    push_uv(uvs_[j], map::Distance(uvs_[k].pos, uvs_[j].pos) <= range);
  }
  if (config_.use_channel_batch) {
    // Batched visibility: one vectorized distance sweep over the SoA PoI
    // mirror decides the whole mask (bit-identical to the scalar
    // map::Distance predicate — see VisibleMask's guard-band contract),
    // and the episode-static normalized coordinates are read back instead
    // of being renormalized per call.
    dist_scratch_.resize(config_.num_pois);
    vis_scratch_.resize(config_.num_pois);
    VisibleMask(poi_soa_, uvs_[k].pos, range, dist_scratch_.data(),
                vis_scratch_.data());
    for (int i = 0; i < config_.num_pois; ++i) {
      if (vis_scratch_[i]) {
        obs.push_back(poi_xn_[i]);
        obs.push_back(poi_yn_[i]);
        obs.push_back(
            static_cast<float>(poi_data_[i] / config_.initial_data_gbit));
      } else {
        obs.insert(obs.end(), {0.0f, 0.0f, 0.0f});
      }
    }
  } else if (config_.use_spatial_index) {
    // Mark the PoIs inside the visibility disk: candidates from the grid
    // get the exact distance test; everything else is provably out of
    // range (its cell lies outside the disk's bounding box).
    vis_scratch_.assign(config_.num_pois, 0);
    poi_grid_.ForEachInDiskBBox(uvs_[k].pos, range, [&](int i) {
      if (map::Distance(uvs_[k].pos, dataset_.pois[i]) <= range) {
        vis_scratch_[i] = 1;
      }
    });
    for (int i = 0; i < config_.num_pois; ++i) {
      if (vis_scratch_[i]) {
        obs.push_back(
            static_cast<float>((dataset_.pois[i].x - bounds.min.x) * inv_w));
        obs.push_back(
            static_cast<float>((dataset_.pois[i].y - bounds.min.y) * inv_h));
        obs.push_back(
            static_cast<float>(poi_data_[i] / config_.initial_data_gbit));
      } else {
        obs.insert(obs.end(), {0.0f, 0.0f, 0.0f});
      }
    }
  } else {
    for (int i = 0; i < config_.num_pois; ++i) {
      const bool visible =
          map::Distance(uvs_[k].pos, dataset_.pois[i]) <= range;
      if (visible) {
        obs.push_back(
            static_cast<float>((dataset_.pois[i].x - bounds.min.x) * inv_w));
        obs.push_back(
            static_cast<float>((dataset_.pois[i].y - bounds.min.y) * inv_h));
        obs.push_back(
            static_cast<float>(poi_data_[i] / config_.initial_data_gbit));
      } else {
        obs.insert(obs.end(), {0.0f, 0.0f, 0.0f});
      }
    }
  }
}

void ScEnv::BuildState(std::vector<float>* out) const {
  const map::Rect& bounds = dataset_.campus.bounds;
  const double inv_w = 1.0 / bounds.Width();
  const double inv_h = 1.0 / bounds.Height();
  std::vector<float>& state = *out;
  state.clear();
  state.reserve(state_dim());
  for (const UvState& uv : uvs_) {
    state.push_back(static_cast<float>((uv.pos.x - bounds.min.x) * inv_w));
    state.push_back(static_cast<float>((uv.pos.y - bounds.min.y) * inv_h));
    state.push_back(static_cast<float>(uv.energy_j / uv.initial_energy_j));
  }
  if (config_.use_channel_batch) {
    for (int i = 0; i < config_.num_pois; ++i) {
      state.push_back(poi_xn_[i]);
      state.push_back(poi_yn_[i]);
      state.push_back(
          static_cast<float>(poi_data_[i] / config_.initial_data_gbit));
    }
    return;
  }
  for (int i = 0; i < config_.num_pois; ++i) {
    state.push_back(
        static_cast<float>((dataset_.pois[i].x - bounds.min.x) * inv_w));
    state.push_back(
        static_cast<float>((dataset_.pois[i].y - bounds.min.y) * inv_h));
    state.push_back(
        static_cast<float>(poi_data_[i] / config_.initial_data_gbit));
  }
}

Metrics ScEnv::EpisodeMetrics() const {
  Metrics m;
  const double total_initial =
      static_cast<double>(config_.num_pois) * config_.initial_data_gbit;
  double remaining = 0.0;
  std::vector<double> fractions(config_.num_pois);
  for (int i = 0; i < config_.num_pois; ++i) {
    remaining += poi_data_[i];
    fractions[i] =
        (config_.initial_data_gbit - poi_data_[i]) / config_.initial_data_gbit;
  }
  m.data_collection_ratio =
      std::clamp(1.0 - remaining / total_initial, 0.0, 1.0);
  const double denom = static_cast<double>(config_.num_subchannels) *
                       config_.num_timeslots * config_.num_agents();
  m.data_loss_ratio = denom > 0.0 ? loss_events_ / denom : 0.0;
  m.energy_consumption_ratio =
      (config_.num_uavs > 0 ? energy_ratio_sum_uav_ / config_.num_uavs
                            : 0.0) +
      (config_.num_ugvs > 0 ? energy_ratio_sum_ugv_ / config_.num_ugvs : 0.0);
  m.geographical_fairness = JainFairness(fractions);
  m.efficiency =
      Efficiency(m.data_collection_ratio, m.data_loss_ratio,
                 m.geographical_fairness, m.energy_consumption_ratio);
  return m;
}

std::vector<int> ScEnv::HeterogeneousNeighbors(int k) const {
  std::vector<int> neighbors;
  for (const CollectionEvent& ev : last_events_) {
    if (ev.uav == k && ev.ugv >= 0) neighbors.push_back(ev.ugv);
    if (ev.ugv == k && ev.uav >= 0) neighbors.push_back(ev.uav);
  }
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  return neighbors;
}

std::vector<int> ScEnv::HomogeneousNeighbors(int k) const {
  const double range =
      config_.neighbor_range_fraction * dataset_.campus.bounds.Diagonal();
  if (config_.use_spatial_index) {
    std::vector<int>& neighbors = neighbor_scratch_;
    neighbors.clear();
    agent_grid_.ForEachInDiskBBox(uvs_[k].pos, range, [&](int j) {
      if (j == k || IsUav(j) != IsUav(k)) return;
      if (map::Distance(uvs_[k].pos, uvs_[j].pos) <= range) {
        neighbors.push_back(j);
      }
    });
    std::sort(neighbors.begin(), neighbors.end());
    return {neighbors.begin(), neighbors.end()};
  }
  std::vector<int> neighbors;
  for (int j = 0; j < config_.num_agents(); ++j) {
    if (j == k || IsUav(j) != IsUav(k)) continue;
    if (map::Distance(uvs_[k].pos, uvs_[j].pos) <= range) {
      neighbors.push_back(j);
    }
  }
  return neighbors;
}

}  // namespace agsc::env
