#include "util/logging.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace agsc::util {
namespace {

std::mutex& LogMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

LogLevel& CurrentLevel() {
  static LogLevel level = [] {
    const char* env = std::getenv("AGSC_LOG_LEVEL");
    if (env != nullptr) {
      if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
      if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
      if (std::strcmp(env, "error") == 0) return LogLevel::kError;
    }
    return LogLevel::kInfo;
  }();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { CurrentLevel() = level; }

LogLevel GetLogLevel() { return CurrentLevel(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (level < CurrentLevel()) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << '[' << LevelName(level) << "] " << message << '\n';
}

}  // namespace agsc::util
