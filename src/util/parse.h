#ifndef AGSC_UTIL_PARSE_H_
#define AGSC_UTIL_PARSE_H_

#include <cstdint>
#include <string>

namespace agsc::util {

/// Strict numeric parsing for CLI flags and config files. Unlike
/// std::atoi/atof these reject trailing garbage ("12abc"), empty strings,
/// and out-of-range values instead of silently returning 0. On success the
/// parsed value is stored in `*out` and true is returned; on failure `*out`
/// is untouched.
bool ParseInt(const std::string& text, int* out);
bool ParseInt64(const std::string& text, int64_t* out);
bool ParseUint64(const std::string& text, uint64_t* out);
bool ParseDouble(const std::string& text, double* out);

/// ParseInt plus an inclusive range check.
bool ParseIntInRange(const std::string& text, int lo, int hi, int* out);

/// ParseDouble plus an inclusive range check (NaN always fails).
bool ParseDoubleInRange(const std::string& text, double lo, double hi,
                        double* out);

}  // namespace agsc::util

#endif  // AGSC_UTIL_PARSE_H_
