#include "util/exit_codes.h"

namespace agsc::util {

const char* ExitCodeName(int code) {
  switch (code) {
    case kExitOk: return "ok";
    case kExitUsage: return "usage-error";
    case kExitConfig: return "config-error";
    case kExitIoError: return "io-error";
    case kExitResumeMismatch: return "resume-mismatch";
    case kExitDiverged: return "diverged";
    case kExitWatchdogTimeout: return "watchdog-timeout";
    case kExitSignalStop: return "signal-stop";
    case kExitInterruptedAbort: return "interrupted-abort";
    case kExitWorkerFailed: return "worker-failed";
    case kExitServeError: return "serve-error";
    case kExitNetError: return "net-error";
    default: return "unknown";
  }
}

}  // namespace agsc::util
