#include "util/fault_inject.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "util/env_flags.h"

namespace agsc::util {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::set_config(const Config& config) {
  config_ = config;
  write_count_ = 0;
  loss_count_ = 0;
}

void FaultInjector::ReloadFromEnv() {
  Config config;
  config.fail_write = GetEnvOr("AGSC_FAULT_FAIL_WRITE", 0);
  config.mutate_write = GetEnvOr("AGSC_FAULT_MUTATE_WRITE", 0);
  config.truncate_at =
      static_cast<long>(GetEnvOr("AGSC_FAULT_TRUNCATE_AT", -1));
  config.flip_byte = static_cast<long>(GetEnvOr("AGSC_FAULT_FLIP_BYTE", -1));
  config.nan_loss = GetEnvOr("AGSC_FAULT_NAN_LOSS", 0);
  set_config(config);
}

void FaultInjector::Reset() { set_config(Config{}); }

bool FaultInjector::OnWrite(std::string& bytes) {
  ++write_count_;
  if (config_.fail_write > 0 && write_count_ == config_.fail_write) {
    return false;
  }
  if (config_.mutate_write > 0 && write_count_ == config_.mutate_write) {
    if (config_.truncate_at >= 0 &&
        static_cast<size_t>(config_.truncate_at) < bytes.size()) {
      bytes.resize(static_cast<size_t>(config_.truncate_at));
    }
    if (config_.flip_byte >= 0 &&
        static_cast<size_t>(config_.flip_byte) < bytes.size()) {
      bytes[static_cast<size_t>(config_.flip_byte)] ^=
          static_cast<char>(0xFF);
    }
  }
  return true;
}

bool FaultInjector::PoisonLossNow() {
  if (config_.nan_loss <= 0) return false;
  return ++loss_count_ == config_.nan_loss;
}

bool AtomicWriteFile(const std::string& path, const std::string& bytes) {
  std::string payload = bytes;
  if (!FaultInjector::Instance().OnWrite(payload)) return false;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  size_t written = 0;
  bool ok = true;
  while (written < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + written,
                              payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

}  // namespace agsc::util
