#include "util/fault_inject.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "util/env_flags.h"

namespace agsc::util {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::set_config(const Config& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  write_count_ = 0;
  loss_count_ = 0;
  task_count_ = 0;
  frame_in_count_ = 0;
  frame_out_count_ = 0;
  frame_read_count_ = 0;
}

FaultInjector::Config FaultInjector::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

void FaultInjector::ReloadFromEnv() {
  Config config;
  config.fail_write = GetEnvOr("AGSC_FAULT_FAIL_WRITE", 0);
  config.fail_write_count = GetEnvOr("AGSC_FAULT_FAIL_WRITE_COUNT", 1);
  config.mutate_write = GetEnvOr("AGSC_FAULT_MUTATE_WRITE", 0);
  config.truncate_at =
      static_cast<long>(GetEnvOr("AGSC_FAULT_TRUNCATE_AT", -1));
  config.flip_byte = static_cast<long>(GetEnvOr("AGSC_FAULT_FLIP_BYTE", -1));
  config.signal_write = GetEnvOr("AGSC_FAULT_SIGNAL_WRITE", 0);
  config.nan_loss = GetEnvOr("AGSC_FAULT_NAN_LOSS", 0);
  config.nan_loss_every = GetEnvOr("AGSC_FAULT_NAN_LOSS_EVERY", 0);
  config.stall_task = GetEnvOr("AGSC_FAULT_STALL_TASK", 0);
  config.stall_every = GetEnvOr("AGSC_FAULT_STALL_EVERY", 0);
  config.stall_ms = static_cast<long>(GetEnvOr("AGSC_FAULT_STALL_MS", 0));
  config.flood_clients = GetEnvOr("AGSC_FAULT_FLOOD_CLIENTS", 0);
  config.flood_depth = GetEnvOr("AGSC_FAULT_FLOOD_DEPTH", 64);
  config.stall_drain_ms =
      static_cast<long>(GetEnvOr("AGSC_FAULT_STALL_DRAIN_MS", 0));
  config.kill_worker_nth = GetEnvOr("AGSC_FAULT_KILL_WORKER_NTH", 0);
  config.corrupt_frame = GetEnvOr("AGSC_FAULT_CORRUPT_FRAME", 0);
  config.stall_pipe = GetEnvOr("AGSC_FAULT_STALL_PIPE", 0);
  config.stall_reads = GetEnvOr("AGSC_FAULT_STALL_READS", 0);
  config.drop_conn = GetEnvOr("AGSC_FAULT_DROP_CONN", 0);
  config.fault_worker_id = GetEnvOr("AGSC_FAULT_WORKER_ID", -1);
  set_config(config);
}

void FaultInjector::Reset() { set_config(Config{}); }

bool FaultInjector::OnWrite(std::string& bytes) {
  bool raise_signal = false;
  bool ok = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++write_count_;
    if (config_.signal_write > 0 && write_count_ == config_.signal_write) {
      raise_signal = true;
    }
    if (config_.fail_write > 0 && write_count_ >= config_.fail_write &&
        write_count_ < config_.fail_write + std::max(1,
                                                     config_.fail_write_count)) {
      ok = false;
    }
    if (ok && config_.mutate_write > 0 &&
        write_count_ == config_.mutate_write) {
      if (config_.truncate_at >= 0 &&
          static_cast<size_t>(config_.truncate_at) < bytes.size()) {
        bytes.resize(static_cast<size_t>(config_.truncate_at));
      }
      if (config_.flip_byte >= 0 &&
          static_cast<size_t>(config_.flip_byte) < bytes.size()) {
        bytes[static_cast<size_t>(config_.flip_byte)] ^=
            static_cast<char>(0xFF);
      }
    }
  }
  // Raise outside the lock: the handler must never observe the injector
  // mid-update, and a longjmp-free handler returning here re-enters I/O.
  if (raise_signal) ::raise(SIGINT);
  return ok;
}

bool FaultInjector::PoisonLossNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.nan_loss <= 0 && config_.nan_loss_every <= 0) return false;
  ++loss_count_;
  if (config_.nan_loss > 0 && loss_count_ == config_.nan_loss) return true;
  return config_.nan_loss_every > 0 &&
         loss_count_ % config_.nan_loss_every == 0;
}

long FaultInjector::NextStallMs() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.stall_ms <= 0 ||
      (config_.stall_task <= 0 && config_.stall_every <= 0)) {
    return 0;
  }
  ++task_count_;
  if (config_.stall_task > 0 && task_count_ == config_.stall_task) {
    return config_.stall_ms;
  }
  if (config_.stall_every > 0 && task_count_ % config_.stall_every == 0) {
    return config_.stall_ms;
  }
  return 0;
}

int FaultInjector::FloodClients() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_.flood_clients;
}

int FaultInjector::FloodDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_.flood_depth < 1 ? 1 : config_.flood_depth;
}

long FaultInjector::StallDrainMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_.stall_drain_ms;
}

bool FaultInjector::KillWorkerNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.kill_worker_nth <= 0) return false;
  return ++frame_in_count_ == config_.kill_worker_nth;
}

FaultInjector::FrameFault FaultInjector::NextFrameFault() {
  std::lock_guard<std::mutex> lock(mutex_);
  FrameFault fault;
  if (config_.corrupt_frame <= 0 && config_.stall_pipe <= 0) return fault;
  ++frame_out_count_;
  if (config_.corrupt_frame > 0 && frame_out_count_ == config_.corrupt_frame) {
    // Flip a payload byte past the header; offset 0 keeps the fault
    // deterministic and independent of payload size.
    fault.corrupt_byte = 0;
  }
  if (config_.stall_pipe > 0 && frame_out_count_ == config_.stall_pipe) {
    fault.stall_ms = config_.stall_ms;
  }
  return fault;
}

FaultInjector::ReadFault FaultInjector::NextReadFault() {
  std::lock_guard<std::mutex> lock(mutex_);
  ReadFault fault;
  if (config_.stall_reads <= 0 && config_.drop_conn <= 0) return fault;
  ++frame_read_count_;
  if (config_.stall_reads > 0 && frame_read_count_ == config_.stall_reads) {
    fault.stall_ms = config_.stall_ms;
  }
  if (config_.drop_conn > 0 && frame_read_count_ == config_.drop_conn) {
    fault.drop = true;
  }
  return fault;
}

void FaultInjector::DisarmWorkerFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  config_.kill_worker_nth = 0;
  config_.corrupt_frame = 0;
  config_.stall_pipe = 0;
  config_.drop_conn = 0;
}

void FaultInjector::DisarmReadStallFault() {
  std::lock_guard<std::mutex> lock(mutex_);
  config_.stall_reads = 0;
}

int FaultInjector::write_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_count_;
}

bool AtomicWriteFile(const std::string& path, const std::string& bytes) {
  std::string payload = bytes;
  if (!FaultInjector::Instance().OnWrite(payload)) return false;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  size_t written = 0;
  bool ok = true;
  while (written < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + written,
                              payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

}  // namespace agsc::util
