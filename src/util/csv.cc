#include "util/csv.h"

#include <filesystem>
#include <stdexcept>

#include "util/table.h"

namespace agsc::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path, std::ios::trunc);
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  WriteRow(header);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << CsvEscape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::string& label,
                         const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  WriteRow(cells);
}

void CsvWriter::Flush() { out_.flush(); }

std::string CsvEscape(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

bool EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return !ec || std::filesystem::exists(dir);
}

}  // namespace agsc::util
