#ifndef AGSC_UTIL_ENV_FLAGS_H_
#define AGSC_UTIL_ENV_FLAGS_H_

#include <string>

namespace agsc::util {

/// Returns the value of environment variable `name`, or `fallback` if unset.
std::string GetEnvOr(const std::string& name, const std::string& fallback);

/// Returns env var `name` parsed as int, or `fallback` if unset/unparsable.
int GetEnvOr(const std::string& name, int fallback);

/// Returns env var `name` parsed as double, or `fallback` if unset/unparsable.
double GetEnvOr(const std::string& name, double fallback);

/// Benchmark scale selected by AGSC_BENCH_SCALE: "smoke" (default) runs
/// reduced sweeps/training so the whole harness finishes in minutes;
/// "paper" runs the full sweep grid with a larger training budget.
enum class BenchScale { kSmoke, kPaper };

/// Reads AGSC_BENCH_SCALE ("smoke"|"paper"); defaults to kSmoke.
BenchScale GetBenchScale();

}  // namespace agsc::util

#endif  // AGSC_UTIL_ENV_FLAGS_H_
