#ifndef AGSC_UTIL_SUBPROCESS_H_
#define AGSC_UTIL_SUBPROCESS_H_

#include <sys/types.h>

#include <string>
#include <vector>

namespace agsc::util {

/// A child process connected to the parent by two pipes: the parent writes
/// the child's stdin through stdin_fd() and reads its stdout through
/// stdout_fd(); stderr is inherited so the child's diagnostics land in the
/// parent's log stream. Generalized out of the chaos-test campaign's
/// fork/exec harness so the trainer can own crash-isolated rollout workers.
///
/// Pipe fds are O_CLOEXEC on the parent side, so concurrently spawned
/// siblings do not inherit each other's pipe ends (a leaked write end would
/// keep a dead worker's pipe from ever reporting EOF). Not thread-safe; one
/// owner per instance. The destructor SIGKILLs and reaps a still-running
/// child — a Subprocess never outlives its handle.
class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;

  /// Forks and execs `argv` (argv[0] is the binary path; PATH is not
  /// searched). Returns false if the pipes or the fork fail, or if `argv`
  /// is empty. An exec failure inside the child cannot be reported here —
  /// the child _exits with 127 and the parent observes EOF on stdout_fd()
  /// plus exit code 127 from Wait().
  bool Start(const std::vector<std::string>& argv);

  /// True between a successful Start() and the Wait() that reaped the child.
  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Parent ends of the pipes; -1 when not running.
  int stdin_fd() const { return stdin_fd_; }
  int stdout_fd() const { return stdout_fd_; }

  /// Closes the parent's write end of the child's stdin; the child sees
  /// EOF. Safe to call repeatedly.
  void CloseStdin();

  /// Sends `sig` (default SIGKILL) to the child if it is still running.
  void Kill(int sig = 9);

  /// Waits up to `timeout_ms` for the child to exit (<= 0 waits forever)
  /// and reaps it. Returns true once reaped; `exit_code` (optional)
  /// receives the shell-convention status: WEXITSTATUS for a normal exit,
  /// 128 + signal for a signal death. Returns false on timeout with the
  /// child still running.
  bool Wait(int* exit_code, long timeout_ms = -1);

  /// Kill(SIGKILL) + Wait + close both pipe fds: the unconditional cleanup
  /// path. No-op when nothing is running or open.
  void Reap();

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
};

}  // namespace agsc::util

#endif  // AGSC_UTIL_SUBPROCESS_H_
