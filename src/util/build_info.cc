#include "util/build_info.h"

#include <sstream>

namespace agsc::util {

std::string BuildInfoString(const std::string& extra) {
  std::ostringstream out;
#if defined(__clang__)
  out << "compiler=clang-" << __clang_major__ << "." << __clang_minor__ << "."
      << __clang_patchlevel__;
#elif defined(__GNUC__)
  out << "compiler=gcc-" << __GNUC__ << "." << __GNUC_MINOR__ << "."
      << __GNUC_PATCHLEVEL__;
#else
  out << "compiler=unknown";
#endif

#ifdef AGSC_BUILD_TYPE
  out << " build=" << (AGSC_BUILD_TYPE[0] != '\0' ? AGSC_BUILD_TYPE : "none");
#else
  out << " build=unknown";
#endif

#ifdef AGSC_SANITIZE_STR
  out << " sanitize="
      << (AGSC_SANITIZE_STR[0] != '\0' ? AGSC_SANITIZE_STR : "none");
#else
  out << " sanitize=none";
#endif

  out << " std=" << __cplusplus;
  if (!extra.empty()) out << " " << extra;
  return out.str();
}

}  // namespace agsc::util
