#include "util/rng.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace agsc::util {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::UniformInt: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (hi < lo) throw std::invalid_argument("Rng::UniformInt: hi < lo");
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform.
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::Categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::Categorical: weights sum to zero");
  }
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::Split(uint64_t stream_id) const {
  // Collapse the current 256-bit state into one word, fold in the stream
  // id, and re-expand through SplitMix64 (the same seeding path as the
  // constructor). Rotations keep the four words from cancelling.
  uint64_t sm = state_[0] ^ RotL(state_[1], 13) ^ RotL(state_[2], 27) ^
                RotL(state_[3], 41);
  sm ^= (stream_id + 1) * 0xA0761D6478BD642FULL;
  Rng child(0);
  for (auto& s : child.state_) s = SplitMix64(sm);
  child.have_cached_gaussian_ = false;
  child.cached_gaussian_ = 0.0;
  return child;
}

std::array<uint64_t, Rng::kStateWords> Rng::SaveState() const {
  std::array<uint64_t, kStateWords> out{};
  for (int i = 0; i < 4; ++i) out[i] = state_[i];
  out[4] = have_cached_gaussian_ ? 1 : 0;
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(cached_gaussian_));
  std::memcpy(&bits, &cached_gaussian_, sizeof(bits));
  out[5] = bits;
  return out;
}

void Rng::LoadState(const std::array<uint64_t, kStateWords>& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state[i];
  have_cached_gaussian_ = state[4] != 0;
  std::memcpy(&cached_gaussian_, &state[5], sizeof(cached_gaussian_));
}

}  // namespace agsc::util
