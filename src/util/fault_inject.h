#ifndef AGSC_UTIL_FAULT_INJECT_H_
#define AGSC_UTIL_FAULT_INJECT_H_

#include <mutex>
#include <string>

namespace agsc::util {

/// Deterministic fault injection for exercising crash-recovery paths in
/// tests. All faults are disabled by default; they are armed either
/// programmatically via set_config() or from environment flags via
/// ReloadFromEnv():
///
///   AGSC_FAULT_FAIL_WRITE=N        AtomicWriteFile call #N (1-based) fails
///                                  without touching the destination.
///   AGSC_FAULT_FAIL_WRITE_COUNT=M  with FAIL_WRITE=N, calls N..N+M-1 all
///                                  fail (default 1). M >= the retry
///                                  policy's attempts makes the failure
///                                  persistent; smaller M makes it a
///                                  transient fault the retry layer
///                                  absorbs.
///   AGSC_FAULT_MUTATE_WRITE=N      AtomicWriteFile call #N writes a
///                                  corrupted payload, shaped by the two
///                                  flags below.
///   AGSC_FAULT_TRUNCATE_AT=B       the mutated payload is truncated to B
///                                  bytes.
///   AGSC_FAULT_FLIP_BYTE=B         byte B of the mutated payload is XORed
///                                  with 0xFF (after any truncation).
///   AGSC_FAULT_SIGNAL_WRITE=N      raise(SIGINT) just before AtomicWrite-
///                                  File call #N runs — a deterministic
///                                  "signal arrives mid-checkpoint".
///   AGSC_FAULT_NAN_LOSS=N          guarded training loss #N evaluates as
///                                  NaN (exercises the divergence guard).
///   AGSC_FAULT_NAN_LOSS_EVERY=K    every Kth guarded loss is NaN — a
///                                  persistent divergence that drives the
///                                  LR-backoff / give-up path.
///   AGSC_FAULT_STALL_TASK=N        guarded worker task #N stalls for
///                                  AGSC_FAULT_STALL_MS milliseconds
///                                  (exercises the rollout watchdog).
///   AGSC_FAULT_STALL_EVERY=K       every Kth guarded task stalls (may be
///                                  combined with STALL_TASK) — a
///                                  *sustained* slowdown rather than a
///                                  one-off; drives the serving layer past
///                                  saturation so admission control and
///                                  brownout engage.
///   AGSC_FAULT_STALL_MS=M          stall duration (default 0 = no stall).
///
/// Misbehaving-client modes, observed by serving-side client fleets
/// (agsc_serve's local clients, ServeClient) to reproduce overload without
/// bespoke load generators:
///
///   AGSC_FAULT_FLOOD_CLIENTS=N     the first N local agsc_serve clients
///                                  FLOOD: instead of lock-step request/
///                                  response they keep AGSC_FAULT_FLOOD_-
///                                  DEPTH async requests in flight each —
///                                  the admission queue fills and the
///                                  per-client cap / fairness machinery
///                                  must contain them.
///   AGSC_FAULT_FLOOD_DEPTH=D       in-flight pipeline per flooding client
///                                  (default 64).
///   AGSC_FAULT_STALL_DRAIN_MS=M    ServeClient sleeps M ms before every
///                                  response read — a peer that stops
///                                  draining its socket; combined with a
///                                  pipelined send loop it trips the
///                                  frontend's write budget and the
///                                  slow-client quarantine.
///
/// Subprocess-rollout faults, observed by the agsc_worker binary (the
/// trainer process inherits the same environment but never calls these
/// hooks). Scoped by AGSC_FAULT_WORKER_ID, and disarmed for respawned
/// incarnations so a replayed shard does not re-trip the same fault:
///
///   AGSC_FAULT_KILL_WORKER_NTH=N   the worker SIGKILLs itself on receiving
///                                  its Nth step frame — a deterministic
///                                  mid-round crash (segfault/OOM stand-in).
///   AGSC_FAULT_CORRUPT_FRAME=N     the worker's Nth outgoing result frame
///                                  has a payload byte flipped after the
///                                  CRC is computed (garbage-emitting
///                                  worker; the trainer must detect it).
///   AGSC_FAULT_STALL_PIPE=N        the worker sleeps AGSC_FAULT_STALL_MS
///                                  before writing its Nth result frame
///                                  (hung worker; exercises the read
///                                  timeout -> respawn path).
///   AGSC_FAULT_STALL_READS=N       the worker sleeps AGSC_FAULT_STALL_MS
///                                  before *reading* its Nth incoming frame
///                                  (counted over every incoming frame,
///                                  init/prefix included) — a peer that
///                                  stops draining; exercises the bounded
///                                  FrameWriter::Write -> kTimeout path.
///                                  Scoped by its own incarnation knob
///                                  AGSC_FAULT_STALL_READS_INCARNATION
///                                  (read by agsc_worker, default 0) so the
///                                  stall can target a *respawned*
///                                  incarnation whose episode prefix
///                                  carries a large replay log.
///   AGSC_FAULT_DROP_CONN=N         a remote (--connect) worker drops its
///                                  TCP connection instead of reading its
///                                  Nth incoming frame, then reconnects —
///                                  the injected mid-episode network
///                                  partition behind the reconnect-and-
///                                  replay tests. Pipe workers exit 4
///                                  instead (the trainer sees EOF).
///   AGSC_FAULT_WORKER_ID=W         restrict the worker faults above to
///                                  worker W (default -1 = any worker).
///
/// The injector is a process-wide singleton; counters advance across all
/// call sites so "the Nth write" is well defined for a whole run. All
/// entry points are thread-safe: checkpoint writes, guarded losses and
/// worker stalls may run concurrently under --num-workers/--nn-threads.
class FaultInjector {
 public:
  struct Config {
    int fail_write = 0;       ///< 1-based first write call to fail; 0 = off.
    int fail_write_count = 1; ///< How many consecutive writes fail.
    int mutate_write = 0;     ///< 1-based write call to corrupt; 0 = off.
    long truncate_at = -1;    ///< Truncation length for the mutated write.
    long flip_byte = -1;      ///< Byte offset to flip in the mutated write.
    int signal_write = 0;     ///< 1-based write call to precede with SIGINT.
    int nan_loss = 0;         ///< 1-based guarded loss to poison; 0 = off.
    int nan_loss_every = 0;   ///< Every Kth guarded loss is NaN; 0 = off.
    int stall_task = 0;       ///< 1-based guarded worker task to stall.
    int stall_every = 0;      ///< Every Kth guarded task stalls; 0 = off.
    long stall_ms = 0;        ///< Stall duration in milliseconds.
    int flood_clients = 0;    ///< Local serve clients that flood; 0 = none.
    int flood_depth = 64;     ///< In-flight pipeline per flooding client.
    long stall_drain_ms = 0;  ///< ServeClient delay before response reads.
    int kill_worker_nth = 0;  ///< 1-based incoming step frame to die on.
    int corrupt_frame = 0;    ///< 1-based outgoing frame to corrupt.
    int stall_pipe = 0;       ///< 1-based outgoing frame to delay.
    int stall_reads = 0;      ///< 1-based incoming frame to stall before.
    int drop_conn = 0;        ///< 1-based incoming frame to drop conn before.
    int fault_worker_id = -1; ///< Worker the faults above target; -1 = any.
  };

  /// Faults to apply to the next outgoing IPC frame (worker side).
  struct FrameFault {
    long stall_ms = 0;       ///< Sleep before writing; 0 = none.
    long corrupt_byte = -1;  ///< Payload byte to flip post-CRC; -1 = none.
  };

  /// Faults to apply before the next incoming IPC frame (worker side).
  struct ReadFault {
    long stall_ms = 0;  ///< Sleep before reading; 0 = none (STALL_READS).
    bool drop = false;  ///< Drop the connection instead (DROP_CONN).
  };

  static FaultInjector& Instance();

  /// Installs `config` and resets all counters.
  void set_config(const Config& config);
  Config config() const;

  /// Re-reads the AGSC_FAULT_* environment flags and resets all counters.
  void ReloadFromEnv();

  /// Disables all faults and resets all counters.
  void Reset();

  /// Called once per AtomicWriteFile with the payload about to be written.
  /// Advances the write counter; returns false if this write must fail,
  /// and corrupts `bytes` in place if this write is the mutation target.
  /// May raise SIGINT first when this write is the signal target.
  bool OnWrite(std::string& bytes);

  /// Called once per guarded loss evaluation; returns true if this loss
  /// must be treated as NaN.
  bool PoisonLossNow();

  /// Called once per guarded worker task (rollout env steps); returns the
  /// stall to inject in milliseconds (0 = run normally). The caller sleeps
  /// outside the injector's lock. Fires one-shot on task STALL_TASK and
  /// repeatedly on every STALL_EVERYth task.
  long NextStallMs();

  /// Misbehaving-client knobs (FLOOD_CLIENTS / FLOOD_DEPTH /
  /// STALL_DRAIN_MS); plain reads, no counters advance.
  int FloodClients() const;
  int FloodDepth() const;
  long StallDrainMs() const;

  /// Called by agsc_worker once per incoming step frame; true means this
  /// worker must SIGKILL itself now (KILL_WORKER_NTH).
  bool KillWorkerNow();

  /// Called by agsc_worker once per outgoing result frame; returns the
  /// CORRUPT_FRAME / STALL_PIPE faults due for this frame. The caller
  /// sleeps and flips outside the injector's lock.
  FrameFault NextFrameFault();

  /// Called by agsc_worker once per incoming frame, *before* the read;
  /// returns the STALL_READS / DROP_CONN faults due for this frame. The
  /// caller sleeps / drops outside the injector's lock.
  ReadFault NextReadFault();

  /// Disarms the subprocess-rollout faults only (KILL_WORKER_NTH,
  /// CORRUPT_FRAME, STALL_PIPE, DROP_CONN). agsc_worker calls this when
  /// the faults are scoped to another worker id, or when it is a respawned
  /// incarnation / reconnection — a replayed shard must not re-trip the
  /// fault that killed its predecessor. STALL_READS is NOT covered: it is
  /// scoped by its own incarnation knob (see the env-flag table) and
  /// disarmed via DisarmReadStallFault.
  void DisarmWorkerFaults();

  /// Disarms STALL_READS only (its incarnation scope is independent so the
  /// stall can be aimed at a respawned incarnation's replay prefix).
  void DisarmReadStallFault();

  int write_count() const;

 private:
  FaultInjector() { ReloadFromEnv(); }

  mutable std::mutex mutex_;
  Config config_;
  int write_count_ = 0;
  int loss_count_ = 0;
  int task_count_ = 0;
  int frame_in_count_ = 0;
  int frame_out_count_ = 0;
  int frame_read_count_ = 0;
};

/// Writes `bytes` to `path` crash-safely: the payload goes to `path.tmp`,
/// is fsync'd, and is then renamed over `path`, so readers observe either
/// the old file or the complete new one, never a torn write. Returns false
/// on any I/O failure (or an injected fault), leaving the old file intact.
/// Single attempt — see util::AtomicWriteFileRetry for the retrying variant.
bool AtomicWriteFile(const std::string& path, const std::string& bytes);

}  // namespace agsc::util

#endif  // AGSC_UTIL_FAULT_INJECT_H_
