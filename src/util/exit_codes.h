#ifndef AGSC_UTIL_EXIT_CODES_H_
#define AGSC_UTIL_EXIT_CODES_H_

namespace agsc::util {

/// Stable exit-code taxonomy for the long-running tools (agsc_train).
/// Supervisors (shell scripts, cron, k8s restart policies) key restart /
/// alert decisions off these values, so they are part of the CLI contract
/// and documented in README.md; never renumber an existing entry.
enum ExitCode : int {
  /// Run completed normally (including a --resume that was already done).
  kExitOk = 0,
  /// Unknown flag, malformed value, or inconsistent flag combination.
  kExitUsage = 2,
  /// Flags parsed but the resulting EnvConfig failed validation.
  kExitConfig = 3,
  /// A required checkpoint/stats write or an explicit --load/--save failed
  /// even after the retry policy was exhausted.
  kExitIoError = 4,
  /// --resume found checkpoint files but none of them loaded (corrupted
  /// beyond the retained set, or an architecture/worker-count mismatch).
  /// The run refuses to silently retrain from scratch.
  kExitResumeMismatch = 5,
  /// Training diverged beyond recovery: the divergence guard exhausted
  /// --max-backoffs learning-rate backoffs. A final checkpoint is flushed
  /// before exiting so the run is inspectable/resumable.
  kExitDiverged = 6,
  /// A rollout worker exceeded the --watchdog-sec deadline. The process
  /// exits immediately (no state flush: the hung worker may still own the
  /// sampler state); the last auto-checkpoint is the resume point.
  kExitWatchdogTimeout = 7,
  /// Clean cooperative stop after SIGINT/SIGTERM: a final checkpoint and
  /// the stats CSV were flushed at the last safe boundary.
  kExitSignalStop = 8,
  /// Second SIGINT/SIGTERM while a cooperative stop was pending: immediate
  /// abort from the signal handler, nothing flushed.
  kExitInterruptedAbort = 9,
  /// A rollout worker subprocess (--proc-workers) could not be kept alive:
  /// spawn/handshake failed outright, or the per-collect respawn budget
  /// was exhausted by repeated crashes. A final checkpoint is flushed
  /// first (the trainer's own state is consistent; only the disposable
  /// worker fleet is broken).
  kExitWorkerFailed = 10,
  /// The dispatch service (agsc_serve) could not start or keep serving: no
  /// loadable policy snapshot at startup, the session table could not be
  /// built, or the serving loop failed internally. Snapshot files that
  /// corrupt *after* startup do NOT use this code — the server keeps the
  /// last good snapshot live and exits 0.
  kExitServeError = 11,
  /// Network setup failed: an unusable --listen address (bind/listen
  /// refused, unparseable host:port) in agsc_train/agsc_serve, or an
  /// agsc_worker --connect whose retry budget never reached a listening
  /// trainer. Runtime peer failures (a worker dropping mid-run) do NOT use
  /// this code — they feed the reconnect-and-replay machinery and, only if
  /// the respawn budget dies, surface as kExitWorkerFailed.
  kExitNetError = 12,
};

/// Short stable name of `code` for log lines ("ok", "watchdog-timeout", ...);
/// "unknown" for values outside the taxonomy.
const char* ExitCodeName(int code);

}  // namespace agsc::util

#endif  // AGSC_UTIL_EXIT_CODES_H_
