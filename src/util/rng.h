#ifndef AGSC_UTIL_RNG_H_
#define AGSC_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace agsc::util {

/// Deterministic, seedable pseudo-random number generator.
///
/// Uses xoshiro256++ seeded through SplitMix64. Every stochastic component in
/// the library (environment, policies, trainers, dataset generators) draws
/// from an explicitly passed `Rng` so that experiments are reproducible from
/// a single seed.
class Rng {
 public:
  /// Creates a generator whose entire stream is determined by `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng& other) = default;
  Rng& operator=(const Rng& other) = default;

  /// Returns the next raw 64-bit output of xoshiro256++.
  uint64_t NextU64();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Returns an integer uniformly distributed in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a sample from the standard normal distribution (Box-Muller).
  double Gaussian();

  /// Returns a sample from N(mean, stddev^2).
  double Gaussian(double mean, double stddev);

  /// Returns true with probability `p`.
  bool Bernoulli(double p);

  /// Returns an index in [0, weights.size()) drawn proportionally to
  /// `weights`. All weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    if (values.empty()) return;
    for (size_t i = values.size() - 1; i > 0; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i + 1));
      std::swap(values[i], values[j]);
    }
  }

  /// Forks an independent generator; the child stream is a deterministic
  /// function of this generator's current state.
  Rng Fork();

  /// Derives an independent child stream identified by `stream_id` WITHOUT
  /// advancing this generator. The child state is a SplitMix64 expansion of
  /// (current state, stream_id), so distinct ids yield decorrelated streams
  /// and the same (state, id) pair always yields the same stream — the
  /// basis of the parallel-sampler determinism contract (each rollout
  /// worker w draws from Split(w), making results independent of thread
  /// scheduling).
  Rng Split(uint64_t stream_id) const;

  /// Number of 64-bit words in the serialized generator state: the four
  /// xoshiro256++ words plus the Box-Muller cache (flag, value bits).
  static constexpr size_t kStateWords = 6;

  /// Captures the complete generator state; restoring it with LoadState
  /// reproduces the exact same output stream (checkpoint/resume support).
  std::array<uint64_t, kStateWords> SaveState() const;

  /// Restores a state captured by SaveState.
  void LoadState(const std::array<uint64_t, kStateWords>& state);

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace agsc::util

#endif  // AGSC_UTIL_RNG_H_
