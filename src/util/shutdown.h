#ifndef AGSC_UTIL_SHUTDOWN_H_
#define AGSC_UTIL_SHUTDOWN_H_

#include <stdexcept>
#include <string>

namespace agsc::util {

/// Cooperative graceful-shutdown support for long training runs.
///
/// InstallShutdownHandler() registers a signal-safe SIGINT/SIGTERM handler
/// that only sets an atomic flag; the training loop polls
/// ShutdownRequested() at iteration and sampling boundaries and winds down
/// cleanly (final checkpoint + stats flush). A *second* signal while the
/// stop is pending means the user is done waiting: the handler calls
/// _exit(kExitInterruptedAbort) immediately, flushing nothing.
///
/// The handler performs only async-signal-safe work (atomic stores, write(2),
/// _exit). Everything else — checkpointing, logging, teardown — happens on
/// the training thread when it observes the flag.
void InstallShutdownHandler();

/// True once SIGINT/SIGTERM arrived (or RequestShutdown() was called).
bool ShutdownRequested();

/// The signal number that triggered the pending shutdown, or 0 if none.
int ShutdownSignal();

/// Programmatic equivalent of the first signal (tests, embedding code).
void RequestShutdown();

/// Clears the pending-shutdown flag (tests only; real runs exit instead).
void ResetShutdownForTest();

/// Thrown by samplers/trainers when a cooperative stop request interrupts
/// work mid-iteration. Carries no data: the catcher decides how much state
/// is still at a consistent boundary to flush.
class InterruptedError : public std::runtime_error {
 public:
  explicit InterruptedError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace agsc::util

#endif  // AGSC_UTIL_SHUTDOWN_H_
