#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

#include "util/parse.h"

namespace agsc::util {

namespace {

long RemainingMs(const std::chrono::steady_clock::time_point& deadline) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
      .count();
}

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Resolves "localhost" / numeric IPv4 into `addr`; false on anything else
/// (no DNS: worker/trainer addressing is numeric by contract).
bool ResolveIpv4(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  return ::inet_pton(AF_INET, ip.c_str(), &addr->sin_addr) == 1;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int NewTcpSocket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

}  // namespace

void IgnoreSigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
  });
}

bool ParseHostPort(const std::string& spec, std::string* host, int* port,
                   std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return fail("'" + spec + "' has no ':' — expected HOST:PORT or :PORT");
  }
  std::string h = spec.substr(0, colon);
  if (h.empty()) h = "127.0.0.1";
  const std::string port_token = spec.substr(colon + 1);
  int p = 0;
  if (!ParseIntInRange(port_token, 0, 65535, &p)) {
    return fail("bad port '" + port_token + "' in '" + spec +
                "' — expected an integer in 0..65535 (0 = kernel-picked)");
  }
  sockaddr_in probe;
  if (!ResolveIpv4(h, p, &probe)) {
    return fail("bad host '" + h + "' in '" + spec +
                "' — expected a numeric IPv4 address (e.g. 127.0.0.1) or "
                "'localhost'; hostnames are not resolved");
  }
  *host = h;
  *port = p;
  return true;
}

bool SetNonBlocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want == flags) return true;
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool TcpListener::Listen(const std::string& host, int port,
                         std::string* error) {
  Close();
  sockaddr_in addr;
  if (!ResolveIpv4(host, port, &addr)) {
    if (error != nullptr) *error = "unresolvable listen host '" + host + "'";
    return false;
  }
  const int fd = NewTcpSocket();
  if (fd < 0) {
    if (error != nullptr) *error = Errno("socket");
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    if (error != nullptr) *error = Errno("bind/listen");
    ::close(fd);
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    if (error != nullptr) *error = Errno("getsockname");
    ::close(fd);
    return false;
  }
  fd_ = fd;
  bound_port_ = ntohs(bound.sin_port);
  return true;
}

int TcpListener::Accept(long timeout_ms) {
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  while (true) {
    if (fd_ < 0) return -2;
    struct pollfd pfd{fd_, POLLIN, 0};
    const long remaining =
        bounded ? std::max(0L, RemainingMs(deadline)) : -1L;
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -2;
    }
    if (pr == 0) return -1;
    const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        // A pending connection can vanish between poll and accept; retry
        // within the same deadline.
        if (bounded && RemainingMs(deadline) <= 0) return -1;
        continue;
      }
      return -2;
    }
    SetNoDelay(conn);
    return conn;
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    // shutdown() before close(): closing an fd does NOT wake a thread
    // blocked in poll(2) on it (the open file description stays alive
    // under the poller), but shutting down a listening socket does — the
    // woken Accept then sees fd_ < 0 or EINVAL from accept4 and returns
    // -2 as documented.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  bound_port_ = 0;
}

int TcpConnect(const std::string& host, int port, long timeout_ms,
               std::string* error) {
  sockaddr_in addr;
  if (!ResolveIpv4(host, port, &addr)) {
    if (error != nullptr) *error = "unresolvable host '" + host + "'";
    return -1;
  }
  const int fd = NewTcpSocket();
  if (fd < 0) {
    if (error != nullptr) *error = Errno("socket");
    return -1;
  }
  if (!SetNonBlocking(fd, true)) {
    if (error != nullptr) *error = Errno("fcntl");
    ::close(fd);
    return -1;
  }
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    if (error != nullptr) *error = Errno("connect");
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    // In-progress: poll for writability, then read the final status.
    while (true) {
      struct pollfd pfd{fd, POLLOUT, 0};
      const long remaining =
          bounded ? std::max(0L, RemainingMs(deadline)) : -1L;
      const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (pr < 0) {
        if (errno == EINTR) continue;
        if (error != nullptr) *error = Errno("poll");
        ::close(fd);
        return -1;
      }
      if (pr == 0) {
        if (error != nullptr) *error = "connect timed out";
        ::close(fd);
        return -1;
      }
      break;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      if (error != nullptr) {
        *error = std::string("connect: ") +
                 std::strerror(so_error != 0 ? so_error : errno);
      }
      ::close(fd);
      return -1;
    }
  }
  // Leave the fd nonblocking: FrameReader/FrameWriter poll around EAGAIN,
  // and bounded writes depend on it (a blocking write past the socket
  // buffer ignores any prior POLLOUT).
  SetNoDelay(fd);
  return fd;
}

int TcpConnectWithRetry(const std::string& host, int port, long timeout_ms,
                        const RetryPolicy& policy,
                        const std::function<void(double)>& sleep_ms,
                        std::string* error, int* attempts_out) {
  int fd = -1;
  std::string last_error;
  RetryWithBackoff(
      policy,
      [&] {
        fd = TcpConnect(host, port, timeout_ms, &last_error);
        return fd >= 0;
      },
      sleep_ms, attempts_out);
  if (fd < 0 && error != nullptr) *error = last_error;
  return fd;
}

}  // namespace agsc::util
