#include "util/env_flags.h"

#include <cstdlib>

namespace agsc::util {

std::string GetEnvOr(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  return value != nullptr ? std::string(value) : fallback;
}

int GetEnvOr(const std::string& name, int fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double GetEnvOr(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

BenchScale GetBenchScale() {
  return GetEnvOr("AGSC_BENCH_SCALE", std::string("smoke")) == "paper"
             ? BenchScale::kPaper
             : BenchScale::kSmoke;
}

}  // namespace agsc::util
