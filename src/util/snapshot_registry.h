#ifndef AGSC_UTIL_SNAPSHOT_REGISTRY_H_
#define AGSC_UTIL_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

namespace agsc::util {

/// Read-mostly publication point for immutable snapshots (e.g. policy
/// parameter sets promoted into a live dispatch server).
///
/// The registry holds one `shared_ptr<const T>` behind a
/// `std::atomic<std::shared_ptr>`. Readers call Acquire() once per unit of
/// work (a request batch, not a request) and then use the snapshot through
/// plain loads — the object behind the pointer is immutable by contract, so
/// no further synchronization is needed. Publishers build the replacement
/// off to the side and swap it in with a single release store; the old
/// snapshot stays alive (and fully valid) for as long as any in-flight
/// reader still holds its reference, then the last reference frees it.
///
/// Memory-ordering argument (documented in DESIGN.md "Serving"): Publish's
/// store is a release operation on the control-block pointer and every
/// Acquire load is an acquire operation, so all writes that initialized the
/// snapshot happen-before any read through an acquired pointer. A reader
/// therefore observes either the complete old snapshot or the complete new
/// one — never a torn mix — and the refcount keeps whichever one it got
/// alive for the duration of the batch. There is no reader-side lock to
/// block a publisher and no publisher-side pause of request handling.
///
/// `version()` counts successful publishes (the initial snapshot installed
/// at construction is version 1); it is monotonically increasing and
/// updated before the swap, so a snapshot tagged with the version returned
/// by Publish is visible to readers no later than that version number.
template <typename T>
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  explicit SnapshotRegistry(std::shared_ptr<const T> initial) {
    Publish(std::move(initial));
  }

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Returns the current snapshot (possibly null before the first Publish).
  /// The returned reference keeps the snapshot alive even if a publisher
  /// swaps in a replacement concurrently.
  std::shared_ptr<const T> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Atomically installs `snapshot` as the current one and returns the new
  /// version number. The previous snapshot is released (freed once the last
  /// in-flight reader drops it).
  uint64_t Publish(std::shared_ptr<const T> snapshot) {
    const uint64_t version =
        1 + version_.fetch_add(1, std::memory_order_relaxed);
    current_.store(std::move(snapshot), std::memory_order_release);
    return version;
  }

  /// Number of successful Publish calls so far.
  uint64_t version() const { return version_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::shared_ptr<const T>> current_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace agsc::util

#endif  // AGSC_UTIL_SNAPSHOT_REGISTRY_H_
