#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <sstream>
#include <utility>

namespace agsc::util {

namespace {
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 0) num_threads = 0;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ and nothing left.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // Exceptions land in the task's future, never escape here.
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (threads_.empty()) {
    packaged();  // Inline mode: run on the caller's thread.
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Wait for everything first so no task can still be touching caller state
  // when we unwind, then rethrow from the lowest failing index.
  std::exception_ptr first_error;
  for (int i = 0; i < n; ++i) {
    try {
      futures[static_cast<size_t>(i)].get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn,
                             long deadline_ms) {
  if (deadline_ms <= 0) {
    ParallelFor(n, fn);
    return;
  }
  if (n <= 0) return;

  // Everything a task touches after a timeout throw must outlive this
  // frame: the callable and the heartbeat slots live behind a shared_ptr
  // that every task co-owns.
  struct Batch {
    std::function<void(int)> fn;
    std::vector<std::atomic<int64_t>> start_ns;  ///< 0 = not started yet.
    std::vector<std::atomic<uint8_t>> done;
    Batch(const std::function<void(int)>& f, int count)
        : fn(f),
          start_ns(static_cast<size_t>(count)),
          done(static_cast<size_t>(count)) {}
  };
  auto batch = std::make_shared<Batch>(fn, n);

  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(Submit([batch, i] {
      const size_t s = static_cast<size_t>(i);
      batch->start_ns[s].store(NowNs(), std::memory_order_relaxed);
      try {
        batch->fn(i);
      } catch (...) {
        batch->done[s].store(1, std::memory_order_release);
        throw;  // Lands in the future; rethrown below on the normal path.
      }
      batch->done[s].store(1, std::memory_order_release);
    }));
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  bool timed_out = false;
  for (int i = 0; i < n && !timed_out; ++i) {
    if (futures[static_cast<size_t>(i)].wait_until(deadline) !=
        std::future_status::ready) {
      timed_out = true;
    }
  }

  if (timed_out) {
    // Re-scan the heartbeat flags: a future can become ready between the
    // timed wait and here, so only a task still marked unfinished counts.
    for (int i = 0; i < n; ++i) {
      const size_t s = static_cast<size_t>(i);
      if (batch->done[s].load(std::memory_order_acquire) != 0) continue;
      const int64_t started = batch->start_ns[s].load(
          std::memory_order_relaxed);
      const long elapsed_ms =
          started > 0 ? static_cast<long>((NowNs() - started) / 1000000)
                      : 0;
      std::ostringstream msg;
      msg << "watchdog: task " << i << " of " << n << " missed the "
          << deadline_ms << " ms deadline (";
      if (started > 0) {
        msg << "running for " << elapsed_ms << " ms";
      } else {
        msg << "never started";
      }
      msg << ")";
      throw WatchdogTimeoutError(msg.str(), i, started > 0, elapsed_ms,
                                 deadline_ms);
    }
    // Every task finished in the race window after all: fall through.
  }

  std::exception_ptr first_error;
  for (int i = 0; i < n; ++i) {
    try {
      futures[static_cast<size_t>(i)].get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace agsc::util
