#include "util/thread_pool.h"

#include <exception>
#include <utility>

namespace agsc::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 0) num_threads = 0;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ and nothing left.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // Exceptions land in the task's future, never escape here.
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (threads_.empty()) {
    packaged();  // Inline mode: run on the caller's thread.
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Wait for everything first so no task can still be touching caller state
  // when we unwind, then rethrow from the lowest failing index.
  std::exception_ptr first_error;
  for (int i = 0; i < n; ++i) {
    try {
      futures[static_cast<size_t>(i)].get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace agsc::util
