#ifndef AGSC_UTIL_CSV_H_
#define AGSC_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace agsc::util {

/// Minimal CSV writer used by the benchmark harness to dump the series each
/// paper figure plots. Fields containing commas, quotes or newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncating) and writes `header` as the first
  /// row. Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row of string cells.
  void WriteRow(const std::vector<std::string>& cells);

  /// Writes a row of `label` followed by fixed-precision doubles.
  void WriteRow(const std::string& label, const std::vector<double>& values,
                int precision = 6);

  /// Flushes buffered output to disk.
  void Flush();

 private:
  std::ofstream out_;
};

/// Escapes a single CSV field per RFC 4180.
std::string CsvEscape(const std::string& field);

/// Creates `dir` (and parents) if missing; returns false on failure.
bool EnsureDirectory(const std::string& dir);

}  // namespace agsc::util

#endif  // AGSC_UTIL_CSV_H_
