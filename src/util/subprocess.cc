#include "util/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

namespace agsc::util {

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Subprocess::~Subprocess() { Reap(); }

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdin_fd_(std::exchange(other.stdin_fd_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    Reap();
    pid_ = std::exchange(other.pid_, -1);
    stdin_fd_ = std::exchange(other.stdin_fd_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
  }
  return *this;
}

bool Subprocess::Start(const std::vector<std::string>& argv) {
  if (running() || argv.empty()) return false;

  // in[1]: parent writes child's stdin; out[0]: parent reads child's stdout.
  int in_pipe[2] = {-1, -1};
  int out_pipe[2] = {-1, -1};
  if (::pipe(in_pipe) != 0) return false;
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return false;
  }

  if (pid == 0) {
    // Child: async-signal-safe work only between fork and exec.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      cargv.push_back(const_cast<char*>(arg.c_str()));
    }
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }

  // Parent: keep the far ends closed and mark ours close-on-exec so sibling
  // workers spawned later do not hold this child's pipes open.
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  ::fcntl(in_pipe[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(out_pipe[0], F_SETFD, FD_CLOEXEC);
  pid_ = pid;
  stdin_fd_ = in_pipe[1];
  stdout_fd_ = out_pipe[0];
  return true;
}

void Subprocess::CloseStdin() { CloseFd(stdin_fd_); }

void Subprocess::Kill(int sig) {
  if (running()) ::kill(pid_, sig);
}

bool Subprocess::Wait(int* exit_code, long timeout_ms) {
  if (!running()) return false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, timeout_ms < 0 ? 0 : WNOHANG);
    if (r == pid_) {
      pid_ = -1;
      if (exit_code != nullptr) {
        if (WIFEXITED(status)) {
          *exit_code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          *exit_code = 128 + WTERMSIG(status);
        } else {
          *exit_code = -1;
        }
      }
      return true;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0) return false;  // ECHILD: nothing to reap.
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void Subprocess::Reap() {
  if (running()) {
    Kill(SIGKILL);
    Wait(nullptr, -1);
  }
  CloseFd(stdin_fd_);
  CloseFd(stdout_fd_);
}

}  // namespace agsc::util
