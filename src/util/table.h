#ifndef AGSC_UTIL_TABLE_H_
#define AGSC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace agsc::util {

/// Aligned console table used by the benchmark harness to print rows in the
/// same layout the paper's tables/figures report.
///
/// Example:
///   Table t({"method", "psi", "lambda"});
///   t.AddRow({"h/i-MADRL", "0.834", "7.872"});
///   std::cout << t.ToString();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` decimal places.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Renders the table with column-aligned cells and a separator rule.
  std::string ToString() const;

  /// Writes `ToString()` to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with fixed precision (default 3), e.g. FormatDouble(7.8725)
/// == "7.873".
std::string FormatDouble(double value, int precision = 3);

}  // namespace agsc::util

#endif  // AGSC_UTIL_TABLE_H_
