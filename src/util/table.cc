#include "util/table.h"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace agsc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << (c == 0 ? "| " : " | ") << cell
          << std::string(widths[c] - cell.size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  out << '|';
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::cout << ToString() << std::flush; }

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace agsc::util
