#include "util/parse.h"

#include <charconv>
#include <cmath>

namespace agsc::util {

namespace {

template <typename T>
bool ParseWithFromChars(const std::string& text, T* out) {
  if (text.empty()) return false;
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseInt(const std::string& text, int* out) {
  return ParseWithFromChars(text, out);
}

bool ParseInt64(const std::string& text, int64_t* out) {
  return ParseWithFromChars(text, out);
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  // from_chars<unsigned> accepts "-1" by wrapping; reject explicitly.
  if (!text.empty() && text[0] == '-') return false;
  return ParseWithFromChars(text, out);
}

bool ParseDouble(const std::string& text, double* out) {
  return ParseWithFromChars(text, out);
}

bool ParseIntInRange(const std::string& text, int lo, int hi, int* out) {
  int value = 0;
  if (!ParseInt(text, &value) || value < lo || value > hi) return false;
  *out = value;
  return true;
}

bool ParseDoubleInRange(const std::string& text, double lo, double hi,
                        double* out) {
  double value = 0.0;
  if (!ParseDouble(text, &value) || std::isnan(value) || value < lo ||
      value > hi) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace agsc::util
