#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/fault_inject.h"
#include "util/logging.h"

namespace agsc::util {

double RetryPolicy::BackoffMs(int attempt) const {
  if (attempt <= 1) return 0.0;
  double backoff = initial_backoff_ms;
  for (int i = 2; i < attempt; ++i) backoff *= backoff_multiplier;
  return std::min(backoff, max_backoff_ms);
}

bool RetryWithBackoff(const RetryPolicy& policy,
                      const std::function<bool()>& attempt,
                      const std::function<void(double)>& sleep_ms,
                      int* attempts_out) {
  const int max_attempts = std::max(1, policy.max_attempts);
  bool ok = false;
  int attempts = 0;
  for (int i = 1; i <= max_attempts && !ok; ++i) {
    if (i > 1) {
      const double backoff = policy.BackoffMs(i);
      if (sleep_ms) {
        sleep_ms(backoff);
      } else if (backoff > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      }
    }
    attempts = i;
    ok = attempt();
  }
  if (attempts_out) *attempts_out = attempts;
  return ok;
}

bool AtomicWriteFileRetry(const std::string& path, const std::string& bytes,
                          const RetryPolicy& policy) {
  int attempt = 0;
  const bool ok = RetryWithBackoff(policy, [&] {
    ++attempt;
    const bool wrote = AtomicWriteFile(path, bytes);
    if (!wrote && attempt < std::max(1, policy.max_attempts)) {
      AGSC_LOG(kWarning) << "write " << path << " failed (attempt " << attempt
                         << "/" << policy.max_attempts << "); backing off "
                         << policy.BackoffMs(attempt + 1) << " ms";
    }
    return wrote;
  });
  if (!ok) {
    AGSC_LOG(kError) << "write " << path << " failed after "
                     << std::max(1, policy.max_attempts)
                     << " attempt(s); giving up";
  }
  return ok;
}

}  // namespace agsc::util
