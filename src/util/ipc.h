#ifndef AGSC_UTIL_IPC_H_
#define AGSC_UTIL_IPC_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace agsc::util {

/// CRC-32 (IEEE reflected polynomial 0xEDB88320) over `n` bytes; chainable
/// via `seed` (pass a previous return value to continue a running checksum).
/// Bit-compatible with nn::Crc32 — the checkpoint format and the IPC frames
/// share one checksum definition.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Length-prefixed, checksummed, sequence-numbered frames over a pipe or a
/// TCP socket — the wire format between the trainer and its agsc_worker
/// processes (local pipes or --connect sockets, see util/net) and between
/// agsc_serve and its framed clients.
///
/// Timeout sentinel (shared by FrameReader::Read, FrameWriter::Write and
/// TcpListener::Accept): negative = unbounded, 0 = probe (only succeed on
/// what is already buffered / immediately possible), positive = deadline
/// in milliseconds.
///
/// Layout (all little-endian, which every supported target is):
///   u32 magic   "AGF1" (0x31464741)
///   u32 type    message type (worker_protocol.h owns the registry)
///   u64 seq     per-direction sequence number, 0-based, gap-free
///   u32 len     payload byte count (bounded by kMaxFramePayload)
///   u32 crc     CRC-32 over [type, seq, len, payload]
///   u8  payload[len]
///
/// Every field that could mislead the reader is covered: a corrupted type,
/// seq or length fails the CRC, a corrupted CRC fails the comparison, and a
/// corrupted magic fails the magic check. A reader therefore never acts on
/// a damaged frame — it reports kCorrupt and the owner escalates (the
/// trainer kills and respawns the worker; the worker exits).
struct Frame {
  uint32_t type = 0;
  uint64_t seq = 0;
  std::string payload;
};

inline constexpr uint32_t kFrameMagic = 0x31464741u;  // "AGF1"
inline constexpr uint32_t kFrameHeaderBytes = 24;
/// Upper bound on a single payload: generous for rollout chunks (a step
/// result is O(num_agents * obs_dim) floats) while keeping a corrupted
/// length field from provoking a multi-GiB allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class IpcStatus {
  kOk,       ///< A whole valid frame was read.
  kEof,      ///< Clean EOF at a frame boundary (peer closed the pipe).
  kTimeout,  ///< Deadline expired before a whole frame arrived.
  kCorrupt,  ///< Bad magic, oversized length, CRC mismatch, or torn frame.
  kError,    ///< read(2)/poll(2) failure.
};

const char* IpcStatusName(IpcStatus status);

/// Serializes frames onto `fd`. Not thread-safe; one writer per stream.
///
/// The constructor switches `fd` to O_NONBLOCK: a bounded write is only
/// honest on a nonblocking fd (a blocking write(2) past the pipe/socket
/// buffer blocks until completion regardless of any prior poll). The
/// paired FrameReader tolerates the shared-fd consequence (EAGAIN) by
/// polling. Socket sends use MSG_NOSIGNAL so a dead peer yields kError
/// (EPIPE), not SIGPIPE; pipe writers rely on net::IgnoreSigpipe().
class FrameWriter {
 public:
  explicit FrameWriter(int fd);

  /// Writes one frame; `seq` is the caller's counter (FrameReader enforces
  /// the gap-free contract on the far side). `timeout_ms` bounds the whole
  /// write with the shared sentinel (negative = block until written, 0 =
  /// only what fits in the kernel buffer right now, positive = deadline):
  /// a peer that stops draining yields kTimeout instead of wedging the
  /// caller. After kTimeout/kError the stream may hold a torn frame — the
  /// owner must escalate (kill/respawn the worker or drop the connection),
  /// never keep writing. `corrupt_payload_byte`, when >= 0, XOR-flips that
  /// payload byte *after* the CRC is computed — the deliberately-damaged-
  /// frame hook for the CORRUPT_FRAME fault campaign. Returns kOk,
  /// kTimeout, or kError (e.g. EPIPE from a dead peer / oversized payload).
  IpcStatus Write(uint32_t type, uint64_t seq, const std::string& payload,
                  long timeout_ms = -1, long corrupt_payload_byte = -1);

 private:
  int fd_;
  bool is_socket_ = false;
  std::string scratch_;
};

/// Deserializes frames from `fd`, enforcing magic/length/CRC and the
/// gap-free sequence contract. Not thread-safe; one reader per pipe.
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  /// Reads exactly one frame. `timeout_ms` follows the shared sentinel:
  /// negative blocks forever, 0 serves only data already buffered (a
  /// zero-cost readiness probe that never waits), positive bounds each of
  /// the header and payload phases. kEof is only reported at a frame
  /// boundary; EOF mid-frame is a torn write and reports kCorrupt. A frame
  /// whose seq is not the next expected value also reports kCorrupt: a
  /// lost or replayed chunk must not be silently accepted. After kTimeout
  /// the stream may sit mid-frame (bytes already consumed are dropped) —
  /// owners escalate exactly as for kCorrupt.
  IpcStatus Read(Frame& out, long timeout_ms);

  uint64_t next_seq() const { return next_seq_; }

 private:
  IpcStatus ReadExact(char* buf, size_t n, long timeout_ms, bool* at_boundary);

  int fd_;
  uint64_t next_seq_ = 0;
};

/// Bounds-checked binary encode/decode helpers for frame payloads. Floats
/// and doubles travel as raw bit patterns (memcpy through u32/u64), so a
/// value decoded on the far side is bit-identical to the one encoded —
/// the foundation of the proc-sampler's bit-exactness contract.
class WireWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void F32Span(const float* data, size_t n) {
    U64(n);
    Raw(data, n * sizeof(float));
  }
  void F32Vec(const std::vector<float>& v) { F32Span(v.data(), v.size()); }
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }
  void I32Vec(const std::vector<int32_t>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(int32_t));
  }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  void Raw(const void* data, size_t n) {
    if (n > 0) bytes_.append(static_cast<const char*>(data), n);
  }
  std::string bytes_;
};

/// Reading past the end or a length prefix larger than the remaining bytes
/// sets ok() to false and yields zeros from then on; callers check ok()
/// once after decoding a whole payload instead of after every field.
class WireReader {
 public:
  explicit WireReader(const std::string& bytes) : bytes_(bytes) {}

  uint32_t U32() { return Scalar<uint32_t>(); }
  uint64_t U64() { return Scalar<uint64_t>(); }
  int32_t I32() { return Scalar<int32_t>(); }
  float F32() { return Scalar<float>(); }
  double F64() { return Scalar<double>(); }
  bool F32Vec(std::vector<float>& out) { return Vec(out); }
  bool F64Vec(std::vector<double>& out) { return Vec(out); }
  bool I32Vec(std::vector<int32_t>& out) { return Vec(out); }
  bool Str(std::string& out) {
    const uint64_t n = U64();
    if (!ok_ || n > bytes_.size() - pos_) return Fail();
    out.assign(bytes_, pos_, n);
    pos_ += n;
    return true;
  }

  /// True iff every read so far stayed in bounds.
  bool ok() const { return ok_; }
  /// True iff ok() and the whole payload was consumed (no trailing bytes —
  /// a length/content mismatch the CRC cannot see).
  bool Done() const { return ok_ && pos_ == bytes_.size(); }

 private:
  template <typename T>
  T Scalar() {
    if (!ok_ || sizeof(T) > bytes_.size() - pos_) {
      Fail();
      return T{};
    }
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  bool Vec(std::vector<T>& out) {
    const uint64_t n = U64();
    if (!ok_ || n > (bytes_.size() - pos_) / sizeof(T)) return Fail();
    out.resize(n);
    if (n > 0) {
      std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return true;
  }
  bool Fail() {
    ok_ = false;
    return false;
  }

  const std::string& bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace agsc::util

#endif  // AGSC_UTIL_IPC_H_
