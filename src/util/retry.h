#ifndef AGSC_UTIL_RETRY_H_
#define AGSC_UTIL_RETRY_H_

#include <functional>
#include <string>

namespace agsc::util {

/// Bounded retry with exponential backoff for transient failures (mostly
/// I/O: checkpoint, stats-CSV and bench-result writes). Deterministic: no
/// jitter, and the sleep is injectable so tests run instantly and can
/// assert the exact backoff sequence.
struct RetryPolicy {
  int max_attempts = 3;            ///< Total attempts (1 = no retry).
  double initial_backoff_ms = 10;  ///< Sleep before the 2nd attempt.
  double backoff_multiplier = 4;   ///< Growth factor per further attempt.
  double max_backoff_ms = 2000;    ///< Backoff ceiling.

  /// Backoff before attempt `attempt` (2-based; attempt 1 never sleeps).
  double BackoffMs(int attempt) const;
};

/// Calls `attempt` up to `policy.max_attempts` times until it returns true,
/// sleeping the policy's backoff between tries. `sleep_ms` overrides the
/// real clock (tests); null uses std::this_thread::sleep_for. Returns the
/// final attempt's result; `attempts_out` (optional) receives how many
/// attempts ran.
bool RetryWithBackoff(const RetryPolicy& policy,
                      const std::function<bool()>& attempt,
                      const std::function<void(double)>& sleep_ms = nullptr,
                      int* attempts_out = nullptr);

/// AtomicWriteFile wrapped in RetryWithBackoff: transient write failures
/// (injected or real) are retried with backoff and logged at kWarning per
/// failed attempt; returns false only after the policy is exhausted.
bool AtomicWriteFileRetry(const std::string& path, const std::string& bytes,
                          const RetryPolicy& policy = RetryPolicy{});

}  // namespace agsc::util

#endif  // AGSC_UTIL_RETRY_H_
