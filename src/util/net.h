#ifndef AGSC_UTIL_NET_H_
#define AGSC_UTIL_NET_H_

#include <functional>
#include <stdexcept>
#include <string>

#include "util/retry.h"

namespace agsc::util {

/// TCP plumbing for the framed transport (util/ipc runs unchanged over
/// these sockets): a listener/acceptor for the trainer and the serving
/// frontend, a nonblocking connect with a deadline for workers/clients,
/// and a reconnect helper driven by the shared RetryPolicy so backoff
/// sequences are test-assertable via the injectable sleep.
///
/// SIGPIPE discipline lives here too: IgnoreSigpipe() is the process-wide
/// install-once suppression (replacing the racy ::signal calls formerly
/// scattered over proc_sampler/agsc_worker), and FrameWriter sends with
/// MSG_NOSIGNAL on sockets so a peer disconnect surfaces as EPIPE ->
/// IpcStatus::kError instead of killing the process.

/// Thrown on network *setup* failures (bind/listen, unparseable address):
/// the caller cannot make progress and the CLI maps it to kExitNetError.
/// Runtime peer failures (disconnect, timeout) are NOT exceptions — they
/// surface as IpcStatus values and feed the respawn/reconnect machinery.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// Installs SIG_IGN for SIGPIPE exactly once per process (thread-safe;
/// later calls are no-ops). Pipes have no MSG_NOSIGNAL equivalent, so a
/// torn pipe write needs this to surface as EPIPE rather than SIGPIPE.
void IgnoreSigpipe();

/// Parses "HOST:PORT" or ":PORT" (host defaults to 127.0.0.1). HOST must
/// be a numeric IPv4 address or "localhost"; PORT is 0..65535 (0 = let the
/// kernel pick, see TcpListener::bound_port). Returns false on anything
/// else without touching `host`/`port`; `error` (optional) then names the
/// offending token and the accepted forms, so exit-12 `net-error` lines
/// say WHAT was wrong with the address, not just that something was.
bool ParseHostPort(const std::string& spec, std::string* host, int* port,
                   std::string* error = nullptr);

/// Sets/clears O_NONBLOCK on `fd`; returns false on fcntl failure.
bool SetNonBlocking(int fd, bool enable);

/// Listening TCP socket (SO_REUSEADDR, CLOEXEC). Movable, not copyable;
/// the destructor closes the socket.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on host:port. Port 0 binds an ephemeral port,
  /// reported by bound_port(). Returns false with `error` filled on
  /// failure (address in use, unparseable host, ...).
  bool Listen(const std::string& host, int port, std::string* error);

  /// Accepts one connection. `timeout_ms` follows the IPC sentinel:
  /// negative blocks forever, 0 probes for an already-pending connection,
  /// positive bounds the wait. Returns the connected fd (CLOEXEC,
  /// TCP_NODELAY) or -1 on timeout / -2 on error. Close() from another
  /// thread unblocks a pending Accept with -2.
  int Accept(long timeout_ms);

  /// Port actually bound (resolves port 0); 0 when not listening.
  int bound_port() const { return bound_port_; }
  bool listening() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();

 private:
  int fd_ = -1;
  int bound_port_ = 0;
};

/// Nonblocking connect with a deadline (sentinel as above; negative waits
/// forever). Returns the connected fd (CLOEXEC, TCP_NODELAY) or -1 with
/// `error` filled (refused, timeout, unparseable host...).
int TcpConnect(const std::string& host, int port, long timeout_ms,
               std::string* error);

/// TcpConnect wrapped in RetryWithBackoff: retries refused/timed-out
/// connects up to policy.max_attempts with the policy's backoff between
/// tries (covers the "worker starts before the trainer listens" race).
/// `sleep_ms` overrides the real clock (tests assert the exact backoff
/// sequence); `attempts_out` receives the attempt count. Returns the
/// connected fd or -1 with `error` holding the last failure.
int TcpConnectWithRetry(const std::string& host, int port, long timeout_ms,
                        const RetryPolicy& policy,
                        const std::function<void(double)>& sleep_ms = nullptr,
                        std::string* error = nullptr,
                        int* attempts_out = nullptr);

}  // namespace agsc::util

#endif  // AGSC_UTIL_NET_H_
