#ifndef AGSC_UTIL_STATS_H_
#define AGSC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace agsc::util {

/// Streaming accumulator of count / mean / variance / min / max using
/// Welford's numerically-stable online algorithm.
class RunningStats {
 public:
  RunningStats() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Folds every element of `xs` into the accumulator.
  void AddAll(const std::vector<double>& xs);

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  /// Mean of the observations; 0 when empty.
  double Mean() const;
  /// Unbiased sample variance; 0 when fewer than two observations.
  double Variance() const;
  /// Sample standard deviation.
  double StdDev() const;
  /// Smallest observation; +inf when empty.
  double Min() const;
  /// Largest observation; -inf when empty.
  double Max() const;
  /// Sum of all observations.
  double Sum() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool has_minmax_ = false;
};

/// Returns the arithmetic mean of `xs`; 0 when empty.
double Mean(const std::vector<double>& xs);

/// Returns the sample standard deviation of `xs`; 0 when size < 2.
double StdDev(const std::vector<double>& xs);

/// Returns the `q`-quantile (0 <= q <= 1) by linear interpolation on a
/// sorted copy of `xs`. Returns 0 when empty.
double Quantile(std::vector<double> xs, double q);

}  // namespace agsc::util

#endif  // AGSC_UTIL_STATS_H_
