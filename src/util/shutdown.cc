#include "util/shutdown.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>

#include "util/exit_codes.h"

namespace agsc::util {

namespace {

std::atomic<int> g_shutdown_signal{0};
std::atomic<int> g_signal_count{0};
std::atomic<bool> g_handler_installed{false};

void ShutdownHandler(int signum) {
  // Async-signal-safe only: atomics, write(2), _exit.
  const int count = g_signal_count.fetch_add(1, std::memory_order_relaxed);
  if (count == 0) {
    g_shutdown_signal.store(signum, std::memory_order_relaxed);
    constexpr char msg[] =
        "\n[WARN] signal received: finishing the current boundary, flushing "
        "a final checkpoint, then exiting (signal again to abort now)\n";
    [[maybe_unused]] ssize_t n = ::write(2, msg, sizeof(msg) - 1);
    return;
  }
  constexpr char msg[] = "\n[WARN] second signal: aborting immediately\n";
  [[maybe_unused]] ssize_t n = ::write(2, msg, sizeof(msg) - 1);
  ::_exit(kExitInterruptedAbort);
}

}  // namespace

void InstallShutdownHandler() {
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction action = {};
  action.sa_handler = ShutdownHandler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a signal should interrupt slow syscalls (sleeps, reads)
  // so the polling loop notices the flag promptly.
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0 ||
         g_signal_count.load(std::memory_order_relaxed) != 0;
}

int ShutdownSignal() {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void RequestShutdown() {
  g_signal_count.fetch_add(1, std::memory_order_relaxed);
  g_shutdown_signal.store(SIGTERM, std::memory_order_relaxed);
}

void ResetShutdownForTest() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
  g_signal_count.store(0, std::memory_order_relaxed);
}

}  // namespace agsc::util
