#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace agsc::util {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (!has_minmax_) {
    min_ = max_ = x;
    has_minmax_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStats::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const {
  return has_minmax_ ? min_ : std::numeric_limits<double>::infinity();
}

double RunningStats::Max() const {
  return has_minmax_ ? max_ : -std::numeric_limits<double>::infinity();
}

double RunningStats::Sum() const {
  return mean_ * static_cast<double>(count_);
}

double Mean(const std::vector<double>& xs) {
  RunningStats s;
  s.AddAll(xs);
  return s.Mean();
}

double StdDev(const std::vector<double>& xs) {
  RunningStats s;
  s.AddAll(xs);
  return s.StdDev();
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace agsc::util
