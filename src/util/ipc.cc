#include "util/ipc.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "util/net.h"

namespace agsc::util {

namespace {

uint32_t Crc32Table(int i) {
  // Computed lazily once; identical to the nn/serialize table.
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t n = 0; n < 256; ++n) {
      uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  return table[static_cast<size_t>(i)];
}

long RemainingMs(const std::chrono::steady_clock::time_point& deadline) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
      .count();
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    c = Crc32Table(static_cast<int>((c ^ p[i]) & 0xFFu)) ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* IpcStatusName(IpcStatus status) {
  switch (status) {
    case IpcStatus::kOk: return "ok";
    case IpcStatus::kEof: return "eof";
    case IpcStatus::kTimeout: return "timeout";
    case IpcStatus::kCorrupt: return "corrupt";
    case IpcStatus::kError: return "error";
  }
  return "unknown";
}

FrameWriter::FrameWriter(int fd) : fd_(fd) {
  int sock_type = 0;
  socklen_t len = sizeof(sock_type);
  is_socket_ =
      ::getsockopt(fd, SOL_SOCKET, SO_TYPE, &sock_type, &len) == 0;
  // Bounded writes require EAGAIN: a *blocking* write(2) of more than the
  // buffer's free space blocks until everything is written, no matter what
  // poll(POLLOUT) said beforehand. The paired FrameReader polls around the
  // shared-fd consequence. If fcntl fails (exotic fd) writes simply block,
  // which is the pre-deadline behavior.
  SetNonBlocking(fd, true);
}

IpcStatus FrameWriter::Write(uint32_t type, uint64_t seq,
                             const std::string& payload, long timeout_ms,
                             long corrupt_payload_byte) {
  if (payload.size() > kMaxFramePayload) return IpcStatus::kError;
  const uint32_t len = static_cast<uint32_t>(payload.size());

  scratch_.clear();
  scratch_.reserve(kFrameHeaderBytes + payload.size());
  const auto put_u32 = [this](uint32_t v) {
    scratch_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put_u64 = [this](uint64_t v) {
    scratch_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(kFrameMagic);
  put_u32(type);
  put_u64(seq);
  put_u32(len);
  // CRC over [type, seq, len, payload]: everything after the magic except
  // the CRC field itself.
  uint32_t crc = Crc32(scratch_.data() + 4, scratch_.size() - 4);
  crc = Crc32(payload.data(), payload.size(), crc);
  put_u32(crc);
  scratch_.append(payload);

  if (corrupt_payload_byte >= 0 &&
      static_cast<size_t>(corrupt_payload_byte) < payload.size()) {
    scratch_[kFrameHeaderBytes + static_cast<size_t>(corrupt_payload_byte)] ^=
        static_cast<char>(0xFF);
  }

  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  size_t written = 0;
  while (written < scratch_.size()) {
    const char* p = scratch_.data() + written;
    const size_t left = scratch_.size() - written;
    // MSG_NOSIGNAL only exists for sockets; pipes rely on IgnoreSigpipe().
    const ssize_t n =
        is_socket_ ? ::send(fd_, p, left, MSG_NOSIGNAL) : ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Buffer full: wait for drain within the deadline. An expired
        // deadline still gets one zero-timeout probe, mirroring the read
        // side: only actual waiting is refused.
        const long remaining =
            bounded ? std::max(0L, RemainingMs(deadline)) : -1L;
        struct pollfd pfd{fd_, POLLOUT, 0};
        const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
        if (pr < 0) {
          if (errno == EINTR) continue;
          return IpcStatus::kError;
        }
        if (pr == 0) return IpcStatus::kTimeout;
        continue;
      }
      return IpcStatus::kError;
    }
    written += static_cast<size_t>(n);
  }
  return IpcStatus::kOk;
}

IpcStatus FrameReader::ReadExact(char* buf, size_t n, long timeout_ms,
                                 bool* at_boundary) {
  // Sentinel: negative = unbounded, 0 = buffered-data-only probe,
  // positive = deadline. (0 used to mean unbounded — an ambiguous sentinel
  // that turned a computed remaining-time of 0 into an infinite block.)
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  size_t got = 0;
  while (got < n) {
    // Poll unconditionally — the fd may be nonblocking (a FrameWriter on
    // the same socket switches it), so even the unbounded path must wait
    // for readiness instead of spinning on EAGAIN. An expired deadline
    // still gets one zero-timeout readiness probe: data that is already
    // buffered is served, only actual waiting is refused. Without this a
    // tight deadline (1 ms truncates to 0 on the steady-clock round trip)
    // would misreport a ready frame as timeout.
    const long remaining = bounded ? std::max(0L, RemainingMs(deadline)) : -1L;
    struct pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return IpcStatus::kError;
    }
    if (pr == 0) return IpcStatus::kTimeout;
    const ssize_t r = ::read(fd_, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      // Readiness can be spurious (another reader raced us, or the kernel
      // woke us for an event that drained); go back to poll.
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IpcStatus::kError;
    }
    if (r == 0) {
      // EOF: clean only if nothing of this read unit has arrived yet and
      // the caller says we sit at a frame boundary.
      return (got == 0 && at_boundary != nullptr && *at_boundary)
                 ? IpcStatus::kEof
                 : IpcStatus::kCorrupt;
    }
    got += static_cast<size_t>(r);
    if (at_boundary != nullptr) *at_boundary = false;
  }
  return IpcStatus::kOk;
}

IpcStatus FrameReader::Read(Frame& out, long timeout_ms) {
  char header[kFrameHeaderBytes];
  bool at_boundary = true;
  IpcStatus status =
      ReadExact(header, sizeof(header), timeout_ms, &at_boundary);
  if (status != IpcStatus::kOk) return status;

  uint32_t magic = 0, type = 0, len = 0, crc = 0;
  uint64_t seq = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&seq, header + 8, 8);
  std::memcpy(&len, header + 16, 4);
  std::memcpy(&crc, header + 20, 4);
  if (magic != kFrameMagic) return IpcStatus::kCorrupt;
  if (len > kMaxFramePayload) return IpcStatus::kCorrupt;

  out.payload.resize(len);
  if (len > 0) {
    status = ReadExact(out.payload.data(), len, timeout_ms, nullptr);
    if (status == IpcStatus::kEof) return IpcStatus::kCorrupt;
    if (status != IpcStatus::kOk) return status;
  }

  uint32_t want = Crc32(header + 4, 16);
  want = Crc32(out.payload.data(), out.payload.size(), want);
  if (want != crc) return IpcStatus::kCorrupt;
  if (seq != next_seq_) return IpcStatus::kCorrupt;
  ++next_seq_;

  out.type = type;
  out.seq = seq;
  return status;
}

}  // namespace agsc::util
