#ifndef AGSC_UTIL_BUILD_INFO_H_
#define AGSC_UTIL_BUILD_INFO_H_

#include <string>

namespace agsc::util {

/// One-line build provenance for reproducible bug reports: compiler and
/// version, CMake build type, sanitizer flags, and the C++ standard. The
/// CLIs print it for --version/--build-info and stamp it into the stats-CSV
/// header; `extra` appends run-time facts the compile step cannot know
/// (e.g. the GEMM ISA selected by dispatch on the running CPU).
///
/// Format: "compiler=<...> build=<...> sanitize=<...> std=<...>[ <extra>]".
std::string BuildInfoString(const std::string& extra = "");

}  // namespace agsc::util

#endif  // AGSC_UTIL_BUILD_INFO_H_
