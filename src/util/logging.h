#ifndef AGSC_UTIL_LOGGING_H_
#define AGSC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace agsc::util {

/// Log severities, ordered by verbosity.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted (default kInfo). Messages below
/// the threshold are dropped. Also settable via the AGSC_LOG_LEVEL
/// environment variable ("debug"|"info"|"warning"|"error") at first use.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

/// Emits `message` at `level` to stderr as "[LEVEL] message\n".
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style helper behind the AGSC_LOG macro; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace agsc::util

/// Usage: AGSC_LOG(kInfo) << "trained " << n << " iterations";
#define AGSC_LOG(severity) \
  ::agsc::util::internal::LogStream(::agsc::util::LogLevel::severity)

/// Fatal-on-false runtime check (active in all build types).
#define AGSC_CHECK(condition)                                              \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::agsc::util::LogMessage(::agsc::util::LogLevel::kError,             \
                               std::string("CHECK failed: ") + #condition + \
                                   " at " + __FILE__ + ":" +               \
                                   std::to_string(__LINE__));              \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#endif  // AGSC_UTIL_LOGGING_H_
