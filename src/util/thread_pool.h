#ifndef AGSC_UTIL_THREAD_POOL_H_
#define AGSC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace agsc::util {

/// Structured error thrown when a ParallelFor deadline expires: identifies
/// the first unfinished task, whether it ever started, and how long it has
/// been running. Callers at higher layers (VecSampler, the trainer, the
/// CLI) re-wrap it with domain context (worker id, env step) and map it to
/// the watchdog-timeout exit code.
class WatchdogTimeoutError : public std::runtime_error {
 public:
  WatchdogTimeoutError(const std::string& what, int task_index,
                       bool task_started, long elapsed_ms, long deadline_ms)
      : std::runtime_error(what),
        task_index_(task_index),
        task_started_(task_started),
        elapsed_ms_(elapsed_ms),
        deadline_ms_(deadline_ms) {}

  /// Index (0-based) of the first task that missed the deadline.
  int task_index() const { return task_index_; }
  /// False if the task was still queued (never heartbeat) at expiry.
  bool task_started() const { return task_started_; }
  /// Milliseconds since the task's start heartbeat (0 if never started).
  long elapsed_ms() const { return elapsed_ms_; }
  long deadline_ms() const { return deadline_ms_; }

 private:
  int task_index_;
  bool task_started_;
  long elapsed_ms_;
  long deadline_ms_;
};

/// A small fixed-size thread pool for deterministic fork/join parallelism.
///
/// Tasks are plain `void()` callables; Submit returns a future that either
/// becomes ready when the task finishes or carries the exception the task
/// threw. The pool itself imposes no ordering beyond FIFO dispatch — callers
/// that need deterministic *results* must hand each task its own private
/// state (the VecSampler gives every rollout worker its own environment,
/// RNG stream, and output buffer, so the merged result is independent of
/// which thread ran what when).
///
/// With `num_threads == 0` the pool degrades to inline execution: Submit
/// runs the task on the calling thread. This keeps single-worker code paths
/// free of thread handoff overhead and makes the pool safe to use
/// unconditionally.
class ThreadPool {
 public:
  /// Spawns `num_threads` worker threads (0 = inline execution).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; the future becomes ready on completion and rethrows
  /// any exception the task threw when `.get()` is called.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(0), fn(1), ..., fn(n-1) across the pool and blocks until all
  /// complete. If any invocation throws, the exception from the *lowest*
  /// index is rethrown (a deterministic choice) after every task finished.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// ParallelFor with a per-batch watchdog: every task records a start
  /// heartbeat, and a deadline monitor on the calling thread waits at most
  /// `deadline_ms` (0 = forever, i.e. the plain overload) for the whole
  /// batch. On expiry it throws WatchdogTimeoutError naming the first
  /// unfinished task instead of blocking forever on a hung worker.
  ///
  /// Safety contract on timeout: the hung task may still be running. `fn`
  /// is copied into shared storage that outlives the throw, so the caller's
  /// callable must only touch state that also outlives the call (heap state
  /// held by shared_ptr, or members of a long-lived object) — never stack
  /// locals of the calling frame. A watchdog timeout is a fail-fast event:
  /// the expected reaction is to flush what is safe and exit the process,
  /// not to reuse the pool.
  void ParallelFor(int n, const std::function<void(int)>& fn,
                   long deadline_ms);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace agsc::util

#endif  // AGSC_UTIL_THREAD_POOL_H_
