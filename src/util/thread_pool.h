#ifndef AGSC_UTIL_THREAD_POOL_H_
#define AGSC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace agsc::util {

/// A small fixed-size thread pool for deterministic fork/join parallelism.
///
/// Tasks are plain `void()` callables; Submit returns a future that either
/// becomes ready when the task finishes or carries the exception the task
/// threw. The pool itself imposes no ordering beyond FIFO dispatch — callers
/// that need deterministic *results* must hand each task its own private
/// state (the VecSampler gives every rollout worker its own environment,
/// RNG stream, and output buffer, so the merged result is independent of
/// which thread ran what when).
///
/// With `num_threads == 0` the pool degrades to inline execution: Submit
/// runs the task on the calling thread. This keeps single-worker code paths
/// free of thread handoff overhead and makes the pool safe to use
/// unconditionally.
class ThreadPool {
 public:
  /// Spawns `num_threads` worker threads (0 = inline execution).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; the future becomes ready on completion and rethrows
  /// any exception the task threw when `.get()` is called.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(0), fn(1), ..., fn(n-1) across the pool and blocks until all
  /// complete. If any invocation throws, the exception from the *lowest*
  /// index is rethrown (a deterministic choice) after every task finished.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace agsc::util

#endif  // AGSC_UTIL_THREAD_POOL_H_
