#ifndef AGSC_ALGORITHMS_GREEDY_POLICY_H_
#define AGSC_ALGORITHMS_GREEDY_POLICY_H_

#include "core/evaluator.h"

namespace agsc::algorithms {

/// Myopic baseline (not in the paper's comparison set; used by tests and as
/// a sanity reference): every UV drives at full speed straight toward the
/// nearest PoI that still holds data.
class GreedyPolicy : public core::Policy {
 public:
  GreedyPolicy() = default;

  env::UvAction Act(const env::ScEnv& env, int k,
                    const std::vector<float>& obs, util::Rng& rng,
                    bool deterministic) override;
};

/// Maps a desired world-space heading `angle` (radians) and a speed
/// fraction in [0,1] to the raw [-1,1]^2 action convention of ScEnv.
env::UvAction HeadingToAction(double angle, double speed_fraction);

}  // namespace agsc::algorithms

#endif  // AGSC_ALGORITHMS_GREEDY_POLICY_H_
