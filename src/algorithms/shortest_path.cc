#include "algorithms/shortest_path.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "algorithms/greedy_policy.h"

namespace agsc::algorithms {

namespace {

double TourLength(const std::vector<int>& order,
                  const std::function<double(int, int)>& dist,
                  const std::function<double(int)>& dist_from_start) {
  if (order.empty()) return 0.0;
  double total = dist_from_start(order[0]);
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    total += dist(order[i], order[i + 1]);
  }
  return total;
}

/// Order crossover (OX1): copies a slice of parent a and fills the rest in
/// parent b's order.
std::vector<int> OrderCrossover(const std::vector<int>& a,
                                const std::vector<int>& b, util::Rng& rng) {
  const size_t n = a.size();
  if (n < 3) return a;
  size_t lo = rng.UniformInt(static_cast<uint64_t>(n));
  size_t hi = rng.UniformInt(static_cast<uint64_t>(n));
  if (lo > hi) std::swap(lo, hi);
  std::vector<int> child(n, -1);
  std::vector<bool> used(n, false);
  // Map values to positions in `a`'s index space: values are PoI ids, so
  // track usage by value via a lookup over the slice.
  for (size_t i = lo; i <= hi; ++i) child[i] = a[i];
  auto contains = [&](int value) {
    for (size_t i = lo; i <= hi; ++i) {
      if (child[i] == value) return true;
    }
    return false;
  };
  size_t fill = (hi + 1) % n;
  for (size_t step = 0; step < n; ++step) {
    const int candidate = b[(hi + 1 + step) % n];
    if (contains(candidate)) continue;
    while (child[fill] != -1) fill = (fill + 1) % n;
    child[fill] = candidate;
  }
  return child;
}

}  // namespace

std::vector<int> GaTour(const std::vector<int>& points,
                        const std::function<double(int, int)>& dist,
                        const std::function<double(int)>& dist_from_start,
                        const GaConfig& config, util::Rng& rng) {
  if (points.size() <= 2) return points;
  std::vector<std::vector<int>> population(config.population, points);
  for (auto& genome : population) rng.Shuffle(genome);
  std::vector<double> fitness(config.population);
  auto evaluate = [&](const std::vector<int>& genome) {
    return TourLength(genome, dist, dist_from_start);
  };
  for (int p = 0; p < config.population; ++p) {
    fitness[p] = evaluate(population[p]);
  }
  auto tournament_pick = [&]() {
    int best = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(config.population)));
    for (int t = 1; t < config.tournament; ++t) {
      const int cand = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(config.population)));
      if (fitness[cand] < fitness[best]) best = cand;
    }
    return best;
  };
  for (int gen = 0; gen < config.generations; ++gen) {
    std::vector<std::vector<int>> next;
    std::vector<double> next_fitness;
    // Elitism: keep the best genome.
    const int best = static_cast<int>(
        std::min_element(fitness.begin(), fitness.end()) - fitness.begin());
    next.push_back(population[best]);
    next_fitness.push_back(fitness[best]);
    while (static_cast<int>(next.size()) < config.population) {
      std::vector<int> child = population[tournament_pick()];
      if (rng.Bernoulli(config.crossover_prob)) {
        child = OrderCrossover(child, population[tournament_pick()], rng);
      }
      if (rng.Bernoulli(config.mutation_prob) && child.size() >= 2) {
        const size_t i =
            rng.UniformInt(static_cast<uint64_t>(child.size()));
        const size_t j =
            rng.UniformInt(static_cast<uint64_t>(child.size()));
        std::swap(child[i], child[j]);
      }
      next_fitness.push_back(evaluate(child));
      next.push_back(std::move(child));
    }
    population = std::move(next);
    fitness = std::move(next_fitness);
  }
  const int best = static_cast<int>(
      std::min_element(fitness.begin(), fitness.end()) - fitness.begin());
  return population[best];
}

ShortestPathPolicy::ShortestPathPolicy(const GaConfig& config)
    : config_(config) {}

void ShortestPathPolicy::BeginEpisode(const env::ScEnv& env) {
  const int num_agents = env.num_agents();
  const int num_pois = env.config().num_pois;
  tours_.assign(num_agents, {});
  progress_.assign(num_agents, 0);
  util::Rng rng(config_.seed);

  // Partition PoIs over UVs by angular sector around the spawn point, so
  // each UV owns a contiguous wedge of the task area.
  const map::Point2 spawn = env.dataset().campus.spawn;
  std::vector<std::pair<double, int>> by_angle;
  for (int i = 0; i < num_pois; ++i) {
    const map::Point2 d = env.dataset().pois[i] - spawn;
    by_angle.emplace_back(std::atan2(d.y, d.x), i);
  }
  std::sort(by_angle.begin(), by_angle.end());
  std::vector<std::vector<int>> partitions(num_agents);
  for (size_t rank = 0; rank < by_angle.size(); ++rank) {
    const int owner = static_cast<int>(rank * num_agents / by_angle.size());
    partitions[owner].push_back(by_angle[rank].second);
  }

  const map::RoadGraph& roads = env.dataset().campus.roads;
  for (int k = 0; k < num_agents; ++k) {
    const bool is_uav = env.IsUav(k);
    // UGV tour costs respect the roadmap (paper: "shortest paths of UGVs
    // are under the restriction of roadmap").
    std::vector<map::RoadPosition> road_pois;
    if (!is_uav) {
      road_pois.resize(num_pois);
      for (int i : partitions[k]) {
        road_pois[i] = roads.Project(env.dataset().pois[i]);
      }
    }
    auto dist = [&](int a, int b) {
      if (is_uav) {
        return map::Distance(env.dataset().pois[a], env.dataset().pois[b]);
      }
      return roads.PathDistance(road_pois[a], road_pois[b]);
    };
    const map::RoadPosition spawn_road = roads.Project(spawn);
    auto dist_from_start = [&](int a) {
      if (is_uav) return map::Distance(spawn, env.dataset().pois[a]);
      return roads.PathDistance(spawn_road, road_pois[a]);
    };
    tours_[k] = GaTour(partitions[k], dist, dist_from_start, config_, rng);
  }
}

env::UvAction ShortestPathPolicy::Act(const env::ScEnv& env, int k,
                                      const std::vector<float>& obs,
                                      util::Rng& rng, bool deterministic) {
  (void)obs;
  (void)rng;
  (void)deterministic;
  const map::Point2 pos = env.uv(k).pos;
  // Advance past drained or reached targets.
  std::vector<int>& tour = tours_[k];
  size_t& next = progress_[k];
  const double arrive_radius = 25.0;
  while (next < tour.size() &&
         (env.PoiRemainingGbit(tour[next]) <= 0.0 ||
          map::Distance(pos, env.dataset().pois[tour[next]]) <
              arrive_radius)) {
    // Dwell on a reached PoI until it is drained; skip drained ones.
    if (env.PoiRemainingGbit(tour[next]) <= 0.0) {
      ++next;
      continue;
    }
    return {0.0, -1.0};  // Hover/park and collect.
  }
  if (next >= tour.size()) return {0.0, -1.0};  // Tour finished.
  const map::Point2 delta = env.dataset().pois[tour[next]] - pos;
  const double vmax =
      env.IsUav(k) ? env.config().uav_vmax : env.config().ugv_vmax;
  const double reach = vmax * env.config().tau_move;
  const double speed_fraction =
      std::min(1.0, map::Norm(delta) / std::max(reach, 1e-9));
  return HeadingToAction(std::atan2(delta.y, delta.x), speed_fraction);
}

}  // namespace agsc::algorithms
