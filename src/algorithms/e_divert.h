#ifndef AGSC_ALGORITHMS_E_DIVERT_H_
#define AGSC_ALGORITHMS_E_DIVERT_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/evaluator.h"
#include "core/policy.h"
#include "nn/gru.h"
#include "nn/optimizer.h"

namespace agsc::algorithms {

/// Configuration of the e-Divert baseline.
struct EDivertConfig {
  int iterations = 100;
  int episodes_per_iteration = 4;
  int updates_per_iteration = 64;   ///< Minibatch updates per iteration.
  int minibatch = 64;
  int replay_capacity = 20000;
  float gamma = 0.95f;
  float actor_lr = 3e-4f;
  float critic_lr = 1e-3f;
  float tau = 0.01f;                ///< Soft target update rate.
  float priority_alpha = 0.6f;      ///< Prioritized-replay exponent.
  float explore_noise = 0.25f;      ///< Gaussian action noise (initial).
  float explore_noise_final = 0.05f;
  int hidden = 64;
  int gru_hidden = 64;  ///< Recurrent hidden width (GRU H / LSTM H).
  /// true = LSTM recurrent actor (as in the e-Divert paper); false = GRU
  /// (same sequential modeling, ~25% fewer parameters).
  bool use_lstm = true;
  uint64_t seed = 3;
  bool verbose = false;
  /// Polled at episode-timeslot and iteration boundaries; when it returns
  /// true the trainer throws util::InterruptedError. Defaults to the
  /// process-wide util::ShutdownRequested flag when unset.
  std::function<bool()> stop_check;
};

/// The paper's "e-Divert" baseline (Liu et al., TMC'20): a CTDE
/// deterministic-policy-gradient method with a distributed *prioritized
/// experience replay* and a *recurrent* (sequence-modeling) actor.
///
/// Implementation notes (faithful in structure, simplified in scale):
///  * per-agent recurrent actor: obs -> Linear -> LSTM (or GRU) -> tanh
///    head, stepped one timeslot at a time;
///  * per-agent centralized critic Q_k(state, joint action), MADDPG-style;
///  * replay transitions store the actor's recurrent state at sampling time
///    so one-step updates preserve the sequence context;
///  * proportional prioritized sampling on |TD error|^alpha;
///  * target networks with Polyak averaging.
class EDivertTrainer : public core::Policy {
 public:
  EDivertTrainer(env::ScEnv& env, const EDivertConfig& config);
  ~EDivertTrainer() override;

  /// One iteration: collect episodes with exploration noise, then run
  /// `updates_per_iteration` prioritized minibatch updates.
  /// Returns the mean rollout efficiency.
  double TrainIteration();

  /// Runs `config.iterations` iterations (or `iterations` if >= 0).
  void Train(int iterations = -1);

  // Policy interface (stateful: BeginEpisode resets recurrent states).
  void BeginEpisode(const env::ScEnv& env) override;
  env::UvAction Act(const env::ScEnv& env, int k,
                    const std::vector<float>& obs, util::Rng& rng,
                    bool deterministic) override;

  /// Total scalar parameter count across actors and critics.
  int TotalParameterCount() const;

  /// Inference-only (actor) parameter bytes.
  int ActorParameterBytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace agsc::algorithms

#endif  // AGSC_ALGORITHMS_E_DIVERT_H_
