#ifndef AGSC_ALGORITHMS_RANDOM_POLICY_H_
#define AGSC_ALGORITHMS_RANDOM_POLICY_H_

#include "core/evaluator.h"

namespace agsc::algorithms {

/// The paper's "Random" baseline: each UV's action is sampled uniformly
/// from its action space every timeslot.
class RandomPolicy : public core::Policy {
 public:
  RandomPolicy() = default;

  env::UvAction Act(const env::ScEnv& env, int k,
                    const std::vector<float>& obs, util::Rng& rng,
                    bool deterministic) override;
};

}  // namespace agsc::algorithms

#endif  // AGSC_ALGORITHMS_RANDOM_POLICY_H_
