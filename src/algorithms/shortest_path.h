#ifndef AGSC_ALGORITHMS_SHORTEST_PATH_H_
#define AGSC_ALGORITHMS_SHORTEST_PATH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/evaluator.h"

namespace agsc::algorithms {

/// Genetic-algorithm settings for the Shortest-Path baseline.
struct GaConfig {
  int population = 40;
  int generations = 120;
  double crossover_prob = 0.9;
  double mutation_prob = 0.25;
  int tournament = 3;
  uint64_t seed = 17;
};

/// The paper's "Shortest Path" baseline: each UV visits a sequence of PoIs
/// along the shortest tour found by a genetic algorithm (order crossover +
/// swap mutation); UGV tour lengths respect the roadmap (shortest-path
/// distances on the road graph).
///
/// PoIs are first partitioned among UVs by nearest-assignment over angular
/// sectors around the spawn point, then each UV's visiting order is
/// optimized independently.
class ShortestPathPolicy : public core::Policy {
 public:
  explicit ShortestPathPolicy(const GaConfig& config = GaConfig());

  void BeginEpisode(const env::ScEnv& env) override;

  env::UvAction Act(const env::ScEnv& env, int k,
                    const std::vector<float>& obs, util::Rng& rng,
                    bool deterministic) override;

  /// The tour (PoI indices, visit order) planned for agent `k`.
  const std::vector<int>& TourOf(int k) const { return tours_[k]; }

 private:
  GaConfig config_;
  std::vector<std::vector<int>> tours_;   // Per-agent PoI visit order.
  std::vector<size_t> progress_;          // Next tour index per agent.
};

/// Optimizes a visiting order over `points` starting from `start` using a
/// genetic algorithm with the given pairwise `dist` callback. Exposed for
/// testing. Returns the best order (indices into `points`).
std::vector<int> GaTour(
    const std::vector<int>& points,
    const std::function<double(int, int)>& dist,
    const std::function<double(int)>& dist_from_start,
    const GaConfig& config, util::Rng& rng);

}  // namespace agsc::algorithms

#endif  // AGSC_ALGORITHMS_SHORTEST_PATH_H_
