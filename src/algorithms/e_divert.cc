#include "algorithms/e_divert.h"

#include <algorithm>
#include <cmath>

#include "core/rollout.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "util/logging.h"
#include "util/shutdown.h"

namespace agsc::algorithms {

namespace {

/// Recurrent deterministic actor: obs -> Linear/ReLU -> LSTM or GRU ->
/// tanh head. The recurrent state is packed (GRU: N x H, LSTM: N x 2H) so
/// the replay buffer handles both uniformly.
class RecurrentActor : public nn::Module {
 public:
  RecurrentActor(int obs_dim, int hidden, int rnn_hidden, int action_dim,
                 bool use_lstm, util::Rng& rng)
      : embed_(obs_dim, hidden, rng, std::sqrt(2.0f)),
        head_(rnn_hidden, action_dim, rng, 0.01f) {
    if (use_lstm) {
      lstm_ = std::make_unique<nn::LstmCell>(hidden, rnn_hidden, rng);
    } else {
      gru_ = std::make_unique<nn::GruCell>(hidden, rnn_hidden, rng);
    }
  }

  /// Returns {action in [-1,1]^A, next packed state} as graph variables.
  std::pair<nn::Variable, nn::Variable> Forward(
      const nn::Variable& obs, const nn::Variable& state) const {
    nn::Variable x = nn::Relu(embed_.Forward(obs));
    if (lstm_) {
      nn::Variable next = lstm_->Step(x, state);
      return {nn::Tanh(head_.Forward(lstm_->Output(next))), next};
    }
    nn::Variable next = gru_->Step(x, state);
    return {nn::Tanh(head_.Forward(next)), next};
  }

  nn::Tensor InitialState(int n) const {
    return lstm_ ? lstm_->InitialState(n) : gru_->InitialState(n);
  }

  int state_size() const {
    return lstm_ ? lstm_->state_size() : gru_->hidden_size();
  }

  std::vector<nn::Variable> Parameters() const override {
    std::vector<nn::Variable> params = embed_.Parameters();
    const std::vector<nn::Variable> rnn_params =
        lstm_ ? lstm_->Parameters() : gru_->Parameters();
    params.insert(params.end(), rnn_params.begin(), rnn_params.end());
    for (nn::Variable& p : head_.Parameters()) params.push_back(std::move(p));
    return params;
  }

 private:
  nn::Linear embed_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::GruCell> gru_;
  nn::Linear head_;
};

void SoftUpdate(const std::vector<nn::Variable>& src,
                std::vector<nn::Variable>& dst, float tau) {
  for (size_t i = 0; i < src.size(); ++i) {
    nn::Tensor& d = dst[i].mutable_value();
    const nn::Tensor& s = src[i].value();
    for (int j = 0; j < d.size(); ++j) {
      d[j] = tau * s[j] + (1.0f - tau) * d[j];
    }
  }
}

struct Transition {
  std::vector<std::vector<float>> obs;       // Per agent.
  std::vector<std::vector<float>> next_obs;  // Per agent.
  std::vector<std::vector<float>> hidden;    // Actor GRU state pre-step.
  std::vector<std::vector<float>> next_hidden;
  std::vector<float> state;
  std::vector<float> next_state;
  std::vector<std::array<float, 2>> actions;
  std::vector<float> rewards;
  bool done = false;
  float priority = 1.0f;
};

nn::Tensor RowsToTensor(const std::vector<const std::vector<float>*>& rows) {
  nn::Tensor t(static_cast<int>(rows.size()),
               static_cast<int>(rows[0]->size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r]->size(); ++c) {
      t(static_cast<int>(r), static_cast<int>(c)) = (*rows[r])[c];
    }
  }
  return t;
}

}  // namespace

struct EDivertTrainer::Impl {
  env::ScEnv& env;
  EDivertConfig config;
  util::Rng rng;
  int num_agents;
  int obs_dim;
  int state_dim;

  std::vector<std::unique_ptr<RecurrentActor>> actors;
  std::vector<std::unique_ptr<RecurrentActor>> actor_targets;
  std::vector<std::unique_ptr<nn::Mlp>> critics;        // Q_k(s, a_joint).
  std::vector<std::unique_ptr<nn::Mlp>> critic_targets;
  std::vector<std::unique_ptr<nn::Adam>> actor_opts;
  std::vector<std::unique_ptr<nn::Adam>> critic_opts;

  std::vector<Transition> replay;
  size_t replay_next = 0;  // Ring-buffer cursor.

  // Evaluation-time recurrent state.
  std::vector<nn::Tensor> eval_hidden;

  int iteration = 0;

  Impl(env::ScEnv& e, const EDivertConfig& c)
      : env(e),
        config(c),
        rng(c.seed),
        num_agents(e.num_agents()),
        obs_dim(e.obs_dim()),
        state_dim(e.state_dim()) {
    const int joint_action = num_agents * env::ScEnv::kActionDim;
    for (int k = 0; k < num_agents; ++k) {
      actors.push_back(std::make_unique<RecurrentActor>(
          obs_dim, config.hidden, config.gru_hidden, env::ScEnv::kActionDim,
          config.use_lstm, rng));
      actor_targets.push_back(std::make_unique<RecurrentActor>(
          obs_dim, config.hidden, config.gru_hidden, env::ScEnv::kActionDim,
          config.use_lstm, rng));
      auto src = actors[k]->Parameters();
      auto dst = actor_targets[k]->Parameters();
      nn::CopyParameters(src, dst);
      critics.push_back(std::make_unique<nn::Mlp>(
          std::vector<int>{state_dim + joint_action, config.hidden,
                           config.hidden, 1},
          rng, nn::Activation::kRelu, nn::Activation::kNone));
      critic_targets.push_back(std::make_unique<nn::Mlp>(
          std::vector<int>{state_dim + joint_action, config.hidden,
                           config.hidden, 1},
          rng, nn::Activation::kRelu, nn::Activation::kNone));
      auto csrc = critics[k]->Parameters();
      auto cdst = critic_targets[k]->Parameters();
      nn::CopyParameters(csrc, cdst);
      actor_opts.push_back(
          std::make_unique<nn::Adam>(actors[k]->Parameters(),
                                     config.actor_lr));
      critic_opts.push_back(
          std::make_unique<nn::Adam>(critics[k]->Parameters(),
                                     config.critic_lr));
    }
    eval_hidden.assign(num_agents, actors[0]->InitialState(1));
  }

  bool StopRequested() const {
    return config.stop_check ? config.stop_check()
                             : util::ShutdownRequested();
  }

  float CurrentNoise() const {
    if (config.iterations <= 1) return config.explore_noise;
    const float progress =
        std::min(1.0f, static_cast<float>(iteration) /
                           static_cast<float>(config.iterations - 1));
    return config.explore_noise +
           (config.explore_noise_final - config.explore_noise) * progress;
  }

  void StoreTransition(Transition t) {
    // New transitions get the current max priority so they are replayed.
    float max_priority = 1.0f;
    for (const Transition& existing : replay) {
      max_priority = std::max(max_priority, existing.priority);
    }
    t.priority = max_priority;
    if (static_cast<int>(replay.size()) <
        config.replay_capacity) {
      replay.push_back(std::move(t));
    } else {
      replay[replay_next] = std::move(t);
      replay_next = (replay_next + 1) % replay.size();
    }
  }

  std::vector<int> SamplePrioritized(int count) {
    std::vector<double> cumulative(replay.size());
    double total = 0.0;
    for (size_t i = 0; i < replay.size(); ++i) {
      total += std::pow(static_cast<double>(replay[i].priority),
                        config.priority_alpha);
      cumulative[i] = total;
    }
    std::vector<int> picks(count);
    for (int s = 0; s < count; ++s) {
      const double target = rng.Uniform() * total;
      picks[s] = static_cast<int>(
          std::lower_bound(cumulative.begin(), cumulative.end(), target) -
          cumulative.begin());
      picks[s] = std::min<int>(picks[s],
                               static_cast<int>(replay.size()) - 1);
    }
    return picks;
  }

  double CollectEpisodes() {
    std::vector<env::Metrics> metrics;
    const float noise = CurrentNoise();
    // Double-buffered StepResults: the out-param Step writes into nxt
    // (reusing its storage), then the buffers swap.
    env::StepResult cur, nxt;
    for (int e = 0; e < config.episodes_per_iteration; ++e) {
      env.Reset(cur);
      std::vector<nn::Tensor> hidden(num_agents,
                                     actors[0]->InitialState(1));
      while (!cur.done) {
        // Cooperative stop at timeslot granularity: the baseline's rollouts
        // must not hold a SIGINT hostage any more than the main trainer's.
        if (StopRequested()) {
          throw util::InterruptedError(
              "e-Divert collection interrupted at episode " +
              std::to_string(e));
        }
        Transition t;
        t.obs = cur.observations;
        t.state = cur.state;
        std::vector<env::UvAction> actions(num_agents);
        std::vector<nn::Tensor> next_hidden(num_agents);
        for (int k = 0; k < num_agents; ++k) {
          t.hidden.push_back(hidden[k].ToVector());
          nn::Tensor obs_row(1, obs_dim);
          for (int c = 0; c < obs_dim; ++c) {
            obs_row[c] = cur.observations[k][c];
          }
          auto [action, h_next] =
              actors[k]->Forward(nn::Variable::Constant(obs_row),
                                 nn::Variable::Constant(hidden[k]));
          next_hidden[k] = h_next.value();
          std::array<float, 2> a{};
          for (int c = 0; c < 2; ++c) {
            a[c] = std::clamp(
                action.value()(0, c) +
                    noise * static_cast<float>(rng.Gaussian()),
                -1.0f, 1.0f);
          }
          t.actions.push_back(a);
          actions[k] = {a[0], a[1]};
        }
        env.Step(actions, nxt);
        t.next_obs = nxt.observations;
        t.next_state = nxt.state;
        for (int k = 0; k < num_agents; ++k) {
          t.rewards.push_back(static_cast<float>(nxt.rewards[k]));
          t.next_hidden.push_back(next_hidden[k].ToVector());
        }
        t.done = nxt.done;
        StoreTransition(std::move(t));
        hidden = std::move(next_hidden);
        std::swap(cur, nxt);
      }
      metrics.push_back(env.EpisodeMetrics());
    }
    return env::Metrics::Average(metrics).efficiency;
  }

  void Update() {
    if (replay.size() < static_cast<size_t>(config.minibatch)) return;
    const std::vector<int> batch = SamplePrioritized(config.minibatch);
    const int n = static_cast<int>(batch.size());

    // Shared per-batch tensors.
    std::vector<const std::vector<float>*> state_rows, next_state_rows;
    for (int idx : batch) {
      state_rows.push_back(&replay[idx].state);
      next_state_rows.push_back(&replay[idx].next_state);
    }
    const nn::Tensor states = RowsToTensor(state_rows);
    const nn::Tensor next_states = RowsToTensor(next_state_rows);

    // Joint current actions and target next actions.
    nn::Tensor joint_actions(n, num_agents * 2);
    nn::Tensor joint_next_actions(n, num_agents * 2);
    for (int k = 0; k < num_agents; ++k) {
      std::vector<const std::vector<float>*> next_obs_rows, next_h_rows;
      for (int idx : batch) {
        next_obs_rows.push_back(&replay[idx].next_obs[k]);
        next_h_rows.push_back(&replay[idx].next_hidden[k]);
      }
      auto [next_action, h_unused] = actor_targets[k]->Forward(
          nn::Variable::Constant(RowsToTensor(next_obs_rows)),
          nn::Variable::Constant(RowsToTensor(next_h_rows)));
      (void)h_unused;
      for (int r = 0; r < n; ++r) {
        for (int c = 0; c < 2; ++c) {
          joint_actions(r, k * 2 + c) = replay[batch[r]].actions[k][c];
          joint_next_actions(r, k * 2 + c) = next_action.value()(r, c);
        }
      }
    }

    for (int k = 0; k < num_agents; ++k) {
      // --- Critic update: y = r + gamma (1-done) Q_target(s', a'). ---
      nn::Tensor next_input(n, state_dim + num_agents * 2);
      nn::Tensor input(n, state_dim + num_agents * 2);
      for (int r = 0; r < n; ++r) {
        for (int c = 0; c < state_dim; ++c) {
          input(r, c) = states(r, c);
          next_input(r, c) = next_states(r, c);
        }
        for (int c = 0; c < num_agents * 2; ++c) {
          input(r, state_dim + c) = joint_actions(r, c);
          next_input(r, state_dim + c) = joint_next_actions(r, c);
        }
      }
      const nn::Tensor q_next = critic_targets[k]->Forward(next_input).value();
      nn::Tensor y(n, 1);
      for (int r = 0; r < n; ++r) {
        const Transition& t = replay[batch[r]];
        y(r, 0) = t.rewards[k] +
                  (t.done ? 0.0f : config.gamma * q_next(r, 0));
      }
      nn::Variable q_pred = critics[k]->Forward(input);
      nn::Variable critic_loss = nn::MseLoss(q_pred, y);
      critic_opts[k]->ZeroGrad();
      critic_loss.Backward();
      critic_opts[k]->Step();

      // Refresh priorities with the new TD errors.
      for (int r = 0; r < n; ++r) {
        replay[batch[r]].priority =
            std::fabs(q_pred.value()(r, 0) - y(r, 0)) + 1e-3f;
      }

      // --- Actor update: maximize Q_k(s, [a_-k, pi_k(o_k, h_k)]). ---
      std::vector<const std::vector<float>*> obs_rows, h_rows;
      for (int idx : batch) {
        obs_rows.push_back(&replay[idx].obs[k]);
        h_rows.push_back(&replay[idx].hidden[k]);
      }
      auto [pi_action, h2_unused] = actors[k]->Forward(
          nn::Variable::Constant(RowsToTensor(obs_rows)),
          nn::Variable::Constant(RowsToTensor(h_rows)));
      (void)h2_unused;
      // Assemble [state | a_0 .. pi_k .. a_{K-1}] with only pi_k on the
      // graph so dQ/da flows into the actor.
      nn::Tensor left(n, state_dim + k * 2);
      for (int r = 0; r < n; ++r) {
        for (int c = 0; c < state_dim; ++c) left(r, c) = states(r, c);
        for (int c = 0; c < k * 2; ++c) {
          left(r, state_dim + c) = joint_actions(r, c);
        }
      }
      nn::Variable critic_input =
          nn::ConcatCols(nn::Variable::Constant(left), pi_action);
      const int right_cols = (num_agents - 1 - k) * 2;
      if (right_cols > 0) {
        nn::Tensor right(n, right_cols);
        for (int r = 0; r < n; ++r) {
          for (int c = 0; c < right_cols; ++c) {
            right(r, c) = joint_actions(r, (k + 1) * 2 + c);
          }
        }
        critic_input =
            nn::ConcatCols(critic_input, nn::Variable::Constant(right));
      }
      nn::Variable actor_loss =
          nn::Neg(nn::Mean(critics[k]->Forward(critic_input)));
      actor_opts[k]->ZeroGrad();
      // Freeze the critic during the actor step: gradients flow through it
      // but only actor parameters are updated (critic grads are cleared).
      critic_opts[k]->ZeroGrad();
      actor_loss.Backward();
      actor_opts[k]->Step();
      critic_opts[k]->ZeroGrad();

      // --- Target networks. ---
      auto asrc = actors[k]->Parameters();
      auto adst = actor_targets[k]->Parameters();
      SoftUpdate(asrc, adst, config.tau);
      auto csrc = critics[k]->Parameters();
      auto cdst = critic_targets[k]->Parameters();
      SoftUpdate(csrc, cdst, config.tau);
    }
  }
};

EDivertTrainer::EDivertTrainer(env::ScEnv& env, const EDivertConfig& config)
    : impl_(std::make_unique<Impl>(env, config)) {}

EDivertTrainer::~EDivertTrainer() = default;

double EDivertTrainer::TrainIteration() {
  const double efficiency = impl_->CollectEpisodes();
  for (int u = 0; u < impl_->config.updates_per_iteration; ++u) {
    impl_->Update();
  }
  if (impl_->config.verbose) {
    AGSC_LOG(kInfo) << "e-Divert iter " << impl_->iteration
                    << " lambda=" << efficiency;
  }
  ++impl_->iteration;
  return efficiency;
}

void EDivertTrainer::Train(int iterations) {
  const int total =
      iterations >= 0 ? iterations : impl_->config.iterations;
  for (int i = 0; i < total; ++i) {
    if (impl_->StopRequested()) {
      throw util::InterruptedError(
          "e-Divert training interrupted before iteration " +
          std::to_string(impl_->iteration));
    }
    TrainIteration();
  }
}

void EDivertTrainer::BeginEpisode(const env::ScEnv& env) {
  (void)env;
  impl_->eval_hidden.assign(impl_->num_agents,
                            impl_->actors[0]->InitialState(1));
}

env::UvAction EDivertTrainer::Act(const env::ScEnv& env, int k,
                                  const std::vector<float>& obs,
                                  util::Rng& rng, bool deterministic) {
  (void)env;
  nn::Tensor obs_row(1, impl_->obs_dim);
  for (int c = 0; c < impl_->obs_dim; ++c) obs_row[c] = obs[c];
  auto [action, h_next] = impl_->actors[k]->Forward(
      nn::Variable::Constant(obs_row),
      nn::Variable::Constant(impl_->eval_hidden[k]));
  impl_->eval_hidden[k] = h_next.value();
  env::UvAction out{action.value()(0, 0), action.value()(0, 1)};
  if (!deterministic) {
    const float noise = impl_->CurrentNoise();
    out.raw_direction = std::clamp(
        out.raw_direction + noise * rng.Gaussian(), -1.0, 1.0);
    out.raw_speed =
        std::clamp(out.raw_speed + noise * rng.Gaussian(), -1.0, 1.0);
  }
  return out;
}

int EDivertTrainer::TotalParameterCount() const {
  int total = 0;
  for (int k = 0; k < impl_->num_agents; ++k) {
    total += impl_->actors[k]->ParameterCount();
    total += impl_->critics[k]->ParameterCount();
  }
  return total;
}

int EDivertTrainer::ActorParameterBytes() const {
  int total = 0;
  for (int k = 0; k < impl_->num_agents; ++k) {
    total += impl_->actors[k]->ParameterCount();
  }
  return total * static_cast<int>(sizeof(float));
}

}  // namespace agsc::algorithms
