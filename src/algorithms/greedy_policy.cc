#include "algorithms/greedy_policy.h"

#include <cmath>

namespace agsc::algorithms {

env::UvAction HeadingToAction(double angle, double speed_fraction) {
  // ScEnv maps raw_direction a0 in [-1,1] to (a0+1)*pi and raw_speed a1 to
  // (a1+1)/2 * vmax.
  double wrapped = std::fmod(angle, 2.0 * M_PI);
  if (wrapped < 0.0) wrapped += 2.0 * M_PI;
  return {wrapped / M_PI - 1.0, 2.0 * speed_fraction - 1.0};
}

env::UvAction GreedyPolicy::Act(const env::ScEnv& env, int k,
                                const std::vector<float>& obs,
                                util::Rng& rng, bool deterministic) {
  (void)obs;
  (void)rng;
  (void)deterministic;
  const map::Point2 pos = env.uv(k).pos;
  int best = -1;
  double best_dist = 0.0;
  for (int i = 0; i < env.config().num_pois; ++i) {
    if (env.PoiRemainingGbit(i) <= 0.0) continue;
    const double d = map::Distance(pos, env.dataset().pois[i]);
    if (best < 0 || d < best_dist) {
      best = i;
      best_dist = d;
    }
  }
  if (best < 0) return {0.0, -1.0};  // Nothing left: stop (save energy).
  const map::Point2 delta = env.dataset().pois[best] - pos;
  // Close targets do not need full speed; avoids orbiting the PoI.
  const double vmax =
      env.IsUav(k) ? env.config().uav_vmax : env.config().ugv_vmax;
  const double reach = vmax * env.config().tau_move;
  const double speed_fraction =
      std::min(1.0, map::Norm(delta) / std::max(reach, 1e-9));
  return HeadingToAction(std::atan2(delta.y, delta.x), speed_fraction);
}

}  // namespace agsc::algorithms
