#include "algorithms/random_policy.h"

namespace agsc::algorithms {

env::UvAction RandomPolicy::Act(const env::ScEnv& env, int k,
                                const std::vector<float>& obs,
                                util::Rng& rng, bool deterministic) {
  (void)env;
  (void)k;
  (void)obs;
  (void)deterministic;  // Random has no deterministic mode.
  return {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
}

}  // namespace agsc::algorithms
