#include "map/campus.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace agsc::map {

std::string CampusName(CampusId id) {
  return id == CampusId::kPurdue ? "Purdue" : "NCSU";
}

namespace {

/// Parameters of the procedural campus generator.
struct CampusSpec {
  std::string name;
  double size;            // Square side length in meters.
  int grid;               // Grid nodes per side.
  double jitter;          // Node position jitter (meters).
  double removal_rate;    // Fraction of grid edges to try to remove.
  double diagonal_rate;   // Fraction of cells gaining a diagonal road.
  int num_landmarks;
  double landmark_spread; // 0 = center-clustered .. 1 = uniform.
  int num_traces;
  uint64_t seed;
};

/// True if the graph formed by `kept` edges over `n` nodes is connected.
bool EdgesConnected(int n, const std::vector<std::pair<int, int>>& kept) {
  if (n == 0) return true;
  std::vector<std::vector<int>> adj(n);
  for (const auto& [a, b] : kept) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(n, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == n;
}

Campus GenerateCampus(const CampusSpec& spec) {
  util::Rng rng(spec.seed);
  Campus campus;
  campus.name = spec.name;
  campus.bounds = {{0.0, 0.0}, {spec.size, spec.size}};
  campus.num_traces = spec.num_traces;

  // Jittered grid of road intersections.
  const int g = spec.grid;
  const double step = spec.size / static_cast<double>(g - 1);
  std::vector<int> node_id(static_cast<size_t>(g) * g);
  for (int r = 0; r < g; ++r) {
    for (int c = 0; c < g; ++c) {
      const bool border = r == 0 || c == 0 || r == g - 1 || c == g - 1;
      const double jitter = border ? 0.0 : spec.jitter;
      Point2 p{c * step + rng.Uniform(-jitter, jitter),
               r * step + rng.Uniform(-jitter, jitter)};
      node_id[r * g + c] = campus.roads.AddNode(campus.bounds.Clamp(p));
    }
  }

  // Full grid edges plus occasional diagonals.
  std::vector<std::pair<int, int>> candidates;
  for (int r = 0; r < g; ++r) {
    for (int c = 0; c < g; ++c) {
      if (c + 1 < g) candidates.emplace_back(node_id[r * g + c],
                                             node_id[r * g + c + 1]);
      if (r + 1 < g) candidates.emplace_back(node_id[r * g + c],
                                             node_id[(r + 1) * g + c]);
      if (r + 1 < g && c + 1 < g && rng.Bernoulli(spec.diagonal_rate)) {
        candidates.emplace_back(node_id[r * g + c],
                                node_id[(r + 1) * g + c + 1]);
      }
    }
  }

  // Randomly remove edges while preserving connectivity (city roadmaps are
  // incomplete grids; this is what makes UGV reachability non-trivial).
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<bool> kept(candidates.size(), true);
  size_t removed = 0;
  const size_t target =
      static_cast<size_t>(spec.removal_rate * candidates.size());
  for (size_t idx : order) {
    if (removed >= target) break;
    kept[idx] = false;
    std::vector<std::pair<int, int>> remaining;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (kept[i]) remaining.push_back(candidates[i]);
    }
    if (EdgesConnected(campus.roads.NumNodes(), remaining)) {
      ++removed;
    } else {
      kept[idx] = true;
    }
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (kept[i]) campus.roads.AddEdge(candidates[i].first,
                                      candidates[i].second);
  }

  // Landmarks: attractors for student mobility. `landmark_spread` pushes
  // them toward the borders (NCSU) or keeps them clustered (Purdue).
  for (int i = 0; i < spec.num_landmarks; ++i) {
    const double lo = 0.5 - 0.45 * spec.landmark_spread;
    const double hi = 0.5 + 0.45 * spec.landmark_spread;
    Point2 p{spec.size * rng.Uniform(lo, hi) +
                 rng.Gaussian(0.0, 0.08 * spec.size),
             spec.size * rng.Uniform(lo, hi) +
                 rng.Gaussian(0.0, 0.08 * spec.size)};
    campus.landmarks.push_back(campus.bounds.Clamp(p));
  }

  // All UVs start together near the campus center, on a road.
  const Point2 center{spec.size * 0.5, spec.size * 0.5};
  campus.spawn = campus.roads.PointAt(campus.roads.Project(center));
  return campus;
}

}  // namespace

Campus BuildPurdueCampus() {
  CampusSpec spec;
  spec.name = "Purdue";
  spec.size = 2000.0;
  spec.grid = 9;
  spec.jitter = 30.0;
  spec.removal_rate = 0.15;
  spec.diagonal_rate = 0.05;
  spec.num_landmarks = 12;
  spec.landmark_spread = 0.75;
  spec.num_traces = 59;
  spec.seed = 0xBADC0FFEE0DDF00DULL;
  return GenerateCampus(spec);
}

Campus BuildNcsuCampus() {
  CampusSpec spec;
  spec.name = "NCSU";
  spec.size = 3000.0;
  spec.grid = 8;
  spec.jitter = 80.0;
  spec.removal_rate = 0.25;
  spec.diagonal_rate = 0.15;
  spec.num_landmarks = 10;
  spec.landmark_spread = 1.0;
  spec.num_traces = 33;
  spec.seed = 0x5EEDCAFEBEEF1234ULL;
  return GenerateCampus(spec);
}

Campus BuildCampus(CampusId id) {
  switch (id) {
    case CampusId::kPurdue: return BuildPurdueCampus();
    case CampusId::kNcsu: return BuildNcsuCampus();
  }
  throw std::invalid_argument("unknown campus");
}

}  // namespace agsc::map
