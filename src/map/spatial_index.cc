#include "map/spatial_index.h"

namespace agsc::map {

void PointGrid::Build(const Rect& bounds, const std::vector<Point2>& points,
                      int cells_per_side) {
  shape_.Init(bounds, cells_per_side);
  points_ = points;
  const int nc = shape_.num_cells();
  const int n = static_cast<int>(points_.size());
  cell_start_.assign(nc + 1, 0);
  ids_.resize(n);
  // Counting sort by cell: two passes keep per-cell id lists ascending and
  // reuse the existing storage (no allocation once capacities are warm).
  for (int i = 0; i < n; ++i) {
    const int cx = std::clamp(shape_.CellX(points_[i].x), 0, shape_.nx - 1);
    const int cy = std::clamp(shape_.CellY(points_[i].y), 0, shape_.ny - 1);
    ++cell_start_[shape_.Index(cx, cy) + 1];
  }
  for (int c = 0; c < nc; ++c) cell_start_[c + 1] += cell_start_[c];
  cursor_.assign(nc, 0);
  for (int i = 0; i < n; ++i) {
    const int cx = std::clamp(shape_.CellX(points_[i].x), 0, shape_.nx - 1);
    const int cy = std::clamp(shape_.CellY(points_[i].y), 0, shape_.ny - 1);
    const int c = shape_.Index(cx, cy);
    ids_[cell_start_[c] + cursor_[c]] = i;
    ++cursor_[c];
  }
}

void SegmentGrid::Build(const Rect& bounds, const std::vector<Rect>& boxes,
                        int cells_per_side) {
  shape_.Init(bounds, cells_per_side);
  const int nc = shape_.num_cells();
  const int n = static_cast<int>(boxes.size());
  cell_start_.assign(nc + 1, 0);
  stamp_.assign(n, 0);
  epoch_ = 0;
  auto cell_range = [&](const Rect& b, int& x0, int& x1, int& y0, int& y1) {
    x0 = std::clamp(shape_.CellX(b.min.x), 0, shape_.nx - 1);
    x1 = std::clamp(shape_.CellX(b.max.x), 0, shape_.nx - 1);
    y0 = std::clamp(shape_.CellY(b.min.y), 0, shape_.ny - 1);
    y1 = std::clamp(shape_.CellY(b.max.y), 0, shape_.ny - 1);
  };
  for (int i = 0; i < n; ++i) {
    int x0, x1, y0, y1;
    cell_range(boxes[i], x0, x1, y0, y1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) ++cell_start_[shape_.Index(x, y) + 1];
    }
  }
  for (int c = 0; c < nc; ++c) cell_start_[c + 1] += cell_start_[c];
  ids_.resize(cell_start_[nc]);
  std::vector<int> cursor(nc, 0);
  for (int i = 0; i < n; ++i) {
    int x0, x1, y0, y1;
    cell_range(boxes[i], x0, x1, y0, y1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const int c = shape_.Index(x, y);
        ids_[cell_start_[c] + cursor[c]] = i;
        ++cursor[c];
      }
    }
  }
}

void SegmentGrid::NextEpoch() const {
  if (epoch_ == std::numeric_limits<int>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
}

}  // namespace agsc::map
