#ifndef AGSC_MAP_SPATIAL_INDEX_H_
#define AGSC_MAP_SPATIAL_INDEX_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "map/geometry.h"

namespace agsc::map {

/// Geometry shared by the uniform grids below: `bounds.min`-anchored square
/// cells of side `cell`, `nx` columns by `ny` rows.
///
/// Query points may lie anywhere (including far outside the bounds); cell
/// coordinates of a query are therefore *unclamped* and only intersected
/// with the grid when enumerating cells. Indexed items, in contrast, must
/// lie inside `bounds` — the ring lower bounds below assume an item's true
/// position is inside the cells it was binned into.
struct GridShape {
  Point2 origin;
  double cell = 1.0;
  int nx = 0;
  int ny = 0;

  bool empty() const { return nx <= 0 || ny <= 0; }
  int num_cells() const { return nx * ny; }

  void Init(const Rect& bounds, int cells_per_side) {
    origin = bounds.min;
    const int n = std::max(1, cells_per_side);
    const double extent = std::max(bounds.Width(), bounds.Height());
    cell = extent > 0.0 ? extent / static_cast<double>(n) : 1.0;
    nx = std::max(1, static_cast<int>(std::ceil(bounds.Width() / cell)));
    ny = std::max(1, static_cast<int>(std::ceil(bounds.Height() / cell)));
  }

  /// Unclamped cell coordinate of `x` (clamped only against int overflow).
  int CellCoord(double x, double o) const {
    const double c = std::floor((x - o) / cell);
    return static_cast<int>(std::clamp(c, -1.0e9, 1.0e9));
  }
  int CellX(double x) const { return CellCoord(x, origin.x); }
  int CellY(double y) const { return CellCoord(y, origin.y); }
  int Index(int cx, int cy) const { return cy * nx + cx; }

  /// Lower bound on the distance from `p` (whose unclamped cell is
  /// (cx, cy)) to any point inside any cell at Chebyshev ring >= r, r >= 1:
  /// the distance from `p` to the exterior of the box covering rings
  /// 0..r-1. Exact for in-bounds items; never overestimates.
  double RingLowerBound(const Point2& p, int cx, int cy, int r) const {
    const double bx0 = origin.x + (cx - (r - 1)) * cell;
    const double bx1 = origin.x + (cx + r) * cell;
    const double by0 = origin.y + (cy - (r - 1)) * cell;
    const double by1 = origin.y + (cy + r) * cell;
    const double slack = std::min(std::min(p.x - bx0, bx1 - p.x),
                                  std::min(p.y - by0, by1 - p.y));
    return std::max(0.0, slack);
  }

  /// First ring (around unclamped cell (cx, cy)) that intersects the grid.
  int FirstRing(int cx, int cy) const {
    const int dx = std::max({0, -cx, cx - (nx - 1)});
    const int dy = std::max({0, -cy, cy - (ny - 1)});
    return std::max(dx, dy);
  }

  /// Last ring that can contain any grid cell.
  int LastRing(int cx, int cy) const {
    return std::max(std::max(cx, nx - 1 - cx), std::max(cy, ny - 1 - cy));
  }
};

namespace internal {

/// Calls `fn(cell_index)` for every grid cell at exactly Chebyshev ring `r`
/// around (cx, cy) that lies inside the grid.
template <typename Fn>
void ForEachRingCell(const GridShape& shape, int cx, int cy, int r, Fn&& fn) {
  if (r == 0) {
    if (cx >= 0 && cx < shape.nx && cy >= 0 && cy < shape.ny) {
      fn(shape.Index(cx, cy));
    }
    return;
  }
  const int x0 = std::max(cx - r, 0), x1 = std::min(cx + r, shape.nx - 1);
  const int y0 = std::max(cy - r, 0), y1 = std::min(cy + r, shape.ny - 1);
  if (x0 > x1 || y0 > y1) return;
  if (cy - r >= 0) {
    for (int x = x0; x <= x1; ++x) fn(shape.Index(x, cy - r));
  }
  if (cy + r < shape.ny && r > 0) {
    for (int x = x0; x <= x1; ++x) fn(shape.Index(x, cy + r));
  }
  const int yy0 = std::max(cy - r + 1, 0);
  const int yy1 = std::min(cy + r - 1, shape.ny - 1);
  if (cx - r >= 0) {
    for (int y = yy0; y <= yy1; ++y) fn(shape.Index(cx - r, y));
  }
  if (cx + r < shape.nx) {
    for (int y = yy0; y <= yy1; ++y) fn(shape.Index(cx + r, y));
  }
}

}  // namespace internal

/// Uniform grid over a set of points (each binned into exactly one cell;
/// per-cell id lists are ascending by construction). `Build` reuses the
/// internal storage, so rebuilding with the same sizes allocates nothing —
/// the environment rebuilds its agent grid every timeslot this way.
///
/// Queries use the exact same `Distance` arithmetic a linear scan would,
/// and nearest-neighbor ties are broken toward the smallest id, so results
/// are bit-identical to an ascending linear scan with a strict `<` argmin.
/// Const queries mutate no state, but `Build` is not synchronized: share a
/// PointGrid across threads only once built.
class PointGrid {
 public:
  PointGrid() = default;

  /// Bins `points` (which must lie inside `bounds`) into a grid of roughly
  /// `cells_per_side`^2 square cells.
  void Build(const Rect& bounds, const std::vector<Point2>& points,
             int cells_per_side);

  bool built() const { return !shape_.empty(); }
  int size() const { return static_cast<int>(points_.size()); }

  /// Calls `fn(id)` exactly once for every point whose cell intersects the
  /// axis-aligned bounding box of the disk (a superset of the points within
  /// `radius` of `center`); the caller applies the exact distance test.
  template <typename Fn>
  void ForEachInDiskBBox(const Point2& center, double radius, Fn&& fn) const {
    if (shape_.empty() || points_.empty()) return;
    const int x0 = std::clamp(shape_.CellX(center.x - radius), 0,
                              shape_.nx - 1);
    const int x1 = std::clamp(shape_.CellX(center.x + radius), 0,
                              shape_.nx - 1);
    const int y0 = std::clamp(shape_.CellY(center.y - radius), 0,
                              shape_.ny - 1);
    const int y1 = std::clamp(shape_.CellY(center.y + radius), 0,
                              shape_.ny - 1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const int c = shape_.Index(x, y);
        for (int s = cell_start_[c]; s < cell_start_[c + 1]; ++s) fn(ids_[s]);
      }
    }
  }

  /// Nearest point satisfying `pred`, or -1. Ring expansion stops only once
  /// the ring lower bound strictly exceeds the best distance found, so the
  /// result is the smallest-id argmin — bit-identical to a full linear scan
  /// `for (i ascending) if (pred(i) && d < best) take i`.
  template <typename Pred>
  int Nearest(const Point2& p, Pred&& pred, double* best_dist_out) const {
    int best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    if (shape_.empty() || points_.empty()) return best;
    const int cx = shape_.CellX(p.x), cy = shape_.CellY(p.y);
    const int r_last = shape_.LastRing(cx, cy);
    for (int r = shape_.FirstRing(cx, cy); r <= r_last; ++r) {
      if (best >= 0 && r >= 1 &&
          shape_.RingLowerBound(p, cx, cy, r) > best_dist) {
        break;
      }
      internal::ForEachRingCell(shape_, cx, cy, r, [&](int c) {
        for (int s = cell_start_[c]; s < cell_start_[c + 1]; ++s) {
          const int id = ids_[s];
          if (!pred(id)) continue;
          const double d = Distance(p, points_[id]);
          if (best < 0 || d < best_dist || (d == best_dist && id < best)) {
            best = id;
            best_dist = d;
          }
        }
      });
    }
    if (best_dist_out != nullptr) *best_dist_out = best_dist;
    return best;
  }

 private:
  GridShape shape_;
  std::vector<Point2> points_;
  std::vector<int> cell_start_;  ///< num_cells + 1 offsets into ids_.
  std::vector<int> ids_;
  std::vector<int> cursor_;  ///< Counting-sort scratch, reused across builds.
};

/// Uniform grid over axis-aligned bounding boxes of segments (road edges).
/// A segment is binned into every cell its bbox overlaps, so nearest
/// queries deduplicate candidates with an epoch-stamped visited array —
/// the stamp is mutable scratch, making concurrent queries on the *same*
/// object racy; every environment replica owns its own copy.
class SegmentGrid {
 public:
  SegmentGrid() = default;

  /// `boxes[i]` is the bbox of segment i; boxes must lie inside `bounds`.
  void Build(const Rect& bounds, const std::vector<Rect>& boxes,
             int cells_per_side);

  bool built() const { return !shape_.empty(); }
  int size() const { return static_cast<int>(stamp_.size()); }

  /// Nearest segment by exact distance `dist(id)` (called at most once per
  /// candidate), ties toward the smallest id — bit-identical to an
  /// ascending linear scan with a strict `<` argmin. Returns -1 if empty.
  template <typename DistFn>
  int Nearest(const Point2& p, DistFn&& dist, double* best_dist_out) const {
    int best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    if (shape_.empty() || stamp_.empty()) return best;
    NextEpoch();
    const int cx = shape_.CellX(p.x), cy = shape_.CellY(p.y);
    const int r_last = shape_.LastRing(cx, cy);
    for (int r = shape_.FirstRing(cx, cy); r <= r_last; ++r) {
      if (best >= 0 && r >= 1 &&
          shape_.RingLowerBound(p, cx, cy, r) > best_dist) {
        break;
      }
      internal::ForEachRingCell(shape_, cx, cy, r, [&](int c) {
        for (int s = cell_start_[c]; s < cell_start_[c + 1]; ++s) {
          const int id = ids_[s];
          if (stamp_[id] == epoch_) continue;
          stamp_[id] = epoch_;
          const double d = dist(id);
          if (best < 0 || d < best_dist || (d == best_dist && id < best)) {
            best = id;
            best_dist = d;
          }
        }
      });
    }
    if (best_dist_out != nullptr) *best_dist_out = best_dist;
    return best;
  }

 private:
  void NextEpoch() const;

  GridShape shape_;
  std::vector<int> cell_start_;
  std::vector<int> ids_;
  mutable std::vector<int> stamp_;  ///< Per-segment visited epoch.
  mutable int epoch_ = 0;
};

}  // namespace agsc::map

#endif  // AGSC_MAP_SPATIAL_INDEX_H_
