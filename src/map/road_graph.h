#ifndef AGSC_MAP_ROAD_GRAPH_H_
#define AGSC_MAP_ROAD_GRAPH_H_

#include <vector>

#include "map/geometry.h"

namespace agsc::map {

/// A position on the road network: fraction `t` in [0,1] along undirected
/// edge `edge`, measured from the edge's node `a` toward node `b`.
struct RoadPosition {
  int edge = -1;
  double t = 0.0;

  bool Valid() const { return edge >= 0; }
};

/// Undirected road network with geometric nodes.
///
/// Supports the operations the environment needs for UGV motion:
///  * projecting an arbitrary point onto the nearest road,
///  * shortest-path distance between two on-road positions (Dijkstra),
///  * moving along the shortest path toward a target under a range budget
///    (the paper's constraint that a UGV may move only within
///    `tau_move * v_max^UGV` per timeslot, Section III-A).
class RoadGraph {
 public:
  struct Edge {
    int a = 0;
    int b = 0;
    double length = 0.0;
  };

  RoadGraph() = default;

  /// Adds a node at `pos`; returns its index.
  int AddNode(const Point2& pos);

  /// Adds an undirected edge between existing nodes `a` and `b`; returns the
  /// edge index. Length is the Euclidean node distance.
  int AddEdge(int a, int b);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  const Point2& node(int i) const { return nodes_[i]; }
  const Edge& edge(int i) const { return edges_[i]; }

  /// True if every node can reach every other node.
  bool IsConnected() const;

  /// Geometric location of an on-road position.
  Point2 PointAt(const RoadPosition& pos) const;

  /// Projects `p` onto the nearest point of any edge.
  RoadPosition Project(const Point2& p) const;

  /// Shortest travel distance between two node indices (Dijkstra);
  /// +inf if disconnected.
  double NodeDistance(int from, int to) const;

  /// Shortest travel distance between two on-road positions, allowing
  /// travel within an edge.
  double PathDistance(const RoadPosition& from, const RoadPosition& to) const;

  /// Moves from `from` at most `budget` meters along the shortest path
  /// toward `to`. Returns the reached position; output `moved` (optional)
  /// receives the distance actually traveled.
  RoadPosition MoveAlong(const RoadPosition& from, const RoadPosition& to,
                         double budget, double* moved = nullptr) const;

  /// Convenience: project `target` onto the road and MoveAlong toward it.
  RoadPosition MoveToward(const RoadPosition& from, const Point2& target,
                          double budget, double* moved = nullptr) const;

  /// Total length of all edges.
  double TotalLength() const;

 private:
  /// Expanded node path (node indices) between nodes via Dijkstra;
  /// empty if disconnected or from == to.
  std::vector<int> NodePath(int from, int to) const;

  /// Dijkstra distances from `from` to all nodes; `prev` (optional) receives
  /// predecessor node indices for path recovery.
  std::vector<double> Dijkstra(int from, std::vector<int>* prev) const;

  std::vector<Point2> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> incident_;  // node -> incident edge indices.
};

}  // namespace agsc::map

#endif  // AGSC_MAP_ROAD_GRAPH_H_
