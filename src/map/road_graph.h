#ifndef AGSC_MAP_ROAD_GRAPH_H_
#define AGSC_MAP_ROAD_GRAPH_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "map/geometry.h"
#include "map/spatial_index.h"

namespace agsc::map {

/// A position on the road network: fraction `t` in [0,1] along undirected
/// edge `edge`, measured from the edge's node `a` toward node `b`.
struct RoadPosition {
  int edge = -1;
  double t = 0.0;

  bool Valid() const { return edge >= 0; }
};

/// Undirected road network with geometric nodes.
///
/// Supports the operations the environment needs for UGV motion:
///  * projecting an arbitrary point onto the nearest road,
///  * shortest-path distance between two on-road positions (Dijkstra),
///  * moving along the shortest path toward a target under a range budget
///    (the paper's constraint that a UGV may move only within
///    `tau_move * v_max^UGV` per timeslot, Section III-A).
///
/// The graph is static after campus construction, so the query methods are
/// backed by lazily built caches — an all-pairs Dijkstra table (distances +
/// predecessors), a CSR adjacency with the min-length edge per adjacent node
/// pair, and a uniform grid over edge bounding boxes for `Project`. Every
/// cached query is bit-identical to its retained `*Naive` counterpart (same
/// arithmetic on the same values in the same order); the `*Naive` methods
/// exist as test oracles. `AddNode`/`AddEdge` invalidate the caches.
///
/// Thread safety: the lazy cache build is guarded (double-checked), but the
/// fast queries use mutable scratch, so concurrent queries on the *same*
/// object are not safe — every environment replica owns its own copy.
/// Call `EnsureCaches()` once up front to make subsequent const queries
/// read-only on shared graphs and allocation-free.
class RoadGraph {
 public:
  struct Edge {
    int a = 0;
    int b = 0;
    double length = 0.0;
  };

  RoadGraph() = default;
  RoadGraph(const RoadGraph& other);
  RoadGraph(RoadGraph&& other) noexcept;
  RoadGraph& operator=(const RoadGraph& other);
  RoadGraph& operator=(RoadGraph&& other) noexcept;

  /// Adds a node at `pos`; returns its index. Invalidates caches.
  int AddNode(const Point2& pos);

  /// Adds an undirected edge between existing nodes `a` and `b`; returns the
  /// edge index. Length is the Euclidean node distance. Invalidates caches.
  int AddEdge(int a, int b);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  const Point2& node(int i) const { return nodes_[i]; }
  const Edge& edge(int i) const { return edges_[i]; }

  /// True if every node can reach every other node.
  bool IsConnected() const;

  /// Geometric location of an on-road position.
  Point2 PointAt(const RoadPosition& pos) const;

  /// Projects `p` onto the nearest point of any edge (grid-accelerated).
  /// Throws std::logic_error if the graph has no edges.
  RoadPosition Project(const Point2& p) const;

  /// Shortest travel distance between two node indices (cached);
  /// +inf if disconnected.
  double NodeDistance(int from, int to) const;

  /// Shortest travel distance between two on-road positions, allowing
  /// travel within an edge (cached).
  double PathDistance(const RoadPosition& from, const RoadPosition& to) const;

  /// Moves from `from` at most `budget` meters along the shortest path
  /// toward `to`. Returns the reached position; output `moved` (optional)
  /// receives the distance actually traveled.
  RoadPosition MoveAlong(const RoadPosition& from, const RoadPosition& to,
                         double budget, double* moved = nullptr) const;

  /// Convenience: project `target` onto the road and MoveAlong toward it.
  /// Throws std::logic_error if the graph has no edges.
  RoadPosition MoveToward(const RoadPosition& from, const Point2& target,
                          double budget, double* moved = nullptr) const;

  /// Total length of all edges.
  double TotalLength() const;

  /// Builds the routing caches now (idempotent). Also invoked lazily by the
  /// query methods; calling it eagerly makes later const queries read-only
  /// and allocation-free.
  void EnsureCaches() const;

  /// Naive reference implementations (per-call Dijkstra / linear scans).
  /// Kept as test oracles: the cached queries above must match these
  /// bit-for-bit.
  RoadPosition ProjectNaive(const Point2& p) const;
  double NodeDistanceNaive(int from, int to) const;
  double PathDistanceNaive(const RoadPosition& from,
                           const RoadPosition& to) const;
  RoadPosition MoveAlongNaive(const RoadPosition& from, const RoadPosition& to,
                              double budget, double* moved = nullptr) const;
  RoadPosition MoveTowardNaive(const RoadPosition& from, const Point2& target,
                               double budget, double* moved = nullptr) const;

 private:
  /// A stretch of travel along one edge from parameter t0 to t1.
  struct TravelSegment {
    int edge;
    double t0;
    double t1;
  };

  /// Precomputed routing state; valid while `cache_ready_` is true.
  struct RoutingCache {
    // CSR adjacency mirroring incident_ iteration order exactly, so the
    // cache-filling Dijkstra relaxes edges in the same sequence as the
    // naive one (=> bit-identical dist/prev, including tie resolution).
    std::vector<int> adj_start;    // NumNodes() + 1 offsets.
    std::vector<int> adj_node;     // Neighbor node per incident entry.
    std::vector<double> adj_len;   // Edge length per incident entry.
    // Deduplicated neighbors per node with the min-length edge toward each
    // (first-wins on length ties over incident order => lowest edge id,
    // matching the naive incident scans in MoveAlong).
    std::vector<int> nbr_start;    // NumNodes() + 1 offsets.
    std::vector<int> nbr_node;
    std::vector<int> nbr_min_edge;
    std::vector<double> nbr_min_len;
    // All-pairs Dijkstra results, row-major by source node.
    std::vector<double> dist;      // n * n.
    std::vector<int> prev;         // n * n.
    // Uniform grid over edge bounding boxes for Project.
    SegmentGrid edge_grid;

    const double* DistRow(int from, int n) const {
      return dist.data() + static_cast<size_t>(from) * n;
    }
    const int* PrevRow(int from, int n) const {
      return prev.data() + static_cast<size_t>(from) * n;
    }
    // Min edge length / id between adjacent nodes u, v (+inf / -1 if not
    // adjacent), identical to the naive incident_[u] scans.
    double MinLen(int u, int v) const;
    int MinEdge(int u, int v) const;
  };

  /// Expanded node path (node indices) from `from` to `to` using the cached
  /// predecessor table, written into `out`; `out` is empty if disconnected.
  void NodePathCached(int from, int to, std::vector<int>* out) const;

  /// Naive expanded node path via per-call Dijkstra (test oracle for
  /// NodePathCached); empty if disconnected.
  std::vector<int> NodePathNaive(int from, int to) const;

  /// Dijkstra distances from `from` to all nodes; `prev` (optional) receives
  /// predecessor node indices for path recovery.
  std::vector<double> Dijkstra(int from, std::vector<int>* prev) const;

  /// Shared MoveAlong implementation; `cached` selects the cached or the
  /// per-call-Dijkstra route computation (identical results).
  RoadPosition MoveAlongImpl(const RoadPosition& from, const RoadPosition& to,
                             double budget, double* moved, bool cached) const;

  void BuildCache() const;
  void InvalidateCaches();

  std::vector<Point2> nodes_;
  std::vector<RoadGraph::Edge> edges_;
  std::vector<std::vector<int>> incident_;  // node -> incident edge indices.

  mutable RoutingCache cache_;
  mutable std::atomic<bool> cache_ready_{false};
  mutable std::mutex cache_mutex_;
  // MoveAlong scratch (reused so steady-state moves do not allocate).
  mutable std::vector<int> path_scratch_;
  mutable std::vector<TravelSegment> route_scratch_;
};

}  // namespace agsc::map

#endif  // AGSC_MAP_ROAD_GRAPH_H_
