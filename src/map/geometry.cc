#include "map/geometry.h"

#include <algorithm>

namespace agsc::map {

double ClosestPointParamOnSegment(const Point2& a, const Point2& b,
                                  const Point2& p) {
  const Point2 ab = b - a;
  const double len2 = ab.x * ab.x + ab.y * ab.y;
  if (len2 <= 0.0) return 0.0;
  const Point2 ap = p - a;
  const double t = (ap.x * ab.x + ap.y * ab.y) / len2;
  return std::clamp(t, 0.0, 1.0);
}

Point2 Rect::Clamp(const Point2& p) const {
  return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
}

double SlantDistance(const Point2& ground, const Point2& air_ground,
                     double height) {
  const double d2d = Distance(ground, air_ground);
  return std::sqrt(d2d * d2d + height * height);
}

double ElevationAngleDeg(const Point2& ground, const Point2& air_ground,
                         double height) {
  const double d = SlantDistance(ground, air_ground, height);
  if (d <= 0.0) return 90.0;
  const double ratio = std::clamp(height / d, -1.0, 1.0);
  return std::asin(ratio) * 180.0 / M_PI;
}

}  // namespace agsc::map
