#ifndef AGSC_MAP_GEOMETRY_H_
#define AGSC_MAP_GEOMETRY_H_

#include <cmath>

namespace agsc::map {

/// 2-D point / vector in meters (task-area coordinates).
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  Point2 operator+(const Point2& o) const { return {x + o.x, y + o.y}; }
  Point2 operator-(const Point2& o) const { return {x - o.x, y - o.y}; }
  Point2 operator*(double s) const { return {x * s, y * s}; }
  bool operator==(const Point2& o) const { return x == o.x && y == o.y; }
};

/// Euclidean length of `p` as a vector.
inline double Norm(const Point2& p) { return std::hypot(p.x, p.y); }

/// Euclidean distance between two points.
inline double Distance(const Point2& a, const Point2& b) {
  return Norm(a - b);
}

/// Linear interpolation a + t (b - a).
inline Point2 Lerp(const Point2& a, const Point2& b, double t) {
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

/// Parameter t in [0,1] of the point on segment [a,b] closest to `p`.
double ClosestPointParamOnSegment(const Point2& a, const Point2& b,
                                  const Point2& p);

/// Axis-aligned rectangle [min, max].
struct Rect {
  Point2 min;
  Point2 max;

  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Diagonal() const { return Distance(min, max); }
  bool Contains(const Point2& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  /// Clamps `p` into the rectangle.
  Point2 Clamp(const Point2& p) const;
};

/// 3-D distance between a ground point and an aerial point hovering at
/// `height` above `air_ground`: sqrt(d2d^2 + height^2).
double SlantDistance(const Point2& ground, const Point2& air_ground,
                     double height);

/// Elevation angle (degrees) of an aerial point at `height` above
/// `air_ground`, seen from `ground`.
double ElevationAngleDeg(const Point2& ground, const Point2& air_ground,
                         double height);

}  // namespace agsc::map

#endif  // AGSC_MAP_GEOMETRY_H_
