#include "map/trace.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/rng.h"

namespace agsc::map {

std::vector<Trace> GenerateTraces(const Campus& campus,
                                  const TraceConfig& config) {
  util::Rng rng(config.seed);
  std::vector<Trace> traces;
  traces.reserve(campus.num_traces);
  for (int s = 0; s < campus.num_traces; ++s) {
    util::Rng student_rng = rng.Fork();
    Trace trace;
    trace.reserve(config.num_steps);
    // Students start near a random landmark (dorm/lecture hall).
    Point2 pos = campus.bounds.Clamp(
        campus.landmarks[student_rng.UniformInt(
            static_cast<uint64_t>(campus.landmarks.size()))] +
        Point2{student_rng.Gaussian(0.0, config.landmark_sigma),
               student_rng.Gaussian(0.0, config.landmark_sigma)});
    Point2 waypoint = pos;
    bool at_waypoint = true;
    for (int t = 0; t < config.num_steps; ++t) {
      if (at_waypoint) {
        if (student_rng.Bernoulli(config.dwell_prob)) {
          trace.push_back(pos);  // Dwell (classes, meals) concentrates visits.
          continue;
        }
        // Pick the next waypoint: landmark-biased or uniform exploration.
        if (student_rng.Bernoulli(config.landmark_prob)) {
          const Point2& lm = campus.landmarks[student_rng.UniformInt(
              static_cast<uint64_t>(campus.landmarks.size()))];
          waypoint = campus.bounds.Clamp(
              lm + Point2{student_rng.Gaussian(0.0, config.landmark_sigma),
                          student_rng.Gaussian(0.0, config.landmark_sigma)});
        } else {
          waypoint = {student_rng.Uniform(campus.bounds.min.x,
                                          campus.bounds.max.x),
                      student_rng.Uniform(campus.bounds.min.y,
                                          campus.bounds.max.y)};
        }
        at_waypoint = false;
      }
      const double dist = Distance(pos, waypoint);
      if (dist <= config.step_meters) {
        pos = waypoint;
        at_waypoint = true;
      } else {
        pos = Lerp(pos, waypoint, config.step_meters / dist);
      }
      trace.push_back(pos);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::vector<Point2> ExtractPois(const Campus& campus,
                                const std::vector<Trace>& traces, int count,
                                double cell_meters) {
  struct CellStats {
    long visits = 0;
    double sum_x = 0.0;
    double sum_y = 0.0;
  };
  const int cells_x = std::max(
      1, static_cast<int>(std::ceil(campus.bounds.Width() / cell_meters)));
  std::map<long, CellStats> cells;  // Ordered => deterministic tie-breaks.
  for (const Trace& trace : traces) {
    for (const Point2& p : trace) {
      const int cx = static_cast<int>((p.x - campus.bounds.min.x) /
                                      cell_meters);
      const int cy = static_cast<int>((p.y - campus.bounds.min.y) /
                                      cell_meters);
      CellStats& cell = cells[static_cast<long>(cy) * cells_x + cx];
      ++cell.visits;
      cell.sum_x += p.x;
      cell.sum_y += p.y;
    }
  }
  std::vector<std::pair<long, long>> ranked;  // (-visits, cell_key)
  ranked.reserve(cells.size());
  for (const auto& [key, stats] : cells) ranked.emplace_back(-stats.visits, key);
  std::sort(ranked.begin(), ranked.end());
  std::vector<Point2> pois;
  pois.reserve(count);
  for (const auto& [neg_visits, key] : ranked) {
    if (static_cast<int>(pois.size()) >= count) break;
    const CellStats& stats = cells.at(key);
    pois.push_back({stats.sum_x / static_cast<double>(stats.visits),
                    stats.sum_y / static_cast<double>(stats.visits)});
  }
  return pois;
}

Dataset BuildDataset(CampusId id, int num_pois) {
  Dataset dataset;
  dataset.campus = BuildCampus(id);
  TraceConfig config;
  // Per-campus trace seeds keep the two datasets independent.
  config.seed = id == CampusId::kPurdue ? 7001 : 7002;
  const std::vector<Trace> traces = GenerateTraces(dataset.campus, config);
  dataset.pois = ExtractPois(dataset.campus, traces, num_pois);
  return dataset;
}

}  // namespace agsc::map
