#include "map/road_graph.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace agsc::map {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

int RoadGraph::AddNode(const Point2& pos) {
  nodes_.push_back(pos);
  incident_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

int RoadGraph::AddEdge(int a, int b) {
  if (a < 0 || b < 0 || a >= NumNodes() || b >= NumNodes() || a == b) {
    throw std::invalid_argument("RoadGraph::AddEdge: bad endpoints");
  }
  Edge e;
  e.a = a;
  e.b = b;
  e.length = Distance(nodes_[a], nodes_[b]);
  edges_.push_back(e);
  const int id = static_cast<int>(edges_.size()) - 1;
  incident_[a].push_back(id);
  incident_[b].push_back(id);
  return id;
}

bool RoadGraph::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int eid : incident_[u]) {
      const Edge& e = edges_[eid];
      const int v = e.a == u ? e.b : e.a;
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == NumNodes();
}

Point2 RoadGraph::PointAt(const RoadPosition& pos) const {
  const Edge& e = edges_.at(pos.edge);
  return Lerp(nodes_[e.a], nodes_[e.b], std::clamp(pos.t, 0.0, 1.0));
}

RoadPosition RoadGraph::Project(const Point2& p) const {
  RoadPosition best;
  double best_dist = kInf;
  for (int i = 0; i < NumEdges(); ++i) {
    const Edge& e = edges_[i];
    const double t = ClosestPointParamOnSegment(nodes_[e.a], nodes_[e.b], p);
    const double d = Distance(Lerp(nodes_[e.a], nodes_[e.b], t), p);
    if (d < best_dist) {
      best_dist = d;
      best.edge = i;
      best.t = t;
    }
  }
  return best;
}

std::vector<double> RoadGraph::Dijkstra(int from, std::vector<int>* prev) const {
  std::vector<double> dist(nodes_.size(), kInf);
  if (prev != nullptr) prev->assign(nodes_.size(), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (int eid : incident_[u]) {
      const Edge& e = edges_[eid];
      const int v = e.a == u ? e.b : e.a;
      const double nd = d + e.length;
      if (nd < dist[v]) {
        dist[v] = nd;
        if (prev != nullptr) (*prev)[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  return dist;
}

double RoadGraph::NodeDistance(int from, int to) const {
  if (from == to) return 0.0;
  return Dijkstra(from, nullptr)[to];
}

std::vector<int> RoadGraph::NodePath(int from, int to) const {
  std::vector<int> prev;
  const std::vector<double> dist = Dijkstra(from, &prev);
  if (dist[to] == kInf) return {};
  std::vector<int> path;
  for (int v = to; v != -1; v = prev[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;  // Starts at `from`, ends at `to`.
}

namespace {

/// A stretch of travel along one edge from parameter t0 to t1.
struct Segment {
  int edge;
  double t0;
  double t1;
};

}  // namespace

double RoadGraph::PathDistance(const RoadPosition& from,
                               const RoadPosition& to) const {
  if (!from.Valid() || !to.Valid()) return kInf;
  const Edge& ef = edges_.at(from.edge);
  const Edge& et = edges_.at(to.edge);
  double best = kInf;
  if (from.edge == to.edge) {
    best = std::fabs(to.t - from.t) * ef.length;
  }
  const std::vector<double> da = Dijkstra(ef.a, nullptr);
  const std::vector<double> db = Dijkstra(ef.b, nullptr);
  const double off_a = from.t * ef.length;        // from -> node a.
  const double off_b = (1.0 - from.t) * ef.length;  // from -> node b.
  const double to_a = to.t * et.length;            // node a2 -> to.
  const double to_b = (1.0 - to.t) * et.length;    // node b2 -> to.
  best = std::min(best, off_a + da[et.a] + to_a);
  best = std::min(best, off_a + da[et.b] + to_b);
  best = std::min(best, off_b + db[et.a] + to_a);
  best = std::min(best, off_b + db[et.b] + to_b);
  return best;
}

RoadPosition RoadGraph::MoveAlong(const RoadPosition& from,
                                  const RoadPosition& to, double budget,
                                  double* moved) const {
  if (moved != nullptr) *moved = 0.0;
  if (!from.Valid() || !to.Valid() || budget <= 0.0) return from;
  const Edge& ef = edges_.at(from.edge);
  const Edge& et = edges_.at(to.edge);

  // Enumerate the four endpoint routings plus the same-edge direct route and
  // keep the shortest as a segment list.
  double best = kInf;
  std::vector<Segment> route;
  if (from.edge == to.edge) {
    best = std::fabs(to.t - from.t) * ef.length;
    route = {{from.edge, from.t, to.t}};
  }
  struct Option {
    int exit_node;    // Node of `from.edge` we leave through.
    double exit_cost;
    int enter_node;   // Node of `to.edge` we arrive at.
    double enter_cost;
  };
  const Option options[] = {
      {ef.a, from.t * ef.length, et.a, to.t * et.length},
      {ef.a, from.t * ef.length, et.b, (1.0 - to.t) * et.length},
      {ef.b, (1.0 - from.t) * ef.length, et.a, to.t * et.length},
      {ef.b, (1.0 - from.t) * ef.length, et.b, (1.0 - to.t) * et.length},
  };
  for (const Option& opt : options) {
    const std::vector<int> nodes = NodePath(opt.exit_node, opt.enter_node);
    if (nodes.empty() && opt.exit_node != opt.enter_node) continue;
    double mid = 0.0;
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      const int u = nodes[i], v = nodes[i + 1];
      double step = kInf;
      for (int eid : incident_[u]) {
        const Edge& e = edges_[eid];
        const int other = e.a == u ? e.b : e.a;
        if (other == v) step = std::min(step, e.length);
      }
      mid += step;
    }
    const double total = opt.exit_cost + mid + opt.enter_cost;
    if (total >= best) continue;
    best = total;
    route.clear();
    // Leave the starting edge toward exit_node.
    route.push_back({from.edge, from.t, opt.exit_node == ef.a ? 0.0 : 1.0});
    // Traverse intermediate edges.
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      const int u = nodes[i], v = nodes[i + 1];
      int best_eid = -1;
      for (int eid : incident_[u]) {
        const Edge& e = edges_[eid];
        const int other = e.a == u ? e.b : e.a;
        if (other != v) continue;
        if (best_eid < 0 || e.length < edges_[best_eid].length) best_eid = eid;
      }
      route.push_back({best_eid, edges_[best_eid].a == u ? 0.0 : 1.0,
                       edges_[best_eid].a == u ? 1.0 : 0.0});
    }
    // Enter the target edge from enter_node.
    route.push_back({to.edge, opt.enter_node == et.a ? 0.0 : 1.0, to.t});
  }
  if (route.empty()) return from;  // Disconnected.

  // Walk the route consuming the budget.
  RoadPosition pos = from;
  double walked = 0.0;
  for (const Segment& seg : route) {
    const double len = std::fabs(seg.t1 - seg.t0) * edges_[seg.edge].length;
    if (len <= 1e-12) {
      pos = {seg.edge, seg.t1};
      continue;
    }
    if (walked + len <= budget) {
      walked += len;
      pos = {seg.edge, seg.t1};
    } else {
      const double frac = (budget - walked) / len;
      walked = budget;
      pos = {seg.edge, seg.t0 + (seg.t1 - seg.t0) * frac};
      break;
    }
  }
  if (moved != nullptr) *moved = walked;
  return pos;
}

RoadPosition RoadGraph::MoveToward(const RoadPosition& from,
                                   const Point2& target, double budget,
                                   double* moved) const {
  return MoveAlong(from, Project(target), budget, moved);
}

double RoadGraph::TotalLength() const {
  double total = 0.0;
  for (const Edge& e : edges_) total += e.length;
  return total;
}

}  // namespace agsc::map
