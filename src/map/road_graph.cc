#include "map/road_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace agsc::map {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

RoadGraph::RoadGraph(const RoadGraph& other)
    : nodes_(other.nodes_), edges_(other.edges_), incident_(other.incident_) {
  std::lock_guard<std::mutex> lock(other.cache_mutex_);
  cache_ = other.cache_;
  cache_ready_.store(other.cache_ready_.load(std::memory_order_acquire),
                     std::memory_order_release);
}

RoadGraph::RoadGraph(RoadGraph&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      edges_(std::move(other.edges_)),
      incident_(std::move(other.incident_)),
      cache_(std::move(other.cache_)) {
  cache_ready_.store(other.cache_ready_.load(std::memory_order_acquire),
                     std::memory_order_release);
  other.cache_ready_.store(false, std::memory_order_release);
}

RoadGraph& RoadGraph::operator=(const RoadGraph& other) {
  if (this == &other) return *this;
  nodes_ = other.nodes_;
  edges_ = other.edges_;
  incident_ = other.incident_;
  {
    std::lock_guard<std::mutex> lock(other.cache_mutex_);
    cache_ = other.cache_;
    cache_ready_.store(other.cache_ready_.load(std::memory_order_acquire),
                       std::memory_order_release);
  }
  return *this;
}

RoadGraph& RoadGraph::operator=(RoadGraph&& other) noexcept {
  if (this == &other) return *this;
  nodes_ = std::move(other.nodes_);
  edges_ = std::move(other.edges_);
  incident_ = std::move(other.incident_);
  cache_ = std::move(other.cache_);
  cache_ready_.store(other.cache_ready_.load(std::memory_order_acquire),
                     std::memory_order_release);
  other.cache_ready_.store(false, std::memory_order_release);
  return *this;
}

int RoadGraph::AddNode(const Point2& pos) {
  nodes_.push_back(pos);
  incident_.emplace_back();
  InvalidateCaches();
  return static_cast<int>(nodes_.size()) - 1;
}

int RoadGraph::AddEdge(int a, int b) {
  if (a < 0 || b < 0 || a >= NumNodes() || b >= NumNodes() || a == b) {
    throw std::invalid_argument("RoadGraph::AddEdge: bad endpoints");
  }
  Edge e;
  e.a = a;
  e.b = b;
  e.length = Distance(nodes_[a], nodes_[b]);
  edges_.push_back(e);
  const int id = static_cast<int>(edges_.size()) - 1;
  incident_[a].push_back(id);
  incident_[b].push_back(id);
  InvalidateCaches();
  return id;
}

void RoadGraph::InvalidateCaches() {
  cache_ready_.store(false, std::memory_order_release);
}

bool RoadGraph::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int eid : incident_[u]) {
      const Edge& e = edges_[eid];
      const int v = e.a == u ? e.b : e.a;
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == NumNodes();
}

Point2 RoadGraph::PointAt(const RoadPosition& pos) const {
  const Edge& e = edges_.at(pos.edge);
  return Lerp(nodes_[e.a], nodes_[e.b], std::clamp(pos.t, 0.0, 1.0));
}

RoadPosition RoadGraph::ProjectNaive(const Point2& p) const {
  if (edges_.empty()) {
    throw std::logic_error("RoadGraph::Project: graph has no edges");
  }
  RoadPosition best;
  double best_dist = kInf;
  for (int i = 0; i < NumEdges(); ++i) {
    const Edge& e = edges_[i];
    const double t = ClosestPointParamOnSegment(nodes_[e.a], nodes_[e.b], p);
    const double d = Distance(Lerp(nodes_[e.a], nodes_[e.b], t), p);
    if (d < best_dist) {
      best_dist = d;
      best.edge = i;
      best.t = t;
    }
  }
  return best;
}

RoadPosition RoadGraph::Project(const Point2& p) const {
  if (edges_.empty()) {
    throw std::logic_error("RoadGraph::Project: graph has no edges");
  }
  EnsureCaches();
  RoadPosition best;
  const int winner = cache_.edge_grid.Nearest(
      p,
      [&](int i) {
        const Edge& e = edges_[i];
        const double t =
            ClosestPointParamOnSegment(nodes_[e.a], nodes_[e.b], p);
        return Distance(Lerp(nodes_[e.a], nodes_[e.b], t), p);
      },
      nullptr);
  best.edge = winner;
  const Edge& e = edges_[winner];
  best.t = ClosestPointParamOnSegment(nodes_[e.a], nodes_[e.b], p);
  return best;
}

std::vector<double> RoadGraph::Dijkstra(int from, std::vector<int>* prev) const {
  std::vector<double> dist(nodes_.size(), kInf);
  if (prev != nullptr) prev->assign(nodes_.size(), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (int eid : incident_[u]) {
      const Edge& e = edges_[eid];
      const int v = e.a == u ? e.b : e.a;
      const double nd = d + e.length;
      if (nd < dist[v]) {
        dist[v] = nd;
        if (prev != nullptr) (*prev)[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  return dist;
}

void RoadGraph::BuildCache() const {
  const int n = NumNodes();
  RoutingCache& c = cache_;

  // CSR adjacency in incident_ iteration order.
  c.adj_start.assign(n + 1, 0);
  c.adj_node.clear();
  c.adj_len.clear();
  for (int u = 0; u < n; ++u) {
    for (int eid : incident_[u]) {
      const Edge& e = edges_[eid];
      c.adj_node.push_back(e.a == u ? e.b : e.a);
      c.adj_len.push_back(e.length);
    }
    c.adj_start[u + 1] = static_cast<int>(c.adj_node.size());
  }

  // Deduplicated min-length edge per adjacent node pair. Strict `<` with
  // first-wins over incident order keeps the lowest edge id among parallel
  // edges of equal length, matching the naive incident scans.
  c.nbr_start.assign(n + 1, 0);
  c.nbr_node.clear();
  c.nbr_min_edge.clear();
  c.nbr_min_len.clear();
  for (int u = 0; u < n; ++u) {
    const int begin = static_cast<int>(c.nbr_node.size());
    for (int eid : incident_[u]) {
      const Edge& e = edges_[eid];
      const int v = e.a == u ? e.b : e.a;
      int j = -1;
      for (int k = begin; k < static_cast<int>(c.nbr_node.size()); ++k) {
        if (c.nbr_node[k] == v) {
          j = k;
          break;
        }
      }
      if (j < 0) {
        c.nbr_node.push_back(v);
        c.nbr_min_edge.push_back(eid);
        c.nbr_min_len.push_back(e.length);
      } else if (e.length < c.nbr_min_len[j]) {
        c.nbr_min_edge[j] = eid;
        c.nbr_min_len[j] = e.length;
      }
    }
    c.nbr_start[u + 1] = static_cast<int>(c.nbr_node.size());
  }

  // All-pairs Dijkstra over the CSR adjacency. The relaxation sequence is
  // identical to the naive per-call Dijkstra (same heap type, same edge
  // order), so dist/prev rows are bit-identical to its results.
  c.dist.assign(static_cast<size_t>(n) * n, kInf);
  c.prev.assign(static_cast<size_t>(n) * n, -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (int s = 0; s < n; ++s) {
    double* dist = c.dist.data() + static_cast<size_t>(s) * n;
    int* prev = c.prev.data() + static_cast<size_t>(s) * n;
    dist[s] = 0.0;
    heap.emplace(0.0, s);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (int k = c.adj_start[u]; k < c.adj_start[u + 1]; ++k) {
        const int v = c.adj_node[k];
        const double nd = d + c.adj_len[k];
        if (nd < dist[v]) {
          dist[v] = nd;
          prev[v] = u;
          heap.emplace(nd, v);
        }
      }
    }
  }

  // Edge-bbox grid for Project.
  if (!nodes_.empty() && !edges_.empty()) {
    Rect bounds;
    bounds.min = bounds.max = nodes_[0];
    for (const Point2& p : nodes_) {
      bounds.min.x = std::min(bounds.min.x, p.x);
      bounds.min.y = std::min(bounds.min.y, p.y);
      bounds.max.x = std::max(bounds.max.x, p.x);
      bounds.max.y = std::max(bounds.max.y, p.y);
    }
    std::vector<Rect> boxes(edges_.size());
    for (size_t i = 0; i < edges_.size(); ++i) {
      const Edge& e = edges_[i];
      const Point2& a = nodes_[e.a];
      const Point2& b = nodes_[e.b];
      boxes[i].min = {std::min(a.x, b.x), std::min(a.y, b.y)};
      boxes[i].max = {std::max(a.x, b.x), std::max(a.y, b.y)};
    }
    const int cells = std::clamp(
        static_cast<int>(std::lround(std::sqrt(static_cast<double>(
            edges_.size())))),
        1, 64);
    c.edge_grid.Build(bounds, boxes, cells);
  } else {
    c.edge_grid = SegmentGrid();
  }
}

void RoadGraph::EnsureCaches() const {
  if (cache_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_ready_.load(std::memory_order_relaxed)) return;
  BuildCache();
  cache_ready_.store(true, std::memory_order_release);
}

double RoadGraph::RoutingCache::MinLen(int u, int v) const {
  for (int k = nbr_start[u]; k < nbr_start[u + 1]; ++k) {
    if (nbr_node[k] == v) return nbr_min_len[k];
  }
  return kInf;
}

int RoadGraph::RoutingCache::MinEdge(int u, int v) const {
  for (int k = nbr_start[u]; k < nbr_start[u + 1]; ++k) {
    if (nbr_node[k] == v) return nbr_min_edge[k];
  }
  return -1;
}

double RoadGraph::NodeDistanceNaive(int from, int to) const {
  if (from == to) return 0.0;
  return Dijkstra(from, nullptr)[to];
}

double RoadGraph::NodeDistance(int from, int to) const {
  if (from == to) return 0.0;
  EnsureCaches();
  return cache_.DistRow(from, NumNodes())[to];
}

std::vector<int> RoadGraph::NodePathNaive(int from, int to) const {
  std::vector<int> prev;
  const std::vector<double> dist = Dijkstra(from, &prev);
  if (dist[to] == kInf) return {};
  std::vector<int> path;
  for (int v = to; v != -1; v = prev[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;  // Starts at `from`, ends at `to`.
}

void RoadGraph::NodePathCached(int from, int to, std::vector<int>* out) const {
  out->clear();
  const int n = NumNodes();
  if (cache_.DistRow(from, n)[to] == kInf) return;
  const int* prev = cache_.PrevRow(from, n);
  for (int v = to; v != -1; v = prev[v]) out->push_back(v);
  std::reverse(out->begin(), out->end());  // Starts at `from`, ends at `to`.
}

double RoadGraph::PathDistanceNaive(const RoadPosition& from,
                                    const RoadPosition& to) const {
  if (!from.Valid() || !to.Valid()) return kInf;
  const Edge& ef = edges_.at(from.edge);
  const Edge& et = edges_.at(to.edge);
  double best = kInf;
  if (from.edge == to.edge) {
    best = std::fabs(to.t - from.t) * ef.length;
  }
  const std::vector<double> da = Dijkstra(ef.a, nullptr);
  const std::vector<double> db = Dijkstra(ef.b, nullptr);
  const double off_a = from.t * ef.length;          // from -> node a.
  const double off_b = (1.0 - from.t) * ef.length;  // from -> node b.
  const double to_a = to.t * et.length;             // node a2 -> to.
  const double to_b = (1.0 - to.t) * et.length;     // node b2 -> to.
  best = std::min(best, off_a + da[et.a] + to_a);
  best = std::min(best, off_a + da[et.b] + to_b);
  best = std::min(best, off_b + db[et.a] + to_a);
  best = std::min(best, off_b + db[et.b] + to_b);
  return best;
}

double RoadGraph::PathDistance(const RoadPosition& from,
                               const RoadPosition& to) const {
  if (!from.Valid() || !to.Valid()) return kInf;
  EnsureCaches();
  const int n = NumNodes();
  const Edge& ef = edges_.at(from.edge);
  const Edge& et = edges_.at(to.edge);
  double best = kInf;
  if (from.edge == to.edge) {
    best = std::fabs(to.t - from.t) * ef.length;
  }
  const double* da = cache_.DistRow(ef.a, n);
  const double* db = cache_.DistRow(ef.b, n);
  const double off_a = from.t * ef.length;          // from -> node a.
  const double off_b = (1.0 - from.t) * ef.length;  // from -> node b.
  const double to_a = to.t * et.length;             // node a2 -> to.
  const double to_b = (1.0 - to.t) * et.length;     // node b2 -> to.
  best = std::min(best, off_a + da[et.a] + to_a);
  best = std::min(best, off_a + da[et.b] + to_b);
  best = std::min(best, off_b + db[et.a] + to_a);
  best = std::min(best, off_b + db[et.b] + to_b);
  return best;
}

RoadPosition RoadGraph::MoveAlongImpl(const RoadPosition& from,
                                      const RoadPosition& to, double budget,
                                      double* moved, bool cached) const {
  if (moved != nullptr) *moved = 0.0;
  if (!from.Valid() || !to.Valid() || budget <= 0.0) return from;
  if (cached) EnsureCaches();
  const Edge& ef = edges_.at(from.edge);
  const Edge& et = edges_.at(to.edge);

  // Enumerate the four endpoint routings plus the same-edge direct route and
  // keep the shortest as a segment list.
  double best = kInf;
  std::vector<TravelSegment>& route = route_scratch_;
  route.clear();
  if (from.edge == to.edge) {
    best = std::fabs(to.t - from.t) * ef.length;
    route.push_back({from.edge, from.t, to.t});
  }
  struct Option {
    int exit_node;  // Node of `from.edge` we leave through.
    double exit_cost;
    int enter_node;  // Node of `to.edge` we arrive at.
    double enter_cost;
  };
  const Option options[] = {
      {ef.a, from.t * ef.length, et.a, to.t * et.length},
      {ef.a, from.t * ef.length, et.b, (1.0 - to.t) * et.length},
      {ef.b, (1.0 - from.t) * ef.length, et.a, to.t * et.length},
      {ef.b, (1.0 - from.t) * ef.length, et.b, (1.0 - to.t) * et.length},
  };
  std::vector<int> naive_nodes;
  for (const Option& opt : options) {
    const std::vector<int>* nodes_ptr;
    if (cached) {
      NodePathCached(opt.exit_node, opt.enter_node, &path_scratch_);
      nodes_ptr = &path_scratch_;
    } else {
      naive_nodes = NodePathNaive(opt.exit_node, opt.enter_node);
      nodes_ptr = &naive_nodes;
    }
    const std::vector<int>& nodes = *nodes_ptr;
    if (nodes.empty() && opt.exit_node != opt.enter_node) continue;
    double mid = 0.0;
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      const int u = nodes[i], v = nodes[i + 1];
      double step = kInf;
      if (cached) {
        step = std::min(step, cache_.MinLen(u, v));
      } else {
        for (int eid : incident_[u]) {
          const Edge& e = edges_[eid];
          const int other = e.a == u ? e.b : e.a;
          if (other == v) step = std::min(step, e.length);
        }
      }
      mid += step;
    }
    const double total = opt.exit_cost + mid + opt.enter_cost;
    if (total >= best) continue;
    best = total;
    route.clear();
    // Leave the starting edge toward exit_node.
    route.push_back({from.edge, from.t, opt.exit_node == ef.a ? 0.0 : 1.0});
    // Traverse intermediate edges.
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      const int u = nodes[i], v = nodes[i + 1];
      int best_eid = -1;
      if (cached) {
        best_eid = cache_.MinEdge(u, v);
      } else {
        for (int eid : incident_[u]) {
          const Edge& e = edges_[eid];
          const int other = e.a == u ? e.b : e.a;
          if (other != v) continue;
          if (best_eid < 0 || e.length < edges_[best_eid].length) {
            best_eid = eid;
          }
        }
      }
      route.push_back({best_eid, edges_[best_eid].a == u ? 0.0 : 1.0,
                       edges_[best_eid].a == u ? 1.0 : 0.0});
    }
    // Enter the target edge from enter_node.
    route.push_back({to.edge, opt.enter_node == et.a ? 0.0 : 1.0, to.t});
  }
  if (route.empty()) return from;  // Disconnected.

  // Walk the route consuming the budget.
  RoadPosition pos = from;
  double walked = 0.0;
  for (const TravelSegment& seg : route) {
    const double len = std::fabs(seg.t1 - seg.t0) * edges_[seg.edge].length;
    if (len <= 1e-12) {
      pos = {seg.edge, seg.t1};
      continue;
    }
    if (walked + len <= budget) {
      walked += len;
      pos = {seg.edge, seg.t1};
    } else {
      const double frac = (budget - walked) / len;
      walked = budget;
      pos = {seg.edge, seg.t0 + (seg.t1 - seg.t0) * frac};
      break;
    }
  }
  if (moved != nullptr) *moved = walked;
  return pos;
}

RoadPosition RoadGraph::MoveAlong(const RoadPosition& from,
                                  const RoadPosition& to, double budget,
                                  double* moved) const {
  return MoveAlongImpl(from, to, budget, moved, /*cached=*/true);
}

RoadPosition RoadGraph::MoveAlongNaive(const RoadPosition& from,
                                       const RoadPosition& to, double budget,
                                       double* moved) const {
  return MoveAlongImpl(from, to, budget, moved, /*cached=*/false);
}

RoadPosition RoadGraph::MoveToward(const RoadPosition& from,
                                   const Point2& target, double budget,
                                   double* moved) const {
  return MoveAlong(from, Project(target), budget, moved);
}

RoadPosition RoadGraph::MoveTowardNaive(const RoadPosition& from,
                                        const Point2& target, double budget,
                                        double* moved) const {
  return MoveAlongNaive(from, ProjectNaive(target), budget, moved);
}

double RoadGraph::TotalLength() const {
  double total = 0.0;
  for (const Edge& e : edges_) total += e.length;
  return total;
}

}  // namespace agsc::map
