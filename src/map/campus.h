#ifndef AGSC_MAP_CAMPUS_H_
#define AGSC_MAP_CAMPUS_H_

#include <string>
#include <vector>

#include "map/road_graph.h"

namespace agsc::map {

/// Which of the paper's two evaluation campuses to synthesize.
enum class CampusId { kPurdue, kNcsu };

/// Returns "Purdue" / "NCSU".
std::string CampusName(CampusId id);

/// A synthetic campus: task-area bounds, a road network for UGVs, landmark
/// attractors that shape student mobility (and hence the PoI distribution),
/// and the common start point of all UVs.
///
/// This substitutes the paper's Google-Maps-marked Purdue/NCSU campuses; see
/// DESIGN.md ("Dataset substitution") for why the substitution preserves the
/// relevant behaviour.
struct Campus {
  std::string name;
  Rect bounds;
  RoadGraph roads;
  std::vector<Point2> landmarks;
  Point2 spawn;        // All UVs start here (paper Section VI-B).
  int num_traces = 0;  // Paper: Purdue 59 student traces, NCSU 33.
};

/// Builds the synthetic Purdue campus: 2000 m x 2000 m, dense near-regular
/// road grid, 12 clustered landmarks, 59 student traces.
Campus BuildPurdueCampus();

/// Builds the synthetic NCSU campus: 3000 m x 3000 m ("bigger campus"),
/// sparser irregular road network, 10 spread-out landmarks, 33 traces.
Campus BuildNcsuCampus();

/// Dispatches on `id`.
Campus BuildCampus(CampusId id);

}  // namespace agsc::map

#endif  // AGSC_MAP_CAMPUS_H_
