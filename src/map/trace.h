#ifndef AGSC_MAP_TRACE_H_
#define AGSC_MAP_TRACE_H_

#include <vector>

#include "map/campus.h"

namespace agsc::map {

/// Parameters of the synthetic student-mobility model (landmark-biased
/// random waypoint). Substitutes the CRAWDAD Purdue/NCSU GPS trace sets.
struct TraceConfig {
  int num_steps = 2000;          // Sampled positions per student.
  double step_meters = 80.0;     // Walk distance per sample (~1.3 m/s @ 60s).
  double landmark_prob = 0.75;   // P(next waypoint near a landmark).
  double landmark_sigma = 60.0;  // Gaussian spread around the landmark.
  double dwell_prob = 0.55;      // P(stay put this step once arrived).
  uint64_t seed = 42;
};

/// One student's sampled positions over time.
using Trace = std::vector<Point2>;

/// Generates `campus.num_traces` student traces inside the campus bounds.
std::vector<Trace> GenerateTraces(const Campus& campus,
                                  const TraceConfig& config);

/// Extracts the `count` most-frequently-visited grid cells (cell side
/// `cell_meters`) as PoI locations, mirroring the paper's "100 most
/// frequently visited PoIs" extraction. The PoI position is the centroid of
/// the visits falling in the cell. Deterministic given the traces.
std::vector<Point2> ExtractPois(const Campus& campus,
                                const std::vector<Trace>& traces, int count,
                                double cell_meters = 60.0);

/// A ready-to-use evaluation dataset: campus + PoIs.
struct Dataset {
  Campus campus;
  std::vector<Point2> pois;
};

/// Builds the full dataset for a campus with `num_pois` PoIs (paper: 100).
Dataset BuildDataset(CampusId id, int num_pois = 100);

}  // namespace agsc::map

#endif  // AGSC_MAP_TRACE_H_
