#ifndef AGSC_NN_AUTOGRAD_H_
#define AGSC_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace agsc::nn {

namespace internal {

/// One node of the dynamically-built computation graph. Users interact with
/// `Variable`; nodes are reference-counted so a graph lives as long as any
/// variable referencing it.
struct Node {
  Tensor value;
  Tensor grad;                 // Same shape as value; lazily allocated.
  bool requires_grad = false;  // True for parameters and anything downstream.
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this node's grad into its parents' grads.
  std::function<void(Node&)> backward_fn;
  std::string op_name;  // For error messages / debugging.

  void EnsureGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
      grad = Tensor(value.rows(), value.cols());
    }
  }
};

}  // namespace internal

/// Handle to a node in the autograd graph.
///
/// A `Variable` either wraps a *parameter* / *constant* leaf or the result of
/// an op in `nn/ops.h`. Calling `Backward()` on a scalar variable runs
/// reverse-mode differentiation and *accumulates* gradients into every
/// reachable parameter's `grad()` (so gradients from several losses add up
/// until `Optimizer::ZeroGrad` clears them).
class Variable {
 public:
  /// Null variable; most operations on it throw.
  Variable() = default;

  /// Creates a trainable leaf (participates in gradients).
  static Variable Parameter(Tensor value);

  /// Creates a non-trainable leaf (no gradient flows into it).
  static Variable Constant(Tensor value);

  /// True if this variable wraps a node.
  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  Tensor& mutable_value();
  /// Accumulated gradient. Allocated (zero) on first access.
  Tensor& grad();
  bool requires_grad() const;

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Runs reverse-mode autodiff from this variable, which must be a 1x1
  /// scalar. Seeds d(this)/d(this)=1 and accumulates into leaf grads.
  void Backward() const;

  /// As Backward() but with an explicit seed gradient (same shape as value).
  void Backward(const Tensor& seed) const;

  /// Returns a constant leaf sharing this variable's current value
  /// (cuts the graph; no gradient flows through the result).
  Variable Detach() const;

  /// Sets this parameter's gradient to zero (allocating if needed).
  void ZeroGrad();

  /// Internal: wraps an op-produced node.
  static Variable FromNode(std::shared_ptr<internal::Node> node);
  const std::shared_ptr<internal::Node>& node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

}  // namespace agsc::nn

#endif  // AGSC_NN_AUTOGRAD_H_
