#ifndef AGSC_NN_SERIALIZE_H_
#define AGSC_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/autograd.h"

namespace agsc::nn {

// ---------------------------------------------------------------------------
// v1 flat parameter files ("AGSCNN01") — kept for backward compatibility.
// ---------------------------------------------------------------------------

/// Writes `params` (shapes + row-major float data) to a binary file.
/// Format: magic "AGSCNN01", count, then per tensor {rows, cols, data}.
/// Returns false on I/O failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& params);

/// Loads parameters saved by SaveParameters into `params` *in place*:
/// the file must contain the same number of tensors with matching shapes.
/// The load is all-or-nothing: on any I/O failure or shape/count mismatch
/// it returns false and leaves every parameter untouched.
bool LoadParameters(const std::string& path, std::vector<Variable>& params);

/// Copies parameter values from `src` into `dst` (shapes must match).
void CopyParameters(const std::vector<Variable>& src,
                    std::vector<Variable>& dst);

/// Snapshots current parameter values (used by PPO for pi_old).
std::vector<Tensor> SnapshotParameters(const std::vector<Variable>& params);

/// Restores a snapshot taken by SnapshotParameters.
void RestoreParameters(const std::vector<Tensor>& snapshot,
                       std::vector<Variable>& params);

// ---------------------------------------------------------------------------
// v2 checkpoint files ("AGSCNN02") — crash-safe, checksummed, sectioned.
//
// Layout (little-endian):
//   magic "AGSCNN02"                                 8 bytes
//   fingerprint                                      u64
//   section_count                                    u32
//   per section:
//     name_len, name bytes                           u32 + bytes
//     word_count, words                              u32 + u64 each
//     tensor_count, per tensor {rows, cols, data}    u32 + (i32,i32,f32...)
//   crc32 over everything above                      u32
//
// The fingerprint is an arbitrary caller-chosen architecture hash; loaders
// compare it against their own and reject mismatches loudly. The trailing
// CRC-32 detects truncation and bit corruption. Writes go through
// util::AtomicWriteFile (tmp + fsync + rename) so a crash mid-save never
// destroys the previous checkpoint.
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE reflected polynomial 0xEDB88320) over `len` bytes. Pass the
/// previous return value as `seed` to checksum data in chunks.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// One named group of raw 64-bit words and tensors inside a checkpoint.
struct CheckpointSection {
  std::string name;
  std::vector<uint64_t> words;
  std::vector<Tensor> tensors;
};

/// In-memory image of a v2 checkpoint file.
struct Checkpoint {
  uint64_t fingerprint = 0;
  std::vector<CheckpointSection> sections;

  /// Appends an empty section and returns it.
  CheckpointSection& AddSection(const std::string& name);

  /// Returns the section called `name`, or nullptr if absent.
  const CheckpointSection* Find(const std::string& name) const;
};

/// Outcome of reading a v2 checkpoint. Everything except kOk means the file
/// must not be trusted; kBadChecksum covers truncation and bit corruption.
enum class CheckpointError {
  kOk,
  kIoError,       ///< File missing or unreadable.
  kBadMagic,      ///< Not an AGSCNN02 file.
  kBadChecksum,   ///< CRC mismatch: truncated or corrupted payload.
  kBadFormat,     ///< Structurally invalid payload despite a valid CRC.
};

/// Human-readable name of `error` for log messages.
const char* CheckpointErrorString(CheckpointError error);

/// Serializes `checkpoint` to its byte representation (CRC included).
std::string EncodeCheckpoint(const Checkpoint& checkpoint);

/// Parses and validates bytes produced by EncodeCheckpoint.
CheckpointError DecodeCheckpoint(const std::string& bytes, Checkpoint& out);

/// Encodes `checkpoint` and writes it crash-safely via AtomicWriteFile.
/// Returns false on I/O failure; the previous file (if any) survives.
bool SaveCheckpointFile(const std::string& path, const Checkpoint& checkpoint);

/// Reads `path`, validating magic and CRC before any contents are used.
CheckpointError LoadCheckpointFile(const std::string& path, Checkpoint& out);

/// Reads just the 8-byte magic of `path` ("AGSCNN01"/"AGSCNN02"/...).
/// Returns an empty string if the file cannot be read.
std::string ReadFileMagic(const std::string& path);

}  // namespace agsc::nn

#endif  // AGSC_NN_SERIALIZE_H_
