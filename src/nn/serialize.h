#ifndef AGSC_NN_SERIALIZE_H_
#define AGSC_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/autograd.h"

namespace agsc::nn {

/// Writes `params` (shapes + row-major float data) to a binary file.
/// Format: magic "AGSCNN01", count, then per tensor {rows, cols, data}.
/// Returns false on I/O failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& params);

/// Loads parameters saved by SaveParameters into `params` *in place*:
/// the file must contain the same number of tensors with matching shapes.
/// Returns false on I/O failure or shape/count mismatch.
bool LoadParameters(const std::string& path, std::vector<Variable>& params);

/// Copies parameter values from `src` into `dst` (shapes must match).
void CopyParameters(const std::vector<Variable>& src,
                    std::vector<Variable>& dst);

/// Snapshots current parameter values (used by PPO for pi_old).
std::vector<Tensor> SnapshotParameters(const std::vector<Variable>& params);

/// Restores a snapshot taken by SnapshotParameters.
void RestoreParameters(const std::vector<Tensor>& snapshot,
                       std::vector<Variable>& params);

}  // namespace agsc::nn

#endif  // AGSC_NN_SERIALIZE_H_
