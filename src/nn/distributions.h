#ifndef AGSC_NN_DISTRIBUTIONS_H_
#define AGSC_NN_DISTRIBUTIONS_H_

#include <vector>

#include "nn/ops.h"
#include "util/rng.h"

namespace agsc::nn {

/// Batched diagonal Gaussian policy head N(mean, diag(exp(log_std))^2).
///
/// `mean` is an NxD graph variable (actor output); `log_std` is a 1xD
/// trainable parameter broadcast over the batch. Sampling happens outside
/// the graph (values only); log-probabilities and entropy are differentiable
/// graph expressions, which is exactly what PPO needs.
class DiagGaussian {
 public:
  DiagGaussian(Variable mean, Variable log_std);

  /// Draws one action per row; returns an NxD tensor (no graph).
  Tensor Sample(util::Rng& rng) const;

  /// Draws one action per row, row r using `rngs[r]` (no graph). Rows are
  /// sampled in index order, so each row's draw sequence depends only on
  /// its own generator — this is what lets the vectorized sampler batch
  /// actor forwards across rollout workers while every worker keeps a
  /// private, scheduling-independent RNG stream. `rngs.size()` must equal
  /// the batch row count.
  Tensor SamplePerRow(const std::vector<util::Rng*>& rngs) const;

  /// Returns the deterministic mode (= mean values, no graph).
  Tensor Mode() const;

  /// Differentiable log p(actions) -> Nx1 column.
  Variable LogProb(const Tensor& actions) const;

  /// Differentiable mean entropy per sample -> 1x1 scalar
  /// (H = sum_d log_std_d + D/2 (1 + log 2 pi)).
  Variable Entropy() const;

  const Variable& mean() const { return mean_; }
  const Variable& log_std() const { return log_std_; }
  int dims() const { return mean_.cols(); }

 private:
  Variable mean_;     // N x D.
  Variable log_std_;  // 1 x D parameter.
};

/// Batched categorical distribution over logits (row-wise).
class CategoricalDist {
 public:
  explicit CategoricalDist(Variable logits);

  /// Draws one class index per row.
  std::vector<int> Sample(util::Rng& rng) const;

  /// Argmax class per row.
  std::vector<int> Mode() const;

  /// Differentiable log p(labels) -> Nx1 column.
  Variable LogProb(const std::vector<int>& labels) const;

  /// Differentiable mean entropy -> 1x1 scalar.
  Variable Entropy() const;

  /// Softmax probabilities (values only, no graph).
  Tensor Probabilities() const;

  const Variable& logits() const { return logits_; }

 private:
  Variable logits_;
};

}  // namespace agsc::nn

#endif  // AGSC_NN_DISTRIBUTIONS_H_
