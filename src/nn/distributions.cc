#include "nn/distributions.h"

#include <cmath>
#include <stdexcept>

namespace agsc::nn {

namespace {
constexpr float kLogTwoPi = 1.8378770664093453f;  // log(2*pi)
}  // namespace

DiagGaussian::DiagGaussian(Variable mean, Variable log_std)
    : mean_(std::move(mean)), log_std_(std::move(log_std)) {
  if (log_std_.rows() != 1 || log_std_.cols() != mean_.cols()) {
    throw std::invalid_argument("DiagGaussian: log_std must be 1 x D");
  }
}

Tensor DiagGaussian::Sample(util::Rng& rng) const {
  Tensor out = mean_.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      const float sigma = std::exp(log_std_.value()(0, c));
      out(r, c) += sigma * static_cast<float>(rng.Gaussian());
    }
  }
  return out;
}

Tensor DiagGaussian::SamplePerRow(const std::vector<util::Rng*>& rngs) const {
  Tensor out = mean_.value();
  if (static_cast<int>(rngs.size()) != out.rows()) {
    throw std::invalid_argument(
        "DiagGaussian::SamplePerRow: one rng per row required");
  }
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      const float sigma = std::exp(log_std_.value()(0, c));
      out(r, c) += sigma * static_cast<float>(rngs[r]->Gaussian());
    }
  }
  return out;
}

Tensor DiagGaussian::Mode() const { return mean_.value(); }

Variable DiagGaussian::LogProb(const Tensor& actions) const {
  if (actions.rows() != mean_.rows() || actions.cols() != mean_.cols()) {
    throw std::invalid_argument("DiagGaussian::LogProb: shape mismatch");
  }
  // z = (a - mean) * exp(-log_std); per-dim logp = -0.5 z^2 - log_std -
  // 0.5 log(2 pi); total = row sum.
  Variable a = Variable::Constant(actions);
  Variable diff = Sub(a, mean_);
  Variable inv_sigma = Exp(Neg(log_std_));
  Variable z = MulRowVector(diff, inv_sigma);
  Variable per_dim = SquareScale(z, -0.5f);
  per_dim = AddRowVector(per_dim, Neg(log_std_));
  per_dim = ScalarAdd(per_dim, -0.5f * kLogTwoPi);
  return RowSum(per_dim);
}

Variable DiagGaussian::Entropy() const {
  const float d = static_cast<float>(dims());
  return ScalarAdd(Sum(log_std_), 0.5f * d * (1.0f + kLogTwoPi));
}

CategoricalDist::CategoricalDist(Variable logits)
    : logits_(std::move(logits)) {}

Tensor CategoricalDist::Probabilities() const {
  const Tensor& l = logits_.value();
  Tensor p(l.rows(), l.cols());
  for (int r = 0; r < l.rows(); ++r) {
    float mx = l(r, 0);
    for (int c = 1; c < l.cols(); ++c) mx = std::max(mx, l(r, c));
    double denom = 0.0;
    for (int c = 0; c < l.cols(); ++c) {
      p(r, c) = std::exp(l(r, c) - mx);
      denom += p(r, c);
    }
    for (int c = 0; c < l.cols(); ++c) {
      p(r, c) = static_cast<float>(p(r, c) / denom);
    }
  }
  return p;
}

std::vector<int> CategoricalDist::Sample(util::Rng& rng) const {
  Tensor p = Probabilities();
  std::vector<int> out(p.rows());
  for (int r = 0; r < p.rows(); ++r) {
    double target = rng.Uniform();
    int pick = p.cols() - 1;
    for (int c = 0; c < p.cols(); ++c) {
      target -= p(r, c);
      if (target < 0.0) {
        pick = c;
        break;
      }
    }
    out[r] = pick;
  }
  return out;
}

std::vector<int> CategoricalDist::Mode() const {
  const Tensor& l = logits_.value();
  std::vector<int> out(l.rows());
  for (int r = 0; r < l.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < l.cols(); ++c) {
      if (l(r, c) > l(r, best)) best = c;
    }
    out[r] = best;
  }
  return out;
}

Variable CategoricalDist::LogProb(const std::vector<int>& labels) const {
  return PickPerRow(LogSoftmax(logits_), labels);
}

Variable CategoricalDist::Entropy() const { return SoftmaxEntropy(logits_); }

}  // namespace agsc::nn
