#include "nn/autograd.h"

#include <stdexcept>
#include <unordered_set>

namespace agsc::nn {

Variable Variable::Parameter(Tensor value) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->op_name = "parameter";
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Variable::Constant(Tensor value) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  node->op_name = "constant";
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

const Tensor& Variable::value() const {
  if (!node_) throw std::logic_error("Variable::value on null variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  if (!node_) throw std::logic_error("Variable::mutable_value on null");
  return node_->value;
}

Tensor& Variable::grad() {
  if (!node_) throw std::logic_error("Variable::grad on null variable");
  node_->EnsureGrad();
  return node_->grad;
}

bool Variable::requires_grad() const {
  return node_ != nullptr && node_->requires_grad;
}

namespace {

void TopoSort(internal::Node* root,
              std::vector<internal::Node*>& order,
              std::unordered_set<internal::Node*>& visited) {
  // Iterative post-order DFS (graphs can be deep for long rollouts).
  struct Frame {
    internal::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      internal::Node* parent = top.node->parents[top.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() const {
  if (!node_) throw std::logic_error("Backward on null variable");
  if (node_->value.size() != 1) {
    throw std::logic_error("Backward() without seed requires a scalar; got " +
                           node_->value.ShapeString());
  }
  Tensor seed(1, 1);
  seed[0] = 1.0f;
  Backward(seed);
}

void Variable::Backward(const Tensor& seed) const {
  if (!node_) throw std::logic_error("Backward on null variable");
  if (!node_->requires_grad) return;  // Nothing reachable needs gradients.
  if (seed.rows() != node_->value.rows() ||
      seed.cols() != node_->value.cols()) {
    throw std::invalid_argument("Backward: seed shape mismatch");
  }
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  TopoSort(node_.get(), order, visited);
  node_->EnsureGrad();
  node_->grad.AddInPlace(seed);
  // `order` is post-order (leaves first); iterate in reverse so each node's
  // grad is complete before it is pushed to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* n = *it;
    if (n->backward_fn) {
      n->EnsureGrad();
      n->backward_fn(*n);
    }
  }
}

Variable Variable::Detach() const {
  return Constant(value());
}

void Variable::ZeroGrad() {
  if (!node_) return;
  node_->EnsureGrad();
  node_->grad.Fill(0.0f);
}

}  // namespace agsc::nn
