#ifndef AGSC_NN_OPS_H_
#define AGSC_NN_OPS_H_

#include <vector>

#include "nn/autograd.h"

namespace agsc::nn {

// Differentiable operations over `Variable`. Every op returns a new variable
// whose node records how to push gradients into its inputs. Shapes follow the
// convention rows = batch, cols = features.

/// Hidden-layer nonlinearity selector (shared by layers.h and the fused
/// LinearActivate op).
enum class Activation { kNone, kRelu, kTanh, kSigmoid };

/// C = A x B (matrix product).
Variable MatMul(const Variable& a, const Variable& b);

/// Elementwise A + B (same shape).
Variable Add(const Variable& a, const Variable& b);

/// Elementwise A - B (same shape).
Variable Sub(const Variable& a, const Variable& b);

/// Elementwise A * B (Hadamard, same shape).
Variable Mul(const Variable& a, const Variable& b);

/// -A.
Variable Neg(const Variable& a);

/// A * s (scalar).
Variable ScalarMul(const Variable& a, float s);

/// A + s (scalar, elementwise).
Variable ScalarAdd(const Variable& a, float s);

/// out[r,c] = m[r,c] + v[0,c]; v is a 1xC row vector broadcast over rows.
Variable AddRowVector(const Variable& m, const Variable& v);

/// out[r,c] = m[r,c] * v[0,c]; v is a 1xC row vector broadcast over rows.
Variable MulRowVector(const Variable& m, const Variable& v);

/// Elementwise exp.
Variable Exp(const Variable& a);

/// Elementwise natural log (inputs must be positive).
Variable Log(const Variable& a);

/// Elementwise tanh.
Variable Tanh(const Variable& a);

/// Elementwise max(x, 0).
Variable Relu(const Variable& a);

/// Elementwise logistic sigmoid.
Variable Sigmoid(const Variable& a);

/// Elementwise x^2.
Variable Square(const Variable& a);

/// Elementwise clamp to [lo, hi]; gradient is zero outside the interval.
Variable Clamp(const Variable& a, float lo, float hi);

/// Elementwise min(A, B); gradient routes to the smaller input (ties -> A).
Variable Minimum(const Variable& a, const Variable& b);

/// Elementwise max(A, B); gradient routes to the larger input (ties -> A).
Variable Maximum(const Variable& a, const Variable& b);

/// Sum of all elements -> 1x1.
Variable Sum(const Variable& a);

/// Mean of all elements -> 1x1.
Variable Mean(const Variable& a);

/// Row-wise sum -> Rx1.
Variable RowSum(const Variable& a);

/// Horizontal concatenation [A | B] (same row count).
Variable ConcatCols(const Variable& a, const Variable& b);

/// Column slice A[:, start : start+count]; backward scatters into the
/// sliced region only.
Variable SliceCols(const Variable& a, int start, int count);

/// Row-wise softmax (numerically stabilized).
Variable Softmax(const Variable& logits);

/// Row-wise log-softmax (numerically stabilized).
Variable LogSoftmax(const Variable& logits);

/// out[r,0] = m[r, indices[r]]. Used for NLL losses.
Variable PickPerRow(const Variable& m, const std::vector<int>& indices);

/// Mean negative log likelihood of integer `labels` under row-wise
/// softmax(logits) -> 1x1. Equivalent to cross-entropy with one-hot targets.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels);

/// Mean (over rows) Shannon entropy of row-wise softmax(logits) -> 1x1.
/// This is CrossEntropy(p, p) in the i-EOI regularizer (Eqn. 21).
Variable SoftmaxEntropy(const Variable& logits);

/// Mean squared error between `pred` and constant `target` -> 1x1.
Variable MseLoss(const Variable& pred, const Tensor& target);

// Fused ops. Each is bit-exact equivalent to the op chain it replaces (same
// elementwise operations in the same order on the same intermediate values)
// but builds one graph node instead of several — fewer allocations, fewer
// passes over the data. nn_kernel_test asserts the bit-equivalence.

/// act(m x w + b) in a single node; equivalent to
/// Activate(AddRowVector(MatMul(m, w), b), act). `w` is KxN, `b` is 1xN.
Variable LinearActivate(const Variable& m, const Variable& w,
                        const Variable& b, Activation act);

/// Values-only act(m x w + b): the inference entry point behind the graph
/// op above — LinearActivate computes its forward value through this exact
/// function, so a no-graph forward (serving, evaluation) is bit-identical
/// to Forward(x).value() by construction. `m` is RxK, `w` KxN, `b` 1xN.
Tensor LinearActivateValue(const Tensor& m, const Tensor& w, const Tensor& b,
                           Activation act);

/// Elementwise a + s*b (same shape); equivalent to Add(a, ScalarMul(b, s)).
Variable AddScaled(const Variable& a, const Variable& b, float s);

/// Elementwise s * a^2; equivalent to ScalarMul(Square(a), s).
Variable SquareScale(const Variable& a, float s);

}  // namespace agsc::nn

#endif  // AGSC_NN_OPS_H_
