#include "nn/tensor.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace agsc::nn {

Tensor::Tensor(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0.0f) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative tensor dim");
}

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative tensor dim");
}

Tensor Tensor::RowVector(const std::vector<float>& values) {
  Tensor t(1, static_cast<int>(values.size()));
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::ColVector(const std::vector<float>& values) {
  Tensor t(static_cast<int>(values.size()), 1);
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t(1, 1);
  t[0] = value;
  return t;
}

Tensor Tensor::FromRowMajor(int rows, int cols,
                            const std::vector<float>& values) {
  if (static_cast<size_t>(rows) * cols != values.size()) {
    throw std::invalid_argument("FromRowMajor: size mismatch");
  }
  Tensor t(rows, cols);
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::Randn(int rows, int cols, util::Rng& rng, float stddev) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Gaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::Uniform(int rows, int cols, util::Rng& rng, float lo,
                       float hi) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::Transposed() const {
  Tensor out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Tensor Tensor::Row(int r) const {
  Tensor out(1, cols_);
  std::memcpy(out.data(), data_.data() + static_cast<size_t>(r) * cols_,
              cols_ * sizeof(float));
  return out;
}

void Tensor::AddInPlace(const Tensor& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("AddInPlace: shape mismatch " + ShapeString() +
                                " vs " + other.ShapeString());
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float factor) {
  for (float& x : data_) x *= factor;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  return data_.empty() ? 0.0f : Sum() / static_cast<float>(data_.size());
}

float Tensor::AbsMax() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

float Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

bool Tensor::SameAs(const Tensor& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

std::string Tensor::ShapeString() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("MatMul: inner dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    float* crow = c.data() + static_cast<size_t>(i) * n;
    const float* arow = a.data() + static_cast<size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.data() + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("MatMulTransposedB: dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.data() + static_cast<size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = b.data() + static_cast<size_t>(j) * k;
      double s = 0.0;
      for (int p = 0; p < k; ++p) s += static_cast<double>(arow[p]) * brow[p];
      c(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("MatMulTransposedA: dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  Tensor c(a.cols(), b.cols());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.data() + static_cast<size_t>(p) * m;
    const float* brow = b.data() + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace agsc::nn
