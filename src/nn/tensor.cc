#include "nn/tensor.h"

// This translation unit must be compiled with floating-point contraction
// disabled (-ffp-contract=off, set in src/nn/CMakeLists.txt): the blocked
// kernels are bit-exact against the naive references only if the compiler
// never fuses their mul+add chains into FMAs. The avx512 tile additionally
// pins fp-contract=off at function level because its target attribute
// enables FMA hardware.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/thread_pool.h"

namespace agsc::nn {

// ---------------------------------------------------------------------------
// Thread-local buffer pool
//
// Tensor element storage cycles at graph-node frequency during training —
// every op result, every gradient, every minibatch slice. The pool keeps
// freed vectors in per-thread power-of-two size classes so steady-state
// training performs no heap traffic for tensor data: an optimize epoch is
// O(1) heap allocations after warm-up (asserted in nn_kernel_test).
//
// Determinism: pooling only recycles capacity; every acquired buffer is
// fully overwritten via assign(), so values never depend on pool state.
// ---------------------------------------------------------------------------

namespace {

// Sanitizer builds keep the instrumented allocator in the loop: pooling
// would otherwise mask use-after-free at the exact layer these builds exist
// to check.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kPoolCompiledIn = false;
#else
constexpr bool kPoolCompiledIn = true;
#endif

constexpr int kNumBuckets = 25;  // size classes 2^0 .. 2^24 floats (64 MiB)
constexpr std::size_t kMaxPooledFloats = std::size_t{1} << (kNumBuckets - 1);
constexpr std::size_t kMaxPerBucket = 64;

int CeilLog2(std::size_t n) {  // n >= 1
  return std::bit_width(n - 1);
}

int FloorLog2(std::size_t n) {  // n >= 1
  return std::bit_width(n) - 1;
}

// Kept outside BufferPool (and trivially destructible) so ReleaseBuffer can
// tell the pool has been torn down regardless of the order thread_local
// destructors run in during thread exit.
thread_local bool t_pool_alive = false;

struct BufferPool {
  std::vector<std::vector<float>> buckets[kNumBuckets];
  internal::BufferPoolStats stats;
  BufferPool() { t_pool_alive = true; }
  ~BufferPool() { t_pool_alive = false; }
};

BufferPool& GetPool() {
  thread_local BufferPool pool;
  return pool;
}

}  // namespace

namespace internal {

bool BufferPoolEnabled() { return kPoolCompiledIn; }

BufferPoolStats GetBufferPoolStats() { return GetPool().stats; }

std::vector<float> AcquireBuffer(std::size_t n, float fill) {
  if (n == 0) return {};
  BufferPool& pool = GetPool();
  ++pool.stats.acquires;
  if (kPoolCompiledIn && n <= kMaxPooledFloats) {
    auto& bucket = pool.buckets[CeilLog2(n)];
    if (!bucket.empty()) {
      std::vector<float> buf = std::move(bucket.back());
      bucket.pop_back();
      ++pool.stats.pool_hits;
      buf.assign(n, fill);  // capacity >= 2^ceil_log2(n) >= n: no realloc
      return buf;
    }
  }
  ++pool.stats.heap_allocs;
  std::vector<float> buf;
  if (kPoolCompiledIn && n <= kMaxPooledFloats) {
    // Reserve the full size class so this buffer satisfies any later
    // request that maps to the same bucket.
    buf.reserve(std::size_t{1} << CeilLog2(n));
  }
  buf.assign(n, fill);
  return buf;
}

void ReleaseBuffer(std::vector<float>&& buffer) noexcept {
  if (!kPoolCompiledIn || !t_pool_alive) return;
  const std::size_t cap = buffer.capacity();
  if (cap == 0 || cap > kMaxPooledFloats) return;
  auto& bucket = GetPool().buckets[FloorLog2(cap)];
  if (bucket.size() >= kMaxPerBucket) return;
  try {
    bucket.push_back(std::move(buffer));
  } catch (...) {
    // Free-list growth failed; just let the buffer die.
  }
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Tensor value semantics over pooled storage
// ---------------------------------------------------------------------------

Tensor::Tensor(int rows, int cols, float fill) : rows_(rows), cols_(cols) {
  // Validate before sizing any storage: a negative dim must throw, not
  // attempt a static_cast<size_t>(-1)-scale allocation.
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument("negative tensor dim");
  }
  data_ = internal::AcquireBuffer(static_cast<std::size_t>(rows) * cols, fill);
}

Tensor::Tensor(const Tensor& other) : rows_(other.rows_), cols_(other.cols_) {
  data_ = internal::AcquireBuffer(other.data_.size(), 0.0f);
  if (!data_.empty()) {
    std::memcpy(data_.data(), other.data_.data(),
                data_.size() * sizeof(float));
  }
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    Tensor tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    internal::ReleaseBuffer(std::move(data_));
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
  }
  return *this;
}

Tensor::~Tensor() { internal::ReleaseBuffer(std::move(data_)); }

Tensor Tensor::RowVector(const std::vector<float>& values) {
  Tensor t(1, static_cast<int>(values.size()));
  if (!values.empty()) {
    std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  }
  return t;
}

Tensor Tensor::ColVector(const std::vector<float>& values) {
  Tensor t(static_cast<int>(values.size()), 1);
  if (!values.empty()) {
    std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  }
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t(1, 1);
  t[0] = value;
  return t;
}

Tensor Tensor::FromRowMajor(int rows, int cols,
                            const std::vector<float>& values) {
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument("negative tensor dim");
  }
  if (static_cast<std::size_t>(rows) * cols != values.size()) {
    throw std::invalid_argument("FromRowMajor: size mismatch");
  }
  Tensor t(rows, cols);
  if (!values.empty()) {
    std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  }
  return t;
}

Tensor Tensor::Randn(int rows, int cols, util::Rng& rng, float stddev) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Gaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::Uniform(int rows, int cols, util::Rng& rng, float lo,
                       float hi) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::Transposed() const {
  Tensor out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Tensor Tensor::Row(int r) const {
  if (r < 0 || r >= rows_) {
    throw std::out_of_range("Tensor::Row: index " + std::to_string(r) +
                            " out of range for " + ShapeString());
  }
  Tensor out(1, cols_);
  if (cols_ > 0) {
    std::memcpy(out.data(), data_.data() + static_cast<std::size_t>(r) * cols_,
                cols_ * sizeof(float));
  }
  return out;
}

void Tensor::AddInPlace(const Tensor& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("AddInPlace: shape mismatch " + ShapeString() +
                                " vs " + other.ShapeString());
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float factor) {
  for (float& x : data_) x *= factor;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  return data_.empty() ? 0.0f : Sum() / static_cast<float>(data_.size());
}

float Tensor::AbsMax() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

float Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

bool Tensor::SameAs(const Tensor& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         std::equal(data_.begin(), data_.end(), other.data_.begin());
}

std::string Tensor::ShapeString() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_);
}

// ---------------------------------------------------------------------------
// GEMM kernels
//
// Determinism contract: every kernel — naive, blocked (any ISA variant,
// full tile or scalar edge), serial or row-partitioned parallel — computes
// each output element C[i][j] through one accumulation chain in ascending-p
// order, starting from 0. Nothing ever splits or reorders a chain, so the
// result bits are identical for every (kernel, tile, thread-count) choice.
// MatMul / MatMulTransposedA accumulate in float; MatMulTransposedB
// accumulates each dot product in double, exactly as the naive reference.
// ---------------------------------------------------------------------------

namespace internal {

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("MatMul: inner dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    float* crow = c.data() + static_cast<std::size_t>(i) * n;
    const float* arow = a.data() + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      // No zero-skip here: 0 * NaN must stay NaN so diverging weights are
      // visible to the divergence guard instead of being masked by a zero
      // activation.
      const float av = arow[p];
      const float* brow = b.data() + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor NaiveMatMulTransposedB(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("MatMulTransposedB: dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.data() + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = b.data() + static_cast<std::size_t>(j) * k;
      double s = 0.0;
      for (int p = 0; p < k; ++p) {
        s += static_cast<double>(arow[p]) * brow[p];
      }
      c(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

Tensor NaiveMatMulTransposedA(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("MatMulTransposedA: dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  Tensor c(a.cols(), b.cols());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.data() + static_cast<std::size_t>(p) * m;
    const float* brow = b.data() + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];  // no zero-skip: see NaiveMatMul
      float* crow = c.data() + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace internal

namespace {

enum class IsaLevel { kGeneric, kAvx2, kAvx512 };

IsaLevel DetectIsa() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return IsaLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
#endif
  return IsaLevel::kGeneric;
}

IsaLevel Isa() {
  static const IsaLevel level = DetectIsa();
  return level;
}

}  // namespace

const char* ActiveGemmIsaName() {
  switch (Isa()) {
    case IsaLevel::kAvx512: return "avx512";
    case IsaLevel::kAvx2: return "avx2";
    case IsaLevel::kGeneric: return "generic";
  }
  return "generic";
}

namespace {

// --- MatMul family: C[i][j] = sum_p A[i][p]*B[p][j], A is m x k row-major --

constexpr int kMmMr = 8;   // rows per register tile
constexpr int kMmNr = 32;  // cols per register tile

// Full 8x32 register tile, all of k. Each acc[ii][jj] is the complete
// ascending-p chain for one output element.
#define AGSC_MM_TILE_BODY                                                 \
  float acc[kMmMr][kMmNr] = {};                                           \
  for (int p = 0; p < k; ++p) {                                           \
    const float* brow = b + static_cast<std::size_t>(p) * n + j0;         \
    const float* acol = a + static_cast<std::size_t>(i0) * k + p;         \
    for (int ii = 0; ii < kMmMr; ++ii) {                                  \
      const float av = acol[static_cast<std::size_t>(ii) * k];            \
      for (int jj = 0; jj < kMmNr; ++jj) acc[ii][jj] += av * brow[jj];    \
    }                                                                     \
  }                                                                       \
  for (int ii = 0; ii < kMmMr; ++ii) {                                    \
    float* crow = c + static_cast<std::size_t>(i0 + ii) * n + j0;         \
    for (int jj = 0; jj < kMmNr; ++jj) crow[jj] = acc[ii][jj];            \
  }

void MmTileGeneric(const float* a, const float* b, float* c, int k, int n,
                   int i0, int j0) {
  AGSC_MM_TILE_BODY
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void MmTileAvx2(const float* a,
                                                const float* b, float* c,
                                                int k, int n, int i0,
                                                int j0) {
  AGSC_MM_TILE_BODY
}

// avx512f implies FMA hardware; fp-contract must stay off or gcc fuses the
// mul+add into an FMA and the tile stops being bit-exact vs the reference.
__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
MmTileAvx512(const float* a, const float* b, float* c, int k, int n, int i0,
             int j0) {
  AGSC_MM_TILE_BODY
}
#endif  // x86

#undef AGSC_MM_TILE_BODY

// Scalar remainder: identical ascending-p chain per element.
void MmEdge(const float* a, const float* b, float* c, int k, int n, int i0,
            int i1, int j0, int j1) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = j0; j < j1; ++j) {
      float s = 0.0f;
      for (int p = 0; p < k; ++p) {
        s += arow[p] * b[static_cast<std::size_t>(p) * n + j];
      }
      crow[j] = s;
    }
  }
}

void MmRange(const float* a, const float* b, float* c, int k, int n, int r0,
             int r1) {
  auto* tile = MmTileGeneric;
#if defined(__x86_64__) || defined(__i386__)
  if (Isa() == IsaLevel::kAvx512) {
    tile = MmTileAvx512;
  } else if (Isa() == IsaLevel::kAvx2) {
    tile = MmTileAvx2;
  }
#endif
  int i0 = r0;
  for (; i0 + kMmMr <= r1; i0 += kMmMr) {
    int j0 = 0;
    for (; j0 + kMmNr <= n; j0 += kMmNr) tile(a, b, c, k, n, i0, j0);
    if (j0 < n) MmEdge(a, b, c, k, n, i0, i0 + kMmMr, j0, n);
  }
  if (i0 < r1) MmEdge(a, b, c, k, n, i0, r1, 0, n);
}

// --- TransposedA family: C[i][j] = sum_p A[p][i]*B[p][j], A is k x m ------

#define AGSC_MTA_TILE_BODY                                                \
  float acc[kMmMr][kMmNr] = {};                                           \
  for (int p = 0; p < k; ++p) {                                           \
    const float* brow = b + static_cast<std::size_t>(p) * n + j0;         \
    const float* arow = a + static_cast<std::size_t>(p) * m + i0;         \
    for (int ii = 0; ii < kMmMr; ++ii) {                                  \
      const float av = arow[ii];                                          \
      for (int jj = 0; jj < kMmNr; ++jj) acc[ii][jj] += av * brow[jj];    \
    }                                                                     \
  }                                                                       \
  for (int ii = 0; ii < kMmMr; ++ii) {                                    \
    float* crow = c + static_cast<std::size_t>(i0 + ii) * n + j0;         \
    for (int jj = 0; jj < kMmNr; ++jj) crow[jj] = acc[ii][jj];            \
  }

void MtaTileGeneric(const float* a, const float* b, float* c, int k, int m,
                    int n, int i0, int j0) {
  AGSC_MTA_TILE_BODY
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void MtaTileAvx2(const float* a,
                                                 const float* b, float* c,
                                                 int k, int m, int n, int i0,
                                                 int j0) {
  AGSC_MTA_TILE_BODY
}

__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
MtaTileAvx512(const float* a, const float* b, float* c, int k, int m, int n,
              int i0, int j0) {
  AGSC_MTA_TILE_BODY
}
#endif  // x86

#undef AGSC_MTA_TILE_BODY

void MtaEdge(const float* a, const float* b, float* c, int k, int m, int n,
             int i0, int i1, int j0, int j1) {
  for (int i = i0; i < i1; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = j0; j < j1; ++j) {
      float s = 0.0f;
      for (int p = 0; p < k; ++p) {
        s += a[static_cast<std::size_t>(p) * m + i] *
             b[static_cast<std::size_t>(p) * n + j];
      }
      crow[j] = s;
    }
  }
}

void MtaRange(const float* a, const float* b, float* c, int k, int m, int n,
              int r0, int r1) {
  auto* tile = MtaTileGeneric;
#if defined(__x86_64__) || defined(__i386__)
  if (Isa() == IsaLevel::kAvx512) {
    tile = MtaTileAvx512;
  } else if (Isa() == IsaLevel::kAvx2) {
    tile = MtaTileAvx2;
  }
#endif
  int i0 = r0;
  for (; i0 + kMmMr <= r1; i0 += kMmMr) {
    int j0 = 0;
    for (; j0 + kMmNr <= n; j0 += kMmNr) tile(a, b, c, k, m, n, i0, j0);
    if (j0 < n) MtaEdge(a, b, c, k, m, n, i0, i0 + kMmMr, j0, n);
  }
  if (i0 < r1) MtaEdge(a, b, c, k, m, n, i0, r1, 0, n);
}

// --- TransposedB family: C[i][j] = dot(A row i, B row j) in double --------

constexpr int kTbNr = 8;  // independent double accumulator chains per tile

#define AGSC_TB_TILE_BODY                                                 \
  double acc[kTbNr] = {};                                                 \
  const float* arow = a + static_cast<std::size_t>(i) * k;                \
  for (int p = 0; p < k; ++p) {                                           \
    const double av = static_cast<double>(arow[p]);                       \
    for (int jj = 0; jj < kTbNr; ++jj) {                                  \
      acc[jj] += av * b[static_cast<std::size_t>(j0 + jj) * k + p];       \
    }                                                                     \
  }                                                                       \
  float* crow = c + static_cast<std::size_t>(i) * n + j0;                 \
  for (int jj = 0; jj < kTbNr; ++jj) {                                    \
    crow[jj] = static_cast<float>(acc[jj]);                               \
  }

void TbTileGeneric(const float* a, const float* b, float* c, int k, int n,
                   int i, int j0) {
  AGSC_TB_TILE_BODY
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void TbTileAvx2(const float* a,
                                                const float* b, float* c,
                                                int k, int n, int i,
                                                int j0) {
  AGSC_TB_TILE_BODY
}

__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
TbTileAvx512(const float* a, const float* b, float* c, int k, int n, int i,
             int j0) {
  AGSC_TB_TILE_BODY
}
#endif  // x86

#undef AGSC_TB_TILE_BODY

void TbRange(const float* a, const float* b, float* c, int k, int n, int r0,
             int r1) {
  auto* tile = TbTileGeneric;
#if defined(__x86_64__) || defined(__i386__)
  if (Isa() == IsaLevel::kAvx512) {
    tile = TbTileAvx512;
  } else if (Isa() == IsaLevel::kAvx2) {
    tile = TbTileAvx2;
  }
#endif
  for (int i = r0; i < r1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    int j0 = 0;
    for (; j0 + kTbNr <= n; j0 += kTbNr) tile(a, b, c, k, n, i, j0);
    for (; j0 < n; ++j0) {
      const float* brow = b + static_cast<std::size_t>(j0) * k;
      double s = 0.0;
      for (int p = 0; p < k; ++p) {
        s += static_cast<double>(arow[p]) * brow[p];
      }
      c[static_cast<std::size_t>(i) * n + j0] = static_cast<float>(s);
    }
  }
}

// --- Kernel configuration + row-partitioned parallel driver ---------------

struct KernelState {
  std::mutex mu;
  KernelConfig config;
  std::unique_ptr<util::ThreadPool> pool;
};

KernelState& State() {
  static KernelState state;  // dtor joins any worker pool at exit
  return state;
}

struct GemmPlan {
  GemmKernel gemm;
  long long min_flops;
  util::ThreadPool* pool;  // null when nn_threads == 0
};

GemmPlan CurrentPlan() {
  KernelState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return {s.config.gemm, s.config.parallel_min_flops, s.pool.get()};
}

// Runs run_range(r0, r1) over [0, m), split into at most pool->num_threads()
// contiguous chunks. Chunk boundaries depend only on (m, worker count), and
// every output element is computed wholly inside one chunk with an unchanged
// accumulation order — so the result bits are independent of the worker
// count and of scheduling.
template <typename RangeFn>
void RunRows(const GemmPlan& plan, long long flops, int m,
             const RangeFn& run_range) {
  util::ThreadPool* pool = plan.pool;
  if (pool == nullptr || m < 2 || flops < plan.min_flops) {
    run_range(0, m);
    return;
  }
  const int chunks = std::min(pool->num_threads(), m);
  const int base = m / chunks;
  const int rem = m % chunks;
  pool->ParallelFor(chunks, [&](int chunk) {
    const int r0 = chunk * base + std::min(chunk, rem);
    const int r1 = r0 + base + (chunk < rem ? 1 : 0);
    run_range(r0, r1);
  });
}

}  // namespace

void SetKernelConfig(const KernelConfig& config) {
  KernelState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.config = config;
  s.config.nn_threads = std::max(0, s.config.nn_threads);
  s.config.parallel_min_flops = std::max(0LL, s.config.parallel_min_flops);
  const int have = s.pool ? s.pool->num_threads() : 0;
  if (have != s.config.nn_threads) {
    s.pool.reset();  // joins the old workers first
    if (s.config.nn_threads > 0) {
      s.pool = std::make_unique<util::ThreadPool>(s.config.nn_threads);
    }
  }
}

KernelConfig GetKernelConfig() {
  KernelState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.config;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("MatMul: inner dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  const GemmPlan plan = CurrentPlan();
  if (plan.gemm == GemmKernel::kNaive) return internal::NaiveMatMul(a, b);
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  if (m == 0 || n == 0) return c;
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  RunRows(plan, 2LL * m * k * n, m, [&](int r0, int r1) {
    MmRange(ap, bp, cp, k, n, r0, r1);
  });
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("MatMulTransposedB: dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  const GemmPlan plan = CurrentPlan();
  if (plan.gemm == GemmKernel::kNaive) {
    return internal::NaiveMatMulTransposedB(a, b);
  }
  const int m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  if (m == 0 || n == 0) return c;
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  RunRows(plan, 2LL * m * k * n, m, [&](int r0, int r1) {
    TbRange(ap, bp, cp, k, n, r0, r1);
  });
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("MatMulTransposedA: dims " + a.ShapeString() +
                                " vs " + b.ShapeString());
  }
  const GemmPlan plan = CurrentPlan();
  if (plan.gemm == GemmKernel::kNaive) {
    return internal::NaiveMatMulTransposedA(a, b);
  }
  const int m = a.cols(), k = a.rows(), n = b.cols();
  Tensor c(m, n);
  if (m == 0 || n == 0) return c;
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  RunRows(plan, 2LL * m * k * n, m, [&](int r0, int r1) {
    MtaRange(ap, bp, cp, k, m, n, r0, r1);
  });
  return c;
}

}  // namespace agsc::nn
