#ifndef AGSC_NN_OPTIMIZER_H_
#define AGSC_NN_OPTIMIZER_H_

#include <vector>

#include "nn/autograd.h"

namespace agsc::nn {

/// Base class for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in the
  /// parameters, then leaves the gradients untouched (call ZeroGrad()).
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Appends more parameters (e.g. a lazily-created head).
  void AddParameters(const std::vector<Variable>& more);

  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
};

/// Plain stochastic gradient descent: p -= lr * g.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  /// Complete serializable optimizer state (checkpoint/resume support).
  struct State {
    long step_count = 0;
    float lr = 0.0f;
    std::vector<Tensor> m;  ///< First-moment estimates, one per parameter.
    std::vector<Tensor> v;  ///< Second-moment estimates, one per parameter.
  };

  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  long step_count() const { return step_count_; }

  /// Captures step count, learning rate, and both moment vectors (moments
  /// are materialized at their parameter shapes even before the first
  /// Step()).
  State ExportState();

  /// Restores a state captured by ExportState. Returns false (leaving the
  /// optimizer untouched) if the moment shapes do not match the parameters.
  bool ImportState(const State& state);

 private:
  void EnsureState();

  float lr_, beta1_, beta2_, eps_;
  long step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Rescales gradients of `params` so their global L2 norm is at most
/// `max_norm`; returns the pre-clipping norm.
float ClipGradNorm(std::vector<Variable>& params, float max_norm);

}  // namespace agsc::nn

#endif  // AGSC_NN_OPTIMIZER_H_
