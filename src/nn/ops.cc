#include "nn/ops.h"

#include <cmath>
#include <stdexcept>

namespace agsc::nn {
namespace {

using internal::Node;

std::shared_ptr<Node> MakeNode(const char* name, Tensor value,
                               std::vector<Variable> inputs,
                               std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op_name = name;
  bool needs_grad = false;
  node->parents.reserve(inputs.size());
  for (const Variable& v : inputs) {
    if (!v.defined()) throw std::logic_error(std::string(name) + ": null input");
    node->parents.push_back(v.node());
    needs_grad = needs_grad || v.node()->requires_grad;
  }
  node->requires_grad = needs_grad;
  if (needs_grad) node->backward_fn = std::move(backward);
  return node;
}

void CheckSameShape(const char* name, const Variable& a, const Variable& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(name) + ": shape mismatch " +
                                a.value().ShapeString() + " vs " +
                                b.value().ShapeString());
  }
}

/// Accumulates `delta` into parent `p`'s grad if it participates.
void Accumulate(const std::shared_ptr<Node>& p, const Tensor& delta) {
  if (!p->requires_grad) return;
  p->EnsureGrad();
  p->grad.AddInPlace(delta);
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = MatMul(a.value(), b.value());
  return Variable::FromNode(MakeNode(
      "matmul", std::move(out), {a, b}, [](Node& n) {
        const auto& pa = n.parents[0];
        const auto& pb = n.parents[1];
        if (pa->requires_grad) {
          Accumulate(pa, MatMulTransposedB(n.grad, pb->value));
        }
        if (pb->requires_grad) {
          Accumulate(pb, MatMulTransposedA(pa->value, n.grad));
        }
      }));
}

Variable Add(const Variable& a, const Variable& b) {
  CheckSameShape("add", a, b);
  Tensor out = a.value();
  out.AddInPlace(b.value());
  return Variable::FromNode(MakeNode("add", std::move(out), {a, b}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], n.grad);
  }));
}

Variable Sub(const Variable& a, const Variable& b) {
  CheckSameShape("sub", a, b);
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] -= b.value()[i];
  return Variable::FromNode(MakeNode("sub", std::move(out), {a, b}, [](Node& n) {
    Accumulate(n.parents[0], n.grad);
    if (n.parents[1]->requires_grad) {
      Tensor neg = n.grad;
      neg.Scale(-1.0f);
      Accumulate(n.parents[1], neg);
    }
  }));
}

Variable Mul(const Variable& a, const Variable& b) {
  CheckSameShape("mul", a, b);
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] *= b.value()[i];
  return Variable::FromNode(MakeNode("mul", std::move(out), {a, b}, [](Node& n) {
    const auto& pa = n.parents[0];
    const auto& pb = n.parents[1];
    if (pa->requires_grad) {
      Tensor d = n.grad;
      for (int i = 0; i < d.size(); ++i) d[i] *= pb->value[i];
      Accumulate(pa, d);
    }
    if (pb->requires_grad) {
      Tensor d = n.grad;
      for (int i = 0; i < d.size(); ++i) d[i] *= pa->value[i];
      Accumulate(pb, d);
    }
  }));
}

Variable Neg(const Variable& a) { return ScalarMul(a, -1.0f); }

Variable ScalarMul(const Variable& a, float s) {
  Tensor out = a.value();
  out.Scale(s);
  return Variable::FromNode(
      MakeNode("scalar_mul", std::move(out), {a}, [s](Node& n) {
        Tensor d = n.grad;
        d.Scale(s);
        Accumulate(n.parents[0], d);
      }));
}

Variable ScalarAdd(const Variable& a, float s) {
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] += s;
  return Variable::FromNode(
      MakeNode("scalar_add", std::move(out), {a}, [](Node& n) {
        Accumulate(n.parents[0], n.grad);
      }));
}

Variable AddRowVector(const Variable& m, const Variable& v) {
  if (v.rows() != 1 || v.cols() != m.cols()) {
    throw std::invalid_argument("AddRowVector: v must be 1x" +
                                std::to_string(m.cols()));
  }
  Tensor out = m.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) += v.value()(0, c);
  }
  return Variable::FromNode(
      MakeNode("add_row_vector", std::move(out), {m, v}, [](Node& n) {
        Accumulate(n.parents[0], n.grad);
        const auto& pv = n.parents[1];
        if (pv->requires_grad) {
          Tensor d(1, n.grad.cols());
          for (int r = 0; r < n.grad.rows(); ++r) {
            for (int c = 0; c < n.grad.cols(); ++c) d(0, c) += n.grad(r, c);
          }
          Accumulate(pv, d);
        }
      }));
}

Variable MulRowVector(const Variable& m, const Variable& v) {
  if (v.rows() != 1 || v.cols() != m.cols()) {
    throw std::invalid_argument("MulRowVector: v must be 1x" +
                                std::to_string(m.cols()));
  }
  Tensor out = m.value();
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) *= v.value()(0, c);
  }
  return Variable::FromNode(
      MakeNode("mul_row_vector", std::move(out), {m, v}, [](Node& n) {
        const auto& pm = n.parents[0];
        const auto& pv = n.parents[1];
        if (pm->requires_grad) {
          Tensor d = n.grad;
          for (int r = 0; r < d.rows(); ++r) {
            for (int c = 0; c < d.cols(); ++c) d(r, c) *= pv->value(0, c);
          }
          Accumulate(pm, d);
        }
        if (pv->requires_grad) {
          Tensor d(1, n.grad.cols());
          for (int r = 0; r < n.grad.rows(); ++r) {
            for (int c = 0; c < n.grad.cols(); ++c) {
              d(0, c) += n.grad(r, c) * pm->value(r, c);
            }
          }
          Accumulate(pv, d);
        }
      }));
}

namespace {

/// Shared helper for elementwise unary ops where d(out)/d(in) can be written
/// as a function of (input, output). Templated on the callables so the
/// forward loop inlines and the backward closure is a capture of one empty
/// functor — small enough for std::function's inline storage, so building a
/// unary node performs no heap allocation beyond the node itself.
template <typename Fwd, typename DydxFromXY>
Variable UnaryOp(const char* name, const Variable& a, Fwd fwd,
                 DydxFromXY dydx_from_x_y) {
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] = fwd(out[i]);
  return Variable::FromNode(
      MakeNode(name, std::move(out), {a}, [dydx_from_x_y](Node& n) {
        const auto& pa = n.parents[0];
        if (!pa->requires_grad) return;
        Tensor d = n.grad;
        for (int i = 0; i < d.size(); ++i) {
          d[i] *= dydx_from_x_y(pa->value[i], n.value[i]);
        }
        Accumulate(pa, d);
      }));
}

}  // namespace

Variable Exp(const Variable& a) {
  return UnaryOp("exp", a, [](float x) { return std::exp(x); },
                 [](float, float y) { return y; });
}

Variable Log(const Variable& a) {
  return UnaryOp("log", a, [](float x) { return std::log(x); },
                 [](float x, float) { return 1.0f / x; });
}

Variable Tanh(const Variable& a) {
  return UnaryOp("tanh", a, [](float x) { return std::tanh(x); },
                 [](float, float y) { return 1.0f - y * y; });
}

Variable Relu(const Variable& a) {
  return UnaryOp("relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
                 [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Variable Sigmoid(const Variable& a) {
  return UnaryOp("sigmoid", a,
                 [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
                 [](float, float y) { return y * (1.0f - y); });
}

Variable Square(const Variable& a) {
  return UnaryOp("square", a, [](float x) { return x * x; },
                 [](float x, float) { return 2.0f * x; });
}

Variable Clamp(const Variable& a, float lo, float hi) {
  return UnaryOp(
      "clamp", a,
      [lo, hi](float x) { return x < lo ? lo : (x > hi ? hi : x); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0f : 0.0f; });
}

namespace {

Variable BinarySelect(const char* name, const Variable& a, const Variable& b,
                      bool take_min) {
  CheckSameShape(name, a, b);
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < out.size(); ++i) {
    const float av = a.value()[i], bv = b.value()[i];
    out[i] = take_min ? std::min(av, bv) : std::max(av, bv);
  }
  return Variable::FromNode(
      MakeNode(name, std::move(out), {a, b}, [take_min](Node& n) {
        const auto& pa = n.parents[0];
        const auto& pb = n.parents[1];
        Tensor da(n.value.rows(), n.value.cols());
        Tensor db(n.value.rows(), n.value.cols());
        for (int i = 0; i < n.value.size(); ++i) {
          const float av = pa->value[i], bv = pb->value[i];
          const bool pick_a = take_min ? (av <= bv) : (av >= bv);
          (pick_a ? da[i] : db[i]) = n.grad[i];
        }
        Accumulate(pa, da);
        Accumulate(pb, db);
      }));
}

}  // namespace

Variable Minimum(const Variable& a, const Variable& b) {
  return BinarySelect("minimum", a, b, /*take_min=*/true);
}

Variable Maximum(const Variable& a, const Variable& b) {
  return BinarySelect("maximum", a, b, /*take_min=*/false);
}

Variable Sum(const Variable& a) {
  Tensor out = Tensor::Scalar(a.value().Sum());
  return Variable::FromNode(MakeNode("sum", std::move(out), {a}, [](Node& n) {
    const auto& pa = n.parents[0];
    if (!pa->requires_grad) return;
    Tensor d(pa->value.rows(), pa->value.cols(), n.grad[0]);
    Accumulate(pa, d);
  }));
}

Variable Mean(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  Tensor out = Tensor::Scalar(a.value().Sum() * inv);
  return Variable::FromNode(
      MakeNode("mean", std::move(out), {a}, [inv](Node& n) {
        const auto& pa = n.parents[0];
        if (!pa->requires_grad) return;
        Tensor d(pa->value.rows(), pa->value.cols(), n.grad[0] * inv);
        Accumulate(pa, d);
      }));
}

Variable RowSum(const Variable& a) {
  Tensor out(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    for (int c = 0; c < a.cols(); ++c) s += a.value()(r, c);
    out(r, 0) = static_cast<float>(s);
  }
  return Variable::FromNode(
      MakeNode("row_sum", std::move(out), {a}, [](Node& n) {
        const auto& pa = n.parents[0];
        if (!pa->requires_grad) return;
        Tensor d(pa->value.rows(), pa->value.cols());
        for (int r = 0; r < d.rows(); ++r) {
          for (int c = 0; c < d.cols(); ++c) d(r, c) = n.grad(r, 0);
        }
        Accumulate(pa, d);
      }));
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("ConcatCols: row mismatch");
  }
  Tensor out(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
    for (int c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b.value()(r, c);
  }
  const int ac = a.cols();
  return Variable::FromNode(
      MakeNode("concat_cols", std::move(out), {a, b}, [ac](Node& n) {
        const auto& pa = n.parents[0];
        const auto& pb = n.parents[1];
        if (pa->requires_grad) {
          Tensor d(pa->value.rows(), pa->value.cols());
          for (int r = 0; r < d.rows(); ++r) {
            for (int c = 0; c < d.cols(); ++c) d(r, c) = n.grad(r, c);
          }
          Accumulate(pa, d);
        }
        if (pb->requires_grad) {
          Tensor d(pb->value.rows(), pb->value.cols());
          for (int r = 0; r < d.rows(); ++r) {
            for (int c = 0; c < d.cols(); ++c) d(r, c) = n.grad(r, ac + c);
          }
          Accumulate(pb, d);
        }
      }));
}

Variable SliceCols(const Variable& a, int start, int count) {
  if (start < 0 || count <= 0 || start + count > a.cols()) {
    throw std::invalid_argument("SliceCols: bad range [" +
                                std::to_string(start) + ", " +
                                std::to_string(start + count) + ") of " +
                                std::to_string(a.cols()) + " cols");
  }
  Tensor out(a.rows(), count);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < count; ++c) out(r, c) = a.value()(r, start + c);
  }
  return Variable::FromNode(
      MakeNode("slice_cols", std::move(out), {a}, [start, count](Node& n) {
        const auto& pa = n.parents[0];
        if (!pa->requires_grad) return;
        Tensor d(pa->value.rows(), pa->value.cols());
        for (int r = 0; r < d.rows(); ++r) {
          for (int c = 0; c < count; ++c) d(r, start + c) = n.grad(r, c);
        }
        Accumulate(pa, d);
      }));
}

namespace {

Tensor RowSoftmax(const Tensor& logits) {
  Tensor p(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    float mx = logits(r, 0);
    for (int c = 1; c < logits.cols(); ++c) mx = std::max(mx, logits(r, c));
    double denom = 0.0;
    for (int c = 0; c < logits.cols(); ++c) {
      p(r, c) = std::exp(logits(r, c) - mx);
      denom += p(r, c);
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int c = 0; c < logits.cols(); ++c) p(r, c) *= inv;
  }
  return p;
}

}  // namespace

Variable Softmax(const Variable& logits) {
  Tensor p = RowSoftmax(logits.value());
  return Variable::FromNode(
      MakeNode("softmax", std::move(p), {logits}, [](Node& n) {
        const auto& pl = n.parents[0];
        if (!pl->requires_grad) return;
        // dL/dx = p * (g - sum_c g*p) row-wise.
        Tensor d(n.value.rows(), n.value.cols());
        for (int r = 0; r < n.value.rows(); ++r) {
          double dot = 0.0;
          for (int c = 0; c < n.value.cols(); ++c) {
            dot += static_cast<double>(n.grad(r, c)) * n.value(r, c);
          }
          for (int c = 0; c < n.value.cols(); ++c) {
            d(r, c) = n.value(r, c) *
                      (n.grad(r, c) - static_cast<float>(dot));
          }
        }
        Accumulate(pl, d);
      }));
}

Variable LogSoftmax(const Variable& logits) {
  Tensor p = RowSoftmax(logits.value());
  Tensor out(p.rows(), p.cols());
  for (int i = 0; i < p.size(); ++i) {
    out[i] = std::log(std::max(p[i], 1e-30f));
  }
  // Keep the softmax probabilities for the backward pass.
  auto probs = std::make_shared<Tensor>(std::move(p));
  return Variable::FromNode(
      MakeNode("log_softmax", std::move(out), {logits}, [probs](Node& n) {
        const auto& pl = n.parents[0];
        if (!pl->requires_grad) return;
        // dL/dx = g - p * rowsum(g).
        Tensor d(n.value.rows(), n.value.cols());
        for (int r = 0; r < n.value.rows(); ++r) {
          double gsum = 0.0;
          for (int c = 0; c < n.value.cols(); ++c) gsum += n.grad(r, c);
          for (int c = 0; c < n.value.cols(); ++c) {
            d(r, c) = n.grad(r, c) -
                      (*probs)(r, c) * static_cast<float>(gsum);
          }
        }
        Accumulate(pl, d);
      }));
}

Variable PickPerRow(const Variable& m, const std::vector<int>& indices) {
  if (static_cast<int>(indices.size()) != m.rows()) {
    throw std::invalid_argument("PickPerRow: need one index per row");
  }
  Tensor out(m.rows(), 1);
  for (int r = 0; r < m.rows(); ++r) {
    const int c = indices[r];
    if (c < 0 || c >= m.cols()) {
      throw std::out_of_range("PickPerRow: index out of range");
    }
    out(r, 0) = m.value()(r, c);
  }
  auto idx = std::make_shared<std::vector<int>>(indices);
  return Variable::FromNode(
      MakeNode("pick_per_row", std::move(out), {m}, [idx](Node& n) {
        const auto& pm = n.parents[0];
        if (!pm->requires_grad) return;
        Tensor d(pm->value.rows(), pm->value.cols());
        for (int r = 0; r < d.rows(); ++r) d(r, (*idx)[r]) = n.grad(r, 0);
        Accumulate(pm, d);
      }));
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels) {
  return Neg(Mean(PickPerRow(LogSoftmax(logits), labels)));
}

Variable SoftmaxEntropy(const Variable& logits) {
  Variable p = Softmax(logits);
  Variable logp = LogSoftmax(logits);
  // H = -mean_over_rows( sum_c p*logp ) = -sum(p*logp)/rows.
  return ScalarMul(Sum(Mul(p, logp)),
                   -1.0f / static_cast<float>(logits.rows()));
}

Variable MseLoss(const Variable& pred, const Tensor& target) {
  if (pred.rows() != target.rows() || pred.cols() != target.cols()) {
    throw std::invalid_argument("MseLoss: shape mismatch");
  }
  return Mean(Square(Sub(pred, Variable::Constant(target))));
}

namespace {

float ApplyActivation(Activation act, float x) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return x > 0.0f ? x : 0.0f;
    case Activation::kTanh: return std::tanh(x);
    case Activation::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
  }
  throw std::logic_error("unknown activation");
}

// d(act)/dx expressed from the post-activation value y. Matches the
// unfused ops exactly: tanh and sigmoid already differentiate from y, and
// for relu the y > 0 test is equivalent to the x > 0 test (y == x when
// x > 0, else y == 0).
float ActivationPrimeFromY(Activation act, float y) {
  switch (act) {
    case Activation::kNone: return 1.0f;
    case Activation::kRelu: return y > 0.0f ? 1.0f : 0.0f;
    case Activation::kTanh: return 1.0f - y * y;
    case Activation::kSigmoid: return y * (1.0f - y);
  }
  throw std::logic_error("unknown activation");
}

}  // namespace

Tensor LinearActivateValue(const Tensor& m, const Tensor& w, const Tensor& b,
                           Activation act) {
  if (m.cols() != w.rows()) {
    throw std::invalid_argument("LinearActivateValue: inner dims " +
                                m.ShapeString() + " vs " + w.ShapeString());
  }
  if (b.rows() != 1 || b.cols() != w.cols()) {
    throw std::invalid_argument("LinearActivateValue: b must be 1x" +
                                std::to_string(w.cols()));
  }
  Tensor out = MatMul(m, w);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) += b(0, c);
  }
  if (act != Activation::kNone) {
    for (int i = 0; i < out.size(); ++i) {
      out[i] = ApplyActivation(act, out[i]);
    }
  }
  return out;
}

Variable LinearActivate(const Variable& m, const Variable& w,
                        const Variable& b, Activation act) {
  Tensor out = LinearActivateValue(m.value(), w.value(), b.value(), act);
  return Variable::FromNode(
      MakeNode("linear_activate", std::move(out), {m, w, b}, [act](Node& n) {
        const auto& pm = n.parents[0];
        const auto& pw = n.parents[1];
        const auto& pb = n.parents[2];
        // d = g * act'(y), the gradient at the pre-activation output.
        Tensor d = n.grad;
        if (act != Activation::kNone) {
          for (int i = 0; i < d.size(); ++i) {
            d[i] *= ActivationPrimeFromY(act, n.value[i]);
          }
        }
        if (pb->requires_grad) {
          Tensor db(1, d.cols());
          for (int r = 0; r < d.rows(); ++r) {
            for (int c = 0; c < d.cols(); ++c) db(0, c) += d(r, c);
          }
          Accumulate(pb, db);
        }
        if (pm->requires_grad) {
          Accumulate(pm, MatMulTransposedB(d, pw->value));
        }
        if (pw->requires_grad) {
          Accumulate(pw, MatMulTransposedA(pm->value, d));
        }
      }));
}

Variable AddScaled(const Variable& a, const Variable& b, float s) {
  CheckSameShape("add_scaled", a, b);
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] += s * b.value()[i];
  return Variable::FromNode(
      MakeNode("add_scaled", std::move(out), {a, b}, [s](Node& n) {
        Accumulate(n.parents[0], n.grad);
        const auto& pb = n.parents[1];
        if (pb->requires_grad) {
          Tensor d = n.grad;
          d.Scale(s);
          Accumulate(pb, d);
        }
      }));
}

Variable SquareScale(const Variable& a, float s) {
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] = s * (out[i] * out[i]);
  return Variable::FromNode(
      MakeNode("square_scale", std::move(out), {a}, [s](Node& n) {
        const auto& pa = n.parents[0];
        if (!pa->requires_grad) return;
        Tensor d = n.grad;
        for (int i = 0; i < d.size(); ++i) {
          d[i] = (d[i] * s) * (2.0f * pa->value[i]);
        }
        Accumulate(pa, d);
      }));
}

}  // namespace agsc::nn
