#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

namespace agsc::nn {

Variable Activate(const Variable& x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return Relu(x);
    case Activation::kTanh: return Tanh(x);
    case Activation::kSigmoid: return Sigmoid(x);
  }
  throw std::logic_error("unknown activation");
}

int Module::ParameterCount() const {
  int n = 0;
  for (const Variable& p : Parameters()) n += p.value().size();
  return n;
}

void OrthogonalInit(Tensor& w, util::Rng& rng, float gain) {
  const int rows = w.rows(), cols = w.cols();
  // Orthonormalize the smaller dimension's vectors via modified Gram-Schmidt
  // on Gaussian samples; transpose logic handled by treating vectors as rows
  // of the wider orientation.
  const bool wide = cols > rows;
  const int nvec = wide ? rows : cols;
  const int dim = wide ? cols : rows;
  std::vector<std::vector<double>> basis(nvec, std::vector<double>(dim));
  for (auto& v : basis) {
    for (double& x : v) x = rng.Gaussian();
  }
  for (int i = 0; i < nvec; ++i) {
    for (int j = 0; j < i; ++j) {
      double dot = 0.0;
      for (int d = 0; d < dim; ++d) dot += basis[i][d] * basis[j][d];
      for (int d = 0; d < dim; ++d) basis[i][d] -= dot * basis[j][d];
    }
    double norm = 0.0;
    for (double x : basis[i]) norm += x * x;
    norm = std::sqrt(std::max(norm, 1e-12));
    for (double& x : basis[i]) x /= norm;
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double v = wide ? basis[r][c] : basis[c][r];
      w(r, c) = gain * static_cast<float>(v);
    }
  }
}

Linear::Linear(int in_features, int out_features, util::Rng& rng, float gain)
    : in_features_(in_features), out_features_(out_features) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: non-positive layer size");
  }
  Tensor w(in_features, out_features);
  OrthogonalInit(w, rng, gain);
  weight_ = Variable::Parameter(std::move(w));
  bias_ = Variable::Parameter(Tensor(1, out_features));
}

Variable Linear::Forward(const Variable& x) const {
  return Forward(x, Activation::kNone);
}

Variable Linear::Forward(const Variable& x, Activation act) const {
  if (x.cols() != in_features_) {
    throw std::invalid_argument("Linear::Forward: expected " +
                                std::to_string(in_features_) + " cols, got " +
                                std::to_string(x.cols()));
  }
  return LinearActivate(x, weight_, bias_, act);
}

Tensor Linear::Infer(const Tensor& x, Activation act) const {
  if (x.cols() != in_features_) {
    throw std::invalid_argument("Linear::Infer: expected " +
                                std::to_string(in_features_) + " cols, got " +
                                std::to_string(x.cols()));
  }
  return LinearActivateValue(x, weight_.value(), bias_.value(), act);
}

std::vector<Variable> Linear::Parameters() const { return {weight_, bias_}; }

Mlp::Mlp(const std::vector<int>& sizes, util::Rng& rng, Activation hidden_act,
         Activation output_act, float final_gain)
    : hidden_act_(hidden_act), output_act_(output_act) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need >= 2 sizes");
  const float hidden_gain =
      hidden_act == Activation::kRelu ? std::sqrt(2.0f) : 1.0f;
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    const bool last = i + 2 == sizes.size();
    layers_.emplace_back(sizes[i], sizes[i + 1], rng,
                         last ? final_gain : hidden_gain);
  }
}

Variable Mlp::Forward(const Variable& x) const {
  Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    h = layers_[i].Forward(h, last ? output_act_ : hidden_act_);
  }
  return h;
}

Variable Mlp::Forward(const Tensor& x) const {
  return Forward(Variable::Constant(x));
}

Tensor Mlp::Infer(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    h = layers_[i].Infer(h, last ? output_act_ : hidden_act_);
  }
  return h;
}

std::vector<Variable> Mlp::Parameters() const {
  std::vector<Variable> params;
  for (const Linear& layer : layers_) {
    for (Variable& p : layer.Parameters()) params.push_back(std::move(p));
  }
  return params;
}

}  // namespace agsc::nn
