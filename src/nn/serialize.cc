#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace agsc::nn {

namespace {
constexpr char kMagic[8] = {'A', 'G', 'S', 'C', 'N', 'N', '0', '1'};
}  // namespace

bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& params) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  const uint32_t count = static_cast<uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Variable& p : params) {
    const Tensor& t = p.value();
    const int32_t rows = t.rows(), cols = t.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(sizeof(float)) * t.size());
  }
  return static_cast<bool>(out);
}

bool LoadParameters(const std::string& path, std::vector<Variable>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != params.size()) return false;
  for (Variable& p : params) {
    int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    Tensor& t = p.mutable_value();
    if (!in || rows != t.rows() || cols != t.cols()) return false;
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float)) * t.size());
    if (!in) return false;
  }
  return true;
}

void CopyParameters(const std::vector<Variable>& src,
                    std::vector<Variable>& dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("CopyParameters: count mismatch");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    const Tensor& s = src[i].value();
    Tensor& d = dst[i].mutable_value();
    if (s.rows() != d.rows() || s.cols() != d.cols()) {
      throw std::invalid_argument("CopyParameters: shape mismatch");
    }
    d = s;
  }
}

std::vector<Tensor> SnapshotParameters(const std::vector<Variable>& params) {
  std::vector<Tensor> snapshot;
  snapshot.reserve(params.size());
  for (const Variable& p : params) snapshot.push_back(p.value());
  return snapshot;
}

void RestoreParameters(const std::vector<Tensor>& snapshot,
                       std::vector<Variable>& params) {
  if (snapshot.size() != params.size()) {
    throw std::invalid_argument("RestoreParameters: count mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = snapshot[i];
  }
}

}  // namespace agsc::nn
