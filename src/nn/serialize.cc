#include "nn/serialize.h"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/fault_inject.h"

namespace agsc::nn {

namespace {

constexpr char kMagicV1[8] = {'A', 'G', 'S', 'C', 'N', 'N', '0', '1'};
constexpr char kMagicV2[8] = {'A', 'G', 'S', 'C', 'N', 'N', '0', '2'};

// Sanity bounds for decoding untrusted (possibly corrupted) files: a
// payload that passes the CRC but claims absurd counts is still rejected.
constexpr uint32_t kMaxSections = 1u << 16;
constexpr uint32_t kMaxNameLen = 1u << 12;
constexpr uint32_t kMaxItemsPerSection = 1u << 24;
constexpr int32_t kMaxTensorDim = 1 << 24;

void AppendBytes(std::string& out, const void* data, size_t len) {
  out.append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendScalar(std::string& out, T value) {
  AppendBytes(out, &value, sizeof(value));
}

/// Bounds-checked sequential reader over an untrusted byte buffer.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, size_t len) {
    if (size_ - pos_ < len) return false;
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& params) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagicV1, sizeof(kMagicV1));
  const uint32_t count = static_cast<uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Variable& p : params) {
    const Tensor& t = p.value();
    const int32_t rows = t.rows(), cols = t.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(sizeof(float)) * t.size());
  }
  return static_cast<bool>(out);
}

bool LoadParameters(const std::string& path, std::vector<Variable>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return false;
  }
  uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != params.size()) return false;
  // Stage the whole file into temporaries first: a mid-file mismatch or
  // short read must not leave earlier parameters already overwritten.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (const Variable& p : params) {
    int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    const Tensor& t = p.value();
    if (!in || rows != t.rows() || cols != t.cols()) return false;
    Tensor loaded(rows, cols);
    in.read(reinterpret_cast<char*>(loaded.data()),
            static_cast<std::streamsize>(sizeof(float)) * loaded.size());
    if (!in) return false;
    staged.push_back(std::move(loaded));
  }
  RestoreParameters(staged, params);
  return true;
}

void CopyParameters(const std::vector<Variable>& src,
                    std::vector<Variable>& dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("CopyParameters: count mismatch");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    const Tensor& s = src[i].value();
    Tensor& d = dst[i].mutable_value();
    if (s.rows() != d.rows() || s.cols() != d.cols()) {
      throw std::invalid_argument("CopyParameters: shape mismatch");
    }
    d = s;
  }
}

std::vector<Tensor> SnapshotParameters(const std::vector<Variable>& params) {
  std::vector<Tensor> snapshot;
  snapshot.reserve(params.size());
  for (const Variable& p : params) snapshot.push_back(p.value());
  return snapshot;
}

void RestoreParameters(const std::vector<Tensor>& snapshot,
                       std::vector<Variable>& params) {
  if (snapshot.size() != params.size()) {
    throw std::invalid_argument("RestoreParameters: count mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = snapshot[i];
  }
}

// ---------------------------------------------------------------------------
// v2 checkpoints.
// ---------------------------------------------------------------------------

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  // Table-driven CRC-32 (IEEE, reflected). The table is built once.
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

CheckpointSection& Checkpoint::AddSection(const std::string& name) {
  sections.push_back(CheckpointSection{name, {}, {}});
  return sections.back();
}

const CheckpointSection* Checkpoint::Find(const std::string& name) const {
  for (const CheckpointSection& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const char* CheckpointErrorString(CheckpointError error) {
  switch (error) {
    case CheckpointError::kOk:
      return "ok";
    case CheckpointError::kIoError:
      return "I/O error";
    case CheckpointError::kBadMagic:
      return "bad magic (not an AGSCNN02 checkpoint)";
    case CheckpointError::kBadChecksum:
      return "checksum mismatch (truncated or corrupted)";
    case CheckpointError::kBadFormat:
      return "malformed payload";
  }
  return "unknown";
}

std::string EncodeCheckpoint(const Checkpoint& checkpoint) {
  std::string out;
  AppendBytes(out, kMagicV2, sizeof(kMagicV2));
  AppendScalar(out, checkpoint.fingerprint);
  AppendScalar(out, static_cast<uint32_t>(checkpoint.sections.size()));
  for (const CheckpointSection& section : checkpoint.sections) {
    AppendScalar(out, static_cast<uint32_t>(section.name.size()));
    AppendBytes(out, section.name.data(), section.name.size());
    AppendScalar(out, static_cast<uint32_t>(section.words.size()));
    for (uint64_t w : section.words) AppendScalar(out, w);
    AppendScalar(out, static_cast<uint32_t>(section.tensors.size()));
    for (const Tensor& t : section.tensors) {
      AppendScalar(out, static_cast<int32_t>(t.rows()));
      AppendScalar(out, static_cast<int32_t>(t.cols()));
      AppendBytes(out, t.data(), sizeof(float) * static_cast<size_t>(t.size()));
    }
  }
  AppendScalar(out, Crc32(out.data(), out.size()));
  return out;
}

CheckpointError DecodeCheckpoint(const std::string& bytes, Checkpoint& out) {
  if (bytes.size() < sizeof(kMagicV2) + sizeof(uint32_t)) {
    return CheckpointError::kBadMagic;
  }
  if (std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return CheckpointError::kBadMagic;
  }
  const size_t payload_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload_size, sizeof(stored_crc));
  if (Crc32(bytes.data(), payload_size) != stored_crc) {
    return CheckpointError::kBadChecksum;
  }

  ByteReader reader(bytes.data() + sizeof(kMagicV2),
                    payload_size - sizeof(kMagicV2));
  Checkpoint parsed;
  uint32_t section_count = 0;
  if (!reader.Read(&parsed.fingerprint) || !reader.Read(&section_count) ||
      section_count > kMaxSections) {
    return CheckpointError::kBadFormat;
  }
  parsed.sections.reserve(section_count);
  for (uint32_t s = 0; s < section_count; ++s) {
    CheckpointSection section;
    uint32_t name_len = 0;
    if (!reader.Read(&name_len) || name_len > kMaxNameLen) {
      return CheckpointError::kBadFormat;
    }
    section.name.resize(name_len);
    if (!reader.ReadBytes(section.name.data(), name_len)) {
      return CheckpointError::kBadFormat;
    }
    uint32_t word_count = 0;
    if (!reader.Read(&word_count) || word_count > kMaxItemsPerSection) {
      return CheckpointError::kBadFormat;
    }
    section.words.resize(word_count);
    for (uint32_t i = 0; i < word_count; ++i) {
      if (!reader.Read(&section.words[i])) return CheckpointError::kBadFormat;
    }
    uint32_t tensor_count = 0;
    if (!reader.Read(&tensor_count) || tensor_count > kMaxItemsPerSection) {
      return CheckpointError::kBadFormat;
    }
    section.tensors.reserve(tensor_count);
    for (uint32_t i = 0; i < tensor_count; ++i) {
      int32_t rows = 0, cols = 0;
      if (!reader.Read(&rows) || !reader.Read(&cols) || rows < 0 ||
          cols < 0 || rows > kMaxTensorDim || cols > kMaxTensorDim) {
        return CheckpointError::kBadFormat;
      }
      const size_t elems = static_cast<size_t>(rows) * cols;
      if (reader.remaining() < sizeof(float) * elems) {
        return CheckpointError::kBadFormat;
      }
      Tensor t(rows, cols);
      if (!reader.ReadBytes(t.data(), sizeof(float) * elems)) {
        return CheckpointError::kBadFormat;
      }
      section.tensors.push_back(std::move(t));
    }
    parsed.sections.push_back(std::move(section));
  }
  if (reader.remaining() != 0) return CheckpointError::kBadFormat;
  out = std::move(parsed);
  return CheckpointError::kOk;
}

bool SaveCheckpointFile(const std::string& path,
                        const Checkpoint& checkpoint) {
  return util::AtomicWriteFile(path, EncodeCheckpoint(checkpoint));
}

CheckpointError LoadCheckpointFile(const std::string& path, Checkpoint& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return CheckpointError::kIoError;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return CheckpointError::kIoError;
  return DecodeCheckpoint(bytes, out);
}

std::string ReadFileMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in) return {};
  return std::string(magic, sizeof(magic));
}

}  // namespace agsc::nn
