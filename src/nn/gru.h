#ifndef AGSC_NN_GRU_H_
#define AGSC_NN_GRU_H_

#include <vector>

#include "nn/layers.h"

namespace agsc::nn {

/// Gated recurrent unit cell (Cho et al. 2014), used by the e-Divert
/// baseline's sequential policy/critic.
///
///   z = sigmoid(x Wz + h Uz + bz)        (update gate)
///   r = sigmoid(x Wr + h Ur + br)        (reset gate)
///   n = tanh(x Wn + (r * h) Un + bn)     (candidate)
///   h' = (1 - z) * n + z * h
///
/// The cell is stepped one timeslot at a time; backpropagation through time
/// works by simply chaining `Step` calls inside one autograd graph.
class GruCell : public Module {
 public:
  GruCell(int input_size, int hidden_size, util::Rng& rng);

  /// One recurrence step. `x` is N x input, `h` is N x hidden; returns the
  /// next hidden state (N x hidden).
  Variable Step(const Variable& x, const Variable& h) const;

  /// Returns an all-zero initial hidden state for a batch of `n` rows.
  Tensor InitialState(int n) const;

  std::vector<Variable> Parameters() const override;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  Linear x_z_, h_z_;  // Update gate.
  Linear x_r_, h_r_;  // Reset gate.
  Linear x_n_, h_n_;  // Candidate.
};

}  // namespace agsc::nn

#endif  // AGSC_NN_GRU_H_
