#include "nn/lstm.h"

namespace agsc::nn {

LstmCell::LstmCell(int input_size, int hidden_size, util::Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      x_i_(input_size, hidden_size, rng),
      h_i_(hidden_size, hidden_size, rng),
      x_f_(input_size, hidden_size, rng),
      h_f_(hidden_size, hidden_size, rng),
      x_o_(input_size, hidden_size, rng),
      h_o_(hidden_size, hidden_size, rng),
      x_g_(input_size, hidden_size, rng),
      h_g_(hidden_size, hidden_size, rng) {}

Variable LstmCell::Step(const Variable& x,
                        const Variable& packed_state) const {
  Variable h = SliceCols(packed_state, 0, hidden_size_);
  Variable c = SliceCols(packed_state, hidden_size_, hidden_size_);
  Variable i = Sigmoid(Add(x_i_.Forward(x), h_i_.Forward(h)));
  // Unit forget-gate bias keeps early gradients alive (Jozefowicz 2015).
  Variable f = Sigmoid(ScalarAdd(Add(x_f_.Forward(x), h_f_.Forward(h)),
                                 1.0f));
  Variable o = Sigmoid(Add(x_o_.Forward(x), h_o_.Forward(h)));
  Variable g = Tanh(Add(x_g_.Forward(x), h_g_.Forward(h)));
  Variable c_next = Add(Mul(f, c), Mul(i, g));
  Variable h_next = Mul(o, Tanh(c_next));
  return ConcatCols(h_next, c_next);
}

Variable LstmCell::Output(const Variable& packed_state) const {
  return SliceCols(packed_state, 0, hidden_size_);
}

Tensor LstmCell::InitialState(int n) const {
  return Tensor(n, state_size());
}

std::vector<Variable> LstmCell::Parameters() const {
  std::vector<Variable> params;
  for (const Linear* layer : {&x_i_, &h_i_, &x_f_, &h_f_, &x_o_, &h_o_,
                              &x_g_, &h_g_}) {
    for (Variable& p : layer->Parameters()) params.push_back(std::move(p));
  }
  return params;
}

}  // namespace agsc::nn
