#ifndef AGSC_NN_LAYERS_H_
#define AGSC_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/ops.h"
#include "util/rng.h"

namespace agsc::nn {

// `Activation` lives in ops.h (shared with the fused LinearActivate op) and
// is re-exported here through the include above.

/// Applies `act` to `x` (identity for kNone).
Variable Activate(const Variable& x, Activation act);

/// Interface for anything that owns trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// Returns all trainable parameters (stable order across calls so that
  /// serialization and optimizers can rely on it).
  virtual std::vector<Variable> Parameters() const = 0;

  /// Total scalar parameter count.
  int ParameterCount() const;
};

/// Fully-connected layer y = x W + b with orthogonal weight init.
class Linear : public Module {
 public:
  /// `gain` scales the orthogonal initialization (use sqrt(2) before ReLU,
  /// 0.01 for small policy heads, 1 otherwise).
  Linear(int in_features, int out_features, util::Rng& rng, float gain = 1.0f);

  /// Applies the layer to a batch (rows = batch).
  Variable Forward(const Variable& x) const;

  /// Applies the layer and `act` as one fused graph node (bit-exact
  /// equivalent to Activate(Forward(x), act), with fewer allocations).
  Variable Forward(const Variable& x, Activation act) const;

  /// Values-only forward for inference: no autograd nodes are built, and the
  /// result is bit-identical to Forward(x, act).value() (both run the same
  /// LinearActivateValue kernel). Safe to call concurrently from multiple
  /// threads as long as the parameters are not mutated.
  Tensor Infer(const Tensor& x, Activation act) const;

  std::vector<Variable> Parameters() const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Variable weight_;  // in x out.
  Variable bias_;    // 1 x out.
};

/// Multi-layer perceptron: Linear -> act -> ... -> Linear (-> output_act).
class Mlp : public Module {
 public:
  /// `sizes` = {in, hidden..., out}; needs >= 2 entries. `hidden_act` is
  /// applied after every layer except the last, `output_act` after the last.
  Mlp(const std::vector<int>& sizes, util::Rng& rng,
      Activation hidden_act = Activation::kTanh,
      Activation output_act = Activation::kNone, float final_gain = 1.0f);

  Variable Forward(const Variable& x) const;

  /// Convenience: forward on raw data without building grad history upstream
  /// of the input (input becomes a constant leaf).
  Variable Forward(const Tensor& x) const;

  /// Const batched inference entry point: the full forward pass on values
  /// only, building no autograd graph. Bit-identical to Forward(x).value()
  /// — every layer runs the same fused LinearActivateValue kernel the graph
  /// op uses — and rows are independent, so a batched call equals the
  /// row-by-row calls bit-for-bit. This is the serving hot path.
  Tensor Infer(const Tensor& x) const;

  std::vector<Variable> Parameters() const override;

  int in_features() const { return layers_.front().in_features(); }
  int out_features() const { return layers_.back().out_features(); }

 private:
  std::vector<Linear> layers_;
  Activation hidden_act_;
  Activation output_act_;
};

/// Fills `w` (in x out) with a (semi-)orthogonal matrix scaled by `gain`,
/// using Gram-Schmidt on Gaussian columns. Exposed for testing.
void OrthogonalInit(Tensor& w, util::Rng& rng, float gain);

}  // namespace agsc::nn

#endif  // AGSC_NN_LAYERS_H_
