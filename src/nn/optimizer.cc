#include "nn/optimizer.h"

#include <cmath>

namespace agsc::nn {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

void Optimizer::AddParameters(const std::vector<Variable>& more) {
  params_.insert(params_.end(), more.begin(), more.end());
}

Sgd::Sgd(std::vector<Variable> params, float lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void Sgd::Step() {
  for (Variable& p : params_) {
    Tensor& value = p.mutable_value();
    const Tensor& g = p.grad();
    for (int i = 0; i < value.size(); ++i) value[i] -= lr_ * g[i];
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {}

void Adam::EnsureState() {
  if (m_.size() == params_.size()) return;
  m_.clear();
  v_.clear();
  for (const Variable& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  EnsureState();
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& value = params_[k].mutable_value();
    const Tensor& g = params_[k].grad();
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (int i = 0; i < value.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

Adam::State Adam::ExportState() {
  EnsureState();
  State state;
  state.step_count = step_count_;
  state.lr = lr_;
  state.m = m_;
  state.v = v_;
  return state;
}

bool Adam::ImportState(const State& state) {
  if (state.m.size() != params_.size() || state.v.size() != params_.size()) {
    return false;
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    const Tensor& p = params_[k].value();
    if (state.m[k].rows() != p.rows() || state.m[k].cols() != p.cols() ||
        state.v[k].rows() != p.rows() || state.v[k].cols() != p.cols()) {
      return false;
    }
  }
  step_count_ = state.step_count;
  lr_ = state.lr;
  m_ = state.m;
  v_ = state.v;
  return true;
}

float ClipGradNorm(std::vector<Variable>& params, float max_norm) {
  double total = 0.0;
  for (Variable& p : params) {
    const Tensor& g = p.grad();
    for (int i = 0; i < g.size(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Variable& p : params) p.grad().Scale(scale);
  }
  return norm;
}

}  // namespace agsc::nn
