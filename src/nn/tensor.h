#ifndef AGSC_NN_TENSOR_H_
#define AGSC_NN_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace agsc::nn {

/// Selects the GEMM implementation used by MatMul / MatMulTransposedA /
/// MatMulTransposedB. Every variant computes each output element through the
/// same single accumulation chain (ascending inner index), so results are
/// bit-identical across kernels — the choice affects speed only.
enum class GemmKernel {
  kNaive,    ///< Reference triple-loop kernels (the original implementation).
  kBlocked,  ///< Cache-blocked, register-tiled kernels (default).
};

/// Process-wide configuration of the tensor compute kernels.
struct KernelConfig {
  GemmKernel gemm = GemmKernel::kBlocked;

  /// Worker threads for the row-partitioned parallel GEMM path. 0 disables
  /// threading (no pool is created). Output rows are split into at most
  /// `nn_threads` contiguous chunks; each output element is still computed
  /// wholly by one task in the unchanged accumulation order, so results are
  /// bit-identical for every value of `nn_threads`.
  int nn_threads = 0;

  /// Minimum 2*m*k*n flop count before a GEMM is dispatched to the pool;
  /// smaller products run inline on the caller. Purely a shape function, so
  /// the inline/parallel decision is deterministic (and irrelevant to the
  /// result bits either way). Tests set this to 0 to force the pool path.
  long long parallel_min_flops = 1 << 21;
};

/// Installs `config` process-wide (thread-safe). Creates or resizes the GEMM
/// worker pool as needed; `SetKernelConfig` must not be called concurrently
/// with in-flight GEMMs.
void SetKernelConfig(const KernelConfig& config);

/// Returns the currently installed configuration.
KernelConfig GetKernelConfig();

/// Name of the SIMD tier the blocked GEMM kernels dispatched to on this
/// CPU at runtime: "avx512", "avx2", or "generic". Build provenance for
/// --build-info / bug reports; the choice never affects result bits.
const char* ActiveGemmIsaName();

/// Dense row-major 2-D float matrix. This is the only tensor rank the
/// library needs: batches are rows, features are columns; vectors are 1xC or
/// Rx1 matrices and scalars are 1x1.
///
/// Element storage is recycled through a thread-local buffer pool (see
/// internal::AcquireBuffer), so graph-shaped workloads — e.g. one PPO
/// optimize epoch — perform O(1) heap allocations after warm-up. The pool is
/// transparent: construction, copying, and destruction have value semantics
/// exactly as before.
class Tensor {
 public:
  /// Creates an empty 0x0 tensor.
  Tensor() = default;

  /// Creates a rows x cols tensor initialized to zero.
  /// Throws std::invalid_argument for negative dims (checked before any
  /// storage is sized, so a negative dim can never trigger an allocation).
  Tensor(int rows, int cols) : Tensor(rows, cols, 0.0f) {}

  /// Creates a rows x cols tensor filled with `fill`.
  Tensor(int rows, int cols, float fill);

  Tensor(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(const Tensor& other);
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  /// Builds a 1xN row vector from `values`.
  static Tensor RowVector(const std::vector<float>& values);

  /// Builds an Nx1 column vector from `values`.
  static Tensor ColVector(const std::vector<float>& values);

  /// Builds a 1x1 scalar tensor.
  static Tensor Scalar(float value);

  /// Builds a rows x cols tensor from row-major `values`
  /// (values.size() must equal rows*cols).
  static Tensor FromRowMajor(int rows, int cols,
                             const std::vector<float>& values);

  /// Tensor with i.i.d. N(0, stddev^2) entries.
  static Tensor Randn(int rows, int cols, util::Rng& rng,
                      float stddev = 1.0f);

  /// Tensor with i.i.d. U(lo, hi) entries.
  static Tensor Uniform(int rows, int cols, util::Rng& rng, float lo,
                        float hi);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Element access (bounds unchecked in release; asserted in debug).
  float& operator()(int r, int c) { return data_[r * cols_ + c]; }
  float operator()(int r, int c) const { return data_[r * cols_ + c]; }

  /// Flat element access in row-major order.
  float& operator[](int i) { return data_[i]; }
  float operator[](int i) const { return data_[i]; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Returns the transpose.
  Tensor Transposed() const;

  /// Returns a copy of row `r` as a 1xC tensor.
  /// Throws std::out_of_range for r outside [0, rows()).
  Tensor Row(int r) const;

  /// In-place elementwise add of a same-shaped tensor.
  void AddInPlace(const Tensor& other);

  /// In-place scale by a scalar.
  void Scale(float factor);

  /// Sum of all elements.
  float Sum() const;

  /// Mean of all elements; 0 for empty tensors.
  float Mean() const;

  /// Maximum absolute value of any element; 0 for empty tensors.
  float AbsMax() const;

  /// Frobenius norm.
  float Norm() const;

  /// Returns true if shapes and all elements match exactly.
  bool SameAs(const Tensor& other) const;

  /// Human-readable "rows x cols" string.
  std::string ShapeString() const;

  /// Row-major copy of the contents.
  std::vector<float> ToVector() const {
    return std::vector<float>(data_.begin(), data_.end());
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B (matrix product). Shapes must agree.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A * B^T without materializing the transpose.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = A^T * B without materializing the transpose.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

namespace internal {

/// Reference GEMMs, kept verbatim (minus the NaN-swallowing zero-skip) as the
/// golden implementations the blocked kernels are tested bit-exact against.
/// `MatMul` et al. route here when KernelConfig::gemm == GemmKernel::kNaive.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b);
Tensor NaiveMatMulTransposedB(const Tensor& a, const Tensor& b);
Tensor NaiveMatMulTransposedA(const Tensor& a, const Tensor& b);

/// Per-thread buffer-pool counters (for this calling thread).
struct BufferPoolStats {
  long long acquires = 0;    ///< Total AcquireBuffer calls.
  long long pool_hits = 0;   ///< Acquires served from the free list.
  long long heap_allocs = 0; ///< Acquires that had to touch the heap.
};

/// Snapshot of this thread's pool counters.
BufferPoolStats GetBufferPoolStats();

/// False when pooling is compiled out (ASan/TSan builds keep the allocator
/// instrumented); stats still count heap allocations in that mode.
bool BufferPoolEnabled();

/// Obtains a float buffer of exactly `n` elements, all set to `fill`,
/// reusing a pooled allocation when one of sufficient capacity exists.
std::vector<float> AcquireBuffer(std::size_t n, float fill);

/// Returns a buffer to this thread's pool (or frees it if the pool is full,
/// the buffer is outside pooled size classes, or the thread is exiting).
void ReleaseBuffer(std::vector<float>&& buffer) noexcept;

}  // namespace internal

}  // namespace agsc::nn

#endif  // AGSC_NN_TENSOR_H_
