#ifndef AGSC_NN_TENSOR_H_
#define AGSC_NN_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace agsc::nn {

/// Dense row-major 2-D float matrix. This is the only tensor rank the
/// library needs: batches are rows, features are columns; vectors are 1xC or
/// Rx1 matrices and scalars are 1x1.
class Tensor {
 public:
  /// Creates an empty 0x0 tensor.
  Tensor() = default;

  /// Creates a rows x cols tensor initialized to zero.
  Tensor(int rows, int cols);

  /// Creates a rows x cols tensor filled with `fill`.
  Tensor(int rows, int cols, float fill);

  Tensor(const Tensor&) = default;
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  /// Builds a 1xN row vector from `values`.
  static Tensor RowVector(const std::vector<float>& values);

  /// Builds an Nx1 column vector from `values`.
  static Tensor ColVector(const std::vector<float>& values);

  /// Builds a 1x1 scalar tensor.
  static Tensor Scalar(float value);

  /// Builds a rows x cols tensor from row-major `values`
  /// (values.size() must equal rows*cols).
  static Tensor FromRowMajor(int rows, int cols,
                             const std::vector<float>& values);

  /// Tensor with i.i.d. N(0, stddev^2) entries.
  static Tensor Randn(int rows, int cols, util::Rng& rng,
                      float stddev = 1.0f);

  /// Tensor with i.i.d. U(lo, hi) entries.
  static Tensor Uniform(int rows, int cols, util::Rng& rng, float lo,
                        float hi);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Element access (bounds unchecked in release; asserted in debug).
  float& operator()(int r, int c) { return data_[r * cols_ + c]; }
  float operator()(int r, int c) const { return data_[r * cols_ + c]; }

  /// Flat element access in row-major order.
  float& operator[](int i) { return data_[i]; }
  float operator[](int i) const { return data_[i]; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Returns the transpose.
  Tensor Transposed() const;

  /// Returns a copy of row `r` as a 1xC tensor.
  Tensor Row(int r) const;

  /// In-place elementwise add of a same-shaped tensor.
  void AddInPlace(const Tensor& other);

  /// In-place scale by a scalar.
  void Scale(float factor);

  /// Sum of all elements.
  float Sum() const;

  /// Mean of all elements; 0 for empty tensors.
  float Mean() const;

  /// Maximum absolute value of any element; 0 for empty tensors.
  float AbsMax() const;

  /// Frobenius norm.
  float Norm() const;

  /// Returns true if shapes and all elements match exactly.
  bool SameAs(const Tensor& other) const;

  /// Human-readable "rows x cols" string.
  std::string ShapeString() const;

  /// Row-major copy of the contents.
  std::vector<float> ToVector() const { return data_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B (matrix product). Shapes must agree.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A * B^T without materializing the transpose.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = A^T * B without materializing the transpose.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

}  // namespace agsc::nn

#endif  // AGSC_NN_TENSOR_H_
