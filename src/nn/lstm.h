#ifndef AGSC_NN_LSTM_H_
#define AGSC_NN_LSTM_H_

#include <vector>

#include "nn/layers.h"

namespace agsc::nn {

/// Long short-term memory cell (Hochreiter & Schmidhuber 1997), the
/// recurrent unit the e-Divert baseline's paper uses for sequential
/// modeling.
///
///   i = sigmoid(x Wi + h Ui + bi)           (input gate)
///   f = sigmoid(x Wf + h Uf + bf + 1)       (forget gate, +1 bias trick)
///   o = sigmoid(x Wo + h Uo + bo)           (output gate)
///   g = tanh(x Wg + h Ug + bg)              (candidate)
///   c' = f * c + i * g;   h' = o * tanh(c')
///
/// The recurrent state is *packed* as an N x 2H tensor [h | c] so callers
/// can treat GRU (N x H) and LSTM (N x 2H) states uniformly.
class LstmCell : public Module {
 public:
  LstmCell(int input_size, int hidden_size, util::Rng& rng);

  /// One recurrence step on a packed state; returns the next packed state.
  Variable Step(const Variable& x, const Variable& packed_state) const;

  /// The externally visible output of a packed state: its h half.
  Variable Output(const Variable& packed_state) const;

  /// All-zero packed initial state (N x 2H).
  Tensor InitialState(int n) const;

  std::vector<Variable> Parameters() const override;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }
  /// Width of the packed state (2H).
  int state_size() const { return 2 * hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  Linear x_i_, h_i_;
  Linear x_f_, h_f_;
  Linear x_o_, h_o_;
  Linear x_g_, h_g_;
};

}  // namespace agsc::nn

#endif  // AGSC_NN_LSTM_H_
