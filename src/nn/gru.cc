#include "nn/gru.h"

namespace agsc::nn {

GruCell::GruCell(int input_size, int hidden_size, util::Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      x_z_(input_size, hidden_size, rng),
      h_z_(hidden_size, hidden_size, rng),
      x_r_(input_size, hidden_size, rng),
      h_r_(hidden_size, hidden_size, rng),
      x_n_(input_size, hidden_size, rng),
      h_n_(hidden_size, hidden_size, rng) {}

Variable GruCell::Step(const Variable& x, const Variable& h) const {
  Variable z = Sigmoid(Add(x_z_.Forward(x), h_z_.Forward(h)));
  Variable r = Sigmoid(Add(x_r_.Forward(x), h_r_.Forward(h)));
  Variable n = Tanh(Add(x_n_.Forward(x), h_n_.Forward(Mul(r, h))));
  // h' = (1 - z) * n + z * h.
  Variable one_minus_z = ScalarAdd(Neg(z), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

Tensor GruCell::InitialState(int n) const { return Tensor(n, hidden_size_); }

std::vector<Variable> GruCell::Parameters() const {
  std::vector<Variable> params;
  for (const Linear* layer : {&x_z_, &h_z_, &x_r_, &h_r_, &x_n_, &h_n_}) {
    for (Variable& p : layer->Parameters()) params.push_back(std::move(p));
  }
  return params;
}

}  // namespace agsc::nn
