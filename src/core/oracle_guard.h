#ifndef AGSC_CORE_ORACLE_GUARD_H_
#define AGSC_CORE_ORACLE_GUARD_H_

#include <string>

#include "env/sc_env.h"

namespace agsc::core {

/// Outcome of one oracle self-check. `ok == false` means the optimized path
/// disagreed with its retained reference implementation; `detail` names the
/// first mismatching operation.
struct OracleCheckResult {
  bool ok = true;
  std::string detail;
};

/// Compares the process-wide GEMM kernel selection (nn::GetKernelConfig)
/// against the naive reference kernels on a deterministic set of random
/// tensors (all three MatMul variants, several shapes). The kernels are
/// designed to be bit-identical, so any difference is a real defect — the
/// caller should fall back to GemmKernel::kNaive. Trivially passes when the
/// naive kernels are already selected. Uses a private fixed-seed RNG; never
/// touches training streams.
OracleCheckResult NnKernelSelfCheck();

/// Runs two copies of `env` — one on the spatial-index fast path, one
/// downgraded to the naive linear-scan oracle — in lock-step for `steps`
/// random-action timeslots and compares every StepResult field bit-exactly.
/// The copies start from `env`'s current RNG state, so both see identical
/// episode randomness; actions come from a private fixed-seed RNG. `env`
/// itself is never mutated. Trivially passes when `env` is already on the
/// naive path.
OracleCheckResult EnvSelfCheck(const env::ScEnv& env, int steps);

/// Same lock-step scheme for the batched channel kernels: one copy keeps
/// `env`'s batched channel path, the other is downgraded to the scalar
/// per-link ChannelModel oracle, and every StepResult field must match
/// bit-exactly. Trivially passes when `env` already runs the scalar channel
/// path, and also under `env_fast_math` — the fast tier intentionally
/// deviates from libm bit patterns (its acceptance is statistical, pinned
/// by tests, not a bit-exact oracle property).
OracleCheckResult ChannelSelfCheck(const env::ScEnv& env, int steps);

}  // namespace agsc::core

#endif  // AGSC_CORE_ORACLE_GUARD_H_
