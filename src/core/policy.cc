#include "core/policy.h"

#include <stdexcept>

namespace agsc::core {

namespace {

std::vector<int> LayerSizes(int in, const std::vector<int>& hidden, int out) {
  std::vector<int> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

}  // namespace

GaussianActor::GaussianActor(int obs_dim, int action_dim,
                             const NetConfig& config, util::Rng& rng)
    : mean_net_(LayerSizes(obs_dim, config.hidden, action_dim), rng,
                nn::Activation::kTanh, nn::Activation::kTanh,
                /*final_gain=*/0.01f),
      log_std_(nn::Variable::Parameter(
          nn::Tensor(1, action_dim, config.log_std_init))) {}

nn::DiagGaussian GaussianActor::Dist(const nn::Tensor& obs_batch) const {
  return nn::DiagGaussian(mean_net_.Forward(obs_batch), log_std_);
}

std::vector<float> GaussianActor::Act(const std::vector<float>& obs,
                                      util::Rng& rng, bool deterministic,
                                      float* logp) const {
  nn::Tensor row(1, static_cast<int>(obs.size()));
  for (size_t i = 0; i < obs.size(); ++i) row[static_cast<int>(i)] = obs[i];
  nn::DiagGaussian dist = Dist(row);
  nn::Tensor action = deterministic ? dist.Mode() : dist.Sample(rng);
  if (logp != nullptr) {
    *logp = dist.LogProb(action).value()(0, 0);
  }
  std::vector<float> out(action.cols());
  for (int c = 0; c < action.cols(); ++c) out[c] = action(0, c);
  return out;
}

std::vector<nn::Variable> GaussianActor::Parameters() const {
  std::vector<nn::Variable> params = mean_net_.Parameters();
  params.push_back(log_std_);
  return params;
}

ValueNet::ValueNet(int input_dim, const NetConfig& config, util::Rng& rng)
    : net_(LayerSizes(input_dim, config.hidden, 1), rng,
           nn::Activation::kTanh, nn::Activation::kNone, 1.0f) {}

nn::Variable ValueNet::Forward(const nn::Tensor& batch) const {
  return net_.Forward(batch);
}

std::vector<float> ValueNet::Values(
    const std::vector<std::vector<float>>& rows) const {
  if (rows.empty()) return {};
  nn::Tensor batch(static_cast<int>(rows.size()),
                   static_cast<int>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      batch(static_cast<int>(r), static_cast<int>(c)) = rows[r][c];
    }
  }
  const nn::Tensor values = net_.Forward(batch).value();
  std::vector<float> out(values.rows());
  for (int r = 0; r < values.rows(); ++r) out[r] = values(r, 0);
  return out;
}

std::vector<nn::Variable> ValueNet::Parameters() const {
  return net_.Parameters();
}

}  // namespace agsc::core
